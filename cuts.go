package shredder

import (
	"shredder/internal/cost"
	"shredder/internal/model"
)

// CutReport describes one cutting point of a network from the edge
// device's perspective: how much computation the edge must perform, how
// much data crosses the wire, and the paper's combined cost metric
// (Computation × Communication, §3.4).
type CutReport struct {
	Cut        string  // cut name ("conv0", ...)
	EdgeMACs   int64   // cumulative multiply-accumulates on the edge
	CommBytes  int64   // wire size of the transmitted activation
	CostKMACMB float64 // KiloMAC × MB, the paper's Figure 6 x-axis
	Default    bool    // true for the network's paper-chosen cut
}

// CutPoints returns the cost model of every cutting point of a network,
// shallow to deep. It needs no training: costs depend only on topology.
func CutPoints(network string) ([]CutReport, error) {
	spec, err := model.ByName(network)
	if err != nil {
		return nil, err
	}
	costs, err := cost.CutCosts(spec)
	if err != nil {
		return nil, err
	}
	out := make([]CutReport, len(costs))
	for i, c := range costs {
		out[i] = CutReport{
			Cut:        c.Cut,
			EdgeMACs:   c.EdgeMACs,
			CommBytes:  c.CommBytes,
			CostKMACMB: c.Product,
			Default:    c.Cut == spec.DefaultCut,
		}
	}
	return out, nil
}
