package shredder

import (
	"fmt"

	"shredder/internal/attack"
)

// AttackReport quantifies resistance to a model-inversion adversary: the
// mean squared error of the attacker's input reconstruction from clean
// activations versus Shredder-noised activations. A Ratio well above 1
// means the learned noise destroyed the information the attacker needs.
type AttackReport struct {
	CleanMSE    float64 // reconstruction error from raw activations
	ShreddedMSE float64 // reconstruction error from noisy activations
	Ratio       float64 // ShreddedMSE / CleanMSE
}

// String renders the report.
func (r AttackReport) String() string {
	return fmt.Sprintf("inversion attack: clean MSE %.4f, shredded MSE %.4f (%.1fx harder)",
		r.CleanMSE, r.ShreddedMSE, r.Ratio)
}

// GalleryReport quantifies resistance to an identification adversary who
// matches an observed activation against a gallery of candidate inputs.
type GalleryReport struct {
	Trials    int
	CleanTop1 float64 // identification rate from raw activations
	NoisyTop1 float64 // identification rate with Shredder noise
}

// String renders the report.
func (r GalleryReport) String() string {
	return fmt.Sprintf("gallery attack over %d trials: clean top-1 %.0f%%, shredded top-1 %.0f%%",
		r.Trials, 100*r.CleanTop1, 100*r.NoisyTop1)
}

// GalleryAttack runs the identification attack over trials test samples
// (using the whole test set as the adversary's gallery), with and without
// the learned noise. LearnNoise must have been called.
func (s *System) GalleryAttack(trials int) (GalleryReport, error) {
	if !s.HasNoise() {
		return GalleryReport{}, fmt.Errorf("shredder: GalleryAttack before LearnNoise/LoadNoise")
	}
	clean := attack.GalleryIdentify(s.split, s.pre.Test.Images, nil, trials, s.seed)
	noisy := attack.GalleryIdentify(s.split, s.pre.Test.Images, s.collection, trials, s.seed)
	return GalleryReport{Trials: clean.Trials, CleanTop1: clean.Top1, NoisyTop1: noisy.Top1}, nil
}

// AttackResistance runs a white-box inversion attack (gradient descent on
// the input to match the observed activation) against n test samples, with
// and without the learned noise, and reports the reconstruction errors.
// steps controls attack strength (0 = default 300). LearnNoise must have
// been called. This is an extension beyond the paper's evaluation that
// makes the mutual-information metric concrete.
//
// The attack faces the *deployed* noise source — stored replay, fitted
// per-query sampling, or multiplicative fitted-mul — exactly as the
// serving path would apply it.
func (s *System) AttackResistance(n, steps int) (AttackReport, error) {
	if !s.HasNoise() {
		return AttackReport{}, fmt.Errorf("shredder: AttackResistance before LearnNoise/LoadNoise")
	}
	clean, shredded := attack.Evaluate(s.split, s.pre.Test.Images, s.noise, n,
		attack.Config{Steps: steps, Seed: s.seed})
	rep := AttackReport{CleanMSE: clean, ShreddedMSE: shredded}
	if clean > 0 {
		rep.Ratio = shredded / clean
	}
	return rep, nil
}
