package shredder

import (
	"testing"
)

// Integration tests covering the full pipeline on the non-LeNet benchmarks
// at reduced scale. They exercise every network topology end to end: data
// generation → pre-training → split → noise learning → private inference.

func runPipeline(t *testing.T, network string, trainN, testN, epochs int, noise NoiseOptions) {
	t.Helper()
	sys, err := NewSystem(network, Config{Seed: 11, TrainN: trainN, TestN: testN, Epochs: epochs})
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(sys.Classes())
	if sys.BaselineAccuracy() < 2*chance {
		t.Fatalf("%s baseline accuracy %.2f barely above chance %.2f", network, sys.BaselineAccuracy(), chance)
	}
	sys.LearnNoiseWith(2, noise)
	rep := sys.Evaluate()
	if rep.ShreddedMI >= rep.OriginalMI {
		t.Fatalf("%s: MI did not drop (%.1f → %.1f)", network, rep.OriginalMI, rep.ShreddedMI)
	}
	if rep.NoisyAcc < 1.5*chance {
		t.Fatalf("%s: noisy accuracy %.2f collapsed to chance", network, rep.NoisyAcc)
	}
	px, _ := sys.TestSample(0)
	if _, err := sys.Classify(px); err != nil {
		t.Fatalf("%s: Classify: %v", network, err)
	}
}

func TestPipelineCifar(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping cifar pipeline in -short mode")
	}
	runPipeline(t, "cifar", 700, 150, 5,
		NoiseOptions{Scale: 2, Lambda: 0.001, PrivacyTarget: 3, Epochs: 4})
}

func TestPipelineSvhn(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping svhn pipeline in -short mode")
	}
	runPipeline(t, "svhn", 700, 150, 5,
		NoiseOptions{Scale: 2, Lambda: 0.0005, PrivacyTarget: 3, Epochs: 4})
}

func TestPipelineAlexNet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping alexnet pipeline in -short mode")
	}
	runPipeline(t, "alexnet", 600, 120, 5,
		NoiseOptions{Scale: 1.5, Lambda: 0.0003, PrivacyTarget: 2, Epochs: 3})
}

// Cutting the same network at different points must produce different
// activation shapes and working pipelines at each.
func TestPipelineAllLeNetCuts(t *testing.T) {
	seen := map[int]bool{}
	for _, cut := range []string{"conv0", "conv1", "conv2"} {
		sys, err := NewSystem("lenet", Config{Cut: cut, Seed: 12, TrainN: 250, TestN: 60, Epochs: 2})
		if err != nil {
			t.Fatalf("%s: %v", cut, err)
		}
		sys.LearnNoiseWith(2, NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2})
		rep := sys.Evaluate()
		if rep.NoiseParams <= 0 {
			t.Fatalf("%s: no noise params", cut)
		}
		if seen[rep.NoiseParams] {
			t.Fatalf("%s: duplicate activation size %d across cuts", cut, rep.NoiseParams)
		}
		seen[rep.NoiseParams] = true
	}
}
