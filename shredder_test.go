package shredder

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinySystem builds a fast LeNet system for API tests.
func tinySystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem("lenet", Config{Seed: 3, TrainN: 400, TestN: 120, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNetworksList(t *testing.T) {
	nets := Networks()
	if len(nets) != 4 {
		t.Fatalf("Networks() = %v", nets)
	}
	want := map[string]bool{"lenet": true, "cifar": true, "svhn": true, "alexnet": true}
	for _, n := range nets {
		if !want[n] {
			t.Fatalf("unexpected network %q", n)
		}
	}
}

func TestNewSystemUnknownNetwork(t *testing.T) {
	if _, err := NewSystem("resnet", Config{}); err == nil {
		t.Fatal("expected error for unknown network")
	}
}

func TestNewSystemBadCut(t *testing.T) {
	if _, err := NewSystem("lenet", Config{Cut: "conv9", TrainN: 50, TestN: 20, Epochs: 1}); err == nil {
		t.Fatal("expected error for unknown cut")
	}
}

func TestSystemBasics(t *testing.T) {
	sys := tinySystem(t)
	if sys.Network() != "lenet" || sys.Cut() != "conv2" {
		t.Fatalf("network %s cut %s", sys.Network(), sys.Cut())
	}
	if sys.Classes() != 10 {
		t.Fatalf("classes %d", sys.Classes())
	}
	if got := sys.InputShape(); got[0] != 1 || got[1] != 28 {
		t.Fatalf("input shape %v", got)
	}
	if sys.BaselineAccuracy() < 0.4 {
		t.Fatalf("baseline accuracy %v", sys.BaselineAccuracy())
	}
	if sys.TestSize() != 120 {
		t.Fatalf("test size %d", sys.TestSize())
	}
	if sys.HasNoise() {
		t.Fatal("fresh system should have no noise")
	}
}

func TestClassifyLifecycle(t *testing.T) {
	sys := tinySystem(t)
	pixels, _ := sys.TestSample(0)

	// Before noise: Classify errors, baseline works.
	if _, err := sys.Classify(pixels); err == nil {
		t.Fatal("Classify should fail before LearnNoise")
	}
	if _, err := sys.ClassifyBaseline(pixels); err != nil {
		t.Fatal(err)
	}

	sys.LearnNoiseWith(3, NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 5})
	if !sys.HasNoise() {
		t.Fatal("HasNoise false after LearnNoise")
	}
	if _, err := sys.Classify(pixels); err != nil {
		t.Fatal(err)
	}
	// Wrong pixel count must error.
	if _, err := sys.Classify(pixels[:10]); err == nil {
		t.Fatal("expected error for wrong pixel count")
	}

	// Noisy classification should still match labels most of the time.
	correct := 0
	n := 40
	for i := 0; i < n; i++ {
		px, y := sys.TestSample(i)
		got, err := sys.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		if got == y {
			correct++
		}
	}
	if correct < n/4 {
		t.Fatalf("noisy accuracy %d/%d collapsed", correct, n)
	}
}

func TestEvaluateReport(t *testing.T) {
	sys := tinySystem(t)
	sys.LearnNoiseWith(4, NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 3})
	rep := sys.Evaluate()
	if rep.Network != "lenet" || rep.Cut != "conv2" {
		t.Fatalf("report identity %+v", rep)
	}
	if rep.ShreddedMI >= rep.OriginalMI {
		t.Fatalf("MI did not drop: %v → %v", rep.OriginalMI, rep.ShreddedMI)
	}
	if rep.NoiseParams <= 0 || rep.NoiseParams >= rep.ModelParams {
		t.Fatalf("params: noise %d model %d", rep.NoiseParams, rep.ModelParams)
	}
	s := rep.String()
	for _, want := range []string{"lenet", "MI", "noise params"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string missing %q: %s", want, s)
		}
	}
}

func TestEvaluateWithoutNoisePanics(t *testing.T) {
	sys := tinySystem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sys.Evaluate()
}

func TestSaveLoadNoise(t *testing.T) {
	sys := tinySystem(t)
	sys.LearnNoiseWith(2, NoiseOptions{Epochs: 0.5})
	dir := t.TempDir()
	path := filepath.Join(dir, "noise.gob")
	if err := sys.SaveNoise(path); err != nil {
		t.Fatal(err)
	}

	other := tinySystem(t)
	if err := other.LoadNoise(path); err != nil {
		t.Fatal(err)
	}
	if !other.HasNoise() {
		t.Fatal("LoadNoise did not install collection")
	}
	px, _ := other.TestSample(0)
	if _, err := other.Classify(px); err != nil {
		t.Fatal(err)
	}

	// Loading into a mismatched cut must fail.
	shallow, err := NewSystem("lenet", Config{Cut: "conv0", Seed: 3, TrainN: 100, TestN: 30, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := shallow.LoadNoise(path); err == nil {
		t.Fatal("LoadNoise should reject mismatched activation shape")
	}
}

func TestSaveNoiseWithoutCollection(t *testing.T) {
	sys := tinySystem(t)
	if err := sys.SaveNoise(filepath.Join(t.TempDir(), "x.gob")); err == nil {
		t.Fatal("SaveNoise should fail with no collection")
	}
}

func TestCloudEdgeRoundTrip(t *testing.T) {
	sys := tinySystem(t)
	sys.LearnNoiseWith(3, NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 5})
	cloud, err := sys.ServeCloud("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	edge, err := sys.ConnectEdge(cloud.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	correct, n := 0, 30
	for i := 0; i < n; i++ {
		px, y := sys.TestSample(i)
		got, err := edge.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		if got == y {
			correct++
		}
	}
	if correct < n/4 {
		t.Fatalf("remote noisy accuracy %d/%d collapsed", correct, n)
	}
}

// TestDtypeFacade pins the Config.Dtype plumbing: a float32 system must
// make the same classification decisions as a float64 one built from the
// same cached weights — locally (baseline and noisy) and when serving the
// compiled remote part over TCP.
func TestDtypeFacade(t *testing.T) {
	if _, err := NewSystem("lenet", Config{Seed: 3, Dtype: "bfloat16"}); err == nil {
		t.Fatal("unknown dtype should be rejected at construction")
	}

	cache := t.TempDir()
	cfg := Config{Seed: 3, TrainN: 400, TestN: 120, Epochs: 3, WeightCacheDir: cache}
	sys64, err := NewSystem("lenet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dtype = "f32"
	sys32, err := NewSystem("lenet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys64.Dtype() != "float64" || sys32.Dtype() != "float32" {
		t.Fatalf("dtype accessors: %q / %q", sys64.Dtype(), sys32.Dtype())
	}

	n := 40
	for i := 0; i < n; i++ {
		px, _ := sys64.TestSample(i)
		want, err := sys64.ClassifyBaseline(px)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys32.ClassifyBaseline(px)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("sample %d: float32 baseline decision %d, float64 %d", i, got, want)
		}
	}

	// Same seeds → byte-identical noise collections and sampling order, so
	// the noisy float32 decisions must reproduce the float64 ones too.
	opt := NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 3}
	sys64.LearnNoiseWith(2, opt)
	sys32.LearnNoiseWith(2, opt)
	for i := 0; i < n; i++ {
		px, _ := sys64.TestSample(i)
		want, err := sys64.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys32.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("sample %d: noisy float32 decision %d, float64 %d", i, got, want)
		}
	}

	// ServeCloud inherits the system dtype. Two fresh edge clients share
	// the same seed and byte-identical collections, so they draw the same
	// noise sequence — the float32-served decisions must reproduce the
	// float64-served ones exactly.
	cloud64, err := sys64.ServeCloud("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud64.Close()
	cloud32, err := sys32.ServeCloud("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud32.Close()
	edge64, err := sys64.ConnectEdge(cloud64.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edge64.Close()
	edge32, err := sys32.ConnectEdge(cloud32.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edge32.Close()
	for i := 0; i < n; i++ {
		px, _ := sys64.TestSample(i)
		want, err := edge64.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		got, err := edge32.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("sample %d: served float32 decision %d, float64 %d", i, got, want)
		}
	}
}

func TestWeightCache(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 5, TrainN: 150, TestN: 40, Epochs: 1, WeightCacheDir: dir}
	a, err := NewSystem("lenet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSystem("lenet", cfg) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	px, _ := a.TestSample(0)
	la, _ := a.ClassifyBaseline(px)
	lb, _ := b.ClassifyBaseline(px)
	if la != lb {
		t.Fatal("cached system disagrees with trained system")
	}
	if err := a.SaveWeights(filepath.Join(dir, "w.gob")); err != nil {
		t.Fatal(err)
	}
}

func TestAttackResistance(t *testing.T) {
	sys, err := NewSystem("lenet", Config{Cut: "conv0", Seed: 3, TrainN: 300, TestN: 60, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AttackResistance(1, 50); err == nil {
		t.Fatal("AttackResistance should fail before LearnNoise")
	}
	sys.LearnNoiseWith(3, NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2})
	rep, err := sys.AttackResistance(2, 150)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShreddedMSE <= rep.CleanMSE {
		t.Fatalf("noise should degrade inversion: %+v", rep)
	}
	if rep.Ratio <= 1 {
		t.Fatalf("ratio %v should exceed 1", rep.Ratio)
	}
	if !strings.Contains(rep.String(), "inversion attack") {
		t.Fatal("report string malformed")
	}
}

func TestGalleryAttackFacade(t *testing.T) {
	sys, err := NewSystem("lenet", Config{Cut: "conv0", Seed: 3, TrainN: 300, TestN: 60, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.GalleryAttack(5); err == nil {
		t.Fatal("GalleryAttack should fail before LearnNoise")
	}
	sys.LearnNoiseWith(3, NoiseOptions{Scale: 3, Lambda: 0.01, PrivacyTarget: 6, Epochs: 2})
	rep, err := sys.GalleryAttack(20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CleanTop1 != 1 {
		t.Fatalf("clean identification should be perfect, got %v", rep.CleanTop1)
	}
	// Accuracy-preserving noise does not necessarily defeat coarse
	// identification over a small gallery; it must just never help it.
	if rep.NoisyTop1 > rep.CleanTop1 {
		t.Fatalf("noise should not improve identification: %+v", rep)
	}
	if !strings.Contains(rep.String(), "gallery attack") {
		t.Fatal("report string malformed")
	}
}

func TestEdgeQuantizedTransportFacade(t *testing.T) {
	sys := tinySystem(t)
	cloud, err := sys.ServeCloud("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	edge, err := sys.ConnectEdge(cloud.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	if err := edge.SetWireQuantization(8); err != nil {
		t.Fatal(err)
	}
	px, _ := sys.TestSample(0)
	qPred, err := edge.Classify(px)
	if err != nil {
		t.Fatal(err)
	}
	basePred, err := sys.ClassifyBaseline(px)
	if err != nil {
		t.Fatal(err)
	}
	if qPred != basePred {
		t.Fatalf("8-bit transport changed the prediction: %d vs %d", qPred, basePred)
	}
	if edge.BytesSent() <= 0 {
		t.Fatal("byte counter did not advance")
	}
}

func TestNewSystemInvalidNoiseConfig(t *testing.T) {
	if _, err := NewSystem("lenet", Config{NoiseMode: "psychedelic", TrainN: 50, TestN: 20, Epochs: 1}); err == nil {
		t.Fatal("expected error for unknown noise mode")
	}
	if _, err := NewSystem("lenet", Config{NoiseDist: "cauchy", TrainN: 50, TestN: 20, Epochs: 1}); err == nil {
		t.Fatal("expected error for unknown noise distribution")
	}
}

// TestFittedLifecycle walks the fitted mode end to end: learn → classify →
// save (a file of distribution parameters, not tensors) → load into a
// stored-configured system, which deploys whatever mode the file carries.
func TestFittedLifecycle(t *testing.T) {
	sys, err := NewSystem("lenet", Config{Seed: 3, TrainN: 400, TestN: 120, Epochs: 3, NoiseMode: "fitted"})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NoiseMode() != "fitted" {
		t.Fatalf("configured mode %q", sys.NoiseMode())
	}
	sys.LearnNoiseWith(3, NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2})
	if !sys.HasNoise() || sys.NoiseMode() != "fitted" {
		t.Fatalf("after learn: HasNoise=%v mode=%q", sys.HasNoise(), sys.NoiseMode())
	}

	correct, n := 0, 40
	for i := 0; i < n; i++ {
		px, y := sys.TestSample(i)
		got, err := sys.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		if got == y {
			correct++
		}
	}
	if correct < n/4 {
		t.Fatalf("fitted accuracy %d/%d collapsed", correct, n)
	}

	path := filepath.Join(t.TempDir(), "fitted.gob")
	if err := sys.SaveNoise(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted file carries per-member int32 orders and float32 quantile
	// sketches instead of float64 tensors, so it must come in under a
	// stored-mode save of an equally sized collection.
	storedSys := tinySystem(t)
	storedSys.LearnNoiseWith(3, NoiseOptions{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2})
	storedPath := filepath.Join(t.TempDir(), "stored.gob")
	if err := storedSys.SaveNoise(storedPath); err != nil {
		t.Fatal(err)
	}
	storedInfo, err := os.Stat(storedPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= storedInfo.Size() {
		t.Fatalf("fitted file %d B is not smaller than the stored-mode file (%d B)", info.Size(), storedInfo.Size())
	}

	// A stored-configured system deploys the file's mode, not its own.
	other := tinySystem(t)
	if err := other.LoadNoise(path); err != nil {
		t.Fatal(err)
	}
	if other.NoiseMode() != "fitted" {
		t.Fatalf("loaded mode %q, want fitted", other.NoiseMode())
	}
	px, _ := other.TestSample(0)
	if _, err := other.Classify(px); err != nil {
		t.Fatal(err)
	}
}

// TestFittedMulLifecycle does the same for the multiplicative variant and
// checks it serves over the edge/cloud split.
func TestFittedMulLifecycle(t *testing.T) {
	sys, err := NewSystem("lenet", Config{Seed: 3, TrainN: 400, TestN: 120, Epochs: 3, NoiseMode: "fitted-mul"})
	if err != nil {
		t.Fatal(err)
	}
	sys.LearnNoiseWith(2, NoiseOptions{Scale: 1, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2})
	if sys.NoiseMode() != "fitted-mul" {
		t.Fatalf("mode %q, want fitted-mul", sys.NoiseMode())
	}

	path := filepath.Join(t.TempDir(), "mul.gob")
	if err := sys.SaveNoise(path); err != nil {
		t.Fatal(err)
	}
	other := tinySystem(t)
	if err := other.LoadNoise(path); err != nil {
		t.Fatal(err)
	}
	if other.NoiseMode() != "fitted-mul" {
		t.Fatalf("loaded mode %q, want fitted-mul", other.NoiseMode())
	}

	cloud, err := other.ServeCloud("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	edge, err := other.ConnectEdge(cloud.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	correct, n := 0, 30
	for i := 0; i < n; i++ {
		px, y := other.TestSample(i)
		got, err := edge.Classify(px)
		if err != nil {
			t.Fatal(err)
		}
		if got == y {
			correct++
		}
	}
	if correct < n/4 {
		t.Fatalf("remote fitted-mul accuracy %d/%d collapsed", correct, n)
	}
}
