// Benchmarks for the dtype-parameterized kernel stack: the stock float64
// layer-at-a-time path versus nn.Compile plans — float64 (BN folding and
// fusion only), float32 unfused, and float32 fused. The per-layer cases
// cover the two heaviest layers of the profiler's alexnet breakdown (the
// matmul-backed conv1 and the fc1 linear); the reference run is recorded
// in results_bench_kernels.txt, where the fused float32 plan must hold a
// ≥1.5× speedup over the stock path on both.
//
// Weights are random: kernel timing does not depend on training, and
// skipping pre-training keeps `make bench-kernels` a seconds-scale smoke.
package shredder

import (
	"testing"

	"shredder/internal/model"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// kernelBench pins one benchmark subject: layers [from,to) of a freshly
// built network, fed a deterministic batch.
type kernelBench struct {
	name     string
	net      *nn.Sequential
	from, to int
	x        *tensor.Tensor
}

func kernelSubjects(b *testing.B) []kernelBench {
	b.Helper()
	spec, err := model.ByName("alexnet")
	if err != nil {
		b.Fatal(err)
	}
	net := spec.Build(tensor.NewRNG(1))
	sample := spec.Dataset.SampleShape()

	rng := tensor.NewRNG(2)
	batchAt := func(n, layer int) *tensor.Tensor {
		shape := append([]int{n}, net.OutShapeAt(sample, layer)...)
		x := tensor.New(shape...)
		d := x.Data()
		for i := range d {
			d[i] = rng.Normal(0, 1)
		}
		return x
	}

	conv := net.Index("conv1") // heaviest conv: 16→32, 5×5 on 16×16 planes
	fc := net.Index("fc1")     // heaviest linear: 512→128
	return []kernelBench{
		{name: "conv1", net: net, from: conv, to: conv + 2, x: batchAt(8, conv)}, // conv1+relu1
		{name: "fc1", net: net, from: fc, to: fc + 2, x: batchAt(64, fc)},        // fc1+relu5
		{name: "full", net: net, from: 0, to: net.Len(), x: batchAt(8, 0)},
	}
}

// BenchmarkKernels compares, per subject, the stock float64 path against
// compiled plans at both dtypes. The f32 cases feed a pre-converted
// float32 batch through Infer32, so they time the kernels rather than the
// one-off float64→float32 input conversion.
func BenchmarkKernels(b *testing.B) {
	for _, s := range kernelSubjects(b) {
		compile := func(dt nn.Dtype, opts ...nn.CompileOption) *nn.CompiledNet {
			cn, err := nn.CompileRange(s.net, s.from, s.to, dt, opts...)
			if err != nil {
				b.Fatal(err)
			}
			return cn
		}
		x32 := tensor.ToDense[float32](s.x)

		b.Run(s.name+"/f64-stock", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.net.InferRange(s.x, s.from, s.to)
			}
		})
		b.Run(s.name+"/f64-fused", func(b *testing.B) {
			cn := compile(nn.Float64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cn.Infer(s.x)
			}
		})
		b.Run(s.name+"/f32-nofuse", func(b *testing.B) {
			cn := compile(nn.Float32, nn.NoFusion())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cn.Infer32(x32)
			}
		})
		b.Run(s.name+"/f32-fused", func(b *testing.B) {
			cn := compile(nn.Float32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cn.Infer32(x32)
			}
		})
	}
}
