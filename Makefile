GO ?= go

.PHONY: ci fmt vet build test race bench

## ci: the full gate — formatting, vet, build, tests, and the race suite
## over the concurrency-sensitive packages. Run before every push.
ci: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sched/... ./internal/splitrt/... ./internal/tensor/... ./internal/nn/... ./internal/core/... ./internal/experiments/...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCloudServerThroughput|BenchmarkServeBatched' -benchtime 200x .
