GO ?= go

.PHONY: ci fmt vet build test race bench bench-obs bench-profile bench-pool bench-kernels bench-fitted bench-audit bench-window

## ci: the full gate — formatting, vet, build, tests, the race suite over
## the concurrency-sensitive packages, and the observability-, profiler-,
## fleet-serving, dtype-kernel, fitted-noise, audit-ledger, and
## sliding-window smoke benchmarks. Run before every push.
ci: fmt vet build test race bench-obs bench-profile bench-pool bench-kernels bench-fitted bench-audit bench-window

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sched/... ./internal/splitrt/... ./internal/tensor/... ./internal/nn/... ./internal/core/... ./internal/experiments/... ./internal/obs/... ./internal/audit/... ./cmd/shredder/...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCloudServerThroughput|BenchmarkServeBatched' -benchtime 200x .

## bench-obs: smoke-run the observability overhead benchmark (the disabled
## path must stay within noise of results_bench_obs.txt's baseline).
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 50x .

## bench-profile: smoke-run the per-layer profiler overhead benchmark (the
## disabled path must stay within noise of results_bench_profile.txt's
## baseline — detached hooks cost one atomic load per range pass).
bench-profile:
	$(GO) test -run '^$$' -bench BenchmarkProfileOverhead -benchtime 50x .

## bench-pool: smoke-run the fleet-serving benchmark (hedged p99 under a
## slowed backend must stay below the injected latency — see
## results_bench_pool.txt for the reference run).
bench-pool:
	$(GO) test -run '^$$' -bench BenchmarkPoolServe -benchtime 50x .

## bench-kernels: smoke-run the dtype/fusion kernel benchmarks (stock f64
## vs compiled f64/f32 fused plans on the profiler's top layers — the f32
## fused path should beat stock f64 by >=1.5x on conv1 and fc1; reference
## run committed as results_bench_kernels.txt).
bench-kernels:
	$(GO) test -run '^$$' -bench BenchmarkKernels -benchtime 10x .

## bench-fitted: smoke-run the fitted noise-distribution benchmarks (per-
## query sampling overhead vs stored replay, plus the resident-memory
## accounting; reference run committed as results_bench_fitted.txt).
bench-fitted:
	$(GO) test -run '^$$' -bench BenchmarkFitted -benchtime 50x .

## bench-audit: smoke-run the audit-ledger overhead benchmark (serving
## with the auditor disabled vs mem/file/mock-latency ledgers — the
## disabled path must stay within noise of the mem-ledger path; reference
## run committed as results_bench_audit.txt).
bench-audit:
	$(GO) test -run '^$$' -bench BenchmarkAuditOverhead -benchtime 50x .

## bench-window: smoke-run the sliding-window overhead benchmark (the
## windowed hot path must stay within noise of cumulative-only — windows
## derive from snapshots, they add no per-observation work; reference run
## committed as results_bench_window.txt).
bench-window:
	$(GO) test -run '^$$' -bench BenchmarkWindowOverhead -benchtime 50000x ./internal/obs/
