package shredder

import (
	"shredder/internal/model"
	"shredder/internal/nn"
)

// saveWeights persists a pre-trained network checkpoint.
func saveWeights(pre *model.Pretrained, path string) error {
	return nn.SaveFile(pre.Net, path)
}
