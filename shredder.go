// Package shredder is the public API of the Shredder reproduction: an
// end-to-end pipeline that splits a pre-trained DNN between an edge device
// and the cloud, learns additive noise distributions over the transmitted
// activation (Mireshghallah et al., "Shredder: Learning Noise Distributions
// to Protect Inference Privacy", ASPLOS 2020), and quantifies the privacy
// gained as mutual-information loss.
//
// The typical flow:
//
//	sys, err := shredder.NewSystem("lenet", shredder.Config{Seed: 1})
//	sys.LearnNoise(8)                     // train a collection of noise tensors
//	rep := sys.Evaluate()                 // Table-1 style metrics
//	label, _ := sys.Classify(pixels)      // private split inference
//
// For remote deployment, ServeCloud hosts the network's remote part over
// TCP and ConnectEdge returns a client that sends only noisy activations.
package shredder

import (
	"fmt"
	"io"
	"os"
	"sync"

	"shredder/internal/audit"
	"shredder/internal/core"
	"shredder/internal/mi"
	"shredder/internal/model"
	"shredder/internal/nn"
	"shredder/internal/noisedist"
	"shredder/internal/obs"
	"shredder/internal/sched"
	"shredder/internal/splitrt"
	"shredder/internal/tensor"
)

// Config controls system construction.
type Config struct {
	// Cut names the cutting point ("conv2", ...); empty selects the
	// network's default (its last convolution layer, as in the paper).
	Cut string
	// Seed makes the whole pipeline deterministic (default 1).
	Seed int64
	// TrainN, TestN, Epochs override the pre-training defaults when
	// non-zero. Smaller values trade accuracy for speed.
	TrainN, TestN, Epochs int
	// WeightCacheDir, when set, caches pre-trained weights between runs.
	WeightCacheDir string
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
	// Dtype selects the inference arithmetic: "" or "float64" keeps the
	// stock layer-at-a-time path; "float32" (also "f32", "fp32", "single")
	// compiles the network into a fused single-precision plan — BatchNorm
	// folded, conv+bias+ReLU fused — used by Classify, ClassifyBaseline,
	// and ServeCloud. Training and noise learning always run in float64;
	// only inference is lowered. Classification decisions are pinned to the
	// float64 path by the test suite.
	Dtype string
	// NoiseMode selects how learned noise is deployed at inference.
	// "stored" (or "") replays the K trained tensors, sampling one per
	// query — the paper's §2.5 collection exactly as before. "fitted"
	// distills each trained tensor into a quantile sketch + ordering once
	// and samples *fresh* noise per query (no float64 tensors resident).
	// "fitted-mul" additionally trains per-element multiplicative weights
	// and samples fresh (w, n) pairs: a' = a⊙w + n.
	NoiseMode string
	// NoiseDist selects the parametric family of the fitted modes:
	// "laplace" (the default; matches the noise initialization) or
	// "gaussian". Ignored in stored mode.
	NoiseDist string
}

// NoiseOptions override the benchmark's tuned noise hyperparameters; zero
// fields keep the defaults.
type NoiseOptions struct {
	Scale          float64 // Laplace initialization scale b
	Lambda         float64 // privacy knob λ of the loss CE − λΣ|n|
	PrivacyTarget  float64 // in vivo (1/SNR) level at which λ decays
	Epochs         float64 // noise-training length (fractional allowed)
	SelfSupervised bool    // train against the model's own predictions
	// Multiplicative trains per-element weights jointly with the noise
	// (a' = a⊙w + n). Implied by Config.NoiseMode "fitted-mul".
	Multiplicative bool
	// WeightMu and WeightStd override the Normal weight initialization of
	// the multiplicative variant (defaults: near-identity N(1, 0.25)).
	WeightMu, WeightStd float64
	// Workers bounds how many noise tensors train concurrently: 1 forces
	// sequential training, 0 (the default) uses all available cores. The
	// learned collection is byte-identical either way.
	Workers int
	// Hook, when non-nil, receives an obs.TrainingEvent at every
	// evaluation point of every member's training run (events carry a
	// "member-NN" run label). Compose hooks with obs.Hooks, e.g.
	// obs.Hooks(obs.ProgressHook(os.Stderr), obs.CSVHook(f)).
	Hook obs.Hook
}

// Report carries the headline metrics of an evaluation — the quantities of
// the paper's Table 1.
type Report struct {
	Network       string
	Cut           string
	BaselineAcc   float64 // accuracy without noise, fraction
	NoisyAcc      float64 // accuracy with sampled noise, fraction
	AccLossPct    float64 // percentage points
	OriginalMI    float64 // I(x; a) in bits
	ShreddedMI    float64 // I(x; a′) in bits
	MILossPct     float64
	InVivoPrivacy float64 // 1/SNR
	NoiseParams   int     // trainable noise parameters
	ModelParams   int     // frozen network parameters
}

// String renders the report as a compact human-readable block.
func (r Report) String() string {
	return fmt.Sprintf(
		"%s (cut %s): accuracy %.2f%% → %.2f%% (−%.2f pts); MI %.2f → %.2f bits (−%.1f%%); "+
			"1/SNR %.3f; noise params %d (%.2f%% of model)",
		r.Network, r.Cut, 100*r.BaselineAcc, 100*r.NoisyAcc, r.AccLossPct,
		r.OriginalMI, r.ShreddedMI, r.MILossPct, r.InVivoPrivacy,
		r.NoiseParams, 100*float64(r.NoiseParams)/float64(r.ModelParams))
}

// System is a pre-trained benchmark network split at a cutting point, with
// an optional learned noise collection.
type System struct {
	bench      model.Benchmark
	pre        *model.Pretrained
	split      *core.Split
	cutName    string
	cutLayer   string
	collection *core.Collection     // trained members (nil after loading a fitted file)
	noise      core.NoiseSource     // deployed source: the collection or its fit
	noiseMode  string               // Config.NoiseMode, validated
	noiseKind  noisedist.Kind       // Config.NoiseDist, parsed
	monitor    *core.PrivacyMonitor // nil = privacy telemetry disabled
	rngMu      sync.Mutex           // guards rng and scratch: neither is goroutine-safe
	rng        *tensor.RNG
	scratch    core.DrawScratch // reused fitted-draw buffers for the serving hot path
	seed       int64
	dtype      *nn.Dtype       // Config.Dtype parsed; nil = stock float64 path
	fullPlan   *nn.CompiledNet // compiled whole net for ClassifyBaseline; nil = stock
}

// Networks lists the available benchmark networks.
func Networks() []string {
	var out []string
	for _, s := range model.All() {
		out = append(out, s.Name)
	}
	return out
}

// NewSystem pre-trains (or loads from cache) the named benchmark network
// on its synthetic dataset and splits it at the configured cutting point.
func NewSystem(network string, cfg Config) (*System, error) {
	bench, err := model.BenchmarkByName(network)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	tc := model.TrainConfig{
		TrainN: cfg.TrainN, TestN: cfg.TestN, Epochs: cfg.Epochs,
		Seed: cfg.Seed, Progress: cfg.Progress,
	}
	var pre *model.Pretrained
	if cfg.WeightCacheDir != "" {
		pre, err = model.TrainCached(bench.Spec, tc, cfg.WeightCacheDir)
	} else {
		pre, err = model.Train(bench.Spec, tc)
	}
	if err != nil {
		return nil, err
	}
	cutName := cfg.Cut
	if cutName == "" {
		cutName = bench.Spec.DefaultCut
	}
	cutLayer, err := bench.Spec.CutLayer(cutName)
	if err != nil {
		return nil, err
	}
	split, err := core.NewSplit(pre.Net, cutLayer, bench.Spec.Dataset.SampleShape())
	if err != nil {
		return nil, err
	}
	mode := cfg.NoiseMode
	if mode == "" {
		mode = core.ModeStored
	}
	switch mode {
	case core.ModeStored, core.ModeFitted, core.ModeFittedMul:
	default:
		return nil, fmt.Errorf("shredder: unknown noise mode %q (want %s, %s, or %s)",
			cfg.NoiseMode, core.ModeStored, core.ModeFitted, core.ModeFittedMul)
	}
	kind, err := noisedist.ParseKind(cfg.NoiseDist)
	if err != nil {
		return nil, fmt.Errorf("shredder: %w", err)
	}
	sys := &System{
		bench: bench, pre: pre, split: split,
		cutName: cutName, cutLayer: cutLayer,
		noiseMode: mode, noiseKind: kind,
		rng: tensor.NewRNG(cfg.Seed + 77), seed: cfg.Seed,
	}
	if cfg.Dtype != "" {
		dt, err := nn.ParseDtype(cfg.Dtype)
		if err != nil {
			return nil, fmt.Errorf("shredder: %w", err)
		}
		full, err := nn.Compile(pre.Net, dt)
		if err != nil {
			return nil, fmt.Errorf("shredder: compile %s at %v: %w", bench.Spec.Name, dt, err)
		}
		if err := split.CompileRemote(dt); err != nil {
			return nil, fmt.Errorf("shredder: compile remote part at %v: %w", dt, err)
		}
		sys.dtype = &dt
		sys.fullPlan = full
	}
	return sys, nil
}

// Network returns the benchmark network name.
func (s *System) Network() string { return s.bench.Spec.Name }

// Cut returns the active cutting point name.
func (s *System) Cut() string { return s.cutName }

// CutLayerName returns the name of the last layer that runs on the edge —
// layers up to and including it are local, the rest are remote.
func (s *System) CutLayerName() string { return s.cutLayer }

// PrivacyTarget returns the benchmark's tuned in-vivo (1/SNR) target.
func (s *System) PrivacyTarget() float64 { return s.bench.PrivacyTarget }

// Dtype returns the inference arithmetic ("float64" or "float32"). The
// stock uncompiled path reports "float64".
func (s *System) Dtype() string {
	if s.dtype != nil {
		return s.dtype.String()
	}
	return nn.Float64.String()
}

// AttachProfiler installs p as the network's per-layer profiler: every
// forward/backward pass — local, remote, serving, or training — reports
// per-layer wall time and scratch bytes until DetachProfiler. Attaching is
// safe while inference traffic is in flight.
func (s *System) AttachProfiler(p *obs.Profiler) {
	if p == nil {
		s.pre.Net.SetProfiler(nil) // avoid storing a typed-nil interface
		return
	}
	s.pre.Net.SetProfiler(p)
}

// DetachProfiler removes the network-level profiler; subsequent passes run
// the branch-only disabled path again.
func (s *System) DetachProfiler() { s.pre.Net.SetProfiler(nil) }

// EnablePrivacyTelemetry builds a core.PrivacyMonitor over the learned
// collection and registers its privacy.* metrics in reg: per-member
// sampling balance on every Classify, and the realized in-vivo 1/SNR
// (against the benchmark's PrivacyTarget) on every sampleEvery-th query.
// ConnectEdge clients created afterwards inherit the monitor unless their
// options override it. Call after LearnNoise/LoadNoise and before serving
// traffic.
func (s *System) EnablePrivacyTelemetry(reg *obs.Registry, sampleEvery int) error {
	if reg == nil {
		return fmt.Errorf("shredder: EnablePrivacyTelemetry needs a registry")
	}
	if !s.HasNoise() {
		return fmt.Errorf("shredder: EnablePrivacyTelemetry before LearnNoise/LoadNoise")
	}
	s.monitor = core.NewPrivacyMonitorSource(reg, s.noise, s.bench.PrivacyTarget, sampleEvery)
	return nil
}

// PrivacyMonitor returns the live privacy monitor, or nil when
// EnablePrivacyTelemetry has not been called.
func (s *System) PrivacyMonitor() *core.PrivacyMonitor { return s.monitor }

// BaselineAccuracy returns the pre-trained network's test accuracy.
func (s *System) BaselineAccuracy() float64 { return s.pre.TestAcc }

// InputShape returns the per-sample [C,H,W] input shape.
func (s *System) InputShape() []int { return s.bench.Spec.Dataset.SampleShape() }

// Classes returns the number of output classes.
func (s *System) Classes() int { return s.bench.Spec.Dataset.Classes() }

// TestSample returns the pixels and label of test sample i, for demo and
// example use.
func (s *System) TestSample(i int) (pixels []float64, label int) {
	img := s.pre.Test.Image(i)
	out := make([]float64, img.Len())
	copy(out, img.Data())
	return out, s.pre.Test.Labels[i]
}

// TestSize returns the number of test samples.
func (s *System) TestSize() int { return s.pre.Test.N() }

// noiseConfig merges tuned defaults with user overrides.
func (s *System) noiseConfig(opt NoiseOptions) core.NoiseConfig {
	nc := core.NoiseConfig{
		Mu:            s.bench.NoiseMu,
		Scale:         s.bench.NoiseScale,
		Lambda:        s.bench.Lambda,
		PrivacyTarget: s.bench.PrivacyTarget,
		LR:            s.bench.NoiseLR,
		Epochs:        s.bench.NoiseEpochs,
		Seed:          s.seed,
	}
	if opt.Scale != 0 {
		nc.Scale = opt.Scale
	}
	if opt.Lambda != 0 {
		nc.Lambda = opt.Lambda
	}
	if opt.PrivacyTarget != 0 {
		nc.PrivacyTarget = opt.PrivacyTarget
	}
	if opt.Epochs != 0 {
		nc.Epochs = opt.Epochs
	}
	nc.SelfSupervised = opt.SelfSupervised
	nc.Multiplicative = opt.Multiplicative || s.noiseMode == core.ModeFittedMul
	nc.WeightMu = opt.WeightMu
	nc.WeightStd = opt.WeightStd
	nc.Hook = opt.Hook
	return nc
}

// LearnNoise trains a collection of count noise tensors with the
// network's tuned hyperparameters (paper §2.5's sampling set).
func (s *System) LearnNoise(count int) { s.LearnNoiseWith(count, NoiseOptions{}) }

// LearnNoiseWith is LearnNoise with hyperparameter overrides. The
// collection's members train over opt.Workers goroutines (0 = all cores);
// the result does not depend on the worker count. Under Config.NoiseMode
// "fitted-mul" the multiplicative objective is trained regardless of
// opt.Multiplicative; under the fitted modes the trained collection is
// fitted immediately and fresh noise is sampled from then on.
func (s *System) LearnNoiseWith(count int, opt NoiseOptions) {
	col := core.Collect(s.split, s.pre.Train, s.noiseConfig(opt), count, opt.Workers)
	if err := s.installNoise(col); err != nil {
		// The guards below make this unreachable from Collect output; a
		// failure here is a programming error, not an I/O condition.
		panic("shredder: " + err.Error())
	}
}

// installNoise deploys a trained collection under the configured noise
// mode: as-is for stored, through FitCollection for the fitted modes.
func (s *System) installNoise(col *core.Collection) error {
	switch s.noiseMode {
	case core.ModeFitted:
		if col.Multiplicative() {
			return fmt.Errorf("noise mode %s cannot deploy a multiplicative collection; use %s",
				core.ModeFitted, core.ModeFittedMul)
		}
		fc, err := core.FitCollection(col, s.noiseKind)
		if err != nil {
			return err
		}
		s.collection, s.noise = col, fc
	case core.ModeFittedMul:
		if !col.Multiplicative() {
			return fmt.Errorf("noise mode %s needs a multiplicative collection (train with NoiseOptions.Multiplicative)",
				core.ModeFittedMul)
		}
		fc, err := core.FitCollection(col, s.noiseKind)
		if err != nil {
			return err
		}
		s.collection, s.noise = col, fc
	default: // stored: additive or multiplicative members replay directly
		s.collection, s.noise = col, col
	}
	return nil
}

// HasNoise reports whether a noise source has been learned or loaded.
func (s *System) HasNoise() bool { return s.noise != nil }

// NoiseMode returns the deployed noise mode ("stored", "fitted",
// "fitted-mul") — the active source's mode once noise is learned or
// loaded, the configured mode before that.
func (s *System) NoiseMode() string {
	if s.noise != nil {
		return s.noise.Mode()
	}
	return s.noiseMode
}

// NoiseSource returns the deployed noise source (nil before
// LearnNoise/LoadNoise).
func (s *System) NoiseSource() core.NoiseSource { return s.noise }

// Evaluate measures accuracy and mutual information on the test set.
// LearnNoise (or LoadNoise) must have been called.
func (s *System) Evaluate() Report {
	if !s.HasNoise() {
		panic("shredder: Evaluate before LearnNoise/LoadNoise")
	}
	ev := core.Evaluate(s.split, s.pre.Test, s.noise, core.EvalConfig{
		MI:   mi.Options{K: 3, MaxSamples: 256, Seed: s.seed},
		Seed: s.seed,
	})
	noiseParams := 1
	for _, d := range s.split.ActivationShape() {
		noiseParams *= d
	}
	return Report{
		Network:       s.Network(),
		Cut:           s.cutName,
		BaselineAcc:   ev.BaselineAcc,
		NoisyAcc:      ev.NoisyAcc,
		AccLossPct:    ev.AccLossPct,
		OriginalMI:    ev.OrigMI,
		ShreddedMI:    ev.ShreddedMI,
		MILossPct:     ev.MILossPct,
		InVivoPrivacy: ev.InVivo,
		NoiseParams:   noiseParams,
		ModelParams:   s.pre.Net.ParamCount(),
	}
}

// toBatch wraps raw pixels as a single-sample batch after validating the
// length against the input shape.
func (s *System) toBatch(pixels []float64) (*tensor.Tensor, error) {
	shape := s.InputShape()
	if len(pixels) != tensor.Volume(shape) {
		return nil, fmt.Errorf("shredder: got %d pixels, %s expects %d (%v)",
			len(pixels), s.Network(), tensor.Volume(shape), shape)
	}
	buf := make([]float64, len(pixels))
	copy(buf, pixels)
	return tensor.From(buf, append([]int{1}, shape...)...), nil
}

// Classify performs private split inference on one image: local layers,
// plus a noise tensor sampled from the learned collection, then the remote
// layers. Pixels must be in the normalized domain of TestSample outputs.
// Classify is safe for concurrent use: the network passes run on the
// reentrant inference path and the noise sampling is serialized.
func (s *System) Classify(pixels []float64) (int, error) {
	if !s.HasNoise() {
		return 0, fmt.Errorf("shredder: Classify before LearnNoise/LoadNoise")
	}
	x, err := s.toBatch(pixels)
	if err != nil {
		return 0, err
	}
	a := s.split.Local(x)
	// Fitted sources draw into the system's reusable scratch buffers
	// (core.DrawScratch) instead of allocating per query; the draw stays
	// valid only until the next one, so it is consumed under the lock.
	s.rngMu.Lock()
	d := core.DrawReusing(s.noise, &s.scratch, s.rng)
	// Telemetry observes the clean activation — realized SNR is defined
	// against the signal the noise is about to cover.
	s.monitor.ObserveDraw(d, a.Slice(0))
	d.ApplyInPlace(a.Slice(0))
	s.rngMu.Unlock()
	logits := s.split.RemoteInferCompiled(a)
	return logits.Slice(0).Argmax(), nil
}

// ClassifyBaseline performs inference without noise (the original
// execution the paper compares against).
func (s *System) ClassifyBaseline(pixels []float64) (int, error) {
	x, err := s.toBatch(pixels)
	if err != nil {
		return 0, err
	}
	if s.fullPlan != nil {
		return s.fullPlan.Infer(x).Slice(0).Argmax(), nil
	}
	return s.split.Forward(x).Slice(0).Argmax(), nil
}

// SaveNoise writes the deployed noise source to path: stored collections
// in the legacy byte-compatible format, fitted sources as their compact
// distribution parameters (sketches, orderings, and (loc, scale) pairs —
// trained float64 tensors are not written in the fitted modes).
func (s *System) SaveNoise(path string) error {
	if !s.HasNoise() {
		return fmt.Errorf("shredder: no noise collection to save")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return core.EncodeNoiseSource(f, s.noise)
}

// LoadNoise reads a noise file written by SaveNoise (any version). A
// stored collection is deployed under the configured NoiseMode — fitted
// modes refit it on load; a fitted file deploys directly in its own mode.
func (s *System) LoadNoise(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := core.DecodeNoiseSource(f)
	if err != nil {
		return err
	}
	if !tensor.ShapeEq(src.NoiseShape(), s.split.ActivationShape()) {
		return fmt.Errorf("shredder: noise shape %v does not match cut activation %v",
			src.NoiseShape(), s.split.ActivationShape())
	}
	switch v := src.(type) {
	case *core.Collection:
		if err := s.installNoise(v); err != nil {
			return fmt.Errorf("shredder: %w", err)
		}
	case *core.FittedCollection:
		s.collection, s.noise, s.noiseMode = nil, v, v.Mode()
	default:
		return fmt.Errorf("shredder: unsupported noise source %T", src)
	}
	return nil
}

// SaveWeights writes the pre-trained network weights to path.
func (s *System) SaveWeights(path string) error {
	return saveWeights(s.pre, path)
}

// CloudHandle is a running cloud server hosting the remote part.
type CloudHandle struct {
	srv  *splitrt.CloudServer
	Addr string
}

// Close shuts the server down.
func (h *CloudHandle) Close() error { return h.srv.Close() }

// BatchStats returns the micro-batching scheduler's counters (batches,
// mean occupancy, queue delay, flush reasons); ok is false when the server
// was started without splitrt.WithBatching. It is a compatibility wrapper
// over the scheduler's registered obs metrics; prefer Metrics for the full
// picture.
func (h *CloudHandle) BatchStats() (stats sched.Stats, ok bool) { return h.srv.BatchStats() }

// Metrics returns the server's metrics registry, or nil when the server
// was started without splitrt.WithObservability / splitrt.WithDebugServer.
func (h *CloudHandle) Metrics() *obs.Registry { return h.srv.Metrics() }

// DebugAddr returns the bound address of the server's debug HTTP endpoint
// (splitrt.WithDebugServer), or "" when none is configured.
func (h *CloudHandle) DebugAddr() string { return h.srv.DebugAddr() }

// Auditor returns the server's tamper-evident audit batcher
// (splitrt.WithAudit), or nil when auditing is disabled.
func (h *CloudHandle) Auditor() *audit.Auditor { return h.srv.Auditor() }

// ServeCloud starts a TCP server for the system's remote part on addr
// (e.g. "127.0.0.1:0") and returns its handle with the bound address.
// Connections are served fully concurrently (the remote forward pass is
// reentrant); opts configure per-connection timeouts.
func (s *System) ServeCloud(addr string, opts ...splitrt.ServerOption) (*CloudHandle, error) {
	if s.dtype != nil {
		// Inherit the system's dtype; an explicit WithDtype later in the
		// slice still wins.
		opts = append([]splitrt.ServerOption{splitrt.WithDtype(*s.dtype)}, opts...)
	}
	srv := splitrt.NewCloudServer(s.split, s.cutLayer, opts...)
	bound, err := srv.Serve(addr)
	if err != nil {
		return nil, err
	}
	return &CloudHandle{srv: srv, Addr: bound}, nil
}

// EdgeHandle is a connected edge client performing remote split inference.
type EdgeHandle struct {
	client *splitrt.EdgeClient
	sys    *System
}

// ConnectEdge dials a cloud server and returns an edge client that sends
// only noisy activations (raw activations when no noise is learned).
// opts configure request timeouts and reconnect-with-backoff behaviour.
func (s *System) ConnectEdge(addr string, opts ...splitrt.ClientOption) (*EdgeHandle, error) {
	if s.monitor != nil {
		// Inherit the system's privacy monitor; explicit options later in
		// the slice still win.
		opts = append([]splitrt.ClientOption{splitrt.WithPrivacyTelemetry(s.monitor)}, opts...)
	}
	client, err := splitrt.Dial(addr, s.split, s.cutLayer, s.noise, s.seed+99, opts...)
	if err != nil {
		return nil, err
	}
	return &EdgeHandle{client: client, sys: s}, nil
}

// PoolHandle is a connected fleet client balancing split inference over
// several cloud backends.
type PoolHandle struct {
	pool *splitrt.Pool
	sys  *System
}

// ConnectPool dials every backend address and returns a fleet handle:
// requests balance over the healthy backends, failures reroute, ejected
// backends are health-checked back in, and (with splitrt.WithHedging)
// slow calls are hedged. The pool applies the system's noise collection
// exactly as a single edge client would — the privacy boundary does not
// move when the fleet grows.
func (s *System) ConnectPool(addrs []string, opts ...splitrt.PoolOption) (*PoolHandle, error) {
	pool, err := splitrt.NewPool(s.split, s.cutLayer, s.noise, s.seed+99, addrs, opts...)
	if err != nil {
		return nil, err
	}
	return &PoolHandle{pool: pool, sys: s}, nil
}

// Pool exposes the underlying fleet client (for gateway construction or
// direct drain control).
func (h *PoolHandle) Pool() *splitrt.Pool { return h.pool }

// Stats snapshots the fleet's health and traffic counters.
func (h *PoolHandle) Stats() splitrt.PoolStats { return h.pool.Stats() }

// Classify runs one image through the fleet.
func (h *PoolHandle) Classify(pixels []float64) (int, error) {
	x, err := h.sys.toBatch(pixels)
	if err != nil {
		return 0, err
	}
	preds, err := h.pool.Classify(x)
	if err != nil {
		return 0, err
	}
	return preds[0], nil
}

// Drain gracefully removes one backend: in-flight calls finish, new calls
// reroute.
func (h *PoolHandle) Drain(addr string) error { return h.pool.Drain(addr) }

// Close drains the pool and closes every backend connection.
func (h *PoolHandle) Close() error { return h.pool.Close() }

// SetWireQuantization switches the edge→cloud transport to linear
// quantization at the given bit width (0 = dense float). 8 bits cuts the
// wire volume several-fold with negligible accuracy impact.
func (h *EdgeHandle) SetWireQuantization(bits int) error {
	return h.client.SetWireQuantization(bits)
}

// BytesSent returns the cumulative bytes the edge has sent to the cloud.
func (h *EdgeHandle) BytesSent() int64 { return h.client.Stats().BytesSent }

// Spans returns the client-side span ring (splitrt.WithSpans), or nil when
// span recording is not configured.
func (h *EdgeHandle) Spans() *obs.SpanRing { return h.client.Spans() }

// LastTrace returns the trace ID of the most recent request — the key
// `shredder audit verify` takes to fetch this query's inclusion proof
// from an audited server's /debug/audit endpoint.
func (h *EdgeHandle) LastTrace() obs.TraceID { return h.client.LastTrace() }

// Classify runs one image through the remote pipeline.
func (h *EdgeHandle) Classify(pixels []float64) (int, error) {
	x, err := h.sys.toBatch(pixels)
	if err != nil {
		return 0, err
	}
	preds, err := h.client.Classify(x)
	if err != nil {
		return 0, err
	}
	return preds[0], nil
}

// Close terminates the client connection.
func (h *EdgeHandle) Close() error { return h.client.Close() }
