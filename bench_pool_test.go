// Benchmark for the fleet-serving layer: concurrent workers pushing
// activations through a splitrt.Pool over loopback TCP. Three regimes:
//
//   - backends=1 — the pool as a thin wrapper over one server (its floor);
//   - backends=3 — round-robin over a uniform fleet;
//   - backends=3/slow1 — one backend carries injected latency, with and
//     without hedging. Unhedged, the slow backend owns the tail (p99 ≈ the
//     injected delay); hedged, the pool re-issues straggling calls to a
//     fast backend and p99 collapses back toward the uniform fleet's.
//
// The p50_ms/p99_ms metrics are end-to-end per-call latencies measured at
// the caller, not per-backend RTTs. Reference numbers live in
// results_bench_pool.txt.
package shredder

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"shredder/internal/splitrt"
)

const benchPoolSlow = 20 * time.Millisecond

func benchPoolServe(b *testing.B, backends int, slowLast time.Duration, hedged bool) {
	pre, spl := lenetSplit(b)
	layer, err := pre.Spec.CutLayer("conv2")
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, backends)
	for i := 0; i < backends; i++ {
		var opts []splitrt.ServerOption
		if slowLast > 0 && i == backends-1 {
			opts = append(opts, splitrt.WithLatencyInjection(slowLast))
		}
		srv := splitrt.NewCloudServer(spl, layer, opts...)
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = addr
	}
	var popts []splitrt.PoolOption
	if hedged {
		popts = append(popts, splitrt.WithHedging(0.9, time.Millisecond))
	}
	pool, err := splitrt.NewPool(spl, layer, nil, 1, addrs, popts...)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()

	batch := pre.Test.Batches(1)[0]
	ctx := context.Background()
	// Prime every backend's latency histogram past the hedge-arming
	// threshold so the measured region hedges from its first call.
	warm := spl.Local(batch.Images)
	for i := 0; i < 20*backends; i++ {
		if _, err := pool.InferActivation(ctx, warm); err != nil {
			b.Fatal(err)
		}
	}

	const workers = 4
	durs := make([][]time.Duration, workers)
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w < b.N%workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			a := spl.Local(batch.Images) // private activation per worker
			durs[w] = make([]time.Duration, 0, n)
			for j := 0; j < n; j++ {
				start := time.Now()
				if _, err := pool.InferActivation(ctx, a); err != nil {
					b.Error(err)
					return
				}
				durs[w] = append(durs[w], time.Since(start))
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()

	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) == 0 {
		return
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return 1e3 * all[i].Seconds()
	}
	b.ReportMetric(q(0.50), "p50_ms")
	b.ReportMetric(q(0.99), "p99_ms")
	s := pool.Stats()
	b.ReportMetric(float64(s.Hedges), "hedges")
	b.ReportMetric(float64(s.HedgeWins), "hedge_wins")
}

func BenchmarkPoolServe(b *testing.B) {
	b.Run("backends=1", func(b *testing.B) {
		benchPoolServe(b, 1, 0, false)
	})
	b.Run("backends=3", func(b *testing.B) {
		benchPoolServe(b, 3, 0, false)
	})
	b.Run("backends=3/slow1", func(b *testing.B) {
		benchPoolServe(b, 3, benchPoolSlow, false)
	})
	b.Run("backends=3/slow1/hedged", func(b *testing.B) {
		benchPoolServe(b, 3, benchPoolSlow, true)
	})
}
