// Command experiments regenerates the tables and figures of the Shredder
// paper's evaluation section (§3). Each run prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Usage:
//
//	experiments -run all                      # everything, full scale
//	experiments -run table1 -quick            # CI-scale smoke run
//	experiments -run fig5 -nets lenet         # one figure, one network
//	experiments -run all -workdir .cache      # cache pre-trained weights
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"shredder/internal/experiments"
	"shredder/internal/obs"
)

func main() {
	run := flag.String("run", "all", "what to regenerate: table1, fig3, fig4, fig5, fig6, fitted, or all")
	quick := flag.Bool("quick", false, "CI-scale run: small datasets, short training")
	workdir := flag.String("workdir", "", "directory for cached pre-trained weights")
	seed := flag.Int64("seed", 1, "master seed")
	nets := flag.String("nets", "", "comma-separated network filter (default: paper's set per experiment)")
	out := flag.String("out", "", "also write the report to this file")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	quiet := flag.Bool("quiet", false, "suppress progress output on stderr (results still print)")
	flag.Parse()

	// All progress chatter goes through one writer so -quiet silences it in
	// a single place; the rendered tables still go to stdout/-out.
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = io.Discard
	}

	cfg := experiments.Config{
		Workdir:  *workdir,
		Quick:    *quick,
		Seed:     *seed,
		Progress: progress,
	}
	if *nets != "" {
		cfg.Networks = strings.Split(*nets, ",")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	if *run == "all" {
		for _, r := range []string{"table1", "fig3", "fig4", "fig5", "fig6", "fitted"} {
			want[r] = true
		}
	} else {
		for _, r := range strings.Split(*run, ",") {
			want[strings.TrimSpace(r)] = true
		}
	}

	type renderer interface {
		Render(io.Writer)
		WriteCSV(io.Writer) error
	}
	runners := []struct {
		name string
		fn   func(experiments.Config) (renderer, error)
	}{
		{"table1", func(c experiments.Config) (renderer, error) { return experiments.Table1(c) }},
		{"fig3", func(c experiments.Config) (renderer, error) { return experiments.Fig3(c) }},
		{"fig4", func(c experiments.Config) (renderer, error) { return experiments.Fig4(c) }},
		{"fig5", func(c experiments.Config) (renderer, error) { return experiments.Fig5(c) }},
		{"fig6", func(c experiments.Config) (renderer, error) { return experiments.Fig6(c) }},
		{"fitted", func(c experiments.Config) (renderer, error) { return experiments.Fitted(c) }},
	}

	// Per-experiment wall time rides the obs profiler (each experiment is a
	// tracked stage) instead of bespoke timing code; the stage table renders
	// at the end and lands in timings.csv under -csv.
	prof := obs.NewProfiler(nil)

	ran := 0
	for _, r := range runners {
		if !want[r.name] {
			continue
		}
		stop := prof.Track(r.name)
		fmt.Fprintf(progress, "=== running %s ===\n", r.name)
		res, err := r.fn(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.name, err))
		}
		fmt.Fprintln(w)
		res.Render(w)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, r.name+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := res.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
		}
		fmt.Fprintf(progress, "=== %s done in %v ===\n", r.name, stop().Round(time.Second))
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("nothing to run: -run=%q (want table1, fig3, fig4, fig5, fig6, fitted, or all)", *run))
	}
	if ran > 1 {
		fmt.Fprintln(progress, "per-experiment timings:")
		prof.WriteTable(progress)
	}
	if *csvDir != "" {
		f, err := os.Create(filepath.Join(*csvDir, "timings.csv"))
		if err != nil {
			fatal(err)
		}
		if err := prof.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
