package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shredder/internal/obs"
)

// topSnapshot builds a merged-fleet-shaped snapshot by hand: a local
// gateway plus two backends, one of them firing its privacy SLO.
func topSnapshot() obs.Snapshot {
	return obs.Snapshot{
		Counters: map[string]int64{
			"gateway.requests":              120,
			"backend.a.server.requests":     70,
			"backend.b.server.requests":     50,
			"backend.a.server.responses.ok": 70,
		},
		Gauges: map[string]float64{
			"process.uptime_seconds":              42,
			"process.goroutines":                  9,
			"process.heap_bytes":                  2 << 20,
			"backend.a.server.batch.occupancy":    3,
			"backend.a.privacy.invivo.last":       1.25,
			"backend.b.privacy.invivo.last":       0.003,
			"backend.b.slo.privacy.invivo.firing": 1,
			"backend.b.slo.privacy.invivo.value":  0.003,
			"backend.b.slo.privacy.invivo.target": 0.1,
			"slo.privacy.invivo.firing":           0, // local objective healthy
		},
		Histograms: map[string]obs.HistogramSnapshot{
			"backend.a.server.latency_seconds": {Count: 70, Sum: 0.7, P50: 0.01, P95: 0.02, P99: 0.03},
			"backend.a.privacy.invivo":         {Count: 12, Sum: 15},
			"backend.b.privacy.invivo":         {Count: 8, Sum: 0.024},
		},
		Window: &obs.WindowSnapshot{
			Seconds: 30,
			Counters: map[string]obs.WindowCounter{
				"gateway.requests":          {Delta: 60, Rate: 2},
				"backend.a.server.requests": {Delta: 30, Rate: 1},
			},
			Histograms: map[string]obs.WindowHistogram{
				"backend.a.server.latency_seconds": {Count: 30, Rate: 1, Mean: 0.01, P50: 0.009, P95: 0.02, P99: 0.025},
			},
		},
	}
}

func TestTopRows(t *testing.T) {
	rows := topRows(topSnapshot())
	if len(rows) != 3 {
		t.Fatalf("topRows: got %d rows, want 3: %+v", len(rows), rows)
	}
	if rows[0].kind != "gateway" || rows[0].prefix != "" {
		t.Fatalf("first row should be the local gateway, got %+v", rows[0])
	}
	if rows[1].label != "backend.a" || rows[2].label != "backend.b" {
		t.Fatalf("backends should sort by label, got %q then %q", rows[1].label, rows[2].label)
	}
}

func TestTopFiring(t *testing.T) {
	firing := topFiring(topSnapshot())
	if len(firing) != 1 {
		t.Fatalf("topFiring: got %d alerts, want 1 (zero-valued firing gauges are healthy): %+v", len(firing), firing)
	}
	a := firing[0]
	if a.name != "backend.b.slo.privacy.invivo" || a.value != 0.003 || a.target != 0.1 {
		t.Fatalf("alert mismatch: %+v", a)
	}
}

func TestRenderTop(t *testing.T) {
	events := []obs.Event{
		{Seq: 1, UnixNanos: time.Now().UnixNano(), Name: "privacy.invivo", State: obs.StateFiring,
			Value: 0.003, Target: 0.1, Op: obs.OpAtLeast, Window: 30, Source: "backend.b"},
	}
	var sb strings.Builder
	renderTop(&sb, "http://x", topSnapshot(), events, time.Now())
	out := sb.String()
	for _, want := range []string{
		"window 30s",
		"(local gateway)",
		"backend.a",
		"backend.b",
		"1.2500", // backend.a in-vivo 1/SNR gauge
		"0.0030", // backend.b in-vivo 1/SNR gauge
		"9ms",    // backend.a windowed p50 preferred over cumulative 10ms
		"FIRING backend.b.slo.privacy.invivo",
		"recent events:",
		"backend.b privacy.invivo firing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTop output missing %q:\n%s", want, out)
		}
	}
	// backend.b exports no latency histogram and no batching: dashes, not zeros.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "backend.b ") && !strings.Contains(line, "-") {
			t.Errorf("backend.b row should dash out absent metrics: %q", line)
		}
	}
}

func TestRenderTopEmpty(t *testing.T) {
	var sb strings.Builder
	renderTop(&sb, "http://x", obs.Snapshot{}, nil, time.Now())
	out := sb.String()
	if !strings.Contains(out, "no serving metrics") {
		t.Errorf("empty snapshot should say so:\n%s", out)
	}
	if !strings.Contains(out, "alerts: none firing") {
		t.Errorf("empty snapshot should report no alerts:\n%s", out)
	}
}

// TestTopFetch drives the fetch path against a real obs.Debug handler, the
// same endpoint `shredder serve -debug-addr` mounts.
func TestTopFetch(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("server.requests").Add(5)
	reg.Histogram("server.latency_seconds").Observe(0.01)
	win := obs.NewWindows(reg, obs.WindowOptions{Bucket: 10 * time.Millisecond, Buckets: 4})
	win.Advance(time.Now())
	ring := obs.NewEventRing(8)
	ring.Append(obs.Event{Name: "latency.p99", State: obs.StateFiring, Target: 0.001, Op: obs.OpAtMost})
	srv := httptest.NewServer(obs.Debug{Metrics: reg, Windows: win, Events: ring}.Handler())
	defer srv.Close()

	snap, events, err := topFetch(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests"] != 5 {
		t.Fatalf("snapshot counters: %+v", snap.Counters)
	}
	if snap.Window == nil {
		t.Fatal("snapshot should carry the window")
	}
	if len(events) != 1 || events[0].Name != "latency.p99" {
		t.Fatalf("events: %+v", events)
	}
	rows := topRows(snap)
	if len(rows) != 1 || rows[0].kind != "server" {
		t.Fatalf("rows: %+v", rows)
	}
	var sb strings.Builder
	renderTop(&sb, srv.URL, snap, events, time.Now())
	// No slo.*.firing gauge was registered (bare ring, no SLO engine), so
	// the transition shows up in the event feed rather than the alert table.
	if !strings.Contains(sb.String(), "latency.p99 firing") {
		t.Errorf("rendered frame should show the firing event:\n%s", sb.String())
	}
}

// TestTopFetchNoEvents: a metrics-only endpoint (no SLO) degrades to a
// frame without an events section instead of erroring.
func TestTopFetchNoEvents(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("server.requests").Inc()
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", obs.Debug{Metrics: reg}.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// The bare Debug handler mounted under /debug/metrics still serves
	// events at its own subpath, so point fetch at a mux that 404s it.
	snap, events, err := topFetch(srv.Client(), srv.URL)
	if err == nil && len(events) == 0 && len(snap.Counters) >= 0 {
		return
	}
	if err != nil {
		t.Fatalf("metrics-only endpoint should not fail the frame: %v", err)
	}
}
