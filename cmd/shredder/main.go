// Command shredder is the command-line interface to the Shredder
// reproduction: pre-train a benchmark network, learn a noise collection,
// evaluate privacy/accuracy, and run split inference locally or across a
// TCP edge/cloud pair.
//
// All state is derived deterministically from (network, seed, sizes), so
// separate invocations (e.g. a serve process and an infer process) agree on
// weights as long as they share flags; -cache reuses trained weights on
// disk.
//
// Usage:
//
//	shredder pretrain    -net lenet [-seed 1] [-cache dir]
//	shredder train-noise -net lenet [-count 8] [-out noise.gob]
//	shredder eval        -net lenet [-noise noise.gob]
//	shredder cuts        -net svhn
//	shredder attack      -net lenet -cut conv0 [-noise noise.gob]
//	shredder serve       -net lenet -addr 127.0.0.1:7777 [-dtype float32] [-audit-ledger audit.bin]
//	shredder gateway     -net lenet -backends host1:7777,host2:7777 -addr :9000
//	shredder audit       verify -url http://host:port/debug/audit -trace <hex id>
//	shredder top         -url http://host:port [-interval 2s] [-n 0]
//	shredder infer       -net lenet -addr 127.0.0.1:7777 [-noise noise.gob] [-n 16]
//	shredder profile     -net lenet [-n 50] [-csv profile.csv] [-dtype float32]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"shredder"
	"shredder/internal/audit"
	"shredder/internal/nn"
	"shredder/internal/obs"
	"shredder/internal/sched"
	"shredder/internal/splitrt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "pretrain":
		err = cmdPretrain(os.Args[2:])
	case "train-noise":
		err = cmdTrainNoise(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "gateway":
		err = cmdGateway(os.Args[2:])
	case "infer":
		err = cmdInfer(os.Args[2:])
	case "cuts":
		err = cmdCuts(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "shredder: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shredder:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `shredder — learning noise distributions to protect inference privacy

commands:
  pretrain     pre-train a benchmark network (cached with -cache)
  train-noise  learn a collection of noise tensors and save it
  eval         evaluate accuracy and mutual-information loss
  serve        host the remote (cloud) part of a split network over TCP
  gateway      front a fleet of serve processes: balancing, hedging, drain
  infer        run split inference against a serve or gateway process
  cuts         print the cost model of every cutting point of a network
  profile      time every layer over N warm inferences, per cutting point
  attack       measure inversion/gallery attack resistance of learned noise
  audit        verify an inclusion proof against a server's anchored roots
  top          live dashboard over a serve or gateway debug endpoint

networks: lenet, cifar, svhn, alexnet`)
}

// commonFlags registers the flags shared by every subcommand.
type commonFlags struct {
	net       string
	cut       string
	seed      int64
	trainN    int
	testN     int
	epochs    int
	cache     string
	dtype     string
	noiseMode string
	noiseDist string
}

func registerCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.net, "net", "lenet", "benchmark network (lenet, cifar, svhn, alexnet)")
	fs.StringVar(&c.cut, "cut", "", "cutting point (default: the network's last conv)")
	fs.Int64Var(&c.seed, "seed", 1, "master seed: same seed → identical weights and data")
	fs.IntVar(&c.trainN, "train", 0, "training-set size (0 = network default)")
	fs.IntVar(&c.testN, "test", 0, "test-set size (0 = network default)")
	fs.IntVar(&c.epochs, "epochs", 0, "pre-training epochs (0 = network default)")
	fs.StringVar(&c.cache, "cache", "", "directory for cached pre-trained weights")
	fs.StringVar(&c.dtype, "dtype", "", "inference arithmetic: float64 (default) or float32 — compiles a fused plan; training always runs float64")
	fs.StringVar(&c.noiseMode, "noise-mode", "", "noise deployment: stored (default, replay trained tensors), fitted (sample fresh noise from fitted distributions), fitted-mul (fresh multiplicative a'=a⊙w+n)")
	fs.StringVar(&c.noiseDist, "noise-dist", "", "fitted distribution family: laplace (default) or gaussian")
	return c
}

func (c *commonFlags) system() (*shredder.System, error) {
	return shredder.NewSystem(c.net, shredder.Config{
		Cut: c.cut, Seed: c.seed,
		TrainN: c.trainN, TestN: c.testN, Epochs: c.epochs,
		WeightCacheDir: c.cache, Progress: os.Stderr,
		Dtype:     c.dtype,
		NoiseMode: c.noiseMode, NoiseDist: c.noiseDist,
	})
}

func cmdPretrain(args []string) error {
	fs := flag.NewFlagSet("pretrain", flag.ExitOnError)
	c := registerCommon(fs)
	out := fs.String("out", "", "also save weights to this file")
	fs.Parse(args)
	sys, err := c.system()
	if err != nil {
		return err
	}
	fmt.Printf("%s pre-trained: test accuracy %.2f%%\n", sys.Network(), 100*sys.BaselineAccuracy())
	if *out != "" {
		if err := sys.SaveWeights(*out); err != nil {
			return err
		}
		fmt.Println("weights saved to", *out)
	}
	return nil
}

func cmdTrainNoise(args []string) error {
	fs := flag.NewFlagSet("train-noise", flag.ExitOnError)
	c := registerCommon(fs)
	count := fs.Int("count", 8, "noise tensors in the collection")
	out := fs.String("out", "noise.gob", "output file for the collection")
	scale := fs.Float64("scale", 0, "Laplace init scale b (0 = tuned default)")
	lambda := fs.Float64("lambda", 0, "privacy knob λ (0 = tuned default)")
	nepochs := fs.Float64("noise-epochs", 0, "noise-training epochs, fractional ok (0 = default)")
	selfSup := fs.Bool("self-supervised", false, "train against the model's own predictions")
	mul := fs.Bool("multiplicative", false, "train per-element weights jointly with the noise (a'=a⊙w+n); implied by -noise-mode fitted-mul")
	quiet := fs.Bool("quiet", false, "suppress per-iteration progress lines")
	csvPath := fs.String("csv", "", "append per-evaluation training events to this CSV file")
	fs.Parse(args)
	sys, err := c.system()
	if err != nil {
		return err
	}
	var hooks []obs.Hook
	if !*quiet {
		hooks = append(hooks, obs.ProgressHook(os.Stderr))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		hooks = append(hooks, obs.CSVHook(f))
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "training %d noise tensors for %s (cut %s)...\n", *count, sys.Network(), sys.Cut())
	}
	sys.LearnNoiseWith(*count, shredder.NoiseOptions{
		Scale: *scale, Lambda: *lambda, Epochs: *nepochs, SelfSupervised: *selfSup,
		Multiplicative: *mul,
		Hook:           obs.Hooks(hooks...),
	})
	if err := sys.SaveNoise(*out); err != nil {
		return err
	}
	fmt.Printf("noise saved to %s (mode %s)\n", *out, sys.NoiseMode())
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	c := registerCommon(fs)
	noise := fs.String("noise", "", "noise collection file (default: train 8 fresh tensors)")
	count := fs.Int("count", 8, "collection size when training fresh noise")
	fs.Parse(args)
	sys, err := c.system()
	if err != nil {
		return err
	}
	if *noise != "" {
		if err := sys.LoadNoise(*noise); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "no -noise file: training %d fresh noise tensors...\n", *count)
		sys.LearnNoise(*count)
	}
	fmt.Println(sys.Evaluate())
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	c := registerCommon(fs)
	addr := fs.String("addr", "127.0.0.1:7777", "listen address")
	idle := fs.Duration("idle-timeout", 5*time.Minute, "drop connections idle longer than this (0 = never)")
	write := fs.Duration("write-timeout", 30*time.Second, "per-response write deadline (0 = none)")
	handler := fs.Duration("handler-timeout", time.Minute, "per-request inference bound (0 = none)")
	batch := fs.Int("batch", 0, "coalesce concurrent requests into batches of up to this many samples (0 = off)")
	batchDelay := fs.Duration("batch-delay", 2*time.Millisecond, "max queueing behind an in-flight batch before a partial batch flushes")
	debugAddr := fs.String("debug-addr", "", "serve /debug/metrics, /debug/spans and pprof on this HTTP address (empty = off)")
	profile := fs.Bool("profile", false, "attach the per-layer profiler (table at /debug/profile; see -debug-addr)")
	window := fs.Duration("window", 0, "sliding-window span for windowed rates and quantiles in /debug/metrics (0 = off unless an -slo-* flag is set)")
	windowBucket := fs.Duration("window-bucket", 5*time.Second, "bucket granularity at which old observations age out of the window")
	sloIvl := fs.Duration("slo-interval", 0, "SLO evaluation cadence (0 = the window bucket)")
	sloP99 := fs.Duration("slo-p99", 0, "fire an SLO event when the windowed p99 serving latency exceeds this (0 = off)")
	sloPrivacy := fs.Float64("slo-privacy", 0, "fire an SLO event when the windowed mean in-vivo 1/SNR relayed by telemetry-enabled clients drops below this floor (0 = off, negative = the benchmark's tuned privacy target)")
	auditOn := fs.Bool("audit", false, "keep a tamper-evident in-memory audit ledger of served requests (implied by -audit-ledger)")
	auditLedger := fs.String("audit-ledger", "", "append-only file anchoring the audit ledger's Merkle roots (enables -audit)")
	auditBatch := fs.Int("audit-batch", 0, "records per sealed audit batch (0 = default 64)")
	auditDelay := fs.Duration("audit-delay", 0, "max time a record waits in an unsealed batch (0 = default 5ms)")
	fs.Parse(args)
	sys, err := c.system()
	if err != nil {
		return err
	}
	opts := []splitrt.ServerOption{
		splitrt.WithIdleTimeout(*idle),
		splitrt.WithWriteTimeout(*write),
		splitrt.WithHandlerTimeout(*handler),
	}
	if *batch > 0 {
		opts = append(opts, splitrt.WithBatching(sched.Options{MaxBatch: *batch, MaxDelay: *batchDelay}))
	}
	if *debugAddr != "" {
		opts = append(opts, splitrt.WithDebugServer(*debugAddr))
	}
	if *profile {
		opts = append(opts, splitrt.WithProfiling())
	}
	var objectives []obs.Objective
	if *sloP99 > 0 {
		objectives = append(objectives, obs.Objective{
			Name: "latency.p99", Metric: "server.latency_seconds",
			Aggregate: obs.AggP99, Op: obs.OpAtMost, Target: sloP99.Seconds(), MinCount: 8,
		})
	}
	if *sloPrivacy != 0 {
		target := *sloPrivacy
		if target < 0 {
			target = sys.PrivacyTarget()
		}
		objectives = append(objectives, obs.Objective{
			Name: "privacy.invivo", Metric: "privacy.invivo",
			Aggregate: obs.AggMean, Op: obs.OpAtLeast, Target: target, MinCount: 8,
		})
	}
	if *window > 0 || len(objectives) > 0 {
		opt := obs.WindowOptions{Bucket: *windowBucket}
		if *window > 0 && *windowBucket > 0 {
			opt.Buckets = int(*window / *windowBucket)
		}
		opts = append(opts, splitrt.WithWindows(opt))
	}
	if len(objectives) > 0 {
		opts = append(opts, splitrt.WithSLO(*sloIvl, objectives...))
	}
	if *auditOn || *auditLedger != "" {
		aopts := audit.Options{MaxBatch: *auditBatch, MaxDelay: *auditDelay}
		if *auditLedger != "" {
			led, err := audit.OpenFileLedger(*auditLedger)
			if err != nil {
				return err
			}
			if led.Recovered > 0 {
				fmt.Fprintf(os.Stderr, "audit ledger %s: truncated %d bytes of partial tail from a previous crash\n",
					*auditLedger, led.Recovered)
			}
			aopts.Ledger = led
		}
		opts = append(opts, splitrt.WithAudit(audit.New(aopts)))
	}
	cloud, err := sys.ServeCloud(*addr, opts...)
	if err != nil {
		return err
	}
	if *batch > 0 {
		fmt.Printf("cloud part of %s (cut %s, %s) serving on %s (micro-batching ≤%d samples, %v delay budget)\n",
			sys.Network(), sys.Cut(), sys.Dtype(), cloud.Addr, *batch, *batchDelay)
	} else {
		fmt.Printf("cloud part of %s (cut %s, %s) serving on %s\n",
			sys.Network(), sys.Cut(), sys.Dtype(), cloud.Addr)
	}
	if d := cloud.DebugAddr(); d != "" {
		fmt.Printf("debug endpoint on http://%s/debug/metrics\n", d)
		if len(objectives) > 0 {
			fmt.Printf("SLO events on http://%s/debug/events (%d objectives)\n", d, len(objectives))
		}
		if cloud.Auditor() != nil {
			fmt.Printf("audit proofs on http://%s/debug/audit\n", d)
		}
	}
	select {} // serve until killed
}

// cmdGateway fronts a fleet of serve processes with one protocol endpoint:
// edge clients dial the gateway exactly as they would a single server, and
// every request is balanced, rerouted on failure, and (optionally) hedged
// across the backends. The gateway carries no noise collection — the
// activations it relays were noised on the edge devices — so its pool is a
// pure router.
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	c := registerCommon(fs)
	addr := fs.String("addr", "127.0.0.1:9000", "gateway listen address")
	backends := fs.String("backends", "", "comma-separated backend addresses (required)")
	balance := fs.String("balance", "roundrobin", "balancing policy: roundrobin, least-inflight, consistent")
	hedgeQ := fs.Float64("hedge-quantile", 0, "hedge a call once it exceeds this quantile of the fastest backend's live latency (0 = hedging off, try 0.95)")
	hedgeMin := fs.Duration("hedge-min", 5*time.Millisecond, "floor for the hedge budget, so cold or fast fleets do not hedge everything")
	healthIvl := fs.Duration("health-interval", time.Second, "how often ejected backends are redialed for readmission")
	ejectAfter := fs.Int("eject-after", 3, "consecutive failures before a backend leaves rotation")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request relay deadline (0 = none)")
	idle := fs.Duration("idle-timeout", 5*time.Minute, "drop client connections idle longer than this (0 = never)")
	debugAddr := fs.String("debug-addr", "", "serve the merged fleet /debug/metrics on this HTTP address (empty = off)")
	backendDebug := fs.String("backend-debug", "", "comma-separated backend /debug/metrics URLs to fold into the merged snapshot, ordered like -backends")
	backendAudit := fs.String("backend-audit", "", "comma-separated backend /debug/audit URLs; the gateway then serves fleet-wide proof lookups and the anchored-root union at its own /debug/audit")
	backendEvents := fs.String("backend-events", "", "comma-separated backend /debug/events URLs; the gateway then serves the fleet's merged SLO event stream at its own /debug/events, ordered like -backends")
	window := fs.Duration("window", 0, "sliding-window span for windowed rates and quantiles in the merged /debug/metrics (0 = off unless -slo-privacy is set)")
	windowBucket := fs.Duration("window-bucket", 5*time.Second, "bucket granularity at which old observations age out of the window")
	sloIvl := fs.Duration("slo-interval", 0, "SLO evaluation cadence (0 = the window bucket)")
	sloPrivacy := fs.Float64("slo-privacy", 0, "fire an SLO event when the fleet's windowed mean relayed in-vivo 1/SNR drops below this floor (0 = off, negative = the benchmark's tuned privacy target)")
	fs.Parse(args)
	if *backends == "" {
		return fmt.Errorf("gateway: -backends is required")
	}
	addrs := strings.Split(*backends, ",")
	bal, err := splitrt.BalancerByName(*balance)
	if err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	poolOpts := []splitrt.PoolOption{
		splitrt.WithBalancer(bal),
		splitrt.WithHealthInterval(*healthIvl),
		splitrt.WithEjectAfter(*ejectAfter),
		splitrt.WithPoolClientOptions(splitrt.WithTimeout(*timeout)),
	}
	if *hedgeQ > 0 {
		poolOpts = append(poolOpts, splitrt.WithHedging(*hedgeQ, *hedgeMin))
	}
	pool, err := sys.ConnectPool(addrs, poolOpts...)
	if err != nil {
		return err
	}
	defer pool.Close()

	gwOpts := []splitrt.GatewayOption{
		splitrt.WithGatewayIdleTimeout(*idle),
		splitrt.WithGatewayCallTimeout(*timeout),
	}
	var objectives []obs.Objective
	if *sloPrivacy != 0 {
		target := *sloPrivacy
		if target < 0 {
			target = sys.PrivacyTarget()
		}
		objectives = append(objectives, obs.Objective{
			Name: "privacy.invivo", Metric: "privacy.invivo",
			Aggregate: obs.AggMean, Op: obs.OpAtLeast, Target: target, MinCount: 8,
		})
	}
	if *window > 0 || len(objectives) > 0 {
		opt := obs.WindowOptions{Bucket: *windowBucket}
		if *window > 0 && *windowBucket > 0 {
			opt.Buckets = int(*window / *windowBucket)
		}
		gwOpts = append(gwOpts, splitrt.WithGatewayWindows(opt))
	}
	if len(objectives) > 0 {
		gwOpts = append(gwOpts, splitrt.WithGatewaySLO(*sloIvl, objectives...))
	}
	if *debugAddr != "" {
		gwOpts = append(gwOpts, splitrt.WithGatewayDebugServer(*debugAddr))
		if *backendDebug != "" {
			var sources []obs.SnapshotSource
			for i, u := range strings.Split(*backendDebug, ",") {
				label := fmt.Sprintf("backend.%d", i)
				if i < len(addrs) {
					label = "backend." + addrs[i]
				}
				sources = append(sources, obs.HTTPSnapshotSource(label, u))
			}
			gwOpts = append(gwOpts, splitrt.WithBackendSources(sources...))
		}
		if *backendAudit != "" {
			var sources []audit.Source
			for i, u := range strings.Split(*backendAudit, ",") {
				name := fmt.Sprintf("backend.%d", i)
				if i < len(addrs) {
					name = addrs[i]
				}
				sources = append(sources, audit.HTTPSource{Name: name, Base: u})
			}
			gwOpts = append(gwOpts, splitrt.WithBackendAuditSources(sources...))
		}
		if *backendEvents != "" {
			var sources []obs.EventSource
			for i, u := range strings.Split(*backendEvents, ",") {
				label := fmt.Sprintf("backend.%d", i)
				if i < len(addrs) {
					label = "backend." + addrs[i]
				}
				sources = append(sources, obs.HTTPEventSource(label, u))
			}
			gwOpts = append(gwOpts, splitrt.WithBackendEventSources(sources...))
		}
	}
	gw := splitrt.NewGateway(pool.Pool(), gwOpts...)
	bound, err := gw.Serve(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("gateway for %s (cut %s) serving on %s, fronting %d backends (%s balancing)\n",
		sys.Network(), sys.Cut(), bound, len(addrs), *balance)
	if *hedgeQ > 0 {
		fmt.Printf("hedging at the p%.0f budget (floor %v)\n", *hedgeQ*100, *hedgeMin)
	}
	if d := gw.DebugAddr(); d != "" {
		fmt.Printf("merged fleet metrics on http://%s/debug/metrics\n", d)
		if len(objectives) > 0 || *backendEvents != "" {
			fmt.Printf("fleet SLO events on http://%s/debug/events\n", d)
		}
		if *backendAudit != "" {
			fmt.Printf("fleet audit proofs on http://%s/debug/audit\n", d)
		}
	}
	select {} // serve until killed
}

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	c := registerCommon(fs)
	addr := fs.String("addr", "127.0.0.1:7777", "cloud server address")
	noise := fs.String("noise", "", "noise collection file (empty = send raw activations)")
	n := fs.Int("n", 16, "number of test samples to classify")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request round-trip deadline (0 = none)")
	retries := fs.Int("retries", 3, "reconnect attempts on a broken connection")
	privacySample := fs.Int("privacy-sample", 0, "record live privacy telemetry, computing 1/SNR every N queries (0 = off; needs -noise)")
	fs.Parse(args)
	sys, err := c.system()
	if err != nil {
		return err
	}
	if *noise != "" {
		if err := sys.LoadNoise(*noise); err != nil {
			return err
		}
	}
	if *privacySample > 0 {
		if err := sys.EnablePrivacyTelemetry(obs.NewRegistry(), *privacySample); err != nil {
			return err
		}
	}
	edge, err := sys.ConnectEdge(*addr,
		splitrt.WithTimeout(*timeout),
		splitrt.WithReconnect(*retries, 100*time.Millisecond))
	if err != nil {
		return err
	}
	defer edge.Close()
	correct := 0
	for i := 0; i < *n && i < sys.TestSize(); i++ {
		px, y := sys.TestSample(i)
		got, err := edge.Classify(px)
		if err != nil {
			return err
		}
		mark := " "
		if got == y {
			correct++
			mark = "✓"
		}
		fmt.Printf("sample %3d: predicted %2d, label %2d %s  trace %s\n", i, got, y, mark, edge.LastTrace())
	}
	fmt.Printf("accuracy: %d/%d\n", correct, *n)
	if m := sys.PrivacyMonitor(); m != nil {
		m.WriteSummary(os.Stdout)
	}
	return nil
}

func cmdCuts(args []string) error {
	fs := flag.NewFlagSet("cuts", flag.ExitOnError)
	net := fs.String("net", "lenet", "benchmark network")
	fs.Parse(args)
	cuts, err := shredder.CutPoints(*net)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %14s %14s %16s\n", "cut", "edge MACs", "comm bytes", "KMAC x MB")
	for _, c := range cuts {
		mark := "  "
		if c.Default {
			mark = " *"
		}
		fmt.Printf("%-8s %14d %14d %16.4f%s\n", c.Cut, c.EdgeMACs, c.CommBytes, c.CostKMACMB, mark)
	}
	fmt.Println("(* = default cut: the deepest convolution layer)")
	return nil
}

// cmdProfile runs N warm inferences per cutting point of a network with
// the per-layer profiler attached and prints the breakdown, annotating
// which side of the cut each layer runs on. The layer times themselves do
// not depend on the cut (the full forward pass is identical); what changes
// per cut is the edge/cloud attribution, i.e. where the wire would sit.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	c := registerCommon(fs)
	n := fs.Int("n", 50, "timed inferences per cutting point")
	warm := fs.Int("warmup", 5, "warm-up inferences before timing starts")
	csvPath := fs.String("csv", "", "also append per-layer rows to this CSV file")
	fs.Parse(args)
	if c.cache == "" {
		// Each cut builds its own System; a shared cache directory keeps
		// that to one pre-training run instead of one per cut.
		tmp, err := os.MkdirTemp("", "shredder-profile-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		c.cache = tmp
	}
	cuts := []string{c.cut}
	if c.cut == "" {
		reports, err := shredder.CutPoints(c.net)
		if err != nil {
			return err
		}
		cuts = cuts[:0]
		for _, r := range reports {
			cuts = append(cuts, r.Cut)
		}
	}
	var csvW *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "network,cut,dtype,layer,side,fwd_calls,fwd_total_s,fwd_mean_s,scratch_bytes")
		csvW = f
	}
	for _, cut := range cuts {
		c.cut = cut
		sys, err := c.system()
		if err != nil {
			return err
		}
		prof := obs.NewProfiler(nil)
		sys.AttachProfiler(prof)
		run := func(k int) error {
			for i := 0; i < k; i++ {
				px, _ := sys.TestSample(i % sys.TestSize())
				if _, err := sys.ClassifyBaseline(px); err != nil {
					return err
				}
			}
			return nil
		}
		if err := run(*warm); err != nil {
			return err
		}
		prof.Reset()
		err = run(*n)
		sys.DetachProfiler()
		if err != nil {
			return err
		}
		fmt.Printf("\n%s cut %s — %d inferences (edge: layers ≤ %s)\n",
			sys.Network(), sys.Cut(), *n, sys.CutLayerName())
		table := prof.Table()
		var total time.Duration
		for _, lp := range table {
			total += lp.ForwardTotal
		}
		fmt.Printf("%-6s %-16s %9s %12s %12s %6s %10s\n",
			"side", "layer", "calls", "total", "mean", "share", "scratch")
		side := "edge"
		for _, lp := range table {
			share := 0.0
			if total > 0 {
				share = 100 * float64(lp.ForwardTotal) / float64(total)
			}
			fmt.Printf("%-6s %-16s %9d %12s %12s %5.1f%% %10d\n",
				side, lp.Layer, lp.ForwardCalls, lp.ForwardTotal.Round(time.Microsecond),
				lp.ForwardMean().Round(100*time.Nanosecond), share, lp.ScratchBytes)
			if csvW != nil {
				fmt.Fprintf(csvW, "%s,%s,%s,%s,%s,%d,%g,%g,%d\n",
					sys.Network(), sys.Cut(), sys.Dtype(), lp.Layer, side, lp.ForwardCalls,
					lp.ForwardTotal.Seconds(), lp.ForwardMean().Seconds(), lp.ScratchBytes)
			}
			// The wire sits after the cut layer. Compiled plans report fused
			// labels like "conv1+relu1[f32]", so match by component.
			if nn.LabelMatches(lp.Layer, sys.CutLayerName()) {
				side = "cloud"
			}
		}
		fmt.Printf("total forward: %s (%.1f ms/inference)\n",
			total.Round(time.Microsecond), total.Seconds()*1000/float64(*n))
	}
	return nil
}

// cmdAudit is the client half of the tamper-evident audit ledger: given a
// trace ID (printed by `shredder infer`, or any EdgeClient's LastTrace),
// `audit verify` fetches the inclusion proof from a server or gateway
// /debug/audit endpoint, recomputes the Merkle root from the proof path,
// and checks it against the endpoint's anchored roots. Exit status is
// non-zero unless the proof verifies — operators script it directly.
// `audit status` prints the ledger summary and anchored roots.
func cmdAudit(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("audit: usage: shredder audit verify|status -url http://host:port/debug/audit [-trace <hex>]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("audit "+sub, flag.ExitOnError)
	url := fs.String("url", "", "audit endpoint, e.g. http://127.0.0.1:8080/debug/audit (required)")
	trace := fs.String("trace", "", "trace ID to verify, 16 hex digits (required for verify)")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP timeout per fetch")
	fs.Parse(rest)
	if *url == "" {
		return fmt.Errorf("audit: -url is required")
	}
	client := &http.Client{Timeout: *timeout}
	switch sub {
	case "verify":
		if *trace == "" {
			return fmt.Errorf("audit verify: -trace is required")
		}
		if _, err := audit.ParseTrace(*trace); err != nil {
			return fmt.Errorf("audit verify: %w", err)
		}
		proof, err := audit.FetchProof(*url, *trace, client)
		if err != nil {
			return err
		}
		roots, err := audit.FetchRoots(*url, client)
		if err != nil {
			return err
		}
		rec, err := proof.VerifyAgainst(roots)
		if err != nil {
			return fmt.Errorf("audit verify: proof REJECTED: %w", err)
		}
		fmt.Printf("proof OK: trace %016x is record %d of %d in sealed batch %d (root %s)\n",
			rec.Trace, proof.Index+1, proof.Count, proof.Seq, proof.Root[:16])
		fmt.Printf("  model %s cut %s, noise mode %s", rec.Model, rec.Cut, rec.Mode)
		switch {
		case rec.Member >= 0:
			fmt.Printf(", member %d", rec.Member)
		case rec.Member == -1:
			fmt.Printf(", fresh per-query sample")
		}
		fmt.Println()
		if rec.Sampled {
			fmt.Printf("  realized in-vivo 1/SNR %.4f\n", rec.InVivo)
		}
		fmt.Printf("  recorded %s, activation digest %x…\n",
			time.Unix(0, rec.UnixNanos).UTC().Format(time.RFC3339Nano), rec.ActDigest[:8])
		return nil
	case "status":
		roots, err := audit.FetchRoots(*url, client)
		if err != nil {
			return err
		}
		records := 0
		for _, r := range roots {
			records += r.Count
		}
		fmt.Printf("%d anchored roots covering %d records at %s\n", len(roots), records, *url)
		for _, r := range roots {
			fmt.Printf("  seq %4d  %3d records  %s  %x…\n",
				r.Seq, r.Count, time.Unix(0, r.UnixNanos).UTC().Format(time.RFC3339), r.Root[:8])
		}
		return nil
	default:
		return fmt.Errorf("audit: unknown subcommand %q (want verify or status)", sub)
	}
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	c := registerCommon(fs)
	noise := fs.String("noise", "", "noise collection file (default: train 4 fresh tensors)")
	samples := fs.Int("samples", 3, "samples to invert")
	steps := fs.Int("steps", 250, "gradient steps per inversion")
	trials := fs.Int("trials", 30, "gallery identification trials")
	fs.Parse(args)
	sys, err := c.system()
	if err != nil {
		return err
	}
	if *noise != "" {
		if err := sys.LoadNoise(*noise); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(os.Stderr, "no -noise file: training 4 fresh noise tensors...")
		sys.LearnNoise(4)
	}
	inv, err := sys.AttackResistance(*samples, *steps)
	if err != nil {
		return err
	}
	fmt.Println(inv)
	gal, err := sys.GalleryAttack(*trials)
	if err != nil {
		return err
	}
	fmt.Println(gal)
	return nil
}
