package main

// cmdTop is the live fleet dashboard: it polls one serve or gateway debug
// endpoint (/debug/metrics + /debug/events) and renders per-backend QPS,
// windowed latency quantiles, batch occupancy, the realized in-vivo 1/SNR,
// and the active SLO alerts. Against a gateway with -backend-debug and
// -backend-events configured, one `shredder top` watches the whole fleet.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"shredder/internal/core"
	"shredder/internal/obs"
)

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	url := fs.String("url", "", "debug endpoint base URL, e.g. http://127.0.0.1:8080 (required)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval between frames")
	n := fs.Int("n", 0, "frames to render before exiting (0 = until killed)")
	plain := fs.Bool("plain", false, "do not clear the screen between frames (log-friendly)")
	fs.Parse(args)
	if *url == "" {
		return fmt.Errorf("top: -url is required")
	}
	base := strings.TrimRight(*url, "/")
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		snap, events, err := topFetch(client, base)
		if err != nil {
			return fmt.Errorf("top: %w", err)
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, cursor home
		}
		renderTop(os.Stdout, base, snap, events, time.Now())
	}
	return nil
}

// topFetch pulls one frame's worth of state. A missing /debug/events (no
// SLO configured) degrades to a metrics-only frame rather than failing.
func topFetch(client *http.Client, base string) (obs.Snapshot, []obs.Event, error) {
	var snap obs.Snapshot
	if err := topGet(client, base+"/debug/metrics", &snap); err != nil {
		return snap, nil, err
	}
	var events []obs.Event
	if err := topGet(client, base+"/debug/events", &events); err != nil {
		events = nil
	}
	return snap, events, nil
}

func topGet(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// topRow is one serving process's line in the dashboard table: the local
// process (empty prefix) or one merged backend (prefix "backend.<x>.").
type topRow struct {
	label  string
	prefix string
	kind   string // "server" or "gateway"
}

// topRows discovers the serving processes present in a snapshot by their
// request counters, local process first, then backends sorted by label.
func topRows(s obs.Snapshot) []topRow {
	var rows []topRow
	for name := range s.Counters {
		var kind string
		switch {
		case strings.HasSuffix(name, "server.requests"):
			kind = "server"
		case strings.HasSuffix(name, "gateway.requests"):
			kind = "gateway"
		default:
			continue
		}
		prefix := strings.TrimSuffix(name, kind+".requests")
		label := strings.TrimSuffix(prefix, ".")
		if label == "" {
			label = "(local " + kind + ")"
		}
		rows = append(rows, topRow{label: label, prefix: prefix, kind: kind})
	}
	sort.Slice(rows, func(i, j int) bool {
		if (rows[i].prefix == "") != (rows[j].prefix == "") {
			return rows[i].prefix == ""
		}
		return rows[i].label < rows[j].label
	})
	return rows
}

// topAlert is one firing objective reconstructed from the slo.*.firing /
// .value / .target gauge triples, which survive the metrics merge — so a
// backend's alert is visible even when its event feed is not wired up.
type topAlert struct {
	name          string
	value, target float64
}

func topFiring(s obs.Snapshot) []topAlert {
	var out []topAlert
	for name, v := range s.Gauges {
		if v == 0 || !strings.HasSuffix(name, ".firing") {
			continue
		}
		base := strings.TrimSuffix(name, ".firing")
		if !strings.Contains(base+".", "slo.") {
			continue
		}
		out = append(out, topAlert{
			name:   base,
			value:  s.Gauges[base+".value"],
			target: s.Gauges[base+".target"],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// fmtSeconds renders a duration-in-seconds metric human-scale (1.5ms, 250µs).
func fmtSeconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// renderTop writes one dashboard frame. Pure: everything it shows comes
// from the snapshot and event list, so tests drive it directly.
func renderTop(w io.Writer, base string, snap obs.Snapshot, events []obs.Event, now time.Time) {
	fmt.Fprintf(w, "shredder top — %s @ %s", base, now.Format("15:04:05"))
	if snap.Window != nil && snap.Window.Seconds > 0 {
		fmt.Fprintf(w, "  window %.0fs", snap.Window.Seconds)
	}
	if up := snap.Gauges["process.uptime_seconds"]; up > 0 {
		fmt.Fprintf(w, "  up %s", time.Duration(up*float64(time.Second)).Round(time.Second))
	}
	if gr := snap.Gauges["process.goroutines"]; gr > 0 {
		fmt.Fprintf(w, "  goroutines %.0f", gr)
	}
	if hb := snap.Gauges["process.heap_bytes"]; hb > 0 {
		fmt.Fprintf(w, "  heap %.1fMB", hb/(1<<20))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)

	rows := topRows(snap)
	if len(rows) == 0 {
		fmt.Fprintln(w, "no serving metrics in snapshot (is -url a serve or gateway debug endpoint?)")
	} else {
		fmt.Fprintf(w, "%-32s %10s %8s %10s %10s %5s %9s\n",
			"backend", "requests", "qps", "p50", "p99", "occ", "1/SNR")
		for _, r := range rows {
			fmt.Fprintln(w, topLine(r, snap))
		}
	}

	firing := topFiring(snap)
	fmt.Fprintln(w)
	if len(firing) == 0 {
		fmt.Fprintln(w, "alerts: none firing")
	} else {
		fmt.Fprintf(w, "alerts: %d firing\n", len(firing))
		for _, a := range firing {
			fmt.Fprintf(w, "  FIRING %s  value %.4g (target %.4g)\n", a.name, a.value, a.target)
		}
	}

	if len(events) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "recent events:")
		start := len(events) - 8
		if start < 0 {
			start = 0
		}
		for _, e := range events[start:] {
			fmt.Fprintf(w, "  %s  %s\n", e.Time().Format("15:04:05"), e)
		}
	}
}

// topLine renders one backend row. Rates and quantiles prefer the sliding
// window (what is happening now); latency falls back to the cumulative
// histogram when no window is exported, and absent metrics render as "-".
func topLine(r topRow, snap obs.Snapshot) string {
	reqName := r.prefix + r.kind + ".requests"
	qps := "-"
	if snap.Window != nil {
		if wc, ok := snap.Window.Counters[reqName]; ok {
			qps = fmt.Sprintf("%.1f", wc.Rate)
		}
	}
	p50, p99 := "-", "-"
	latName := r.prefix + "server.latency_seconds"
	if snap.Window != nil {
		if wh, ok := snap.Window.Histograms[latName]; ok && wh.Count > 0 {
			p50, p99 = fmtSeconds(wh.P50), fmtSeconds(wh.P99)
		}
	}
	if p50 == "-" {
		if h, ok := snap.Histograms[latName]; ok && h.Count > 0 {
			p50, p99 = fmtSeconds(h.P50), fmtSeconds(h.P99)
		}
	}
	occ := "-"
	if v, ok := snap.Gauges[r.prefix+"server.batch.occupancy"]; ok && v > 0 {
		occ = fmt.Sprintf("%.0f", v)
	}
	snr := "-"
	if h, ok := snap.Histograms[r.prefix+core.MetricInVivo]; ok && h.Count > 0 {
		snr = fmt.Sprintf("%.4f", snap.Gauges[r.prefix+core.MetricInVivoLast])
	}
	return fmt.Sprintf("%-32s %10d %8s %10s %10s %5s %9s",
		r.label, snap.Counters[reqName], qps, p50, p99, occ, snr)
}
