// Benchmarks regenerating the paper's tables and figures (one benchmark
// per experiment, reporting the scientific quantities as custom metrics),
// plus micro-benchmarks of the substrates the pipeline is built on.
//
// The experiment benchmarks run at CI scale (Quick configs) so that
// `go test -bench=.` completes in minutes; `cmd/experiments` regenerates
// the full-scale numbers recorded in EXPERIMENTS.md. Pre-trained weights
// are cached under the test temp dir, shared across iterations.
package shredder

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"shredder/internal/attack"
	"shredder/internal/baseline"
	"shredder/internal/core"
	"shredder/internal/data"
	"shredder/internal/experiments"
	"shredder/internal/mi"
	"shredder/internal/model"
	"shredder/internal/nn"
	"shredder/internal/quantize"
	"shredder/internal/sched"
	"shredder/internal/splitrt"
	"shredder/internal/tensor"
)

// benchCache shares one weight-cache directory across all benchmarks of a
// run so each network pre-trains at most once.
var benchCache = struct {
	once sync.Once
	dir  string
}{}

func cacheDir(b *testing.B) string {
	benchCache.once.Do(func() {
		dir, err := os.MkdirTemp("", "shredder-bench-")
		if err != nil {
			b.Fatal(err)
		}
		benchCache.dir = dir
	})
	return benchCache.dir
}

func quickCfg(b *testing.B, nets ...string) experiments.Config {
	return experiments.Config{Workdir: cacheDir(b), Quick: true, Seed: 1, Networks: nets}
}

// ---------------------------------------------------------------------------
// Table 1 — one benchmark per network column. Each iteration regenerates the
// network's Table-1 row; MI loss and accuracy loss are reported as metrics.
// ---------------------------------------------------------------------------

func benchTable1(b *testing.B, network string) {
	cfg := quickCfg(b, network)
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	row := last.Rows[0]
	b.ReportMetric(row.MILossPct, "MIloss%")
	b.ReportMetric(row.AccLossPct, "accloss%")
	b.ReportMetric(row.OriginalMI, "origMIbits")
	b.ReportMetric(row.ShreddedMI, "shredMIbits")
}

func BenchmarkTable1LeNet(b *testing.B)   { benchTable1(b, "lenet") }
func BenchmarkTable1Cifar(b *testing.B)   { benchTable1(b, "cifar") }
func BenchmarkTable1Svhn(b *testing.B)    { benchTable1(b, "svhn") }
func BenchmarkTable1AlexNet(b *testing.B) { benchTable1(b, "alexnet") }

// ---------------------------------------------------------------------------
// Figure 3 — the accuracy–privacy frontier (quick ladder on LeNet). Metrics:
// the span of the frontier.
// ---------------------------------------------------------------------------

func BenchmarkFig3Frontier(b *testing.B) {
	cfg := quickCfg(b, "lenet")
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	s := last.Series[0]
	b.ReportMetric(s.ZeroLeakage, "zeroleakbits")
	b.ReportMetric(s.Points[len(s.Points)-1].InfoLossBits, "maxinfoloss")
}

// ---------------------------------------------------------------------------
// Figure 4 — noise-training dynamics: Shredder vs privacy-agnostic. Metric:
// the final in vivo privacy gap between the two traces.
// ---------------------------------------------------------------------------

func BenchmarkFig4Dynamics(b *testing.B) {
	cfg := quickCfg(b, "lenet")
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.FinalGap(), "invivogap")
}

// ---------------------------------------------------------------------------
// Figure 5 — in vivo vs ex vivo privacy across cutting points (LeNet's three
// cuts at quick scale; the full SVHN sweep runs via cmd/experiments).
// ---------------------------------------------------------------------------

func BenchmarkFig5CutPrivacy(b *testing.B) {
	cfg := quickCfg(b, "lenet")
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	series := last.Networks[0].Series
	b.ReportMetric(float64(len(series)), "cuts")
}

// ---------------------------------------------------------------------------
// Figure 6 — cost model × measured privacy per cutting point. Metric: the
// cost of the chosen cut relative to the most expensive cut.
// ---------------------------------------------------------------------------

func BenchmarkFig6CutCosts(b *testing.B) {
	cfg := quickCfg(b, "lenet")
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	pts := last.Networks[0].Points
	var chosen, max float64
	for _, p := range pts {
		if p.CostKMACMB > max {
			max = p.CostKMACMB
		}
		if p.Chosen {
			chosen = p.CostKMACMB
		}
	}
	b.ReportMetric(chosen/max, "chosencostfrac")
}

// ---------------------------------------------------------------------------
// Ablations — design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// benchSystem pre-trains a small LeNet system once and reuses it.
var benchSys = struct {
	once sync.Once
	pre  *model.Pretrained
	spl  *core.Split
}{}

func lenetSplit(b *testing.B) (*model.Pretrained, *core.Split) {
	benchSys.once.Do(func() {
		pre, err := model.TrainCached(model.LeNet(),
			model.TrainConfig{TrainN: 600, TestN: 200, Epochs: 3, Seed: 1},
			filepath.Join(cacheDir(b), "ablation"))
		if err != nil {
			b.Fatal(err)
		}
		layer, _ := pre.Spec.CutLayer("conv2")
		spl, err := core.NewSplit(pre.Net, layer, pre.Spec.Dataset.SampleShape())
		if err != nil {
			b.Fatal(err)
		}
		benchSys.pre, benchSys.spl = pre, spl
	})
	return benchSys.pre, benchSys.spl
}

// Ablation: trained noise vs untrained Laplace noise of the same magnitude.
// Metric: the accuracy advantage (percentage points) that learning the noise
// buys at equal noise scale — the paper's core claim that disciplined noise
// beats accuracy-agnostic noise (Figure 1).
func BenchmarkAblationTrainedVsRandomNoise(b *testing.B) {
	pre, spl := lenetSplit(b)
	var adv float64
	for i := 0; i < b.N; i++ {
		res := core.TrainNoise(spl, pre.Train, core.NoiseConfig{
			Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 3, Seed: int64(i + 1),
		})
		trained := res.Noise.Values()
		random := tensor.NewRNG(int64(i+500)).FillLaplace(
			tensor.New(spl.ActivationShape()...), 0, trained.Std()/1.414)
		accWith := func(noise *tensor.Tensor) float64 {
			correct := 0
			for _, bt := range pre.Test.Batches(64) {
				logits := spl.Remote(core.AddBroadcast(spl.Local(bt.Images), noise), false)
				for j, y := range bt.Labels {
					if logits.Slice(j).Argmax() == y {
						correct++
					}
				}
			}
			return float64(correct) / float64(pre.Test.N())
		}
		adv = 100 * (accWith(trained) - accWith(random))
	}
	b.ReportMetric(adv, "accadv_pts")
}

// Ablation: self-supervised noise training (no ground-truth labels) vs
// label-supervised. Metric: the accuracy gap in percentage points.
func BenchmarkAblationSelfSupervised(b *testing.B) {
	pre, spl := lenetSplit(b)
	var gap float64
	for i := 0; i < b.N; i++ {
		accOf := func(selfSup bool) float64 {
			res := core.TrainNoise(spl, pre.Train, core.NoiseConfig{
				Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 3,
				Seed: int64(i + 1), SelfSupervised: selfSup,
			})
			correct := 0
			for _, bt := range pre.Test.Batches(64) {
				logits := spl.Remote(core.AddBroadcast(spl.Local(bt.Images), res.Noise.Values()), false)
				for j, y := range bt.Labels {
					if logits.Slice(j).Argmax() == y {
						correct++
					}
				}
			}
			return float64(correct) / float64(pre.Test.N())
		}
		gap = 100 * (accOf(false) - accOf(true))
	}
	b.ReportMetric(gap, "supgap_pts")
}

// Ablation: collection size vs information loss — more members mean more
// inference-time randomness and lower MI at the same accuracy budget.
func BenchmarkAblationCollectionSize(b *testing.B) {
	pre, spl := lenetSplit(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		nc := core.NoiseConfig{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2, Seed: int64(i + 1)}
		ev := func(count int) float64 {
			col := core.Collect(spl, pre.Train, nc, count, 1)
			res := core.Evaluate(spl, pre.Test, col, core.EvalConfig{
				MI: mi.Options{K: 3, MaxSamples: 128, Seed: 1}, Seed: 1,
			})
			return res.MILossPct
		}
		gain = ev(6) - ev(2)
	}
	b.ReportMetric(gain, "milossgain%")
}

// ---------------------------------------------------------------------------
// Collection training: sequential vs parallel. The members of a collection
// are independent (paper §2.5), so Collect fans them out over a worker
// pool; both modes produce byte-identical collections, and the wall-clock
// ratio of these two benchmarks is the multicore speedup (≈ min(members,
// workers)× on an otherwise idle machine; no speedup on a single core).
// ---------------------------------------------------------------------------

func benchCollect(b *testing.B, workers int) {
	pre, spl := lenetSplit(b)
	nc := core.NoiseConfig{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 1, Seed: 1}
	const members = 8
	b.ResetTimer()
	var col *core.Collection
	for i := 0; i < b.N; i++ {
		col = core.Collect(spl, pre.Train, nc, members, workers)
	}
	b.ReportMetric(float64(col.Len()), "members")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

func BenchmarkCollectSequential(b *testing.B) { benchCollect(b, 1) }

func BenchmarkCollectParallel(b *testing.B) { benchCollect(b, runtime.GOMAXPROCS(0)) }

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkMatMul128(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := rng.FillNormal(tensor.New(128, 128), 0, 1)
	y := rng.FillNormal(tensor.New(128, 128), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
	b.SetBytes(int64(128 * 128 * 128 * 8))
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := tensor.NewRNG(1)
	conv := nn.NewConv2D("c", 16, 32, 3, 3, 1, 1, rng)
	x := rng.FillNormal(tensor.New(8, 16, 16, 16), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	rng := tensor.NewRNG(1)
	conv := nn.NewConv2D("c", 16, 32, 3, 3, 1, 1, rng)
	x := rng.FillNormal(tensor.New(8, 16, 16, 16), 0, 1)
	out := conv.Forward(x, true)
	g := rng.FillNormal(tensor.New(out.Shape()...), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(g)
	}
}

func BenchmarkNoiseTrainingIteration(b *testing.B) {
	pre, spl := lenetSplit(b)
	batch := pre.Train.Batches(32)[0]
	noise := core.NewNoiseTensor(spl.ActivationShape(), 0, 2, tensor.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := spl.Local(batch.Images)
		logits := spl.Remote(noise.Apply(a), true)
		_, _, grad := core.ShredderLoss(logits, batch.Labels, noise, 0.01)
		d := spl.RemoteBackward(grad)
		noise.Param.ZeroGrad()
		noise.AccumulateGrad(d)
		core.AddPrivacyGrad(noise, 0.01)
		spl.Net.ZeroGrad()
	}
}

func BenchmarkMIEstimatorKL(b *testing.B) {
	rng := tensor.NewRNG(1)
	n, d := 256, 64
	x := mi.NewSamples(rng.FillNormal(tensor.New(n*d), 0, 1).Data(), n, d)
	y := mi.NewSamples(rng.FillNormal(tensor.New(n*d), 0, 1).Data(), n, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mi.MutualInformationCalibrated(x, y, mi.Options{K: 3, Seed: int64(i)})
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data.Objects{}.Generate(64, int64(i))
	}
}

func BenchmarkSplitLocalInference(b *testing.B) {
	pre, spl := lenetSplit(b)
	batch := pre.Test.Batches(32)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spl.Local(batch.Images)
	}
}

func BenchmarkEndToEndPrivateInference(b *testing.B) {
	pre, spl := lenetSplit(b)
	col := core.Collect(spl, pre.Train, core.NoiseConfig{
		Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 1, Seed: 1,
	}, 4, 1)
	batch := pre.Test.Batches(1)[0]
	rng := tensor.NewRNG(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := spl.Local(batch.Images)
		a.Slice(0).AddInPlace(col.Sample(rng))
		spl.Remote(a, false)
	}
}

// ---------------------------------------------------------------------------
// Split-runtime throughput: N concurrent edge clients hammering one cloud
// server over loopback TCP. The "locked" variant reproduces the seed
// behaviour (one global inference at a time via WithSerializedInference);
// the "concurrent" variant is the reentrant forward path with no inference
// lock. On a multi-core host the concurrent server's ops/sec scales with
// cores while the locked one stays flat; on a single core they converge.
// ---------------------------------------------------------------------------

func benchServerThroughput(b *testing.B, clients int, opts ...splitrt.ServerOption) {
	pre, spl := lenetSplit(b)
	layer, err := pre.Spec.CutLayer("conv2")
	if err != nil {
		b.Fatal(err)
	}
	srv := splitrt.NewCloudServer(spl, layer, opts...)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	batch := pre.Test.Batches(1)[0]
	cs := make([]*splitrt.EdgeClient, clients)
	for i := range cs {
		c, err := splitrt.Dial(addr, spl, layer, nil, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		cs[i] = c
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, c := range cs {
		n := b.N / clients
		if i < b.N%clients {
			n++
		}
		wg.Add(1)
		go func(c *splitrt.EdgeClient, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, err := c.Infer(batch.Images); err != nil {
					b.Error(err)
					return
				}
			}
		}(c, n)
	}
	wg.Wait()
	b.StopTimer()
	if s, ok := srv.BatchStats(); ok {
		b.ReportMetric(s.MeanOccupancy, "occupancy")
		b.ReportMetric(float64(s.Batches), "batches")
	}
}

func BenchmarkCloudServerThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("locked/clients=%d", clients), func(b *testing.B) {
			benchServerThroughput(b, clients, splitrt.WithSerializedInference())
		})
		b.Run(fmt.Sprintf("concurrent/clients=%d", clients), func(b *testing.B) {
			benchServerThroughput(b, clients)
		})
	}
}

// ---------------------------------------------------------------------------
// Cross-connection micro-batching (internal/sched wired into the cloud
// server): N lockstep clients against one server, with and without
// WithBatching. The batcher's idle-flush policy means a lone client pays no
// MaxDelay latency (batch of 1, flushed immediately), while at 8+ clients
// concurrent requests coalesce into [N, ...] forward passes — the
// "occupancy" metric is the mean coalesced batch size. On a multicore host
// batched ops/sec additionally amortize per-call overhead on top of the
// concurrent path's core scaling; on a single core expect parity at 1
// client and a modest win from amortization at higher client counts.
// ---------------------------------------------------------------------------

func BenchmarkServeBatched(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("unbatched/clients=%d", clients), func(b *testing.B) {
			benchServerThroughput(b, clients)
		})
		b.Run(fmt.Sprintf("batched/clients=%d", clients), func(b *testing.B) {
			benchServerThroughput(b, clients,
				splitrt.WithBatching(sched.Options{MaxBatch: 32, MaxDelay: time.Millisecond}))
		})
	}
}

// Extension: inversion-attack resistance. Metric: how many times harder the
// learned noise makes input reconstruction (shredded MSE / clean MSE) at
// the shallowest LeNet cut, where the activation retains the most input
// information.
func BenchmarkAblationInversionAttack(b *testing.B) {
	pre, err := model.TrainCached(model.LeNet(),
		model.TrainConfig{TrainN: 600, TestN: 200, Epochs: 3, Seed: 1},
		filepath.Join(cacheDir(b), "ablation"))
	if err != nil {
		b.Fatal(err)
	}
	layer, _ := pre.Spec.CutLayer("conv0")
	spl, err := core.NewSplit(pre.Net, layer, pre.Spec.Dataset.SampleShape())
	if err != nil {
		b.Fatal(err)
	}
	col := core.Collect(spl, pre.Train, core.NoiseConfig{
		Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 1, Seed: 1,
	}, 3, 1)
	var ratio float64
	for i := 0; i < b.N; i++ {
		clean, shredded := attack.Evaluate(spl, pre.Test.Images, col, 1,
			attack.Config{Steps: 150, Seed: int64(i)})
		ratio = shredded / clean
	}
	b.ReportMetric(ratio, "mse_ratio")
}

// Comparison against the paper's Figure-1 "accuracy-agnostic noise
// addition" region: a fresh-per-query Laplace mechanism calibrated to the
// same noise power as the learned collection. Metric: Shredder's accuracy
// advantage in percentage points at matched 1/SNR.
func BenchmarkBaselineVsAgnosticNoise(b *testing.B) {
	pre, spl := lenetSplit(b)
	col := core.Collect(spl, pre.Train, core.NoiseConfig{
		Scale: 2.5, Lambda: 0.005, PrivacyTarget: 5, Epochs: 3, Seed: 1,
	}, 3, 1)
	var adv float64
	for i := 0; i < b.N; i++ {
		res := baseline.Compare(spl, pre.Test, col, int64(i+1))
		adv = res.AdvantagePct()
	}
	b.ReportMetric(adv, "advantage_pts")
}

// Ablation: 8-bit wire quantization of the noisy activation. Metrics: the
// accuracy drop it causes (percentage points) and the communication
// compression factor versus float32 transport.
func BenchmarkAblationQuantizedWire(b *testing.B) {
	pre, spl := lenetSplit(b)
	col := core.Collect(spl, pre.Train, core.NoiseConfig{
		Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2, Seed: 1,
	}, 3, 1)
	rng := tensor.NewRNG(5)
	var accDrop, ratio float64
	for i := 0; i < b.N; i++ {
		correctF, correctQ, n := 0, 0, 0
		var scheme quantize.Scheme
		fitted := false
		for _, bt := range pre.Test.Batches(64) {
			a := spl.Local(bt.Images)
			noisy := a.Clone()
			for j := 0; j < noisy.Dim(0); j++ {
				noisy.Slice(j).AddInPlace(col.Sample(rng))
			}
			if !fitted {
				s, err := quantize.Fit(noisy, 8)
				if err != nil {
					b.Fatal(err)
				}
				scheme = s
				fitted = true
			}
			full := spl.Remote(noisy, false)
			quant := spl.Remote(scheme.RoundTrip(noisy), false)
			for j, y := range bt.Labels {
				if full.Slice(j).Argmax() == y {
					correctF++
				}
				if quant.Slice(j).Argmax() == y {
					correctQ++
				}
				n++
			}
		}
		accDrop = 100 * float64(correctF-correctQ) / float64(n)
		vals := tensor.Volume(spl.ActivationShape())
		ratio = float64(vals*4) / float64(scheme.WireBytes(vals))
	}
	b.ReportMetric(accDrop, "accdrop_pts")
	b.ReportMetric(ratio, "compression_x")
}
