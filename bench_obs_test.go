// Benchmark pinning the cost of the observability layer on the serving hot
// path. The "disabled" variant is the default server — no registry, no
// spans — and must stay within noise of the pre-observability baseline
// (the nil-metric no-op contract: one predictable branch per would-be
// record). The "enabled" variant prices the full pipeline: counters,
// latency histograms, and a span per request. Reference numbers live in
// results_bench_obs.txt.
package shredder

import (
	"testing"

	"shredder/internal/obs"
	"shredder/internal/splitrt"
)

func BenchmarkObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchServerThroughput(b, 1)
	})
	b.Run("enabled", func(b *testing.B) {
		benchServerThroughput(b, 1,
			splitrt.WithObservability(obs.NewRegistry(), obs.NewSpanRing(256)))
	})
}
