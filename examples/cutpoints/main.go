// Cutpoints: the cutting-point selection analysis of the paper's §3.4 and
// Figure 6. For every cutting point of a network it prints the edge-side
// computation, the communication volume, and the combined
// Computation × Communication cost — then (optionally) measures the
// privacy each cut actually buys by training noise at every cut.
//
// Run with:
//
//	go run ./examples/cutpoints [-net svhn] [-measure]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"shredder"
)

func main() {
	log.SetFlags(0)
	net := flag.String("net", "svhn", "benchmark network")
	measure := flag.Bool("measure", false, "also train noise per cut and report accuracy with it")
	flag.Parse()

	// The cost model needs no training: it is pure topology.
	cuts, err := shredder.CutPoints(*net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cutting-point cost model for %s (float32 transport):\n\n", *net)
	fmt.Printf("  %8s %14s %14s %16s\n", "cut", "edge MACs", "comm bytes", "KMAC × MB")
	for _, c := range cuts {
		mark := " "
		if c.Default {
			mark = "*"
		}
		fmt.Printf("%s %8s %14d %14d %16.4f\n", mark, c.Cut, c.EdgeMACs, c.CommBytes, c.CostKMACMB)
	}
	fmt.Println("  (* = the paper's chosen cut: the deepest convolution layer)")
	fmt.Println()
	fmt.Println("deeper cuts cost more edge computation but usually less communication;")
	fmt.Println("privacy is monotone in depth, so the deepest affordable cut wins (§3.4).")

	if !*measure {
		fmt.Println("\n(re-run with -measure to train noise at every cut and compare accuracy)")
		return
	}

	fmt.Println("\nmeasuring accuracy with learned noise at every cut:")
	for _, c := range cuts {
		sys, err := shredder.NewSystem(*net, shredder.Config{
			Cut: c.Cut, Seed: 1, Progress: os.Stderr, WeightCacheDir: ".shredder-cache",
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.LearnNoise(4)
		rep := sys.Evaluate()
		fmt.Printf("  %8s: accuracy %.2f%% → %.2f%% (loss %.2f pts), MI loss %.1f%%\n",
			c.Cut, 100*rep.BaselineAcc, 100*rep.NoisyAcc, rep.AccLossPct, rep.MILossPct)
	}
}
