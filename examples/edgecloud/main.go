// Edgecloud: the full deployment story of the paper's Figure 2 on a
// loopback TCP connection. A cloud process hosts the remote part R of the
// network; the edge runs the local part L, adds a sampled noise tensor,
// and ships only the noisy activation across the wire. The raw image never
// leaves the edge, and the wire carries strictly less information about it
// than the original activation would.
//
// Run with:
//
//	go run ./examples/edgecloud [-net lenet] [-n 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"shredder"
)

func main() {
	log.SetFlags(0)
	net := flag.String("net", "lenet", "benchmark network")
	n := flag.Int("n", 24, "test samples to classify remotely")
	flag.Parse()

	fmt.Printf("pre-training %s and learning noise...\n", *net)
	sys, err := shredder.NewSystem(*net, shredder.Config{Seed: 1, Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	sys.LearnNoise(8)

	// "Cloud": hosts only the layers after the cutting point. It never
	// sees inputs, only noisy activations.
	cloud, err := sys.ServeCloud("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()
	fmt.Printf("cloud part serving on %s\n", cloud.Addr)

	// "Edge": runs the local layers and the noise sampler.
	edge, err := sys.ConnectEdge(cloud.Addr)
	if err != nil {
		log.Fatal(err)
	}
	defer edge.Close()

	correct := 0
	for i := 0; i < *n && i < sys.TestSize(); i++ {
		pixels, label := sys.TestSample(i)
		pred, err := edge.Classify(pixels)
		if err != nil {
			log.Fatal(err)
		}
		mark := " "
		if pred == label {
			correct++
			mark = "✓"
		}
		fmt.Printf("  sample %2d: cloud predicted %2d, label %2d %s\n", i, pred, label, mark)
	}
	fmt.Printf("\nremote accuracy with noise: %d/%d (baseline %.2f%%)\n",
		correct, *n, 100*sys.BaselineAccuracy())
	fmt.Println("every byte that crossed the wire was a noisy activation — no raw pixels.")
}
