// Edgecloud: the full deployment story of the paper's Figure 2 on a
// loopback TCP connection. A cloud process hosts the remote part R of the
// network; the edge runs the local part L, adds a sampled noise tensor,
// and ships only the noisy activation across the wire. The raw image never
// leaves the edge, and the wire carries strictly less information about it
// than the original activation would.
//
// With -clients > 1 the example fans the workload out over several
// concurrent edge connections against a micro-batching cloud server: the
// server coalesces overlapping requests into one [N, ...] forward pass and
// reports how much it managed to batch at the end. The predictions are
// bitwise identical either way — batching is a pure throughput knob.
//
// Run with:
//
//	go run ./examples/edgecloud [-net lenet] [-n 24] [-clients 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"shredder"
	"shredder/internal/sched"
	"shredder/internal/splitrt"
)

func main() {
	log.SetFlags(0)
	net := flag.String("net", "lenet", "benchmark network")
	n := flag.Int("n", 24, "test samples to classify remotely")
	clients := flag.Int("clients", 1, "concurrent edge connections (>1 enables server micro-batching)")
	flag.Parse()
	if *clients < 1 {
		*clients = 1
	}

	fmt.Printf("pre-training %s and learning noise...\n", *net)
	sys, err := shredder.NewSystem(*net, shredder.Config{Seed: 1, Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	sys.LearnNoise(8)

	// "Cloud": hosts only the layers after the cutting point. It never
	// sees inputs, only noisy activations. With several edge clients we
	// also turn on the cross-connection micro-batching scheduler.
	var opts []splitrt.ServerOption
	if *clients > 1 {
		opts = append(opts, splitrt.WithBatching(sched.Options{
			MaxBatch: *clients, MaxDelay: 2 * time.Millisecond,
		}))
	}
	cloud, err := sys.ServeCloud("127.0.0.1:0", opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()
	fmt.Printf("cloud part serving on %s (%d edge client(s))\n", cloud.Addr, *clients)

	// "Edge": each client runs the local layers and the noise sampler on
	// its own connection; the cloud coalesces whatever overlaps.
	type outcome struct {
		idx, pred, label int
	}
	results := make([]outcome, 0, *n)
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		fatal error
	)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			edge, err := sys.ConnectEdge(cloud.Addr)
			if err != nil {
				mu.Lock()
				fatal = err
				mu.Unlock()
				return
			}
			defer edge.Close()
			// Client c handles samples c, c+clients, c+2*clients, ...
			for i := c; i < *n && i < sys.TestSize(); i += *clients {
				pixels, label := sys.TestSample(i)
				pred, err := edge.Classify(pixels)
				if err != nil {
					mu.Lock()
					fatal = err
					mu.Unlock()
					return
				}
				mu.Lock()
				results = append(results, outcome{i, pred, label})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if fatal != nil {
		log.Fatal(fatal)
	}

	correct := 0
	for i := 0; i < *n && i < sys.TestSize(); i++ {
		for _, r := range results {
			if r.idx != i {
				continue
			}
			mark := " "
			if r.pred == r.label {
				correct++
				mark = "✓"
			}
			fmt.Printf("  sample %2d: cloud predicted %2d, label %2d %s\n", r.idx, r.pred, r.label, mark)
		}
	}
	fmt.Printf("\nremote accuracy with noise: %d/%d (baseline %.2f%%)\n",
		correct, len(results), 100*sys.BaselineAccuracy())
	if stats, ok := cloud.BatchStats(); ok {
		fmt.Printf("micro-batching: %d requests served in %d batches (mean occupancy %.2f, mean queue delay %s)\n",
			stats.Submitted, stats.Batches, stats.MeanOccupancy, stats.MeanQueueDelay)
	}
	fmt.Println("every byte that crossed the wire was a noisy activation — no raw pixels.")
}
