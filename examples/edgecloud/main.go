// Edgecloud: the full deployment story of the paper's Figure 2 on a
// loopback TCP connection. A cloud process hosts the remote part R of the
// network; the edge runs the local part L, adds a sampled noise tensor,
// and ships only the noisy activation across the wire. The raw image never
// leaves the edge, and the wire carries strictly less information about it
// than the original activation would.
//
// With -clients > 1 the example fans the workload out over several
// concurrent edge connections against a micro-batching cloud server: the
// server coalesces overlapping requests into one [N, ...] forward pass and
// reports how much it managed to batch at the end. The predictions are
// bitwise identical either way — batching is a pure throughput knob.
//
// With -backends > 1 the example instead serves the cloud part from a
// whole fleet: N independent servers, one of them optionally slowed with
// -slow-one, and a splitrt.Pool on the edge balancing over them with
// hedged requests armed. The fleet is as invisible to correctness as
// batching — same predictions, with the pool's reroute/hedge counters in
// the summary.
//
// The whole run shares one obs metrics registry: the server, the batching
// scheduler, and every edge client register their counters and histograms
// in it, and the end-of-run summary is a snapshot of that registry. Pass
// -debug-addr to also serve it live at /debug/metrics (with request spans
// at /debug/spans) while the example runs.
//
// Run with:
//
//	go run ./examples/edgecloud [-net lenet] [-n 24] [-clients 4] [-debug-addr 127.0.0.1:8080] [-quiet]
//	go run ./examples/edgecloud -backends 3 -slow-one 40ms [-n 24] [-quiet]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"shredder"
	"shredder/internal/obs"
	"shredder/internal/sched"
	"shredder/internal/splitrt"
)

func main() {
	log.SetFlags(0)
	net := flag.String("net", "lenet", "benchmark network")
	n := flag.Int("n", 24, "test samples to classify remotely")
	clients := flag.Int("clients", 1, "concurrent edge connections (>1 enables server micro-batching)")
	backends := flag.Int("backends", 1, "cloud servers in the fleet (>1 serves through a splitrt.Pool)")
	slowOne := flag.Duration("slow-one", 0, "with -backends > 1, inject this latency into one backend to show hedging")
	debugAddr := flag.String("debug-addr", "", "serve live /debug/metrics and /debug/spans on this HTTP address")
	quiet := flag.Bool("quiet", false, "suppress progress output; print only the final summary")
	flag.Parse()
	if *clients < 1 {
		*clients = 1
	}
	if *backends < 1 {
		*backends = 1
	}

	// One registry for the whole deployment: server, scheduler, and every
	// client fold their metrics into it, so the summary below (and the live
	// debug endpoint) sees the full picture in one snapshot.
	reg := obs.NewRegistry()
	spans := obs.NewSpanRing(256)

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = io.Discard
	}

	fmt.Fprintf(progress, "pre-training %s and learning noise...\n", *net)
	sys, err := shredder.NewSystem(*net, shredder.Config{Seed: 1, Progress: progress})
	if err != nil {
		log.Fatal(err)
	}
	sys.LearnNoise(8)

	// "Cloud": hosts only the layers after the cutting point. It never
	// sees inputs, only noisy activations. With several edge clients we
	// also turn on the cross-connection micro-batching scheduler; with
	// -backends > 1 we instead stand up a fleet of independent servers.
	addrs := make([]string, 0, *backends)
	var cloud *shredder.CloudHandle
	for i := 0; i < *backends; i++ {
		opts := []splitrt.ServerOption{splitrt.WithObservability(reg, spans)}
		if *backends == 1 && *clients > 1 {
			opts = append(opts, splitrt.WithBatching(sched.Options{
				MaxBatch: *clients, MaxDelay: 2 * time.Millisecond,
			}))
		}
		// Every server folds into the shared registry, so the first
		// backend's /debug/metrics already covers the whole run.
		if *debugAddr != "" && i == 0 {
			opts = append(opts, splitrt.WithDebugServer(*debugAddr))
		}
		if *backends > 1 && *slowOne > 0 && i == *backends-1 {
			opts = append(opts, splitrt.WithLatencyInjection(*slowOne))
		}
		srv, err := sys.ServeCloud("127.0.0.1:0", opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr)
		if i == 0 {
			cloud = srv
		}
	}
	if *backends > 1 {
		fmt.Fprintf(progress, "cloud part serving on a %d-backend fleet (%d edge client(s))\n", *backends, *clients)
		if *slowOne > 0 {
			fmt.Fprintf(progress, "backend %s carries +%s injected latency\n", addrs[*backends-1], *slowOne)
		}
	} else {
		fmt.Fprintf(progress, "cloud part serving on %s (%d edge client(s))\n", cloud.Addr, *clients)
	}
	if d := cloud.DebugAddr(); d != "" {
		fmt.Fprintf(progress, "debug endpoint on http://%s/debug/metrics\n", d)
	}

	// With a fleet, the edge routes through a splitrt.Pool instead of a
	// single connection: round-robin balancing, and — when one backend is
	// slowed — hedged requests so the tail pays a fast backend's latency.
	var pool *shredder.PoolHandle
	if *backends > 1 {
		popts := []splitrt.PoolOption{splitrt.WithPoolMetrics(reg)}
		if *slowOne > 0 {
			popts = append(popts, splitrt.WithHedging(0.9, 5*time.Millisecond))
		}
		var err error
		pool, err = sys.ConnectPool(addrs, popts...)
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		if *slowOne > 0 {
			// Hedging arms from live per-backend latency quantiles, which
			// need a handful of observations each; prime them so the
			// measured run below hedges from the first sample.
			fmt.Fprintf(progress, "warming per-backend latency stats for hedging...\n")
			pixels, _ := sys.TestSample(0)
			for i := 0; i < 20**backends; i++ {
				if _, err := pool.Classify(pixels); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// "Edge": each client runs the local layers and the noise sampler on
	// its own connection; the cloud coalesces whatever overlaps.
	type outcome struct {
		idx, pred, label int
	}
	results := make([]outcome, 0, *n)
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		fatal error
	)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// The pool is one shared, concurrency-safe fleet client; in
			// single-backend mode each worker dials its own connection.
			classify := func(pixels []float64) (int, error) { return pool.Classify(pixels) }
			if pool == nil {
				edge, err := sys.ConnectEdge(cloud.Addr, splitrt.WithMetrics(reg))
				if err != nil {
					mu.Lock()
					fatal = err
					mu.Unlock()
					return
				}
				defer edge.Close()
				classify = edge.Classify
			}
			// Client c handles samples c, c+clients, c+2*clients, ...
			for i := c; i < *n && i < sys.TestSize(); i += *clients {
				pixels, label := sys.TestSample(i)
				pred, err := classify(pixels)
				if err != nil {
					mu.Lock()
					fatal = err
					mu.Unlock()
					return
				}
				mu.Lock()
				results = append(results, outcome{i, pred, label})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if fatal != nil {
		log.Fatal(fatal)
	}

	correct := 0
	for i := 0; i < *n && i < sys.TestSize(); i++ {
		for _, r := range results {
			if r.idx != i {
				continue
			}
			mark := " "
			if r.pred == r.label {
				correct++
				mark = "✓"
			}
			fmt.Fprintf(progress, "  sample %2d: cloud predicted %2d, label %2d %s\n", r.idx, r.pred, r.label, mark)
		}
	}
	fmt.Printf("remote accuracy with noise: %d/%d (baseline %.2f%%)\n",
		correct, len(results), 100*sys.BaselineAccuracy())

	// The summary is a straight read of the shared registry — the same
	// numbers /debug/metrics serves.
	snap := reg.Snapshot()
	if pool != nil {
		fmt.Printf("fleet: %d pool requests, %d reroutes, %d hedges (%d won by the hedge)\n",
			snap.Counters["pool.requests"], snap.Counters["pool.reroutes"],
			snap.Counters["pool.hedges"], snap.Counters["pool.hedge_wins"])
		for _, b := range pool.Stats().Backends {
			rtt := snap.Histograms["pool.backend."+b.Addr+".rtt_seconds"]
			fmt.Printf("  backend %s: %-8s %3d requests, %d errors; rtt p50 %.1fms p99 %.1fms\n",
				b.Addr, b.State, b.Requests, b.Errors, 1e3*rtt.P50, 1e3*rtt.P99)
		}
	} else {
		rtt := snap.Histograms["client.rtt_seconds"]
		fmt.Printf("wire: %d requests, %d bytes up, %d bytes down; rtt p50 %.1fms p99 %.1fms\n",
			snap.Counters["client.requests"],
			snap.Counters["client.bytes_sent"], snap.Counters["client.bytes_received"],
			1e3*rtt.P50, 1e3*rtt.P99)
	}
	if stats, ok := cloud.BatchStats(); ok {
		fmt.Printf("micro-batching: %d requests served in %d batches (mean occupancy %.2f, mean queue delay %s)\n",
			stats.Submitted, stats.Batches, stats.MeanOccupancy, stats.MeanQueueDelay)
	}
	fmt.Println("every byte that crossed the wire was a noisy activation — no raw pixels.")
}
