// Fitted noise: deploy the learned collection as *distributions* instead
// of stored tensors. The stored mode replays one of K trained noise
// tensors per query; the fitted mode distills each tensor into a quantile
// sketch plus its spatial ordering once, then samples noise that never
// existed before — every query sees a fresh perturbation, and the saved
// artifact contains no trained tensors at all. See DESIGN §5g.
//
// Run with:
//
//	go run ./examples/fittednoise
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"shredder"
)

func main() {
	log.SetFlags(0)

	fmt.Println("pre-training lenet...")
	stored, err := shredder.NewSystem("lenet", shredder.Config{Seed: 1, Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	// One collection of 8 noise tensors serves both deployments: the
	// stored system replays its members, the fitted system fits
	// distributions to them and samples fresh noise per query.
	fmt.Println("learning a collection of 8 noise tensors...")
	stored.LearnNoise(8)
	fmt.Printf("\n-- stored replay (mode %q) --\n%v\n", stored.NoiseMode(), stored.Evaluate())

	fitted, err := shredder.NewSystem("lenet", shredder.Config{Seed: 1, NoiseMode: "fitted"})
	if err != nil {
		log.Fatal(err)
	}
	fitted.LearnNoise(8)
	fmt.Printf("\n-- fitted sampling (mode %q) --\n%v\n", fitted.NoiseMode(), fitted.Evaluate())

	// The saved fitted artifact carries sketches, orderings, and
	// (loc, scale) summaries — not the trained tensors — and LoadNoise
	// deploys whatever mode the file carries.
	dir, err := os.MkdirTemp("", "fittednoise")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "fitted.noise")
	if err := fitted.SaveNoise(path); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved fitted artifact: %d bytes\n", info.Size())

	reloaded, err := shredder.NewSystem("lenet", shredder.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := reloaded.LoadNoise(path); err != nil {
		log.Fatal(err)
	}
	correct, n := 0, 50
	for i := 0; i < n; i++ {
		px, label := reloaded.TestSample(i)
		got, err := reloaded.Classify(px)
		if err != nil {
			log.Fatal(err)
		}
		if got == label {
			correct++
		}
	}
	fmt.Printf("reloaded system (mode %q): %d/%d correct with fresh per-query noise\n",
		reloaded.NoiseMode(), correct, n)
}
