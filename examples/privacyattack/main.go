// Privacyattack: make the mutual-information numbers concrete by attacking
// the transmitted activation with two white-box adversaries — a
// model-inversion attack that gradient-descends a reconstruction of the
// input, and a gallery attack that matches the observation against a set
// of candidate inputs. Both succeed against raw activations and degrade
// sharply once Shredder's learned noise is applied.
//
// This is an extension beyond the paper's evaluation; the paper motivates
// privacy via I(x; a′), and these attacks are what that quantity bounds.
//
// Run with:
//
//	go run ./examples/privacyattack [-net lenet] [-cut conv0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"shredder"
)

func main() {
	log.SetFlags(0)
	net := flag.String("net", "lenet", "benchmark network")
	cut := flag.String("cut", "conv0", "cutting point to attack (shallow cuts leak most)")
	flag.Parse()

	fmt.Printf("pre-training %s and learning noise at cut %s...\n", *net, *cut)
	sys, err := shredder.NewSystem(*net, shredder.Config{Cut: *cut, Seed: 1, Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	sys.LearnNoiseWith(6, shredder.NoiseOptions{})

	fmt.Println("\n1. model-inversion attack (gradient descent on the input):")
	inv, err := sys.AttackResistance(3, 250)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %v\n", inv)

	fmt.Println("\n2. gallery identification attack (nearest candidate match):")
	gal, err := sys.GalleryAttack(40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %v\n", gal)

	fmt.Println("\nthe learned noise collection makes both adversaries much weaker while")
	fmt.Printf("the model still classifies: baseline accuracy %.1f%%.\n", 100*sys.BaselineAccuracy())
}
