// Quickstart: split LeNet at its last convolution layer, learn a noise
// collection, and compare private inference against the noiseless baseline
// — the whole Shredder pipeline in ~40 lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"shredder"
)

func main() {
	log.SetFlags(0)

	// Pre-train LeNet on the synthetic digits dataset. The network's
	// weights are fixed from here on — Shredder never retrains them.
	fmt.Println("pre-training lenet (this stands in for downloading a pre-trained model)...")
	sys, err := shredder.NewSystem("lenet", shredder.Config{Seed: 1, Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline test accuracy: %.2f%%\n\n", 100*sys.BaselineAccuracy())

	// Learn a collection of 8 noise tensors (paper §2.5). At inference one
	// is sampled per query; the randomness is what destroys the mutual
	// information between input and transmitted activation.
	fmt.Println("learning a collection of 8 noise tensors...")
	sys.LearnNoise(8)

	// Evaluate: accuracy with noise, and the information content of what
	// would be sent to the cloud, with and without Shredder.
	rep := sys.Evaluate()
	fmt.Println()
	fmt.Println(rep)
	fmt.Println()

	// Classify a few individual test samples privately.
	for i := 0; i < 5; i++ {
		pixels, label := sys.TestSample(i)
		noisy, err := sys.Classify(pixels)
		if err != nil {
			log.Fatal(err)
		}
		clean, err := sys.ClassifyBaseline(pixels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sample %d: label %d, baseline %d, shredder %d\n", i, label, clean, noisy)
	}
}
