// Tradeoff: trace the accuracy–privacy frontier of Figure 3 on one
// network by sweeping the noise operating point from gentle to aggressive.
// Each point trains a fresh noise collection and reports the accuracy loss
// and the mutual-information loss it buys.
//
// Run with:
//
//	go run ./examples/tradeoff [-net lenet] [-points 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"shredder"
)

func main() {
	log.SetFlags(0)
	net := flag.String("net", "lenet", "benchmark network")
	points := flag.Int("points", 4, "operating points to sweep")
	flag.Parse()

	fmt.Printf("pre-training %s...\n", *net)
	sys, err := shredder.NewSystem(*net, shredder.Config{Seed: 1, Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline accuracy %.2f%%\n\n", 100*sys.BaselineAccuracy())
	fmt.Printf("%10s %10s %14s %18s %16s\n", "scale b", "λ", "acc loss (%)", "MI loss (%)", "shredded MI")

	// Sweep multipliers on the tuned (scale, λ) pair: small multipliers
	// leave accuracy intact but shred less information; large ones push
	// toward the Zero Leakage line at growing accuracy cost (Fig. 3).
	base := 0.5
	for i := 0; i < *points; i++ {
		mul := base * float64(int(1)<<i) // 0.5, 1, 2, 4, ...
		sys.LearnNoiseWith(4, shredder.NoiseOptions{
			Scale:         2.0 * mul,
			Lambda:        0.01 * mul,
			PrivacyTarget: 4 * mul,
		})
		rep := sys.Evaluate()
		fmt.Printf("%10.2f %10.4f %14.2f %18.2f %16.2f\n",
			2.0*mul, 0.01*mul, rep.AccLossPct, rep.MILossPct, rep.ShreddedMI)
	}
	fmt.Println("\nreading the frontier: information loss rises steeply at first (excess")
	fmt.Println("information is stripped), then flattens once only task-relevant bits remain —")
	fmt.Println("pushing further costs accuracy (the knee of the paper's Figure 3).")
}
