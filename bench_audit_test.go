// Benchmark for the audit-ledger overhead on the serving hot path: a
// single loopback CloudServer at LeNet's conv2 cut, concurrent workers
// measuring end-to-end per-call latency under four regimes:
//
//   - audit=off — no Auditor attached: the baseline the enabled paths are
//     judged against. Enabling the audit subsystem must leave this path
//     untouched (the server takes one nil check per request).
//   - audit=mem — Merkle batching into an in-memory ledger. The hot path
//     pays one Record marshal + mutex append; hashing and anchoring run
//     on the Auditor's background goroutine.
//   - audit=file — the append-only hash-chained file ledger with real
//     fsync per anchor. Anchor I/O is off the request path, so serving
//     latency should stay near the mem-ledger numbers even though each
//     anchor costs a disk sync.
//   - audit=slow-anchor — a 2ms mock-latency ledger. Batching must absorb
//     the anchor latency: records coalesce behind the in-flight anchor
//     (sched-style timer/full sealing) instead of stalling requests.
//
// The p50_ms/p99_ms metrics are per-call latencies at the caller;
// batches/records report how much audit work the run generated.
// Reference numbers live in results_bench_audit.txt.
package shredder

import (
	"context"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"shredder/internal/audit"
	"shredder/internal/splitrt"
)

// benchAuditLedger builds the ledger for one benchmark regime.
func benchAuditLedger(b *testing.B, mode string) audit.Ledger {
	switch mode {
	case "mem":
		return audit.NewMemLedger()
	case "file":
		led, err := audit.OpenFileLedger(filepath.Join(b.TempDir(), "audit.ledger"))
		if err != nil {
			b.Fatal(err)
		}
		return led
	case "slow-anchor":
		return audit.WithLatency(audit.NewMemLedger(), 2*time.Millisecond)
	default:
		b.Fatalf("unknown ledger mode %q", mode)
		return nil
	}
}

func benchAuditServe(b *testing.B, mode string) {
	pre, spl := lenetSplit(b)
	layer, err := pre.Spec.CutLayer("conv2")
	if err != nil {
		b.Fatal(err)
	}
	var aud *audit.Auditor
	var sopts []splitrt.ServerOption
	if mode != "off" {
		aud = audit.New(audit.Options{Ledger: benchAuditLedger(b, mode)})
		sopts = append(sopts, splitrt.WithAudit(aud))
	}
	srv := splitrt.NewCloudServer(spl, layer, sopts...)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	pool, err := splitrt.NewPool(spl, layer, nil, 1, []string{addr})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()

	batch := pre.Test.Batches(1)[0]
	ctx := context.Background()
	warm := spl.Local(batch.Images)
	for i := 0; i < 20; i++ {
		if _, err := pool.InferActivation(ctx, warm); err != nil {
			b.Fatal(err)
		}
	}

	const workers = 4
	durs := make([][]time.Duration, workers)
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w < b.N%workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			a := spl.Local(batch.Images) // private activation per worker
			durs[w] = make([]time.Duration, 0, n)
			for j := 0; j < n; j++ {
				start := time.Now()
				if _, err := pool.InferActivation(ctx, a); err != nil {
					b.Error(err)
					return
				}
				durs[w] = append(durs[w], time.Since(start))
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()

	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) == 0 {
		return
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return 1e3 * all[i].Seconds()
	}
	b.ReportMetric(q(0.50), "p50_ms")
	b.ReportMetric(q(0.99), "p99_ms")
	if aud != nil {
		aud.Flush()
		sum := aud.Summarize()
		b.ReportMetric(float64(sum.Records), "records")
		b.ReportMetric(float64(sum.Batches), "batches")
	}
}

func BenchmarkAuditOverhead(b *testing.B) {
	for _, mode := range []string{"off", "mem", "file", "slow-anchor"} {
		b.Run("audit="+mode, func(b *testing.B) {
			benchAuditServe(b, mode)
		})
	}
}
