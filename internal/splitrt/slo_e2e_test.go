package splitrt

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"shredder/internal/core"
	"shredder/internal/obs"
	"shredder/internal/tensor"
)

// The observability acceptance path: serve with a privacy SLO, drive
// traffic that degrades the realized in-vivo 1/SNR, watch the firing
// event appear at /debug/events, recover, watch it resolve — then the
// same through a gateway's fan-out, and the Prometheus exposition of it
// all.

// sloInput builds a [1,1,2,2] batch of constant positive values, so the
// activation at the identity rig's cut is the value itself and
// E[a²] = scale². With the one-member auditNoise collection
// (Var(noise) = 0.3125) the client's sampled in-vivo 1/SNR is
// 0.3125/scale²: scale 0.5 → 1.25 (private), scale 10 → 0.003125
// (degraded, breaching any sane floor).
func sloInput(scale float64) *tensor.Tensor {
	x := tensor.New(1, 1, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = scale
	}
	return x
}

// fetchEvents pulls a /debug/events endpoint.
func fetchEvents(t *testing.T, base string) []obs.Event {
	t.Helper()
	resp, err := http.Get(base + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	return events
}

// driveUntilEvent sends traffic at the given scale until the event feed
// contains a privacy.invivo transition in the wanted state (from the
// wanted source), returning that event.
func driveUntilEvent(t *testing.T, client *EdgeClient, scale float64, base string, state obs.EventState, source string) obs.Event {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		for i := 0; i < 5; i++ {
			if _, err := client.Infer(sloInput(scale)); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range fetchEvents(t, base) {
			if e.Name == "privacy.invivo" && e.State == state && e.Source == source {
				return e
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %s privacy.invivo event from %q at %s (events: %+v)",
				state, source, base, fetchEvents(t, base))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// promVerify is a minimal exposition-format parser: every line must be a
// well-formed `# TYPE name kind` comment or `name[{labels}] value`
// sample, and every histogram must end its bucket series with a le="+Inf"
// bucket equal to its _count. Returns the samples keyed verbatim.
func promVerify(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	histograms := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				t.Fatalf("malformed comment %q", line)
			}
			if f[3] == "histogram" {
				histograms[f[2]] = true
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[key] = val
	}
	for name := range histograms {
		inf, ok := samples[name+`_bucket{le="+Inf"}`]
		if !ok {
			t.Fatalf("histogram %s is missing its +Inf bucket", name)
		}
		if count := samples[name+"_count"]; inf != count {
			t.Fatalf("histogram %s: +Inf bucket %v != count %v", name, inf, count)
		}
	}
	return samples
}

// TestServeSLOPrivacyEndToEnd: a server with a privacy floor over the
// relayed in-vivo 1/SNR fires when large-magnitude activations drown the
// (fixed-variance) edge noise, and resolves once the traffic recovers.
func TestServeSLOPrivacyEndToEnd(t *testing.T) {
	split, _, _ := fleetRig(t, 0)
	srv := NewCloudServer(split, "cut",
		WithDebugServer("127.0.0.1:0"),
		WithWindows(obs.WindowOptions{Bucket: 25 * time.Millisecond, Buckets: 4}),
		WithSLO(10*time.Millisecond,
			obs.Objective{
				Name:      "privacy.invivo",
				Metric:    core.MetricInVivo,
				Aggregate: obs.AggMean,
				Op:        obs.OpAtLeast,
				Target:    0.1,
				MinCount:  3,
			},
			obs.Objective{ // a latency ceiling that never fires on loopback
				Name:      "latency.p99",
				Metric:    "server.latency_seconds",
				Aggregate: obs.AggP99,
				Op:        obs.OpAtMost,
				Target:    10,
			},
		))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.DebugAddr()

	noise := auditNoise()
	mon := core.NewPrivacyMonitor(obs.NewRegistry(), noise, 0.1, 1)
	client, err := Dial(addr, split, "cut", noise, 23, WithPrivacyTelemetry(mon))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Healthy traffic: strong noise relative to the signal, no events.
	for i := 0; i < 10; i++ {
		if _, err := client.Infer(sloInput(0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if events := fetchEvents(t, base); len(events) != 0 {
		t.Fatalf("healthy traffic emitted %+v", events)
	}

	// Degrade: large activations drown the fixed noise, the windowed mean
	// 1/SNR sinks below the floor, and a firing event appears.
	firing := driveUntilEvent(t, client, 10, base, obs.StateFiring, "")
	if firing.Value >= 0.1 || firing.Target != 0.1 || firing.Op != obs.OpAtLeast {
		t.Fatalf("firing event payload: %+v", firing)
	}

	// While firing, the SLO's live state is visible in the plain metrics
	// snapshot (and hence in any merged fleet view).
	resp, err := http.Get(base + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Gauges["slo.privacy.invivo.firing"] != 1 {
		t.Fatalf("firing gauge = %v while breaching", snap.Gauges["slo.privacy.invivo.firing"])
	}
	if snap.Window == nil {
		t.Fatal("windowed snapshot missing from /debug/metrics")
	}
	if wh := snap.Window.Histograms[core.MetricInVivo]; wh.Count == 0 {
		t.Fatalf("windowed privacy.invivo empty: %+v", snap.Window.Histograms)
	}

	// Recover: the degraded samples age out of the window and the
	// objective resolves.
	resolved := driveUntilEvent(t, client, 0.5, base, obs.StateResolved, "")
	if resolved.Value < 0.1 {
		t.Fatalf("resolved event payload: %+v", resolved)
	}

	// The whole story — cumulative histograms, slo.* gauges, windowed
	// aggregates — exports as valid Prometheus text.
	resp, err = http.Get(base + "/debug/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prom Content-Type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := promVerify(t, string(body))
	if samples["slo_privacy_invivo_firing"] != 0 {
		t.Fatalf("prom firing gauge = %v after resolve", samples["slo_privacy_invivo_firing"])
	}
	if samples["privacy_invivo_count"] == 0 {
		t.Fatal("prom exposition lost the privacy histogram")
	}
	if _, ok := samples["privacy_invivo_window_p99"]; !ok {
		t.Fatal("prom exposition lost the windowed quantile gauges")
	}
	if samples["server_requests"] == 0 {
		t.Fatal("prom exposition lost the request counter")
	}
}

// TestGatewaySLOEventFanOut: a gateway fronting an SLO-enabled backend
// serves the fleet's merged alert stream — the backend's firing event
// arrives labelled with its source, and the gateway's own privacy SLO
// (fed by the audit notes it relays) fires alongside it.
func TestGatewaySLOEventFanOut(t *testing.T) {
	privacyFloor := func() obs.Objective {
		return obs.Objective{
			Name:      "privacy.invivo",
			Metric:    core.MetricInVivo,
			Aggregate: obs.AggMean,
			Op:        obs.OpAtLeast,
			Target:    0.1,
			MinCount:  3,
		}
	}
	split, _, _ := fleetRig(t, 0)
	srv := NewCloudServer(split, "cut",
		WithDebugServer("127.0.0.1:0"),
		WithWindows(obs.WindowOptions{Bucket: 25 * time.Millisecond, Buckets: 4}),
		WithSLO(10*time.Millisecond, privacyFloor()))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	backendBase := "http://" + srv.DebugAddr()

	pool, err := NewPool(split, "cut", nil, 29, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	gw := NewGateway(pool,
		WithGatewayDebugServer("127.0.0.1:0"),
		WithGatewayWindows(obs.WindowOptions{Bucket: 25 * time.Millisecond, Buckets: 4}),
		WithGatewaySLO(10*time.Millisecond, privacyFloor()),
		WithBackendSources(obs.HTTPSnapshotSource("backend.a", backendBase+"/debug/metrics")),
		WithBackendEventSources(obs.HTTPEventSource("backend.a", backendBase+"/debug/events")))
	gwAddr, err := gw.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwBase := "http://" + gw.DebugAddr()

	noise := auditNoise()
	mon := core.NewPrivacyMonitor(obs.NewRegistry(), noise, 0.1, 1)
	client, err := Dial(gwAddr, split, "cut", noise, 31, WithPrivacyTelemetry(mon))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Degraded traffic through the gateway: the backend's SLO fires (its
	// event reaches the gateway's merged stream labelled backend.a) and
	// the gateway's own fleet-level SLO fires locally.
	local := driveUntilEvent(t, client, 10, gwBase, obs.StateFiring, "")
	if local.Value >= 0.1 {
		t.Fatalf("gateway-local firing event: %+v", local)
	}
	relayed := driveUntilEvent(t, client, 10, gwBase, obs.StateFiring, "backend.a")
	if relayed.Value >= 0.1 {
		t.Fatalf("backend firing event: %+v", relayed)
	}

	// The merged metrics snapshot carries the backend's alert state and
	// windowed series under its label, and still exports as valid prom
	// text (dotted prefixes sanitized).
	resp, err := http.Get(gwBase + "/debug/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := promVerify(t, string(body))
	if samples["backend_a_slo_privacy_invivo_firing"] != 1 {
		t.Fatalf("merged prom lost the backend's firing gauge (%v)",
			samples["backend_a_slo_privacy_invivo_firing"])
	}
	if samples["slo_privacy_invivo_firing"] != 1 {
		t.Fatal("merged prom lost the gateway's own firing gauge")
	}
	if _, ok := samples["backend_a_window_seconds"]; !ok {
		t.Fatal("merged prom lost the backend's window span gauge")
	}

	// Kill the backend's debug feed: the outage itself must appear in the
	// merged event stream instead of silently blinding it.
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		found := false
		for _, e := range fetchEvents(t, gwBase) {
			if e.Name == "event-source" && e.Source == "backend.a" && e.State == obs.StateFiring {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead backend never surfaced as an event-source event")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeSLOInvalidObjective: a bad objective defers its error to Serve,
// mirroring how compile errors surface.
func TestServeSLOInvalidObjective(t *testing.T) {
	split, _, _ := fleetRig(t, 0)
	srv := NewCloudServer(split, "cut",
		WithSLO(0, obs.Objective{Name: "bad", Metric: "m", Aggregate: "p42", Op: obs.OpAtMost}))
	if _, err := srv.Serve("127.0.0.1:0"); err == nil || !strings.Contains(err.Error(), "p42") {
		srv.Close()
		t.Fatalf("Serve err = %v, want aggregate validation error", err)
	}
}
