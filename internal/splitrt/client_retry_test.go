package splitrt

import (
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"shredder/internal/core"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// flakyProxy fronts a real CloudServer with a listener the test controls:
// in splice mode accepted connections are forwarded to the target, in
// reject mode they are closed on sight. Every accept is counted per mode,
// which is what lets a test assert the client's exact dial count.
type flakyProxy struct {
	ln     net.Listener
	target string

	mu       sync.Mutex
	reject   bool
	accepts  int // accepts while splicing
	rejects  int // accepts while rejecting
	upstream []net.Conn
	client   []net.Conn
}

func newFlakyProxy(t *testing.T, target string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, target: target}
	go p.loop()
	t.Cleanup(func() { ln.Close(); p.dropConns() })
	return p
}

func (p *flakyProxy) loop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.reject {
			p.rejects++
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.accepts++
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.client = append(p.client, conn)
		p.upstream = append(p.upstream, up)
		p.mu.Unlock()
		go func() { io.Copy(up, conn); up.Close() }()
		go func() { io.Copy(conn, up); conn.Close() }()
	}
}

func (p *flakyProxy) setReject(on bool) {
	p.mu.Lock()
	p.reject = on
	p.mu.Unlock()
}

// dropConns severs every spliced connection, breaking the client's
// transport without touching the backing server.
func (p *flakyProxy) dropConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.client {
		c.Close()
	}
	for _, c := range p.upstream {
		c.Close()
	}
	p.client, p.upstream = nil, nil
}

func (p *flakyProxy) rejectCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rejects
}

// TestReconnectDialCountExact pins the retry-accounting contract: a client
// configured with WithReconnect(3, ...) whose connection breaks against a
// refusing server performs exactly 3 dials in the episode, and the error
// message reports that same number — no off-by-one between the loop bound
// and the report. It then proves the episode leaves no state behind: once
// the server is reachable again the very next call succeeds.
func TestReconnectDialCountExact(t *testing.T) {
	split, _, addr := identityRig(t)
	proxy := newFlakyProxy(t, addr)

	const maxRedials = 3
	client, err := Dial(proxy.ln.Addr().String(), split, "cut", nil, 7,
		WithReconnect(maxRedials, time.Millisecond), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	x := tensor.New(1, 1, 2, 2)
	if _, err := client.Infer(x); err != nil {
		t.Fatalf("infer through proxy: %v", err)
	}

	proxy.setReject(true)
	proxy.dropConns()
	_, err = client.Infer(x)
	if err == nil {
		t.Fatal("infer succeeded with every dial rejected")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error message inconsistent with dial budget: %v", err)
	}
	if got := proxy.rejectCount(); got != maxRedials {
		t.Fatalf("reconnect made %d dials, want exactly %d", got, maxRedials)
	}

	// Recovery: the failed episode must not poison the next one.
	proxy.setReject(false)
	if _, err := client.Infer(x); err != nil {
		t.Fatalf("infer after server recovery: %v", err)
	}
}

// TestBrokenClientWithoutReconnectRecovers pins the default (no
// WithReconnect) contract: the call that hits the transport error fails,
// and the next call gets exactly one fresh dial — the client must not be
// wedged forever by a single broken connection.
func TestBrokenClientWithoutReconnectRecovers(t *testing.T) {
	split, _, addr := identityRig(t)
	proxy := newFlakyProxy(t, addr)

	client, err := Dial(proxy.ln.Addr().String(), split, "cut", nil, 7, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	x := tensor.New(1, 1, 2, 2)
	if _, err := client.Infer(x); err != nil {
		t.Fatalf("infer through proxy: %v", err)
	}
	proxy.dropConns()
	if _, err := client.Infer(x); err == nil {
		t.Fatal("infer on a severed connection succeeded")
	}
	if _, err := client.Infer(x); err != nil {
		t.Fatalf("next call after the transport error must redial once and succeed: %v", err)
	}
}

// TestRedialDelaySchedule is the white-box view of the backoff math: the
// schedule restarts at base for n=1 (per-episode reset), doubles per step,
// caps at max, and the jitter parameter stretches or shrinks a step by at
// most 20% without ever going negative.
func TestRedialDelaySchedule(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	cases := []struct {
		n    int
		j    float64
		want time.Duration
	}{
		{1, 0, 50 * time.Millisecond},
		{2, 0, 100 * time.Millisecond},
		{3, 0, 200 * time.Millisecond},
		{20, 0, 2 * time.Second},                      // capped
		{1, 1, 60 * time.Millisecond},                 // +20%
		{1, -1, 40 * time.Millisecond},                // -20%
		{20, 1, 2*time.Second + 400*time.Millisecond}, // jitter applies after cap
	}
	for _, c := range cases {
		if got := redialDelay(base, max, c.n, c.j); got != c.want {
			t.Errorf("redialDelay(n=%d, j=%v) = %v, want %v", c.n, c.j, got, c.want)
		}
	}
	if got := redialDelay(time.Nanosecond, time.Nanosecond, 1, -1); got < 0 {
		t.Errorf("jittered delay went negative: %v", got)
	}
}

// TestHandshakeRejectionIsTerminal checks a reconnect episode against a
// server that actively refuses the hello gives up immediately instead of
// burning the whole backoff budget on an error that cannot clear.
func TestHandshakeRejectionIsTerminal(t *testing.T) {
	split, _, addr := identityRig(t)

	// A second server speaking a different network name: dials succeed,
	// handshakes are rejected.
	wrongAddr := rejectingRig(t)

	proxy := newFlakyProxy(t, addr)
	client, err := Dial(proxy.ln.Addr().String(), split, "cut", nil, 7,
		WithReconnect(5, 50*time.Millisecond), WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x := tensor.New(1, 1, 2, 2)
	if _, err := client.Infer(x); err != nil {
		t.Fatal(err)
	}

	// Re-point the proxy at the refusing server and sever the link: the
	// next call redials, reaches the wrong server, and must fail fast.
	proxy.mu.Lock()
	proxy.target = wrongAddr
	proxy.mu.Unlock()
	proxy.dropConns()

	start := time.Now()
	_, err = client.Infer(x)
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("want handshake rejection, got %v", err)
	}
	// Five backoff steps at 50ms base would take ≥750ms even unjittered;
	// a terminal rejection must return well before that.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("rejection took %v; episode did not stop early", elapsed)
	}
}

// rejectingRig serves a split under a network name no test client uses, so
// every handshake against it is refused.
func rejectingRig(t *testing.T) string {
	t.Helper()
	seq := nn.NewSequential("othernet", nn.NewReLU("cut"), nn.NewReLU("post"))
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, "cut")
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestInferContextCancelInterruptsBlockedRead checks an explicit context
// cancellation unblocks a round trip stuck waiting on a slow server: the
// call must return promptly, not after the server finishes.
func TestInferContextCancelInterruptsBlockedRead(t *testing.T) {
	split, _, addr := identityRig(t, WithLatencyInjection(time.Second))
	client, err := Dial(addr, split, "cut", nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = client.InferContext(ctx, tensor.New(1, 1, 2, 2))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if elapsed > 700*time.Millisecond {
		t.Fatalf("cancellation took %v; the blocked read was not interrupted", elapsed)
	}
}

// TestInferActivationMatchesInferContext checks the relay entry point is
// byte-identical to the full path when the activation is prepared the same
// way: InferActivation(Local(x)) ≡ InferContext(x) for a noiseless client.
func TestInferActivationMatchesInferContext(t *testing.T) {
	split, _, addr := identityRig(t)
	client, err := Dial(addr, split, "cut", nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	x := tensor.New(1, 1, 2, 2)
	for i, v := range []float64{0.5, -1, 2, 0.25} {
		x.Data()[i] = v
	}
	want, err := client.InferContext(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.InferActivation(context.Background(), split.Local(x))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatalf("InferActivation diverged from InferContext:\n%v\nvs\n%v", want.Data(), got.Data())
	}
}
