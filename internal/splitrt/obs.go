package splitrt

import (
	"time"

	"shredder/internal/core"
	"shredder/internal/obs"
	"shredder/internal/sched"
)

// defaultSpanRing is how many completed request spans a debug-enabled
// server retains for /debug/spans.
const defaultSpanRing = 256

// kindIndex maps an error kind to its counter slot, tolerating
// out-of-range values from a misbehaving peer.
func kindIndex(k ErrKind) int {
	if int(k) > int(ErrInternal) {
		return int(ErrUnknown)
	}
	return int(k)
}

// clientMetrics are the edge client's registered metrics. The client always
// owns a set (backed by a private registry unless WithMetrics shares one),
// so Stats is a thin wrapper over the same atomics at the same cost the old
// bespoke counters had.
type clientMetrics struct {
	requests      *obs.Counter
	redials       *obs.Counter
	sent          *obs.Counter
	received      *obs.Counter
	transportErrs *obs.Counter
	errs          [int(ErrInternal) + 1]*obs.Counter
	rtt           *obs.Histogram
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := clientMetrics{
		requests:      reg.Counter("client.requests"),
		redials:       reg.Counter("client.redials"),
		sent:          reg.Counter("client.bytes_sent"),
		received:      reg.Counter("client.bytes_received"),
		transportErrs: reg.Counter("client.errors.transport"),
		rtt:           reg.Histogram("client.rtt_seconds"),
	}
	for k := range m.errs {
		m.errs[k] = reg.Counter("client.errors." + ErrKind(k).String())
	}
	return m
}

// serverObs is the cloud server's observability state: registered metrics
// plus the ring of completed request spans. A nil *serverObs is the
// disabled state — every method no-ops and the serving hot path pays only
// nil checks.
type serverObs struct {
	reg       *obs.Registry
	spans     *obs.SpanRing
	requests  *obs.Counter
	ok        *obs.Counter
	errs      [int(ErrInternal) + 1]*obs.Counter
	latency   *obs.Histogram
	queue     *obs.Histogram
	compute   *obs.Histogram
	occupancy *obs.Gauge
	invivo    *obs.Histogram // server-side view of relayed in-vivo 1/SNR
	invivoG   *obs.Gauge

	prof   *obs.Profiler   // per-layer profiler (WithProfiling), nil otherwise
	joiner *obs.SpanJoiner // client↔server span joining (WithSpanJoin), nil otherwise
}

func newServerObs(reg *obs.Registry, spans *obs.SpanRing) *serverObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &serverObs{
		reg:       reg,
		spans:     spans,
		requests:  reg.Counter("server.requests"),
		ok:        reg.Counter("server.responses.ok"),
		latency:   reg.Histogram("server.latency_seconds"),
		queue:     reg.Histogram("server.queue_seconds"),
		compute:   reg.Histogram("server.compute_seconds"),
		occupancy: reg.Gauge("server.batch.occupancy"),
		invivo:    reg.Histogram(core.MetricInVivo, core.DefPrivacyBuckets...),
		invivoG:   reg.Gauge(core.MetricInVivoLast),
	}
	for k := range o.errs {
		o.errs[k] = reg.Counter("server.errors." + ErrKind(k).String())
	}
	return o
}

// observeAudit folds one served request's relayed privacy attribution into
// the server-side privacy.invivo histogram. Noise is applied on the edge,
// so the server cannot measure 1/SNR itself — but the audit note every
// telemetry-enabled client attaches carries the sampled value, and
// recording it here gives the serving side a continuously updated privacy
// distribution that windows and SLOs can watch without importing the
// client. Unsampled notes (the client only counted that query) carry no
// evidence and are skipped.
func (o *serverObs) observeAudit(n *auditNote) {
	if o == nil || n == nil || !n.Sampled {
		return
	}
	o.invivo.Observe(n.InVivo)
	o.invivoG.Set(n.InVivo)
}

// finish records one completed request: per-kind outcome counters, latency
// histograms, and a span with queue / batch / compute sub-timings (from the
// batcher's SubmitInfo when the request rode a batch, or computeStart on
// the direct path). si must only carry data for successful batched
// requests — SubmitInfo contents are unspecified after an error.
func (o *serverObs) finish(req request, resp *response, t0 time.Time, si *sched.SubmitInfo, computeStart time.Time) {
	if o == nil {
		return
	}
	now := time.Now()
	// Server-side timing metadata travels back on the response so the edge
	// can annotate its spans without a second exchange.
	resp.SrvRecvUnixNanos = t0.UnixNano()
	resp.SrvElapsedNs = int64(now.Sub(t0))
	o.latency.Observe(now.Sub(t0).Seconds())
	span := obs.Span{
		Trace: obs.TraceID(req.Trace),
		Name:  "serve",
		ID:    req.ID,
		Start: t0,
		Dur:   now.Sub(t0),
	}
	if span.Trace == 0 {
		span.Trace = obs.NewTraceID()
	}
	if resp.Err != "" {
		o.errs[kindIndex(resp.Kind)].Inc()
		span.Err = resp.Kind.String() + ": " + resp.Err
	} else {
		o.ok.Inc()
	}
	switch {
	case si != nil && si.BatchSize > 0:
		o.queue.Observe(si.QueueDelay().Seconds())
		o.compute.Observe(si.RunTime().Seconds())
		o.occupancy.Set(float64(si.BatchWeight))
		span.Stages = []obs.Stage{
			{Name: "queue", Dur: si.QueueDelay()},
			{Name: "batch", Dur: si.BatchDelay()},
			{Name: "compute", Dur: si.RunTime()},
		}
		span.Attrs = map[string]float64{
			"batch_size":   float64(si.BatchSize),
			"batch_weight": float64(si.BatchWeight),
		}
	case !computeStart.IsZero():
		d := now.Sub(computeStart)
		o.compute.Observe(d.Seconds())
		o.occupancy.Set(1)
		span.Stages = []obs.Stage{{Name: "compute", Dur: d}}
	}
	o.spans.Record(span)
}
