// Package splitrt is the edge/cloud split-inference runtime: a TCP server
// hosting the remote part R of a split network, and an edge client that
// runs the local part L, injects sampled Shredder noise, and ships the
// noisy activation over the wire — the deployment story of the paper's
// Figure 2. The wire protocol is gob-encoded and carries only the noisy
// activation; raw inputs never leave the edge.
package splitrt

import (
	"fmt"

	"shredder/internal/tensor"
)

// hello is the connection handshake: the client declares which network and
// cut it expects the server to host so mismatched deployments fail fast.
type hello struct {
	Network  string
	CutLayer string
}

// helloAck is the server's handshake response.
type helloAck struct {
	OK  bool
	Err string
}

// request carries one batch of noisy activations to the cloud, either as
// a dense float tensor or as a quantized payload (at most one is set).
//
// The ID is chosen by the client and echoed back on the matching response.
// A batching server answers each request on its own goroutine, so
// responses on one connection may arrive out of order; the ID is what lets
// a client pipeline several requests on a single connection and demultiplex
// the answers (EdgeClient itself stays lockstep: one request in flight per
// connection).
// Trace is minted by the client (obs.NewTraceID) and echoed verbatim on
// the response, so a request's client-side and server-side telemetry can
// be joined into one timeline. Zero means "untraced". The field is gob
// backward compatible in both directions: an old peer that never sets it
// decodes to zero here, and an old decoder skips the unknown field.
// Audit, when non-nil, carries the edge's privacy attribution for the
// server's tamper-evident audit trail (see internal/audit): which noise
// mode and member perturbed this activation and the realized in-vivo
// 1/SNR when the client's privacy monitor sampled one. Like Trace it is
// gob backward compatible in both directions.
type request struct {
	ID         uint64
	Trace      uint64         // trace ID, echoed in the response (0 = untraced)
	Activation *tensor.Tensor // [N, ...] noisy activation batch
	Quant      *quantPayload  // quantized wire format, when enabled
	Audit      *auditNote     // privacy attribution for the audit ledger
}

// auditNote is the per-request privacy attribution an edge attaches for
// the server's audit ledger. Member follows audit.Record's convention:
// the stored-collection index, -1 for fresh fitted samples, -2 when the
// batch mixed draws and no single member attributes it.
type auditNote struct {
	Mode    string
	Member  int32
	InVivo  float64
	Sampled bool
}

// quantPayload is the quantized wire representation of an activation
// batch: level indices bit-packed at Bits bits each (little-endian bit
// order, Volume(Shape) values — see quantize.Pack) plus the scheme needed
// to unpack and dequantize them. Packing is what makes the bytes on the
// wire actually match Scheme.WireBytes instead of gob's 2-byte uint16
// encoding.
type quantPayload struct {
	Bits   int
	Lo, Hi float64
	Shape  []int
	Packed []byte
}

// ErrKind classifies a remote failure so the client can decide whether a
// retry has any chance of succeeding. It travels on the wire as a small
// integer next to the human-readable message; old servers that never set
// it produce ErrUnknown, which is treated as non-retryable.
type ErrKind uint8

const (
	// ErrUnknown is an unclassified remote error (including errors from
	// pre-ErrKind servers). Not retryable.
	ErrUnknown ErrKind = iota
	// ErrBadRequest is a malformed payload: wrong activation shape, bad
	// quantization scheme, missing activation. The request itself is at
	// fault, so retrying it verbatim can never succeed.
	ErrBadRequest
	// ErrTimeout means the inference exceeded the server's handler
	// timeout. Transient by definition — retryable.
	ErrTimeout
	// ErrShutdown means the server is closing and refused the request.
	// Retryable: a redialing client may find the server (or its
	// replacement) accepting again.
	ErrShutdown
	// ErrInternal is a server-side failure (e.g. a panic mid-forward).
	// Possibly data-dependent, so not retried.
	ErrInternal
)

// Retryable reports whether a request that failed with this kind is worth
// resending unchanged.
func (k ErrKind) Retryable() bool { return k == ErrTimeout || k == ErrShutdown }

// String names the kind for error messages.
func (k ErrKind) String() string {
	switch k {
	case ErrBadRequest:
		return "bad-request"
	case ErrTimeout:
		return "timeout"
	case ErrShutdown:
		return "shutdown"
	case ErrInternal:
		return "internal"
	default:
		return "unknown"
	}
}

// response returns the remote network's logits for a request, or a typed
// error (Kind classifies Err so clients retry only what can succeed).
//
// SrvRecvUnixNanos and SrvElapsedNs are server-side timing metadata for
// end-to-end span joining: the server's receive timestamp (its own clock,
// Unix nanoseconds) and how long it held the request. They are set only
// when the server runs with observability and are 0 otherwise. Like Trace,
// the fields are gob backward compatible in both directions: an old server
// never sets them (they decode to 0 here) and an old client skips them as
// unknown fields.
type response struct {
	ID               uint64
	Trace            uint64 // echo of the request's trace ID (0 from pre-trace servers)
	Logits           *tensor.Tensor
	Err              string
	Kind             ErrKind
	SrvRecvUnixNanos int64 // server receive time, server clock (0 = not reported)
	SrvElapsedNs     int64 // server-side handling duration (0 = not reported)
}

// RemoteError is the client-side representation of a protocol-level
// failure reported by the server. Transport failures (broken connections)
// are ordinary errors; RemoteError means the wire worked and the server
// itself declined or failed the request.
type RemoteError struct {
	Kind ErrKind
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("splitrt: remote error (%s): %s", e.Kind, e.Msg)
}

// Retryable reports whether resending the identical request may succeed.
func (e *RemoteError) Retryable() bool { return e.Kind.Retryable() }
