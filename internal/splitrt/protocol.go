// Package splitrt is the edge/cloud split-inference runtime: a TCP server
// hosting the remote part R of a split network, and an edge client that
// runs the local part L, injects sampled Shredder noise, and ships the
// noisy activation over the wire — the deployment story of the paper's
// Figure 2. The wire protocol is gob-encoded and carries only the noisy
// activation; raw inputs never leave the edge.
package splitrt

import "shredder/internal/tensor"

// hello is the connection handshake: the client declares which network and
// cut it expects the server to host so mismatched deployments fail fast.
type hello struct {
	Network  string
	CutLayer string
}

// helloAck is the server's handshake response.
type helloAck struct {
	OK  bool
	Err string
}

// request carries one batch of noisy activations to the cloud, either as
// a dense float tensor or as a quantized payload (at most one is set).
type request struct {
	ID         uint64
	Activation *tensor.Tensor // [N, ...] noisy activation batch
	Quant      *quantPayload  // quantized wire format, when enabled
}

// quantPayload is the quantized wire representation of an activation
// batch: level indices bit-packed at Bits bits each (little-endian bit
// order, Volume(Shape) values — see quantize.Pack) plus the scheme needed
// to unpack and dequantize them. Packing is what makes the bytes on the
// wire actually match Scheme.WireBytes instead of gob's 2-byte uint16
// encoding.
type quantPayload struct {
	Bits   int
	Lo, Hi float64
	Shape  []int
	Packed []byte
}

// response returns the remote network's logits for a request.
type response struct {
	ID     uint64
	Logits *tensor.Tensor
	Err    string
}
