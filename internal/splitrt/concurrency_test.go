package splitrt

// Concurrency and robustness suite for the split-inference runtime: many
// goroutine clients hammering one server (run under -race), panic
// containment, stalled-peer deadlines, client-side call timeouts, and
// reconnect-with-backoff. These are the behaviours a cloud server needs to
// survive real traffic rather than a single well-behaved loopback client.

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"shredder/internal/core"
	"shredder/internal/nn"
	"shredder/internal/quantize"
	"shredder/internal/tensor"
)

// TestConcurrentClientsHammerServer runs 8 clients × 6 requests in
// parallel against one server and checks every response against the local
// baseline. Under -race this also proves the remote forward path is
// reentrant: the seed implementation (layer caches + global lock removed)
// would either race or serialize.
func TestConcurrentClientsHammerServer(t *testing.T) {
	split, pre, cutLayer, addr := rig(t)
	b := pre.Test.Batches(4)[0]
	want := split.Forward(b.Images)

	const clients = 8
	const reqs = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := Dial(addr, split, cutLayer, nil, seed)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < reqs; i++ {
				got, err := client.Infer(b.Images)
				if err != nil {
					errs <- err
					return
				}
				if !tensor.AllClose(got, want, 1e-9) {
					errs <- fmt.Errorf("client %d request %d: logits diverged under concurrency", seed, i)
					return
				}
			}
			if s := client.Stats(); s.Requests != reqs {
				errs <- fmt.Errorf("client %d counted %d requests, sent %d", seed, s.Requests, reqs)
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// trapLayer is an identity layer that panics when the magic value appears
// in its input — a stand-in for any malformed payload that slips past
// shape validation and blows up mid-forward.
type trapLayer struct{ name string }

const trapValue = 666.0

func (l *trapLayer) Name() string { return l.name }
func (l *trapLayer) ForwardT(tape *nn.Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, v := range x.Data() {
		if v == trapValue {
			panic("trapLayer: boobytrapped activation")
		}
	}
	return x
}
func (l *trapLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.ForwardT(nil, x, train)
}
func (l *trapLayer) BackwardT(tape *nn.Tape, grad *tensor.Tensor) *tensor.Tensor { return grad }
func (l *trapLayer) Backward(grad *tensor.Tensor) *tensor.Tensor                 { return grad }
func (l *trapLayer) Params() []*nn.Param                                         { return nil }
func (l *trapLayer) OutShape(in []int) []int                                     { return in }

// trapRig serves a tiny net whose remote part panics on the magic value.
func trapRig(t *testing.T, opts ...ServerOption) (*core.Split, string, string) {
	t.Helper()
	net := nn.NewSequential("trapnet", nn.NewReLU("cut"), &trapLayer{name: "trap"})
	split, err := core.NewSplit(net, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, "cut", opts...)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return split, "cut", addr
}

// TestPanicDoesNotWedgeServer is the regression test for the seed's
// deadliest bug: a panic inside the remote forward fired recover with the
// inference mutex still held, deadlocking the server forever. Now a
// panic-inducing request must produce an error response on its own
// connection AND leave every other connection fully served.
func TestPanicDoesNotWedgeServer(t *testing.T) {
	split, cutLayer, addr := trapRig(t)

	evil, err := Dial(addr, split, cutLayer, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	bomb := tensor.New(1, 1, 2, 2).Fill(trapValue)
	if _, err := evil.Infer(bomb); err == nil {
		t.Fatal("panic-inducing request should return a remote error")
	} else if !strings.Contains(err.Error(), "remote inference failed") {
		t.Fatalf("unexpected error: %v", err)
	}

	// The same connection must survive its own panic...
	benign := tensor.New(1, 1, 2, 2).Fill(1)
	if _, err := evil.Infer(benign); err != nil {
		t.Fatalf("connection did not survive its own panic: %v", err)
	}
	// ...and a fresh connection must get service (the seed deadlocked here).
	done := make(chan error, 1)
	go func() {
		good, err := Dial(addr, split, cutLayer, nil, 2)
		if err != nil {
			done <- err
			return
		}
		defer good.Close()
		_, err = good.Infer(benign)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second connection failed after panic: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server wedged: second connection made no progress after a panic")
	}
}

// TestIdleTimeoutDropsStalledConnWithoutCollateral stalls one connection
// mid-protocol and checks that (a) the server reaps it at the idle
// deadline and (b) a healthy connection is served the whole time.
func TestIdleTimeoutDropsStalledConnWithoutCollateral(t *testing.T) {
	split, cutLayer, addr := trapRig(t, WithIdleTimeout(300*time.Millisecond))

	// Stalled peer: completes the handshake, then goes silent.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := gob.NewEncoder(raw).Encode(hello{Network: "trapnet", CutLayer: cutLayer}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := gob.NewDecoder(raw).Decode(&ack); err != nil || !ack.OK {
		t.Fatalf("handshake failed: %v %+v", err, ack)
	}

	// Healthy client keeps getting service while the other conn is stalled.
	good, err := Dial(addr, split, cutLayer, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	benign := tensor.New(1, 1, 2, 2).Fill(1)
	for i := 0; i < 3; i++ {
		if _, err := good.Infer(benign); err != nil {
			t.Fatalf("healthy connection starved by a stalled peer: %v", err)
		}
	}

	// The stalled conn must be closed by the server within the idle window.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("expected server to close the stalled connection")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never reaped the stalled connection")
	}
}

// stallingServer handshakes like a real server and then swallows requests
// without ever responding — the pathological cloud a client deadline must
// defend against.
func stallingServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				var h hello
				if dec.Decode(&h) != nil {
					return
				}
				if gob.NewEncoder(conn).Encode(helloAck{OK: true}) != nil {
					return
				}
				var req request
				for dec.Decode(&req) == nil {
					// Swallow the request; never answer.
				}
				<-done
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); close(done) }
}

// TestInferContextDeadline proves a stalled cloud cannot hang the edge:
// both a context deadline and a configured client timeout unblock Infer.
func TestInferContextDeadline(t *testing.T) {
	seq := nn.NewSequential("trapnet", nn.NewReLU("cut"), &trapLayer{name: "trap"})
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := stallingServer(t)
	defer stop()

	client, err := Dial(addr, split, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x := tensor.New(1, 1, 2, 2).Fill(1)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := client.InferContext(ctx, x); err == nil {
		t.Fatal("Infer against a stalled server should fail at the deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the call: took %v", elapsed)
	}

	// Configured default timeout, no context deadline.
	client2, err := Dial(addr, split, "cut", nil, 2, WithTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	start = time.Now()
	if _, err := client2.Infer(x); err == nil {
		t.Fatal("Infer should time out via the configured client timeout")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client timeout did not bound the call: took %v", elapsed)
	}
}

// TestReconnectAfterBrokenConnection kills the client's TCP connection out
// from under it and checks that a reconnect-enabled client transparently
// redials, re-handshakes, and completes the request, while a plain client
// surfaces the transport error.
func TestReconnectAfterBrokenConnection(t *testing.T) {
	split, cutLayer, addr := trapRig(t)
	benign := tensor.New(1, 1, 2, 2).Fill(1)

	plain, err := Dial(addr, split, cutLayer, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	plain.conn.Close()
	if _, err := plain.Infer(benign); err == nil {
		t.Fatal("plain client should surface the broken connection")
	}

	rc, err := Dial(addr, split, cutLayer, nil, 2, WithReconnect(3, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Infer(benign); err != nil {
		t.Fatal(err)
	}
	rc.conn.Close() // sever the transport mid-session
	if _, err := rc.Infer(benign); err != nil {
		t.Fatalf("reconnect-enabled client failed to recover: %v", err)
	}
	if s := rc.Stats(); s.Redials < 1 {
		t.Fatalf("expected at least one redial, stats: %+v", s)
	}
}

// TestPackedQuantizedWireMatchesWireBytes asserts the bytes that actually
// cross the wire under quantized transport are dominated by the bit-packed
// payload Scheme.WireBytes promises, not gob's 2-bytes-per-uint16 blowup.
func TestPackedQuantizedWireMatchesWireBytes(t *testing.T) {
	split, pre, cutLayer, addr := rig(t)
	client, err := Dial(addr, split, cutLayer, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const bits = 6
	if err := client.SetWireQuantization(bits); err != nil {
		t.Fatal(err)
	}
	b := pre.Test.Batches(16)[0]
	if _, err := client.Infer(b.Images); err != nil {
		t.Fatal(err)
	}
	scheme, _ := quantize.NewScheme(bits, 0, 1)
	vals := 16 * tensor.Volume(split.ActivationShape())
	payload := scheme.WireBytes(vals)
	sent := client.Stats().BytesSent
	if sent < payload {
		t.Fatalf("impossible: sent %d bytes < packed payload %d", sent, payload)
	}
	// Everything beyond the packed levels is protocol overhead (gob type
	// descriptors, handshake, scheme metadata, shape). It must be small
	// relative to the payload — and in particular nowhere near the ~2.7x
	// that unpacked []uint16 levels cost at 6 bits.
	if sent > payload+payload/4+2048 {
		t.Fatalf("wire traffic %d far exceeds WireBytes %d: levels are not packed", sent, payload)
	}
}

// TestCloseIsConcurrentlyIdempotent closes a server (with a live client
// connection) from several goroutines at once; every call must return nil
// and none may deadlock (-race guards the conn registry).
func TestCloseIsConcurrentlyIdempotent(t *testing.T) {
	seq := nn.NewSequential("trapnet", nn.NewReLU("cut"), &trapLayer{name: "trap"})
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, "cut")
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr, split, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Close(); err != nil {
				t.Errorf("concurrent Close returned %v", err)
			}
		}()
	}
	wg.Wait()
}
