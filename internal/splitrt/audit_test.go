package splitrt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shredder/internal/audit"
	"shredder/internal/core"
	"shredder/internal/obs"
	"shredder/internal/tensor"
)

// auditRig serves one identity backend with a file-backed audit ledger and
// a debug endpoint, returning the split, server, serving address, and the
// ledger path for post-mortem reopening.
func auditRig(t *testing.T, maxBatch int, maxDelay time.Duration) (*core.Split, *CloudServer, string, string) {
	t.Helper()
	split, _, _ := fleetRig(t, 0) // only want the shared split topology
	path := filepath.Join(t.TempDir(), "audit.ledger")
	fl, err := audit.OpenFileLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	fl.NoSync = true // no durability claims under test; keep CI fast
	aud := audit.New(audit.Options{MaxBatch: maxBatch, MaxDelay: maxDelay, Ledger: fl})
	srv := NewCloudServer(split, "cut", WithAudit(aud), WithDebugServer("127.0.0.1:0"))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return split, srv, addr, path
}

// auditNoise is a one-member stored collection: enough for the client to
// attach a real attribution note (mode, member, in-vivo 1/SNR).
func auditNoise() *core.Collection {
	noise := tensor.New(1, 2, 2)
	for i := range noise.Data() {
		noise.Data()[i] = 0.5 * float64(i) // non-constant: nonzero variance
	}
	return &core.Collection{Shape: []int{1, 2, 2}, Members: []*tensor.Tensor{noise}, InVivo: []float64{0.25}}
}

// waitRoots polls the audit endpoint until at least n roots are anchored
// (anchoring is asynchronous behind sealing).
func waitRoots(t *testing.T, base string, n int) []audit.AnchoredRoot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		roots, err := audit.FetchRoots(base, nil)
		if err == nil && len(roots) >= n {
			return roots
		}
		if time.Now().After(deadline) {
			t.Fatalf("anchored roots never reached %d (last: %d, err: %v)", n, len(roots), err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerAuditEndToEnd is the acceptance path: serve requests with a
// file-backed ledger, fetch the inclusion proof for the client's own trace
// from /debug/audit, verify it against the anchored roots, then confirm the
// roots survive a server shutdown and ledger reopen.
func TestServerAuditEndToEnd(t *testing.T) {
	split, srv, addr, path := auditRig(t, 4, 5*time.Millisecond)
	noise := auditNoise()
	mon := core.NewPrivacyMonitor(obs.NewRegistry(), noise, 1, 1)
	client, err := Dial(addr, split, "cut", noise, 7, WithPrivacyTelemetry(mon))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const requests = 9
	x, _ := poolInput(3)
	for i := 0; i < requests; i++ {
		if _, err := client.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	trace := client.LastTrace()
	if trace == 0 {
		t.Fatal("client minted no trace ID")
	}

	srv.Auditor().Flush()
	base := "http://" + srv.DebugAddr() + "/debug/audit"
	roots := waitRoots(t, base, (requests+3)/4)
	proof, err := audit.FetchProof(base, trace.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := proof.Verify()
	if err != nil {
		t.Fatalf("proof self-verification: %v", err)
	}
	if rec.Trace != uint64(trace) {
		t.Fatalf("proof record trace %016x, want %s", rec.Trace, trace)
	}
	if rec.Model != "obsnet" || rec.Cut != "cut" {
		t.Fatalf("record identifies %s/%s, want obsnet/cut", rec.Model, rec.Cut)
	}
	if rec.Mode != core.ModeStored {
		t.Fatalf("record mode %q, want %q", rec.Mode, core.ModeStored)
	}
	if rec.Member != 0 {
		t.Fatalf("record member %d, want 0 (single-member collection)", rec.Member)
	}
	if !rec.Sampled || rec.InVivo <= 0 {
		t.Fatalf("record carries no in-vivo 1/SNR (sampled=%v invivo=%g)", rec.Sampled, rec.InVivo)
	}
	if _, err := proof.VerifyAgainst(roots); err != nil {
		t.Fatalf("proof does not verify against anchored roots: %v", err)
	}

	// Shutdown drains every pending record, and the anchored chain is
	// durable: reopening the ledger file replays the same roots and the
	// proof still verifies against them.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := audit.OpenFileLedger(path)
	if err != nil {
		t.Fatalf("reopen after clean shutdown: %v", err)
	}
	defer reopened.Close()
	if reopened.Recovered != 0 {
		t.Fatalf("clean shutdown left %d bytes of partial tail", reopened.Recovered)
	}
	persisted := reopened.Roots()
	if len(persisted) < len(roots) {
		t.Fatalf("reopened ledger has %d roots, served %d", len(persisted), len(roots))
	}
	total := 0
	for _, r := range persisted {
		total += r.Count
	}
	if total != requests {
		t.Fatalf("persisted roots cover %d records, want %d", total, requests)
	}
	if _, err := proof.VerifyAgainst(persisted); err != nil {
		t.Fatalf("proof does not verify against reopened ledger: %v", err)
	}
}

// TestServerAuditLedgerTamperDetected flips one byte of the on-disk ledger
// after shutdown and checks reopening fails with the typed corruption error.
func TestServerAuditLedgerTamperDetected(t *testing.T) {
	split, srv, addr, path := auditRig(t, 2, 2*time.Millisecond)
	client, err := Dial(addr, split, "cut", auditNoise(), 11)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := poolInput(4)
	for i := 0; i < 4; i++ {
		if _, err := client.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0x40 // inside the last entry's root hash
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.OpenFileLedger(path); !errors.Is(err, audit.ErrLedgerCorrupt) {
		t.Fatalf("tampered ledger reopened with err=%v, want ErrLedgerCorrupt", err)
	}
}

// TestGatewayAuditFanOut drives traffic through a gateway fronting audited
// backends and checks the gateway's merged /debug/audit serves a proof for
// the edge's trace that verifies against the fleet's root union — even
// though the edge never learns which backend recorded it.
func TestGatewayAuditFanOut(t *testing.T) {
	seqSplit, _, _ := fleetRig(t, 0)
	backends := make([]*CloudServer, 2)
	addrs := make([]string, 2)
	sources := make([]audit.Source, 2)
	for i := range backends {
		aud := audit.New(audit.Options{MaxBatch: 2, MaxDelay: 2 * time.Millisecond})
		srv := NewCloudServer(seqSplit, "cut", WithAudit(aud), WithDebugServer("127.0.0.1:0"))
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		backends[i], addrs[i] = srv, addr
		sources[i] = audit.HTTPSource{
			Name: addr,
			Base: "http://" + srv.DebugAddr() + "/debug/audit",
		}
	}

	pool, err := NewPool(seqSplit, "cut", nil, 13, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	gw := NewGateway(pool,
		WithGatewayDebugServer("127.0.0.1:0"),
		WithBackendAuditSources(sources...))
	gwAddr, err := gw.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	client, err := Dial(gwAddr, seqSplit, "cut", auditNoise(), 17)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x, _ := poolInput(6)
	for i := 0; i < 6; i++ {
		if _, err := client.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	trace := client.LastTrace()
	for _, b := range backends {
		b.Auditor().Flush()
	}

	base := "http://" + gw.DebugAddr() + "/debug/audit"
	roots := waitRoots(t, base, 1)
	proof, err := audit.FetchProof(base, trace.String(), nil)
	if err != nil {
		t.Fatalf("gateway could not serve proof for edge trace: %v", err)
	}
	rec, err := proof.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Trace != uint64(trace) {
		t.Fatalf("backend recorded trace %016x, want the edge's %s", rec.Trace, trace)
	}
	if rec.Mode != core.ModeStored {
		t.Fatalf("audit note lost in relay: mode %q", rec.Mode)
	}
	if _, err := proof.VerifyAgainst(roots); err != nil {
		t.Fatalf("proof does not verify against fleet root union: %v", err)
	}
}
