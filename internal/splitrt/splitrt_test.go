package splitrt

import (
	"encoding/gob"
	"net"
	"strings"
	"testing"

	"shredder/internal/core"
	"shredder/internal/model"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// rig builds a tiny trained LeNet split, a server for it, and the test
// data; callers get the bound address and a cleanup-registered server.
func rig(t *testing.T) (*core.Split, *model.Pretrained, string, string) {
	t.Helper()
	pre, err := model.Train(model.LeNet(), model.TrainConfig{TrainN: 300, TestN: 80, Epochs: 2, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	cutLayer, err := pre.Spec.CutLayer(pre.Spec.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	split, err := core.NewSplit(pre.Net, cutLayer, pre.Spec.Dataset.SampleShape())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, cutLayer)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return split, pre, cutLayer, addr
}

func TestRemoteInferenceMatchesLocalBaseline(t *testing.T) {
	split, pre, cutLayer, addr := rig(t)
	client, err := Dial(addr, split, cutLayer, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	b := pre.Test.Batches(8)[0]
	remote, err := client.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	local := split.Forward(b.Images)
	if !tensor.AllClose(remote, local, 1e-9) {
		t.Fatal("remote logits differ from local full forward")
	}
}

func TestClassifyWithNoiseCollection(t *testing.T) {
	split, pre, cutLayer, addr := rig(t)
	col := core.Collect(split, pre.Train, core.NoiseConfig{
		Scale: 1.5, Lambda: 0.01, PrivacyTarget: 3, Epochs: 1, Seed: 300,
	}, 3, 1)
	client, err := Dial(addr, split, cutLayer, col, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	correct, n := 0, 0
	for _, b := range pre.Test.Batches(16) {
		preds, err := client.Classify(b.Images)
		if err != nil {
			t.Fatal(err)
		}
		for i, y := range b.Labels {
			if preds[i] == y {
				correct++
			}
			n++
		}
	}
	acc := float64(correct) / float64(n)
	if acc < 0.3 {
		t.Fatalf("noisy remote accuracy %.2f collapsed (baseline %.2f)", acc, pre.TestAcc)
	}
}

func TestHandshakeRejectsMismatchedCut(t *testing.T) {
	split, _, _, addr := rig(t)
	if _, err := Dial(addr, split, "pool0", nil, 3); err == nil {
		t.Fatal("handshake should reject a mismatched cut layer")
	} else if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestServerRejectsBadActivationShape(t *testing.T) {
	split, _, cutLayer, addr := rig(t)
	client, err := Dial(addr, split, cutLayer, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Bypass Infer and send a malformed activation directly.
	if err := client.enc.Encode(request{ID: 99, Activation: tensor.New(1, 3, 3)}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := client.dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("server accepted a bad activation shape")
	}
	// Connection must survive the error: a valid request still works.
	good := tensor.New(append([]int{1}, split.ActivationShape()...)...)
	if err := client.enc.Encode(request{ID: 100, Activation: good}); err != nil {
		t.Fatal(err)
	}
	var resp2 response // fresh struct: gob does not overwrite zero-valued fields
	if err := client.dec.Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Err != "" || resp2.Logits == nil {
		t.Fatalf("server did not recover after bad request: %+v", resp2)
	}
}

func TestServerHandlesGarbageHandshake(t *testing.T) {
	_, _, _, addr := rig(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Send something that is not a hello and hang up; server must not
	// crash, and new clients must still connect.
	if err := gob.NewEncoder(conn).Encode("nonsense"); err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

func TestMultipleConcurrentClients(t *testing.T) {
	split, pre, cutLayer, addr := rig(t)
	b := pre.Test.Batches(4)[0]
	want := split.Forward(b.Images)
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			client, err := Dial(addr, split, cutLayer, nil, seed)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 5; i++ {
				got, err := client.Infer(b.Images)
				if err != nil {
					errs <- err
					return
				}
				if !tensor.AllClose(got, want, 1e-9) {
					errs <- errMismatch
					return
				}
			}
			errs <- nil
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "remote logits mismatch under concurrency" }

func TestCloseStopsServer(t *testing.T) {
	pre, err := model.Train(model.LeNet(), model.TrainConfig{TrainN: 100, TestN: 20, Epochs: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	cutLayer, _ := pre.Spec.CutLayer("conv2")
	split, err := core.NewSplit(pre.Net, cutLayer, pre.Spec.Dataset.SampleShape())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, cutLayer)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close must be idempotent, second call returned %v", err)
	}
	if _, err := Dial(addr, split, cutLayer, nil, 5); err == nil {
		t.Fatal("Dial should fail after server Close")
	}
}

func TestQuantizedTransportAccuracyAndVolume(t *testing.T) {
	split, pre, cutLayer, addr := rig(t)
	denseClient, err := Dial(addr, split, cutLayer, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer denseClient.Close()
	quantClient, err := Dial(addr, split, cutLayer, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer quantClient.Close()
	if err := quantClient.SetWireQuantization(8); err != nil {
		t.Fatal(err)
	}

	b := pre.Test.Batches(16)[0]
	dense, err := denseClient.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := quantClient.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions should agree almost everywhere despite 8-bit transport.
	agree := 0
	for i := range b.Labels {
		if dense.Slice(i).Argmax() == quant.Slice(i).Argmax() {
			agree++
		}
	}
	if agree < len(b.Labels)-2 {
		t.Fatalf("quantized transport changed %d/%d predictions", len(b.Labels)-agree, len(b.Labels))
	}
	// And move far fewer bytes: gob float64 is ≥8B/value, bit-packed 8-bit
	// levels are 1B/value — demand at least 3x reduction (fixed protocol
	// overhead dilutes the per-value win at this small activation volume).
	ds, qs := denseClient.Stats(), quantClient.Stats()
	if ds.BytesSent < qs.BytesSent*3 {
		t.Fatalf("quantized transport not smaller: dense %d bytes, quant %d bytes", ds.BytesSent, qs.BytesSent)
	}
	if ds.Requests != 1 || qs.Requests != 1 {
		t.Fatalf("request counters wrong: %d / %d", ds.Requests, qs.Requests)
	}
}

// TestCompiledServingDecisionParity pins the dtype-compiled serving paths
// to the stock float64 path: a Float64-compiled server must reproduce the
// logits within the blocked-matmul accumulation epsilon, and a
// Float32-compiled server must yield identical classification decisions —
// over dense transport and over the quantized fast path that dequantizes
// straight into float32.
func TestCompiledServingDecisionParity(t *testing.T) {
	split, pre, cutLayer, addr := rig(t)

	srv64 := NewCloudServer(split, cutLayer, WithDtype(nn.Float64))
	addr64, err := srv64.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv64.Close() })
	srv32 := NewCloudServer(split, cutLayer, WithDtype(nn.Float32))
	addr32, err := srv32.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv32.Close() })

	dial := func(a string, seed int64) *EdgeClient {
		t.Helper()
		c, err := Dial(a, split, cutLayer, nil, seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	stock := dial(addr, 20)
	c64 := dial(addr64, 21)
	c32 := dial(addr32, 22)

	b := pre.Test.Batches(16)[0]
	want, err := stock.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	got64, err := c64.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got64, 1e-9) {
		t.Fatal("float64-compiled server logits deviate from stock path")
	}
	for i := range b.Labels {
		if want.Slice(i).Argmax() != got64.Slice(i).Argmax() {
			t.Fatalf("sample %d: float64-compiled decision differs", i)
		}
	}
	got32, err := c32.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Labels {
		if want.Slice(i).Argmax() != got32.Slice(i).Argmax() {
			t.Fatalf("sample %d: float32-compiled decision differs over dense transport", i)
		}
	}

	// Quantized transport: the float32 server takes the direct-dequant fast
	// path (no float64 activation materialized); decisions must still match
	// the float64 server fed the very same wire payload.
	q64 := dial(addr64, 23)
	q32 := dial(addr32, 24)
	for _, c := range []*EdgeClient{q64, q32} {
		if err := c.SetWireQuantization(8); err != nil {
			t.Fatal(err)
		}
	}
	wantQ, err := q64.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	gotQ, err := q32.Infer(b.Images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Labels {
		if wantQ.Slice(i).Argmax() != gotQ.Slice(i).Argmax() {
			t.Fatalf("sample %d: float32 decision differs over quantized fast path", i)
		}
	}
}

func TestSetWireQuantizationValidation(t *testing.T) {
	split, _, cutLayer, addr := rig(t)
	client, err := Dial(addr, split, cutLayer, nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.SetWireQuantization(17); err == nil {
		t.Fatal("17-bit quantization should be rejected")
	}
	if err := client.SetWireQuantization(-2); err == nil {
		t.Fatal("negative bit width should be rejected")
	}
	if err := client.SetWireQuantization(1); err != nil {
		t.Fatalf("1-bit quantization is the extreme of the legal range: %v", err)
	}
	if err := client.SetWireQuantization(0); err != nil {
		t.Fatal("disabling quantization should succeed")
	}
}
