package splitrt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shredder/internal/core"
	"shredder/internal/obs"
	"shredder/internal/sched"
	"shredder/internal/tensor"
)

// Pool is the fleet layer of split inference: one client-side handle over N
// cloud backends all serving the same model partition (network + cut
// layer). It owns an EdgeClient per backend and layers on what a single
// client cannot provide:
//
//   - balancing: a pluggable Balancer (round-robin, least-inflight,
//     consistent rendezvous routing) spreads requests over the healthy set;
//   - failure handling: consecutive backend failures eject a backend, a
//     background health loop redials ejected backends and readmits them
//     through a half-open single-trial probe, and a failed call reroutes to
//     another backend — a CloudServer.Close mid-flight (the retryable
//     shutdown kind) is absorbed by rerouting instead of surfacing;
//   - hedging: when a call outlives a latency budget derived from the live
//     per-backend RTT histograms, a duplicate fires at a second backend and
//     the first response wins (the loser is cancelled);
//   - graceful drain: Drain(addr) generalizes the sched.Close contract to
//     one backend — in-flight calls finish, new calls reroute — and Close
//     drains the whole pool.
//
// Like EdgeClient, the pool applies the noise source (when non-nil) to
// each sample before anything leaves the process, so no backend ever sees a
// raw activation regardless of routing, rerouting, or hedging.
//
// All methods are safe for concurrent use.
type Pool struct {
	split    *core.Split
	cutLayer string
	noise    core.NoiseSource
	key      string // routing key: network "/" cut layer

	mu      sync.Mutex // guards rng and scratch (noise sampling)
	rng     *tensor.RNG
	scratch core.DrawScratch // reused by fitted sources: zero-alloc draws

	seed       int64
	reg        *obs.Registry
	balancer   Balancer
	hedgeQ     float64       // quantile for the hedge budget; 0 = hedging off
	hedgeMin   time.Duration // floor for the hedge budget
	ejectAfter int64         // consecutive eject-worthy failures before ejection
	healthIvl  time.Duration
	clientOpts []ClientOption

	gate sched.Gate // pool-wide admission; Close drains it

	bmu      sync.RWMutex
	backends []*poolBackend

	healthStop chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once

	m poolMetrics
}

// poolMetrics are the pool-level counters; per-backend metrics live on each
// poolBackend under "pool.backend.<addr>." names in the same registry.
type poolMetrics struct {
	requests  *obs.Counter // pool.requests: calls admitted
	reroutes  *obs.Counter // pool.reroutes: failovers to another backend
	hedges    *obs.Counter // pool.hedges: duplicate attempts fired
	hedgeWins *obs.Counter // pool.hedge_wins: duplicates that answered first
	ejections *obs.Counter // pool.ejections: backends removed from rotation
	readmits  *obs.Counter // pool.readmits: half-open probes that succeeded
}

// BackendState is the health-machine position of one pool backend.
type BackendState int32

const (
	// BackendHealthy backends are in the balancer's rotation.
	BackendHealthy BackendState = iota
	// BackendEjected backends took too many consecutive failures and are
	// out of rotation until the health loop re-establishes a connection.
	BackendEjected
	// BackendHalfOpen backends have a fresh connection and admit exactly
	// one trial request: success readmits, failure re-ejects.
	BackendHalfOpen
	// BackendDraining backends are being removed: in-flight calls finish,
	// new calls reroute.
	BackendDraining
)

// String names the state for stats and debug output.
func (s BackendState) String() string {
	switch s {
	case BackendHealthy:
		return "healthy"
	case BackendEjected:
		return "ejected"
	case BackendHalfOpen:
		return "half-open"
	case BackendDraining:
		return "draining"
	}
	return "unknown"
}

type poolBackend struct {
	addr  string
	state atomic.Int32
	trial atomic.Bool // half-open: latched by the single probe in flight

	inflight atomic.Int64
	fails    atomic.Int64 // consecutive eject-worthy failures

	gate sched.Gate // per-backend drain

	mu     sync.Mutex // guards client swap (health loop vs calls)
	client *EdgeClient

	requests   *obs.Counter
	errors     *obs.Counter
	rtt        *obs.Histogram
	stateGauge *obs.Gauge
}

func (b *poolBackend) getState() BackendState { return BackendState(b.state.Load()) }

func (b *poolBackend) setState(s BackendState) {
	b.state.Store(int32(s))
	b.stateGauge.Set(float64(s))
}

// PoolOption configures a Pool at NewPool time.
type PoolOption func(*Pool)

// WithPoolMetrics registers the pool's metrics (pool.requests,
// pool.reroutes, pool.hedges, pool.hedge_wins, pool.ejections,
// pool.readmits, and per-backend pool.backend.<addr>.* series) in the given
// registry instead of a private one.
func WithPoolMetrics(reg *obs.Registry) PoolOption {
	return func(p *Pool) { p.reg = reg }
}

// WithBalancer installs the balancing policy (default: round-robin).
func WithBalancer(b Balancer) PoolOption {
	return func(p *Pool) {
		if b != nil {
			p.balancer = b
		}
	}
}

// WithHedging arms hedged requests: when a call exceeds the q-quantile of
// the fastest healthy backend's live RTT histogram (but at least min, to
// keep cold histograms from hedging everything), a duplicate is sent to a
// different backend and the first response wins. q of 0 disables hedging;
// min of 0 keeps the 1ms default floor. Taking the *minimum* over healthy
// backends' quantiles matters: a budget from pooled latencies would drift
// up toward the slowest backend and never fire against it.
func WithHedging(q float64, min time.Duration) PoolOption {
	return func(p *Pool) {
		p.hedgeQ = q
		if min > 0 {
			p.hedgeMin = min
		}
	}
}

// WithEjectAfter sets how many consecutive eject-worthy failures (transport
// breaks, shutdowns, handler timeouts) remove a backend from rotation
// (default 3, minimum 1).
func WithEjectAfter(n int) PoolOption {
	return func(p *Pool) {
		if n >= 1 {
			p.ejectAfter = int64(n)
		}
	}
}

// WithHealthInterval sets how often the background loop redials ejected
// backends (default 1s; 0 keeps the default).
func WithHealthInterval(d time.Duration) PoolOption {
	return func(p *Pool) {
		if d > 0 {
			p.healthIvl = d
		}
	}
}

// WithPoolClientOptions forwards extra ClientOptions to every backend's
// EdgeClient (e.g. WithTimeout, SetWireQuantization is per-client). The
// pool always dials backends with a nil noise collection — noise is the
// pool's job, applied once before routing — and a small reconnect budget.
func WithPoolClientOptions(opts ...ClientOption) PoolOption {
	return func(p *Pool) { p.clientOpts = opts }
}

// ErrNoBackends is returned when every backend is out of rotation (and any
// per-call failures have already been folded into the message). It is a
// retryable condition: backends may be readmitted by the health loop.
var ErrNoBackends = errors.New("splitrt: pool: no backend available")

// ErrPoolClosed is returned by calls admitted after Close began.
var ErrPoolClosed = errors.New("splitrt: pool: closed")

// errBackendDraining is the internal reroute signal for a backend whose
// gate refused admission between pick and call.
var errBackendDraining = errors.New("splitrt: pool: backend draining")

// NewPool dials every addr and assembles the fleet handle. Backends that
// fail to dial start in the ejected state and are retried by the health
// loop; NewPool fails only when no backend at all is reachable. The seed
// derives both the pool's noise RNG and per-backend client seeds.
func NewPool(split *core.Split, cutLayer string, src core.NoiseSource, seed int64, addrs []string, opts ...PoolOption) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("splitrt: pool: no backend addresses")
	}
	p := &Pool{
		split: split, cutLayer: cutLayer, noise: src,
		key:  split.Net.Name() + "/" + cutLayer,
		rng:  tensor.NewRNG(seed),
		seed: seed, balancer: NewRoundRobin(),
		hedgeMin: time.Millisecond, ejectAfter: 3, healthIvl: time.Second,
		healthStop: make(chan struct{}), healthDone: make(chan struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	if p.reg == nil {
		p.reg = obs.NewRegistry()
	}
	p.m = poolMetrics{
		requests:  p.reg.Counter("pool.requests"),
		reroutes:  p.reg.Counter("pool.reroutes"),
		hedges:    p.reg.Counter("pool.hedges"),
		hedgeWins: p.reg.Counter("pool.hedge_wins"),
		ejections: p.reg.Counter("pool.ejections"),
		readmits:  p.reg.Counter("pool.readmits"),
	}
	healthy := 0
	for i, addr := range addrs {
		b := &poolBackend{
			addr:       addr,
			requests:   p.reg.Counter("pool.backend." + addr + ".requests"),
			errors:     p.reg.Counter("pool.backend." + addr + ".errors"),
			rtt:        p.reg.Histogram("pool.backend."+addr+".rtt_seconds", obs.DefLatencyBuckets...),
			stateGauge: p.reg.Gauge("pool.backend." + addr + ".state"),
		}
		client, err := p.dialBackend(addr, p.seed+int64(i)*101+1)
		if err == nil {
			b.client = client
			b.setState(BackendHealthy)
			healthy++
		} else {
			b.setState(BackendEjected)
		}
		p.backends = append(p.backends, b)
	}
	if healthy == 0 {
		return nil, fmt.Errorf("splitrt: pool: no backend reachable (tried %d)", len(addrs))
	}
	go p.healthLoop()
	return p, nil
}

// dialBackend builds one backend client: no noise collection (the pool
// noises activations before routing), a small reconnect budget so a blip
// does not immediately cost an ejection, then the caller's extra options.
func (p *Pool) dialBackend(addr string, seed int64) (*EdgeClient, error) {
	opts := append([]ClientOption{WithReconnect(2, 25*time.Millisecond)}, p.clientOpts...)
	return Dial(addr, p.split, p.cutLayer, nil, seed, opts...)
}

// Infer runs split inference on a batch [N, ...] through the fleet.
func (p *Pool) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	return p.InferContext(context.Background(), x)
}

// InferContext runs the local part, applies noise (when the pool holds a
// noise source), and routes the protected activation through the fleet
// with balancing, rerouting, and hedging.
func (p *Pool) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	a := p.split.Local(x) // reentrant: outside any lock
	if p.noise != nil {
		p.mu.Lock()
		for i := 0; i < a.Dim(0); i++ {
			core.DrawReusing(p.noise, &p.scratch, p.rng).ApplyInPlace(a.Slice(i))
		}
		p.mu.Unlock()
	}
	return p.InferActivation(ctx, a)
}

// InferActivation routes an already-prepared cut-layer activation through
// the fleet — the relay entry point the gateway uses for activations that
// were noised on the original edge device.
func (p *Pool) InferActivation(ctx context.Context, a *tensor.Tensor) (*tensor.Tensor, error) {
	if !p.gate.Enter() {
		return nil, ErrPoolClosed
	}
	defer p.gate.Leave()
	p.m.requests.Inc()

	tried := make(map[string]bool)
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := p.pick(tried)
		if b == nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", ErrNoBackends, lastErr)
			}
			return nil, ErrNoBackends
		}
		out, err := p.callMaybeHedged(ctx, b, a, tried)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		tried[b.addr] = true
		if !reroutable(err) {
			return nil, err
		}
		lastErr = err
		p.m.reroutes.Inc()
	}
}

// Classify returns the predicted class per sample of a batch.
func (p *Pool) Classify(x *tensor.Tensor) ([]int, error) {
	logits, err := p.Infer(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, logits.Dim(0))
	for i := range out {
		out[i] = logits.Slice(i).Argmax()
	}
	return out, nil
}

// reroutable reports whether a failure may be absorbed by sending the same
// request to a different backend: transport breaks and the transient remote
// kinds (timeout, shutdown) qualify; a bad request or server-internal error
// would fail identically everywhere and is surfaced instead.
func reroutable(err error) bool {
	var rerr *RemoteError
	if errors.As(err, &rerr) {
		return rerr.Retryable()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-level failure, including errBackendDraining
}

// pick selects the next backend to try, excluding tried ones. A half-open
// backend with an unclaimed trial latch takes priority (that is the only
// path back into rotation); otherwise the balancer chooses among healthy
// candidates. Returns nil when nothing is available.
func (p *Pool) pick(tried map[string]bool) *poolBackend {
	p.bmu.RLock()
	defer p.bmu.RUnlock()
	for _, b := range p.backends {
		if tried[b.addr] {
			continue
		}
		if b.getState() == BackendHalfOpen && b.trial.CompareAndSwap(false, true) {
			return b
		}
	}
	var cands []*poolBackend
	var views []BackendView
	for _, b := range p.backends {
		if tried[b.addr] || b.getState() != BackendHealthy {
			continue
		}
		cands = append(cands, b)
		views = append(views, BackendView{Addr: b.addr, Inflight: int(b.inflight.Load())})
	}
	if len(cands) == 0 {
		return nil
	}
	i := p.balancer.Pick(p.key, views)
	if i < 0 || i >= len(cands) {
		i = 0
	}
	return cands[i]
}

// pickHedge chooses a backend for the duplicate attempt: healthy, not the
// primary, not already tried. Hedges never claim a half-open trial — a
// probe slot is for deliberate readmission, not speculation.
func (p *Pool) pickHedge(tried map[string]bool, primary string) *poolBackend {
	p.bmu.RLock()
	defer p.bmu.RUnlock()
	var cands []*poolBackend
	var views []BackendView
	for _, b := range p.backends {
		if tried[b.addr] || b.addr == primary || b.getState() != BackendHealthy {
			continue
		}
		cands = append(cands, b)
		views = append(views, BackendView{Addr: b.addr, Inflight: int(b.inflight.Load())})
	}
	if len(cands) == 0 {
		return nil
	}
	i := p.balancer.Pick(p.key, views)
	if i < 0 || i >= len(cands) {
		i = 0
	}
	return cands[i]
}

// callOne sends the activation to one backend through its drain gate,
// keeping the health machine and per-backend stats honest: successes reset
// the failure streak (and readmit a half-open backend), eject-worthy
// failures advance it, and a context cancellation — the losing half of a
// hedge, or the caller giving up — counts as neither.
func (p *Pool) callOne(ctx context.Context, b *poolBackend, a *tensor.Tensor) (*tensor.Tensor, error) {
	wasTrial := b.getState() == BackendHalfOpen
	if !b.gate.Enter() {
		if wasTrial {
			b.trial.Store(false)
		}
		return nil, errBackendDraining
	}
	defer b.gate.Leave()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Inc()

	b.mu.Lock()
	client := b.client
	b.mu.Unlock()
	if client == nil {
		if wasTrial {
			b.trial.Store(false)
		}
		return nil, errBackendDraining
	}

	start := time.Now()
	out, err := client.InferActivation(ctx, a)
	if err == nil {
		b.rtt.Observe(time.Since(start).Seconds())
		p.noteSuccess(b)
		return out, nil
	}
	if ctx.Err() != nil {
		// The caller cancelled (hedge lost, deadline passed upstream): the
		// backend did nothing wrong, so neither its failure streak nor its
		// latency histogram moves.
		if wasTrial {
			b.trial.Store(false)
		}
		return nil, ctx.Err()
	}
	b.errors.Inc()
	p.noteFailure(b, err)
	return nil, err
}

// noteSuccess resets the failure streak and readmits a half-open backend.
func (p *Pool) noteSuccess(b *poolBackend) {
	b.fails.Store(0)
	if b.getState() == BackendHalfOpen {
		b.setState(BackendHealthy)
		b.trial.Store(false)
		p.m.readmits.Inc()
	}
}

// noteFailure advances the health machine for one failed call. Only
// eject-worthy failures count: a bad request or internal error proves the
// backend is alive and answering, so it stays in rotation.
func (p *Pool) noteFailure(b *poolBackend, err error) {
	var rerr *RemoteError
	if errors.As(err, &rerr) && !rerr.Retryable() {
		return
	}
	if b.getState() == BackendHalfOpen {
		// Failed probe: straight back out of rotation.
		b.setState(BackendEjected)
		b.trial.Store(false)
		p.m.ejections.Inc()
		return
	}
	if b.fails.Add(1) >= p.ejectAfter && b.getState() == BackendHealthy {
		b.setState(BackendEjected)
		p.m.ejections.Inc()
	}
}

// hedgeBudget derives the live hedge-fire threshold: the hedgeQ quantile of
// the fastest healthy backend's RTT histogram, floored at hedgeMin. The
// minimum over backends (not a pooled histogram) is what lets the budget
// stay anchored to healthy latency while one backend degrades. Backends
// with fewer than 16 observations are skipped — too cold to trust — and
// with no warm backend at all, hedging stays off (returns 0).
func (p *Pool) hedgeBudget() time.Duration {
	if p.hedgeQ <= 0 {
		return 0
	}
	p.bmu.RLock()
	defer p.bmu.RUnlock()
	var best time.Duration
	for _, b := range p.backends {
		if b.getState() != BackendHealthy || b.rtt.Count() < 16 {
			continue
		}
		q := time.Duration(b.rtt.Quantile(p.hedgeQ) * float64(time.Second))
		if best == 0 || q < best {
			best = q
		}
	}
	if best == 0 {
		return 0
	}
	if best < p.hedgeMin {
		best = p.hedgeMin
	}
	return best
}

// callMaybeHedged runs one attempt against b, firing a duplicate at a
// second backend if the attempt outlives the hedge budget. The first
// response wins; the loser's context is cancelled, which the client
// translates into an interrupted read (and callOne into a no-stats
// cancellation). A failed hedge backend is added to tried so the outer
// reroute loop does not revisit it.
func (p *Pool) callMaybeHedged(ctx context.Context, b *poolBackend, a *tensor.Tensor, tried map[string]bool) (*tensor.Tensor, error) {
	budget := p.hedgeBudget()
	if budget <= 0 {
		return p.callOne(ctx, b, a)
	}
	type attempt struct {
		out    *tensor.Tensor
		err    error
		hedged bool
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attempt, 2) // buffered: the loser must never block
	go func() {
		out, err := p.callOne(cctx, b, a)
		results <- attempt{out, err, false}
	}()
	timer := time.NewTimer(budget)
	defer timer.Stop()

	pending := 1
	var hedge *poolBackend
	var firstErr error
	for {
		select {
		case <-timer.C:
			if hedge != nil {
				continue
			}
			hedge = p.pickHedge(tried, b.addr)
			if hedge == nil {
				continue // nothing to hedge to; keep waiting on the primary
			}
			pending++
			p.m.hedges.Inc()
			go func() {
				out, err := p.callOne(cctx, hedge, a)
				results <- attempt{out, err, true}
			}()
		case r := <-results:
			pending--
			if r.err == nil {
				if r.hedged {
					p.m.hedgeWins.Inc()
				}
				cancel() // poke the loser off the wire
				return r.out, nil
			}
			if firstErr == nil || !r.hedged {
				// Prefer reporting the primary's failure: the hedge may have
				// died of the shared cancellation.
				firstErr = r.err
			}
			if r.hedged && hedge != nil {
				tried[hedge.addr] = true
			}
			if pending == 0 {
				return nil, firstErr
			}
		}
	}
}

// healthLoop periodically redials ejected backends. A successful dial and
// handshake promotes the backend to half-open, where its first real request
// decides readmission.
func (p *Pool) healthLoop() {
	defer close(p.healthDone)
	t := time.NewTicker(p.healthIvl)
	defer t.Stop()
	for {
		select {
		case <-p.healthStop:
			return
		case <-t.C:
			p.probeEjected()
		}
	}
}

func (p *Pool) probeEjected() {
	p.bmu.RLock()
	backends := append([]*poolBackend(nil), p.backends...)
	p.bmu.RUnlock()
	for i, b := range backends {
		if b.getState() != BackendEjected {
			continue
		}
		client, err := p.dialBackend(b.addr, p.seed+int64(i)*101+7)
		if err != nil {
			continue
		}
		b.mu.Lock()
		old := b.client
		b.client = client
		b.mu.Unlock()
		if old != nil {
			old.Close()
		}
		b.fails.Store(0)
		b.trial.Store(false)
		b.setState(BackendHalfOpen)
	}
}

// Drain removes one backend gracefully: it leaves rotation immediately (new
// calls reroute), in-flight calls to it finish, and only then is its
// connection closed. The generalization of the sched.Close contract to one
// fleet member.
func (p *Pool) Drain(addr string) error {
	p.bmu.Lock()
	var b *poolBackend
	for i, x := range p.backends {
		if x.addr == addr {
			b = x
			p.backends = append(p.backends[:i], p.backends[i+1:]...)
			break
		}
	}
	p.bmu.Unlock()
	if b == nil {
		return fmt.Errorf("splitrt: pool: unknown backend %s", addr)
	}
	b.setState(BackendDraining)
	b.gate.Drain()
	b.mu.Lock()
	client := b.client
	b.client = nil
	b.mu.Unlock()
	if client != nil {
		return client.Close()
	}
	return nil
}

// Close drains the pool: the health loop stops, in-flight calls finish,
// new calls fail with ErrPoolClosed, and every backend connection is
// closed. Idempotent.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		close(p.healthStop)
		<-p.healthDone
		p.gate.Drain()
		p.bmu.Lock()
		backends := p.backends
		p.backends = nil
		p.bmu.Unlock()
		for _, b := range backends {
			b.setState(BackendDraining)
			b.gate.Drain()
			b.mu.Lock()
			if b.client != nil {
				b.client.Close()
				b.client = nil
			}
			b.mu.Unlock()
		}
	})
	return nil
}

// BackendStatus is one backend's row in a PoolStats snapshot.
type BackendStatus struct {
	Addr     string
	State    string
	Inflight int
	Requests int64
	Errors   int64
}

// PoolStats is a point-in-time snapshot of the fleet's health and traffic.
type PoolStats struct {
	Backends  []BackendStatus
	Requests  int64
	Reroutes  int64
	Hedges    int64
	HedgeWins int64
	Ejections int64
	Readmits  int64
}

// Stats snapshots the pool. Safe to call concurrently with traffic.
func (p *Pool) Stats() PoolStats {
	s := PoolStats{
		Requests:  p.m.requests.Value(),
		Reroutes:  p.m.reroutes.Value(),
		Hedges:    p.m.hedges.Value(),
		HedgeWins: p.m.hedgeWins.Value(),
		Ejections: p.m.ejections.Value(),
		Readmits:  p.m.readmits.Value(),
	}
	p.bmu.RLock()
	defer p.bmu.RUnlock()
	for _, b := range p.backends {
		s.Backends = append(s.Backends, BackendStatus{
			Addr:     b.addr,
			State:    b.getState().String(),
			Inflight: int(b.inflight.Load()),
			Requests: b.requests.Value(),
			Errors:   b.errors.Value(),
		})
	}
	return s
}

// Registry exposes the pool's metrics registry (the shared one when
// WithPoolMetrics was used, otherwise the pool's private registry) so a
// gateway can fold it into a merged debug snapshot.
func (p *Pool) Registry() *obs.Registry { return p.reg }

// Split returns the model partition the pool serves — the gateway needs it
// to validate and decode incoming activations.
func (p *Pool) Split() *core.Split { return p.split }

// CutLayer returns the cut-layer name of the served partition.
func (p *Pool) CutLayer() string { return p.cutLayer }
