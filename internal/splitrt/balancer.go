package splitrt

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// BackendView is the read-only slice of backend state a Balancer sees when
// picking: just enough to balance on, nothing it could mutate.
type BackendView struct {
	Addr     string
	Inflight int
}

// Balancer picks which healthy backend serves the next request. Pick
// receives the pool's routing key (network "/" cut layer — the identity of
// the model partition being served, so a consistent balancer routes the
// same partition the same way on every client) and the current healthy
// candidates; it returns an index into cands. Implementations must be safe
// for concurrent use. cands is never empty.
type Balancer interface {
	Pick(key string, cands []BackendView) int
}

// NewRoundRobin returns the default balancer: a strict rotation over the
// healthy set. With backends joining and leaving the rotation index is over
// whatever set is healthy at pick time, which keeps the policy trivially
// correct (if uneven) across membership changes.
func NewRoundRobin() Balancer { return &roundRobin{} }

type roundRobin struct{ n atomic.Uint64 }

func (r *roundRobin) Pick(_ string, cands []BackendView) int {
	return int((r.n.Add(1) - 1) % uint64(len(cands)))
}

// NewLeastInflight returns a balancer that picks the backend with the
// fewest requests currently in flight, breaking ties by rotation. It is
// the right default when backends have heterogeneous speeds: a slow
// backend accumulates in-flight work and organically receives less.
func NewLeastInflight() Balancer { return &leastInflight{} }

type leastInflight struct{ n atomic.Uint64 }

func (l *leastInflight) Pick(_ string, cands []BackendView) int {
	best, min := -1, 0
	start := int(l.n.Add(1)-1) % len(cands)
	for i := 0; i < len(cands); i++ {
		j := (start + i) % len(cands)
		if best == -1 || cands[j].Inflight < min {
			best, min = j, cands[j].Inflight
		}
	}
	return best
}

// NewConsistent returns a rendezvous-hash balancer: every (routing key,
// backend addr) pair gets a stable score and the highest-scoring healthy
// backend wins. All pool clients sharing a fleet therefore send the same
// model+cut to the same backend (maximizing any server-side caching), and
// a backend's ejection only moves that backend's share — the rest of the
// mapping is undisturbed, which is the property plain modulo hashing lacks.
func NewConsistent() Balancer { return consistent{} }

type consistent struct{}

func (consistent) Pick(key string, cands []BackendView) int {
	best, bestScore := 0, uint64(0)
	for i, c := range cands {
		h := fnv.New64a()
		h.Write([]byte(c.Addr))
		h.Write([]byte{0})
		h.Write([]byte(key))
		if s := h.Sum64(); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// BalancerByName maps a CLI-friendly policy name to a Balancer:
// "roundrobin" (default when name is empty), "least-inflight", or
// "consistent".
func BalancerByName(name string) (Balancer, error) {
	switch name {
	case "", "roundrobin", "round-robin":
		return NewRoundRobin(), nil
	case "least-inflight", "leastinflight":
		return NewLeastInflight(), nil
	case "consistent":
		return NewConsistent(), nil
	}
	return nil, fmt.Errorf("splitrt: unknown balancer %q (want roundrobin, least-inflight, or consistent)", name)
}
