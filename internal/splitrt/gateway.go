package splitrt

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"shredder/internal/audit"
	"shredder/internal/core"
	"shredder/internal/obs"
)

// Gateway fronts a Pool with the splitrt wire protocol: edge devices speak
// to it exactly as they would to a single CloudServer, and the gateway
// relays each activation through the pool — balancing, rerouting, hedging,
// and health handling included. The activations it forwards were noised on
// the original edge device (the gateway's pool carries no collection of its
// own when used this way), so the privacy boundary stays at the device.
//
// With WithGatewayDebugServer the gateway's debug endpoint re-exports a
// merged /debug/metrics: its own registry (gateway.* plus the pool's
// pool.* series when they share a registry) with every configured backend
// source folded in under "<label>." prefixes.
type Gateway struct {
	pool *Pool

	reg          *obs.Registry
	debugAddr    string
	sources      []obs.SnapshotSource
	auditSources []audit.Source
	eventSources []obs.EventSource
	idleTimeout  time.Duration
	callTimeout  time.Duration

	windowOpts *obs.WindowOptions
	sloIvl     time.Duration
	sloObjs    []obs.Objective
	windows    *obs.Windows
	slo        *obs.SLO
	sloErr     error  // deferred to Serve so construction stays infallible
	stopObs    func() // stops the window/SLO ticker, set by Serve

	mu       sync.Mutex // guards listener, conns, closed, debug
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	debug    *obs.DebugServer
	wg       sync.WaitGroup

	requests *obs.Counter
	failures *obs.Counter
	invivo   *obs.Histogram // fleet-wide view of relayed in-vivo 1/SNR
	invivoG  *obs.Gauge
}

// GatewayOption configures a Gateway.
type GatewayOption func(*Gateway)

// WithGatewayMetrics registers gateway.requests and gateway.errors in the
// given registry. Pass the pool's registry to get one snapshot covering
// the gateway and the whole fleet.
func WithGatewayMetrics(reg *obs.Registry) GatewayOption {
	return func(g *Gateway) { g.reg = reg }
}

// WithGatewayDebugServer serves the obs debug endpoint on addr for the
// gateway's registry, with every source from WithBackendSources merged in.
func WithGatewayDebugServer(addr string) GatewayOption {
	return func(g *Gateway) { g.debugAddr = addr }
}

// WithBackendSources adds labelled metric feeds (typically
// obs.HTTPSnapshotSource pulls of each backend's /debug/metrics) to the
// gateway's merged debug snapshot.
func WithBackendSources(sources ...obs.SnapshotSource) GatewayOption {
	return func(g *Gateway) { g.sources = append(g.sources, sources...) }
}

// WithBackendAuditSources adds audit-evidence feeds (typically one
// audit.HTTPSource per backend's /debug/audit) to the gateway's debug
// surface: /debug/audit on the gateway fans proof-by-trace lookups out
// across the fleet and serves the union of every backend's anchored
// roots — the audit-ledger analogue of the metrics merge above. A
// client that only ever spoke to the gateway can verify its inclusion
// proof without knowing which backend served it.
func WithBackendAuditSources(sources ...audit.Source) GatewayOption {
	return func(g *Gateway) { g.auditSources = append(g.auditSources, sources...) }
}

// WithBackendEventSources adds labelled event feeds (typically one
// obs.HTTPEventSource per backend's /debug/events) to the gateway's
// /debug/events endpoint, which then serves the union of its own SLO
// transitions and every backend's — each event stamped with its source
// label, and a dead backend surfacing as a synthetic "event-source"
// firing event rather than silently vanishing from the stream.
func WithBackendEventSources(sources ...obs.EventSource) GatewayOption {
	return func(g *Gateway) { g.eventSources = append(g.eventSources, sources...) }
}

// WithGatewayWindows attaches sliding-window aggregation to the gateway's
// registry — the gateway-side twin of the server's WithWindows. The
// windowed series cover the gateway's own metrics (gateway.*, pool.*, and
// the relayed privacy.invivo histogram), giving fleet-level rolling rates
// and quantiles even when backends export nothing.
func WithGatewayWindows(opt obs.WindowOptions) GatewayOption {
	return func(g *Gateway) { g.windowOpts = &opt }
}

// WithGatewaySLO attaches an objective engine over the gateway's sliding
// window, evaluated every interval (0 = the window's bucket duration) —
// the gateway-side twin of the server's WithSLO. A privacy objective here
// watches the whole fleet's relayed in-vivo 1/SNR, since every request
// the gateway relays contributes its audit note to the gateway's own
// privacy.invivo histogram. Invalid objectives surface from Serve.
func WithGatewaySLO(interval time.Duration, objectives ...obs.Objective) GatewayOption {
	return func(g *Gateway) {
		g.sloIvl = interval
		g.sloObjs = append(g.sloObjs, objectives...)
	}
}

// WithGatewayIdleTimeout closes a client connection when no request
// arrives within d (0 = wait forever).
func WithGatewayIdleTimeout(d time.Duration) GatewayOption {
	return func(g *Gateway) { g.idleTimeout = d }
}

// WithGatewayCallTimeout bounds each relayed pool call by d (0 = no bound
// beyond what the edge client's own context carries).
func WithGatewayCallTimeout(d time.Duration) GatewayOption {
	return func(g *Gateway) { g.callTimeout = d }
}

// NewGateway wraps a pool in a protocol front end. The gateway does not
// own the pool: Close stops serving but leaves the pool for its creator to
// close (or hand to another gateway).
func NewGateway(pool *Pool, opts ...GatewayOption) *Gateway {
	g := &Gateway{pool: pool, conns: map[net.Conn]struct{}{}}
	for _, o := range opts {
		o(g)
	}
	if g.reg == nil {
		g.reg = pool.Registry()
	}
	g.requests = g.reg.Counter("gateway.requests")
	g.failures = g.reg.Counter("gateway.errors")
	g.invivo = g.reg.Histogram(core.MetricInVivo, core.DefPrivacyBuckets...)
	g.invivoG = g.reg.Gauge(core.MetricInVivoLast)
	if g.windowOpts != nil || len(g.sloObjs) > 0 {
		if g.windowOpts == nil {
			g.windowOpts = &obs.WindowOptions{}
		}
		g.windows = obs.NewWindows(g.reg, *g.windowOpts)
		if len(g.sloObjs) > 0 {
			g.slo, g.sloErr = obs.NewSLO(g.windows, nil, g.sloObjs...)
		}
	}
	return g
}

// Registry returns the gateway's metrics registry.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// Windows returns the gateway's sliding-window aggregator, or nil when
// WithGatewayWindows (or WithGatewaySLO) is not configured.
func (g *Gateway) Windows() *obs.Windows { return g.windows }

// SLO returns the gateway's objective engine, or nil when WithGatewaySLO
// is not configured.
func (g *Gateway) SLO() *obs.SLO { return g.slo }

// DebugAddr returns the bound debug endpoint address, or "" when none is
// serving.
func (g *Gateway) DebugAddr() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.debug == nil {
		return ""
	}
	return g.debug.Addr
}

// Serve starts listening on addr (e.g. ":9000") and returns the bound
// address. Connections are served on background goroutines until Close.
func (g *Gateway) Serve(addr string) (string, error) {
	if g.sloErr != nil {
		return "", fmt.Errorf("splitrt: %w", g.sloErr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("splitrt: gateway listen: %w", err)
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return "", errors.New("splitrt: gateway is closed")
	}
	g.listener = ln
	startDebug := g.debugAddr != "" && g.debug == nil
	g.mu.Unlock()
	if startDebug {
		dbg := obs.Debug{
			Metrics: g.reg, Sources: g.sources,
			Windows: g.windows, Events: g.slo.Events(),
			EventSources: g.eventSources,
		}
		if len(g.auditSources) > 0 {
			dbg.Extra = map[string]http.Handler{
				"/debug/audit": audit.Handler(g.auditSources...),
			}
		}
		d, err := dbg.Serve(g.debugAddr)
		if err != nil {
			g.mu.Lock()
			g.listener = nil
			g.mu.Unlock()
			ln.Close()
			return "", fmt.Errorf("splitrt: gateway debug listen: %w", err)
		}
		g.mu.Lock()
		g.debug = d
		g.mu.Unlock()
	}
	g.mu.Lock()
	if g.stopObs == nil {
		switch {
		case g.slo != nil:
			g.stopObs = g.slo.Start(g.sloIvl)
		case g.windows != nil:
			g.stopObs = g.windows.Start()
		}
	}
	g.mu.Unlock()
	g.wg.Add(1)
	go g.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (g *Gateway) acceptLoop(ln net.Listener) {
	defer g.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.wg.Add(1)
		g.mu.Unlock()
		go g.serveConn(conn)
	}
}

// serveConn speaks the splitrt protocol: handshake, then a pipelined
// request loop — every request relays through the pool on its own
// goroutine, so one slow backend call never blocks the connection's other
// requests (the pool is a concurrent fan-out, unlike a single client's
// lockstep exchange).
func (g *Gateway) serveConn(conn net.Conn) {
	defer g.wg.Done()
	defer func() {
		conn.Close()
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var h hello
	if err := g.decodeIdle(conn, dec, &h); err != nil {
		return
	}
	split, cut := g.pool.Split(), g.pool.CutLayer()
	ack := helloAck{OK: true}
	if h.Network != split.Net.Name() || h.CutLayer != cut {
		ack = helloAck{OK: false, Err: fmt.Sprintf(
			"gateway fronts %s cut at %s, client wants %s cut at %s",
			split.Net.Name(), cut, h.Network, h.CutLayer)}
	}
	if err := enc.Encode(ack); err != nil || !ack.OK {
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		var req request
		if err := g.decodeIdle(conn, dec, &req); err != nil {
			return
		}
		reqWG.Add(1)
		go func(req request) {
			defer reqWG.Done()
			resp := g.handle(ctx, req)
			writeMu.Lock()
			err := enc.Encode(resp)
			writeMu.Unlock()
			if err != nil {
				conn.Close()
			}
		}(req)
	}
}

func (g *Gateway) decodeIdle(conn net.Conn, dec *gob.Decoder, v any) error {
	if g.idleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(g.idleTimeout)); err != nil {
			return err
		}
	}
	return dec.Decode(v)
}

// handle relays one request through the pool, translating pool-level
// failures into wire kinds: a backend's own typed error passes through
// verbatim, while fleet-level exhaustion (no backend available, pool
// closed, transport budget spent) maps to the retryable shutdown kind so
// edge clients with WithReconnect resend rather than give up.
func (g *Gateway) handle(ctx context.Context, req request) response {
	g.requests.Inc()
	recv := time.Now()
	resp := response{ID: req.ID, Trace: req.Trace}
	act, kind, msg := decodeRequestActivation(g.pool.Split(), req)
	if kind != ErrUnknown {
		g.failures.Inc()
		resp.Err, resp.Kind = msg, kind
		return resp
	}
	if g.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.callTimeout)
		defer cancel()
	}
	// Relay the edge's trace and audit attribution to whichever backend
	// serves the request, so its audit record is retrievable by the
	// trace the edge actually holds.
	logits, err := g.pool.InferActivation(withRelayMeta(ctx, req.Trace, req.Audit), act)
	if err != nil {
		g.failures.Inc()
		resp.Err, resp.Kind = err.Error(), classifyPoolErr(err)
		return resp
	}
	resp.Logits = logits
	resp.SrvRecvUnixNanos = recv.UnixNano()
	resp.SrvElapsedNs = int64(time.Since(recv))
	if n := req.Audit; n != nil && n.Sampled {
		// Every relayed request's sampled in-vivo 1/SNR lands in the
		// gateway's own privacy histogram, so a fleet-level privacy SLO
		// needs no backend scraping.
		g.invivo.Observe(n.InVivo)
		g.invivoG.Set(n.InVivo)
	}
	return resp
}

// classifyPoolErr maps a pool failure to its wire kind for the edge client.
func classifyPoolErr(err error) ErrKind {
	var rerr *RemoteError
	switch {
	case errors.As(err, &rerr):
		return rerr.Kind
	case errors.Is(err, context.DeadlineExceeded):
		return ErrTimeout
	default:
		// ErrNoBackends, ErrPoolClosed, cancellation during gateway
		// shutdown, reroute-budget exhaustion: all transient fleet states.
		return ErrShutdown
	}
}

// Close stops the listener and debug endpoint, closes live connections,
// and waits for serving goroutines. The pool is left open. Idempotent.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ln := g.listener
	g.listener = nil
	debug := g.debug
	g.debug = nil
	stopObs := g.stopObs
	g.stopObs = nil
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if stopObs != nil {
		stopObs()
	}
	debug.Close()
	for _, c := range conns {
		c.Close()
	}
	g.wg.Wait()
	return nil
}
