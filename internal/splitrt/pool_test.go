package splitrt

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"shredder/internal/core"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// fleetRig serves n identity backends for the shared "obsnet" split and
// returns the split, the servers, and their addresses.
func fleetRig(t *testing.T, n int, opts ...ServerOption) (*core.Split, []*CloudServer, []string) {
	t.Helper()
	seq := nn.NewSequential("obsnet", nn.NewReLU("cut"), nn.NewReLU("post"))
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*CloudServer, n)
	addrs := make([]string, n)
	for i := range servers {
		srv := NewCloudServer(split, "cut", opts...)
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i], addrs[i] = srv, addr
	}
	return split, servers, addrs
}

// poolInput builds a deterministic batch whose expected logits the identity
// rig computes locally.
func poolInput(seed int) (*tensor.Tensor, *tensor.Tensor) {
	x := tensor.New(1, 1, 2, 2)
	for i := range x.Data() {
		v := float64((seed+i)%7) - 3 // mixes negatives through the ReLUs
		x.Data()[i] = v
	}
	want := tensor.New(1, 1, 2, 2)
	for i, v := range x.Data() {
		if v > 0 {
			want.Data()[i] = v
		}
	}
	return x, want
}

// waitGoroutines polls until the goroutine count returns to the baseline
// (+2 slack, matching the suite's other leak checks).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: before=%d now=%d\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestPoolMatchesSingleBackendReference checks fleet routing is invisible
// to correctness: logits served through a 3-backend pool are bitwise equal
// to the local forward pass, for every balancer policy.
func TestPoolMatchesSingleBackendReference(t *testing.T) {
	split, _, addrs := fleetRig(t, 3)
	for _, policy := range []string{"roundrobin", "least-inflight", "consistent"} {
		bal, err := BalancerByName(policy)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := NewPool(split, "cut", nil, 11, addrs, WithBalancer(bal))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		for i := 0; i < 9; i++ {
			x, want := poolInput(i)
			got, err := pool.Infer(x)
			if err != nil {
				t.Fatalf("%s: infer %d: %v", policy, i, err)
			}
			if !tensor.Equal(got, want) {
				t.Fatalf("%s: infer %d: got %v want %v", policy, i, got.Data(), want.Data())
			}
		}
		st := pool.Stats()
		if st.Requests != 9 {
			t.Fatalf("%s: requests = %d, want 9", policy, st.Requests)
		}
		pool.Close()
	}
}

// TestPoolKillBackendMidLoad is the kill-a-backend e2e: three backends,
// one killed while concurrent traffic is in flight. Every call must
// complete bitwise-correct via another backend — the shutdown kind and the
// broken transport are both absorbed by rerouting — with no hangs and no
// leaked goroutines, and the dead backend must leave rotation.
func TestPoolKillBackendMidLoad(t *testing.T) {
	split, servers, addrs := fleetRig(t, 3)
	before := runtime.NumGoroutine() // baseline after the rig: its accept loops outlive the pool
	pool, err := NewPool(split, "cut", nil, 13, addrs,
		WithHealthInterval(time.Hour), // keep the victim from being readmitted mid-test
		WithEjectAfter(1))
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				x, want := poolInput(w*perWorker + i)
				got, err := pool.Infer(x)
				if err != nil {
					errs <- err
					continue
				}
				if !tensor.Equal(got, want) {
					errs <- errors.New("wrong logits after reroute")
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let traffic build before the kill
	servers[1].Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("call failed: %v", err)
	}

	st := pool.Stats()
	for _, b := range st.Backends {
		if b.Addr == addrs[1] && b.State == BackendHealthy.String() {
			t.Errorf("killed backend still in rotation: %+v", b)
		}
	}
	pool.Close()
	waitGoroutines(t, before)
}

// TestPoolHedgeCapsSlowBackend checks the hedging path end to end: with
// one backend artificially slow, the budget derived from the fast
// backend's live histogram fires duplicates, the duplicates win, the
// cancelled losers do not count as backend failures, and the slow backend
// stays in rotation.
func TestPoolHedgeCapsSlowBackend(t *testing.T) {
	seq := nn.NewSequential("obsnet", nn.NewReLU("cut"), nn.NewReLU("post"))
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	fast := NewCloudServer(split, "cut")
	fastAddr, err := fast.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fast.Close() })
	slow := NewCloudServer(split, "cut", WithLatencyInjection(60*time.Millisecond))
	slowAddr, err := slow.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slow.Close() })

	pool, err := NewPool(split, "cut", nil, 17, []string{fastAddr, slowAddr},
		WithHedging(0.9, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Warm the fast backend's histogram past the 16-observation threshold;
	// round-robin alternates, so 40 calls put ~20 on each.
	for i := 0; i < 40; i++ {
		x, want := poolInput(i)
		got, err := pool.Infer(x)
		if err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("warmup %d: wrong logits", i)
		}
	}

	// Hedged phase: every call landing on the slow backend should fire a
	// duplicate at the fast one well before the 60ms injected latency.
	hedgedStart := pool.Stats()
	var worst time.Duration
	for i := 0; i < 20; i++ {
		x, want := poolInput(100 + i)
		t0 := time.Now()
		got, err := pool.Infer(x)
		if d := time.Since(t0); d > worst {
			worst = d
		}
		if err != nil {
			t.Fatalf("hedged call %d: %v", i, err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("hedged call %d: wrong logits", i)
		}
	}
	st := pool.Stats()
	if st.Hedges == hedgedStart.Hedges {
		t.Fatal("no hedges fired against a 60ms backend")
	}
	if st.HedgeWins == hedgedStart.HedgeWins {
		t.Fatal("no hedge ever won against a 60ms backend")
	}
	for _, b := range st.Backends {
		if b.Addr == slowAddr {
			if b.State != BackendHealthy.String() {
				t.Fatalf("slow-but-correct backend left rotation: %+v", b)
			}
			if b.Errors != 0 {
				t.Fatalf("cancelled hedge losers counted as backend errors: %+v", b)
			}
		}
	}
}

// TestPoolDrainUnderLoad drains one backend while traffic is in flight:
// no call may fail or hang, the drained backend disappears from the pool,
// and no goroutine leaks.
func TestPoolDrainUnderLoad(t *testing.T) {
	split, _, addrs := fleetRig(t, 3)
	before := runtime.NumGoroutine() // baseline after the rig: its accept loops outlive the pool
	pool, err := NewPool(split, "cut", nil, 19, addrs)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 6, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				x, want := poolInput(w + i)
				got, err := pool.Infer(x)
				if err != nil {
					errs <- err
					continue
				}
				if !tensor.Equal(got, want) {
					errs <- errors.New("wrong logits during drain")
				}
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond)
	if err := pool.Drain(addrs[0]); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("call failed during drain: %v", err)
	}

	st := pool.Stats()
	if len(st.Backends) != 2 {
		t.Fatalf("drained backend still listed: %+v", st.Backends)
	}
	for _, b := range st.Backends {
		if b.Addr == addrs[0] {
			t.Fatalf("drained backend still listed: %+v", b)
		}
	}
	if err := pool.Drain(addrs[0]); err == nil {
		t.Fatal("double drain of the same backend must error")
	}
	pool.Close()
	waitGoroutines(t, before)
}

// TestPoolHealthLoopReadmits ejects a backend by killing its server, then
// brings a server back on the same address and checks the health loop
// walks it through half-open back to healthy.
func TestPoolHealthLoopReadmits(t *testing.T) {
	split, servers, addrs := fleetRig(t, 2)
	pool, err := NewPool(split, "cut", nil, 23, addrs,
		WithEjectAfter(1), WithHealthInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	servers[0].Close()
	// Drive traffic until the dead backend is ejected (its turn in the
	// rotation fails and reroutes).
	deadline := time.Now().Add(5 * time.Second)
	for {
		x, _ := poolInput(1)
		if _, err := pool.Infer(x); err != nil {
			t.Fatalf("infer while backend down: %v", err)
		}
		ejected := false
		for _, b := range pool.Stats().Backends {
			if b.Addr == addrs[0] && b.State == BackendEjected.String() {
				ejected = true
			}
		}
		if ejected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never ejected: %+v", pool.Stats().Backends)
		}
	}

	// Resurrect the backend on its old address.
	srv := NewCloudServer(split, "cut")
	if _, err := srv.Serve(addrs[0]); err != nil {
		t.Fatalf("rebind %s: %v", addrs[0], err)
	}
	t.Cleanup(func() { srv.Close() })

	// The health loop should redial it into half-open, and traffic should
	// then readmit it to healthy.
	deadline = time.Now().Add(5 * time.Second)
	for {
		x, want := poolInput(2)
		got, err := pool.Infer(x)
		if err != nil {
			t.Fatalf("infer during readmission: %v", err)
		}
		if !tensor.Equal(got, want) {
			t.Fatal("wrong logits during readmission")
		}
		healthy := false
		for _, b := range pool.Stats().Backends {
			if b.Addr == addrs[0] && b.State == BackendHealthy.String() {
				healthy = true
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never readmitted: %+v", pool.Stats().Backends)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pool.Stats().Readmits == 0 {
		t.Fatal("readmission not counted")
	}
}

// TestPoolClosedAndExhausted pins the terminal error surfaces: a closed
// pool refuses with ErrPoolClosed, and a pool whose every backend is gone
// reports ErrNoBackends once the eject threshold is crossed.
func TestPoolClosedAndExhausted(t *testing.T) {
	split, servers, addrs := fleetRig(t, 2)
	pool, err := NewPool(split, "cut", nil, 29, addrs,
		WithEjectAfter(1), WithHealthInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range servers {
		s.Close()
	}
	x, _ := poolInput(3)
	_, err = pool.Infer(x)
	if err == nil || !errors.Is(err, ErrNoBackends) {
		t.Fatalf("want ErrNoBackends with every backend dead, got %v", err)
	}
	pool.Close()
	if _, err := pool.Infer(x); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed after Close, got %v", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPoolAppliesNoise checks the pool's privacy boundary: with a noise
// collection attached, what the pool sends is not the raw activation (the
// logits differ from the clean forward pass by the injected noise).
func TestPoolAppliesNoise(t *testing.T) {
	split, _, addrs := fleetRig(t, 2)
	noise := tensor.New(1, 2, 2)
	for i := range noise.Data() {
		noise.Data()[i] = 100 // unmissable offset
	}
	col := &core.Collection{Shape: []int{1, 2, 2}, Members: []*tensor.Tensor{noise}, InVivo: []float64{0}}
	pool, err := NewPool(split, "cut", col, 31, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	x, clean := poolInput(5)
	got, err := pool.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Equal(got, clean) {
		t.Fatal("pool served clean logits despite a noise collection")
	}
}

// TestBalancerPolicies unit-tests the picking rules without a live fleet.
func TestBalancerPolicies(t *testing.T) {
	cands := []BackendView{{Addr: "a:1"}, {Addr: "b:1"}, {Addr: "c:1"}}

	rr := NewRoundRobin()
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		seen[rr.Pick("k", cands)]++
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 3 {
			t.Fatalf("round-robin uneven: %v", seen)
		}
	}

	li := NewLeastInflight()
	loaded := []BackendView{{Addr: "a:1", Inflight: 5}, {Addr: "b:1", Inflight: 0}, {Addr: "c:1", Inflight: 2}}
	for i := 0; i < 5; i++ {
		if got := li.Pick("k", loaded); got != 1 {
			t.Fatalf("least-inflight picked %d, want 1", got)
		}
	}

	cons := NewConsistent()
	first := cons.Pick("net/cut", cands)
	for i := 0; i < 10; i++ {
		if got := cons.Pick("net/cut", cands); got != first {
			t.Fatal("consistent balancer is not consistent")
		}
	}
	// Removing a non-winner must not move the choice for this key.
	reduced := make([]BackendView, 0, 2)
	removed := (first + 1) % 3
	for i, c := range cands {
		if i != removed {
			reduced = append(reduced, c)
		}
	}
	winner := cands[first].Addr
	if got := cons.Pick("net/cut", reduced); reduced[got].Addr != winner {
		t.Fatalf("consistent choice moved when an unrelated backend left: %s -> %s",
			winner, reduced[got].Addr)
	}

	if _, err := BalancerByName("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown balancer name must error, got %v", err)
	}
}

// TestGatewayEndToEnd serves a pool behind a Gateway and talks to it with
// a stock EdgeClient: the protocol must be indistinguishable from a single
// CloudServer, wrong-model handshakes must be refused, and the merged
// debug endpoint must carry both gateway and pool series.
func TestGatewayEndToEnd(t *testing.T) {
	split, _, addrs := fleetRig(t, 2)
	before := runtime.NumGoroutine() // baseline after the rig: its accept loops outlive the pool
	pool, err := NewPool(split, "cut", nil, 37, addrs)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(pool, WithGatewayDebugServer("127.0.0.1:0"))
	gwAddr, err := gw.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client, err := Dial(gwAddr, split, "cut", nil, 41)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x, want := poolInput(i)
		got, err := client.Infer(x)
		if err != nil {
			t.Fatalf("infer via gateway: %v", err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("gateway altered logits: got %v want %v", got.Data(), want.Data())
		}
	}
	client.Close()

	// Wrong-model handshake is refused with the same shape of error a
	// CloudServer produces.
	other := nn.NewSequential("othernet", nn.NewReLU("cut"), nn.NewReLU("post"))
	otherSplit, err := core.NewSplit(other, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(gwAddr, otherSplit, "cut", nil, 43); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("gateway accepted a mismatched model: %v", err)
	}

	if gw.Registry().Counter("gateway.requests").Value() < 10 {
		t.Fatalf("gateway requests not counted: %d", gw.Registry().Counter("gateway.requests").Value())
	}
	if gw.DebugAddr() == "" {
		t.Fatal("gateway debug endpoint not serving")
	}

	gw.Close()
	pool.Close()
	waitGoroutines(t, before)
}

// TestGatewayMapsPoolShutdown checks fleet-level exhaustion surfaces to
// edge clients as the retryable shutdown kind, so their reconnect logic
// treats the gateway like any restarting server.
func TestGatewayMapsPoolShutdown(t *testing.T) {
	split, _, addrs := fleetRig(t, 1)
	pool, err := NewPool(split, "cut", nil, 47, addrs)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(pool)
	gwAddr, err := gw.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	client, err := Dial(gwAddr, split, "cut", nil, 53)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	pool.Close()

	x, _ := poolInput(0)
	_, err = client.InferContext(context.Background(), x)
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("want a typed remote error, got %v", err)
	}
	if rerr.Kind != ErrShutdown || !rerr.Retryable() {
		t.Fatalf("pool shutdown must map to the retryable shutdown kind, got %+v", rerr)
	}
}
