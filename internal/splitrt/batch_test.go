package splitrt

// Suite for cross-connection micro-batched serving: bitwise equivalence of
// batched vs per-sample serving at several MaxBatch/MaxDelay settings,
// randomized concurrent-submit stress (run under -race), context
// cancellation against a slow batch, pipelining several requests on one
// connection, typed wire-error kinds and their retry behaviour, and a
// goroutine-leak check around server Close with traffic in flight.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shredder/internal/core"
	"shredder/internal/nn"
	"shredder/internal/sched"
	"shredder/internal/tensor"
)

// TestBatchedServingBitwiseIdentical is the core equivalence guarantee:
// for every MaxBatch/MaxDelay combination, logits served through the
// batcher are bitwise equal (tensor.Equal, not AllClose) to per-sample
// serving and to the local full forward. Stacking is a pure copy and every
// layer treats batch members independently on the inference path, so any
// deviation here means the scheduler demultiplexed the wrong rows.
func TestBatchedServingBitwiseIdentical(t *testing.T) {
	split, pre, cutLayer, plainAddr := rig(t)
	for _, cfg := range []sched.Options{
		{MaxBatch: 1, MaxDelay: time.Millisecond},
		{MaxBatch: 3, MaxDelay: time.Millisecond},
		{MaxBatch: 16, MaxDelay: 5 * time.Millisecond},
	} {
		t.Run(fmt.Sprintf("maxbatch=%d", cfg.MaxBatch), func(t *testing.T) {
			srv := NewCloudServer(split, cutLayer, WithBatching(cfg))
			addr, err := srv.Serve("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			const clients = 4
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					batched, err := Dial(addr, split, cutLayer, nil, seed)
					if err != nil {
						errs <- err
						return
					}
					defer batched.Close()
					plain, err := Dial(plainAddr, split, cutLayer, nil, seed+100)
					if err != nil {
						errs <- err
						return
					}
					defer plain.Close()
					for i, b := range pre.Test.Batches(3 + int(seed)) {
						if i >= 3 {
							break
						}
						got, err := batched.Infer(b.Images)
						if err != nil {
							errs <- err
							return
						}
						want, err := plain.Infer(b.Images)
						if err != nil {
							errs <- err
							return
						}
						if !tensor.Equal(got, want) {
							errs <- fmt.Errorf("client %d batch %d: batched logits differ bitwise from per-sample serving", seed, i)
							return
						}
						if !tensor.Equal(got, split.Forward(b.Images)) {
							errs <- fmt.Errorf("client %d batch %d: batched logits differ bitwise from local forward", seed, i)
							return
						}
					}
				}(int64(w))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if stats, ok := srv.BatchStats(); !ok || stats.Batches == 0 {
				t.Fatalf("batching server recorded no batches: %+v ok=%v", stats, ok)
			}
		})
	}
}

// TestBatchedConcurrentStress hammers a batching server from many
// connections with randomized batch sizes; every caller must get exactly
// the logits for its own samples. Under -race this also covers the
// scheduler/server interplay (pipelined handlers, shared batcher, write
// mutex).
func TestBatchedConcurrentStress(t *testing.T) {
	split, pre, cutLayer, _ := rig(t)
	srv := NewCloudServer(split, cutLayer, WithBatching(sched.Options{MaxBatch: 6, MaxDelay: time.Millisecond}))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	all := pre.Test.Batches(1) // single-sample batches to slice from
	const clients = 8
	const reqs = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client, err := Dial(addr, split, cutLayer, nil, seed)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < reqs; i++ {
				// A random sample, as a batch of 1-3 copies of distinct
				// test images.
				n := 1 + rng.Intn(3)
				shape := append([]int{n}, all[0].Images.Shape()[1:]...)
				x := tensor.New(shape...)
				for j := 0; j < n; j++ {
					src := all[rng.Intn(len(all))].Images
					copy(x.Slice(j).Data(), src.Data())
				}
				got, err := client.Infer(x)
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", seed, i, err)
					return
				}
				if !tensor.Equal(got, split.Forward(x)) {
					errs <- fmt.Errorf("client %d req %d: wrong logits under batching — demux crossed callers", seed, i)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats, _ := srv.BatchStats()
	if stats.Batches == 0 || stats.Weight < stats.Batches {
		t.Fatalf("implausible batch stats: %+v", stats)
	}
	t.Logf("batch stats: %+v", stats)
}

// gateLayer is an identity layer whose forward pass blocks until the gate
// channel is closed — a stand-in for a slow batch in flight.
type gateLayer struct {
	name string
	gate chan struct{}
}

func (l *gateLayer) Name() string { return l.name }
func (l *gateLayer) ForwardT(tape *nn.Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	<-l.gate
	return x
}
func (l *gateLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.ForwardT(nil, x, train)
}
func (l *gateLayer) BackwardT(tape *nn.Tape, grad *tensor.Tensor) *tensor.Tensor { return grad }
func (l *gateLayer) Backward(grad *tensor.Tensor) *tensor.Tensor                 { return grad }
func (l *gateLayer) Params() []*nn.Param                                         { return nil }
func (l *gateLayer) OutShape(in []int) []int                                     { return in }

// gateRig serves a tiny identity net (logits == activation) whose remote
// part blocks until openGate is called (idempotent; also invoked at
// cleanup so background flights never outlive the test).
func gateRig(t *testing.T, opts ...ServerOption) (split *core.Split, addr string, openGate func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	openGate = func() { once.Do(func() { close(gate) }) }
	seq := nn.NewSequential("gatenet", nn.NewReLU("cut"), &gateLayer{name: "gate", gate: gate})
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, "cut", opts...)
	a, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { openGate(); srv.Close() })
	return split, a, openGate
}

// TestCancelMidBatchDoesNotWedgeClientOrServer starts a batch that blocks
// in flight, cancels a second caller stuck behind it, and checks the
// cancelled caller returns at its deadline while the server and the other
// caller finish normally once the gate opens.
func TestCancelMidBatchDoesNotWedgeClientOrServer(t *testing.T) {
	split, addr, openGate := gateRig(t, WithBatching(sched.Options{MaxBatch: 8, MaxDelay: time.Minute}))

	a, err := Dial(addr, split, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	x := tensor.New(1, 1, 2, 2).Fill(2)

	first := make(chan error, 1)
	go func() {
		got, err := a.Infer(x)
		if err == nil && !tensor.Equal(got, x) {
			err = errors.New("identity net returned wrong logits")
		}
		first <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the first request occupy the flight

	b, err := Dial(addr, split, "cut", nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := b.InferContext(ctx, x); err == nil {
		t.Fatal("caller behind a blocked batch should fail at its deadline")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline did not bound the call: %v", elapsed)
	}

	openGate()
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("surviving caller failed after a peer cancelled: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("surviving caller never completed — cancellation poisoned the batch")
	}
}

// TestPipelinedRequestsOnOneConnection speaks the raw protocol: several
// requests are written back-to-back on a single connection before any
// response is read, and the (possibly out-of-order) responses are matched
// by ID. This is what the per-request IDs exist for.
func TestPipelinedRequestsOnOneConnection(t *testing.T) {
	_, addr, openGate := gateRig(t, WithBatching(sched.Options{MaxBatch: 4, MaxDelay: time.Millisecond}))
	openGate() // identity net, no blocking needed

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(hello{Network: "gatenet", CutLayer: "cut"}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil || !ack.OK {
		t.Fatalf("handshake failed: %v %+v", err, ack)
	}

	const n = 6
	for id := uint64(1); id <= n; id++ {
		act := tensor.New(1, 1, 2, 2).Fill(float64(id))
		if err := enc.Encode(request{ID: id, Activation: act}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err != "" {
			t.Fatalf("request %d failed: %s", resp.ID, resp.Err)
		}
		if seen[resp.ID] {
			t.Fatalf("duplicate response for id %d", resp.ID)
		}
		seen[resp.ID] = true
		// Identity remote part: logits echo the activation, so the ID
		// must match the payload — the proof the demux didn't cross wires.
		want := tensor.New(1, 1, 2, 2).Fill(float64(resp.ID))
		if !tensor.Equal(resp.Logits, want) {
			t.Fatalf("response %d carries the wrong payload: %v", resp.ID, resp.Logits)
		}
	}
}

// TestBadRequestDoesNotPoisonBatch interleaves a malformed request with
// good ones on a batching server: the bad one gets ErrBadRequest, the good
// ones their logits, and the connection survives.
func TestBadRequestDoesNotPoisonBatch(t *testing.T) {
	split, addr, openGate := gateRig(t, WithBatching(sched.Options{MaxBatch: 4, MaxDelay: time.Millisecond}))
	openGate()
	client, err := Dial(addr, split, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.enc.Encode(request{ID: 77, Activation: tensor.New(1, 3, 3)}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := client.dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != ErrBadRequest || resp.Err == "" {
		t.Fatalf("malformed request not classified bad-request: %+v", resp)
	}
	x := tensor.New(1, 1, 2, 2).Fill(3)
	got, err := client.Infer(x)
	if err != nil {
		t.Fatalf("connection did not survive a bad request: %v", err)
	}
	if !tensor.Equal(got, x) {
		t.Fatal("wrong logits after a rejected request")
	}
}

// TestTypedErrorKinds checks the server classifies failures and the client
// exposes them as RemoteError with the right retryability.
func TestTypedErrorKinds(t *testing.T) {
	// Handler timeout → ErrTimeout, retryable.
	split, addr, _ := gateRig(t, WithHandlerTimeout(50*time.Millisecond),
		WithBatching(sched.Options{MaxBatch: 4, MaxDelay: time.Millisecond}))
	client, err := Dial(addr, split, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x := tensor.New(1, 1, 2, 2).Fill(1)
	_, err = client.Infer(x) // gate still closed: the batch stalls past the timeout
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if rerr.Kind != ErrTimeout || !rerr.Retryable() {
		t.Fatalf("handler timeout misclassified: %+v", rerr)
	}

	// Bad shape → ErrBadRequest, not retryable.
	_, err = client.Infer(tensor.New(1, 9, 9).Reshape(1, 1, 9, 9).Fill(1))
	if !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if rerr.Kind != ErrBadRequest || rerr.Retryable() {
		t.Fatalf("shape mismatch misclassified: %+v", rerr)
	}
}

// fakeKindServer speaks the wire protocol and answers each request with a
// scripted response, counting requests — for testing the client's
// kind-based retry policy without a real network of failures.
func fakeKindServer(t *testing.T, script func(n int, req request) response) (addr string, count *int64, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
				var h hello
				if dec.Decode(&h) != nil {
					return
				}
				if enc.Encode(helloAck{OK: true}) != nil {
					return
				}
				for {
					var req request
					if dec.Decode(&req) != nil {
						return
					}
					k := atomic.AddInt64(&n, 1)
					if enc.Encode(script(int(k), req)) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &n, func() { ln.Close() }
}

// TestClientRetriesOnlyRetryableKinds: a first-response timeout is retried
// and succeeds; a bad-request error is surfaced immediately without a
// second request.
func TestClientRetriesOnlyRetryableKinds(t *testing.T) {
	seq := nn.NewSequential("gatenet", nn.NewReLU("cut"), &trapLayer{name: "trap"})
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 1, 2, 2).Fill(1)

	addr, count, stop := fakeKindServer(t, func(n int, req request) response {
		if n == 1 {
			return response{ID: req.ID, Err: "inference exceeded handler timeout", Kind: ErrTimeout}
		}
		return response{ID: req.ID, Logits: req.Activation}
	})
	defer stop()
	client, err := Dial(addr, split, "cut", nil, 1, WithReconnect(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	got, err := client.Infer(x)
	if err != nil {
		t.Fatalf("retryable timeout was not retried: %v", err)
	}
	if !tensor.Equal(got, x) {
		t.Fatal("retried request returned wrong logits")
	}
	if c := atomic.LoadInt64(count); c != 2 {
		t.Fatalf("expected exactly 2 requests (1 failure + 1 retry), server saw %d", c)
	}

	addr2, count2, stop2 := fakeKindServer(t, func(n int, req request) response {
		return response{ID: req.ID, Err: "activation shape mismatch", Kind: ErrBadRequest}
	})
	defer stop2()
	client2, err := Dial(addr2, split, "cut", nil, 2, WithReconnect(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if _, err := client2.Infer(x); err == nil {
		t.Fatal("bad-request error should surface to the caller")
	}
	if c := atomic.LoadInt64(count2); c != 1 {
		t.Fatalf("non-retryable kind was retried: server saw %d requests", c)
	}

	// A plain client (no WithReconnect) must not retry even retryable kinds.
	addr3, count3, stop3 := fakeKindServer(t, func(n int, req request) response {
		return response{ID: req.ID, Err: "inference exceeded handler timeout", Kind: ErrTimeout}
	})
	defer stop3()
	client3, err := Dial(addr3, split, "cut", nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client3.Close()
	if _, err := client3.Infer(x); err == nil {
		t.Fatal("timeout should surface when retries are disabled")
	}
	if c := atomic.LoadInt64(count3); c != 1 {
		t.Fatalf("client without WithReconnect retried: server saw %d requests", c)
	}
}

// TestBatchedServerCloseDrainsWithoutLeaks closes a batching server while
// traffic is in flight: every outstanding request must resolve (logits, a
// typed shutdown error, or a transport error — never a hang), and the
// server-side goroutines must all exit. This is the regression test for
// the shutdown race where Close could strand batcher slots forever.
func TestBatchedServerCloseDrainsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	seq := nn.NewSequential("gatenet", nn.NewReLU("cut"), &trapLayer{name: "trap"})
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, "cut", WithBatching(sched.Options{MaxBatch: 4, MaxDelay: time.Millisecond}))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	var wg sync.WaitGroup
	stopTraffic := make(chan struct{})
	x := tensor.New(1, 1, 2, 2).Fill(1)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := Dial(addr, split, "cut", nil, seed)
			if err != nil {
				return // server may already be closing
			}
			defer client.Close()
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				got, err := client.Infer(x)
				if err != nil {
					// Acceptable outcomes during shutdown: typed shutdown
					// error or a transport failure. A wrong result is not.
					return
				}
				if !tensor.Equal(got, x) {
					t.Error("wrong logits during shutdown drain")
					return
				}
			}
		}(int64(w))
	}
	time.Sleep(50 * time.Millisecond) // let traffic build up
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stopTraffic)
	wg.Wait()

	// All server goroutines (accept loop, conn handlers, request
	// handlers, batcher flights) must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked after Close: before=%d now=%d\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
