package splitrt

// Suite for the observability layer at the wire: trace IDs echoed through
// the gob protocol (and backward compatibility with pre-trace peers),
// per-error-kind counters on both ends of a failing request, race-free
// Stats polling during traffic and forced redials, and an end-to-end pass
// over the live debug HTTP endpoint.

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"shredder/internal/core"
	"shredder/internal/nn"
	"shredder/internal/obs"
	"shredder/internal/sched"
	"shredder/internal/tensor"
)

// identityRig serves a tiny identity net (logits == activation for
// positive inputs) and returns the server so tests can reach its debug
// endpoint and registry.
func identityRig(t *testing.T, opts ...ServerOption) (*core.Split, *CloudServer, string) {
	t.Helper()
	seq := nn.NewSequential("obsnet", nn.NewReLU("cut"), nn.NewReLU("post"))
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(split, "cut", opts...)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return split, srv, addr
}

// TestTraceIDEchoedOnWire speaks raw gob to a real server and checks the
// request's trace ID comes back verbatim on the response.
func TestTraceIDEchoedOnWire(t *testing.T) {
	_, _, addr := identityRig(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(hello{Network: "obsnet", CutLayer: "cut"}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil || !ack.OK {
		t.Fatalf("handshake failed: %v %+v", err, ack)
	}
	const trace = 0xdeadbeefcafe
	req := request{ID: 5, Trace: trace, Activation: tensor.New(1, 1, 2, 2).Fill(1)}
	if err := enc.Encode(req); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || resp.Trace != trace {
		t.Fatalf("trace not echoed: got id=%d trace=%#x, want id=5 trace=%#x", resp.ID, resp.Trace, uint64(trace))
	}
	if resp.Err != "" || resp.Logits == nil {
		t.Fatalf("traced request failed: %+v", resp)
	}
}

// legacyRequest/legacyResponse mirror the pre-trace wire structs (no Trace
// field). Gob matches fields by name, so these stand in for an old peer.
type legacyRequest struct {
	ID         uint64
	Activation *tensor.Tensor
	Quant      *quantPayload
}

type legacyResponse struct {
	ID     uint64
	Logits *tensor.Tensor
	Err    string
	Kind   ErrKind
}

// TestTraceFieldGobBackwardCompatible pins both directions of wire
// compatibility: an old-format request (no Trace field) still decodes into
// the current struct with Trace == 0, an old-format response likewise, and
// a new traced request decodes cleanly into an old struct (gob skips the
// unknown field).
func TestTraceFieldGobBackwardCompatible(t *testing.T) {
	act := tensor.New(1, 1, 2, 2).Fill(2)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacyRequest{ID: 7, Activation: act}); err != nil {
		t.Fatal(err)
	}
	var req request
	if err := gob.NewDecoder(&buf).Decode(&req); err != nil {
		t.Fatalf("old-format request no longer decodes: %v", err)
	}
	if req.ID != 7 || req.Trace != 0 || req.Activation == nil {
		t.Fatalf("old-format request decoded wrong: %+v", req)
	}

	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(legacyResponse{ID: 8, Logits: act, Kind: ErrTimeout, Err: "late"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := gob.NewDecoder(&buf).Decode(&resp); err != nil {
		t.Fatalf("old-format response no longer decodes: %v", err)
	}
	if resp.ID != 8 || resp.Trace != 0 || resp.Kind != ErrTimeout {
		t.Fatalf("old-format response decoded wrong: %+v", resp)
	}

	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(request{ID: 9, Trace: 42, Activation: act}); err != nil {
		t.Fatal(err)
	}
	var old legacyRequest
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("traced request does not decode on an old peer: %v", err)
	}
	if old.ID != 9 || old.Activation == nil {
		t.Fatalf("traced request decoded wrong on old peer: %+v", old)
	}
}

// TestClientErrorKindCounters scripts one failure of every wire kind and
// checks exactly the matching client.errors.<kind> counter increments.
func TestClientErrorKindCounters(t *testing.T) {
	seq := nn.NewSequential("obsnet", nn.NewReLU("cut"), nn.NewReLU("post"))
	split, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 1, 2, 2).Fill(1)
	kinds := []ErrKind{ErrUnknown, ErrBadRequest, ErrTimeout, ErrShutdown, ErrInternal}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			addr, _, stop := fakeKindServer(t, func(n int, req request) response {
				return response{ID: req.ID, Err: "scripted failure", Kind: kind}
			})
			defer stop()
			reg := obs.NewRegistry()
			// No WithReconnect: even retryable kinds surface after one try,
			// so each counter sees exactly one increment.
			client, err := Dial(addr, split, "cut", nil, 1, WithMetrics(reg))
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			var rerr *RemoteError
			if _, err := client.Infer(x); !errors.As(err, &rerr) || rerr.Kind != kind {
				t.Fatalf("want RemoteError kind %s, got %v", kind, err)
			}
			snap := reg.Snapshot()
			for _, k := range kinds {
				want := int64(0)
				if k == kind {
					want = 1
				}
				if got := snap.Counters["client.errors."+k.String()]; got != want {
					t.Fatalf("client.errors.%s = %d, want %d (snapshot %+v)", k, got, want, snap.Counters)
				}
			}
			if snap.Counters["client.requests"] != 1 || snap.Counters["client.errors.transport"] != 0 {
				t.Fatalf("unexpected request/transport counters: %+v", snap.Counters)
			}
		})
	}
}

// TestServerErrorKindCounters drives one failure of each kind through a
// real server with observability attached and checks the server-side
// counters: bad-request and internal via a trap server, timeout via a
// gated server, shutdown via a closed batcher.
func TestServerErrorKindCounters(t *testing.T) {
	reg := obs.NewRegistry()
	split, cutLayer, addr := trapRig(t, WithObservability(reg, nil))
	client, err := Dial(addr, split, cutLayer, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Infer(tensor.New(1, 1, 2, 2).Fill(1)); err != nil {
		t.Fatalf("benign request failed: %v", err)
	}
	if _, err := client.Infer(tensor.New(1, 1, 3, 3).Fill(1)); err == nil {
		t.Fatal("bad shape accepted")
	}
	if _, err := client.Infer(tensor.New(1, 1, 2, 2).Fill(trapValue)); err == nil {
		t.Fatal("trap value did not fail")
	}
	snap := reg.Snapshot()
	if snap.Counters["server.requests"] != 3 || snap.Counters["server.responses.ok"] != 1 {
		t.Fatalf("request/ok counters: %+v", snap.Counters)
	}
	if snap.Counters["server.errors.bad-request"] != 1 || snap.Counters["server.errors.internal"] != 1 {
		t.Fatalf("error-kind counters: %+v", snap.Counters)
	}
	if h := snap.Histograms["server.latency_seconds"]; h.Count != 3 {
		t.Fatalf("latency histogram saw %d requests, want 3", h.Count)
	}

	regT := obs.NewRegistry()
	gSplit, gAddr, openGate := gateRig(t, WithHandlerTimeout(30*time.Millisecond), WithObservability(regT, nil))
	gClient, err := Dial(gAddr, gSplit, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer gClient.Close()
	var rerr *RemoteError
	if _, err := gClient.Infer(tensor.New(1, 1, 2, 2).Fill(1)); !errors.As(err, &rerr) || rerr.Kind != ErrTimeout {
		t.Fatalf("want timeout, got %v", err)
	}
	openGate()
	if got := regT.Snapshot().Counters["server.errors.timeout"]; got != 1 {
		t.Fatalf("server.errors.timeout = %d, want 1", got)
	}

	regS := obs.NewRegistry()
	seq := nn.NewSequential("obsnet", nn.NewReLU("cut"), nn.NewReLU("post"))
	sSplit, err := core.NewSplit(seq, "cut", []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer(sSplit, "cut",
		WithBatching(sched.Options{MaxBatch: 2, MaxDelay: time.Millisecond}),
		WithObservability(regS, nil))
	srv.Close() // batcher now refuses submissions with the shutdown kind
	resp := srv.handle(context.Background(), request{ID: 1, Activation: tensor.New(1, 1, 2, 2).Fill(1)})
	if resp.Kind != ErrShutdown {
		t.Fatalf("closed batcher answered kind %s: %+v", resp.Kind, resp)
	}
	if got := regS.Snapshot().Counters["server.errors.shutdown"]; got != 1 {
		t.Fatalf("server.errors.shutdown = %d, want 1", got)
	}
}

// TestStatsPollingDuringTrafficAndRedials is the regression test for the
// documented Stats read race: a poller hammers Stats while several
// goroutines run InferContext and the transport is severed repeatedly to
// force redials. Run under -race this fails loudly if any Stats field ever
// shares a non-atomic word with the hot path.
func TestStatsPollingDuringTrafficAndRedials(t *testing.T) {
	split, _, addr := identityRig(t)
	client, err := Dial(addr, split, "cut", nil, 1, WithReconnect(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x := tensor.New(1, 1, 2, 2).Fill(1)

	done := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = client.Stats()
			}
		}
	}()

	severConn := func() {
		client.mu.Lock()
		if client.conn != nil {
			client.conn.Conn.Close()
		}
		client.mu.Unlock()
	}
	var severWG sync.WaitGroup
	severWG.Add(1)
	go func() {
		defer severWG.Done()
		for i := 0; i < 10; i++ {
			select {
			case <-done:
				return
			case <-time.After(500 * time.Microsecond):
				severConn()
			}
		}
	}()

	const workers, per = 3, 20
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := client.Infer(x); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(done)
	pollWG.Wait()
	severWG.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Deterministic redial: sever between calls, then one more request must
	// transparently reconnect and count it.
	severConn()
	if _, err := client.Infer(x); err != nil {
		t.Fatalf("post-sever request failed: %v", err)
	}
	s := client.Stats()
	if s.Requests != workers*per+1 {
		t.Fatalf("Stats.Requests = %d, want %d", s.Requests, workers*per+1)
	}
	if s.Redials < 1 || s.BytesSent == 0 || s.BytesReceived == 0 {
		t.Fatalf("stats missed traffic: %+v", s)
	}
}

// TestDebugEndpointEndToEnd serves a batching server with a live debug
// endpoint, pushes traced traffic (and one failure) through a real client,
// and checks /debug/metrics carries latency quantiles, batch occupancy and
// per-error-kind counters, and /debug/spans a traced request with
// queue/batch/compute sub-timings.
func TestDebugEndpointEndToEnd(t *testing.T) {
	split, srv, addr := identityRig(t,
		WithBatching(sched.Options{MaxBatch: 4, MaxDelay: time.Millisecond}),
		WithDebugServer("127.0.0.1:0"))
	dbg := srv.DebugAddr()
	if dbg == "" {
		t.Fatal("debug endpoint not started by Serve")
	}
	if srv.Metrics() == nil || srv.Spans() == nil {
		t.Fatal("WithDebugServer should imply observability")
	}

	client, err := Dial(addr, split, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x := tensor.New(1, 1, 2, 2).Fill(1)
	for i := 0; i < 5; i++ {
		if _, err := client.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Infer(tensor.New(1, 1, 3, 3).Fill(1)); err == nil {
		t.Fatal("bad shape accepted")
	}

	get := func(path string, v any) {
		t.Helper()
		resp, err := http.Get("http://" + dbg + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	var snap obs.Snapshot
	get("/debug/metrics", &snap)
	if snap.Counters["server.requests"] != 6 || snap.Counters["server.responses.ok"] != 5 {
		t.Fatalf("request counters: %+v", snap.Counters)
	}
	if snap.Counters["server.errors.bad-request"] != 1 {
		t.Fatalf("bad-request counter: %+v", snap.Counters)
	}
	lat := snap.Histograms["server.latency_seconds"]
	if lat.Count != 6 || !(lat.P50 > 0) || !(lat.P99 >= lat.P50) {
		t.Fatalf("latency quantiles: %+v", lat)
	}
	if occ := snap.Gauges["server.batch.occupancy"]; occ < 1 {
		t.Fatalf("batch occupancy gauge %v, want >= 1", occ)
	}
	if snap.Counters["sched.batches"] < 1 {
		t.Fatalf("scheduler metrics missing from shared registry: %+v", snap.Counters)
	}

	var spans []obs.Span
	get("/debug/spans", &spans)
	if len(spans) != 6 {
		t.Fatalf("span ring holds %d spans, want 6", len(spans))
	}
	var traced *obs.Span
	for i := range spans {
		if spans[i].Err == "" {
			traced = &spans[i]
			break
		}
	}
	if traced == nil {
		t.Fatal("no successful span recorded")
	}
	if traced.Trace == 0 {
		t.Fatal("span lost its wire-propagated trace ID")
	}
	if len(traced.Stages) != 3 || traced.StageDur("compute") <= 0 {
		t.Fatalf("span stages do not reconstruct the timeline: %+v", traced.Stages)
	}
	for _, name := range []string{"queue", "batch", "compute"} {
		found := false
		for _, st := range traced.Stages {
			if st.Name == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("span missing %q stage: %+v", name, traced.Stages)
		}
	}
	if traced.Attrs["batch_size"] < 1 {
		t.Fatalf("span attrs: %+v", traced.Attrs)
	}
}
