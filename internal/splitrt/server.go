package splitrt

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"shredder/internal/core"
	"shredder/internal/quantize"
	"shredder/internal/tensor"
)

// CloudServer hosts the remote part R of a split network. It models the
// cloud side of the paper's deployment: it receives only noisy activations
// and returns logits, never seeing raw inputs.
//
// Concurrency model: inference runs on core.Split.RemoteInfer, the
// reentrant forward path that keeps no per-layer state, so every
// connection serves requests truly in parallel — there is no inference
// lock. The server's mutex guards only the connection registry and
// shutdown flag and is never held across an inference or a network I/O
// call.
type CloudServer struct {
	split    *core.Split
	cutLayer string

	idleTimeout    time.Duration
	writeTimeout   time.Duration
	handlerTimeout time.Duration
	serialized     bool
	serialMu       sync.Mutex // used only when serialized (legacy mode)

	mu       sync.Mutex // guards listener, conns, closed — never held across inference
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// ServerOption configures a CloudServer.
type ServerOption func(*CloudServer)

// WithIdleTimeout closes a connection when no request arrives within d
// (0 = wait forever). It bounds how long a stalled or dead peer can hold a
// connection slot.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *CloudServer) { s.idleTimeout = d }
}

// WithWriteTimeout bounds each response write by d (0 = no bound), so a
// client that stops draining its socket cannot wedge its serving goroutine.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *CloudServer) { s.writeTimeout = d }
}

// WithHandlerTimeout bounds each remote forward pass by d (0 = no bound);
// a request exceeding it gets an error response instead of stalling the
// connection.
func WithHandlerTimeout(d time.Duration) ServerOption {
	return func(s *CloudServer) { s.handlerTimeout = d }
}

// WithSerializedInference restores the pre-concurrency behaviour of one
// global inference at a time. It exists so benchmarks can measure what the
// global lock used to cost; production servers should never set it.
func WithSerializedInference() ServerOption {
	return func(s *CloudServer) { s.serialized = true }
}

// NewCloudServer creates a server for the given split. cutLayer is the
// layer name clients must declare in their handshake.
func NewCloudServer(split *core.Split, cutLayer string, opts ...ServerOption) *CloudServer {
	s := &CloudServer{split: split, cutLayer: cutLayer, conns: map[net.Conn]struct{}{}}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Connections are served on background goroutines until
// Close.
func (s *CloudServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("splitrt: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("splitrt: server is closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *CloudServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Register under the lock BEFORE serving so Close, which flips
		// closed and then snapshots conns under the same lock, either sees
		// this conn (and closes it) or has already flipped closed (and we
		// drop it here). No conn can slip in after Close's snapshot.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *CloudServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var h hello
	if err := s.decodeWithIdleDeadline(conn, dec, &h); err != nil {
		return
	}
	ack := helloAck{OK: true}
	if h.Network != s.split.Net.Name() || h.CutLayer != s.cutLayer {
		ack = helloAck{OK: false, Err: fmt.Sprintf(
			"server hosts %s cut at %s, client wants %s cut at %s",
			s.split.Net.Name(), s.cutLayer, h.Network, h.CutLayer)}
	}
	if err := s.encodeWithWriteDeadline(conn, enc, ack); err != nil || !ack.OK {
		return
	}

	for {
		var req request
		if err := s.decodeWithIdleDeadline(conn, dec, &req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := s.encodeWithWriteDeadline(conn, enc, resp); err != nil {
			return
		}
	}
}

// decodeWithIdleDeadline arms the connection's read deadline (when an idle
// timeout is configured) and decodes one value.
func (s *CloudServer) decodeWithIdleDeadline(conn net.Conn, dec *gob.Decoder, v any) error {
	if s.idleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
			return err
		}
	}
	return dec.Decode(v)
}

// encodeWithWriteDeadline arms the connection's write deadline (when a
// write timeout is configured) and encodes one value.
func (s *CloudServer) encodeWithWriteDeadline(conn net.Conn, enc *gob.Encoder, v any) error {
	if s.writeTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
			return err
		}
	}
	return enc.Encode(v)
}

// handle computes R(a′) for one request, converting panics (bad payloads
// from a misbehaving client) into error responses rather than crashing the
// server.
func (s *CloudServer) handle(req request) (resp response) {
	resp.ID = req.ID
	defer func() {
		if r := recover(); r != nil {
			resp.Logits = nil
			resp.Err = fmt.Sprintf("remote inference failed: %v", r)
		}
	}()
	act := req.Activation
	if act == nil && req.Quant != nil {
		scheme, err := quantize.NewScheme(req.Quant.Bits, req.Quant.Lo, req.Quant.Hi)
		if err != nil {
			resp.Err = fmt.Sprintf("bad quantization scheme: %v", err)
			return resp
		}
		act, err = scheme.DequantizePacked(req.Quant.Packed, req.Quant.Shape...)
		if err != nil {
			resp.Err = fmt.Sprintf("bad quantized payload: %v", err)
			return resp
		}
	}
	if act == nil {
		resp.Err = "missing activation"
		return resp
	}
	want := s.split.ActivationShape()
	got := act.Shape()
	if len(got) != len(want)+1 || !tensor.ShapeEq(got[1:], want) {
		resp.Err = fmt.Sprintf("activation shape %v does not match expected [N %v]", got, want)
		return resp
	}
	resp.Logits = s.infer(act)
	return resp
}

// infer runs the reentrant remote forward pass, optionally bounded by the
// handler timeout. On timeout the computation goroutine is left to finish
// in the background (Go cannot cancel a compute loop), but the request
// gets an error response and the connection moves on.
func (s *CloudServer) infer(act *tensor.Tensor) *tensor.Tensor {
	run := func() *tensor.Tensor {
		if s.serialized {
			s.serialMu.Lock()
			defer s.serialMu.Unlock()
		}
		return s.split.RemoteInfer(act)
	}
	if s.handlerTimeout <= 0 {
		return run()
	}
	done := make(chan *tensor.Tensor, 1)
	panicked := make(chan any, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				panicked <- r
			}
		}()
		done <- run()
	}()
	timer := time.NewTimer(s.handlerTimeout)
	defer timer.Stop()
	select {
	case logits := <-done:
		return logits
	case r := <-panicked:
		panic(r) // re-panic on the handler goroutine; handle's recover replies with the error
	case <-timer.C:
		panic(fmt.Sprintf("inference exceeded handler timeout %v", s.handlerTimeout))
	}
}

// Close stops the listener, closes live connections and waits for their
// serving goroutines to finish. It is idempotent: closing an already
// closed server is a no-op returning nil.
func (s *CloudServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	s.listener = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
