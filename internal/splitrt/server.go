package splitrt

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"shredder/internal/audit"
	"shredder/internal/core"
	"shredder/internal/nn"
	"shredder/internal/obs"
	"shredder/internal/quantize"
	"shredder/internal/sched"
	"shredder/internal/tensor"
)

// CloudServer hosts the remote part R of a split network. It models the
// cloud side of the paper's deployment: it receives only noisy activations
// and returns logits, never seeing raw inputs.
//
// Concurrency model: inference runs on core.Split.RemoteInfer, the
// reentrant forward path that keeps no per-layer state, so every
// connection serves requests truly in parallel — there is no inference
// lock. The server's mutex guards only the connection registry and
// shutdown flag and is never held across an inference or a network I/O
// call.
//
// With WithBatching, concurrent requests from *different* connections are
// coalesced by an internal sched.Batcher into one [N, ...] forward pass
// and the per-sample logits are demultiplexed back to each caller. This
// changes nothing about the privacy story — every sample arrives already
// noised on the edge — and nothing about the results: batched serving is
// bitwise identical to per-sample serving (pinned by tests). In batching
// mode each request on a connection is answered on its own goroutine, so
// one connection may pipeline several requests and receive the responses
// out of order, matched by ID.
type CloudServer struct {
	split    *core.Split
	cutLayer string

	idleTimeout    time.Duration
	writeTimeout   time.Duration
	handlerTimeout time.Duration
	injectLatency  time.Duration // chaos/bench only: sleep before every forward pass
	serialized     bool
	serialMu       sync.Mutex // used only when serialized (legacy mode)

	batchOpts *sched.Options
	batcher   *sched.Batcher[*tensor.Tensor, *tensor.Tensor]

	dtype      *nn.Dtype       // WithDtype: compile the remote part at this dtype
	compiled   *nn.CompiledNet // non-nil once compilation succeeded
	compileErr error           // deferred to Serve so construction stays infallible

	auditor *audit.Auditor // nil = audit trail disabled

	obs       *serverObs    // nil = observability disabled (hot path pays nil checks only)
	debugAddr string        // "" = no debug HTTP endpoint
	profiling bool          // WithProfiling: attach a per-layer profiler to the remote net
	joinRing  *obs.SpanRing // WithSpanJoin: client-side ring to join against

	windowOpts *obs.WindowOptions // WithWindows: sliding-window aggregation
	sloIvl     time.Duration      // WithSLO: evaluation cadence (0 = window bucket)
	sloObjs    []obs.Objective
	windows    *obs.Windows
	slo        *obs.SLO
	sloErr     error  // deferred to Serve so construction stays infallible
	stopObs    func() // stops the window/SLO ticker, set by Serve

	mu       sync.Mutex // guards listener, conns, closed, debug — never held across inference
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	debug    *obs.DebugServer
	wg       sync.WaitGroup
}

// ServerOption configures a CloudServer.
type ServerOption func(*CloudServer)

// WithIdleTimeout closes a connection when no request arrives within d
// (0 = wait forever). It bounds how long a stalled or dead peer can hold a
// connection slot.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *CloudServer) { s.idleTimeout = d }
}

// WithWriteTimeout bounds each response write by d (0 = no bound), so a
// client that stops draining its socket cannot wedge its serving goroutine.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *CloudServer) { s.writeTimeout = d }
}

// WithHandlerTimeout bounds each remote forward pass by d (0 = no bound);
// a request exceeding it gets an error response instead of stalling the
// connection. Under batching the bound applies to the whole batched
// forward pass; every member of a timed-out batch receives the (retryable)
// timeout error.
func WithHandlerTimeout(d time.Duration) ServerOption {
	return func(s *CloudServer) { s.handlerTimeout = d }
}

// WithLatencyInjection delays every forward pass by d before computing.
// It exists for chaos tests and benchmarks that need a deterministically
// slow backend — e.g. proving a pool's hedged requests cap tail latency —
// and must never be set on a production server.
func WithLatencyInjection(d time.Duration) ServerOption {
	return func(s *CloudServer) { s.injectLatency = d }
}

// WithSerializedInference restores the pre-concurrency behaviour of one
// global inference at a time. It exists so benchmarks can measure what the
// global lock used to cost; production servers should never set it.
func WithSerializedInference() ServerOption {
	return func(s *CloudServer) { s.serialized = true }
}

// WithDtype compiles the remote part into a fused inference plan at the
// given dtype (nn.Compile) and serves every forward pass through it.
// Float64 keeps bitwise-identical results while gaining BN folding and
// conv/linear+ReLU fusion; Float32 additionally halves the memory traffic,
// with classification decisions pinned to the float64 path by tests. When
// the client ships quantized payloads and batching is off, a Float32 server
// dequantizes straight into float32 and never materializes a float64
// activation. Compilation errors surface from Serve.
func WithDtype(dt nn.Dtype) ServerOption {
	return func(s *CloudServer) { s.dtype = &dt }
}

// WithBatching coalesces concurrent requests across connections into
// batched forward passes under the given knobs (sched.Options zero value =
// defaults: MaxBatch 16, MaxDelay 2ms). An idle server still answers a
// lone request immediately — the delay knob only bounds queueing behind an
// in-flight batch — so enabling batching never costs latency when there is
// no load to coalesce.
func WithBatching(opts sched.Options) ServerOption {
	return func(s *CloudServer) { s.batchOpts = &opts }
}

// WithObservability attaches a metrics registry and span ring to the
// server: request/response/error-kind counters, latency/queue/compute
// histograms, batch occupancy, and per-request spans with
// queue/batch/compute sub-timings. Pass a shared registry to fold the
// server's metrics (and, under WithBatching, the scheduler's sched.*
// metrics) into one snapshot; nil arguments are replaced with fresh
// instances. Without this option (or WithDebugServer) the serving hot path
// records nothing and pays only nil checks.
func WithObservability(reg *obs.Registry, spans *obs.SpanRing) ServerOption {
	return func(s *CloudServer) {
		if spans == nil {
			spans = obs.NewSpanRing(defaultSpanRing)
		}
		s.obs = newServerObs(reg, spans)
	}
}

// WithDebugServer serves the obs debug endpoint (/debug/metrics,
// /debug/spans, /debug/profile, /debug/pprof) on its own HTTP listener at
// addr, started by Serve and stopped by Close. It implies WithObservability
// when no registry was attached yet. Use DebugAddr to learn the bound
// address (handy with ":0").
func WithDebugServer(addr string) ServerOption {
	return func(s *CloudServer) { s.debugAddr = addr }
}

// WithProfiling attaches an obs.Profiler to the split network for the
// server's lifetime: every remote forward pass reports per-layer wall time
// and scratch bytes, feeding profile.* histograms in the server's registry
// and the cumulative table at /debug/profile. It implies WithObservability
// when none was configured. The profiler is detached on Close. Note the
// profiler observes the *network*, so a process sharing one nn.Sequential
// between a server and other traffic profiles both.
func WithProfiling() ServerOption {
	return func(s *CloudServer) { s.profiling = true }
}

// WithAudit attaches a tamper-evident audit trail: every successfully
// served request emits an audit.Record — trace ID, receive timestamp,
// model and cut, the edge's noise attribution (mode, member, sampled
// in-vivo 1/SNR), and a SHA-256 digest of the activation payload the
// server actually received — into the auditor's Merkle batcher.
// Inclusion proofs are served at /debug/audit (with WithDebugServer)
// and batch roots anchor through the auditor's ledger. The server takes
// ownership of the auditor: Close drains it after every in-flight
// request has finished — all emitted records are sealed and anchored
// before Close returns — and closes its ledger.
func WithAudit(a *audit.Auditor) ServerOption {
	return func(s *CloudServer) { s.auditor = a }
}

// WithWindows attaches sliding-window aggregation to the server's
// registry: /debug/metrics payloads gain a "window" field with per-window
// counter rates and histogram p50/p95/p99, and Serve starts a background
// ticker that ages old observations out on the bucket cadence (the zero
// WindowOptions means 12 buckets of 5s — a one-minute window). It implies
// WithObservability when none was configured. Windowing adds no
// instrumentation to the serving hot path — aggregates are derived from
// the cumulative registry at snapshot boundaries.
func WithWindows(opt obs.WindowOptions) ServerOption {
	return func(s *CloudServer) { s.windowOpts = &opt }
}

// WithSLO attaches a service-level-objective engine evaluating the given
// objectives against the server's sliding window every interval (0 = the
// window's bucket duration), emitting firing/resolved events into the
// ring served at /debug/events and mirroring live state as slo.* metrics.
// It implies WithWindows (and hence WithObservability) when none was
// configured. Invalid objectives surface as an error from Serve.
//
// The canonical privacy objective watches the server-side view of the
// fleet's realized noise level — the in-vivo 1/SNR relayed by
// telemetry-enabled edge clients in their audit notes:
//
//	obs.Objective{
//		Name:      "privacy.invivo",
//		Metric:    core.MetricInVivo,
//		Aggregate: obs.AggMean,
//		Op:        obs.OpAtLeast,
//		Target:    bench.PrivacyTarget,
//		MinCount:  8,
//	}
func WithSLO(interval time.Duration, objectives ...obs.Objective) ServerOption {
	return func(s *CloudServer) {
		s.sloIvl = interval
		s.sloObjs = append(s.sloObjs, objectives...)
	}
}

// WithSpanJoin gives the server the client-side span ring to join against:
// /debug/spans?join=1 then serves merged seven-stage client↔server
// timelines for requests present in both rings. Pair it with an EdgeClient
// created with WithSpans(ring) in the same process, or feed a ring
// populated from client telemetry shipped by other means. It implies
// WithObservability when none was configured.
func WithSpanJoin(clientSpans *obs.SpanRing) ServerOption {
	return func(s *CloudServer) { s.joinRing = clientSpans }
}

// NewCloudServer creates a server for the given split. cutLayer is the
// layer name clients must declare in their handshake.
func NewCloudServer(split *core.Split, cutLayer string, opts ...ServerOption) *CloudServer {
	s := &CloudServer{split: split, cutLayer: cutLayer, conns: map[net.Conn]struct{}{}}
	for _, o := range opts {
		o(s)
	}
	if s.dtype != nil {
		cn, err := nn.CompileRange(split.Net, split.CutIndex+1, split.Net.Len(), *s.dtype)
		if err != nil {
			s.compileErr = fmt.Errorf("splitrt: compile remote part at %v: %w", *s.dtype, err)
		} else {
			s.compiled = cn
		}
	}
	if (s.debugAddr != "" || s.profiling || s.joinRing != nil ||
		s.windowOpts != nil || len(s.sloObjs) > 0) && s.obs == nil {
		s.obs = newServerObs(obs.NewRegistry(), obs.NewSpanRing(defaultSpanRing))
	}
	if s.obs != nil && (s.windowOpts != nil || len(s.sloObjs) > 0) {
		if s.windowOpts == nil {
			s.windowOpts = &obs.WindowOptions{}
		}
		s.windows = obs.NewWindows(s.obs.reg, *s.windowOpts)
		if len(s.sloObjs) > 0 {
			s.slo, s.sloErr = obs.NewSLO(s.windows, nil, s.sloObjs...)
		}
	}
	if s.profiling {
		s.obs.prof = obs.NewProfiler(s.obs.reg)
		s.split.Net.SetProfiler(s.obs.prof)
	}
	if s.joinRing != nil {
		s.obs.joiner = &obs.SpanJoiner{Client: s.joinRing, Server: s.obs.spans}
	}
	if s.batchOpts != nil {
		if s.obs != nil {
			// The scheduler registers its own sched.* metrics in the same
			// registry so one snapshot covers the whole serving path.
			s.batchOpts.Metrics = s.obs.reg
		}
		s.batcher = sched.New(s.runBatch, *s.batchOpts)
	}
	return s
}

// Metrics returns the server's metrics registry, or nil when observability
// is disabled.
func (s *CloudServer) Metrics() *obs.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// Spans returns the server's span ring, or nil when observability is
// disabled.
func (s *CloudServer) Spans() *obs.SpanRing {
	if s.obs == nil {
		return nil
	}
	return s.obs.spans
}

// Profiler returns the per-layer profiler, or nil when WithProfiling is
// not configured.
func (s *CloudServer) Profiler() *obs.Profiler {
	if s.obs == nil {
		return nil
	}
	return s.obs.prof
}

// JoinedSpans returns the merged client↔server timelines (the
// /debug/spans?join=1 payload), or nil when WithSpanJoin is not configured.
func (s *CloudServer) JoinedSpans() []obs.JoinedSpan {
	if s.obs == nil {
		return nil
	}
	return s.obs.joiner.Joined()
}

// Auditor returns the server's audit trail, or nil when WithAudit is
// not configured.
func (s *CloudServer) Auditor() *audit.Auditor { return s.auditor }

// Windows returns the sliding-window aggregator, or nil when WithWindows
// (or WithSLO) is not configured.
func (s *CloudServer) Windows() *obs.Windows { return s.windows }

// SLO returns the objective engine, or nil when WithSLO is not configured.
func (s *CloudServer) SLO() *obs.SLO { return s.slo }

// DebugAddr returns the bound address of the debug HTTP endpoint, or ""
// when WithDebugServer was not configured or Serve has not started it yet.
func (s *CloudServer) DebugAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.debug == nil {
		return ""
	}
	return s.debug.Addr
}

// BatchStats returns the batching scheduler's counters; ok is false when
// the server runs without WithBatching.
func (s *CloudServer) BatchStats() (stats sched.Stats, ok bool) {
	if s.batcher == nil {
		return sched.Stats{}, false
	}
	return s.batcher.Stats(), true
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Connections are served on background goroutines until
// Close.
func (s *CloudServer) Serve(addr string) (string, error) {
	if s.compileErr != nil {
		return "", s.compileErr
	}
	if s.sloErr != nil {
		return "", fmt.Errorf("splitrt: %w", s.sloErr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("splitrt: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("splitrt: server is closed")
	}
	s.listener = ln
	startDebug := s.debugAddr != "" && s.debug == nil
	s.mu.Unlock()
	if startDebug {
		dbg := obs.Debug{
			Metrics: s.obs.reg, Spans: s.obs.spans,
			Profile: s.obs.prof, Join: s.obs.joiner,
			Windows: s.windows, Events: s.slo.Events(),
		}
		if s.auditor != nil {
			dbg.Extra = map[string]http.Handler{
				"/debug/audit": audit.Handler(audit.LocalSource{Auditor: s.auditor}),
			}
		}
		d, err := dbg.Serve(s.debugAddr)
		if err != nil {
			s.mu.Lock()
			s.listener = nil
			s.mu.Unlock()
			ln.Close()
			return "", fmt.Errorf("splitrt: debug listen: %w", err)
		}
		s.mu.Lock()
		s.debug = d
		s.mu.Unlock()
	}
	s.mu.Lock()
	if s.stopObs == nil {
		// The SLO ticker advances the window as part of each evaluation, so
		// one background goroutine keeps both fresh; without objectives the
		// window runs its own ticker on the bucket cadence.
		switch {
		case s.slo != nil:
			s.stopObs = s.slo.Start(s.sloIvl)
		case s.windows != nil:
			s.stopObs = s.windows.Start()
		}
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *CloudServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Register under the lock BEFORE serving so Close, which flips
		// closed and then snapshots conns under the same lock, either sees
		// this conn (and closes it) or has already flipped closed (and we
		// drop it here). No conn can slip in after Close's snapshot.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *CloudServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var h hello
	if err := s.decodeWithIdleDeadline(conn, dec, &h); err != nil {
		return
	}
	ack := helloAck{OK: true}
	if h.Network != s.split.Net.Name() || h.CutLayer != s.cutLayer {
		ack = helloAck{OK: false, Err: fmt.Sprintf(
			"server hosts %s cut at %s, client wants %s cut at %s",
			s.split.Net.Name(), s.cutLayer, h.Network, h.CutLayer)}
	}
	if err := s.encodeWithWriteDeadline(conn, enc, ack); err != nil || !ack.OK {
		return
	}

	if s.batcher != nil {
		s.serveConnPipelined(conn, dec, enc)
		return
	}
	for {
		var req request
		if err := s.decodeWithIdleDeadline(conn, dec, &req); err != nil {
			return
		}
		resp := s.handle(context.Background(), req)
		if err := s.encodeWithWriteDeadline(conn, enc, resp); err != nil {
			return
		}
	}
}

// serveConnPipelined is the batching-mode connection loop: every request is
// answered on its own goroutine (so several can be in the batcher at once,
// and a single connection can pipeline), with the gob encoder guarded by a
// write mutex and responses matched to requests by ID. The connection
// context is cancelled when the reader exits, abandoning any of this
// connection's slots still queued in the batcher.
func (s *CloudServer) serveConnPipelined(conn net.Conn, dec *gob.Decoder, enc *gob.Encoder) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		var req request
		if err := s.decodeWithIdleDeadline(conn, dec, &req); err != nil {
			return
		}
		reqWG.Add(1)
		go func(req request) {
			defer reqWG.Done()
			resp := s.handle(ctx, req)
			writeMu.Lock()
			err := s.encodeWithWriteDeadline(conn, enc, resp)
			writeMu.Unlock()
			if err != nil {
				// The peer is unreachable; unblock the reader so the
				// connection tears down instead of lingering until the
				// idle deadline.
				conn.Close()
			}
		}(req)
	}
}

// decodeWithIdleDeadline arms the connection's read deadline (when an idle
// timeout is configured) and decodes one value.
func (s *CloudServer) decodeWithIdleDeadline(conn net.Conn, dec *gob.Decoder, v any) error {
	if s.idleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
			return err
		}
	}
	return dec.Decode(v)
}

// encodeWithWriteDeadline arms the connection's write deadline (when a
// write timeout is configured) and encodes one value.
func (s *CloudServer) encodeWithWriteDeadline(conn net.Conn, enc *gob.Encoder, v any) error {
	if s.writeTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
			return err
		}
	}
	return enc.Encode(v)
}

// handle computes R(a′) for one request. Validation errors are classified
// per request (ErrBadRequest) before the batcher is involved, so a
// malformed payload can never poison a batch it would have ridden in.
// The request's trace ID is echoed on the response, and with observability
// enabled the whole exchange is recorded as a span whose stages split the
// latency into queue / batch / compute time.
func (s *CloudServer) handle(ctx context.Context, req request) response {
	o := s.obs
	var t0, computeStart time.Time
	if o != nil {
		o.requests.Inc()
		t0 = time.Now()
	}
	resp := response{ID: req.ID, Trace: req.Trace}
	var logits *tensor.Tensor
	var err error
	var si *sched.SubmitInfo
	if s.batcher == nil && s.compiled != nil && s.compiled.Dtype() == nn.Float32 &&
		req.Activation == nil && req.Quant != nil {
		// Direct-dequantization fast path: the quantized payload is
		// reconstructed straight into float32 and fed to the compiled plan's
		// float32 entry, so no float64 activation is ever materialized.
		act32, kind, msg := decodeRequestActivation32(s.split, req)
		if kind != ErrUnknown {
			resp.Err, resp.Kind = msg, kind
			o.finish(req, &resp, t0, nil, computeStart)
			return resp
		}
		if o != nil {
			computeStart = time.Now()
		}
		logits, err = s.inferGuarded(func() *tensor.Tensor { return s.compiled.Infer32(act32) })
	} else {
		act, kind, msg := decodeRequestActivation(s.split, req)
		if kind != ErrUnknown {
			resp.Err, resp.Kind = msg, kind
			o.finish(req, &resp, t0, nil, computeStart)
			return resp
		}
		if s.batcher != nil {
			if o != nil {
				si = new(sched.SubmitInfo)
			}
			logits, err = s.batcher.SubmitTraced(ctx, act, act.Dim(0), si)
		} else {
			if o != nil {
				computeStart = time.Now()
			}
			logits, err = s.infer(act)
		}
	}
	if err != nil {
		resp.Err, resp.Kind = err.Error(), classify(err)
		// SubmitInfo contents are unspecified after an error; don't report
		// its timings.
		o.finish(req, &resp, t0, nil, computeStart)
		return resp
	}
	resp.Logits = logits
	o.finish(req, &resp, t0, si, computeStart)
	o.observeAudit(req.Audit)
	s.auditRecord(req)
	return resp
}

// auditRecord emits one request's evidence record into the audit trail.
// Called only for successfully served requests, synchronously inside
// handle — so Close's wg.Wait → auditor.Close ordering guarantees every
// emitted record is sealed and anchored before shutdown completes.
func (s *CloudServer) auditRecord(req request) {
	if s.auditor == nil {
		return
	}
	rec := audit.Record{
		Trace:     req.Trace,
		UnixNanos: time.Now().UnixNano(),
		Model:     s.split.Net.Name(),
		Cut:       s.cutLayer,
		Mode:      "none",
		Member:    -2,
		ActDigest: digestRequest(req),
	}
	if n := req.Audit; n != nil {
		rec.Mode, rec.Member, rec.InVivo, rec.Sampled = n.Mode, n.Member, n.InVivo, n.Sampled
	}
	// The only Append failure modes are a closed auditor (impossible
	// here: Close drains connections first) and an unencodable record
	// (bounded fields throughout); neither should fail the request.
	_ = s.auditor.Append(rec)
}

// digestRequest hashes the activation payload exactly as received:
// quantized requests digest the packed level bytes under their scheme,
// dense requests the float64 activation bits. The digest commits the
// server to what the cloud actually saw — the noised bytes — without
// the ledger ever storing the activation itself.
func digestRequest(req request) [32]byte {
	if req.Quant != nil {
		tag := fmt.Sprintf("quant/%d/%g/%g", req.Quant.Bits, req.Quant.Lo, req.Quant.Hi)
		return audit.DigestActivation(tag, req.Quant.Shape, req.Quant.Packed)
	}
	if req.Activation == nil {
		return audit.DigestActivation("none", nil, nil)
	}
	data := req.Activation.Data()
	buf := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return audit.DigestActivation("dense", req.Activation.Shape(), buf)
}

// decodeRequestActivation32 is the float32 twin of decodeRequestActivation
// for the direct-dequantization fast path: it reconstructs a quantized
// payload straight into a float32 buffer and validates its shape against
// the split being served.
func decodeRequestActivation32(split *core.Split, req request) (act *tensor.Tensor32, kind ErrKind, msg string) {
	scheme, err := quantize.NewScheme(req.Quant.Bits, req.Quant.Lo, req.Quant.Hi)
	if err != nil {
		return nil, ErrBadRequest, fmt.Sprintf("bad quantization scheme: %v", err)
	}
	act, err = scheme.DequantizePacked32(req.Quant.Packed, req.Quant.Shape...)
	if err != nil {
		return nil, ErrBadRequest, fmt.Sprintf("bad quantized payload: %v", err)
	}
	want := split.ActivationShape()
	got := act.Shape()
	if len(got) != len(want)+1 || !tensor.ShapeEq(got[1:], want) {
		return nil, ErrBadRequest, fmt.Sprintf("activation shape %v does not match expected [N %v]", got, want)
	}
	return act, ErrUnknown, ""
}

// decodeRequestActivation extracts and validates a request's activation
// batch against the split being served. A non-ErrUnknown kind means the
// request is rejected before inference. It is shared by the CloudServer and
// the fleet Gateway, which speak the same wire protocol.
func decodeRequestActivation(split *core.Split, req request) (act *tensor.Tensor, kind ErrKind, msg string) {
	act = req.Activation
	if act == nil && req.Quant != nil {
		scheme, err := quantize.NewScheme(req.Quant.Bits, req.Quant.Lo, req.Quant.Hi)
		if err != nil {
			return nil, ErrBadRequest, fmt.Sprintf("bad quantization scheme: %v", err)
		}
		act, err = scheme.DequantizePacked(req.Quant.Packed, req.Quant.Shape...)
		if err != nil {
			return nil, ErrBadRequest, fmt.Sprintf("bad quantized payload: %v", err)
		}
	}
	if act == nil {
		return nil, ErrBadRequest, "missing activation"
	}
	want := split.ActivationShape()
	got := act.Shape()
	if len(got) != len(want)+1 || !tensor.ShapeEq(got[1:], want) {
		return nil, ErrBadRequest, fmt.Sprintf("activation shape %v does not match expected [N %v]", got, want)
	}
	return act, ErrUnknown, ""
}

// errHandlerTimeout marks a forward pass that exceeded the handler
// timeout; classify maps it to the retryable ErrTimeout wire kind.
var errHandlerTimeout = errors.New("inference exceeded handler timeout")

// classify maps a server-side inference error to its wire kind.
func classify(err error) ErrKind {
	switch {
	case errors.Is(err, errHandlerTimeout):
		return ErrTimeout
	case errors.Is(err, sched.ErrClosed):
		return ErrShutdown
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ErrShutdown
	default:
		return ErrInternal
	}
}

// runBatch is the sched.Batcher flush function: it stacks the coalesced
// [nᵢ, ...] activation batches into one [Σnᵢ, ...] tensor, runs a single
// remote forward pass, and splits the logits back per request. Stacking
// and splitting are pure copies, and every layer treats batch members
// independently on the inference path, so the per-request logits are
// bitwise identical to what per-sample serving would have produced.
func (s *CloudServer) runBatch(acts []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(acts) == 1 {
		logits, err := s.infer(acts[0])
		if err != nil {
			return nil, err
		}
		return []*tensor.Tensor{logits}, nil
	}
	sample := s.split.ActivationShape()
	total := 0
	for _, a := range acts {
		total += a.Dim(0)
	}
	stacked := tensor.New(append([]int{total}, sample...)...)
	off := 0
	for _, a := range acts {
		copy(stacked.Data()[off:], a.Data())
		off += a.Len()
	}
	logits, err := s.infer(stacked)
	if err != nil {
		return nil, err
	}
	outShape := logits.Shape()[1:]
	outVol := tensor.Volume(outShape)
	out := make([]*tensor.Tensor, len(acts))
	row := 0
	for i, a := range acts {
		n := a.Dim(0)
		o := tensor.New(append([]int{n}, outShape...)...)
		copy(o.Data(), logits.Data()[row*outVol:(row+n)*outVol])
		out[i] = o
		row += n
	}
	return out, nil
}

// infer runs the reentrant remote forward pass — through the compiled plan
// when WithDtype installed one — with the panic/timeout guard.
func (s *CloudServer) infer(act *tensor.Tensor) (*tensor.Tensor, error) {
	return s.inferGuarded(func() *tensor.Tensor {
		if s.compiled != nil {
			return s.compiled.Infer(act)
		}
		return s.split.RemoteInfer(act)
	})
}

// inferGuarded runs one forward-pass closure, optionally bounded by the
// handler timeout, converting panics (bad payloads from a misbehaving
// client that slipped past validation) into errors rather than crashing
// the server. On timeout the computation goroutine is left to finish in
// the background (Go cannot cancel a compute loop), but the request gets
// an error and the connection moves on.
func (s *CloudServer) inferGuarded(fn func() *tensor.Tensor) (*tensor.Tensor, error) {
	run := func() (out *tensor.Tensor, err error) {
		defer func() {
			if r := recover(); r != nil {
				out, err = nil, fmt.Errorf("remote inference failed: %v", r)
			}
		}()
		if s.injectLatency > 0 {
			time.Sleep(s.injectLatency)
		}
		if s.serialized {
			s.serialMu.Lock()
			defer s.serialMu.Unlock()
		}
		return fn(), nil
	}
	if s.handlerTimeout <= 0 {
		return run()
	}
	type res struct {
		t   *tensor.Tensor
		err error
	}
	done := make(chan res, 1)
	go func() {
		t, err := run()
		done <- res{t, err}
	}()
	timer := time.NewTimer(s.handlerTimeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.t, r.err
	case <-timer.C:
		return nil, fmt.Errorf("%w %v", errHandlerTimeout, s.handlerTimeout)
	}
}

// Close stops the listener, drains the batching scheduler (pending slots
// are flushed as one final batch, so callers already in the pipeline get
// real responses rather than errors; anything submitted afterwards fails
// with the retryable shutdown kind), closes live connections and waits for
// their serving goroutines to finish. It is idempotent: closing an already
// closed server is a no-op returning nil.
func (s *CloudServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	s.listener = nil
	debug := s.debug
	s.debug = nil
	stopObs := s.stopObs
	s.stopObs = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if stopObs != nil {
		stopObs()
	}
	if debug != nil {
		debug.Close()
	}
	if s.batcher != nil {
		// Drain before severing connections so the final batch's
		// responses still have live sockets to be written to.
		s.batcher.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.auditor != nil {
		// Every serving goroutine has returned, so every record is already
		// appended; draining the auditor seals the in-progress batch and
		// anchors every sealed batch before the ledger closes — a server
		// killed mid-batch loses nothing it acknowledged.
		s.auditor.Close()
	}
	if s.profiling {
		// Detach the profiler this server attached so a shared network does
		// not keep paying the instrumented path after the server is gone.
		s.split.Net.SetProfiler(nil)
	}
	return nil
}
