package splitrt

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"shredder/internal/core"
	"shredder/internal/quantize"
	"shredder/internal/tensor"
)

// CloudServer hosts the remote part R of a split network. It models the
// cloud side of the paper's deployment: it receives only noisy activations
// and returns logits, never seeing raw inputs.
type CloudServer struct {
	split    *core.Split
	cutLayer string

	mu       sync.Mutex // serializes inference (layers cache state) and conn set
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewCloudServer creates a server for the given split. cutLayer is the
// layer name clients must declare in their handshake.
func NewCloudServer(split *core.Split, cutLayer string) *CloudServer {
	return &CloudServer{split: split, cutLayer: cutLayer, conns: map[net.Conn]struct{}{}}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Connections are served on background goroutines until
// Close.
func (s *CloudServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("splitrt: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *CloudServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *CloudServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	ack := helloAck{OK: true}
	if h.Network != s.split.Net.Name() || h.CutLayer != s.cutLayer {
		ack = helloAck{OK: false, Err: fmt.Sprintf(
			"server hosts %s cut at %s, client wants %s cut at %s",
			s.split.Net.Name(), s.cutLayer, h.Network, h.CutLayer)}
	}
	if err := enc.Encode(ack); err != nil || !ack.OK {
		return
	}

	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle computes R(a′) for one request, converting panics (bad shapes
// from a misbehaving client) into error responses rather than crashing the
// server.
func (s *CloudServer) handle(req request) (resp response) {
	resp.ID = req.ID
	defer func() {
		if r := recover(); r != nil {
			resp.Logits = nil
			resp.Err = fmt.Sprintf("remote inference failed: %v", r)
		}
	}()
	act := req.Activation
	if act == nil && req.Quant != nil {
		scheme, err := quantize.NewScheme(req.Quant.Bits, req.Quant.Lo, req.Quant.Hi)
		if err != nil {
			resp.Err = fmt.Sprintf("bad quantization scheme: %v", err)
			return resp
		}
		if tensor.Volume(req.Quant.Shape) != len(req.Quant.Levels) {
			resp.Err = "quantized payload shape/levels mismatch"
			return resp
		}
		act = scheme.Dequantize(req.Quant.Levels, req.Quant.Shape...)
	}
	if act == nil {
		resp.Err = "missing activation"
		return resp
	}
	want := s.split.ActivationShape()
	got := act.Shape()
	if len(got) != len(want)+1 || !tensor.ShapeEq(got[1:], want) {
		resp.Err = fmt.Sprintf("activation shape %v does not match expected [N %v]", got, want)
		return resp
	}
	s.mu.Lock()
	logits := s.split.Remote(act, false)
	s.mu.Unlock()
	resp.Logits = logits
	return resp
}

// Close stops the listener and waits for in-flight connections to finish.
func (s *CloudServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("splitrt: server already closed")
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
