package splitrt

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync/atomic"

	"shredder/internal/core"
	"shredder/internal/quantize"
	"shredder/internal/tensor"
)

// EdgeClient is the device side of split inference: it runs the local part
// L, adds a noise tensor sampled from a trained collection, and sends only
// the noisy activation to the cloud. When the collection is nil the client
// transmits raw activations (the paper's "original execution" baseline).
type EdgeClient struct {
	split      *core.Split
	collection *core.Collection
	rng        *tensor.RNG
	conn       *countingConn
	enc        *gob.Encoder
	dec        *gob.Decoder
	nextID     uint64
	wireBits   int // 0 = dense float transport
}

// Stats reports cumulative wire traffic of the connection.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	Requests      uint64
}

// Stats returns the client's transfer statistics.
func (c *EdgeClient) Stats() Stats {
	return Stats{
		BytesSent:     atomic.LoadInt64(&c.conn.sent),
		BytesReceived: atomic.LoadInt64(&c.conn.received),
		Requests:      c.nextID,
	}
}

// SetWireQuantization switches the activation transport to linear
// quantization with the given bit width (0 restores dense float transport).
// Quantization shrinks the wire volume by roughly 64/bits× versus the gob
// float64 encoding and, being deterministic post-processing, can only
// decrease the information the cloud receives.
func (c *EdgeClient) SetWireQuantization(bits int) error {
	if bits != 0 {
		if _, err := quantize.NewScheme(bits, 0, 1); err != nil {
			return err
		}
	}
	c.wireBits = bits
	return nil
}

// countingConn wraps a net.Conn with byte counters.
type countingConn struct {
	net.Conn
	sent, received int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	atomic.AddInt64(&c.sent, int64(n))
	return n, err
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	atomic.AddInt64(&c.received, int64(n))
	return n, err
}

// Dial connects to a CloudServer and performs the handshake.
func Dial(addr string, split *core.Split, cutLayer string, col *core.Collection, seed int64) (*EdgeClient, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("splitrt: dial: %w", err)
	}
	conn := &countingConn{Conn: raw}
	c := &EdgeClient{
		split: split, collection: col, rng: tensor.NewRNG(seed),
		conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn),
	}
	if err := c.enc.Encode(hello{Network: split.Net.Name(), CutLayer: cutLayer}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("splitrt: handshake send: %w", err)
	}
	var ack helloAck
	if err := c.dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("splitrt: handshake recv: %w", err)
	}
	if !ack.OK {
		conn.Close()
		return nil, fmt.Errorf("splitrt: handshake rejected: %s", ack.Err)
	}
	return c, nil
}

// Infer runs split inference on a batch [N, C, H, W] and returns the
// logits computed by the cloud. Each sample gets an independently sampled
// noise tensor, as at real inference time (paper §2.5).
func (c *EdgeClient) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	a := c.split.Local(x)
	if c.collection != nil {
		for i := 0; i < a.Dim(0); i++ {
			a.Slice(i).AddInPlace(c.collection.Sample(c.rng))
		}
	}
	c.nextID++
	req := request{ID: c.nextID}
	if c.wireBits > 0 {
		scheme, err := quantize.Fit(a, c.wireBits)
		if err != nil {
			return nil, fmt.Errorf("splitrt: quantize: %w", err)
		}
		req.Quant = &quantPayload{
			Bits: scheme.Bits, Lo: scheme.Lo, Hi: scheme.Hi,
			Shape: append([]int(nil), a.Shape()...), Levels: scheme.Quantize(a),
		}
	} else {
		req.Activation = a
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("splitrt: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("splitrt: recv: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("splitrt: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("splitrt: remote error: %s", resp.Err)
	}
	return resp.Logits, nil
}

// Classify returns the predicted class per sample of a batch.
func (c *EdgeClient) Classify(x *tensor.Tensor) ([]int, error) {
	logits, err := c.Infer(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, logits.Dim(0))
	for i := range out {
		out[i] = logits.Slice(i).Argmax()
	}
	return out, nil
}

// Close terminates the connection.
func (c *EdgeClient) Close() error { return c.conn.Close() }
