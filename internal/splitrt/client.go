package splitrt

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shredder/internal/core"
	"shredder/internal/obs"
	"shredder/internal/quantize"
	"shredder/internal/tensor"
)

// EdgeClient is the device side of split inference: it runs the local part
// L, perturbs the activation with a per-query draw from a noise source
// (stored collection or fitted distributions), and sends only the noisy
// activation to the cloud. When the source is nil the client transmits raw
// activations (the paper's "original execution" baseline).
//
// The wire protocol is request/response over a single connection, so the
// client serializes round trips internally: Infer/Classify are safe to
// call from multiple goroutines (the local forward passes still run
// concurrently; only noise sampling and the wire exchange are serialized).
// Stats is lock-free and safe to call from a concurrent poller at any time.
type EdgeClient struct {
	split *core.Split
	noise core.NoiseSource

	// mu guards the RNG (tensor.RNG is not goroutine-safe), the draw
	// scratch, the connection state (conn/enc/dec/broken), and wireBits.
	mu      sync.Mutex
	rng     *tensor.RNG
	scratch core.DrawScratch // reused by fitted sources: zero-alloc draws

	addr     string
	cutLayer string

	conn *countingConn
	sw   *stageWriter // between enc and conn; buffers only while a staged send is timed
	enc  *gob.Encoder
	dec  *gob.Decoder

	spans   *obs.SpanRing        // nil = client span recording disabled
	monitor *core.PrivacyMonitor // nil = privacy telemetry disabled

	// Metrics live on the client, not the connection, so cumulative stats
	// survive reconnects. Every handle is an atomic obs metric, so Stats
	// and a shared registry's Snapshot are always coherent reads — there is
	// no torn-read window against an in-flight request.
	reg       *obs.Registry // nil unless WithMetrics shared one
	m         clientMetrics
	nextID    uint64
	lastTrace uint64 // atomic: trace ID of the most recent request

	wireBits int // 0 = dense float transport

	timeout    time.Duration // per-call bound when the context has no deadline
	maxRedials int           // reconnect attempts per broken call
	redialBase time.Duration // first backoff step, doubled per attempt
	redialMax  time.Duration // backoff ceiling
	broken     bool          // transport errored; redial before next use
}

// ClientOption configures an EdgeClient at Dial time.
type ClientOption func(*EdgeClient)

// WithTimeout bounds every Infer call that arrives without a context
// deadline (0 = no bound). The deadline covers the network round trip, not
// the local forward pass.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *EdgeClient) { c.timeout = d }
}

// WithMetrics registers the client's metrics (client.requests,
// client.redials, client.bytes_sent, client.bytes_received,
// client.rtt_seconds, client.errors.*) in the given registry instead of a
// private one, so they show up alongside other components in one snapshot.
func WithMetrics(reg *obs.Registry) ClientOption {
	return func(c *EdgeClient) { c.reg = reg }
}

// WithSpans records one client-side span per Infer call into ring, with
// the request's trace ID and the stages quantize / serialize / send / wait
// / decode. Join the ring against a server's span ring (obs.JoinSpans or
// splitrt.WithSpanJoin) to get the full seven-stage edge↔cloud timeline.
// Recording costs a handful of time.Now calls plus one in-memory copy of
// the encoded request (the serialize/send split buffers the gob bytes);
// without this option the wire path is untouched.
func WithSpans(ring *obs.SpanRing) ClientOption {
	return func(c *EdgeClient) { c.spans = ring }
}

// WithPrivacyTelemetry feeds every noise application to a
// core.PrivacyMonitor: per-member sampling balance on each query and, at
// the monitor's sampling rate, the realized in-vivo 1/SNR of the clean
// activation the noise lands on. A nil monitor is valid and disables the
// telemetry.
func WithPrivacyTelemetry(m *core.PrivacyMonitor) ClientOption {
	return func(c *EdgeClient) { c.monitor = m }
}

// WithReconnect makes the client transparently redial and re-handshake a
// broken connection up to max times per call, sleeping base, 2·base,
// 4·base, ... (capped at 2s, jittered ±20%) between attempts. The backoff
// schedule restarts from base on every reconnect episode: an outage that
// was redialed away leaves no state behind, so a later transient failure
// does not start at the ceiling. Without this option a transport error is
// returned to the caller after a single redial attempt on the next use.
func WithReconnect(max int, base time.Duration) ClientOption {
	return func(c *EdgeClient) {
		if max < 0 {
			max = 0
		}
		if base <= 0 {
			base = 50 * time.Millisecond
		}
		c.maxRedials = max
		c.redialBase = base
	}
}

// Stats reports cumulative wire traffic of the connection.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	Requests      uint64
	Redials       int
}

// Stats returns the client's transfer statistics. It is a compatibility
// wrapper over the client's registered obs metrics: every field is an
// atomic read, so polling Stats concurrently with in-flight requests and
// redials is race-free.
func (c *EdgeClient) Stats() Stats {
	return Stats{
		BytesSent:     c.m.sent.Value(),
		BytesReceived: c.m.received.Value(),
		Requests:      atomic.LoadUint64(&c.nextID),
		Redials:       int(c.m.redials.Value()),
	}
}

// Spans returns the client's span ring, or nil when WithSpans is not
// configured.
func (c *EdgeClient) Spans() *obs.SpanRing { return c.spans }

// LastTrace returns the trace ID of the client's most recent request —
// the key a caller hands to /debug/audit (or `shredder audit verify`)
// to fetch the inclusion proof showing its query's noise was recorded.
func (c *EdgeClient) LastTrace() obs.TraceID {
	return obs.TraceID(atomic.LoadUint64(&c.lastTrace))
}

// SetWireQuantization switches the activation transport to linear
// quantization with the given bit width (0 restores dense float transport).
// Levels are bit-packed on the wire, so the payload shrinks by roughly
// 64/bits× versus the gob float64 encoding and, being deterministic
// post-processing, can only decrease the information the cloud receives.
func (c *EdgeClient) SetWireQuantization(bits int) error {
	if bits != 0 {
		if _, err := quantize.NewScheme(bits, 0, 1); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.wireBits = bits
	c.mu.Unlock()
	return nil
}

// countingConn wraps a net.Conn, accumulating byte counts into the
// client's cumulative wire-traffic counters. For staged round trips it can
// additionally stamp the arrival time of the first response byte: arm sets
// the trigger and the next successful Read records firstByte. The trigger
// fields are only touched by the goroutine holding the client's mutex (the
// protocol is lockstep), so they need no synchronization of their own.
type countingConn struct {
	net.Conn
	sent, received *obs.Counter

	armed     bool
	firstByte time.Time
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.received.Add(int64(n))
	if c.armed && n > 0 {
		c.firstByte = time.Now()
		c.armed = false
	}
	return n, err
}

// stageWriter sits between the gob encoder and the connection so a staged
// round trip can time serialization and transmission separately: with
// buffering on, Encode's writes collect in memory (serialize), and flush
// pushes the whole message to the connection in one call (send). With
// buffering off — the default, and always the case when span recording is
// disabled — writes pass straight through at the cost of one branch. The
// same persistent writer must stay in front of the connection either way,
// because a gob encoder's type-definition stream cannot be restarted
// per-request.
type stageWriter struct {
	w         io.Writer
	buffering bool
	buf       bytes.Buffer
}

func (s *stageWriter) Write(p []byte) (int, error) {
	if s.buffering {
		return s.buf.Write(p)
	}
	return s.w.Write(p)
}

// flush turns buffering off and writes any buffered message out.
func (s *stageWriter) flush() error {
	s.buffering = false
	if s.buf.Len() == 0 {
		return nil
	}
	_, err := s.w.Write(s.buf.Bytes())
	s.buf.Reset()
	return err
}

// discard turns buffering off and drops any buffered bytes (encode failed;
// nothing must reach the wire).
func (s *stageWriter) discard() {
	s.buffering = false
	s.buf.Reset()
}

// errHandshakeRejected marks a dial that reached the server but was turned
// away at the hello exchange (wrong network or cut layer). Redialing cannot
// help — the server will keep refusing — so reconnect treats it as terminal
// instead of burning the backoff budget.
var errHandshakeRejected = errors.New("handshake rejected")

// Dial connects to a CloudServer and performs the handshake. src may be a
// stored *core.Collection, a *core.FittedCollection, or nil for the
// no-noise baseline.
func Dial(addr string, split *core.Split, cutLayer string, src core.NoiseSource, seed int64, opts ...ClientOption) (*EdgeClient, error) {
	c := &EdgeClient{
		split: split, noise: src, rng: tensor.NewRNG(seed),
		addr: addr, cutLayer: cutLayer,
		redialBase: 50 * time.Millisecond, redialMax: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	c.m = newClientMetrics(c.reg)
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials and handshakes, installing the fresh connection.
func (c *EdgeClient) connect() error {
	raw, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("splitrt: dial: %w", err)
	}
	conn := &countingConn{Conn: raw, sent: c.m.sent, received: c.m.received}
	sw := &stageWriter{w: conn}
	enc, dec := gob.NewEncoder(sw), gob.NewDecoder(conn)
	if err := enc.Encode(hello{Network: c.split.Net.Name(), CutLayer: c.cutLayer}); err != nil {
		conn.Close()
		return fmt.Errorf("splitrt: handshake send: %w", err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		conn.Close()
		return fmt.Errorf("splitrt: handshake recv: %w", err)
	}
	if !ack.OK {
		conn.Close()
		return fmt.Errorf("splitrt: %w: %s", errHandshakeRejected, ack.Err)
	}
	c.conn, c.sw, c.enc, c.dec = conn, sw, enc, dec
	c.broken = false
	return nil
}

// reconnect runs one redial episode: up to max(1, maxRedials) dial
// attempts, the first immediate (the break was only just detected and the
// server may already be back), each later one preceded by an exponential
// backoff step that restarts from redialBase for every episode. The caller
// must hold c.mu. A context cancellation aborts the wait; a rejected
// handshake aborts the episode early because retrying it cannot succeed.
func (c *EdgeClient) reconnect(ctx context.Context) error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	dials := c.maxRedials
	if dials < 1 {
		// Even a client without WithReconnect gets one fresh dial per call
		// on a broken connection — otherwise a single transport error would
		// wedge the client forever.
		dials = 1
	}
	var err error
	for attempt := 1; attempt <= dials; attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(redialDelay(c.redialBase, c.redialMax, attempt-1, c.jitter())):
			}
		}
		if err = c.connect(); err == nil {
			c.m.redials.Inc()
			return nil
		}
		if errors.Is(err, errHandshakeRejected) {
			return err
		}
	}
	return fmt.Errorf("splitrt: reconnect failed after %d attempts: %w", dials, err)
}

// redialDelay is the pure backoff schedule: the wait before the n-th retry
// (n ≥ 1) within one episode is base·2^(n-1) capped at max, stretched or
// shrunk by up to 20% according to jitter j in [-1, 1]. The jitter is what
// keeps a fleet of clients that lost the same server from redialing it in
// lockstep when it comes back.
func redialDelay(base, max time.Duration, n int, j float64) time.Duration {
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	d += time.Duration(0.2 * j * float64(d))
	if d < 0 {
		d = 0
	}
	return d
}

// jitter draws a uniform value in [-1, 1] from the client RNG. The caller
// must hold c.mu (the RNG is not goroutine-safe).
func (c *EdgeClient) jitter() float64 { return 2*c.rng.Float64() - 1 }

// Infer runs split inference on a batch [N, C, H, W] and returns the
// logits computed by the cloud. Each sample gets an independently sampled
// noise tensor, as at real inference time (paper §2.5).
func (c *EdgeClient) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	return c.InferContext(context.Background(), x)
}

// InferContext is Infer bounded by a context: the context's deadline (or
// the client's configured timeout, when the context has none) is applied
// to the network round trip, and a broken connection is transparently
// redialed with backoff when WithReconnect is configured.
func (c *EdgeClient) InferContext(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	a := c.split.Local(x) // reentrant: runs outside the lock
	var note *auditNote
	c.mu.Lock()
	if c.noise != nil {
		// Member -2 = "not attributable": a multi-sample batch mixes draws,
		// so no single member describes the request. Single-sample requests
		// (the serving common case) carry the exact member.
		note = &auditNote{Mode: c.noise.Mode(), Member: -2}
		for i := 0; i < a.Dim(0); i++ {
			d := core.DrawReusing(c.noise, &c.scratch, c.rng)
			// Telemetry sees the clean activation: realized SNR is defined
			// against the signal the noise is about to cover.
			inv, sampled := c.monitor.ObserveDrawSampled(d, a.Slice(i))
			if sampled {
				note.InVivo, note.Sampled = inv, true
			}
			if a.Dim(0) == 1 {
				note.Member = int32(d.Member)
			}
			d.ApplyInPlace(a.Slice(i))
		}
	}
	c.mu.Unlock()
	return c.inferActivation(ctx, a, note)
}

// InferActivation ships an already-prepared cut-layer activation batch to
// the cloud and returns the logits, skipping the local forward pass and
// noise injection. It is the relay building block for components that
// forward activations noised elsewhere — a fleet pool rerouting a request
// to another backend, or a gateway proxying for remote edge devices. The
// caller is responsible for the activation already carrying whatever
// protection it needs; a client's own noise collection is applied only by
// Infer/InferContext.
func (c *EdgeClient) InferActivation(ctx context.Context, a *tensor.Tensor) (*tensor.Tensor, error) {
	return c.inferActivation(ctx, a, nil)
}

// relayMeta carries a relayed request's original trace ID and audit
// attribution through the pool's routing layers (balancing, reroutes,
// hedges) to the backend client, so a fleet backend's audit record
// names the edge's trace rather than a relay-minted one. It rides the
// context because the relay path crosses several public signatures that
// have no business knowing about audit plumbing.
type relayMeta struct {
	trace uint64
	note  *auditNote
}

type relayMetaKey struct{}

// withRelayMeta attaches relayed trace/audit attribution to a context.
func withRelayMeta(ctx context.Context, trace uint64, note *auditNote) context.Context {
	if trace == 0 && note == nil {
		return ctx
	}
	return context.WithValue(ctx, relayMetaKey{}, relayMeta{trace: trace, note: note})
}

// inferActivation is InferActivation with the optional audit attribution
// riding the request (only InferContext, which applied the noise itself,
// can truthfully fill one).
func (c *EdgeClient) inferActivation(ctx context.Context, a *tensor.Tensor, note *auditNote) (*tensor.Tensor, error) {
	c.mu.Lock()
	wireBits := c.wireBits
	c.mu.Unlock()
	id := atomic.AddUint64(&c.nextID, 1)
	c.m.requests.Inc()

	// st non-nil turns on per-stage timing for this call; the span covers
	// quantize through decode (the wire-side work, i.e. the RTT portion —
	// the local forward above is not part of it).
	var st *stageTimes
	var spanStart time.Time
	if c.spans != nil {
		st = new(stageTimes)
		spanStart = time.Now()
	}

	req := request{ID: id, Trace: uint64(obs.NewTraceID()), Audit: note}
	if m, ok := ctx.Value(relayMetaKey{}).(relayMeta); ok {
		if m.trace != 0 {
			req.Trace = m.trace
		}
		if req.Audit == nil {
			req.Audit = m.note
		}
	}
	atomic.StoreUint64(&c.lastTrace, req.Trace)
	if wireBits > 0 {
		scheme, err := quantize.Fit(a, wireBits)
		if err != nil {
			return nil, fmt.Errorf("splitrt: quantize: %w", err)
		}
		req.Quant = &quantPayload{
			Bits: scheme.Bits, Lo: scheme.Lo, Hi: scheme.Hi,
			Shape: append([]int(nil), a.Shape()...), Packed: scheme.QuantizePacked(a),
		}
		if st != nil {
			st.quantize = time.Since(spanStart)
		}
	} else {
		req.Activation = a
	}

	logits, err := c.exchange(ctx, req, st)
	if st != nil {
		span := obs.Span{
			Trace: obs.TraceID(req.Trace),
			Name:  "infer",
			ID:    req.ID,
			Start: spanStart,
			Dur:   time.Since(spanStart),
			Stages: []obs.Stage{
				{Name: "quantize", Dur: st.quantize},
				{Name: "serialize", Dur: st.serialize},
				{Name: "send", Dur: st.send},
				{Name: "wait", Dur: st.wait},
				{Name: "decode", Dur: st.decode},
			},
		}
		if err != nil {
			span.Err = err.Error()
		}
		if st.srvElapsed > 0 {
			span.Attrs = map[string]float64{"server_elapsed_ns": float64(st.srvElapsed)}
		}
		c.spans.Record(span)
	}
	return logits, err
}

// stageTimes collects the per-stage wall times of one traced Infer call.
// Retried calls keep the stages of the final attempt.
type stageTimes struct {
	quantize   time.Duration
	serialize  time.Duration
	send       time.Duration
	wait       time.Duration
	decode     time.Duration
	sendEnd    time.Time
	srvElapsed time.Duration
}

// exchange runs the request/response loop (with retries and redials) under
// the connection lock: one request in flight at a time.
func (c *EdgeClient) exchange(ctx context.Context, req request, st *stageTimes) (*tensor.Tensor, error) {
	// The wire exchange (and any redialing) owns the connection state for
	// the duration of the call: one request/response in flight at a time.
	c.mu.Lock()
	defer c.mu.Unlock()

	var lastErr error
	retries := 0 // remote-error resends; counted apart from redial episodes
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.broken || c.conn == nil {
			if attempt > c.maxRedials {
				break
			}
			if err := c.reconnect(ctx); err != nil {
				return nil, err
			}
		}
		logits, err := c.roundTrip(ctx, req, st)
		if err == nil {
			return logits, nil
		}
		lastErr = err
		var rerr *RemoteError
		if errors.As(err, &rerr) {
			// The server answered with a typed error. Only the transient
			// kinds (handler timeout, shutdown) are worth resending — and
			// only when the caller opted into retries via WithReconnect;
			// a bad-request or internal error would fail identically.
			if !rerr.Retryable() || c.maxRedials == 0 || attempt >= c.maxRedials {
				return nil, err
			}
			// Back off by the resend count, not the loop's attempt counter:
			// redial episodes that happened earlier in this call must not
			// escalate the pacing of an unrelated server-side transient.
			retries++
			if err := c.sleepBackoff(ctx, retries); err != nil {
				return nil, err
			}
			continue
		}
		if !c.broken || c.maxRedials == 0 {
			// Transport errors with reconnect disabled (and the stream
			// desync case) are returned to the caller directly.
			return nil, err
		}
		if attempt >= c.maxRedials {
			break
		}
	}
	return nil, fmt.Errorf("splitrt: request failed after retries: %w", lastErr)
}

// roundTrip sends one request and decodes its response on the current
// connection, applying the call deadline. Transport failures mark the
// connection broken; protocol failures (remote error string, ID mismatch)
// do not. A non-nil st times the attempt's serialize / send / wait /
// decode stages: the encoded message is buffered in memory, flushed in one
// write, and the first response byte is stamped by the counting conn.
func (c *EdgeClient) roundTrip(ctx context.Context, req request, st *stageTimes) (*tensor.Tensor, error) {
	deadline, ok := ctx.Deadline()
	if !ok && c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
		ok = true
	}
	if ok {
		if err := c.conn.SetDeadline(deadline); err != nil {
			c.broken = true
			c.m.transportErrs.Inc()
			return nil, fmt.Errorf("splitrt: set deadline: %w", err)
		}
	} else if err := c.conn.SetDeadline(time.Time{}); err != nil {
		c.broken = true
		c.m.transportErrs.Inc()
		return nil, fmt.Errorf("splitrt: clear deadline: %w", err)
	}
	if done := ctx.Done(); done != nil {
		// An explicit cancellation (not just a deadline) must be able to
		// interrupt a blocked gob read: poke the connection's deadline into
		// the past so the transport call fails immediately and the loop above
		// surfaces ctx.Err(). This is what lets a hedged duplicate request be
		// abandoned the instant the other attempt wins.
		stop := make(chan struct{})
		watcherDone := make(chan struct{})
		conn := c.conn
		go func() {
			defer close(watcherDone)
			select {
			case <-done:
				conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		defer func() { close(stop); <-watcherDone }()
	}
	start := time.Now()
	if st != nil {
		c.sw.buffering = true
		if err := c.enc.Encode(req); err != nil {
			c.sw.discard()
			c.broken = true
			c.m.transportErrs.Inc()
			return nil, fmt.Errorf("splitrt: send: %w", err)
		}
		st.serialize = time.Since(start)
		sendStart := time.Now()
		if err := c.sw.flush(); err != nil {
			c.broken = true
			c.m.transportErrs.Inc()
			return nil, fmt.Errorf("splitrt: send: %w", err)
		}
		st.sendEnd = time.Now()
		st.send = st.sendEnd.Sub(sendStart)
		c.conn.armed = true
	} else if err := c.enc.Encode(req); err != nil {
		c.broken = true
		c.m.transportErrs.Inc()
		return nil, fmt.Errorf("splitrt: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if st != nil {
			c.conn.armed = false
		}
		c.broken = true
		c.m.transportErrs.Inc()
		return nil, fmt.Errorf("splitrt: recv: %w", err)
	}
	if st != nil {
		now := time.Now()
		fb := c.conn.firstByte
		if c.conn.armed || fb.Before(st.sendEnd) {
			// No response byte was stamped for this attempt (the whole
			// message was already buffered, which a lockstep protocol does
			// not produce); fall back to attributing everything to wait.
			fb = now
		}
		c.conn.armed = false
		st.wait = fb.Sub(st.sendEnd)
		st.decode = now.Sub(fb)
		st.srvElapsed = time.Duration(resp.SrvElapsedNs)
	}
	c.m.rtt.Observe(time.Since(start).Seconds())
	if resp.ID != req.ID {
		// The stream is desynchronized (e.g. a stale response from before a
		// timeout); the connection cannot be trusted for further requests.
		c.broken = true
		c.m.transportErrs.Inc()
		return nil, fmt.Errorf("splitrt: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		// Count every remote failure by kind — retries of the transient kinds
		// show up as repeated increments, which is exactly what makes a retry
		// storm visible on the dashboard.
		c.m.errs[kindIndex(resp.Kind)].Inc()
		return nil, &RemoteError{Kind: resp.Kind, Msg: resp.Err}
	}
	return resp.Logits, nil
}

// sleepBackoff waits the jittered exponential-backoff step for the n-th
// retry (n ≥ 1) of the current call, honouring the context. The caller
// must hold c.mu (for the jitter RNG).
func (c *EdgeClient) sleepBackoff(ctx context.Context, n int) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(redialDelay(c.redialBase, c.redialMax, n, c.jitter())):
		return nil
	}
}

// Classify returns the predicted class per sample of a batch.
func (c *EdgeClient) Classify(x *tensor.Tensor) ([]int, error) {
	logits, err := c.Infer(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, logits.Dim(0))
	for i := range out {
		out[i] = logits.Slice(i).Argmax()
	}
	return out, nil
}

// Close terminates the connection.
func (c *EdgeClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
