package splitrt

// Tests for the client↔server span join: gob wire compatibility of the new
// server-timing response fields (both directions, including a live
// old-format peer), the end-to-end seven-stage joined timeline over a real
// batching server, server-side per-layer profiling behind WithProfiling,
// and the /debug/spans?join=1 surface.

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"shredder/internal/obs"
	"shredder/internal/sched"
	"shredder/internal/tensor"
)

// TestSrvFieldsGobBackwardCompatible pins both directions of wire
// compatibility for the server-timing response fields: an old-format
// response (no Srv* fields) decodes into the current struct as zeros, and a
// new response decodes cleanly on an old peer (gob skips unknown fields).
func TestSrvFieldsGobBackwardCompatible(t *testing.T) {
	act := tensor.New(1, 1, 2, 2).Fill(2)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacyResponse{ID: 4, Logits: act}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := gob.NewDecoder(&buf).Decode(&resp); err != nil {
		t.Fatalf("old-format response no longer decodes: %v", err)
	}
	if resp.ID != 4 || resp.SrvRecvUnixNanos != 0 || resp.SrvElapsedNs != 0 {
		t.Fatalf("old-format response decoded wrong: %+v", resp)
	}

	buf.Reset()
	now := time.Now()
	timed := response{ID: 5, Logits: act, SrvRecvUnixNanos: now.UnixNano(), SrvElapsedNs: 1234}
	if err := gob.NewEncoder(&buf).Encode(timed); err != nil {
		t.Fatal(err)
	}
	var old legacyResponse
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("timed response does not decode on an old peer: %v", err)
	}
	if old.ID != 5 || old.Logits == nil {
		t.Fatalf("timed response decoded wrong on old peer: %+v", old)
	}
}

// TestOldClientAgainstTimedServer speaks the legacy wire format to a live
// observability-enabled server (which now stamps Srv* fields on every
// response) and checks an old peer still completes the exchange.
func TestOldClientAgainstTimedServer(t *testing.T) {
	_, _, addr := identityRig(t, WithObservability(obs.NewRegistry(), obs.NewSpanRing(16)))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(hello{Network: "obsnet", CutLayer: "cut"}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil || !ack.OK {
		t.Fatalf("handshake failed: %v %+v", err, ack)
	}
	if err := enc.Encode(legacyRequest{ID: 6, Activation: tensor.New(1, 1, 2, 2).Fill(1)}); err != nil {
		t.Fatal(err)
	}
	var old legacyResponse
	if err := dec.Decode(&old); err != nil {
		t.Fatalf("old peer cannot decode a timed response: %v", err)
	}
	if old.ID != 6 || old.Err != "" || old.Logits == nil {
		t.Fatalf("old peer exchange failed: %+v", old)
	}
}

// TestJoinedSpanEndToEnd is the acceptance test for the span join: a live
// edge client (quantized wire, span recording) against a live batching
// cloud server (observability + span join), then the joined timeline must
// carry all seven canonical stages with non-negative durations summing to
// at most the client-observed span, and a plausible clock offset (same
// host, so bounded by the RTT midpoint error).
func TestJoinedSpanEndToEnd(t *testing.T) {
	clientRing := obs.NewSpanRing(64)
	split, srv, addr := identityRig(t,
		WithBatching(sched.Options{MaxBatch: 4, MaxDelay: time.Millisecond}),
		WithSpanJoin(clientRing),
		WithDebugServer("127.0.0.1:0"))

	client, err := Dial(addr, split, "cut", nil, 1, WithSpans(clientRing))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Spans() != clientRing {
		t.Fatal("client did not adopt the span ring")
	}
	if err := client.SetWireQuantization(8); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 1, 2, 2).Fill(1)
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := client.Infer(x); err != nil {
			t.Fatal(err)
		}
	}

	joined := srv.JoinedSpans()
	if len(joined) != n {
		t.Fatalf("joined %d spans, want %d", len(joined), n)
	}
	for _, j := range joined {
		if j.Trace == 0 || j.Err != "" || j.Dur <= 0 {
			t.Fatalf("joined span malformed: %+v", j)
		}
		if len(j.Stages) != len(obs.JoinedStages) {
			t.Fatalf("joined span has %d stages, want %d: %+v", len(j.Stages), len(obs.JoinedStages), j.Stages)
		}
		var sum time.Duration
		for i, name := range obs.JoinedStages {
			st := j.Stages[i]
			if st.Name != name {
				t.Fatalf("stage %d is %q, want %q", i, st.Name, name)
			}
			if st.Dur < 0 {
				t.Fatalf("stage %q has negative duration %v", name, st.Dur)
			}
			sum += st.Dur
		}
		if sum > j.Dur {
			t.Fatalf("stages sum to %v, more than the %v round trip", sum, j.Dur)
		}
		// Serializing the request and running the batch both do real work;
		// the loopback clock resolves them.
		if j.StageDur("serialize") <= 0 {
			t.Fatalf("serialize stage empty: %+v", j.Stages)
		}
		if j.StageDur("queue")+j.StageDur("batch")+j.StageDur("compute") <= 0 {
			t.Fatalf("server-side stages all empty: %+v", j.Stages)
		}
		// Client and server share one clock here, so the estimated offset is
		// pure RTT-midpoint error — far below a second on loopback.
		if off := j.ClockOffset; off > time.Second || off < -time.Second {
			t.Fatalf("clock offset %v implausible on one host", off)
		}
		if j.Attrs["server_elapsed_ns"] <= 0 {
			t.Fatalf("server elapsed attr missing: %+v", j.Attrs)
		}
	}

	// The same join must be served over HTTP at /debug/spans?join=1.
	resp, err := http.Get("http://" + srv.DebugAddr() + "/debug/spans?join=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/spans?join=1: %s", resp.Status)
	}
	var overHTTP []obs.JoinedSpan
	if err := json.NewDecoder(resp.Body).Decode(&overHTTP); err != nil {
		t.Fatal(err)
	}
	if len(overHTTP) != n || len(overHTTP[0].Stages) != len(obs.JoinedStages) {
		t.Fatalf("debug join payload: %d spans, %+v", len(overHTTP), overHTTP)
	}
}

// TestServerProfiling serves with WithProfiling and checks the remote
// part's layers accumulate per-layer timings (and registry histograms), the
// profile shows at /debug/profile, and Close detaches the hook.
func TestServerProfiling(t *testing.T) {
	split, srv, addr := identityRig(t, WithProfiling(), WithDebugServer("127.0.0.1:0"))
	prof := srv.Profiler()
	if prof == nil {
		t.Fatal("WithProfiling did not build a profiler")
	}
	client, err := Dial(addr, split, "cut", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	x := tensor.New(1, 1, 2, 2).Fill(1)
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := client.Infer(x); err != nil {
			t.Fatal(err)
		}
	}

	// The profiler hooks the whole shared network, so in this in-process
	// test it sees both the client's local pass ("cut") and the server's
	// remote pass ("post").
	var post obs.LayerProfile
	for _, lp := range prof.Table() {
		if lp.Layer == "post" {
			post = lp
		}
	}
	if post.Layer == "" {
		t.Fatalf("remote layer missing from profile: %+v", prof.Table())
	}
	if post.ForwardCalls != n || post.ScratchBytes != n*4*8 {
		t.Fatalf("post layer accumulation: %+v", post)
	}
	if h := srv.Metrics().Snapshot().Histograms["profile.forward_seconds.post"]; h.Count != n {
		t.Fatalf("per-layer histogram count %d, want %d", h.Count, n)
	}

	resp, err := http.Get("http://" + srv.DebugAddr() + "/debug/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var overHTTP []obs.LayerProfile
	if err := json.NewDecoder(resp.Body).Decode(&overHTTP); err != nil {
		t.Fatal(err)
	}
	served := false
	for _, lp := range overHTTP {
		if lp.Layer == "post" && lp.ForwardCalls == n {
			served = true
		}
	}
	if !served {
		t.Fatalf("/debug/profile payload: %+v", overHTTP)
	}

	// Close must detach the profiler from the shared network: later passes
	// (e.g. another server over the same split) record nothing here.
	srv.Close()
	split.Net.Infer(tensor.New(1, 1, 2, 2).Fill(1))
	for _, lp := range prof.Table() {
		if lp.Layer == "post" && lp.ForwardCalls != n {
			t.Fatalf("profiler still attached after Close: %d calls", lp.ForwardCalls)
		}
	}
}
