package privacy

import (
	"math"
	"testing"

	"shredder/internal/mi"
	"shredder/internal/tensor"
)

func TestSNRKnownValues(t *testing.T) {
	// Activation of constant magnitude 2 → E[a²] = 4; noise ±1 → var 1.
	a := tensor.From([]float64{2, -2, 2, -2}, 4)
	n := tensor.From([]float64{1, -1, 1, -1}, 4)
	if got := SNR(a, n); math.Abs(got-4) > 1e-12 {
		t.Fatalf("SNR = %v, want 4", got)
	}
	if got := InVivo(a, n); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("InVivo = %v, want 0.25", got)
	}
}

func TestSNRZeroNoise(t *testing.T) {
	a := tensor.From([]float64{1, 2}, 2)
	n := tensor.New(2) // zero variance
	if !math.IsInf(SNR(a, n), 1) {
		t.Fatal("SNR with zero-variance noise should be +Inf")
	}
	if InVivo(a, n) != 0 {
		t.Fatal("InVivo with zero-variance noise should be 0")
	}
}

func TestInVivoGrowsWithNoise(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := rng.FillNormal(tensor.New(1000), 0, 1)
	small := rng.FillLaplace(tensor.New(1000), 0, 0.5)
	big := rng.FillLaplace(tensor.New(1000), 0, 3)
	if InVivo(a, big) <= InVivo(a, small) {
		t.Fatal("more noise must mean more in vivo privacy")
	}
}

func TestExVivo(t *testing.T) {
	if got := ExVivo(4); got != 0.25 {
		t.Fatalf("ExVivo(4) = %v", got)
	}
	if !math.IsInf(ExVivo(0), 1) || !math.IsInf(ExVivo(-1), 1) {
		t.Fatal("non-positive MI should map to infinite privacy")
	}
}

func TestInformationLoss(t *testing.T) {
	bits, frac := InformationLoss(300, 19)
	if bits != 281 {
		t.Fatalf("loss bits = %v", bits)
	}
	if math.Abs(frac-281.0/300) > 1e-12 {
		t.Fatalf("loss frac = %v", frac)
	}
	if _, f := InformationLoss(0, 0); f != 0 {
		t.Fatal("zero original MI should give zero fraction")
	}
}

func TestAccuracyLoss(t *testing.T) {
	if got := AccuracyLoss(0.95, 0.935); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("AccuracyLoss = %v, want 1.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean of empty should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of non-positive should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMeasureMINoiseReducesMI(t *testing.T) {
	// End-to-end sanity: I(x, x) > I(x, x+heavy noise).
	rng := tensor.NewRNG(2)
	x := rng.FillNormal(tensor.New(400, 1, 3, 3), 0, 1)
	noisy := x.Clone()
	noise := rng.FillLaplace(tensor.New(400, 1, 3, 3), 0, 4)
	noisy.AddInPlace(noise)
	o := mi.Options{K: 3, Seed: 1}
	clean := MeasureMI(x, x.Clone().Shift(1e-9), o)
	shredded := MeasureMI(x, noisy, o)
	if shredded >= clean {
		t.Fatalf("noise did not reduce MI: clean %v, shredded %v", clean, shredded)
	}
}

func TestMeasureMIMismatchedBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeasureMI(tensor.New(4, 2), tensor.New(5, 2), mi.Options{})
}
