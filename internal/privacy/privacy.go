// Package privacy implements the two privacy notions of the Shredder
// paper: the in vivo notion 1/SNR used to guide noise training (paper
// §2.3), and the ex vivo notion 1/MI used for final evaluation (paper
// §2.2), along with the derived bookkeeping (information loss, accuracy
// loss) that the paper's Table 1 and figures report.
package privacy

import (
	"fmt"
	"math"

	"shredder/internal/mi"
	"shredder/internal/tensor"
)

// SNR returns the paper's signal-to-noise ratio E[a²]/σ²(n), where a is
// the clean activation tensor (or a batch of them) and n the noise tensor.
func SNR(activation, noise *tensor.Tensor) float64 {
	varN := noise.Variance()
	if varN == 0 {
		return math.Inf(1)
	}
	ea2 := activation.SqSum() / float64(activation.Len())
	return ea2 / varN
}

// InVivo returns the in vivo privacy 1/SNR. Zero-variance noise yields 0.
func InVivo(activation, noise *tensor.Tensor) float64 {
	snr := SNR(activation, noise)
	if math.IsInf(snr, 1) {
		return 0
	}
	return 1 / snr
}

// ExVivo returns the ex vivo privacy 1/MI for an MI value in bits.
// Non-positive MI (possible from estimator bias on near-independent data)
// is treated as maximal privacy and mapped to +Inf.
func ExVivo(miBits float64) float64 {
	if miBits <= 0 {
		return math.Inf(1)
	}
	return 1 / miBits
}

// MeasureMI estimates the mutual information, in bits, between a batch of
// inputs [N, ...] and the corresponding transmitted activations [N, ...].
// It uses the permutation-calibrated Kozachenko–Leonenko construction,
// which stays positive for strongly dependent high-dimensional pairs at
// the sample counts the experiments use (see mi.MutualInformationCalibrated).
func MeasureMI(inputs, activations *tensor.Tensor, o mi.Options) float64 {
	if inputs.Dim(0) != activations.Dim(0) {
		panic(fmt.Sprintf("privacy: %d inputs but %d activations", inputs.Dim(0), activations.Dim(0)))
	}
	return mi.MutualInformationCalibrated(mi.FromTensor(inputs), mi.FromTensor(activations), o)
}

// InformationLoss returns the absolute (bits) and relative (fraction)
// reduction from the original MI to the shredded MI — the quantities of
// Table 1 and Figure 3's y-axis.
func InformationLoss(origBits, shreddedBits float64) (lossBits, lossFrac float64) {
	lossBits = origBits - shreddedBits
	if origBits > 0 {
		lossFrac = lossBits / origBits
	}
	return lossBits, lossFrac
}

// AccuracyLoss returns the accuracy drop in percentage points from the
// baseline (no-noise) accuracy to the noisy accuracy, both in [0,1].
func AccuracyLoss(baseline, noisy float64) float64 {
	return (baseline - noisy) * 100
}

// GeoMean returns the geometric mean of positive values — the paper's
// GMean column. Non-positive inputs panic, matching Table 1's domain.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		if v <= 0 {
			panic(fmt.Sprintf("privacy: GeoMean of non-positive value %v", v))
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}
