package experiments

import (
	"fmt"
	"io"
	"sort"

	"shredder/internal/core"
)

// Fig3Point is one dot of Figure 3: the information loss achieved at a
// given accuracy loss.
type Fig3Point struct {
	// NoiseScale and Lambda identify the operating point swept.
	NoiseScale, Lambda float64
	AccLossPct         float64
	InfoLossBits       float64
	ShreddedMI         float64
	InVivo             float64
}

// Fig3Series is the accuracy–privacy frontier of one network.
type Fig3Series struct {
	Benchmark   string
	ZeroLeakage float64 // original MI in bits: the paper's "Zero Leakage" line
	BaselineAcc float64
	Points      []Fig3Point
}

// Fig3Result holds one series per benchmark (the paper's sub-figures a–d).
type Fig3Result struct {
	Series []Fig3Series
}

// fig3Sweep is the ladder of noise operating points traced per network:
// increasing initialization scale and λ push toward more privacy at more
// accuracy loss.
type fig3Op struct {
	scaleMul  float64 // multiplier on the benchmark's tuned scale
	lambdaMul float64 // multiplier on the benchmark's tuned λ
	targetMul float64 // multiplier on the privacy target
}

func fig3Ops(quick bool) []fig3Op {
	if quick {
		return []fig3Op{{0.5, 0.5, 0.5}, {1, 1, 1}, {2, 2, 2}}
	}
	return []fig3Op{
		{0.4, 0.4, 0.4},
		{1, 1, 1},
		{1.7, 1.7, 1.7},
		{2.5, 2.5, 2.5},
	}
}

// Fig3 reproduces Figure 3: for every benchmark, sweep the noise operating
// point from gentle to aggressive and record (accuracy loss, information
// loss) pairs together with the Zero Leakage line (the original MI).
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig3Result{}
	for _, b := range benchmarksFor(cfg) {
		pre, err := cfg.pretrained(b.Spec)
		if err != nil {
			return nil, fmt.Errorf("fig3: %s: %w", b.Spec.Name, err)
		}
		split, err := splitAt(pre, b.Spec.DefaultCut)
		if err != nil {
			return nil, err
		}
		series := Fig3Series{Benchmark: b.Spec.Name, BaselineAcc: pre.TestAcc}
		for i, op := range fig3Ops(cfg.Quick) {
			nc := cfg.noiseConfig(b)
			nc.Scale *= op.scaleMul
			nc.Lambda *= op.lambdaMul
			nc.PrivacyTarget *= op.targetMul
			nc.Seed = cfg.Seed + int64(i)*101
			col := core.Collect(split, pre.Train, nc, cfg.sweepCollectionSize(), cfg.Workers)
			ev := core.Evaluate(split, pre.Test, col, core.EvalConfig{MI: cfg.miOptions(), Seed: cfg.Seed + int64(i)})
			if series.ZeroLeakage == 0 {
				series.ZeroLeakage = ev.OrigMI
			}
			series.Points = append(series.Points, Fig3Point{
				NoiseScale:   nc.Scale,
				Lambda:       nc.Lambda,
				AccLossPct:   ev.AccLossPct,
				InfoLossBits: ev.MILossBits,
				ShreddedMI:   ev.ShreddedMI,
				InVivo:       ev.InVivo,
			})
			cfg.logf("fig3: %s scale=%.2f λ=%.4g → acc loss %.2f%%, info loss %.1f bits",
				b.Spec.Name, nc.Scale, nc.Lambda, ev.AccLossPct, ev.MILossBits)
		}
		sort.Slice(series.Points, func(i, j int) bool {
			return series.Points[i].AccLossPct < series.Points[j].AccLossPct
		})
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render writes the frontier series in the paper's axes (accuracy loss on
// X, information loss in bits on Y, Zero Leakage as reference).
func (r *Fig3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: Accuracy-Privacy trade-off, cut at the last convolution layer.")
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n(%s)  Zero Leakage = %.2f bits, baseline accuracy = %.2f%%\n",
			s.Benchmark, s.ZeroLeakage, 100*s.BaselineAcc)
		fmt.Fprintf(w, "  %14s %20s %16s %10s\n", "AccLoss(%)", "InfoLoss(bits)", "ShreddedMI", "1/SNR")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %14.2f %20.2f %16.2f %10.3f\n",
				p.AccLossPct, p.InfoLossBits, p.ShreddedMI, p.InVivo)
		}
	}
}
