package experiments

import (
	"fmt"
	"io"

	"shredder/internal/core"
	"shredder/internal/model"
)

// Fig4Result holds the training-dynamics traces of Figure 4: in vivo
// privacy and accuracy per iteration for Shredder's loss (orange lines)
// versus privacy-agnostic plain cross-entropy training (black lines), on
// AlexNet cut at the last convolution layer.
type Fig4Result struct {
	Benchmark string
	Shredder  []core.TrainEvent
	Regular   []core.TrainEvent
}

// Fig4 reproduces Figure 4 by training two noise tensors from the same
// Laplace initialization: one with the Shredder loss (λ > 0 with the decay
// knob), one with λ = 0 (the "Privacy Agnostic (Regular)" baseline).
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	name := "alexnet"
	if len(cfg.Networks) == 1 {
		name = cfg.Networks[0] // allow cheaper networks in tests
	}
	b, err := model.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	pre, err := cfg.pretrained(b.Spec)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	split, err := splitAt(pre, b.Spec.DefaultCut)
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{Benchmark: b.Spec.Name}
	base := cfg.noiseConfig(b)
	base.EvalEvery = 5
	if cfg.Quick {
		base.EvalEvery = 2
	}
	// The dynamics need enough iterations for the trends to separate: the
	// λ=0 baseline's noise shrinks gradually under pure CE pressure.
	if base.Epochs < 2 {
		base.Epochs = 2
	}

	cfg.logf("fig4: training %s noise with Shredder loss (λ=%g)", b.Spec.Name, base.Lambda)
	shredderCfg := base
	shredderCfg.Log = nil
	resShredder := core.TrainNoise(split, pre.Train, shredderCfg)
	res.Shredder = resShredder.Events

	cfg.logf("fig4: training %s noise privacy-agnostic (λ=0)", b.Spec.Name)
	regularCfg := base
	regularCfg.Lambda = 0
	regularCfg.PrivacyTarget = 0
	resRegular := core.TrainNoise(split, pre.Train, regularCfg)
	res.Regular = resRegular.Events
	return res, nil
}

// Render writes the two traces side by side: iteration, in vivo privacy
// and batch accuracy for both training modes (the paper's 4a and 4b).
func (r *Fig4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: In vivo privacy and accuracy per training iteration (%s, last conv cut).\n", r.Benchmark)
	fmt.Fprintf(w, "  %10s %16s %16s %14s %14s\n",
		"iteration", "shredder 1/SNR", "regular 1/SNR", "shredder acc", "regular acc")
	n := len(r.Shredder)
	if len(r.Regular) < n {
		n = len(r.Regular)
	}
	for i := 0; i < n; i++ {
		s, g := r.Shredder[i], r.Regular[i]
		fmt.Fprintf(w, "  %10d %16.4f %16.4f %13.1f%% %13.1f%%\n",
			s.Iteration, s.InVivo, g.InVivo, 100*s.BatchAcc, 100*g.BatchAcc)
	}
}

// FinalGap summarizes the headline observation of Figure 4a: the final
// in vivo privacy of Shredder training minus that of regular training.
func (r *Fig4Result) FinalGap() float64 {
	if len(r.Shredder) == 0 || len(r.Regular) == 0 {
		return 0
	}
	return r.Shredder[len(r.Shredder)-1].InVivo - r.Regular[len(r.Regular)-1].InVivo
}
