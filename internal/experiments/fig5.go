package experiments

import (
	"fmt"
	"io"

	"shredder/internal/core"
	"shredder/internal/model"
	"shredder/internal/privacy"
)

// Fig5Point pairs the in vivo privacy a noise level reaches with the ex
// vivo privacy it buys at one cutting point.
type Fig5Point struct {
	ScaleMul float64
	InVivo   float64 // 1/SNR measured on the test set
	ExVivo   float64 // 1/MI measured on the test set
	MIBits   float64
}

// Fig5Series is the in-vivo/ex-vivo trace of one cutting point.
type Fig5Series struct {
	Cut    string
	Points []Fig5Point
}

// Fig5Network holds all cutting-point series of one network (the paper's
// 5a = SVHN, 5b = LeNet).
type Fig5Network struct {
	Benchmark string
	Series    []Fig5Series
}

// Fig5Result aggregates both networks.
type Fig5Result struct {
	Networks []Fig5Network
}

// fig5Cuts returns the cutting points the paper plots for each network.
var fig5Cuts = map[string][]string{
	"svhn":  {"conv0", "conv2", "conv4", "conv6"},
	"lenet": {"conv0", "conv1", "conv2"},
}

// Fig5 reproduces Figure 5: for several cutting points of SVHN and LeNet,
// train noise to increasing levels and record the (in vivo, ex vivo)
// privacy pairs. The paper's observation is that information loss is
// proportional to incurred noise with a consistent slope across layers.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig5Result{}
	networks := []string{"svhn", "lenet"}
	if len(cfg.Networks) > 0 {
		networks = cfg.Networks
	}
	scaleMuls := []float64{0.7, 1.6}
	if cfg.Quick {
		scaleMuls = []float64{0.5, 1.5}
	}
	for _, name := range networks {
		cuts, ok := fig5Cuts[name]
		if !ok {
			return nil, fmt.Errorf("fig5: no cut list for network %q (have svhn, lenet)", name)
		}
		b, err := model.BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		pre, err := cfg.pretrained(b.Spec)
		if err != nil {
			return nil, fmt.Errorf("fig5: %s: %w", name, err)
		}
		net := Fig5Network{Benchmark: name}
		for _, cut := range cuts {
			split, err := splitAt(pre, cut)
			if err != nil {
				return nil, err
			}
			series := Fig5Series{Cut: cut}
			for i, mul := range scaleMuls {
				nc := cfg.noiseConfig(b)
				nc.Scale *= mul
				nc.PrivacyTarget *= mul
				nc.Seed = cfg.Seed + int64(i)*211
				col := core.Collect(split, pre.Train, nc, cfg.sweepCollectionSize(), cfg.Workers)
				ev := core.Evaluate(split, pre.Test, col, core.EvalConfig{MI: cfg.miOptions(), Seed: cfg.Seed + int64(i)})
				series.Points = append(series.Points, Fig5Point{
					ScaleMul: mul,
					InVivo:   ev.InVivo,
					ExVivo:   privacy.ExVivo(ev.ShreddedMI),
					MIBits:   ev.ShreddedMI,
				})
				cfg.logf("fig5: %s %s ×%.1f → in vivo %.3f, ex vivo %.4f (MI %.1f bits)",
					name, cut, mul, ev.InVivo, privacy.ExVivo(ev.ShreddedMI), ev.ShreddedMI)
			}
			net.Series = append(net.Series, series)
		}
		res.Networks = append(res.Networks, net)
	}
	return res, nil
}

// Render writes one block per network with (cut, in vivo, ex vivo) rows.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: In vivo vs ex vivo notion of privacy for different cutting points.")
	for _, net := range r.Networks {
		fmt.Fprintf(w, "\n(%s)\n", net.Benchmark)
		fmt.Fprintf(w, "  %8s %10s %14s %14s %14s\n", "cut", "scale×", "in vivo", "ex vivo", "MI (bits)")
		for _, s := range net.Series {
			for _, p := range s.Points {
				fmt.Fprintf(w, "  %8s %10.1f %14.4f %14.5f %14.2f\n",
					s.Cut, p.ScaleMul, p.InVivo, p.ExVivo, p.MIBits)
			}
		}
	}
}
