package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg runs experiments at CI scale on LeNet only — every code path,
// minimal time.
func quickCfg(t *testing.T, nets ...string) Config {
	t.Helper()
	return Config{Workdir: t.TempDir(), Quick: true, Seed: 7, Networks: nets}
}

func TestTable1QuickLeNet(t *testing.T) {
	res, err := Table1(quickCfg(t, "lenet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Benchmark != "lenet" {
		t.Fatalf("row benchmark %q", row.Benchmark)
	}
	if row.OriginalMI <= 0 {
		t.Fatalf("original MI %v should be positive", row.OriginalMI)
	}
	if row.ShreddedMI >= row.OriginalMI {
		t.Fatalf("shredded MI %v not below original %v", row.ShreddedMI, row.OriginalMI)
	}
	if row.MILossPct <= 0 {
		t.Fatalf("MI loss %v%%", row.MILossPct)
	}
	if row.ParamsPct <= 0 || row.ParamsPct >= 100 {
		t.Fatalf("params ratio %v%%", row.ParamsPct)
	}
	if row.BaselineAcc < 0.3 {
		t.Fatalf("baseline accuracy %v too low", row.BaselineAcc)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "lenet", "MI Loss", "Accuracy Loss", "GMean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig3QuickLeNet(t *testing.T) {
	res, err := Fig3(quickCfg(t, "lenet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("got %d series", len(res.Series))
	}
	s := res.Series[0]
	if len(s.Points) != len(fig3Ops(true)) {
		t.Fatalf("got %d points", len(s.Points))
	}
	if s.ZeroLeakage <= 0 {
		t.Fatalf("zero leakage %v", s.ZeroLeakage)
	}
	// Points must be sorted by accuracy loss.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].AccLossPct < s.Points[i-1].AccLossPct {
			t.Fatal("points not sorted by accuracy loss")
		}
	}
	// Information loss should not exceed the zero-leakage bound by much
	// (estimator noise aside).
	for _, p := range s.Points {
		if p.InfoLossBits > s.ZeroLeakage*1.5 {
			t.Fatalf("info loss %v far beyond zero leakage %v", p.InfoLossBits, s.ZeroLeakage)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Zero Leakage") {
		t.Fatal("render missing zero leakage line")
	}
}

func TestFig4QuickLeNet(t *testing.T) {
	res, err := Fig4(quickCfg(t, "lenet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shredder) == 0 || len(res.Regular) == 0 {
		t.Fatal("missing traces")
	}
	// Shredder's loss must leave more noise in play than regular training:
	// final in vivo privacy gap positive (Figure 4a's separation).
	if res.FinalGap() <= 0 {
		t.Fatalf("final in vivo gap %v, want positive", res.FinalGap())
	}
	// Regular training's in vivo privacy must decline from its peak (the
	// black line of Fig. 4a trends down once CE pressure sets in).
	peak, last := 0.0, res.Regular[len(res.Regular)-1].InVivo
	for _, e := range res.Regular {
		if e.InVivo > peak {
			peak = e.InVivo
		}
	}
	if last >= peak {
		t.Fatalf("regular training privacy never declined: peak %v, last %v", peak, last)
	}
	// Shredder's trace must end above where it started (the orange line).
	if res.Shredder[len(res.Shredder)-1].InVivo <= res.Shredder[0].InVivo {
		t.Fatal("shredder training privacy did not increase")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("render header missing")
	}
}

func TestFig5QuickLeNet(t *testing.T) {
	res, err := Fig5(quickCfg(t, "lenet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Networks) != 1 {
		t.Fatalf("got %d networks", len(res.Networks))
	}
	net := res.Networks[0]
	if len(net.Series) != 3 { // lenet: conv0, conv1, conv2
		t.Fatalf("got %d series", len(net.Series))
	}
	for _, s := range net.Series {
		if len(s.Points) == 0 {
			t.Fatalf("cut %s has no points", s.Cut)
		}
		// More noise must give at least as much in vivo privacy.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].InVivo <= s.Points[i-1].InVivo {
				t.Fatalf("cut %s: in vivo not increasing with scale", s.Cut)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "conv2") {
		t.Fatal("render missing cut rows")
	}
}

func TestFig5UnknownNetworkFails(t *testing.T) {
	if _, err := Fig5(quickCfg(t, "cifar")); err == nil {
		t.Fatal("fig5 should reject networks without a cut list")
	}
}

func TestFig6QuickLeNet(t *testing.T) {
	res, err := Fig6(quickCfg(t, "lenet"))
	if err != nil {
		t.Fatal(err)
	}
	net := res.Networks[0]
	if len(net.Points) != 3 {
		t.Fatalf("got %d points", len(net.Points))
	}
	chosen := 0
	for i, p := range net.Points {
		if p.Chosen {
			chosen++
		}
		if p.CostKMACMB <= 0 {
			t.Fatalf("point %s has non-positive cost", p.Cut)
		}
		if i > 0 && p.EdgeMACs <= net.Points[i-1].EdgeMACs {
			t.Fatal("edge MACs not increasing with depth")
		}
	}
	if chosen != 1 {
		t.Fatalf("%d chosen cuts, want exactly 1", chosen)
	}
	if !net.Points[len(net.Points)-1].Chosen {
		t.Fatal("chosen cut should be the deepest (lenet conv2)")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Shredder's cutting point") {
		t.Fatal("render missing chosen-cut marker")
	}
}

func TestBenchmarksForFilter(t *testing.T) {
	if got := len(benchmarksFor(Config{})); got != 4 {
		t.Fatalf("unfiltered benchmarks = %d", got)
	}
	got := benchmarksFor(Config{Networks: []string{"svhn", "lenet"}})
	if len(got) != 2 {
		t.Fatalf("filtered benchmarks = %d", len(got))
	}
}

func TestFittedQuickLeNet(t *testing.T) {
	res, err := Fitted(quickCfg(t, "lenet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want stored/fitted/fitted-mul", len(res.Rows))
	}
	modes := map[string]FittedRow{}
	for _, row := range res.Rows {
		if row.Benchmark != "lenet" || row.Members <= 0 {
			t.Fatalf("bad row %+v", row)
		}
		modes[row.Mode] = row
	}
	for _, m := range []string{"stored", "fitted", "fitted-mul"} {
		if _, ok := modes[m]; !ok {
			t.Fatalf("mode %q missing (have %v)", m, res.Rows)
		}
	}
	// Fitted mode keeps sketches + orderings resident, never the K
	// trained float64 tensors, so it must come in under stored mode.
	if modes["fitted"].MemoryBytes >= modes["stored"].MemoryBytes {
		t.Fatalf("fitted %d B not below stored %d B",
			modes["fitted"].MemoryBytes, modes["stored"].MemoryBytes)
	}

	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"stored", "fitted", "fitted-mul", "resident B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows", lines)
	}
}
