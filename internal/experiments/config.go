// Package experiments regenerates every table and figure of the Shredder
// paper's evaluation (§3): Table 1 (headline MI/accuracy results), Figure 3
// (accuracy–privacy trade-off frontiers), Figure 4 (noise-training
// dynamics, Shredder vs privacy-agnostic), Figure 5 (in vivo vs ex vivo
// privacy across cutting points), and Figure 6 (cutting-point
// computation/communication cost vs privacy). Each runner returns a
// structured result and renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"

	"shredder/internal/core"
	"shredder/internal/mi"
	"shredder/internal/model"
)

// Config controls an experiment run.
type Config struct {
	// Workdir caches pre-trained weights between runs ("" = no caching).
	Workdir string
	// Quick shrinks datasets, training length and noise-collection size to
	// CI scale. Quick runs exercise every code path but their numbers are
	// noisier.
	Quick bool
	// Seed drives everything; a fixed seed reproduces a run exactly.
	Seed int64
	// Networks restricts runs to the named benchmarks (nil = all four).
	Networks []string
	// Workers bounds how many noise tensors train concurrently per
	// collection (0 = all cores, 1 = sequential). Collections are
	// byte-identical regardless of the worker count, so results never
	// depend on it.
	Workers int
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
}

// benchmarksFor returns the benchmarks selected by cfg.Networks.
func benchmarksFor(cfg Config) []model.Benchmark {
	all := model.Benchmarks()
	if len(cfg.Networks) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, n := range cfg.Networks {
		want[n] = true
	}
	var out []model.Benchmark
	for _, b := range all {
		if want[b.Spec.Name] {
			out = append(out, b)
		}
	}
	return out
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// trainConfig returns the pre-training config for a benchmark under this
// experiment config.
func (c Config) trainConfig(spec model.Spec) model.TrainConfig {
	tc := model.TrainConfig{Seed: c.Seed, Progress: c.Progress}
	if c.Quick {
		tc.TrainN, tc.TestN, tc.Epochs = 500, 250, 2
		if spec.Name == "alexnet" {
			tc.TrainN, tc.TestN, tc.Epochs = 400, 200, 2
		}
	}
	return tc
}

// pretrained trains (or loads from cache) a benchmark network.
func (c Config) pretrained(spec model.Spec) (*model.Pretrained, error) {
	tc := c.trainConfig(spec)
	if c.Workdir != "" {
		return model.TrainCached(spec, tc, c.Workdir)
	}
	return model.Train(spec, tc)
}

// splitAt builds a core.Split for a pretrained network at a named cut.
func splitAt(pre *model.Pretrained, cutName string) (*core.Split, error) {
	layer, err := pre.Spec.CutLayer(cutName)
	if err != nil {
		return nil, err
	}
	return core.NewSplit(pre.Net, layer, pre.Spec.Dataset.SampleShape())
}

// noiseConfig returns the benchmark's tuned noise-training config, scaled
// down in quick mode.
func (c Config) noiseConfig(b model.Benchmark) core.NoiseConfig {
	nc := core.NoiseConfig{
		Mu:            b.NoiseMu,
		Scale:         b.NoiseScale,
		Lambda:        b.Lambda,
		PrivacyTarget: b.PrivacyTarget,
		LR:            b.NoiseLR,
		Epochs:        b.NoiseEpochs,
		Seed:          c.Seed,
	}
	if c.Quick {
		// Quick mode shrinks datasets ~4x, so the full-scale noise inits
		// (tuned for long recovery runs) would swamp the short training:
		// cap the starting noise and privacy target alongside the epochs.
		nc.Epochs = minFloat(nc.Epochs, 1)
		nc.Scale = minFloat(nc.Scale, 2)
		nc.PrivacyTarget = minFloat(nc.PrivacyTarget, 4)
	}
	return nc
}

// collectionSize is the number of noise tensors trained per collection for
// the headline Table-1 evaluation.
func (c Config) collectionSize() int {
	if c.Quick {
		return 3
	}
	return 8
}

// sweepCollectionSize is the (smaller) collection used by the figure
// sweeps, which train many collections.
func (c Config) sweepCollectionSize() int {
	return 3
}

// attackSamples is how many test inputs the fitted experiment's inversion
// adversary attacks per noise source.
func (c Config) attackSamples() int {
	if c.Quick {
		return 1
	}
	return 2
}

// attackSteps bounds the inversion adversary's gradient descent.
func (c Config) attackSteps() int {
	if c.Quick {
		return 100
	}
	return 250
}

// miOptions returns the MI estimator configuration for evaluation.
func (c Config) miOptions() mi.Options {
	o := mi.Options{K: 3, MaxSamples: 256, Seed: c.Seed}
	if c.Quick {
		o.MaxSamples = 128
	}
	return o
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
