package experiments

import (
	"fmt"
	"io"

	"shredder/internal/core"
	"shredder/internal/cost"
	"shredder/internal/model"
	"shredder/internal/privacy"
)

// Fig6Point is one cutting point plotted in Figure 6: its edge-side
// computation × communication cost against the ex vivo privacy it offers.
type Fig6Point struct {
	Cut        string
	EdgeMACs   int64
	CommBytes  int64
	CostKMACMB float64 // KiloMAC × MB, the paper's x-axis
	ExVivo     float64 // 1/MI, the paper's y-axis
	MIBits     float64
	AccLossPct float64
	Chosen     bool // Shredder's cutting point for this network
}

// Fig6Network holds the cost/privacy trade-off of one network.
type Fig6Network struct {
	Benchmark string
	Points    []Fig6Point
}

// Fig6Result aggregates both networks of the figure (6a = SVHN, 6b = LeNet).
type Fig6Result struct {
	Networks []Fig6Network
}

// Fig6 reproduces Figure 6: evaluate every cutting point of SVHN and LeNet
// with the tuned noise configuration, pairing the analytic cost model with
// the measured ex vivo privacy, and flag Shredder's chosen (deepest) cut.
// The paper notes accuracy loss stays under ~2% across cuts; the per-point
// accuracy loss is recorded so Render can show it.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig6Result{}
	networks := []string{"svhn", "lenet"}
	if len(cfg.Networks) > 0 {
		networks = cfg.Networks
	}
	for _, name := range networks {
		b, err := model.BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		pre, err := cfg.pretrained(b.Spec)
		if err != nil {
			return nil, fmt.Errorf("fig6: %s: %w", name, err)
		}
		costs, err := cost.CutCosts(b.Spec)
		if err != nil {
			return nil, err
		}
		costByCut := map[string]cost.CutCost{}
		for _, c := range costs {
			costByCut[c.Cut] = c
		}
		net := Fig6Network{Benchmark: name}
		for i, cp := range b.Spec.CutPoints {
			split, err := splitAt(pre, cp.Name)
			if err != nil {
				return nil, err
			}
			nc := cfg.noiseConfig(b)
			nc.Seed = cfg.Seed + int64(i)*307
			col := core.Collect(split, pre.Train, nc, cfg.sweepCollectionSize(), cfg.Workers)
			ev := core.Evaluate(split, pre.Test, col, core.EvalConfig{MI: cfg.miOptions(), Seed: cfg.Seed + int64(i)})
			cc := costByCut[cp.Name]
			net.Points = append(net.Points, Fig6Point{
				Cut:        cp.Name,
				EdgeMACs:   cc.EdgeMACs,
				CommBytes:  cc.CommBytes,
				CostKMACMB: cc.Product,
				ExVivo:     privacy.ExVivo(ev.ShreddedMI),
				MIBits:     ev.ShreddedMI,
				AccLossPct: ev.AccLossPct,
				Chosen:     cp.Name == b.Spec.DefaultCut,
			})
			cfg.logf("fig6: %s %s cost %.4f KMAC·MB, ex vivo %.5f, acc loss %.2f%%",
				name, cp.Name, cc.Product, privacy.ExVivo(ev.ShreddedMI), ev.AccLossPct)
		}
		res.Networks = append(res.Networks, net)
	}
	return res, nil
}

// Render writes one block per network, marking Shredder's cutting point.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: Computation/communication costs and privacy across cutting points.")
	for _, net := range r.Networks {
		fmt.Fprintf(w, "\n(%s)\n", net.Benchmark)
		fmt.Fprintf(w, "  %8s %14s %12s %16s %12s %12s\n",
			"cut", "edge MACs", "comm bytes", "KMAC×MB", "ex vivo", "acc loss")
		for _, p := range net.Points {
			mark := " "
			if p.Chosen {
				mark = "*"
			}
			fmt.Fprintf(w, "%s %8s %14d %12d %16.4f %12.5f %11.2f%%\n",
				mark, p.Cut, p.EdgeMACs, p.CommBytes, p.CostKMACMB, p.ExVivo, p.AccLossPct)
		}
		fmt.Fprintln(w, "  (* = Shredder's cutting point)")
	}
}
