package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"shredder/internal/core"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestTable1CSV(t *testing.T) {
	r := &Table1Result{Rows: []Table1Row{
		{Benchmark: "lenet", OriginalMI: 300, ShreddedMI: 19, MILossPct: 93.7,
			BaselineAcc: 0.99, NoisyAcc: 0.98, AccLossPct: 1.0, ParamsPct: 0.19, NoiseEpochs: 6},
	}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1][0] != "lenet" || rows[1][1] != "300" {
		t.Fatalf("row = %v", rows[1])
	}
}

func TestFig3CSV(t *testing.T) {
	r := &Fig3Result{Series: []Fig3Series{{
		Benchmark: "svhn", ZeroLeakage: 19.2,
		Points: []Fig3Point{{NoiseScale: 1, Lambda: 0.001, AccLossPct: 1.1, InfoLossBits: 12}},
	}}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 || rows[1][0] != "svhn" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFig4CSVTruncatesToShorterTrace(t *testing.T) {
	mk := func(n int) []core.TrainEvent {
		out := make([]core.TrainEvent, n)
		for i := range out {
			out[i] = core.TrainEvent{Iteration: i, InVivo: float64(i), BatchAcc: 0.5}
		}
		return out
	}
	r := &Fig4Result{Shredder: mk(3), Regular: mk(2)}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 3 { // header + min(3,2) data rows
		t.Fatalf("got %d rows, want 3", len(rows))
	}
}

func TestFig5Fig6CSV(t *testing.T) {
	f5 := &Fig5Result{Networks: []Fig5Network{{
		Benchmark: "lenet",
		Series:    []Fig5Series{{Cut: "conv0", Points: []Fig5Point{{ScaleMul: 1, InVivo: 0.5, ExVivo: 0.01, MIBits: 100}}}},
	}}}
	var buf bytes.Buffer
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, buf.String()); len(rows) != 2 || rows[1][1] != "conv0" {
		t.Fatalf("fig5 rows = %v", rows)
	}
	f6 := &Fig6Result{Networks: []Fig6Network{{
		Benchmark: "svhn",
		Points:    []Fig6Point{{Cut: "conv6", EdgeMACs: 100, CommBytes: 256, CostKMACMB: 0.1, Chosen: true}},
	}}}
	buf.Reset()
	if err := f6.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 2 || rows[1][8] != "true" {
		t.Fatalf("fig6 rows = %v", rows)
	}
}
