package experiments

import (
	"fmt"
	"io"
	"strings"

	"shredder/internal/core"
	"shredder/internal/privacy"
)

// Table1Row is one column of the paper's Table 1 (the paper lays networks
// out as columns; we render them as rows).
type Table1Row struct {
	Benchmark   string
	OriginalMI  float64 // I(x; a) in bits
	ShreddedMI  float64 // I(x; a′) in bits
	MILossPct   float64
	BaselineAcc float64 // fraction
	NoisyAcc    float64 // fraction
	AccLossPct  float64 // percentage points
	ParamsPct   float64 // noise params / model params × 100
	NoiseEpochs float64 // epochs of noise training actually run
	InVivo      float64
}

// Table1Result aggregates all benchmarks plus the geometric-mean summary.
type Table1Result struct {
	Rows           []Table1Row
	GMeanMILossPct float64
	MeanAccLossPct float64
	GMeanParamsPct float64
	GMeanEpochs    float64
}

// Table1 reproduces the paper's Table 1: for every benchmark network, cut
// at the last convolution layer, train a noise collection with the tuned
// hyperparameters, and measure original vs shredded MI and accuracy loss.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	res := &Table1Result{}
	for _, b := range benchmarksFor(cfg) {
		cfg.logf("table1: preparing %s", b.Spec.Name)
		pre, err := cfg.pretrained(b.Spec)
		if err != nil {
			return nil, fmt.Errorf("table1: %s: %w", b.Spec.Name, err)
		}
		split, err := splitAt(pre, b.Spec.DefaultCut)
		if err != nil {
			return nil, err
		}
		nc := cfg.noiseConfig(b)
		cfg.logf("table1: training %d noise tensors for %s (λ=%g, b=%g)",
			cfg.collectionSize(), b.Spec.Name, nc.Lambda, nc.Scale)
		col := core.Collect(split, pre.Train, nc, cfg.collectionSize(), cfg.Workers)
		ev := core.Evaluate(split, pre.Test, col, core.EvalConfig{MI: cfg.miOptions(), Seed: cfg.Seed})

		noiseParams := 1
		for _, d := range split.ActivationShape() {
			noiseParams *= d
		}
		row := Table1Row{
			Benchmark:   b.Spec.Name,
			OriginalMI:  ev.OrigMI,
			ShreddedMI:  ev.ShreddedMI,
			MILossPct:   ev.MILossPct,
			BaselineAcc: ev.BaselineAcc,
			NoisyAcc:    ev.NoisyAcc,
			AccLossPct:  ev.AccLossPct,
			ParamsPct:   100 * float64(noiseParams) / float64(pre.Net.ParamCount()),
			NoiseEpochs: nc.Epochs,
			InVivo:      ev.InVivo,
		}
		cfg.logf("table1: %s MI %.1f → %.1f bits (−%.1f%%), acc %.1f%% → %.1f%%",
			row.Benchmark, row.OriginalMI, row.ShreddedMI, row.MILossPct,
			100*row.BaselineAcc, 100*row.NoisyAcc)
		res.Rows = append(res.Rows, row)
	}

	var miLoss, params, epochs []float64
	var accSum float64
	for _, r := range res.Rows {
		if r.MILossPct > 0 {
			miLoss = append(miLoss, r.MILossPct)
		}
		params = append(params, r.ParamsPct)
		epochs = append(epochs, r.NoiseEpochs)
		accSum += r.AccLossPct
	}
	if len(miLoss) > 0 {
		res.GMeanMILossPct = privacy.GeoMean(miLoss)
	}
	res.GMeanParamsPct = privacy.GeoMean(params)
	res.GMeanEpochs = privacy.GeoMean(epochs)
	if len(res.Rows) > 0 {
		res.MeanAccLossPct = accSum / float64(len(res.Rows))
	}
	return res, nil
}

// Render writes the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Summary of the experimental results of Shredder for the benchmark networks.")
	fmt.Fprintf(w, "%-28s", "Benchmark")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%12s", row.Benchmark)
	}
	fmt.Fprintf(w, "%12s\n", "GMean")
	line := func(label string, f func(Table1Row) string, gmean string) {
		fmt.Fprintf(w, "%-28s", label)
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%12s", f(row))
		}
		fmt.Fprintf(w, "%12s\n", gmean)
	}
	line("Original MI (bits)", func(x Table1Row) string { return fmt.Sprintf("%.2f", x.OriginalMI) }, "-")
	line("Shredded MI (bits)", func(x Table1Row) string { return fmt.Sprintf("%.2f", x.ShreddedMI) }, "-")
	line("MI Loss", func(x Table1Row) string { return fmt.Sprintf("%.2f%%", x.MILossPct) },
		fmt.Sprintf("%.1f%%", r.GMeanMILossPct))
	line("Accuracy Loss", func(x Table1Row) string { return fmt.Sprintf("%.2f%%", x.AccLossPct) },
		fmt.Sprintf("%.2f%%", r.MeanAccLossPct))
	line("Params over Model Size", func(x Table1Row) string { return fmt.Sprintf("%.2f%%", x.ParamsPct) },
		fmt.Sprintf("%.2f%%", r.GMeanParamsPct))
	line("Epochs of Noise Training", func(x Table1Row) string { return fmt.Sprintf("%.1f", x.NoiseEpochs) },
		fmt.Sprintf("%.2f", r.GMeanEpochs))
	fmt.Fprintln(w, strings.Repeat("-", 28+12*(len(r.Rows)+1)))
}
