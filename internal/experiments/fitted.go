package experiments

import (
	"fmt"
	"io"
	"strings"

	"shredder/internal/attack"
	"shredder/internal/core"
	"shredder/internal/noisedist"
	"shredder/internal/tensor"
)

// FittedRow is one (benchmark, noise mode) evaluation: stored replay of
// the trained collection, fresh sampling from the fitted distributions, or
// the fitted multiplicative variant.
type FittedRow struct {
	Benchmark   string
	Mode        string // stored | fitted | fitted-mul
	Cut         string
	BaselineAcc float64 // fraction
	NoisyAcc    float64 // fraction
	AccLossPct  float64 // percentage points
	OriginalMI  float64 // I(x; a) in bits
	ShreddedMI  float64 // I(x; a′) in bits
	MILossPct   float64
	InVivo      float64 // mean in vivo 1/SNR over the evaluation
	Members     int     // trained members behind the source
	MemoryBytes int     // resident noise-source size
	InvCleanMSE float64 // inversion-attack input MSE from clean activations
	InvShredMSE float64 // inversion-attack input MSE against this source's draws
}

// FittedResult aggregates the stored-vs-fitted-vs-multiplicative
// comparison across benchmarks.
type FittedResult struct {
	Rows []FittedRow
}

// Fitted compares the three noise deployment modes on each benchmark at
// its default cut. The stored and fitted rows share one trained additive
// collection — the fitted source is literally a fit of the stored members,
// so the accuracy gap isolates the cost of sampling fresh noise instead of
// replaying trained tensors. The fitted-mul row trains its own collection
// with the joint a' = a⊙w + n objective.
func Fitted(cfg Config) (*FittedResult, error) {
	cfg = cfg.withDefaults()
	res := &FittedResult{}
	for _, b := range benchmarksFor(cfg) {
		cfg.logf("fitted: preparing %s", b.Spec.Name)
		pre, err := cfg.pretrained(b.Spec)
		if err != nil {
			return nil, fmt.Errorf("fitted: %s: %w", b.Spec.Name, err)
		}
		split, err := splitAt(pre, b.Spec.DefaultCut)
		if err != nil {
			return nil, err
		}
		nc := cfg.noiseConfig(b)
		cfg.logf("fitted: training %d additive noise tensors for %s", cfg.collectionSize(), b.Spec.Name)
		col := core.Collect(split, pre.Train, nc, cfg.collectionSize(), cfg.Workers)
		fit, err := core.FitCollection(col, noisedist.Laplace)
		if err != nil {
			return nil, fmt.Errorf("fitted: %s: %w", b.Spec.Name, err)
		}

		mulNC := nc
		mulNC.Multiplicative = true
		cfg.logf("fitted: training %d multiplicative (w, n) pairs for %s", cfg.collectionSize(), b.Spec.Name)
		mulCol := core.Collect(split, pre.Train, mulNC, cfg.collectionSize(), cfg.Workers)
		mulFit, err := core.FitCollection(mulCol, noisedist.Laplace)
		if err != nil {
			return nil, fmt.Errorf("fitted: %s: %w", b.Spec.Name, err)
		}

		elems := tensor.Volume(split.ActivationShape())
		for _, src := range []struct {
			source  core.NoiseSource
			members int
			bytes   int
		}{
			{col, col.Len(), 8 * elems * col.Len()},
			{fit, col.Len(), fit.MemoryBytes()},
			{mulFit, mulCol.Len(), mulFit.MemoryBytes()},
		} {
			ev := core.Evaluate(split, pre.Test, src.source, core.EvalConfig{MI: cfg.miOptions(), Seed: cfg.Seed})
			// The inversion adversary sees exactly what the serving path
			// would transmit under this mode: a stored replay or a fresh
			// per-query draw. Fresh sampling must resist no worse.
			invClean, invShred := attack.Evaluate(split, pre.Test.Images, src.source,
				cfg.attackSamples(), attack.Config{Steps: cfg.attackSteps(), Seed: cfg.Seed})
			row := FittedRow{
				Benchmark:   b.Spec.Name,
				Mode:        src.source.Mode(),
				Cut:         b.Spec.DefaultCut,
				BaselineAcc: ev.BaselineAcc,
				NoisyAcc:    ev.NoisyAcc,
				AccLossPct:  ev.AccLossPct,
				OriginalMI:  ev.OrigMI,
				ShreddedMI:  ev.ShreddedMI,
				MILossPct:   ev.MILossPct,
				InVivo:      ev.InVivo,
				Members:     src.members,
				MemoryBytes: src.bytes,
				InvCleanMSE: invClean,
				InvShredMSE: invShred,
			}
			cfg.logf("fitted: %s %-10s acc %.1f%% → %.1f%%, MI %.2f → %.2f bits, 1/SNR %.3f, %d B resident, inversion MSE %.3f → %.3f",
				row.Benchmark, row.Mode, 100*row.BaselineAcc, 100*row.NoisyAcc,
				row.OriginalMI, row.ShreddedMI, row.InVivo, row.MemoryBytes,
				row.InvCleanMSE, row.InvShredMSE)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render writes the comparison as a per-benchmark table.
func (r *FittedResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fitted noise distributions: stored replay vs fresh per-query sampling vs multiplicative variant.")
	fmt.Fprintln(w, "inv MSE: inversion-attack input reconstruction error, clean activations → this source's draws (higher = better privacy).")
	fmt.Fprintf(w, "%-10s %-11s %-8s %9s %9s %9s %9s %9s %8s %8s %12s %9s %9s\n",
		"benchmark", "mode", "cut", "base acc", "noisy acc", "acc loss", "orig MI", "shred MI", "1/SNR", "members", "resident B", "inv clean", "inv shred")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-11s %-8s %8.2f%% %8.2f%% %8.2f%% %9.2f %9.2f %8.3f %8d %12d %9.3f %9.3f\n",
			row.Benchmark, row.Mode, row.Cut,
			100*row.BaselineAcc, 100*row.NoisyAcc, row.AccLossPct,
			row.OriginalMI, row.ShreddedMI, row.InVivo, row.Members, row.MemoryBytes,
			row.InvCleanMSE, row.InvShredMSE)
	}
	fmt.Fprintln(w, strings.Repeat("-", 130))
}
