package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the Table-1 rows as CSV for downstream plotting.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"benchmark", "original_mi_bits", "shredded_mi_bits", "mi_loss_pct",
		"baseline_acc", "noisy_acc", "acc_loss_pct", "params_pct", "noise_epochs", "in_vivo",
	}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			row.Benchmark,
			f(row.OriginalMI), f(row.ShreddedMI), f(row.MILossPct),
			f(row.BaselineAcc), f(row.NoisyAcc), f(row.AccLossPct),
			f(row.ParamsPct), f(row.NoiseEpochs), f(row.InVivo),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits each frontier point as one CSV row.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"benchmark", "zero_leakage_bits", "noise_scale", "lambda",
		"acc_loss_pct", "info_loss_bits", "shredded_mi_bits", "in_vivo",
	}); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if err := cw.Write([]string{
				s.Benchmark, f(s.ZeroLeakage), f(p.NoiseScale), f(p.Lambda),
				f(p.AccLossPct), f(p.InfoLossBits), f(p.ShreddedMI), f(p.InVivo),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits the paired training traces, one row per evaluation point.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"iteration", "shredder_invivo", "regular_invivo", "shredder_acc", "regular_acc",
	}); err != nil {
		return err
	}
	n := len(r.Shredder)
	if len(r.Regular) < n {
		n = len(r.Regular)
	}
	for i := 0; i < n; i++ {
		s, g := r.Shredder[i], r.Regular[i]
		if err := cw.Write([]string{
			strconv.Itoa(s.Iteration), f(s.InVivo), f(g.InVivo), f(s.BatchAcc), f(g.BatchAcc),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits each (cut, level) privacy pair as one row.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"benchmark", "cut", "scale_mul", "in_vivo", "ex_vivo", "mi_bits"}); err != nil {
		return err
	}
	for _, net := range r.Networks {
		for _, s := range net.Series {
			for _, p := range s.Points {
				if err := cw.Write([]string{
					net.Benchmark, s.Cut, f(p.ScaleMul), f(p.InVivo), f(p.ExVivo), f(p.MIBits),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteCSV emits each cutting point's cost/privacy pair as one row.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"benchmark", "cut", "edge_macs", "comm_bytes", "kmac_x_mb", "ex_vivo", "mi_bits", "acc_loss_pct", "chosen",
	}); err != nil {
		return err
	}
	for _, net := range r.Networks {
		for _, p := range net.Points {
			if err := cw.Write([]string{
				net.Benchmark, p.Cut, strconv.FormatInt(p.EdgeMACs, 10),
				strconv.FormatInt(p.CommBytes, 10), f(p.CostKMACMB),
				f(p.ExVivo), f(p.MIBits), f(p.AccLossPct), strconv.FormatBool(p.Chosen),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits one row per (benchmark, noise mode) evaluation.
func (r *FittedResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"benchmark", "mode", "cut", "baseline_acc", "noisy_acc", "acc_loss_pct",
		"original_mi_bits", "shredded_mi_bits", "mi_loss_pct", "in_vivo", "members", "memory_bytes",
		"inversion_clean_mse", "inversion_shredded_mse",
	}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			row.Benchmark, row.Mode, row.Cut,
			f(row.BaselineAcc), f(row.NoisyAcc), f(row.AccLossPct),
			f(row.OriginalMI), f(row.ShreddedMI), f(row.MILossPct), f(row.InVivo),
			strconv.Itoa(row.Members), strconv.Itoa(row.MemoryBytes),
			f(row.InvCleanMSE), f(row.InvShredMSE),
		}); err != nil {
			return err
		}
	}
	return nil
}

// f formats a float compactly for CSV.
func f(v float64) string { return fmt.Sprintf("%g", v) }
