// Package data provides the seeded, procedural datasets this reproduction
// uses in place of MNIST, CIFAR-10, SVHN and ImageNet, which are not
// available offline. Each generator produces class-conditional images with
// enough intra-class variation (affine jitter, texture, clutter, sensor
// noise) that the benchmark networks must learn genuine features, and the
// input/activation mutual information the paper measures is non-trivial.
//
// All generation is deterministic given a seed; the same seed always yields
// the same dataset, which keeps experiments reproducible.
package data

import (
	"fmt"

	"shredder/internal/tensor"
)

// Dataset is an in-memory labelled image collection with images stored as a
// single [N, C, H, W] tensor.
type Dataset struct {
	Name    string
	Classes int
	Images  *tensor.Tensor
	Labels  []int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Labels) }

// SampleShape returns the per-sample [C,H,W] shape.
func (d *Dataset) SampleShape() []int { return d.Images.Shape()[1:] }

// Image returns the i-th image as a shared-storage tensor.
func (d *Dataset) Image(i int) *tensor.Tensor { return d.Images.Slice(i) }

// Subset returns a dataset view containing the given indices (deep copy of
// the selected images).
func (d *Dataset) Subset(idx []int) *Dataset {
	shape := append([]int{len(idx)}, d.SampleShape()...)
	img := tensor.New(shape...)
	labels := make([]int, len(idx))
	for i, j := range idx {
		img.Slice(i).CopyFrom(d.Image(j))
		labels[i] = d.Labels[j]
	}
	return &Dataset{Name: d.Name, Classes: d.Classes, Images: img, Labels: labels}
}

// Split partitions the dataset into a training set of trainN samples and a
// test set of the remainder, after a seeded shuffle.
func (d *Dataset) Split(trainN int, seed int64) (train, test *Dataset) {
	if trainN < 0 || trainN > d.N() {
		panic(fmt.Sprintf("data: Split trainN=%d out of range for %d samples", trainN, d.N()))
	}
	perm := tensor.NewRNG(seed).Perm(d.N())
	return d.Subset(perm[:trainN]), d.Subset(perm[trainN:])
}

// Shuffle returns a shuffled copy of the dataset.
func (d *Dataset) Shuffle(seed int64) *Dataset {
	return d.Subset(tensor.NewRNG(seed).Perm(d.N()))
}

// Batch is one minibatch: images [B, C, H, W] plus labels.
type Batch struct {
	Images *tensor.Tensor
	Labels []int
}

// Batches splits the dataset into consecutive minibatches of at most size
// samples. The final batch may be smaller. Batch images are deep copies so
// callers may mutate them (e.g. to add noise) without corrupting the
// dataset.
func (d *Dataset) Batches(size int) []Batch {
	if size <= 0 {
		panic("data: batch size must be positive")
	}
	var out []Batch
	for lo := 0; lo < d.N(); lo += size {
		hi := lo + size
		if hi > d.N() {
			hi = d.N()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		sub := d.Subset(idx)
		out = append(out, Batch{Images: sub.Images, Labels: sub.Labels})
	}
	return out
}

// ClassCounts returns a histogram of labels, for balance checks.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Labels {
		counts[y]++
	}
	return counts
}

// Normalize shifts and scales all pixels in place to zero mean and unit
// standard deviation across the whole dataset, returning the applied
// (mean, std) so test sets can reuse training statistics.
func (d *Dataset) Normalize() (mean, std float64) {
	mean = d.Images.Mean()
	std = d.Images.Std()
	if std == 0 {
		std = 1
	}
	d.ApplyNormalization(mean, std)
	return mean, std
}

// ApplyNormalization applies a precomputed (mean, std) to the dataset.
func (d *Dataset) ApplyNormalization(mean, std float64) {
	d.Images.Shift(-mean)
	d.Images.Scale(1 / std)
}
