package data

import (
	"math"
	"testing"

	"shredder/internal/tensor"
)

func allGenerators() []Generator {
	return []Generator{Digits{}, Objects{}, HouseNumbers{}, TinyScenes{}}
}

func TestGeneratorsBasicContract(t *testing.T) {
	for _, g := range allGenerators() {
		ds := g.Generate(40, 1)
		if ds.N() != 40 {
			t.Fatalf("%s: N = %d", g.Name(), ds.N())
		}
		if !tensor.ShapeEq(ds.SampleShape(), g.SampleShape()) {
			t.Fatalf("%s: sample shape %v, want %v", g.Name(), ds.SampleShape(), g.SampleShape())
		}
		for _, y := range ds.Labels {
			if y < 0 || y >= g.Classes() {
				t.Fatalf("%s: label %d out of range", g.Name(), y)
			}
		}
		// Pixel range before normalization is [0,1].
		if ds.Images.Min() < 0 || ds.Images.Max() > 1 {
			t.Fatalf("%s: pixels outside [0,1]: [%v, %v]", g.Name(), ds.Images.Min(), ds.Images.Max())
		}
		if !ds.Images.AllFinite() {
			t.Fatalf("%s: non-finite pixels", g.Name())
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range allGenerators() {
		a := g.Generate(16, 99)
		b := g.Generate(16, 99)
		if !tensor.Equal(a.Images, b.Images) {
			t.Fatalf("%s: same seed produced different images", g.Name())
		}
		c := g.Generate(16, 100)
		if tensor.Equal(a.Images, c.Images) {
			t.Fatalf("%s: different seeds produced identical images", g.Name())
		}
	}
}

func TestGeneratorsBalancedLabels(t *testing.T) {
	for _, g := range allGenerators() {
		n := g.Classes() * 12
		ds := g.Generate(n, 5)
		for cls, count := range ds.ClassCounts() {
			if count != 12 {
				t.Fatalf("%s: class %d has %d samples, want 12", g.Name(), cls, count)
			}
		}
	}
}

func TestIntraClassVariation(t *testing.T) {
	// Two samples of the same class must differ substantially — the method
	// is pointless on constant-per-class data.
	ds := Digits{}.Generate(100, 7)
	byClass := map[int][]int{}
	for i, y := range ds.Labels {
		byClass[y] = append(byClass[y], i)
	}
	for cls, idx := range byClass {
		if len(idx) < 2 {
			continue
		}
		d := tensor.Sub(ds.Image(idx[0]), ds.Image(idx[1]))
		if d.SqSum() < 1 {
			t.Fatalf("class %d: two samples nearly identical (dist² = %v)", cls, d.SqSum())
		}
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Mean image of one class should differ from another's: a sanity check
	// that labels carry signal.
	ds := Digits{}.Generate(200, 8)
	means := make([]*tensor.Tensor, 10)
	counts := make([]int, 10)
	for i, y := range ds.Labels {
		if means[y] == nil {
			means[y] = tensor.New(ds.SampleShape()...)
		}
		means[y].AddInPlace(ds.Image(i))
		counts[y]++
	}
	for y := range means {
		means[y].Scale(1 / float64(counts[y]))
	}
	d := tensor.Sub(means[0], means[1])
	if d.SqSum() < 0.1 {
		t.Fatalf("class means for 0 and 1 nearly identical: %v", d.SqSum())
	}
}

func TestSplitPartition(t *testing.T) {
	ds := Objects{}.Generate(50, 3)
	train, test := ds.Split(30, 11)
	if train.N() != 30 || test.N() != 20 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	if train.Classes != ds.Classes || test.Name != ds.Name {
		t.Fatal("split must preserve metadata")
	}
}

func TestSplitOutOfRangePanics(t *testing.T) {
	ds := Digits{}.Generate(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.Split(11, 1)
}

func TestBatches(t *testing.T) {
	ds := Digits{}.Generate(25, 2)
	batches := ds.Batches(8)
	if len(batches) != 4 {
		t.Fatalf("got %d batches", len(batches))
	}
	total := 0
	for i, b := range batches {
		if b.Images.Dim(0) != len(b.Labels) {
			t.Fatal("batch image/label count mismatch")
		}
		total += len(b.Labels)
		if i < 3 && len(b.Labels) != 8 {
			t.Fatalf("batch %d size %d", i, len(b.Labels))
		}
	}
	if total != 25 {
		t.Fatalf("batches cover %d of 25 samples", total)
	}
	if len(batches[3].Labels) != 1 {
		t.Fatalf("last batch size %d, want 1", len(batches[3].Labels))
	}
}

func TestBatchesAreCopies(t *testing.T) {
	ds := Digits{}.Generate(4, 2)
	orig := ds.Image(0).Clone()
	b := ds.Batches(4)[0]
	b.Images.Fill(0)
	if !tensor.Equal(ds.Image(0), orig) {
		t.Fatal("mutating a batch corrupted the dataset")
	}
}

func TestNormalize(t *testing.T) {
	ds := Objects{}.Generate(30, 4)
	mean, std := ds.Normalize()
	if math.Abs(ds.Images.Mean()) > 1e-9 {
		t.Fatalf("post-normalize mean = %v", ds.Images.Mean())
	}
	if math.Abs(ds.Images.Std()-1) > 1e-9 {
		t.Fatalf("post-normalize std = %v", ds.Images.Std())
	}
	if std <= 0 || mean <= 0 {
		t.Fatalf("returned stats mean=%v std=%v", mean, std)
	}
	// Applying the same stats to a second dataset must be consistent.
	ds2 := Objects{}.Generate(30, 4)
	ds2.ApplyNormalization(mean, std)
	if !tensor.AllClose(ds.Images, ds2.Images, 1e-12) {
		t.Fatal("ApplyNormalization inconsistent with Normalize")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	ds := Digits{}.Generate(30, 6)
	sh := ds.Shuffle(9)
	if sh.N() != ds.N() {
		t.Fatal("shuffle changed size")
	}
	a, b := ds.ClassCounts(), sh.ClassCounts()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle changed class histogram")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"digits", "objects", "housenumbers", "tinyscenes"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("ByName(%s) returned %s", name, g.Name())
		}
	}
	if _, err := ByName("mnist"); err == nil {
		t.Fatal("ByName should fail on unknown dataset")
	}
}

func TestSubsetSelectsCorrectSamples(t *testing.T) {
	ds := Digits{}.Generate(10, 12)
	sub := ds.Subset([]int{3, 7})
	if sub.N() != 2 {
		t.Fatalf("subset N = %d", sub.N())
	}
	if !tensor.Equal(sub.Image(0), ds.Image(3)) || sub.Labels[1] != ds.Labels[7] {
		t.Fatal("subset selected wrong samples")
	}
}
