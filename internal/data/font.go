package data

// digitFont is a 5x7 bitmap font for digits 0-9, used by the Digits
// (MNIST substitute) and HouseNumbers (SVHN substitute) generators. Each
// string row is 5 cells; '#' is ink.
var digitFont = [10][7]string{
	{ // 0
		" ### ",
		"#   #",
		"#  ##",
		"# # #",
		"##  #",
		"#   #",
		" ### ",
	},
	{ // 1
		"  #  ",
		" ##  ",
		"  #  ",
		"  #  ",
		"  #  ",
		"  #  ",
		" ### ",
	},
	{ // 2
		" ### ",
		"#   #",
		"    #",
		"   # ",
		"  #  ",
		" #   ",
		"#####",
	},
	{ // 3
		" ### ",
		"#   #",
		"    #",
		"  ## ",
		"    #",
		"#   #",
		" ### ",
	},
	{ // 4
		"   # ",
		"  ## ",
		" # # ",
		"#  # ",
		"#####",
		"   # ",
		"   # ",
	},
	{ // 5
		"#####",
		"#    ",
		"#### ",
		"    #",
		"    #",
		"#   #",
		" ### ",
	},
	{ // 6
		" ### ",
		"#    ",
		"#    ",
		"#### ",
		"#   #",
		"#   #",
		" ### ",
	},
	{ // 7
		"#####",
		"    #",
		"   # ",
		"  #  ",
		"  #  ",
		"  #  ",
		"  #  ",
	},
	{ // 8
		" ### ",
		"#   #",
		"#   #",
		" ### ",
		"#   #",
		"#   #",
		" ### ",
	},
	{ // 9
		" ### ",
		"#   #",
		"#   #",
		" ####",
		"    #",
		"    #",
		" ### ",
	},
}

// drawGlyph paints digit d onto the canvas with the glyph's top-left at
// (x0, y0), scaled by scale (cell size in pixels, may be fractional),
// sheared horizontally by shear pixels per row, with the given ink color
// and opacity.
func (cv *canvas) drawGlyph(d int, x0, y0, scale, shear float64, color []float64, opacity float64) {
	glyph := digitFont[d]
	for row := 0; row < 7; row++ {
		rowShear := shear * float64(row)
		for col := 0; col < 5; col++ {
			if glyph[row][col] != '#' {
				continue
			}
			// Paint a scale×scale cell with soft edges.
			px0 := x0 + float64(col)*scale + rowShear
			py0 := y0 + float64(row)*scale
			for y := int(py0); y < int(py0+scale+0.999); y++ {
				for x := int(px0); x < int(px0+scale+0.999); x++ {
					// Coverage of this pixel by the cell.
					ax := overlap(float64(x), px0, px0+scale)
					ay := overlap(float64(y), py0, py0+scale)
					cv.blend(x, y, color, opacity*ax*ay)
				}
			}
		}
	}
}

// overlap returns the overlap of unit pixel [p, p+1) with interval [lo, hi).
func overlap(p, lo, hi float64) float64 {
	l, h := p, p+1
	if lo > l {
		l = lo
	}
	if hi < h {
		h = hi
	}
	if h <= l {
		return 0
	}
	return h - l
}
