package data

import (
	"fmt"

	"shredder/internal/tensor"
)

// Generator produces a dataset of n labelled samples deterministically from
// a seed. The four implementations stand in for the paper's four benchmark
// datasets (see the package comment and DESIGN.md §2 for the substitution
// rationale).
type Generator interface {
	// Name identifies the dataset family ("digits", "objects", ...).
	Name() string
	// Classes returns the number of label classes.
	Classes() int
	// SampleShape returns the per-sample [C,H,W] shape.
	SampleShape() []int
	// Generate produces n samples with balanced random labels.
	Generate(n int, seed int64) *Dataset
}

// generate is the shared driver: it allocates the dataset, assigns balanced
// labels, and calls render for each sample with a per-sample RNG.
func generate(g Generator, n int, seed int64, render func(img *tensor.Tensor, label int, rng *tensor.RNG)) *Dataset {
	shape := append([]int{n}, g.SampleShape()...)
	ds := &Dataset{
		Name:    g.Name(),
		Classes: g.Classes(),
		Images:  tensor.New(shape...),
		Labels:  make([]int, n),
	}
	root := tensor.NewRNG(seed)
	seeds := make([]int64, n)
	for i := 0; i < n; i++ {
		ds.Labels[i] = i % g.Classes() // balanced
		seeds[i] = root.Int63()
	}
	// Shuffle labels so batches are not class-ordered.
	root.Shuffle(n, func(i, j int) { ds.Labels[i], ds.Labels[j] = ds.Labels[j], ds.Labels[i] })
	tensor.ParallelFor(n, func(i int) {
		render(ds.Images.Slice(i), ds.Labels[i], tensor.NewRNG(seeds[i]))
	})
	return ds
}

// Digits is the MNIST substitute: 28×28 grayscale digit glyphs with random
// position, scale, shear, stroke intensity and sensor noise.
type Digits struct{}

// Name implements Generator.
func (Digits) Name() string { return "digits" }

// Classes implements Generator.
func (Digits) Classes() int { return 10 }

// SampleShape implements Generator.
func (Digits) SampleShape() []int { return []int{1, 28, 28} }

// Generate implements Generator.
func (d Digits) Generate(n int, seed int64) *Dataset {
	return generate(d, n, seed, func(img *tensor.Tensor, label int, rng *tensor.RNG) {
		cv := newCanvas(img)
		// Dark background with slight level variation.
		bg := 0.05 + 0.1*rng.Float64()
		img.Fill(bg)
		scale := 2.6 + 1.0*rng.Float64() // glyph cell size
		gw, gh := 5*scale, 7*scale
		x0 := rng.Uniform(1, 27-gw)
		y0 := rng.Uniform(1, 27-gh)
		shear := rng.Uniform(-0.35, 0.35)
		ink := []float64{0.7 + 0.3*rng.Float64()}
		cv.drawGlyph(label, x0, y0, scale, shear, ink, 1)
		cv.sensorNoise(rng, 0.04)
	})
}

// Objects is the CIFAR-10 substitute: 32×32 RGB images of ten shape classes
// on textured backgrounds.
type Objects struct{}

// Name implements Generator.
func (Objects) Name() string { return "objects" }

// Classes implements Generator.
func (Objects) Classes() int { return 10 }

// SampleShape implements Generator.
func (Objects) SampleShape() []int { return []int{3, 32, 32} }

// Generate implements Generator.
func (o Objects) Generate(n int, seed int64) *Dataset {
	return generate(o, n, seed, func(img *tensor.Tensor, label int, rng *tensor.RNG) {
		cv := newCanvas(img)
		cv.valueNoise(rng, 8, 0.45, 0.25)
		col := randColor(rng, 3)
		cx := rng.Uniform(12, 20)
		cy := rng.Uniform(12, 20)
		r := rng.Uniform(7, 11)
		switch label {
		case 0:
			cv.fillCircle(cx, cy, r, col)
		case 1:
			cv.fillRect(cx-r*0.8, cy-r*0.8, cx+r*0.8, cy+r*0.8, col)
		case 2:
			cv.fillTriangle(cx, cy-r, cy+r, r*0.9, col)
		case 3:
			cv.fillCross(cx, cy, r, r*0.28, col)
		case 4:
			cv.fillRing(cx, cy, r, r*0.55, col)
		case 5:
			cv.fillRect(cx-r, cy-r*0.3, cx+r, cy+r*0.3, col) // horizontal bar
		case 6:
			cv.fillRect(cx-r*0.3, cy-r, cx+r*0.3, cy+r, col) // vertical bar
		case 7:
			cv.fillDiamond(cx, cy, r, col)
		case 8:
			cv.fillChecker(cx-r, cy-r, 4, r/2, col, randColor(rng, 3))
		case 9:
			// Two stacked circles ("snowman") — a composite shape.
			cv.fillCircle(cx, cy+r*0.4, r*0.65, col)
			cv.fillCircle(cx, cy-r*0.5, r*0.45, col)
		}
		cv.sensorNoise(rng, 0.05)
	})
}

// HouseNumbers is the SVHN substitute: 32×32 RGB street-number-style crops —
// a centered digit with clutter digits at the edges, on a colored textured
// background.
type HouseNumbers struct{}

// Name implements Generator.
func (HouseNumbers) Name() string { return "housenumbers" }

// Classes implements Generator.
func (HouseNumbers) Classes() int { return 10 }

// SampleShape implements Generator.
func (HouseNumbers) SampleShape() []int { return []int{3, 32, 32} }

// Generate implements Generator.
func (h HouseNumbers) Generate(n int, seed int64) *Dataset {
	return generate(h, n, seed, func(img *tensor.Tensor, label int, rng *tensor.RNG) {
		cv := newCanvas(img)
		cv.valueNoise(rng, 12, 0.5, 0.3)
		ink := randColor(rng, 3)
		scale := 2.4 + 1.2*rng.Float64()
		gw, gh := 5*scale, 7*scale
		x0 := rng.Uniform(16-gw/2-2, 16-gw/2+2)
		y0 := rng.Uniform(16-gh/2-2, 16-gh/2+2)
		shear := rng.Uniform(-0.3, 0.3)
		// Clutter digits poking in from the sides, as in real SVHN crops.
		if rng.Float64() < 0.7 {
			cv.drawGlyph(rng.Intn(10), x0-gw-2, y0+rng.Uniform(-2, 2), scale, shear, randColor(rng, 3), 0.8)
		}
		if rng.Float64() < 0.7 {
			cv.drawGlyph(rng.Intn(10), x0+gw+2, y0+rng.Uniform(-2, 2), scale, shear, randColor(rng, 3), 0.8)
		}
		cv.drawGlyph(label, x0, y0, scale, shear, ink, 1)
		cv.sensorNoise(rng, 0.06)
	})
}

// TinyScenes is the ImageNet substitute: 64×64 RGB "scenes" over 20 classes
// defined by a combination of layout, primary shape and texture — richer
// composition than Objects, matching AlexNet's larger capacity.
type TinyScenes struct{}

// Name implements Generator.
func (TinyScenes) Name() string { return "tinyscenes" }

// Classes implements Generator.
func (TinyScenes) Classes() int { return 20 }

// SampleShape implements Generator.
func (TinyScenes) SampleShape() []int { return []int{3, 64, 64} }

// Generate implements Generator.
func (t TinyScenes) Generate(n int, seed int64) *Dataset {
	return generate(t, n, seed, func(img *tensor.Tensor, label int, rng *tensor.RNG) {
		cv := newCanvas(img)
		// Texture frequency is part of the class signature.
		grid := 6 + 4*(label%3)
		cv.valueNoise(rng, grid, 0.45, 0.25)
		// Foreground color carries a class prior (real object classes have
		// strong color statistics) mixed with per-sample variation, so a
		// small AlexNet can learn 20 classes from ~1k images.
		prior := []float64{
			0.5 + 0.5*clamp01(float64((label*7)%20)/19),
			0.5 + 0.5*clamp01(float64((label*13)%20)/19),
			0.5 + 0.5*clamp01(float64((label*3)%20)/19),
		}
		col := randColor(rng, 3)
		for ch := range col {
			col[ch] = 0.8*prior[ch] + 0.2*col[ch]
		}
		base := label / 2 // 10 shape archetypes × 2 layouts
		double := label%2 == 1
		place := func(cx, cy, r float64) {
			switch base {
			case 0:
				cv.fillCircle(cx, cy, r, col)
			case 1:
				cv.fillRect(cx-r*0.8, cy-r*0.8, cx+r*0.8, cy+r*0.8, col)
			case 2:
				cv.fillTriangle(cx, cy-r, cy+r, r*0.9, col)
			case 3:
				cv.fillCross(cx, cy, r, r*0.3, col)
			case 4:
				cv.fillRing(cx, cy, r, r*0.55, col)
			case 5:
				cv.fillDiamond(cx, cy, r, col)
			case 6:
				cv.fillChecker(cx-r, cy-r, 4, r/2, col, randColor(rng, 3))
			case 7:
				cv.fillRect(cx-r, cy-r*0.3, cx+r, cy+r*0.3, col)
			case 8:
				cv.fillCircle(cx, cy+r*0.4, r*0.6, col)
				cv.fillCircle(cx, cy-r*0.5, r*0.45, col)
			case 9:
				cv.fillRing(cx, cy, r, r*0.75, col)
				cv.fillCircle(cx, cy, r*0.3, col)
			}
		}
		if double {
			place(rng.Uniform(16, 26), rng.Uniform(16, 26), rng.Uniform(8, 12))
			place(rng.Uniform(38, 48), rng.Uniform(38, 48), rng.Uniform(8, 12))
		} else {
			place(rng.Uniform(24, 40), rng.Uniform(24, 40), rng.Uniform(13, 20))
		}
		cv.sensorNoise(rng, 0.05)
	})
}

// ByName returns the generator for a dataset family name.
func ByName(name string) (Generator, error) {
	switch name {
	case "digits":
		return Digits{}, nil
	case "objects":
		return Objects{}, nil
	case "housenumbers":
		return HouseNumbers{}, nil
	case "tinyscenes":
		return TinyScenes{}, nil
	}
	return nil, fmt.Errorf("data: unknown dataset %q (have digits, objects, housenumbers, tinyscenes)", name)
}
