package data

import (
	"math"

	"shredder/internal/tensor"
)

// canvas is a mutable single-image painting surface over a [C,H,W] tensor
// slice. Pixel values are in [0,1] until sensor noise is added.
type canvas struct {
	t       *tensor.Tensor
	c, h, w int
}

func newCanvas(t *tensor.Tensor) *canvas {
	s := t.Shape()
	return &canvas{t: t, c: s[0], h: s[1], w: s[2]}
}

// blend paints (x,y) with the given per-channel color at opacity a∈[0,1].
func (cv *canvas) blend(x, y int, color []float64, a float64) {
	if x < 0 || x >= cv.w || y < 0 || y >= cv.h || a <= 0 {
		return
	}
	d := cv.t.Data()
	for ch := 0; ch < cv.c; ch++ {
		idx := ch*cv.h*cv.w + y*cv.w + x
		d[idx] = d[idx]*(1-a) + color[ch]*a
	}
}

func (cv *canvas) fillCircle(cx, cy, r float64, color []float64) {
	for y := int(cy - r - 1); y <= int(cy+r+1); y++ {
		for x := int(cx - r - 1); x <= int(cx+r+1); x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			// 1-pixel soft edge for anti-aliasing.
			a := clamp01(r + 0.5 - d)
			cv.blend(x, y, color, a)
		}
	}
}

func (cv *canvas) fillRing(cx, cy, rOut, rIn float64, color []float64) {
	for y := int(cy - rOut - 1); y <= int(cy+rOut+1); y++ {
		for x := int(cx - rOut - 1); x <= int(cx+rOut+1); x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			a := clamp01(rOut+0.5-d) * clamp01(d-rIn+0.5)
			cv.blend(x, y, color, a)
		}
	}
}

func (cv *canvas) fillRect(x0, y0, x1, y1 float64, color []float64) {
	for y := int(y0); y <= int(y1); y++ {
		for x := int(x0); x <= int(x1); x++ {
			cv.blend(x, y, color, 1)
		}
	}
}

// fillTriangle paints an upward isoceles triangle with apex (cx, y0) and
// base at y1 of half-width hw.
func (cv *canvas) fillTriangle(cx, y0, y1, hw float64, color []float64) {
	height := y1 - y0
	if height <= 0 {
		return
	}
	for y := int(y0); y <= int(y1); y++ {
		frac := (float64(y) - y0) / height
		half := hw * frac
		for x := int(cx - half); x <= int(cx+half); x++ {
			cv.blend(x, y, color, 1)
		}
	}
}

func (cv *canvas) fillDiamond(cx, cy, r float64, color []float64) {
	for y := int(cy - r); y <= int(cy+r); y++ {
		dy := math.Abs(float64(y) - cy)
		half := r - dy
		for x := int(cx - half); x <= int(cx+half); x++ {
			cv.blend(x, y, color, 1)
		}
	}
}

func (cv *canvas) fillCross(cx, cy, r, thick float64, color []float64) {
	cv.fillRect(cx-thick, cy-r, cx+thick, cy+r, color)
	cv.fillRect(cx-r, cy-thick, cx+r, cy+thick, color)
}

func (cv *canvas) fillChecker(x0, y0 float64, cells int, cell float64, colA, colB []float64) {
	for iy := 0; iy < cells; iy++ {
		for ix := 0; ix < cells; ix++ {
			col := colA
			if (ix+iy)%2 == 1 {
				col = colB
			}
			cv.fillRect(x0+float64(ix)*cell, y0+float64(iy)*cell,
				x0+float64(ix+1)*cell-1, y0+float64(iy+1)*cell-1, col)
		}
	}
}

// valueNoise fills the canvas with smooth value noise: a coarse random grid
// bilinearly interpolated, per channel scaled by amp around base.
func (cv *canvas) valueNoise(rng *tensor.RNG, grid int, base, amp float64) {
	gh, gw := cv.h/grid+2, cv.w/grid+2
	field := make([]float64, gh*gw)
	for i := range field {
		field[i] = rng.Float64()
	}
	d := cv.t.Data()
	for ch := 0; ch < cv.c; ch++ {
		chScale := 0.6 + 0.4*rng.Float64()
		for y := 0; y < cv.h; y++ {
			fy := float64(y) / float64(grid)
			iy := int(fy)
			ty := fy - float64(iy)
			for x := 0; x < cv.w; x++ {
				fx := float64(x) / float64(grid)
				ix := int(fx)
				tx := fx - float64(ix)
				v00 := field[iy*gw+ix]
				v01 := field[iy*gw+ix+1]
				v10 := field[(iy+1)*gw+ix]
				v11 := field[(iy+1)*gw+ix+1]
				v := v00*(1-tx)*(1-ty) + v01*tx*(1-ty) + v10*(1-tx)*ty + v11*tx*ty
				d[ch*cv.h*cv.w+y*cv.w+x] = clamp01(base + amp*(v-0.5)*2*chScale)
			}
		}
	}
}

// sensorNoise adds iid Gaussian noise to every pixel and clamps to [0,1].
func (cv *canvas) sensorNoise(rng *tensor.RNG, sigma float64) {
	d := cv.t.Data()
	for i := range d {
		d[i] = clamp01(d[i] + rng.Normal(0, sigma))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// randColor returns a random saturated c-channel color biased away from
// gray so foregrounds stand out from textured backgrounds.
func randColor(rng *tensor.RNG, channels int) []float64 {
	col := make([]float64, channels)
	for i := range col {
		if rng.Float64() < 0.5 {
			col[i] = 0.75 + 0.25*rng.Float64()
		} else {
			col[i] = 0.25 * rng.Float64()
		}
	}
	return col
}
