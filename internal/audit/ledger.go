package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// AnchoredRoot is one sealed batch's commitment: the batch sequence
// number, how many records it covers, the Merkle root, and the anchor
// timestamp. Verifiers trust a root only once a ledger has anchored it.
type AnchoredRoot struct {
	Seq       uint64
	Count     int
	Root      [32]byte
	UnixNanos int64
}

// Ledger anchors sealed batch roots. Implementations must accept
// strictly consecutive sequence numbers starting at 0 and must make an
// anchored root durable (to the implementation's standard) before
// returning.
type Ledger interface {
	// Anchor commits one root. Called from a single goroutine in
	// ascending Seq order.
	Anchor(r AnchoredRoot) error
	// Roots returns all anchored roots in Seq order.
	Roots() []AnchoredRoot
	// Close releases resources. Anchor after Close returns ErrClosed.
	Close() error
}

// ---------------------------------------------------------------------
// In-memory ledger.

// MemLedger keeps anchored roots in process memory. It is the default
// when no durability is requested: proofs still verify, but restarts
// lose the trail.
type MemLedger struct {
	mu     sync.Mutex
	roots  []AnchoredRoot
	closed bool
}

// NewMemLedger returns an empty in-memory ledger.
func NewMemLedger() *MemLedger { return &MemLedger{} }

// Anchor appends the root after sequence validation.
func (l *MemLedger) Anchor(r AnchoredRoot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if want := uint64(len(l.roots)); r.Seq != want {
		return fmt.Errorf("%w: anchor seq %d, want %d", ErrLedgerCorrupt, r.Seq, want)
	}
	l.roots = append(l.roots, r)
	return nil
}

// Roots returns a copy of the anchored roots.
func (l *MemLedger) Roots() []AnchoredRoot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AnchoredRoot(nil), l.roots...)
}

// Close marks the ledger closed.
func (l *MemLedger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// ---------------------------------------------------------------------
// Append-only file ledger.

// ledgerMagic is the file header. The version suffix is part of the
// format: entries are fixed-size and hash-chained, so any byte flip is
// detectable.
const ledgerMagic = "shredder-audit-ledger/1\n"

// ledgerEntrySize is the fixed on-disk entry:
//
//	uint64   Seq
//	uint32   Count
//	int64    UnixNanos
//	[32]byte Root
//	[32]byte Chain  = SHA256(prevChain ‖ Seq..Root bytes)
//	uint32   CRC32  (IEEE, over the preceding 84 bytes)
const ledgerEntrySize = 8 + 4 + 8 + 32 + 32 + 4

// FileLedger is an append-only, hash-chained, CRC-guarded ledger file.
// Reopening validates every entry; a trailing partial entry (crash mid
// write) is truncated away, while a mid-file CRC or chain mismatch is
// unrecoverable tampering and returns ErrLedgerCorrupt.
type FileLedger struct {
	mu     sync.Mutex
	f      *os.File
	roots  []AnchoredRoot
	chain  [32]byte // chain value of the last entry (genesis: hash of header)
	closed bool
	// Recovered counts trailing bytes truncated during open — nonzero
	// means the previous process died mid-append.
	Recovered int
	// NoSync skips fsync per anchor (benchmarks only).
	NoSync bool
}

// genesisChain seeds the hash chain from the header bytes.
func genesisChain() [32]byte { return sha256.Sum256([]byte(ledgerMagic)) }

// chainNext advances the hash chain over one entry's committed fields.
func chainNext(prev [32]byte, payload []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// OpenFileLedger opens (or creates) a ledger file at path, replaying
// and validating existing entries.
func OpenFileLedger(path string) (*FileLedger, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: open ledger: %w", err)
	}
	l := &FileLedger{f: f, chain: genesisChain()}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replay validates the header and every entry, truncating a trailing
// partial entry left by a crash.
func (l *FileLedger) replay() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("audit: stat ledger: %w", err)
	}
	if info.Size() == 0 {
		if _, err := l.f.Write([]byte(ledgerMagic)); err != nil {
			return fmt.Errorf("audit: write ledger header: %w", err)
		}
		return l.sync()
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr := make([]byte, len(ledgerMagic))
	if _, err := io.ReadFull(l.f, hdr); err != nil {
		return fmt.Errorf("%w: header unreadable: %v", ErrLedgerCorrupt, err)
	}
	if string(hdr) != ledgerMagic {
		return fmt.Errorf("%w: bad header %q", ErrLedgerCorrupt, string(hdr))
	}
	body := info.Size() - int64(len(ledgerMagic))
	whole := body / ledgerEntrySize
	tail := body % ledgerEntrySize
	buf := make([]byte, ledgerEntrySize)
	for i := int64(0); i < whole; i++ {
		if _, err := io.ReadFull(l.f, buf); err != nil {
			return fmt.Errorf("%w: entry %d unreadable: %v", ErrLedgerCorrupt, i, err)
		}
		r, chain, err := decodeLedgerEntry(buf, l.chain, uint64(i))
		if err != nil {
			return err
		}
		l.roots = append(l.roots, r)
		l.chain = chain
	}
	if tail != 0 {
		// Crash mid-append: drop the partial entry and keep going from
		// the last complete one.
		good := int64(len(ledgerMagic)) + whole*ledgerEntrySize
		if err := l.f.Truncate(good); err != nil {
			return fmt.Errorf("audit: truncate partial entry: %w", err)
		}
		l.Recovered = int(tail)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

// decodeLedgerEntry validates one fixed-size entry against the expected
// chain value and sequence number.
func decodeLedgerEntry(buf []byte, prevChain [32]byte, wantSeq uint64) (AnchoredRoot, [32]byte, error) {
	payload := buf[:8+4+8+32]
	wantCRC := binary.BigEndian.Uint32(buf[ledgerEntrySize-4:])
	if got := crc32.ChecksumIEEE(buf[:ledgerEntrySize-4]); got != wantCRC {
		return AnchoredRoot{}, [32]byte{}, fmt.Errorf("%w: entry %d CRC mismatch", ErrLedgerCorrupt, wantSeq)
	}
	var r AnchoredRoot
	r.Seq = binary.BigEndian.Uint64(buf[0:])
	r.Count = int(binary.BigEndian.Uint32(buf[8:]))
	r.UnixNanos = int64(binary.BigEndian.Uint64(buf[12:]))
	copy(r.Root[:], buf[20:52])
	var chain [32]byte
	copy(chain[:], buf[52:84])
	if r.Seq != wantSeq {
		return AnchoredRoot{}, [32]byte{}, fmt.Errorf("%w: entry seq %d, want %d", ErrLedgerCorrupt, r.Seq, wantSeq)
	}
	if want := chainNext(prevChain, payload); chain != want {
		return AnchoredRoot{}, [32]byte{}, fmt.Errorf("%w: entry %d hash chain broken", ErrLedgerCorrupt, wantSeq)
	}
	return r, chain, nil
}

// Anchor appends one entry and fsyncs it.
func (l *FileLedger) Anchor(r AnchoredRoot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if want := uint64(len(l.roots)); r.Seq != want {
		return fmt.Errorf("%w: anchor seq %d, want %d", ErrLedgerCorrupt, r.Seq, want)
	}
	buf := make([]byte, 0, ledgerEntrySize)
	buf = binary.BigEndian.AppendUint64(buf, r.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Count))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.UnixNanos))
	buf = append(buf, r.Root[:]...)
	chain := chainNext(l.chain, buf)
	buf = append(buf, chain[:]...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("audit: append ledger entry: %w", err)
	}
	if err := l.sync(); err != nil {
		return err
	}
	l.roots = append(l.roots, r)
	l.chain = chain
	return nil
}

func (l *FileLedger) sync() error {
	if l.NoSync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("audit: sync ledger: %w", err)
	}
	return nil
}

// Roots returns a copy of the anchored roots.
func (l *FileLedger) Roots() []AnchoredRoot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AnchoredRoot(nil), l.roots...)
}

// Close flushes and closes the file.
func (l *FileLedger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// ---------------------------------------------------------------------
// Mock-latency ledger.

// LatencyLedger wraps a Ledger and sleeps per anchor, standing in for a
// remote transparency service in benchmarks — it makes "anchor cost is
// off the serving path" measurable rather than vacuously true.
type LatencyLedger struct {
	Inner Ledger
	Delay time.Duration
}

// WithLatency wraps inner so every Anchor takes at least d.
func WithLatency(inner Ledger, d time.Duration) *LatencyLedger {
	return &LatencyLedger{Inner: inner, Delay: d}
}

// Anchor sleeps then delegates.
func (l *LatencyLedger) Anchor(r AnchoredRoot) error {
	if l.Delay > 0 {
		time.Sleep(l.Delay)
	}
	return l.Inner.Anchor(r)
}

// Roots delegates.
func (l *LatencyLedger) Roots() []AnchoredRoot { return l.Inner.Roots() }

// Close delegates.
func (l *LatencyLedger) Close() error { return l.Inner.Close() }
