package audit

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// The /debug/audit surface, mirroring the obs merge design: a Source
// abstracts "somewhere proofs and roots come from" (the local Auditor,
// or a backend's /debug/audit over HTTP), and one Handler serves any
// number of sources — a CloudServer mounts its own auditor, a Gateway
// mounts one HTTPSource per backend and becomes the fleet's single
// evidence endpoint.
//
//	GET /debug/audit                → status (single source: Status;
//	                                  several: {"sources": {...}, "errors": {...}})
//	GET /debug/audit?view=roots     → union of anchored roots, JSON array
//	GET /debug/audit?trace=<hex>    → InclusionProof for that trace, or 404

// RootJSON is an AnchoredRoot shaped for the HTTP surface (hex root,
// optional backend label when served through a merged handler).
type RootJSON struct {
	Seq       uint64 `json:"seq"`
	Count     int    `json:"count"`
	Root      string `json:"root"`
	UnixNanos int64  `json:"unix_nanos"`
	Backend   string `json:"backend,omitempty"`
}

// ToAnchored converts back to the verification form. Fails on bad hex.
func (r RootJSON) ToAnchored() (AnchoredRoot, error) {
	ar := AnchoredRoot{Seq: r.Seq, Count: r.Count, UnixNanos: r.UnixNanos}
	if err := decodeHash(r.Root, &ar.Root); err != nil {
		return AnchoredRoot{}, fmt.Errorf("%w: root %d: %v", ErrLedgerCorrupt, r.Seq, err)
	}
	return ar, nil
}

// Status is the human-facing overview of one audit source.
type Status struct {
	Summary Summary    `json:"summary"`
	Roots   []RootJSON `json:"roots"`
}

// Source is one provider of audit evidence.
type Source interface {
	// Label names the source in merged output ("local", backend label).
	Label() string
	// Status returns the source's summary and anchored roots.
	Status() (Status, error)
	// Proof fetches the inclusion proof for a trace; found=false when
	// the source does not hold the trace (not an error).
	Proof(traceHex string) (p *InclusionProof, found bool, err error)
}

// LocalSource serves a process-local Auditor.
type LocalSource struct {
	Auditor *Auditor
	// Name defaults to "local".
	Name string
}

// Label implements Source.
func (s LocalSource) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return "local"
}

// Status implements Source.
func (s LocalSource) Status() (Status, error) {
	roots := s.Auditor.Roots()
	out := Status{Summary: s.Auditor.Summarize(), Roots: make([]RootJSON, len(roots))}
	for i, r := range roots {
		out.Roots[i] = RootJSON{Seq: r.Seq, Count: r.Count, Root: hex.EncodeToString(r.Root[:]), UnixNanos: r.UnixNanos}
	}
	return out, nil
}

// Proof implements Source.
func (s LocalSource) Proof(traceHex string) (*InclusionProof, bool, error) {
	t, err := ParseTrace(traceHex)
	if err != nil {
		return nil, false, err
	}
	p, ok := s.Auditor.ProofByTrace(t)
	return p, ok, nil
}

// ParseTrace parses a hex trace ID as served in proofs and span dumps.
func ParseTrace(s string) (uint64, error) {
	t, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("audit: bad trace id %q: %w", s, err)
	}
	return t, nil
}

// HTTPSource fetches audit evidence from a peer's /debug/audit
// endpoint — how a gateway reaches each backend's ledger, the exact
// analogue of obs.HTTPSnapshotSource.
type HTTPSource struct {
	// Name labels the peer in merged output.
	Name string
	// Base is the peer's audit endpoint, e.g. "http://host:port/debug/audit".
	Base string
	// Client defaults to a 2-second-timeout client.
	Client *http.Client
}

func (s HTTPSource) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// Label implements Source.
func (s HTTPSource) Label() string { return s.Name }

// Status implements Source.
func (s HTTPSource) Status() (Status, error) {
	var st Status
	if err := s.getJSON(s.Base, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Proof implements Source. A peer 404 means "not held here".
func (s HTTPSource) Proof(traceHex string) (*InclusionProof, bool, error) {
	resp, err := s.client().Get(s.Base + "?trace=" + traceHex)
	if err != nil {
		return nil, false, fmt.Errorf("audit: fetch proof from %s: %w", s.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("audit: peer %s returned %s", s.Name, resp.Status)
	}
	var p InclusionProof
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, false, fmt.Errorf("audit: decode proof from %s: %w", s.Name, err)
	}
	return &p, true, nil
}

func (s HTTPSource) getJSON(url string, dst any) error {
	resp, err := s.client().Get(url)
	if err != nil {
		return fmt.Errorf("audit: fetch %s: %w", s.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("audit: peer %s returned %s", s.Name, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// Handler serves the audit endpoint over the given sources. Proof
// lookups try sources in order and relay the first hit; roots queries
// return the union, labelled per source; the bare status is the single
// source's Status, or a per-label map when there are several.
func Handler(sources ...Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if trace := req.URL.Query().Get("trace"); trace != "" {
			serveProof(w, sources, trace)
			return
		}
		if req.URL.Query().Get("view") == "roots" {
			serveRoots(w, sources)
			return
		}
		serveStatus(w, sources)
	})
}

func serveProof(w http.ResponseWriter, sources []Source, trace string) {
	var lastErr error
	for _, s := range sources {
		p, found, err := s.Proof(trace)
		if err != nil {
			lastErr = err
			continue
		}
		if found {
			json.NewEncoder(w).Encode(p)
			return
		}
	}
	w.WriteHeader(http.StatusNotFound)
	msg := fmt.Sprintf("no sealed record for trace %s", trace)
	if lastErr != nil {
		msg += "; last source error: " + lastErr.Error()
	}
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func serveRoots(w http.ResponseWriter, sources []Source) {
	union := []RootJSON{}
	for _, s := range sources {
		st, err := s.Status()
		if err != nil {
			continue
		}
		for _, r := range st.Roots {
			if len(sources) > 1 && r.Backend == "" {
				r.Backend = s.Label()
			}
			union = append(union, r)
		}
	}
	json.NewEncoder(w).Encode(union)
}

func serveStatus(w http.ResponseWriter, sources []Source) {
	if len(sources) == 1 {
		st, err := sources[0].Status()
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(st)
		return
	}
	out := struct {
		Sources map[string]Status `json:"sources"`
		Errors  map[string]string `json:"errors,omitempty"`
	}{Sources: map[string]Status{}, Errors: map[string]string{}}
	for _, s := range sources {
		st, err := s.Status()
		if err != nil {
			out.Errors[s.Label()] = err.Error()
			continue
		}
		out.Sources[s.Label()] = st
	}
	if len(out.Errors) == 0 {
		out.Errors = nil
	}
	json.NewEncoder(w).Encode(out)
}

// FetchProof retrieves trace's proof from an audit endpoint — the
// `shredder audit verify` client half.
func FetchProof(base, traceHex string, client *http.Client) (*InclusionProof, error) {
	src := HTTPSource{Name: base, Base: base, Client: client}
	p, found, err := src.Proof(traceHex)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("audit: trace %s not found at %s", traceHex, base)
	}
	return p, nil
}

// FetchRoots retrieves the anchored-root union from an audit endpoint.
func FetchRoots(base string, client *http.Client) ([]AnchoredRoot, error) {
	src := HTTPSource{Name: base, Base: base, Client: client}
	var rows []RootJSON
	if err := src.getJSON(base+"?view=roots", &rows); err != nil {
		return nil, err
	}
	out := make([]AnchoredRoot, 0, len(rows))
	for _, r := range rows {
		ar, err := r.ToAnchored()
		if err != nil {
			return nil, err
		}
		out = append(out, ar)
	}
	return out, nil
}
