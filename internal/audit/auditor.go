package audit

import (
	"fmt"
	"sync"
	"time"

	"shredder/internal/obs"
	"shredder/internal/sched"
)

// Options tune an Auditor. The zero value selects the defaults.
type Options struct {
	// MaxBatch caps how many records one sealed batch may carry
	// (default 64). Reaching it seals at once.
	MaxBatch int
	// MaxDelay bounds how long an appended record may wait unsealed
	// behind an in-flight anchor (default 5ms). An idle auditor seals
	// immediately — coalescing emerges from anchor latency, exactly as
	// batching emerges from flight latency in sched.Batcher.
	MaxDelay time.Duration
	// Ledger anchors sealed roots; nil selects an in-memory ledger. The
	// Auditor owns the ledger either way: Close closes it.
	Ledger Ledger
	// Metrics, when non-nil, registers audit.* counters there so they
	// join the shared /debug/metrics snapshot.
	Metrics *obs.Registry
	// KeepBatches bounds the sealed-batch ring held in memory for proof
	// service (default 256 batches). Older batches stay anchored in the
	// ledger but can no longer serve inclusion proofs.
	KeepBatches int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 5 * time.Millisecond
	}
	if o.Ledger == nil {
		o.Ledger = NewMemLedger()
	}
	if o.KeepBatches <= 0 {
		o.KeepBatches = 256
	}
	return o
}

// counters holds the Auditor's obs metrics (all nil-safe).
type counters struct {
	records, batches             *obs.Counter
	full, idle, timer, closeSeal *obs.Counter
	anchored, anchorFailures     *obs.Counter
	proofsServed, proofsMissed   *obs.Counter
	evicted                      *obs.Counter
	anchorSeconds                *obs.Histogram
}

func newCounters(reg *obs.Registry) counters {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return counters{
		records:        reg.Counter("audit.records"),
		batches:        reg.Counter("audit.batches"),
		full:           reg.Counter("audit.seal.full"),
		idle:           reg.Counter("audit.seal.idle"),
		timer:          reg.Counter("audit.seal.timer"),
		closeSeal:      reg.Counter("audit.seal.close"),
		anchored:       reg.Counter("audit.anchored"),
		anchorFailures: reg.Counter("audit.anchor.failures"),
		proofsServed:   reg.Counter("audit.proofs.served"),
		proofsMissed:   reg.Counter("audit.proofs.missed"),
		evicted:        reg.Counter("audit.batches.evicted"),
		anchorSeconds:  reg.Histogram("audit.anchor_seconds"),
	}
}

// SealedBatch is one committed batch: the canonical record bytes, their
// leaf hashes, and the Merkle root the ledger anchors under Seq.
type SealedBatch struct {
	Seq       uint64
	UnixNanos int64
	Records   [][]byte
	Leaves    [][32]byte
	Root      [32]byte
}

// traceRef locates a record inside the sealed ring by batch and index.
type traceRef struct {
	seq   uint64
	index int
}

// Auditor accepts Records, seals them into Merkle batches, and anchors
// batch roots through its Ledger on a background goroutine — the
// serving hot path pays one Append (marshal + queue under a mutex);
// hashing happens at seal time and ledger I/O never blocks a request.
//
// The flush policy is internal/sched's: idle → seal immediately, full →
// seal at MaxBatch, timer → seal after MaxDelay behind a busy anchor,
// close → deterministic final drain. A sched.Gate guards Append against
// Close, so once Close begins no new record is admitted and every
// admitted record is sealed and anchored before Close returns.
type Auditor struct {
	opts Options
	gate sched.Gate

	mu       sync.Mutex
	pending  []pendingRec
	inFlight int // sealed batches queued or being anchored
	timerGen uint64
	timer    *time.Timer
	closed   bool
	nextSeq  uint64
	queue    []*SealedBatch
	cond     *sync.Cond

	ring    []*SealedBatch
	byTrace map[uint64]traceRef

	anchorDone sync.WaitGroup
	m          counters
}

type pendingRec struct {
	trace uint64
	raw   []byte
}

// New starts an Auditor and its anchor goroutine.
func New(opts Options) *Auditor {
	a := &Auditor{
		opts:    opts.withDefaults(),
		byTrace: make(map[uint64]traceRef),
		m:       newCounters(opts.Metrics),
	}
	a.cond = sync.NewCond(&a.mu)
	a.anchorDone.Add(1)
	go a.anchorLoop()
	return a
}

// Append admits one record. It returns ErrClosed once Close has begun
// and a marshal error for an unencodable record; otherwise the record
// is guaranteed to reach a sealed, anchored batch even if the process
// calls Close immediately after.
func (a *Auditor) Append(r Record) error {
	if !a.gate.Enter() {
		return ErrClosed
	}
	defer a.gate.Leave()
	raw, err := r.Marshal()
	if err != nil {
		return err
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	a.m.records.Add(1)
	a.pending = append(a.pending, pendingRec{trace: r.Trace, raw: raw})
	switch {
	case len(a.pending) >= a.opts.MaxBatch:
		a.sealLocked(sealFull)
	case a.inFlight == 0:
		a.sealLocked(sealIdle)
	default:
		a.armTimerLocked()
	}
	a.mu.Unlock()
	return nil
}

type sealReason int

const (
	sealFull sealReason = iota
	sealIdle
	sealTimer
	sealClose
)

// armTimerLocked starts the MaxDelay clock for the current pending
// epoch if it is not already running.
func (a *Auditor) armTimerLocked() {
	if a.timer != nil {
		return
	}
	gen := a.timerGen
	a.timer = time.AfterFunc(a.opts.MaxDelay, func() {
		a.mu.Lock()
		if a.closed || gen != a.timerGen || len(a.pending) == 0 {
			a.mu.Unlock()
			return
		}
		a.sealLocked(sealTimer)
		a.mu.Unlock()
	})
}

// sealLocked takes the whole pending queue, hashes it into a
// SealedBatch, indexes it for proof service, and hands it to the anchor
// goroutine. Called with a.mu held.
func (a *Auditor) sealLocked(reason sealReason) {
	batch := a.pending
	a.pending = nil
	a.timerGen++
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	if len(batch) == 0 {
		return
	}
	sb := &SealedBatch{
		Seq:       a.nextSeq,
		UnixNanos: time.Now().UnixNano(),
		Records:   make([][]byte, len(batch)),
		Leaves:    make([][32]byte, len(batch)),
	}
	a.nextSeq++
	for i, p := range batch {
		sb.Records[i] = p.raw
		sb.Leaves[i] = LeafHash(p.raw)
	}
	sb.Root = MerkleRoot(sb.Leaves)

	a.ring = append(a.ring, sb)
	for i, p := range batch {
		a.byTrace[p.trace] = traceRef{seq: sb.Seq, index: i}
	}
	for len(a.ring) > a.opts.KeepBatches {
		old := a.ring[0]
		a.ring = a.ring[1:]
		for i, rec := range old.Records {
			r, err := UnmarshalRecord(rec)
			if err != nil {
				continue
			}
			if ref, ok := a.byTrace[r.Trace]; ok && ref.seq == old.Seq && ref.index == i {
				delete(a.byTrace, r.Trace)
			}
		}
		a.m.evicted.Add(1)
	}

	a.m.batches.Add(1)
	switch reason {
	case sealFull:
		a.m.full.Add(1)
	case sealIdle:
		a.m.idle.Add(1)
	case sealTimer:
		a.m.timer.Add(1)
	case sealClose:
		a.m.closeSeal.Add(1)
	}
	a.inFlight++
	a.queue = append(a.queue, sb)
	a.cond.Signal()
}

// anchorLoop is the single goroutine that drains sealed batches into
// the ledger, in seal (= Seq) order. The finished anchor is the natural
// trigger for the next seal: anything pending behind it seals at once.
func (a *Auditor) anchorLoop() {
	defer a.anchorDone.Done()
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.closed {
			a.cond.Wait()
		}
		if len(a.queue) == 0 {
			a.mu.Unlock()
			return
		}
		sb := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()

		start := time.Now()
		err := a.opts.Ledger.Anchor(AnchoredRoot{
			Seq:       sb.Seq,
			Count:     len(sb.Leaves),
			Root:      sb.Root,
			UnixNanos: sb.UnixNanos,
		})
		a.m.anchorSeconds.Observe(time.Since(start).Seconds())
		if err != nil {
			a.m.anchorFailures.Add(1)
		} else {
			a.m.anchored.Add(1)
		}

		a.mu.Lock()
		a.inFlight--
		if a.inFlight == 0 && len(a.pending) > 0 && !a.closed {
			a.sealLocked(sealIdle)
		}
		a.mu.Unlock()
	}
}

// Close drains the gate (refusing new Appends, letting in-progress ones
// land), seals the remainder, waits for every queued batch to anchor,
// and closes the ledger. Idempotent.
func (a *Auditor) Close() error {
	a.gate.Drain()
	a.mu.Lock()
	if !a.closed {
		a.sealLocked(sealClose)
		a.closed = true
		a.cond.Broadcast()
	}
	a.mu.Unlock()
	a.anchorDone.Wait()
	return a.opts.Ledger.Close()
}

// Roots returns the ledger's anchored roots.
func (a *Auditor) Roots() []AnchoredRoot { return a.opts.Ledger.Roots() }

// Summary is the /debug/audit overview.
type Summary struct {
	Records  int64 `json:"records"`
	Batches  int64 `json:"batches"`
	Anchored int64 `json:"anchored"`
	Pending  int   `json:"pending"`
	Queued   int   `json:"queued"`
	Kept     int   `json:"kept_batches"`
	Evicted  int64 `json:"evicted_batches"`
}

// Summarize reports the auditor's current shape.
func (a *Auditor) Summarize() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Summary{
		Records:  a.m.records.Value(),
		Batches:  a.m.batches.Value(),
		Anchored: a.m.anchored.Value(),
		Pending:  len(a.pending),
		Queued:   len(a.queue),
		Kept:     len(a.ring),
		Evicted:  a.m.evicted.Value(),
	}
}

// ProofByTrace builds the inclusion proof for the most recent sealed
// record carrying the given trace ID. The second return is false when
// the trace is unknown, still pending (unsealed), or evicted from the
// proof ring.
func (a *Auditor) ProofByTrace(trace uint64) (*InclusionProof, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ref, ok := a.byTrace[trace]
	if !ok || len(a.ring) == 0 {
		a.m.proofsMissed.Add(1)
		return nil, false
	}
	first := a.ring[0].Seq
	if ref.seq < first || ref.seq >= first+uint64(len(a.ring)) {
		a.m.proofsMissed.Add(1)
		return nil, false
	}
	sb := a.ring[ref.seq-first]
	if sb.Seq != ref.seq || ref.index >= len(sb.Records) {
		a.m.proofsMissed.Add(1)
		return nil, false
	}
	p := newInclusionProof(sb, ref.index)
	a.m.proofsServed.Add(1)
	return p, true
}

// Flush seals whatever is pending without closing — test and shutdown
// hook for "make proofs available now".
func (a *Auditor) Flush() {
	a.mu.Lock()
	if !a.closed {
		a.sealLocked(sealTimer)
	}
	a.mu.Unlock()
}

// String identifies the auditor in option dumps.
func (a *Auditor) String() string {
	return fmt.Sprintf("audit.Auditor{maxBatch:%d maxDelay:%s}", a.opts.MaxBatch, a.opts.MaxDelay)
}
