package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecord(i int) Record {
	var digest [32]byte
	binary.BigEndian.PutUint64(digest[:], uint64(i)*0x9e3779b97f4a7c15)
	return Record{
		Trace:     uint64(i + 1),
		UnixNanos: int64(1700000000_000000000 + i),
		Model:     "lenet",
		Cut:       "conv2",
		Mode:      "fitted",
		Member:    -1,
		InVivo:    3.25 + float64(i)/16,
		Sampled:   i%3 == 0,
		ActDigest: digest,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i := 0; i < 8; i++ {
		r := testRecord(i)
		raw, err := r.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalRecord(raw)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got != r {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
		}
	}
}

func TestRecordDecodeCorrupt(t *testing.T) {
	r := testRecord(0)
	raw, _ := r.Marshal()

	cases := map[string][]byte{
		"empty":       {},
		"short":       raw[:10],
		"bad version": append([]byte{99}, raw[1:]...),
		"trailing":    append(append([]byte{}, raw...), 0xff),
		"truncated":   raw[:len(raw)-5],
	}
	for name, b := range cases {
		if _, err := UnmarshalRecord(b); !errors.Is(err, ErrRecordCorrupt) {
			t.Errorf("%s: err = %v, want ErrRecordCorrupt", name, err)
		}
	}

	// A flipped Sampled byte (index recomputed from layout) is caught.
	bad := append([]byte{}, raw...)
	bad[len(bad)-32-8-1] = 7
	if _, err := UnmarshalRecord(bad); !errors.Is(err, ErrRecordCorrupt) {
		t.Errorf("bad sampled byte: err = %v, want ErrRecordCorrupt", err)
	}
}

func TestMerkleInclusionAllSizes(t *testing.T) {
	for n := 1; n <= 17; n++ {
		leaves := make([][32]byte, n)
		for i := range leaves {
			raw, _ := testRecord(i).Marshal()
			leaves[i] = LeafHash(raw)
		}
		root := MerkleRoot(leaves)
		for i := 0; i < n; i++ {
			path := MerklePath(leaves, i)
			if err := VerifyInclusion(leaves[i], i, n, path, root); err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			// The same path must not validate a different leaf.
			var wrong [32]byte
			copy(wrong[:], leaves[i][:])
			wrong[0] ^= 1
			if err := VerifyInclusion(wrong, i, n, path, root); !errors.Is(err, ErrProofInvalid) {
				t.Fatalf("n=%d i=%d tampered leaf: err = %v, want ErrProofInvalid", n, i, err)
			}
		}
		// Impossible shapes.
		if err := VerifyInclusion(leaves[0], n, n, nil, root); !errors.Is(err, ErrProofInvalid) {
			t.Fatalf("n=%d out-of-range index: %v", n, err)
		}
	}
}

func TestMemLedgerSequencing(t *testing.T) {
	l := NewMemLedger()
	if err := l.Anchor(AnchoredRoot{Seq: 1}); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("gap seq: err = %v, want ErrLedgerCorrupt", err)
	}
	if err := l.Anchor(AnchoredRoot{Seq: 0}); err != nil {
		t.Fatalf("seq 0: %v", err)
	}
	if err := l.Anchor(AnchoredRoot{Seq: 0}); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("replayed seq: err = %v, want ErrLedgerCorrupt", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Anchor(AnchoredRoot{Seq: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: err = %v, want ErrClosed", err)
	}
}

func fileLedgerWith(t *testing.T, path string, n int) []AnchoredRoot {
	t.Helper()
	l, err := OpenFileLedger(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var want []AnchoredRoot
	for i := 0; i < n; i++ {
		raw, _ := testRecord(i).Marshal()
		r := AnchoredRoot{Seq: uint64(i), Count: i + 1, Root: LeafHash(raw), UnixNanos: int64(i) * 1000}
		if err := l.Anchor(r); err != nil {
			t.Fatalf("anchor %d: %v", i, err)
		}
		want = append(want, r)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return want
}

func TestFileLedgerReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	want := fileLedgerWith(t, path, 5)

	l, err := OpenFileLedger(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	got := l.Roots()
	if len(got) != len(want) {
		t.Fatalf("reopened %d roots, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("root %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// And appends continue the chain.
	if err := l.Anchor(AnchoredRoot{Seq: 5, Count: 1}); err != nil {
		t.Fatalf("anchor after reopen: %v", err)
	}
}

func TestFileLedgerCrashTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	fileLedgerWith(t, path, 3)

	// Simulate a crash mid-append: leave half an entry at the tail.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, ledgerEntrySize/2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err := OpenFileLedger(path)
	if err != nil {
		t.Fatalf("reopen after partial append: %v", err)
	}
	defer l.Close()
	if l.Recovered != ledgerEntrySize/2 {
		t.Fatalf("Recovered = %d, want %d", l.Recovered, ledgerEntrySize/2)
	}
	if got := len(l.Roots()); got != 3 {
		t.Fatalf("roots after recovery = %d, want 3", got)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != info.Size() {
		t.Fatalf("file not truncated back: %d, want %d", after.Size(), info.Size())
	}
}

func TestFileLedgerDetectsTampering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	fileLedgerWith(t, path, 3)

	flip := func(t *testing.T, off int64) {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[off] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Flip one byte inside entry 1's root (after the header and entry 0):
	// both the CRC and the hash chain break.
	off := int64(len(ledgerMagic) + ledgerEntrySize + 25)
	flip(t, off)
	if _, err := OpenFileLedger(path); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("tampered entry: err = %v, want ErrLedgerCorrupt", err)
	}
	flip(t, off) // restore

	// A forged entry whose CRC was recomputed still breaks the chain:
	// rewrite entry 1's root AND its CRC.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	entry := b[len(ledgerMagic)+ledgerEntrySize : len(ledgerMagic)+2*ledgerEntrySize]
	entry[25] ^= 0x01
	crc := crc32.ChecksumIEEE(entry[:ledgerEntrySize-4])
	binary.BigEndian.PutUint32(entry[ledgerEntrySize-4:], crc)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileLedger(path); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("forged entry: err = %v, want ErrLedgerCorrupt", err)
	}

	// A clobbered header is detected too.
	b[0] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileLedger(path); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("bad header: err = %v, want ErrLedgerCorrupt", err)
	}
}

func TestAuditorSealsAndProves(t *testing.T) {
	a := New(Options{MaxBatch: 4, MaxDelay: time.Millisecond})
	const n = 13
	for i := 0; i < n; i++ {
		if err := a.Append(testRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	a.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := a.Summarize()
		if s.Pending == 0 && s.Queued == 0 && s.Records == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auditor did not settle: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}

	roots := a.Roots()
	if len(roots) == 0 {
		t.Fatal("no anchored roots")
	}
	for i := 0; i < n; i++ {
		p, ok := a.ProofByTrace(uint64(i + 1))
		if !ok {
			t.Fatalf("no proof for trace %d", i+1)
		}
		rec, err := p.VerifyAgainst(roots)
		if err != nil {
			t.Fatalf("verify trace %d: %v", i+1, err)
		}
		if rec != testRecord(i) {
			t.Fatalf("trace %d decoded to wrong record", i+1)
		}
	}
	if _, ok := a.ProofByTrace(0xdead); ok {
		t.Fatal("proof served for unknown trace")
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(testRecord(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestAuditorCloseDrainsMidBatch is the kill-server-mid-batch
// guarantee: records appended moments before Close — behind a slow
// ledger, so several batches are still queued unanchored — must all be
// sealed and anchored by the time Close returns. No sealed batch is
// lost.
func TestAuditorCloseDrainsMidBatch(t *testing.T) {
	mem := NewMemLedger()
	a := New(Options{
		MaxBatch: 4,
		MaxDelay: 50 * time.Millisecond, // long: Close, not the timer, must flush
		Ledger:   WithLatency(mem, 2*time.Millisecond),
	})
	const n = 11
	for i := 0; i < n; i++ {
		if err := a.Append(testRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Close immediately: pending records are mid-batch, queued batches
	// are mid-anchor.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	roots := mem.Roots()
	total := 0
	for _, r := range roots {
		total += r.Count
	}
	if total != n {
		t.Fatalf("anchored %d records across %d batches, want %d", total, len(roots), n)
	}
	// Every record remains provable after Close.
	for i := 0; i < n; i++ {
		p, ok := a.ProofByTrace(uint64(i + 1))
		if !ok {
			t.Fatalf("no proof for trace %d after close", i+1)
		}
		if _, err := p.VerifyAgainst(roots); err != nil {
			t.Fatalf("verify trace %d after close: %v", i+1, err)
		}
	}
}

func TestAuditorEvictsOldBatches(t *testing.T) {
	a := New(Options{MaxBatch: 1, KeepBatches: 2})
	defer a.Close()
	for i := 0; i < 6; i++ {
		if err := a.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	s := a.Summarize()
	if s.Kept > 2 {
		t.Fatalf("ring holds %d batches, cap 2", s.Kept)
	}
	if s.Evicted == 0 {
		t.Fatal("expected evictions")
	}
	if _, ok := a.ProofByTrace(1); ok {
		t.Fatal("evicted trace still served")
	}
}

func TestProofTamperDetection(t *testing.T) {
	a := New(Options{MaxBatch: 8})
	for i := 0; i < 5; i++ {
		if err := a.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	roots := a.Roots()
	p, ok := a.ProofByTrace(3)
	if !ok {
		t.Fatal("no proof")
	}

	// Corrupted record bytes: decode still works but the leaf changes.
	tampered := *p
	raw := []byte(tampered.Record)
	raw[len(raw)-1] ^= 0x01 // flip a hex nibble of the digest
	tampered.Record = string(raw)
	if _, err := tampered.VerifyAgainst(roots); !errors.Is(err, ErrProofInvalid) && !errors.Is(err, ErrRecordCorrupt) {
		t.Fatalf("tampered record: err = %v, want ErrProofInvalid/ErrRecordCorrupt", err)
	}

	// Unanchored root: proof validates internally but no ledger entry.
	orphan := *p
	orphan.Seq = 999
	if _, err := orphan.VerifyAgainst(roots); !errors.Is(err, ErrRootNotAnchored) {
		t.Fatalf("orphan seq: err = %v, want ErrRootNotAnchored", err)
	}

	// Wrong index: the path no longer replays to the root.
	shifted := *p
	shifted.Index = (p.Index + 1) % p.Count
	if _, err := shifted.VerifyAgainst(roots); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("shifted index: err = %v, want ErrProofInvalid", err)
	}
}

func ExampleRecord_Marshal() {
	r := testRecordForExample()
	raw, _ := r.Marshal()
	rec, _ := UnmarshalRecord(raw)
	fmt.Println(rec.Model, rec.Mode, rec.Member)
	// Output: lenet fitted -1
}

func testRecordForExample() Record {
	return Record{Trace: 1, Model: "lenet", Cut: "conv2", Mode: "fitted", Member: -1}
}
