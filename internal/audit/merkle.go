package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// The Merkle construction is RFC 6962's: leaves and interior nodes are
// domain-separated (0x00 / 0x01 prefixes) so a leaf can never be
// confused for a node, and a tree over n leaves splits at the largest
// power of two strictly less than n. Proof paths list siblings from
// the leaf upward; verification consumes them from the root downward.

// LeafHash hashes a record's canonical bytes into its Merkle leaf.
func LeafHash(record []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(record)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree roots.
func nodeHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// splitPoint returns the largest power of two strictly less than n
// (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// MerkleRoot computes the root over the leaf hashes. A single leaf is
// its own root; the empty tree is the hash of the empty string (never
// produced by the batcher, which seals only non-empty batches).
func MerkleRoot(leaves [][32]byte) [32]byte {
	switch len(leaves) {
	case 0:
		return sha256.Sum256(nil)
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(MerkleRoot(leaves[:k]), MerkleRoot(leaves[k:]))
}

// MerklePath returns the inclusion path for leaf i: sibling subtree
// roots ordered leaf-to-root.
func MerklePath(leaves [][32]byte, i int) [][32]byte {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	if len(leaves) == 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if i < k {
		return append(MerklePath(leaves[:k], i), MerkleRoot(leaves[k:]))
	}
	return append(MerklePath(leaves[k:], i-k), MerkleRoot(leaves[:k]))
}

// RootFromPath replays an inclusion path: given the leaf hash, its
// index, the batch size, and the sibling path, it recomputes the root
// the path commits to. A structurally impossible proof (index out of
// range, path length mismatch) wraps ErrProofInvalid.
func RootFromPath(leaf [32]byte, index, n int, path [][32]byte) ([32]byte, error) {
	if n <= 0 || index < 0 || index >= n {
		return [32]byte{}, fmt.Errorf("%w: index %d out of range for %d leaves", ErrProofInvalid, index, n)
	}
	if n == 1 {
		if len(path) != 0 {
			return [32]byte{}, fmt.Errorf("%w: %d extra path elements for single-leaf batch", ErrProofInvalid, len(path))
		}
		return leaf, nil
	}
	if len(path) == 0 {
		return [32]byte{}, fmt.Errorf("%w: path exhausted with %d leaves remaining", ErrProofInvalid, n)
	}
	sib := path[len(path)-1]
	rest := path[:len(path)-1]
	k := splitPoint(n)
	if index < k {
		sub, err := RootFromPath(leaf, index, k, rest)
		if err != nil {
			return [32]byte{}, err
		}
		return nodeHash(sub, sib), nil
	}
	sub, err := RootFromPath(leaf, index-k, n-k, rest)
	if err != nil {
		return [32]byte{}, err
	}
	return nodeHash(sib, sub), nil
}

// VerifyInclusion checks that leaf sits at index in a batch of n leaves
// whose root is root.
func VerifyInclusion(leaf [32]byte, index, n int, path [][32]byte, root [32]byte) error {
	got, err := RootFromPath(leaf, index, n, path)
	if err != nil {
		return err
	}
	if got != root {
		return fmt.Errorf("%w: replayed root %s != claimed root %s",
			ErrProofInvalid, hex.EncodeToString(got[:8]), hex.EncodeToString(root[:8]))
	}
	return nil
}
