package audit

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func settledAuditor(t *testing.T, n int, traceBase uint64) *Auditor {
	t.Helper()
	a := New(Options{MaxBatch: 4})
	for i := 0; i < n; i++ {
		r := testRecord(i)
		r.Trace = traceBase + uint64(i)
		if err := a.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestHandlerProofRoundTrip(t *testing.T) {
	a := settledAuditor(t, 6, 0x100)
	defer a.Close()
	a.Flush()
	srv := httptest.NewServer(Handler(LocalSource{Auditor: a}))
	defer srv.Close()

	proof, err := FetchProof(srv.URL, "0000000000000103", nil)
	if err != nil {
		t.Fatalf("fetch proof: %v", err)
	}
	roots, err := FetchRoots(srv.URL, nil)
	if err != nil {
		t.Fatalf("fetch roots: %v", err)
	}
	rec, err := proof.VerifyAgainst(roots)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rec.Trace != 0x103 {
		t.Fatalf("verified record trace %#x, want 0x103", rec.Trace)
	}

	if _, err := FetchProof(srv.URL, "dead", nil); err == nil {
		t.Fatal("unknown trace should not produce a proof")
	}
	if _, err := FetchProof(srv.URL, "zzzz", nil); err == nil {
		t.Fatal("malformed trace should error")
	}

	// The bare status endpoint serves a single-source Status.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint: %s", resp.Status)
	}
}

// TestMergedHandlerFansOut is the gateway shape: one handler over
// several backends' audit endpoints, mirroring obs.MergedSnapshot.
func TestMergedHandlerFansOut(t *testing.T) {
	a0 := settledAuditor(t, 3, 0x100)
	defer a0.Close()
	a1 := settledAuditor(t, 3, 0x200)
	defer a1.Close()
	a0.Flush()
	a1.Flush()
	b0 := httptest.NewServer(Handler(LocalSource{Auditor: a0}))
	defer b0.Close()
	b1 := httptest.NewServer(Handler(LocalSource{Auditor: a1}))
	defer b1.Close()

	gw := httptest.NewServer(Handler(
		HTTPSource{Name: "b0", Base: b0.URL},
		HTTPSource{Name: "b1", Base: b1.URL},
	))
	defer gw.Close()

	// A trace held only by the second backend is found through the
	// gateway, and verifies against the gateway's merged root union.
	proof, err := FetchProof(gw.URL, "0000000000000201", nil)
	if err != nil {
		t.Fatalf("fetch via gateway: %v", err)
	}
	roots, err := FetchRoots(gw.URL, nil)
	if err != nil {
		t.Fatalf("fetch merged roots: %v", err)
	}
	if _, err := proof.VerifyAgainst(roots); err != nil {
		t.Fatalf("verify against merged roots: %v", err)
	}

	// A proof from one backend must not verify against a root set that
	// excludes that backend.
	only0, err := FetchRoots(b0.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proof.VerifyAgainst(only0); !errors.Is(err, ErrRootNotAnchored) {
		t.Fatalf("foreign roots: err = %v, want ErrRootNotAnchored", err)
	}
}
