package audit

import (
	"encoding/hex"
	"fmt"
)

// InclusionProof is the client-verifiable artifact served from
// /debug/audit?trace=…: the canonical record bytes, the record's
// position in its sealed batch, the sibling path, and the batch root.
// All hashes are hex so the proof survives JSON round-trips byte-exact.
type InclusionProof struct {
	// Trace is the record's trace ID, zero-padded hex (the lookup key).
	Trace string `json:"trace"`
	// Seq is the sealed batch's sequence number — the anchored root to
	// check against.
	Seq uint64 `json:"seq"`
	// Index is the record's leaf position within the batch.
	Index int `json:"index"`
	// Count is the number of leaves in the batch.
	Count int `json:"count"`
	// Record is the canonical record encoding, hex.
	Record string `json:"record"`
	// Path lists sibling subtree roots leaf-to-root, hex.
	Path []string `json:"path"`
	// Root is the batch's Merkle root, hex.
	Root string `json:"root"`
}

// newInclusionProof assembles the proof for leaf index of a sealed
// batch. Caller guarantees index is in range.
func newInclusionProof(sb *SealedBatch, index int) *InclusionProof {
	path := MerklePath(sb.Leaves, index)
	p := &InclusionProof{
		Seq:    sb.Seq,
		Index:  index,
		Count:  len(sb.Leaves),
		Record: hex.EncodeToString(sb.Records[index]),
		Path:   make([]string, len(path)),
		Root:   hex.EncodeToString(sb.Root[:]),
	}
	for i, h := range path {
		p.Path[i] = hex.EncodeToString(h[:])
	}
	if r, err := UnmarshalRecord(sb.Records[index]); err == nil {
		p.Trace = fmt.Sprintf("%016x", r.Trace)
	}
	return p
}

// Verify replays the proof: decode the canonical record, recompute its
// leaf hash, and fold the sibling path back into a root. It returns the
// decoded Record on success. A record that fails to decode or whose
// trace disagrees with the envelope wraps ErrRecordCorrupt; a path that
// does not reproduce the claimed root wraps ErrProofInvalid. Verify
// does NOT consult a ledger — use VerifyAgainst for that.
func (p *InclusionProof) Verify() (Record, error) {
	raw, err := hex.DecodeString(p.Record)
	if err != nil {
		return Record{}, fmt.Errorf("%w: record hex: %v", ErrRecordCorrupt, err)
	}
	rec, err := UnmarshalRecord(raw)
	if err != nil {
		return Record{}, err
	}
	if p.Trace != "" && p.Trace != fmt.Sprintf("%016x", rec.Trace) {
		return Record{}, fmt.Errorf("%w: envelope trace %s != record trace %016x",
			ErrRecordCorrupt, p.Trace, rec.Trace)
	}
	path := make([][32]byte, len(p.Path))
	for i, s := range p.Path {
		if err := decodeHash(s, &path[i]); err != nil {
			return Record{}, fmt.Errorf("%w: path[%d]: %v", ErrProofInvalid, i, err)
		}
	}
	var root [32]byte
	if err := decodeHash(p.Root, &root); err != nil {
		return Record{}, fmt.Errorf("%w: root: %v", ErrProofInvalid, err)
	}
	if err := VerifyInclusion(LeafHash(raw), p.Index, p.Count, path, root); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// VerifyAgainst runs Verify and then checks the proof's root is one the
// ledger anchored under Seq with the same leaf count. The root set may
// be a fleet union (gateway merge), where independent backends reuse
// the same sequence numbers — a proof is accepted if ANY anchor matches
// exactly, and rejected with ErrRootNotAnchored only when none does.
func (p *InclusionProof) VerifyAgainst(roots []AnchoredRoot) (Record, error) {
	rec, err := p.Verify()
	if err != nil {
		return Record{}, err
	}
	seqSeen := false
	for _, ar := range roots {
		if ar.Seq != p.Seq {
			continue
		}
		seqSeen = true
		if hex.EncodeToString(ar.Root[:]) == p.Root && ar.Count == p.Count {
			return rec, nil
		}
	}
	if seqSeen {
		return Record{}, fmt.Errorf("%w: seq %d anchored, but every anchored root differs from the proof's", ErrRootNotAnchored, p.Seq)
	}
	return Record{}, fmt.Errorf("%w: no anchor for seq %d among %d roots", ErrRootNotAnchored, p.Seq, len(roots))
}

// decodeHash parses a 32-byte hex hash.
func decodeHash(s string, dst *[32]byte) error {
	b, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	if len(b) != 32 {
		return fmt.Errorf("hash is %d bytes, want 32", len(b))
	}
	copy(dst[:], b)
	return nil
}
