// Package audit provides the tamper-evident privacy evidence trail:
// every served inference emits a canonical-encoded Record (which noise
// was applied, the realized in-vivo privacy when the monitor sampled
// one, and a digest of the activation the cloud actually saw), records
// are hashed into Merkle-batched sealed batches, and batch roots are
// anchored through a pluggable Ledger. A client holding a trace ID can
// later fetch an inclusion proof over /debug/audit and replay it
// against the anchored root — neither operator nor client can silently
// rewrite what noise a query received.
//
// The batcher reuses the internal/sched idiom (MaxBatch/MaxDelay,
// idle-flush, deterministic Close drain); the Merkle construction is
// the certificate-transparency one (RFC 6962): domain-separated leaf
// and node hashes, trees split at the largest power of two.
package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Typed errors for record and proof validation. Callers match with
// errors.Is; every decode/verify failure wraps one of these.
var (
	// ErrRecordCorrupt marks a record whose canonical bytes fail to
	// decode or whose decoded fields disagree with the proof envelope.
	ErrRecordCorrupt = errors.New("audit: record corrupt")
	// ErrProofInvalid marks an inclusion proof whose replayed root does
	// not match the anchored root (or whose shape is impossible).
	ErrProofInvalid = errors.New("audit: inclusion proof invalid")
	// ErrRootNotAnchored marks a proof whose batch root is absent from
	// the ledger the verifier trusts.
	ErrRootNotAnchored = errors.New("audit: root not anchored in ledger")
	// ErrLedgerCorrupt marks a ledger file whose header, entry CRC,
	// hash chain, or sequence numbering fails validation.
	ErrLedgerCorrupt = errors.New("audit: ledger corrupt")
	// ErrClosed is returned by operations on a closed Auditor or Ledger.
	ErrClosed = errors.New("audit: closed")
)

// recordVersion is the canonical-encoding version byte. Bump only with
// a new decode branch: anchored roots commit to these exact bytes.
const recordVersion = 1

// Record is one per-request privacy evidence entry. The canonical
// encoding (Marshal) is what gets leaf-hashed; all multi-byte fields
// are big-endian so the bytes are platform-independent.
type Record struct {
	// Trace is the request trace ID (obs.TraceID), the retrieval key.
	Trace uint64
	// UnixNanos is the server receive timestamp.
	UnixNanos int64
	// Model and Cut identify the deployed remote half ("lenet", "conv2").
	Model string
	// Cut names the split point the record's activation crossed.
	Cut string
	// Mode is the noise source mode (core.ModeStored / ModeFitted /
	// ModeFittedMul) or "none" when serving without noise attribution.
	Mode string
	// Member is the sampled collection member, -1 for fresh per-query
	// sampling (fitted modes), -2 when the edge did not attribute one.
	Member int32
	// InVivo is the realized in-vivo 1/SNR the privacy monitor computed
	// for this query; meaningful only when Sampled is true.
	InVivo float64
	// Sampled reports whether the monitor computed InVivo on this query
	// (the monitor samples every Nth draw).
	Sampled bool
	// ActDigest is SHA-256 over the activation payload the server
	// received — the noised bytes the cloud actually saw.
	ActDigest [32]byte
}

// recordFixedLen is the encoded size excluding the three string fields.
const recordFixedLen = 1 + 8 + 8 + 3*2 + 4 + 1 + 8 + 32

// maxRecordString bounds each string field; the length prefix is uint16.
const maxRecordString = math.MaxUint16

// Marshal renders the canonical v1 encoding:
//
//	byte     version (1)
//	uint64   Trace
//	int64    UnixNanos
//	uint16+n Model
//	uint16+n Cut
//	uint16+n Mode
//	int32    Member
//	byte     Sampled
//	uint64   InVivo (IEEE-754 bits)
//	[32]byte ActDigest
func (r Record) Marshal() ([]byte, error) {
	for _, s := range []string{r.Model, r.Cut, r.Mode} {
		if len(s) > maxRecordString {
			return nil, fmt.Errorf("%w: string field %d bytes exceeds %d", ErrRecordCorrupt, len(s), maxRecordString)
		}
	}
	buf := make([]byte, 0, recordFixedLen+len(r.Model)+len(r.Cut)+len(r.Mode))
	buf = append(buf, recordVersion)
	buf = binary.BigEndian.AppendUint64(buf, r.Trace)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.UnixNanos))
	for _, s := range []string{r.Model, r.Cut, r.Mode} {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Member))
	if r.Sampled {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.InVivo))
	buf = append(buf, r.ActDigest[:]...)
	return buf, nil
}

// UnmarshalRecord decodes canonical bytes back into a Record. Any
// structural problem — wrong version, short buffer, trailing bytes —
// wraps ErrRecordCorrupt.
func UnmarshalRecord(b []byte) (Record, error) {
	var r Record
	if len(b) < recordFixedLen {
		return r, fmt.Errorf("%w: %d bytes, need at least %d", ErrRecordCorrupt, len(b), recordFixedLen)
	}
	if b[0] != recordVersion {
		return r, fmt.Errorf("%w: unknown version %d", ErrRecordCorrupt, b[0])
	}
	p := 1
	r.Trace = binary.BigEndian.Uint64(b[p:])
	p += 8
	r.UnixNanos = int64(binary.BigEndian.Uint64(b[p:]))
	p += 8
	for _, dst := range []*string{&r.Model, &r.Cut, &r.Mode} {
		if len(b) < p+2 {
			return Record{}, fmt.Errorf("%w: truncated string length", ErrRecordCorrupt)
		}
		n := int(binary.BigEndian.Uint16(b[p:]))
		p += 2
		if len(b) < p+n {
			return Record{}, fmt.Errorf("%w: truncated string body", ErrRecordCorrupt)
		}
		*dst = string(b[p : p+n])
		p += n
	}
	if len(b) != p+4+1+8+32 {
		return Record{}, fmt.Errorf("%w: %d trailing or missing bytes", ErrRecordCorrupt, len(b)-(p+4+1+8+32))
	}
	r.Member = int32(binary.BigEndian.Uint32(b[p:]))
	p += 4
	switch b[p] {
	case 0:
		r.Sampled = false
	case 1:
		r.Sampled = true
	default:
		return Record{}, fmt.Errorf("%w: bad Sampled byte %d", ErrRecordCorrupt, b[p])
	}
	p++
	r.InVivo = math.Float64frombits(binary.BigEndian.Uint64(b[p:]))
	p += 8
	copy(r.ActDigest[:], b[p:])
	return r, nil
}

// DigestActivation hashes an activation payload the way record emission
// does: a domain tag, the shape (so reshapes change the digest), and
// the raw payload bytes.
func DigestActivation(tag string, shape []int, payload []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("shredder-act/1\x00"))
	h.Write([]byte(tag))
	h.Write([]byte{0})
	var dims [8]byte
	binary.BigEndian.PutUint64(dims[:], uint64(len(shape)))
	h.Write(dims[:])
	for _, d := range shape {
		binary.BigEndian.PutUint64(dims[:], uint64(d))
		h.Write(dims[:])
	}
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}
