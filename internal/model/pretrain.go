package model

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"shredder/internal/data"
	"shredder/internal/nn"
	"shredder/internal/optim"
	"shredder/internal/tensor"
)

// TrainConfig controls pre-training of a benchmark network. Shredder never
// retrains these weights; pre-training stands in for the paper's published
// pre-trained models.
type TrainConfig struct {
	// TrainN and TestN are dataset sizes; zero selects the benchmark
	// defaults.
	TrainN, TestN int
	// Epochs of pre-training (0 = default).
	Epochs int
	// BatchSize of pre-training minibatches (0 = default 32).
	BatchSize int
	// LR is the Adam learning rate (0 = default 1e-3).
	LR float64
	// Seed drives weight init, data generation and shuffling.
	Seed int64
	// Progress, when non-nil, receives one line per epoch.
	Progress io.Writer
}

func (c TrainConfig) withDefaults(spec Spec) TrainConfig {
	if c.TrainN == 0 {
		switch spec.Name {
		case "lenet":
			c.TrainN = 2400
		case "alexnet":
			c.TrainN = 1200
		default:
			c.TrainN = 1600
		}
	}
	if c.TestN == 0 {
		if spec.Name == "alexnet" {
			c.TestN = 400
		} else {
			c.TestN = 600
		}
	}
	if c.Epochs == 0 {
		switch spec.Name {
		case "lenet":
			c.Epochs = 6
		case "alexnet":
			c.Epochs = 4
		default:
			c.Epochs = 4
		}
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		// The deeper AlexNet stack needs a hotter Adam rate to learn the
		// 20-class scenes task in few epochs.
		if spec.Name == "alexnet" {
			c.LR = 3e-3
		} else {
			c.LR = 1e-3
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Pretrained bundles a trained network with its data and statistics — the
// starting point of every Shredder experiment.
type Pretrained struct {
	Spec    Spec
	Net     *nn.Sequential
	Train   *data.Dataset
	Test    *data.Dataset
	TestAcc float64
	Mean    float64 // normalization applied to both splits
	Std     float64
	Config  TrainConfig
}

// Train generates the benchmark's dataset, trains the network with Adam and
// cross-entropy, and reports test accuracy.
func Train(spec Spec, cfg TrainConfig) (*Pretrained, error) {
	cfg = cfg.withDefaults(spec)
	rng := tensor.NewRNG(cfg.Seed)
	net := spec.Build(rng)

	full := spec.Dataset.Generate(cfg.TrainN+cfg.TestN, cfg.Seed+1000)
	train, test := full.Split(cfg.TrainN, cfg.Seed+2000)
	mean, std := train.Normalize()
	test.ApplyNormalization(mean, std)

	opt := optim.NewAdam(net.Params(), cfg.LR)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffled := train.Shuffle(cfg.Seed + int64(3000+epoch))
		var epochLoss float64
		batches := shuffled.Batches(cfg.BatchSize)
		for _, b := range batches {
			net.ZeroGrad()
			logits := net.Forward(b.Images, true)
			loss, grad := nn.CrossEntropy(logits, b.Labels)
			epochLoss += loss
			net.Backward(grad)
			opt.Step()
		}
		if cfg.Progress != nil {
			acc := Evaluate(net, test, cfg.BatchSize)
			fmt.Fprintf(cfg.Progress, "%s epoch %d/%d: loss %.4f, test acc %.2f%%\n",
				spec.Name, epoch+1, cfg.Epochs, epochLoss/float64(len(batches)), 100*acc)
		}
	}
	acc := Evaluate(net, test, cfg.BatchSize)
	return &Pretrained{
		Spec: spec, Net: net, Train: train, Test: test,
		TestAcc: acc, Mean: mean, Std: std, Config: cfg,
	}, nil
}

// Evaluate returns test-set accuracy of a network.
func Evaluate(net *nn.Sequential, ds *data.Dataset, batchSize int) float64 {
	if ds.N() == 0 {
		return 0
	}
	correct := 0
	for _, b := range ds.Batches(batchSize) {
		logits := net.Forward(b.Images, false)
		for i, y := range b.Labels {
			if logits.Slice(i).Argmax() == y {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.N())
}

// cachePath returns the checkpoint path for a spec/config pair.
func cachePath(dir string, spec Spec, cfg TrainConfig) string {
	return filepath.Join(dir, fmt.Sprintf("%s-n%d-e%d-s%d.gob", spec.Name, cfg.TrainN, cfg.Epochs, cfg.Seed))
}

// TrainCached behaves like Train but reuses weights cached in dir from a
// previous identical run, regenerating only the datasets (which are
// deterministic in the seed). The cache keeps the multi-network experiment
// harness from re-training AlexNet for every figure.
func TrainCached(spec Spec, cfg TrainConfig, dir string) (*Pretrained, error) {
	cfg = cfg.withDefaults(spec)
	path := cachePath(dir, spec, cfg)
	if _, err := os.Stat(path); err != nil {
		pre, err := Train(spec, cfg)
		if err != nil {
			return nil, err
		}
		if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
			return nil, fmt.Errorf("model: cache dir: %w", mkErr)
		}
		if saveErr := nn.SaveFile(pre.Net, path); saveErr != nil {
			return nil, saveErr
		}
		return pre, nil
	}
	// Cache hit: rebuild datasets and load weights.
	rng := tensor.NewRNG(cfg.Seed)
	net := spec.Build(rng)
	if err := nn.LoadFile(net, path); err != nil {
		return nil, err
	}
	full := spec.Dataset.Generate(cfg.TrainN+cfg.TestN, cfg.Seed+1000)
	train, test := full.Split(cfg.TrainN, cfg.Seed+2000)
	mean, std := train.Normalize()
	test.ApplyNormalization(mean, std)
	return &Pretrained{
		Spec: spec, Net: net, Train: train, Test: test,
		TestAcc: Evaluate(net, test, cfg.BatchSize), Mean: mean, Std: std, Config: cfg,
	}, nil
}
