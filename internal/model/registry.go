package model

import "fmt"

// Benchmark binds a network spec to the tuned noise-training
// hyperparameters the experiments use for it: the Laplace initialization
// (µ, b) and the λ privacy knob of paper Eq. 3, which the paper tunes per
// network ("as the networks and the number of training parameters get
// bigger, it is better to make λ smaller").
type Benchmark struct {
	Spec Spec
	// NoiseMu and NoiseScale are the Laplace location and scale used to
	// initialize the noise tensor.
	NoiseMu, NoiseScale float64
	// Lambda weighs the privacy term of the Shredder loss.
	Lambda float64
	// NoiseLR is the Adam learning rate for noise training.
	NoiseLR float64
	// NoiseEpochs is the default number of epochs of noise training
	// (fractional values allowed, as in the paper's 0.1-epoch AlexNet run).
	NoiseEpochs float64
	// PrivacyTarget is the in vivo (1/SNR) level at which λ decays to
	// stabilize privacy (paper §3.2).
	PrivacyTarget float64
}

// Benchmarks returns the four paper benchmarks with tuned defaults, in
// Table 1 order.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Spec: LeNet(), NoiseMu: 0, NoiseScale: 5.0, Lambda: 0.002, NoiseLR: 0.01, NoiseEpochs: 12, PrivacyTarget: 10},
		{Spec: CifarNet(), NoiseMu: 0, NoiseScale: 3.0, Lambda: 0.0008, NoiseLR: 0.01, NoiseEpochs: 3, PrivacyTarget: 6},
		{Spec: SvhnNet(), NoiseMu: 0, NoiseScale: 2.5, Lambda: 0.0005, NoiseLR: 0.01, NoiseEpochs: 6, PrivacyTarget: 4},
		{Spec: AlexNet(), NoiseMu: 0, NoiseScale: 2.0, Lambda: 0.0003, NoiseLR: 0.01, NoiseEpochs: 2, PrivacyTarget: 4},
	}
}

// BenchmarkByName returns the named benchmark.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Spec.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("model: unknown benchmark %q", name)
}
