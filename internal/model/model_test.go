package model

import (
	"strings"
	"testing"

	"shredder/internal/tensor"
)

func TestAllSpecsBuildAndRun(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := tensor.NewRNG(1)
			net := spec.Build(rng)
			in := spec.Dataset.SampleShape()
			out := net.OutShape(in)
			if !tensor.ShapeEq(out, []int{spec.Dataset.Classes()}) {
				t.Fatalf("%s output shape %v, want [%d]", spec.Name, out, spec.Dataset.Classes())
			}
			// A forward pass on a real batch must produce finite logits.
			ds := spec.Dataset.Generate(4, 2)
			logits := net.Forward(ds.Images, false)
			if !logits.AllFinite() {
				t.Fatalf("%s produced non-finite logits", spec.Name)
			}
			if !tensor.ShapeEq(logits.Shape(), []int{4, spec.Dataset.Classes()}) {
				t.Fatalf("%s logits shape %v", spec.Name, logits.Shape())
			}
		})
	}
}

func TestCutPointsResolve(t *testing.T) {
	for _, spec := range All() {
		rng := tensor.NewRNG(1)
		net := spec.Build(rng)
		if len(spec.CutPoints) == 0 {
			t.Fatalf("%s has no cut points", spec.Name)
		}
		for _, cp := range spec.CutPoints {
			if !strings.HasPrefix(cp.Name, "conv") {
				t.Errorf("%s cut name %q should be a convN name", spec.Name, cp.Name)
			}
			if net.Index(cp.Layer) < 0 {
				t.Errorf("%s cut %s resolves to missing layer %q", spec.Name, cp.Name, cp.Layer)
			}
			layer, err := spec.CutLayer(cp.Name)
			if err != nil || layer != cp.Layer {
				t.Errorf("CutLayer(%s) = %q, %v", cp.Name, layer, err)
			}
		}
		if _, err := spec.CutLayer("conv99"); err == nil {
			t.Errorf("%s: CutLayer should fail on unknown cut", spec.Name)
		}
		// Default cut must be one of the cut points (the deepest).
		if got, err := spec.CutLayer(spec.DefaultCut); err != nil || net.Index(got) < 0 {
			t.Errorf("%s default cut %q invalid: %v", spec.Name, spec.DefaultCut, err)
		}
		if spec.DefaultCut != spec.CutPoints[len(spec.CutPoints)-1].Name {
			t.Errorf("%s default cut %q is not the deepest conv", spec.Name, spec.DefaultCut)
		}
	}
}

func TestCutPointsAreOrderedShallowToDeep(t *testing.T) {
	for _, spec := range All() {
		rng := tensor.NewRNG(1)
		net := spec.Build(rng)
		last := -1
		for _, cp := range spec.CutPoints {
			idx := net.Index(cp.Layer)
			if idx <= last {
				t.Errorf("%s: cut %s at layer index %d not deeper than previous %d", spec.Name, cp.Name, idx, last)
			}
			last = idx
		}
	}
}

func TestByNameAndAll(t *testing.T) {
	for _, name := range []string{"lenet", "cifar", "svhn", "alexnet"} {
		spec, err := ByName(name)
		if err != nil || spec.Name != name {
			t.Fatalf("ByName(%s) = %v, %v", name, spec.Name, err)
		}
	}
	if _, err := ByName("vgg"); err == nil {
		t.Fatal("ByName should reject unknown network")
	}
	if len(All()) != 4 {
		t.Fatalf("All() returned %d specs", len(All()))
	}
}

func TestBenchmarksRegistry(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 4 {
		t.Fatalf("got %d benchmarks", len(bs))
	}
	var prevLambda float64 = 1
	for _, b := range bs {
		if b.NoiseScale <= 0 || b.NoiseLR <= 0 || b.NoiseEpochs <= 0 {
			t.Errorf("%s: non-positive hyperparameters %+v", b.Spec.Name, b)
		}
		if b.Lambda <= 0 {
			t.Errorf("%s: lambda must be positive (sign applied in the loss)", b.Spec.Name)
		}
		if b.Lambda > prevLambda {
			t.Errorf("%s: lambda should not grow with network size (paper §2.4)", b.Spec.Name)
		}
		prevLambda = b.Lambda
	}
	if _, err := BenchmarkByName("lenet"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("BenchmarkByName should reject unknown name")
	}
}

func TestTrainLeNetTinyLearns(t *testing.T) {
	// A tiny pre-training run must beat chance (10%) comfortably.
	pre, err := Train(LeNet(), TrainConfig{TrainN: 400, TestN: 100, Epochs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pre.TestAcc < 0.4 {
		t.Fatalf("LeNet tiny run test acc = %.2f, want > 0.40", pre.TestAcc)
	}
	if pre.Std <= 0 {
		t.Fatal("normalization stats not recorded")
	}
	if pre.Train.N() != 400 || pre.Test.N() != 100 {
		t.Fatalf("split sizes %d/%d", pre.Train.N(), pre.Test.N())
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	spec := LeNet()
	net := spec.Build(tensor.NewRNG(1))
	empty := spec.Dataset.Generate(0, 1)
	if Evaluate(net, empty, 8) != 0 {
		t.Fatal("Evaluate on empty dataset should be 0")
	}
}

func TestTrainCachedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := TrainConfig{TrainN: 200, TestN: 60, Epochs: 1, Seed: 9}
	first, err := TrainCached(LeNet(), cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := TrainCached(LeNet(), cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Second run must load identical weights (same forward outputs).
	x := first.Test.Images.Slice(0).Reshape(1, 1, 28, 28)
	a := first.Net.Forward(x, false)
	b := second.Net.Forward(x, false)
	if !tensor.AllClose(a, b, 1e-12) {
		t.Fatal("cached weights differ from trained weights")
	}
	if second.TestAcc != first.TestAcc {
		t.Fatalf("cached accuracy %v != trained %v", second.TestAcc, first.TestAcc)
	}
}

func TestSpecsHaveDistinctParamSizes(t *testing.T) {
	// Guard against accidental topology collapse between benchmarks.
	sizes := map[string]int{}
	for _, spec := range All() {
		net := spec.Build(tensor.NewRNG(1))
		sizes[spec.Name] = net.ParamCount()
	}
	if sizes["lenet"] >= sizes["alexnet"] {
		t.Fatalf("lenet (%d params) should be smaller than alexnet (%d)", sizes["lenet"], sizes["alexnet"])
	}
	if sizes["svhn"] <= 0 || sizes["cifar"] <= 0 {
		t.Fatal("degenerate parameter counts")
	}
}

// Verifies the paper's premise that deeper cut activations are smaller for
// SVHN (conv6 output ≪ conv0 output) — the basis of Fig. 6a's cost story.
func TestSvhnConv6OutputIsSmall(t *testing.T) {
	spec := SvhnNet()
	net := spec.Build(tensor.NewRNG(1))
	in := spec.Dataset.SampleShape()
	shallow, err := spec.CutLayer("conv0")
	if err != nil {
		t.Fatal(err)
	}
	deep, err := spec.CutLayer("conv6")
	if err != nil {
		t.Fatal(err)
	}
	sizeAt := func(layer string) int {
		return tensor.Volume(net.OutShapeAt(in, net.Index(layer)+1))
	}
	if s0, s6 := sizeAt(shallow), sizeAt(deep); s6*10 > s0 {
		t.Fatalf("conv6 output (%d) should be ≪ conv0 output (%d)", s6, s0)
	}
}
