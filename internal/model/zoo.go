// Package model defines the four benchmark networks of the Shredder paper
// (LeNet, the CIFAR-10 network, the SVHN network, and a 64×64-input
// AlexNet), their cutting points, the pre-training harness that stands in
// for the paper's downloaded pre-trained weights, and the benchmark
// registry binding each network to its dataset and noise-training
// hyperparameters.
package model

import (
	"fmt"

	"shredder/internal/data"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// CutPoint names an intermediate activation the edge device may transmit:
// the paper's cutting points are convolution layers, with the activation
// taken after that convolution's nonlinearity (and pooling, when the
// pooling immediately follows) — "the output of the features section" for
// the last conv.
type CutPoint struct {
	// Name is the paper-facing name ("conv0", "conv2", ...).
	Name string
	// Layer is the Sequential layer after which the network is split.
	Layer string
}

// Spec describes one benchmark network: how to build it and where it can
// be cut.
type Spec struct {
	// Name of the network ("lenet", "cifar", "svhn", "alexnet").
	Name string
	// Dataset is the generator for the network's input distribution.
	Dataset data.Generator
	// Build constructs the network with fresh weights from the RNG.
	Build func(rng *tensor.RNG) *nn.Sequential
	// CutPoints lists the usable cutting points, shallow to deep.
	CutPoints []CutPoint
	// DefaultCut is the paper's chosen cut (the last convolution layer).
	DefaultCut string
}

// CutLayer resolves a paper-facing cut name to the Sequential layer after
// which to split.
func (s Spec) CutLayer(cutName string) (string, error) {
	for _, c := range s.CutPoints {
		if c.Name == cutName {
			return c.Layer, nil
		}
	}
	return "", fmt.Errorf("model: %s has no cut point %q", s.Name, cutName)
}

// LeNet returns the LeNet-5 spec: three convolution layers on 28×28
// grayscale input, matching the conv0/conv1/conv2 cut points of the
// paper's Figures 5b and 6b.
func LeNet() Spec {
	return Spec{
		Name:    "lenet",
		Dataset: data.Digits{},
		Build: func(rng *tensor.RNG) *nn.Sequential {
			return nn.NewSequential("lenet",
				nn.NewConv2D("conv0", 1, 6, 5, 5, 1, 0, rng), // 6×24×24
				nn.NewReLU("relu0"),
				nn.NewMaxPool2D("pool0", 2, 2),                // 6×12×12
				nn.NewConv2D("conv1", 6, 16, 5, 5, 1, 0, rng), // 16×8×8
				nn.NewReLU("relu1"),
				nn.NewMaxPool2D("pool1", 2, 2),                  // 16×4×4
				nn.NewConv2D("conv2", 16, 120, 4, 4, 1, 0, rng), // 120×1×1
				nn.NewReLU("relu2"),
				nn.NewFlatten("flat"),
				nn.NewLinear("fc1", 120, 84, rng),
				nn.NewReLU("relu3"),
				nn.NewLinear("fc2", 84, 10, rng),
			)
		},
		CutPoints: []CutPoint{
			{Name: "conv0", Layer: "pool0"},
			{Name: "conv1", Layer: "pool1"},
			{Name: "conv2", Layer: "relu2"},
		},
		DefaultCut: "conv2",
	}
}

// CifarNet returns the CIFAR-10 benchmark spec: a 4-convolution VGG-style
// network on 32×32 RGB input.
func CifarNet() Spec {
	return Spec{
		Name:    "cifar",
		Dataset: data.Objects{},
		Build: func(rng *tensor.RNG) *nn.Sequential {
			return nn.NewSequential("cifar",
				nn.NewConv2D("conv0", 3, 16, 3, 3, 1, 1, rng), // 16×32×32
				nn.NewReLU("relu0"),
				nn.NewConv2D("conv1", 16, 16, 3, 3, 1, 1, rng),
				nn.NewReLU("relu1"),
				nn.NewMaxPool2D("pool0", 2, 2), // 16×16×16
				nn.NewConv2D("conv2", 16, 24, 3, 3, 1, 1, rng),
				nn.NewReLU("relu2"),
				nn.NewConv2D("conv3", 24, 24, 3, 3, 1, 1, rng),
				nn.NewReLU("relu3"),
				nn.NewMaxPool2D("pool1", 2, 2), // 24×8×8
				nn.NewFlatten("flat"),
				nn.NewLinear("fc1", 24*8*8, 128, rng),
				nn.NewReLU("relu4"),
				nn.NewDropout("drop", 0.2, rng),
				nn.NewLinear("fc2", 128, 10, rng),
			)
		},
		CutPoints: []CutPoint{
			{Name: "conv0", Layer: "relu0"},
			{Name: "conv1", Layer: "pool0"},
			{Name: "conv2", Layer: "relu2"},
			{Name: "conv3", Layer: "pool1"},
		},
		DefaultCut: "conv3",
	}
}

// SvhnNet returns the SVHN benchmark spec: a 7-convolution network whose
// conv6 has a deliberately small output plane, reproducing the paper's
// observation (Fig. 6a) that SVHN's deepest conv slashes communication
// cost.
func SvhnNet() Spec {
	return Spec{
		Name:    "svhn",
		Dataset: data.HouseNumbers{},
		Build: func(rng *tensor.RNG) *nn.Sequential {
			return nn.NewSequential("svhn",
				nn.NewConv2D("conv0", 3, 16, 3, 3, 1, 1, rng), // 16×32×32
				nn.NewReLU("relu0"),
				nn.NewConv2D("conv1", 16, 16, 3, 3, 1, 1, rng),
				nn.NewReLU("relu1"),
				nn.NewMaxPool2D("pool0", 2, 2), // 16×16×16
				nn.NewConv2D("conv2", 16, 24, 3, 3, 1, 1, rng),
				nn.NewReLU("relu2"),
				nn.NewConv2D("conv3", 24, 24, 3, 3, 1, 1, rng),
				nn.NewReLU("relu3"),
				nn.NewMaxPool2D("pool1", 2, 2), // 24×8×8
				nn.NewConv2D("conv4", 24, 32, 3, 3, 1, 1, rng),
				nn.NewReLU("relu4"),
				nn.NewConv2D("conv5", 32, 32, 3, 3, 1, 1, rng),
				nn.NewReLU("relu5"),
				nn.NewMaxPool2D("pool2", 2, 2), // 32×4×4
				nn.NewConv2D("conv6", 32, 16, 3, 3, 1, 1, rng),
				nn.NewReLU("relu6"),
				nn.NewMaxPool2D("pool3", 2, 2), // 16×2×2 = 64 values
				nn.NewFlatten("flat"),
				nn.NewLinear("fc1", 16*2*2, 48, rng),
				nn.NewReLU("relu7"),
				nn.NewLinear("fc2", 48, 10, rng),
			)
		},
		CutPoints: []CutPoint{
			{Name: "conv0", Layer: "relu0"},
			{Name: "conv1", Layer: "pool0"},
			{Name: "conv2", Layer: "relu2"},
			{Name: "conv3", Layer: "pool1"},
			{Name: "conv4", Layer: "relu4"},
			{Name: "conv5", Layer: "pool2"},
			{Name: "conv6", Layer: "pool3"},
		},
		DefaultCut: "conv6",
	}
}

// AlexNet returns the AlexNet benchmark spec scaled to 64×64 RGB input:
// five convolutions with LRN after the first two (as in the original), and
// a three-layer classifier. The paper's ImageNet/AlexNet experiment runs at
// 224×224; 64×64 keeps pure-Go training tractable while preserving the
// depth, LRN, and cut-point structure (see DESIGN.md §2).
func AlexNet() Spec {
	return Spec{
		Name:    "alexnet",
		Dataset: data.TinyScenes{},
		Build: func(rng *tensor.RNG) *nn.Sequential {
			return nn.NewSequential("alexnet",
				nn.NewConv2D("conv0", 3, 16, 5, 5, 2, 2, rng), // 16×32×32
				nn.NewReLU("relu0"),
				nn.NewLocalResponseNorm("lrn0", 5, 0, 0, 0),
				nn.NewMaxPool2D("pool0", 2, 2), // 16×16×16
				nn.NewConv2D("conv1", 16, 32, 5, 5, 1, 2, rng),
				nn.NewReLU("relu1"),
				nn.NewLocalResponseNorm("lrn1", 5, 0, 0, 0),
				nn.NewMaxPool2D("pool1", 2, 2), // 32×8×8
				nn.NewConv2D("conv2", 32, 48, 3, 3, 1, 1, rng),
				nn.NewReLU("relu2"),
				nn.NewConv2D("conv3", 48, 48, 3, 3, 1, 1, rng),
				nn.NewReLU("relu3"),
				nn.NewConv2D("conv4", 48, 32, 3, 3, 1, 1, rng),
				nn.NewReLU("relu4"),
				nn.NewMaxPool2D("pool2", 2, 2), // 32×4×4
				nn.NewFlatten("flat"),
				nn.NewLinear("fc1", 32*4*4, 128, rng),
				nn.NewReLU("relu5"),
				nn.NewDropout("drop", 0.25, rng),
				nn.NewLinear("fc2", 128, 64, rng),
				nn.NewReLU("relu6"),
				nn.NewLinear("fc3", 64, 20, rng),
			)
		},
		CutPoints: []CutPoint{
			{Name: "conv0", Layer: "pool0"},
			{Name: "conv1", Layer: "pool1"},
			{Name: "conv2", Layer: "relu2"},
			{Name: "conv3", Layer: "relu3"},
			{Name: "conv4", Layer: "pool2"},
		},
		DefaultCut: "conv4",
	}
}

// ByName returns the spec for a benchmark network name.
func ByName(name string) (Spec, error) {
	switch name {
	case "lenet":
		return LeNet(), nil
	case "cifar":
		return CifarNet(), nil
	case "svhn":
		return SvhnNet(), nil
	case "alexnet":
		return AlexNet(), nil
	}
	return Spec{}, fmt.Errorf("model: unknown network %q (have lenet, cifar, svhn, alexnet)", name)
}

// All returns every benchmark spec in the paper's Table 1 order.
func All() []Spec {
	return []Spec{LeNet(), CifarNet(), SvhnNet(), AlexNet()}
}
