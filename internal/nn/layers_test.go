package nn

import (
	"math"
	"testing"

	"shredder/internal/tensor"
)

func TestConv2DKnownValues(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewConv2D("c", 1, 1, 2, 2, 1, 0, rng)
	// Kernel = [[1,2],[3,4]], bias = 10.
	c.W.Value.CopyFrom(tensor.From([]float64{1, 2, 3, 4}, 1, 4))
	c.B.Value.Fill(10)
	x := tensor.From([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	out := c.Forward(x, false)
	// window(0,0)=1+4+12+20=37, +10=47, etc.
	want := tensor.From([]float64{47, 57, 77, 87}, 1, 1, 2, 2)
	if !tensor.AllClose(out, want, 1e-12) {
		t.Fatalf("conv out = %v, want %v", out, want)
	}
}

func TestConv2DOutShape(t *testing.T) {
	rng := tensor.NewRNG(2)
	c := NewConv2D("c", 3, 8, 5, 5, 1, 2, rng)
	got := c.OutShape([]int{3, 32, 32})
	if !tensor.ShapeEq(got, []int{8, 32, 32}) {
		t.Fatalf("OutShape = %v", got)
	}
}

func TestConv2DWrongChannelsPanics(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := NewConv2D("c", 3, 8, 3, 3, 1, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Forward(tensor.New(1, 2, 8, 8), false)
}

func TestConv2DMACs(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewConv2D("c", 1, 6, 5, 5, 1, 0, rng)
	// LeNet conv1 on 28x28 pad 0: out 24x24, 6*24*24*25 MACs.
	if got := c.MACs([]int{1, 28, 28}); got != int64(6*24*24*25) {
		t.Fatalf("MACs = %d", got)
	}
}

func TestLinearKnownValues(t *testing.T) {
	rng := tensor.NewRNG(5)
	l := NewLinear("fc", 3, 2, rng)
	l.W.Value.CopyFrom(tensor.From([]float64{1, 0, -1, 2, 2, 2}, 2, 3))
	l.B.Value.CopyFrom(tensor.From([]float64{0.5, -0.5}, 2))
	x := tensor.From([]float64{1, 2, 3}, 1, 3)
	out := l.Forward(x, false)
	want := tensor.From([]float64{1 - 3 + 0.5, 2 + 4 + 6 - 0.5}, 1, 2)
	if !tensor.AllClose(out, want, 1e-12) {
		t.Fatalf("linear out = %v, want %v", out, want)
	}
}

func TestLinearAcceptsSpatialInput(t *testing.T) {
	rng := tensor.NewRNG(6)
	l := NewLinear("fc", 12, 4, rng)
	out := l.Forward(tensor.New(2, 3, 2, 2), false)
	if !tensor.ShapeEq(out.Shape(), []int{2, 4}) {
		t.Fatalf("out shape = %v", out.Shape())
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.From([]float64{-1, 0, 2, -3}, 1, 4)
	out := r.Forward(x, false)
	if !tensor.Equal(out, tensor.From([]float64{0, 0, 2, 0}, 1, 4)) {
		t.Fatalf("relu = %v", out)
	}
}

func TestMaxPoolForwardAndRouting(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.From([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 2,
		1, 1, 2, 3,
	}, 1, 1, 4, 4)
	out := p.Forward(x, true)
	want := tensor.From([]float64{4, 8, 9, 3}, 1, 1, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("maxpool = %v, want %v", out, want)
	}
	// Gradient routes only to argmax positions.
	g := tensor.From([]float64{10, 20, 30, 40}, 1, 1, 2, 2)
	dx := p.Backward(g)
	wantDx := tensor.From([]float64{
		0, 0, 0, 0,
		0, 10, 0, 20,
		30, 0, 0, 0,
		0, 0, 0, 40,
	}, 1, 1, 4, 4)
	if !tensor.Equal(dx, wantDx) {
		t.Fatalf("maxpool grad = %v, want %v", dx, wantDx)
	}
}

func TestAvgPoolForward(t *testing.T) {
	p := NewAvgPool2D("pool", 2, 2)
	x := tensor.From([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		1, 1, 1, 1,
		1, 1, 1, 1,
	}, 1, 1, 4, 4)
	out := p.Forward(x, false)
	want := tensor.From([]float64{3.5, 5.5, 1, 1}, 1, 1, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("avgpool = %v, want %v", out, want)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := tensor.NewRNG(7)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.New(1, 1000).Fill(1)
	evalOut := d.Forward(x, false)
	if !tensor.Equal(evalOut, x) {
		t.Fatal("dropout must be identity at inference")
	}
	trainOut := d.Forward(x, true)
	zeros := 0
	for _, v := range trainOut.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivor scaled to %v, want 2", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5", zeros)
	}
	// Backward applies the same mask.
	g := tensor.New(1, 1000).Fill(1)
	dx := d.Backward(g)
	for i, v := range trainOut.Data() {
		if (v == 0) != (dx.Data()[i] == 0) {
			t.Fatal("backward mask does not match forward mask")
		}
	}
}

func TestDropoutInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=1")
		}
	}()
	NewDropout("d", 1.0, tensor.NewRNG(1))
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	rng := tensor.NewRNG(8)
	x := rng.FillNormal(tensor.New(3, 2, 4, 4), 0, 1)
	y := f.Forward(x, true)
	if !tensor.ShapeEq(y.Shape(), []int{3, 32}) {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	g := rng.FillNormal(tensor.New(3, 32), 0, 1)
	dx := f.Backward(g)
	if !tensor.ShapeEq(dx.Shape(), []int{3, 2, 4, 4}) {
		t.Fatalf("flatten grad shape = %v", dx.Shape())
	}
}

func TestLRNReducesMagnitude(t *testing.T) {
	l := NewLocalResponseNorm("lrn", 5, 2, 1, 0.75)
	rng := tensor.NewRNG(9)
	x := rng.FillNormal(tensor.New(1, 8, 3, 3), 0, 3)
	y := l.Forward(x, false)
	if y.MaxAbs() >= x.MaxAbs() {
		t.Fatal("LRN with k>1 should shrink activations")
	}
	if !y.AllFinite() {
		t.Fatal("LRN produced non-finite values")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(10)
	logits := rng.FillNormal(tensor.New(6, 10), 0, 5)
	p := Softmax(logits)
	for i := 0; i < 6; i++ {
		if s := p.Slice(i).Sum(); math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
		if p.Slice(i).Min() < 0 {
			t.Fatal("negative probability")
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.From([]float64{1000, 1001, 999}, 1, 3)
	p := Softmax(logits)
	if !p.AllFinite() {
		t.Fatal("softmax overflowed on large logits")
	}
	if math.Abs(p.Sum()-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", p.Sum())
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.From([]float64{100, 0, 0, 0, 100, 0}, 2, 3)
	loss, _ := CrossEntropy(logits, []int{0, 1})
	if loss > 1e-10 {
		t.Fatalf("loss on perfect prediction = %v", loss)
	}
}

func TestCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(1, 4) // all zeros → uniform
	loss, _ := CrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want ln4 = %v", loss, math.Log(4))
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.From([]float64{
		1, 2, 0, // pred 1
		5, 0, 0, // pred 0
		0, 0, 9, // pred 2
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty batch accuracy should be 0")
	}
}

func TestSequentialNamingAndIndex(t *testing.T) {
	rng := tensor.NewRNG(11)
	s := NewSequential("net",
		NewConv2D("conv0", 1, 2, 3, 3, 1, 1, rng),
		NewReLU("relu0"),
		NewFlatten("flat"),
	)
	if s.Index("relu0") != 1 {
		t.Fatalf("Index(relu0) = %d", s.Index("relu0"))
	}
	if s.Index("nope") != -1 {
		t.Fatal("missing layer should index to -1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate layer names must panic")
		}
	}()
	NewSequential("bad", NewReLU("a"), NewReLU("a"))
}

func TestSequentialForwardRangeComposition(t *testing.T) {
	rng := tensor.NewRNG(12)
	s := NewSequential("net",
		NewConv2D("conv0", 1, 2, 3, 3, 1, 1, rng),
		NewReLU("relu0"),
		NewMaxPool2D("pool0", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", 2*3*3, 5, rng),
	)
	x := rng.FillNormal(tensor.New(2, 1, 6, 6), 0, 1)
	full := s.Forward(x, false)
	cut := 3
	a := s.ForwardRange(x, 0, cut, false)
	y := s.ForwardRange(a, cut, s.Len(), false)
	if !tensor.AllClose(full, y, 1e-12) {
		t.Fatal("ForwardRange composition != full Forward")
	}
}

func TestSequentialOutShape(t *testing.T) {
	rng := tensor.NewRNG(13)
	s := NewSequential("net",
		NewConv2D("conv0", 1, 4, 5, 5, 1, 0, rng),
		NewMaxPool2D("pool0", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", 4*12*12, 10, rng),
	)
	if got := s.OutShape([]int{1, 28, 28}); !tensor.ShapeEq(got, []int{10}) {
		t.Fatalf("OutShape = %v", got)
	}
	if got := s.OutShapeAt([]int{1, 28, 28}, 2); !tensor.ShapeEq(got, []int{4, 12, 12}) {
		t.Fatalf("OutShapeAt(2) = %v", got)
	}
}

func TestParamCountAndZeroGrad(t *testing.T) {
	rng := tensor.NewRNG(14)
	s := NewSequential("net", NewLinear("fc", 10, 5, rng))
	if got := s.ParamCount(); got != 10*5+5 {
		t.Fatalf("ParamCount = %d", got)
	}
	s.Params()[0].Grad.Fill(3)
	s.ZeroGrad()
	if s.Params()[0].Grad.Sum() != 0 {
		t.Fatal("ZeroGrad did not clear gradients")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	for _, l := range []Layer{
		NewReLU("r"), NewMaxPool2D("p", 2, 2), NewAvgPool2D("a", 2, 2),
		NewFlatten("f"), NewLocalResponseNorm("l", 3, 1, 1, 0.5),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward should panic", l.Name())
				}
			}()
			l.Backward(tensor.New(1, 1))
		}()
	}
}
