package nn

import "time"

// Profiler observes per-layer execution cost. The nn package defines the
// interface but no implementation: internal/obs provides the concrete
// profiler that feeds registry histograms, and nn stays free of any
// observability dependency (the coupling is structural, like io.Writer).
//
// ObserveLayer is called once per layer per ForwardRangeT/BackwardRangeT
// step with the layer's name, direction, wall time, and the size in bytes
// of the scratch tensor the step produced (the layer's output for forward,
// the propagated gradient for backward). Implementations must be safe for
// concurrent use: a shared network may run many passes in flight.
type Profiler interface {
	ObserveLayer(layer string, backward bool, d time.Duration, scratchBytes int64)
}
