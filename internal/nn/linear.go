package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// Linear is a fully-connected layer over [N, In] inputs with weights
// [Out, In] and bias [Out].
type Linear struct {
	name    string
	In, Out int
	W, B    *Param
	tape    Tape // backs the legacy Forward/Backward API
}

// NewLinear constructs a fully-connected layer with Xavier-initialized
// weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	w := tensor.New(out, in)
	XavierInit(w, in, out, rng)
	return &Linear{name: name, In: in, Out: out,
		W: NewParam(name+".W", w), B: NewParam(name+".b", tensor.New(out))}
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// OutShape implements Layer.
func (l *Linear) OutShape(in []int) []int {
	if tensor.Volume(in) != l.In {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", l.name, l.In, in))
	}
	return []int{l.Out}
}

// ForwardT implements Layer: y = x·Wᵀ + b, taping the flattened input.
func (l *Linear) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(l.name, x)
	x2 := x.Reshape(x.Dim(0), -1)
	if x2.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", l.name, l.In, x2.Dim(1)))
	}
	tape.push(l, x2)
	return l.compute(x2)
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.tape.Reset()
	return l.ForwardT(&l.tape, x, train)
}

// compute reads only the layer's parameters, never mutable layer state.
func (l *Linear) compute(x2 *tensor.Tensor) *tensor.Tensor {
	n := x2.Dim(0)
	out := tensor.MatMulT2(x2, l.W.Value) // [N, Out]
	od := out.Data()
	bd := l.B.Value.Data()
	for i := 0; i < n; i++ {
		row := od[i*l.Out:]
		for j := 0; j < l.Out; j++ {
			row[j] += bd[j]
		}
	}
	return out
}

// BackwardT implements Layer. Under FrozenParams the dW GEMM and bias
// reduction are skipped: only ∂loss/∂input is produced.
func (l *Linear) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	x2 := tape.pop(l).(*tensor.Tensor)
	n := x2.Dim(0)
	g2 := grad.Reshape(n, l.Out)
	if !tape.frozen() {
		l.W.Grad.AddInPlace(tensor.MatMulT1(g2, x2)) // [Out, In]
		gd := g2.Data()
		bg := l.B.Grad.Data()
		for i := 0; i < n; i++ {
			row := gd[i*l.Out:]
			for j := 0; j < l.Out; j++ {
				bg[j] += row[j]
			}
		}
	}
	return tensor.MatMul(g2, l.W.Value) // [N, In]
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.tape.Len() == 0 {
		panic("nn: Linear.Backward before Forward")
	}
	return l.BackwardT(&l.tape, grad)
}

// MACs returns the multiply-accumulate count of one forward pass over a
// single sample.
func (l *Linear) MACs(in []int) int64 { return int64(l.In) * int64(l.Out) }
