package nn

import (
	"shredder/internal/tensor"
)

// ReLU applies max(0, x) elementwise. The backward pass gates the gradient
// by the sign of the forward input, recovered from the taped output (out>0
// exactly where in>0), so the tape costs no extra storage.
type ReLU struct {
	name string
	tape Tape // backs the legacy Forward/Backward API
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return in }

// ForwardT implements Layer.
func (r *ReLU) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		}
	}
	tape.push(r, out)
	return out
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.tape.Reset()
	return r.ForwardT(&r.tape, x, train)
}

// BackwardT implements Layer.
func (r *ReLU) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	fwd := tape.pop(r).(*tensor.Tensor)
	if grad.Len() != fwd.Len() {
		panic("nn: ReLU backward grad size mismatch")
	}
	out := tensor.New(grad.Shape()...)
	gd, od, fd := grad.Data(), out.Data(), fwd.Data()
	for i, v := range fd {
		if v > 0 {
			od[i] = gd[i]
		}
	}
	return out
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.tape.Len() == 0 {
		panic("nn: ReLU.Backward before Forward")
	}
	return r.BackwardT(&r.tape, grad)
}

// Flatten reshapes [N, ...] to [N, D]. It exists so that cutting points can
// fall on either side of the features/classifier boundary the paper uses.
type Flatten struct {
	name string
	tape Tape // backs the legacy Forward/Backward API
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int { return []int{tensor.Volume(in)} }

// ForwardT implements Layer: a reshape, taping the original shape.
func (f *Flatten) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(f.name, x)
	tape.push(f, append([]int(nil), x.Shape()...))
	return x.Reshape(x.Dim(0), -1)
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.tape.Reset()
	return f.ForwardT(&f.tape, x, train)
}

// BackwardT implements Layer.
func (f *Flatten) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	shape := tape.pop(f).([]int)
	return grad.Reshape(shape...)
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.tape.Len() == 0 {
		panic("nn: Flatten.Backward before Forward")
	}
	return f.BackwardT(&f.tape, grad)
}

// Dropout zeroes a fraction p of activations during training and scales the
// survivors by 1/(1-p) (inverted dropout); it is the identity at inference.
// Training-mode randomness comes from the tape's RNG when it carries one
// (so concurrent training runs draw independent reproducible streams), and
// from the layer's construction RNG otherwise.
type Dropout struct {
	name string
	P    float64
	rng  *tensor.RNG
	tape Tape // backs the legacy Forward/Backward API
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(name string, p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{name: name, P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return in }

// ForwardT implements Layer. A nil mask on the tape marks an identity
// (inference-mode) pass.
func (d *Dropout) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		tape.push(d, (*tensor.Tensor)(nil))
		return x
	}
	rng := tape.rng(d.rng)
	out := tensor.New(x.Shape()...)
	mask := tensor.GetScratch(x.Shape()...)
	md := mask.Data()
	keep := 1 / (1 - d.P)
	xd, od := x.Data(), out.Data()
	for i := range xd {
		if rng.Float64() < d.P {
			md[i] = 0
		} else {
			md[i] = keep
			od[i] = xd[i] * keep
		}
	}
	tape.push(d, mask)
	return out
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.tape.Reset()
	return d.ForwardT(&d.tape, x, train)
}

// BackwardT implements Layer.
func (d *Dropout) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	mask := tape.pop(d).(*tensor.Tensor)
	if mask == nil { // inference-mode forward: identity
		return grad
	}
	out := tensor.New(grad.Shape()...)
	gd, od, md := grad.Data(), out.Data(), mask.Data()
	for i := range gd {
		od[i] = gd[i] * md[i]
	}
	tensor.PutScratch(mask)
	return out
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.tape.Len() == 0 {
		panic("nn: Dropout.Backward before Forward")
	}
	return d.BackwardT(&d.tape, grad)
}
