package nn

import (
	"shredder/internal/tensor"
)

// ReLU applies max(0, x) elementwise. The backward pass gates the gradient
// by the sign of the forward input.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			r.mask[i] = true
		} else {
			od[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Infer implements Layer: max(0, x) with no mask cache. Safe for
// concurrent use.
func (r *ReLU) Infer(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	if grad.Len() != len(r.mask) {
		panic("nn: ReLU backward grad size mismatch")
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i, m := range r.mask {
		if m {
			od[i] = gd[i]
		}
	}
	return out
}

// Flatten reshapes [N, ...] to [N, D]. It exists so that cutting points can
// fall on either side of the features/classifier boundary the paper uses.
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int { return []int{tensor.Volume(in)} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(f.name, x)
	f.lastShape = append([]int(nil), x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Infer implements Layer: a stateless reshape. Safe for concurrent use.
func (f *Flatten) Infer(x *tensor.Tensor) *tensor.Tensor {
	checkBatched(f.name, x)
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		panic("nn: Flatten.Backward before Forward")
	}
	return grad.Reshape(f.lastShape...)
}

// Dropout zeroes a fraction p of activations during training and scales the
// survivors by 1/(1-p) (inverted dropout); it is the identity at inference.
type Dropout struct {
	name string
	P    float64
	rng  *tensor.RNG
	mask []float64
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(name string, p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{name: name, P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := tensor.New(x.Shape()...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]float64, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	keep := 1 / (1 - d.P)
	xd, od := x.Data(), out.Data()
	for i := range xd {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = keep
			od[i] = xd[i] * keep
		}
	}
	return out
}

// Infer implements Layer: dropout is the identity at inference. Safe for
// concurrent use.
func (d *Dropout) Infer(x *tensor.Tensor) *tensor.Tensor { return x }

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil { // inference-mode forward: identity
		return grad
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i := range gd {
		od[i] = gd[i] * d.mask[i]
	}
	return out
}
