package nn

import (
	"fmt"
	"math"

	"shredder/internal/tensor"
)

// BatchNorm2D normalizes each channel of [N, C, H, W] activations to zero
// mean and unit variance over the batch and spatial dimensions, then
// applies a learned affine transform (γ, β). At inference it uses running
// statistics accumulated during training.
//
// Training-mode forward passes on a FrozenParams tape still normalize by
// batch statistics but skip the running-statistics update — the one write
// to shared layer state — so frozen training passes are reentrant.
//
// The backward pass is the exact batch-norm Jacobian product:
//
//	dx = (γ/σ)·(dy − mean(dy) − x̂·mean(dy·x̂))
type BatchNorm2D struct {
	name     string
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate (default 0.1)

	Gamma, Beta *Param

	runningMean []float64
	runningVar  []float64

	tape Tape // backs the legacy Forward/Backward API
}

// batchNormState is the tape record of one training-mode forward pass. A
// nil xhat marks an inference-mode pass, which has no backward.
type batchNormState struct {
	xhat *tensor.Tensor
	std  []float64
	n    int // elements per channel in the batch
}

// NewBatchNorm2D constructs a batch-norm layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	gamma := tensor.New(c).Fill(1)
	beta := tensor.New(c)
	bn := &BatchNorm2D{
		name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", gamma),
		Beta:        NewParam(name+".beta", beta),
		runningMean: make([]float64, c),
		runningVar:  make([]float64, c),
	}
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutShape implements Layer.
func (bn *BatchNorm2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != bn.C {
		panic(fmt.Sprintf("nn: %s expects per-sample shape [%d,H,W], got %v", bn.name, bn.C, in))
	}
	return in
}

// ForwardT implements Layer.
func (bn *BatchNorm2D) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(bn.name, x)
	if x.Rank() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: %s expects [N,%d,H,W], got %v", bn.name, bn.C, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hw := h * w
	perC := n * hw
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	gd, bd := bn.Gamma.Value.Data(), bn.Beta.Value.Data()

	if !train {
		tape.push(bn, batchNormState{})
		bn.normalizeRunning(xd, od, n, hw)
		return out
	}

	st := batchNormState{
		xhat: tensor.New(x.Shape()...),
		std:  make([]float64, bn.C),
		n:    perC,
	}
	xh := st.xhat.Data()
	updateRunning := !tape.frozen()
	for c := 0; c < bn.C; c++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * hw
			for p := 0; p < hw; p++ {
				sum += xd[base+p]
			}
		}
		mean := sum / float64(perC)
		vsum := 0.0
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * hw
			for p := 0; p < hw; p++ {
				d := xd[base+p] - mean
				vsum += d * d
			}
		}
		variance := vsum / float64(perC)
		std := math.Sqrt(variance + bn.Eps)
		st.std[c] = std
		inv := 1 / std
		g, b := gd[c], bd[c]
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * hw
			for p := 0; p < hw; p++ {
				v := (xd[base+p] - mean) * inv
				xh[base+p] = v
				od[base+p] = g*v + b
			}
		}
		if updateRunning {
			bn.runningMean[c] = (1-bn.Momentum)*bn.runningMean[c] + bn.Momentum*mean
			bn.runningVar[c] = (1-bn.Momentum)*bn.runningVar[c] + bn.Momentum*variance
		}
	}
	tape.push(bn, st)
	return out
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	bn.tape.Reset()
	return bn.ForwardT(&bn.tape, x, train)
}

// normalizeRunning applies the running-statistics affine normalization,
// reading only immutable-at-inference layer state.
func (bn *BatchNorm2D) normalizeRunning(xd, od []float64, n, hw int) {
	gd, bd := bn.Gamma.Value.Data(), bn.Beta.Value.Data()
	for c := 0; c < bn.C; c++ {
		inv := 1 / math.Sqrt(bn.runningVar[c]+bn.Eps)
		mean := bn.runningMean[c]
		g, b := gd[c], bd[c]
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * hw
			for p := 0; p < hw; p++ {
				od[base+p] = g*(xd[base+p]-mean)*inv + b
			}
		}
	}
}

// BackwardT implements Layer. Under FrozenParams the γ/β gradient
// accumulation is skipped.
func (bn *BatchNorm2D) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	st := tape.pop(bn).(batchNormState)
	if st.xhat == nil {
		panic("nn: BatchNorm2D.Backward before training-mode Forward")
	}
	if !grad.SameShape(st.xhat) {
		panic("nn: BatchNorm2D backward grad shape mismatch")
	}
	nT := grad.Dim(0)
	h, w := grad.Dim(2), grad.Dim(3)
	hw := h * w
	perC := float64(st.n)
	frozen := tape.frozen()
	dx := tensor.New(grad.Shape()...)
	gd := grad.Data()
	xh := st.xhat.Data()
	dd := dx.Data()
	gv := bn.Gamma.Value.Data()
	for c := 0; c < bn.C; c++ {
		var sumDy, sumDyXh float64
		for i := 0; i < nT; i++ {
			base := (i*bn.C + c) * hw
			for p := 0; p < hw; p++ {
				dy := gd[base+p]
				sumDy += dy
				sumDyXh += dy * xh[base+p]
			}
		}
		if !frozen {
			bn.Gamma.Grad.Data()[c] += sumDyXh
			bn.Beta.Grad.Data()[c] += sumDy
		}
		coef := gv[c] / st.std[c]
		meanDy := sumDy / perC
		meanDyXh := sumDyXh / perC
		for i := 0; i < nT; i++ {
			base := (i*bn.C + c) * hw
			for p := 0; p < hw; p++ {
				dd[base+p] = coef * (gd[base+p] - meanDy - xh[base+p]*meanDyXh)
			}
		}
	}
	return dx
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.tape.Len() == 0 {
		panic("nn: BatchNorm2D.Backward before training-mode Forward")
	}
	return bn.BackwardT(&bn.tape, grad)
}
