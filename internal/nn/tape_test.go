package nn

// Tests for the tape execution contexts: for every layer the tape path
// (ForwardT/BackwardT) must be bitwise-identical to the legacy
// Forward/Backward wrappers, frozen tapes must never write parameter
// gradients, tape misuse must panic loudly, and per-tape RNGs must give
// concurrent dropout passes reproducible independent streams.

import (
	"strings"
	"testing"

	"shredder/internal/tensor"
)

// tapeCase builds a fresh layer (with deterministic parameters) and the
// input it expects. build is called once per execution path so each path
// starts from an identical, independent instance.
type tapeCase struct {
	name  string
	build func() Layer
	x     *tensor.Tensor
}

func tapeCases() []tapeCase {
	rng := tensor.NewRNG(31)
	img := rng.FillNormal(tensor.New(2, 3, 8, 8), 0, 1)
	flat := rng.FillNormal(tensor.New(2, 192), 0, 1)
	return []tapeCase{
		{"conv", func() Layer { return NewConv2D("conv", 3, 4, 3, 3, 1, 1, tensor.NewRNG(41)) }, img},
		{"linear", func() Layer { return NewLinear("lin", 192, 10, tensor.NewRNG(42)) }, flat},
		{"relu", func() Layer { return NewReLU("relu") }, img},
		{"flatten", func() Layer { return NewFlatten("flat") }, img},
		{"dropout", func() Layer { return NewDropout("drop", 0.4, tensor.NewRNG(43)) }, img},
		{"maxpool", func() Layer { return NewMaxPool2D("mp", 2, 2) }, img},
		{"avgpool", func() Layer { return NewAvgPool2D("ap", 2, 2) }, img},
		{"batchnorm", func() Layer { return NewBatchNorm2D("bn", 3) }, img},
		{"lrn", func() Layer { return NewLocalResponseNorm("lrn", 3, 0, 0, 0) }, img},
	}
}

// TestTapePathMatchesLegacy drives one instance of every layer through the
// legacy API and an identical instance through an explicit tape, in
// training mode, and requires bitwise-equal outputs, input gradients, and
// parameter gradients.
func TestTapePathMatchesLegacy(t *testing.T) {
	grng := tensor.NewRNG(99)
	for _, tc := range tapeCases() {
		legacy, taped := tc.build(), tc.build()

		wantOut := legacy.Forward(tc.x, true)
		w := grng.FillNormal(tensor.New(wantOut.Shape()...), 0, 1)
		for _, p := range legacy.Params() {
			p.ZeroGrad()
		}
		wantDx := legacy.Backward(w)

		tape := NewTape()
		gotOut := taped.ForwardT(tape, tc.x, true)
		if !tensor.Equal(gotOut, wantOut) {
			t.Errorf("%s: tape forward output diverges from legacy", tc.name)
			continue
		}
		if tape.Len() != 1 {
			t.Errorf("%s: ForwardT recorded %d tape entries, want 1", tc.name, tape.Len())
		}
		gotDx := taped.BackwardT(tape, w)
		if !tensor.Equal(gotDx, wantDx) {
			t.Errorf("%s: tape input gradient diverges from legacy", tc.name)
		}
		if tape.Len() != 0 {
			t.Errorf("%s: BackwardT left %d tape entries", tc.name, tape.Len())
		}
		lp, tp := legacy.Params(), taped.Params()
		for i := range lp {
			if !tensor.Equal(tp[i].Grad, lp[i].Grad) {
				t.Errorf("%s: tape param grad %s diverges from legacy", tc.name, lp[i].Name)
			}
		}
	}
}

// tinyTapeNet builds a deterministic network touching every layer type.
func tinyTapeNet() *Sequential {
	return NewSequential("tiny",
		NewConv2D("conv0", 1, 4, 3, 3, 1, 1, tensor.NewRNG(51)),
		NewBatchNorm2D("bn0", 4),
		NewReLU("relu0"),
		NewMaxPool2D("pool0", 2, 2),
		NewLocalResponseNorm("lrn0", 3, 0, 0, 0),
		NewConv2D("conv1", 4, 6, 3, 3, 1, 1, tensor.NewRNG(52)),
		NewReLU("relu1"),
		NewAvgPool2D("pool1", 2, 2),
		NewFlatten("flat"),
		NewDropout("drop", 0.3, tensor.NewRNG(53)),
		NewLinear("fc", 54, 10, tensor.NewRNG(54)),
	)
}

// TestSequentialTapeMatchesLegacy checks the whole-network chain: a
// training-mode forward/backward through an explicit tape must reproduce
// the legacy path bitwise, including every parameter gradient.
func TestSequentialTapeMatchesLegacy(t *testing.T) {
	rng := tensor.NewRNG(61)
	x := rng.FillNormal(tensor.New(2, 1, 12, 12), 0, 1)

	legacy, taped := tinyTapeNet(), tinyTapeNet()

	wantOut := legacy.Forward(x, true)
	w := rng.FillNormal(tensor.New(wantOut.Shape()...), 0, 1)
	legacy.ZeroGrad()
	wantDx := legacy.Backward(w)

	tape := NewTape()
	gotOut := taped.ForwardT(tape, x, true)
	if !tensor.Equal(gotOut, wantOut) {
		t.Fatal("tape forward diverges from legacy forward")
	}
	if tape.Len() != taped.Len() {
		t.Fatalf("tape has %d entries after forward, want %d", tape.Len(), taped.Len())
	}
	gotDx := taped.BackwardT(tape, w)
	if !tensor.Equal(gotDx, wantDx) {
		t.Fatal("tape backward diverges from legacy backward")
	}
	lp, tp := legacy.Params(), taped.Params()
	for i := range lp {
		if !tensor.Equal(tp[i].Grad, lp[i].Grad) {
			t.Fatalf("param %s: tape grad diverges from legacy", lp[i].Name)
		}
	}
}

// TestFrozenTapeSequential checks Shredder's training mode end to end: a
// frozen tape yields the same input gradient as a recording tape while
// leaving every parameter gradient and batch-norm running statistic
// untouched.
func TestFrozenTapeSequential(t *testing.T) {
	rng := tensor.NewRNG(62)
	x := rng.FillNormal(tensor.New(2, 1, 12, 12), 0, 1)

	plain, frozen := tinyTapeNet(), tinyTapeNet()

	tape := NewTape()
	out := plain.ForwardT(tape, x, true)
	w := rng.FillNormal(tensor.New(out.Shape()...), 0, 1)
	wantDx := plain.BackwardT(tape, w)

	bn := frozen.Layer(1).(*BatchNorm2D)
	meanBefore := append([]float64(nil), bn.runningMean...)
	varBefore := append([]float64(nil), bn.runningVar...)

	ft := NewFrozenTape()
	if fout := frozen.ForwardT(ft, x, true); !tensor.Equal(fout, out) {
		t.Fatal("frozen forward diverges from recording forward")
	}
	if gotDx := frozen.BackwardT(ft, w); !tensor.Equal(gotDx, wantDx) {
		t.Fatal("frozen input gradient diverges")
	}
	for _, p := range frozen.Params() {
		for _, v := range p.Grad.Data() {
			if v != 0 {
				t.Fatalf("frozen tape wrote parameter gradient %s", p.Name)
			}
		}
	}
	for c := range meanBefore {
		if bn.runningMean[c] != meanBefore[c] || bn.runningVar[c] != varBefore[c] {
			t.Fatal("frozen tape mutated batch-norm running statistics")
		}
	}
}

// TestTapeRNGGivesReproducibleDropout verifies that two tapes carrying
// identically seeded RNGs draw identical dropout masks from one shared
// layer — the property that makes parallel noise training byte-identical
// to sequential training.
func TestTapeRNGGivesReproducibleDropout(t *testing.T) {
	rng := tensor.NewRNG(63)
	d := NewDropout("drop", 0.5, tensor.NewRNG(1))
	x := rng.FillNormal(tensor.New(4, 32), 0, 1)

	run := func(seed int64) *tensor.Tensor {
		tape := NewTape()
		tape.RNG = tensor.NewRNG(seed)
		out := d.ForwardT(tape, x, true)
		d.BackwardT(tape, tensor.New(out.Shape()...).Fill(1))
		return out
	}
	if !tensor.Equal(run(7), run(7)) {
		t.Fatal("same tape seed produced different dropout masks")
	}
	if tensor.Equal(run(7), run(8)) {
		t.Fatal("different tape seeds produced identical dropout masks")
	}
}

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is not a string", r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestTapeMisusePanics(t *testing.T) {
	rng := tensor.NewRNG(64)
	relu := NewReLU("relu")
	fc := NewLinear("fc", 4, 2, rng)
	x := rng.FillNormal(tensor.New(1, 4), 0, 1)

	// Backward through a discarded (nil) tape.
	relu.ForwardT(nil, x, false)
	mustPanic(t, "discarded (nil) tape", func() { relu.BackwardT(nil, x) })

	// Backward with no matching forward on the tape.
	mustPanic(t, "without a matching ForwardT", func() { relu.BackwardT(NewTape(), x) })

	// Out-of-order unwind: the tape top belongs to a different layer.
	tape := NewTape()
	h := relu.ForwardT(tape, x, true)
	out := fc.ForwardT(tape, h, true)
	mustPanic(t, "out of order", func() { relu.BackwardT(tape, out) })
}

// TestLegacyBackwardBeforeForwardPanics pins the wrapper-level guard for
// every layer type.
func TestLegacyBackwardBeforeForwardPanics(t *testing.T) {
	for _, tc := range tapeCases() {
		l := tc.build()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward did not panic", tc.name)
				}
			}()
			l.Backward(tc.x)
		}()
	}
}
