package nn

import (
	"math"
	"testing"

	"shredder/internal/tensor"
)

// gradCheckLayer verifies a layer's backward pass against central finite
// differences. It uses loss = Σ w⊙Forward(x) with random w, so the analytic
// gradient is Backward(w), and checks both the input gradient and every
// parameter gradient. The same gradients are then recomputed through an
// explicit tape (ForwardT/BackwardT) and must match the legacy path
// bitwise, and a frozen tape must leave every parameter gradient untouched.
func gradCheckLayer(t *testing.T, l Layer, x *tensor.Tensor, eps, tol float64, seed int64) {
	t.Helper()
	rng := tensor.NewRNG(seed)

	out := l.Forward(x, true)
	w := rng.FillNormal(tensor.New(out.Shape()...), 0, 1)

	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	dx := l.Backward(w)

	loss := func() float64 {
		return tensor.Dot(l.Forward(x, false), w)
	}

	// Tape path: identical math, explicit execution context.
	legacyGrads := make([]*tensor.Tensor, len(l.Params()))
	for i, p := range l.Params() {
		legacyGrads[i] = p.Grad.Clone()
		p.ZeroGrad()
	}
	tape := NewTape()
	outT := l.ForwardT(tape, x, true)
	if !tensor.Equal(outT, out) {
		t.Fatalf("%s: tape ForwardT diverges from legacy Forward", l.Name())
	}
	dxT := l.BackwardT(tape, w)
	if !tensor.Equal(dxT, dx) {
		t.Fatalf("%s: tape BackwardT input grad diverges from legacy Backward", l.Name())
	}
	for i, p := range l.Params() {
		if !tensor.Equal(p.Grad, legacyGrads[i]) {
			t.Fatalf("%s: tape param %s grad diverges from legacy path", l.Name(), p.Name)
		}
	}

	// Frozen tape: same input gradient, zero parameter gradients.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	frozen := NewFrozenTape()
	l.ForwardT(frozen, x, true)
	if dxF := l.BackwardT(frozen, w); !tensor.Equal(dxF, dx) {
		t.Fatalf("%s: frozen-tape input grad diverges", l.Name())
	}
	for _, p := range l.Params() {
		for _, v := range p.Grad.Data() {
			if v != 0 {
				t.Fatalf("%s: frozen tape wrote param gradient %s", l.Name(), p.Name)
			}
		}
	}

	// Restore the legacy-path gradients for the finite-difference check.
	for i, p := range l.Params() {
		p.Grad.CopyFrom(legacyGrads[i])
	}

	// Input gradient. Checking every element is O(|x|) forwards; keep the
	// test inputs small.
	xd := x.Data()
	for i := range xd {
		orig := xd[i]
		xd[i] = orig + eps
		lp := loss()
		xd[i] = orig - eps
		lm := loss()
		xd[i] = orig
		num := (lp - lm) / (2 * eps)
		ana := dx.Data()[i]
		if math.Abs(num-ana) > tol*math.Max(1, math.Abs(num)) {
			t.Fatalf("%s: input grad[%d] analytic %v vs numeric %v", l.Name(), i, ana, num)
		}
	}

	// Parameter gradients.
	for _, p := range l.Params() {
		pd := p.Value.Data()
		for i := range pd {
			orig := pd[i]
			pd[i] = orig + eps
			lp := loss()
			pd[i] = orig - eps
			lm := loss()
			pd[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := p.Grad.Data()[i]
			if math.Abs(num-ana) > tol*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s: param %s grad[%d] analytic %v vs numeric %v", l.Name(), p.Name, i, ana, num)
			}
		}
	}
}

func TestConv2DGradCheck(t *testing.T) {
	rng := tensor.NewRNG(100)
	l := NewConv2D("conv", 2, 3, 3, 3, 1, 1, rng)
	x := rng.FillNormal(tensor.New(2, 2, 5, 5), 0, 1)
	gradCheckLayer(t, l, x, 1e-5, 1e-5, 1)
}

func TestConv2DStridedGradCheck(t *testing.T) {
	rng := tensor.NewRNG(101)
	l := NewConv2D("conv", 1, 2, 2, 2, 2, 0, rng)
	x := rng.FillNormal(tensor.New(2, 1, 6, 6), 0, 1)
	gradCheckLayer(t, l, x, 1e-5, 1e-5, 2)
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(102)
	l := NewLinear("fc", 7, 4, rng)
	x := rng.FillNormal(tensor.New(3, 7), 0, 1)
	gradCheckLayer(t, l, x, 1e-5, 1e-5, 3)
}

func TestReLUGradCheck(t *testing.T) {
	rng := tensor.NewRNG(103)
	l := NewReLU("relu")
	// Keep inputs away from the non-differentiable point at 0.
	x := rng.FillNormal(tensor.New(2, 10), 0, 1)
	x.Apply(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.1
		}
		return v
	})
	gradCheckLayer(t, l, x, 1e-6, 1e-5, 4)
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := tensor.NewRNG(104)
	l := NewMaxPool2D("pool", 2, 2)
	x := rng.FillNormal(tensor.New(2, 2, 4, 4), 0, 1)
	gradCheckLayer(t, l, x, 1e-6, 1e-5, 5)
}

func TestAvgPoolGradCheck(t *testing.T) {
	rng := tensor.NewRNG(105)
	l := NewAvgPool2D("pool", 2, 2)
	x := rng.FillNormal(tensor.New(2, 2, 4, 4), 0, 1)
	gradCheckLayer(t, l, x, 1e-6, 1e-6, 6)
}

func TestFlattenGradCheck(t *testing.T) {
	rng := tensor.NewRNG(106)
	l := NewFlatten("flat")
	x := rng.FillNormal(tensor.New(2, 2, 3, 3), 0, 1)
	gradCheckLayer(t, l, x, 1e-6, 1e-6, 7)
}

func TestLRNGradCheck(t *testing.T) {
	rng := tensor.NewRNG(107)
	l := NewLocalResponseNorm("lrn", 3, 2, 0.5, 0.75)
	x := rng.FillNormal(tensor.New(2, 4, 3, 3), 0, 1)
	gradCheckLayer(t, l, x, 1e-5, 1e-4, 8)
}

func TestLRNGradCheckAlexNetConstants(t *testing.T) {
	rng := tensor.NewRNG(108)
	l := NewLocalResponseNorm("lrn", 5, 0, 0, 0) // defaults k=2, α=1e-4, β=0.75
	x := rng.FillNormal(tensor.New(1, 6, 2, 2), 0, 2)
	gradCheckLayer(t, l, x, 1e-5, 1e-4, 9)
}

// Cross-entropy gradient against finite differences.
func TestCrossEntropyGradCheck(t *testing.T) {
	rng := tensor.NewRNG(109)
	logits := rng.FillNormal(tensor.New(4, 5), 0, 1)
	labels := []int{1, 3, 0, 4}
	_, grad := CrossEntropy(logits, labels)
	eps := 1e-6
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + eps
		lp, _ := CrossEntropy(logits, labels)
		ld[i] = orig - eps
		lm, _ := CrossEntropy(logits, labels)
		ld[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data()[i]) > 1e-5 {
			t.Fatalf("CE grad[%d]: analytic %v vs numeric %v", i, grad.Data()[i], num)
		}
	}
}

func TestSoftCrossEntropyGradCheck(t *testing.T) {
	rng := tensor.NewRNG(110)
	logits := rng.FillNormal(tensor.New(3, 4), 0, 1)
	target := Softmax(rng.FillNormal(tensor.New(3, 4), 0, 1))
	_, grad := SoftCrossEntropy(logits, target)
	eps := 1e-6
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + eps
		lp, _ := SoftCrossEntropy(logits, target)
		ld[i] = orig - eps
		lm, _ := SoftCrossEntropy(logits, target)
		ld[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data()[i]) > 1e-5 {
			t.Fatalf("soft CE grad[%d]: analytic %v vs numeric %v", i, grad.Data()[i], num)
		}
	}
}

// End-to-end gradient through a small conv net: verifies that chained
// Backward calls compose correctly — this is exactly the ∂y/∂n chain rule of
// paper §2.1.
func TestSequentialGradCheck(t *testing.T) {
	rng := tensor.NewRNG(111)
	net := NewSequential("tiny",
		NewConv2D("conv0", 1, 2, 3, 3, 1, 1, rng),
		NewReLU("relu0"),
		NewMaxPool2D("pool0", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", 2*3*3, 4, rng),
	)
	x := rng.FillNormal(tensor.New(2, 1, 6, 6), 0, 1)
	labels := []int{1, 2}

	lossOf := func() float64 {
		logits := net.Forward(x, false)
		l, _ := CrossEntropy(logits, labels)
		return l
	}

	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad := CrossEntropy(logits, labels)
	dx := net.Backward(grad)

	eps := 1e-5
	xd := x.Data()
	for _, i := range []int{0, 7, 13, 29, 41, 71} {
		orig := xd[i]
		xd[i] = orig + eps
		lp := lossOf()
		xd[i] = orig - eps
		lm := lossOf()
		xd[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > 1e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, dx.Data()[i], num)
		}
	}
	// Spot-check a few parameter grads.
	for _, p := range net.Params() {
		pd := p.Value.Data()
		for _, i := range []int{0, len(pd) / 2, len(pd) - 1} {
			orig := pd[i]
			pd[i] = orig + eps
			lp := lossOf()
			pd[i] = orig - eps
			lm := lossOf()
			pd[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data()[i]) > 1e-4*math.Max(1, math.Abs(num)) {
				t.Fatalf("param %s grad[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data()[i], num)
			}
		}
	}
}
