package nn

import (
	"math"
	"testing"
	"testing/quick"

	"shredder/internal/tensor"
)

func TestPropertySoftmaxShiftInvariant(t *testing.T) {
	// softmax(z + c) == softmax(z): the invariance behind the max trick.
	f := func(seed int64, c float64) bool {
		if math.IsNaN(c) || math.Abs(c) > 100 {
			return true
		}
		rng := tensor.NewRNG(seed)
		z := rng.FillNormal(tensor.New(3, 6), 0, 3)
		shifted := z.Clone().Shift(c)
		return tensor.AllClose(Softmax(z), Softmax(shifted), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCrossEntropyNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n, m := 1+rng.Intn(4), 2+rng.Intn(6)
		logits := rng.FillNormal(tensor.New(n, m), 0, 4)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(m)
		}
		loss, grad := CrossEntropy(logits, labels)
		if loss < 0 {
			return false
		}
		// Gradient rows sum to 0 (softmax minus one-hot, both sum to 1).
		for i := 0; i < n; i++ {
			if math.Abs(grad.Slice(i).Sum()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReLUIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		r := NewReLU("r")
		x := rng.FillNormal(tensor.New(2, 9), 0, 2)
		once := r.Forward(x, false)
		twice := r.Forward(once, false)
		return tensor.Equal(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLinearIsAffine(t *testing.T) {
	// f(αx + βy) == αf(x) + βf(y) − (α+β−1)·b for a linear layer.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		l := NewLinear("fc", 5, 3, rng)
		x := rng.FillNormal(tensor.New(1, 5), 0, 1)
		y := rng.FillNormal(tensor.New(1, 5), 0, 1)
		alpha, beta := rng.Uniform(-2, 2), rng.Uniform(-2, 2)
		mix := tensor.Add(x.Clone().Scale(alpha), y.Clone().Scale(beta))
		lhs := l.Forward(mix, false)
		fx := l.Forward(x, false).Clone().Scale(alpha)
		fy := l.Forward(y, false).Clone().Scale(beta)
		rhs := tensor.Add(fx, fy)
		// Correct for bias counted α+β times instead of once.
		corr := (alpha + beta - 1)
		b2 := l.B.Value.Clone().Scale(corr).Reshape(1, 3)
		rhs = tensor.Sub(rhs, b2)
		return tensor.AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMaxPoolDominatesAvgPool(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		mp := NewMaxPool2D("m", 2, 2)
		ap := NewAvgPool2D("a", 2, 2)
		x := rng.FillNormal(tensor.New(1, 2, 4, 4), 0, 2)
		mx := mp.Forward(x, false)
		av := ap.Forward(x, false)
		for i, m := range mx.Data() {
			if m < av.Data()[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
