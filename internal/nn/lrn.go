package nn

import (
	"math"

	"shredder/internal/tensor"
)

// LocalResponseNorm implements AlexNet-style cross-channel local response
// normalization:
//
//	y_c = x_c / (k + (alpha/n)·Σ_{j∈window(c)} x_j²)^beta
//
// where the window spans n channels centred on c at the same spatial
// position. The backward pass is the exact analytic Jacobian product:
//
//	dx_j = g_j·s_j^{-β} − (2βα/n)·x_j·Σ_{c: j∈window(c)} g_c·x_c·s_c^{-β-1}
type LocalResponseNorm struct {
	name        string
	N           int // window size in channels
	K           float64
	Alpha, Beta float64
	tape        Tape // backs the legacy Forward/Backward API
}

// lrnState is the tape record of one forward pass: the input and the
// per-element denominator s_c = k + (alpha/n)·Σ x_j².
type lrnState struct {
	in *tensor.Tensor
	s  *tensor.Tensor
}

// NewLocalResponseNorm constructs an LRN layer with the given window size
// and the classic AlexNet constants when k, alpha, beta are zero.
func NewLocalResponseNorm(name string, n int, k, alpha, beta float64) *LocalResponseNorm {
	if n <= 0 {
		panic("nn: LRN window must be positive")
	}
	if k == 0 && alpha == 0 && beta == 0 {
		k, alpha, beta = 2, 1e-4, 0.75
	}
	return &LocalResponseNorm{name: name, N: n, K: k, Alpha: alpha, Beta: beta}
}

// Name implements Layer.
func (l *LocalResponseNorm) Name() string { return l.name }

// Params implements Layer.
func (l *LocalResponseNorm) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *LocalResponseNorm) OutShape(in []int) []int { return in }

// window returns the [lo,hi) channel range for output channel c.
func (l *LocalResponseNorm) window(c, channels int) (int, int) {
	lo := c - l.N/2
	hi := c + (l.N-1)/2 + 1
	if lo < 0 {
		lo = 0
	}
	if hi > channels {
		hi = channels
	}
	return lo, hi
}

// ForwardT implements Layer. With a nil tape the denominator tensor is
// never materialized — the discarded-tape path allocates strictly less.
func (l *LocalResponseNorm) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(l.name, x)
	if x.Rank() != 4 {
		panic("nn: LRN expects [N,C,H,W] input")
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hw := h * w
	out := tensor.New(x.Shape()...)
	var sd []float64
	var sT *tensor.Tensor
	if tape != nil {
		sT = tensor.New(x.Shape()...)
		sd = sT.Data()
	}
	xd, od := x.Data(), out.Data()
	coef := l.Alpha / float64(l.N)
	tensor.ParallelFor(n, func(i int) {
		base := i * c * hw
		for ch := 0; ch < c; ch++ {
			lo, hi := l.window(ch, c)
			for p := 0; p < hw; p++ {
				sum := 0.0
				for j := lo; j < hi; j++ {
					v := xd[base+j*hw+p]
					sum += v * v
				}
				s := l.K + coef*sum
				idx := base + ch*hw + p
				if sd != nil {
					sd[idx] = s
				}
				od[idx] = xd[idx] * math.Pow(s, -l.Beta)
			}
		}
	})
	tape.push(l, lrnState{in: x, s: sT})
	return out
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (l *LocalResponseNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.tape.Reset()
	return l.ForwardT(&l.tape, x, train)
}

// BackwardT implements Layer.
func (l *LocalResponseNorm) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	st := tape.pop(l).(lrnState)
	x := st.in
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hw := h * w
	dx := tensor.New(x.Shape()...)
	xd, sd, gd, dd := x.Data(), st.s.Data(), grad.Data(), dx.Data()
	coef := 2 * l.Beta * l.Alpha / float64(l.N)
	tensor.ParallelFor(n, func(i int) {
		base := i * c * hw
		for p := 0; p < hw; p++ {
			// t_c = g_c · x_c · s_c^{-β-1}, precomputed per channel column.
			for j := 0; j < c; j++ {
				idx := base + j*hw + p
				// direct term
				dd[idx] += gd[idx] * math.Pow(sd[idx], -l.Beta)
			}
			for j := 0; j < c; j++ {
				jdx := base + j*hw + p
				xj := xd[jdx]
				if xj == 0 {
					continue
				}
				// channels c whose window contains j: window is symmetric
				// around c, so iterate candidates and test membership.
				lo := j - (l.N-1)/2
				hi := j + l.N/2 + 1
				if lo < 0 {
					lo = 0
				}
				if hi > c {
					hi = c
				}
				acc := 0.0
				for ch := lo; ch < hi; ch++ {
					wlo, whi := l.window(ch, c)
					if j < wlo || j >= whi {
						continue
					}
					cdx := base + ch*hw + p
					acc += gd[cdx] * xd[cdx] * math.Pow(sd[cdx], -l.Beta-1)
				}
				dd[jdx] -= coef * xj * acc
			}
		}
	})
	return dx
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (l *LocalResponseNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.tape.Len() == 0 {
		panic("nn: LRN.Backward before Forward")
	}
	return l.BackwardT(&l.tape, grad)
}
