// Package nn implements the neural-network substrate of the Shredder
// reproduction: layers with exact analytic forward and backward passes
// (convolution, linear, ReLU, pooling, dropout, local response
// normalization), a Sequential container, softmax cross-entropy loss,
// weight initialization, and checkpoint I/O.
//
// Every layer computes gradients with respect to both its parameters and its
// input. The input gradient is what makes Shredder possible: the noise
// tensor is trained purely through ∂loss/∂(input of the remote network),
// exactly as derived in §2.1 of the paper. All backward passes are verified
// against central finite differences in the package tests.
//
// Tensors flow through layers in batched form: [N, C, H, W] for spatial
// layers and [N, D] for dense layers, where N is the batch size.
package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// Param is a trainable parameter: a value tensor and its accumulated
// gradient. Optimizers update Value from Grad and zero Grad between steps.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network.
//
// Forward consumes a batched input and returns the batched output; when
// train is true the layer may cache state for Backward and apply
// train-only behaviour (dropout). Backward consumes ∂loss/∂output of the
// most recent Forward and returns ∂loss/∂input, accumulating parameter
// gradients as a side effect. Calling Backward without a preceding Forward
// is a programming error and panics.
//
// Infer is the reentrant forward pass: it computes exactly what
// Forward(x, false) computes but touches no layer state, so any number of
// goroutines may call Infer on a shared layer concurrently. Forward — even
// in inference mode — caches buffers on the layer struct and is therefore
// NOT safe for concurrent use; serving paths must use Infer.
type Layer interface {
	// Name identifies the layer within a model (e.g. "conv2"); cutting
	// points are addressed by layer name.
	Name() string
	// Forward computes the layer output for a batch.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Infer computes the inference-mode output for a batch without
	// mutating any layer state. Safe for concurrent use.
	Infer(x *tensor.Tensor) *tensor.Tensor
	// Backward computes the input gradient for the last Forward batch and
	// accumulates parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (nil if none).
	Params() []*Param
	// OutShape maps a per-sample input shape (without the batch dim) to the
	// per-sample output shape.
	OutShape(in []int) []int
}

// ParamCount returns the total number of scalar parameters in the layers.
func ParamCount(layers []Layer) int {
	n := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			n += p.Value.Len()
		}
	}
	return n
}

// checkBatched panics unless x has at least rank 2 ([N, ...]).
func checkBatched(layer string, x *tensor.Tensor) {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: %s expects batched input [N,...], got shape %v", layer, x.Shape()))
	}
}
