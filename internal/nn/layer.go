// Package nn implements the neural-network substrate of the Shredder
// reproduction: layers with exact analytic forward and backward passes
// (convolution, linear, ReLU, pooling, dropout, local response
// normalization), a Sequential container, softmax cross-entropy loss,
// weight initialization, and checkpoint I/O.
//
// Execution is tape-based: a forward pass records the state its backward
// pass needs on an explicit per-call Tape instead of on the layer structs,
// so one shared network supports any number of concurrent forward and
// forward/backward passes (one Tape per in-flight pass). A nil tape is the
// inference path; a FrozenParams tape skips parameter gradients for
// training against a frozen network — Shredder's only training mode.
//
// Every layer computes gradients with respect to both its parameters and its
// input. The input gradient is what makes Shredder possible: the noise
// tensor is trained purely through ∂loss/∂(input of the remote network),
// exactly as derived in §2.1 of the paper. All backward passes are verified
// against central finite differences in the package tests.
//
// Tensors flow through layers in batched form: [N, C, H, W] for spatial
// layers and [N, D] for dense layers, where N is the batch size.
package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// Param is a trainable parameter: a value tensor and its accumulated
// gradient. Optimizers update Value from Grad and zero Grad between steps.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network.
//
// ForwardT and BackwardT are the primary execution surface: all
// intermediate state flows through the explicit *Tape, so a shared layer
// supports any number of concurrent in-flight passes (one tape per pass).
// ForwardT with a nil tape is the reentrant inference path — it records
// nothing and is safe for unbounded concurrent use. BackwardT consumes the
// tape entry its matching ForwardT pushed, returns ∂loss/∂input, and
// accumulates parameter gradients unless the tape is in FrozenParams mode.
//
// Forward and Backward are thin legacy wrappers over a tape held on the
// layer struct: Forward resets that tape and delegates to ForwardT,
// Backward delegates to BackwardT. They preserve the historic
// one-in-flight-pass-per-layer API (and its non-reentrancy); new code
// should pass tapes explicitly.
type Layer interface {
	// Name identifies the layer within a model (e.g. "conv2"); cutting
	// points are addressed by layer name.
	Name() string
	// ForwardT computes the layer output for a batch, recording backward
	// state on tape. A nil tape discards the state (inference mode); any
	// number of goroutines may run nil-tape ForwardT on a shared layer.
	ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor
	// BackwardT consumes ∂loss/∂output of the matching ForwardT on tape
	// and returns ∂loss/∂input, accumulating parameter gradients unless
	// tape.FrozenParams is set.
	BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor
	// Forward is ForwardT over the layer's struct-held tape (legacy API,
	// not safe for concurrent use).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward is BackwardT over the layer's struct-held tape (legacy API).
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (nil if none).
	Params() []*Param
	// OutShape maps a per-sample input shape (without the batch dim) to the
	// per-sample output shape.
	OutShape(in []int) []int
}

// ParamCount returns the total number of scalar parameters in the layers.
func ParamCount(layers []Layer) int {
	n := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			n += p.Value.Len()
		}
	}
	return n
}

// checkBatched panics unless x has at least rank 2 ([N, ...]).
func checkBatched(layer string, x *tensor.Tensor) {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: %s expects batched input [N,...], got shape %v", layer, x.Shape()))
	}
}
