package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"shredder/internal/tensor"
)

// checkpoint is the gob wire format of a saved model: the network name and
// a parameter map keyed by parameter name.
type checkpoint struct {
	Network string
	Params  map[string]*tensor.Tensor
}

// Save writes the network's parameters to w. Only parameter values are
// saved; the topology is reconstructed by the model zoo, and names are
// checked at load time.
func Save(s *Sequential, w io.Writer) error {
	cp := checkpoint{Network: s.Name(), Params: map[string]*tensor.Tensor{}}
	for _, p := range s.Params() {
		if _, dup := cp.Params[p.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter name %q while saving %q", p.Name, s.Name())
		}
		cp.Params[p.Name] = p.Value
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save %q: %w", s.Name(), err)
	}
	return nil
}

// Load reads parameters written by Save into an already-constructed network
// of the same topology. Every parameter must be present with a matching
// shape; the saved network name must match too.
func Load(s *Sequential, r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: load %q: %w", s.Name(), err)
	}
	if cp.Network != s.Name() {
		return fmt.Errorf("nn: checkpoint is for network %q, not %q", cp.Network, s.Name())
	}
	for _, p := range s.Params() {
		saved, ok := cp.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if !tensor.ShapeEq(saved.Shape(), p.Value.Shape()) {
			return fmt.Errorf("nn: parameter %q shape %v does not match model shape %v",
				p.Name, saved.Shape(), p.Value.Shape())
		}
		p.Value.CopyFrom(saved)
	}
	return nil
}

// SaveFile saves the network to path, creating parent-less files atomically
// via a temp file + rename.
func SaveFile(s *Sequential, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("nn: save file: %w", err)
	}
	if err := Save(s, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nn: save file: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile loads parameters from a file written by SaveFile.
func LoadFile(s *Sequential, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: load file: %w", err)
	}
	defer f.Close()
	return Load(s, f)
}
