package nn

// Tests for the per-layer profiling hook on Sequential: the network-level
// profiler sees every range pass in execution order (forward) and reverse
// order (backward), a tape-level profiler overrides it for that tape's
// passes, and detaching restores the unobserved path.

import (
	"sync"
	"testing"
	"time"

	"shredder/internal/tensor"
)

// recordingProfiler captures ObserveLayer calls in order.
type recordingProfiler struct {
	mu     sync.Mutex
	events []profEvent
}

type profEvent struct {
	layer    string
	backward bool
	bytes    int64
}

func (r *recordingProfiler) ObserveLayer(layer string, backward bool, d time.Duration, scratchBytes int64) {
	if d < 0 {
		panic("negative layer duration")
	}
	r.mu.Lock()
	r.events = append(r.events, profEvent{layer, backward, scratchBytes})
	r.mu.Unlock()
}

func (r *recordingProfiler) take() []profEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.events
	r.events = nil
	return out
}

// TestSequentialProfilerForwardBackward attaches a network-level profiler
// and checks a full tape pass reports every layer: forward in execution
// order with the output sizes, backward in reverse with gradient sizes.
func TestSequentialProfilerForwardBackward(t *testing.T) {
	net := NewSequential("prof", NewReLU("a"), NewReLU("b"))
	x := tensor.New(1, 1, 2, 2).Fill(1)
	rec := &recordingProfiler{}
	net.SetProfiler(rec)
	defer net.SetProfiler(nil)

	tape := NewTape()
	out := net.ForwardT(tape, x, true)
	net.BackwardT(tape, tensor.New(out.Shape()...).Fill(1))

	events := rec.take()
	want := []profEvent{
		{"a", false, 32}, {"b", false, 32}, // forward: 4 floats × 8 bytes
		{"b", true, 32}, {"a", true, 32}, // backward: reverse order
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, e := range events {
		if e != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
}

// TestSequentialProfilerInferAndDetach checks the nil-tape inference path
// reports through the network profiler, and SetProfiler(nil) stops the
// events without touching the network.
func TestSequentialProfilerInferAndDetach(t *testing.T) {
	net := NewSequential("prof", NewReLU("a"), NewReLU("b"))
	x := tensor.New(1, 1, 2, 2).Fill(1)
	rec := &recordingProfiler{}
	net.SetProfiler(rec)
	if out := net.Infer(x); out.Len() != 4 {
		t.Fatalf("infer output %v", out.Shape())
	}
	if got := rec.take(); len(got) != 2 || got[0].layer != "a" || got[1].layer != "b" {
		t.Fatalf("infer events: %+v", got)
	}

	net.SetProfiler(nil)
	net.Infer(x)
	if got := rec.take(); len(got) != 0 {
		t.Fatalf("detached profiler still observed: %+v", got)
	}
}

// TestTapeProfilerOverridesNetwork gives one tape its own profiler and
// checks that tape's pass reports there — and only there — while nil-tape
// traffic keeps reporting to the network-level profiler.
func TestTapeProfilerOverridesNetwork(t *testing.T) {
	net := NewSequential("prof", NewReLU("a"))
	x := tensor.New(1, 1, 2, 2).Fill(1)
	netRec, tapeRec := &recordingProfiler{}, &recordingProfiler{}
	net.SetProfiler(netRec)
	defer net.SetProfiler(nil)

	tape := NewTape()
	tape.Profiler = tapeRec
	net.ForwardT(tape, x, true)
	if got := tapeRec.take(); len(got) != 1 || got[0].layer != "a" {
		t.Fatalf("tape profiler events: %+v", got)
	}
	if got := netRec.take(); len(got) != 0 {
		t.Fatalf("network profiler saw the tape's pass: %+v", got)
	}

	net.Infer(x)
	if got := netRec.take(); len(got) != 1 {
		t.Fatalf("network profiler missed nil-tape traffic: %+v", got)
	}
	if got := tapeRec.take(); len(got) != 0 {
		t.Fatalf("tape profiler saw foreign traffic: %+v", got)
	}
}
