package nn_test

import (
	"math"
	"testing"

	"shredder/internal/model"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// TestCompileRegistryParity compiles every registry network at both dtypes
// and checks the contract gating the compiled path: the Float64 plan
// matches the stock layer-at-a-time inference path within the
// accumulation-reorder epsilon of the blocked matmul kernel, and the
// Float32 plan stays within the documented epsilon — both with identical
// argmax decisions on every sample.
func TestCompileRegistryParity(t *testing.T) {
	const batch = 6
	for _, spec := range model.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := tensor.NewRNG(21)
			net := spec.Build(rng)
			shape := append([]int{batch}, spec.Dataset.SampleShape()...)
			x := rng.FillNormal(tensor.New(shape...), 0, 1)

			want := net.Infer(x)

			c64, err := nn.Compile(net, nn.Float64)
			if err != nil {
				t.Fatalf("compile f64: %v", err)
			}
			got64 := c64.Infer(x)
			if !got64.SameShape(want) {
				t.Fatalf("f64 plan shape %v want %v", got64.Shape(), want.Shape())
			}
			for i, v := range got64.Data() {
				if math.Abs(v-want.Data()[i]) > 1e-9 {
					t.Fatalf("f64 plan differs from stock path at %d: %v vs %v", i, v, want.Data()[i])
				}
			}
			for i := 0; i < batch; i++ {
				if a, b := got64.Slice(i).Argmax(), want.Slice(i).Argmax(); a != b {
					t.Fatalf("f64 plan flips decision on sample %d: %d vs %d", i, a, b)
				}
			}

			c32, err := nn.Compile(net, nn.Float32)
			if err != nil {
				t.Fatalf("compile f32: %v", err)
			}
			got32 := c32.Infer(x)
			if !got32.SameShape(want) {
				t.Fatalf("f32 plan shape %v want %v", got32.Shape(), want.Shape())
			}
			maxDiff := 0.0
			for i, v := range got32.Data() {
				if d := math.Abs(v - want.Data()[i]); d > maxDiff {
					maxDiff = d
				}
			}
			// The epsilon contract documented in DESIGN.md §5f: logits agree
			// to ~1e-3 absolute on these depths at unit-scale inputs.
			if maxDiff > 1e-3 {
				t.Fatalf("f32 plan deviates by %g from float64 reference", maxDiff)
			}
			for i := 0; i < batch; i++ {
				if a, b := got32.Slice(i).Argmax(), want.Slice(i).Argmax(); a != b {
					t.Fatalf("f32 plan flips decision on sample %d: %d vs %d", i, a, b)
				}
			}
		})
	}
}

// TestCompileRangeMatchesInferRange checks the split-execution form: the
// compiled remote part [cut, len) agrees with Sequential.InferRange over
// the same range.
func TestCompileRangeMatchesInferRange(t *testing.T) {
	spec, err := model.ByName("lenet")
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(23)
	net := spec.Build(rng)
	cutLayer, err := spec.CutLayer(spec.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	cut := net.Index(cutLayer) + 1
	if cut <= 0 {
		t.Fatalf("cut layer %q not found", cutLayer)
	}

	shape := append([]int{4}, spec.Dataset.SampleShape()...)
	x := rng.FillNormal(tensor.New(shape...), 0, 1)
	act := net.InferRange(x, 0, cut)
	want := net.InferRange(act, cut, net.Len())

	c64, err := nn.CompileRange(net, cut, net.Len(), nn.Float64)
	if err != nil {
		t.Fatal(err)
	}
	got := c64.Infer(act)
	for i, v := range got.Data() {
		if math.Abs(v-want.Data()[i]) > 1e-9 {
			t.Fatalf("compiled remote part differs at %d", i)
		}
	}
	for i := 0; i < 4; i++ {
		if a, b := got.Slice(i).Argmax(), want.Slice(i).Argmax(); a != b {
			t.Fatalf("f64 remote part flips decision on sample %d", i)
		}
	}

	c32, err := nn.CompileRange(net, cut, net.Len(), nn.Float32)
	if err != nil {
		t.Fatal(err)
	}
	got32 := c32.Infer(act)
	for i := 0; i < 4; i++ {
		if a, b := got32.Slice(i).Argmax(), want.Slice(i).Argmax(); a != b {
			t.Fatalf("f32 remote part flips decision on sample %d", i)
		}
	}
	if c32.From() != cut || c32.To() != net.Len() || c32.Dtype() != nn.Float32 {
		t.Fatal("CompiledNet range/dtype accessors wrong")
	}
}
