package nn

import (
	"math"
	"testing"

	"shredder/internal/tensor"
)

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	rng := tensor.NewRNG(1)
	bn := NewBatchNorm2D("bn", 3)
	x := rng.FillNormal(tensor.New(4, 3, 5, 5), 7, 3) // far from standard
	y := bn.Forward(x, true)
	// With γ=1, β=0 the per-channel output must be ~N(0,1).
	n, hw := 4, 25
	for c := 0; c < 3; c++ {
		var sum, sq float64
		for i := 0; i < n; i++ {
			for p := 0; p < hw; p++ {
				v := y.Data()[(i*3+c)*hw+p]
				sum += v
				sq += v * v
			}
		}
		mean := sum / float64(n*hw)
		variance := sq/float64(n*hw) - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("channel %d mean %v", c, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d variance %v", c, variance)
		}
	}
}

func TestBatchNormAffineApplies(t *testing.T) {
	rng := tensor.NewRNG(2)
	bn := NewBatchNorm2D("bn", 2)
	bn.Gamma.Value.CopyFrom(tensor.From([]float64{2, 3}, 2))
	bn.Beta.Value.CopyFrom(tensor.From([]float64{-1, 5}, 2))
	x := rng.FillNormal(tensor.New(3, 2, 4, 4), 0, 1)
	y := bn.Forward(x, true)
	// Channel 0 output mean ≈ β₀ = −1, std ≈ γ₀ = 2.
	hw := 16
	var sum, sq float64
	for i := 0; i < 3; i++ {
		for p := 0; p < hw; p++ {
			v := y.Data()[(i*2+0)*hw+p]
			sum += v
			sq += v * v
		}
	}
	mean := sum / 48
	std := math.Sqrt(sq/48 - mean*mean)
	if math.Abs(mean+1) > 1e-9 || math.Abs(std-2) > 1e-3 {
		t.Fatalf("affine output mean %v std %v, want -1 / 2", mean, std)
	}
}

func TestBatchNormRunningStatsUsedAtInference(t *testing.T) {
	rng := tensor.NewRNG(3)
	bn := NewBatchNorm2D("bn", 2)
	// Train on several batches so running stats converge toward the true
	// distribution N(5, 4).
	for i := 0; i < 200; i++ {
		x := rng.FillNormal(tensor.New(8, 2, 3, 3), 5, 2)
		bn.Forward(x, true)
	}
	// At inference a single constant input should be normalized by the
	// running stats, not its own (zero-variance) batch stats.
	x := tensor.New(1, 2, 3, 3).Fill(5)
	y := bn.Forward(x, false)
	if y.MaxAbs() > 0.2 {
		t.Fatalf("inference normalization off: output %v", y.MaxAbs())
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	bn := NewBatchNorm2D("bn", 2)
	bn.Gamma.Value.CopyFrom(tensor.From([]float64{1.5, 0.7}, 2))
	bn.Beta.Value.CopyFrom(tensor.From([]float64{0.3, -0.2}, 2))
	x := rng.FillNormal(tensor.New(3, 2, 3, 3), 0, 1)

	// gradCheckLayer uses inference-mode loss re-evaluation, which is wrong
	// for batch norm (different normalization path). Check manually with
	// training-mode finite differences instead.
	w := rng.FillNormal(tensor.New(3, 2, 3, 3), 0, 1)
	loss := func() float64 { return tensor.Dot(bn.Forward(x, true), w) }

	bn.Gamma.ZeroGrad()
	bn.Beta.ZeroGrad()
	bn.Forward(x, true)
	dx := bn.Backward(w)

	eps := 1e-5
	xd := x.Data()
	for _, i := range []int{0, 5, 17, 29, 41, 53} {
		orig := xd[i]
		xd[i] = orig + eps
		lp := loss()
		xd[i] = orig - eps
		lm := loss()
		xd[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data()[i]) > 1e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, dx.Data()[i], num)
		}
	}
	for _, p := range bn.Params() {
		pd := p.Value.Data()
		for i := range pd {
			orig := pd[i]
			pd[i] = orig + eps
			lp := loss()
			pd[i] = orig - eps
			lm := loss()
			pd[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data()[i]) > 1e-4*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data()[i], num)
			}
		}
	}
}

func TestBatchNormBackwardBeforeForwardPanics(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bn.Backward(tensor.New(1, 1, 2, 2))
}

func TestBatchNormInSequentialTrains(t *testing.T) {
	// A conv+BN+relu net must train: end-to-end integration.
	rng := tensor.NewRNG(5)
	net := NewSequential("bnnet",
		NewConv2D("conv", 1, 4, 3, 3, 1, 1, rng),
		NewBatchNorm2D("bn", 4),
		NewReLU("relu"),
		NewFlatten("flat"),
		NewLinear("fc", 4*4*4, 3, rng),
	)
	x := rng.FillNormal(tensor.New(12, 1, 4, 4), 0, 1)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = i % 3
	}
	var first, last float64
	lr := 0.01
	for epoch := 0; epoch < 80; epoch++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		loss, grad := CrossEntropy(logits, labels)
		if epoch == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		for _, p := range net.Params() {
			p.Value.AddScaled(-lr, p.Grad)
		}
	}
	if last > first*0.6 {
		t.Fatalf("BN network failed to train: %v → %v", first, last)
	}
}
