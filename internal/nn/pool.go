package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// MaxPool2D applies max pooling over [N, C, H, W] inputs. The backward pass
// routes each output gradient to the argmax input position.
type MaxPool2D struct {
	name      string
	K, Stride int
	tape      Tape // backs the legacy Forward/Backward API
}

// maxPoolState is the tape record of one MaxPool2D forward pass.
type maxPoolState struct {
	shape  []int
	argmax []int // flat input index per output element
}

// NewMaxPool2D constructs a max-pooling layer with a square window.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: pooling kernel and stride must be positive")
	}
	return &MaxPool2D{name: name, K: k, Stride: stride}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W] per-sample shape, got %v", m.name, in))
	}
	oh := (in[1]-m.K)/m.Stride + 1
	ow := (in[2]-m.K)/m.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d/stride %d larger than input %v", m.name, m.K, m.Stride, in))
	}
	return []int{in[0], oh, ow}
}

// ForwardT implements Layer. With a nil tape the argmax routing table is
// never built — the discarded-tape path does strictly less work.
func (m *MaxPool2D) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(m.name, x)
	os := m.OutShape(x.Shape()[1:])
	oh, ow := os[1], os[2]
	var argmax []int
	if tape != nil {
		argmax = make([]int, x.Dim(0)*x.Dim(1)*oh*ow)
	}
	out := m.compute(x, oh, ow, argmax)
	tape.push(m, maxPoolState{shape: append([]int(nil), x.Shape()...), argmax: argmax})
	return out
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m.tape.Reset()
	return m.ForwardT(&m.tape, x, train)
}

// compute runs the window sweep; when argmax is non-nil it records the flat
// input index of each output's maximum for BackwardT.
func (m *MaxPool2D) compute(x *tensor.Tensor, oh, ow int, argmax []int) *tensor.Tensor {
	n, c := x.Dim(0), x.Dim(1)
	h, w := x.Dim(2), x.Dim(3)
	out := tensor.New(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n, func(i int) {
		for ch := 0; ch < c; ch++ {
			in := xd[(i*c+ch)*h*w:]
			outPlane := od[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*m.Stride, ox*m.Stride
					best := in[y0*w+x0]
					bi := y0*w + x0
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							idx := (y0+ky)*w + (x0 + kx)
							if in[idx] > best {
								best, bi = in[idx], idx
							}
						}
					}
					outPlane[oy*ow+ox] = best
					if argmax != nil {
						argmax[(i*c+ch)*oh*ow+oy*ow+ox] = (i*c+ch)*h*w + bi
					}
				}
			}
		}
	})
	return out
}

// BackwardT implements Layer.
func (m *MaxPool2D) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	st := tape.pop(m).(maxPoolState)
	if grad.Len() != len(st.argmax) {
		panic("nn: MaxPool2D backward grad size mismatch")
	}
	dx := tensor.New(st.shape...)
	dd, gd := dx.Data(), grad.Data()
	for i, src := range st.argmax {
		dd[src] += gd[i]
	}
	return dx
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.tape.Len() == 0 {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	return m.BackwardT(&m.tape, grad)
}

// AvgPool2D applies average pooling over [N, C, H, W] inputs.
type AvgPool2D struct {
	name      string
	K, Stride int
	tape      Tape // backs the legacy Forward/Backward API
}

// NewAvgPool2D constructs an average-pooling layer with a square window.
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: pooling kernel and stride must be positive")
	}
	return &AvgPool2D{name: name, K: k, Stride: stride}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.name }

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (a *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W] per-sample shape, got %v", a.name, in))
	}
	oh := (in[1]-a.K)/a.Stride + 1
	ow := (in[2]-a.K)/a.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d/stride %d larger than input %v", a.name, a.K, a.Stride, in))
	}
	return []int{in[0], oh, ow}
}

// ForwardT implements Layer, taping only the input shape.
func (a *AvgPool2D) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(a.name, x)
	n, c := x.Dim(0), x.Dim(1)
	h, w := x.Dim(2), x.Dim(3)
	os := a.OutShape([]int{c, h, w})
	oh, ow := os[1], os[2]
	out := tensor.New(n, c, oh, ow)
	inv := 1 / float64(a.K*a.K)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n, func(i int) {
		for ch := 0; ch < c; ch++ {
			in := xd[(i*c+ch)*h*w:]
			outPlane := od[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*a.Stride, ox*a.Stride
					s := 0.0
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							s += in[(y0+ky)*w+(x0+kx)]
						}
					}
					outPlane[oy*ow+ox] = s * inv
				}
			}
		}
	})
	tape.push(a, append([]int(nil), x.Shape()...))
	return out
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (a *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a.tape.Reset()
	return a.ForwardT(&a.tape, x, train)
}

// BackwardT implements Layer.
func (a *AvgPool2D) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	shape := tape.pop(a).([]int)
	n, c := shape[0], shape[1]
	h, w := shape[2], shape[3]
	oh := (h-a.K)/a.Stride + 1
	ow := (w-a.K)/a.Stride + 1
	if grad.Len() != n*c*oh*ow {
		panic("nn: AvgPool2D backward grad size mismatch")
	}
	dx := tensor.New(shape...)
	inv := 1 / float64(a.K*a.K)
	dd, gd := dx.Data(), grad.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			dplane := dd[(i*c+ch)*h*w:]
			gplane := gd[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := gplane[oy*ow+ox] * inv
					y0, x0 := oy*a.Stride, ox*a.Stride
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							dplane[(y0+ky)*w+(x0+kx)] += gv
						}
					}
				}
			}
		}
	}
	return dx
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (a *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.tape.Len() == 0 {
		panic("nn: AvgPool2D.Backward before Forward")
	}
	return a.BackwardT(&a.tape, grad)
}
