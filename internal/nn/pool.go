package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// MaxPool2D applies max pooling over [N, C, H, W] inputs. The backward pass
// routes each output gradient to the argmax input position.
type MaxPool2D struct {
	name        string
	K, Stride   int
	lastShape   []int
	lastArgmax  []int // flat input index per output element
	lastOutDims [2]int
}

// NewMaxPool2D constructs a max-pooling layer with a square window.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: pooling kernel and stride must be positive")
	}
	return &MaxPool2D{name: name, K: k, Stride: stride}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W] per-sample shape, got %v", m.name, in))
	}
	oh := (in[1]-m.K)/m.Stride + 1
	ow := (in[2]-m.K)/m.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d/stride %d larger than input %v", m.name, m.K, m.Stride, in))
	}
	return []int{in[0], oh, ow}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(m.name, x)
	os := m.OutShape(x.Shape()[1:])
	oh, ow := os[1], os[2]
	m.lastShape = append([]int(nil), x.Shape()...)
	m.lastOutDims = [2]int{oh, ow}
	vol := x.Dim(0) * x.Dim(1) * oh * ow
	if cap(m.lastArgmax) < vol {
		m.lastArgmax = make([]int, vol)
	}
	m.lastArgmax = m.lastArgmax[:vol]
	return m.compute(x, oh, ow, m.lastArgmax)
}

// Infer implements Layer: max pooling with no argmax cache. Safe for
// concurrent use.
func (m *MaxPool2D) Infer(x *tensor.Tensor) *tensor.Tensor {
	checkBatched(m.name, x)
	os := m.OutShape(x.Shape()[1:])
	return m.compute(x, os[1], os[2], nil)
}

// compute runs the window sweep; when argmax is non-nil it records the flat
// input index of each output's maximum for Backward.
func (m *MaxPool2D) compute(x *tensor.Tensor, oh, ow int, argmax []int) *tensor.Tensor {
	n, c := x.Dim(0), x.Dim(1)
	h, w := x.Dim(2), x.Dim(3)
	out := tensor.New(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n, func(i int) {
		for ch := 0; ch < c; ch++ {
			in := xd[(i*c+ch)*h*w:]
			outPlane := od[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*m.Stride, ox*m.Stride
					best := in[y0*w+x0]
					bi := y0*w + x0
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							idx := (y0+ky)*w + (x0 + kx)
							if in[idx] > best {
								best, bi = in[idx], idx
							}
						}
					}
					outPlane[oy*ow+ox] = best
					if argmax != nil {
						argmax[(i*c+ch)*oh*ow+oy*ow+ox] = (i*c+ch)*h*w + bi
					}
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.lastShape == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	if grad.Len() != len(m.lastArgmax) {
		panic("nn: MaxPool2D backward grad size mismatch")
	}
	dx := tensor.New(m.lastShape...)
	dd, gd := dx.Data(), grad.Data()
	for i, src := range m.lastArgmax {
		dd[src] += gd[i]
	}
	return dx
}

// AvgPool2D applies average pooling over [N, C, H, W] inputs.
type AvgPool2D struct {
	name      string
	K, Stride int
	lastShape []int
}

// NewAvgPool2D constructs an average-pooling layer with a square window.
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: pooling kernel and stride must be positive")
	}
	return &AvgPool2D{name: name, K: k, Stride: stride}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.name }

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (a *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s expects [C,H,W] per-sample shape, got %v", a.name, in))
	}
	oh := (in[1]-a.K)/a.Stride + 1
	ow := (in[2]-a.K)/a.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d/stride %d larger than input %v", a.name, a.K, a.Stride, in))
	}
	return []int{in[0], oh, ow}
}

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a.lastShape = append([]int(nil), x.Shape()...)
	return a.Infer(x)
}

// Infer implements Layer: average pooling reads no layer state beyond the
// immutable window geometry. Safe for concurrent use.
func (a *AvgPool2D) Infer(x *tensor.Tensor) *tensor.Tensor {
	checkBatched(a.name, x)
	n, c := x.Dim(0), x.Dim(1)
	h, w := x.Dim(2), x.Dim(3)
	os := a.OutShape([]int{c, h, w})
	oh, ow := os[1], os[2]
	out := tensor.New(n, c, oh, ow)
	inv := 1 / float64(a.K*a.K)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n, func(i int) {
		for ch := 0; ch < c; ch++ {
			in := xd[(i*c+ch)*h*w:]
			outPlane := od[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*a.Stride, ox*a.Stride
					s := 0.0
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							s += in[(y0+ky)*w+(x0+kx)]
						}
					}
					outPlane[oy*ow+ox] = s * inv
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.lastShape == nil {
		panic("nn: AvgPool2D.Backward before Forward")
	}
	n, c := a.lastShape[0], a.lastShape[1]
	h, w := a.lastShape[2], a.lastShape[3]
	oh := (h-a.K)/a.Stride + 1
	ow := (w-a.K)/a.Stride + 1
	if grad.Len() != n*c*oh*ow {
		panic("nn: AvgPool2D backward grad size mismatch")
	}
	dx := tensor.New(a.lastShape...)
	inv := 1 / float64(a.K*a.K)
	dd, gd := dx.Data(), grad.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			dplane := dd[(i*c+ch)*h*w:]
			gplane := gd[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := gplane[oy*ow+ox] * inv
					y0, x0 := oy*a.Stride, ox*a.Stride
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							dplane[(y0+ky)*w+(x0+kx)] += gv
						}
					}
				}
			}
		}
	}
	return dx
}
