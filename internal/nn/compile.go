package nn

import (
	"fmt"
	"math"
	"strings"
	"time"

	"shredder/internal/tensor"
)

// This file is the inference compiler: it lowers a (range of a) Sequential
// into a flat list of dtype-parameterized steps that run without tape,
// without per-layer dispatch, and — where layers compose — fused.
//
// Compilation performs three transformations the layer-at-a-time path
// cannot:
//
//   - Weight conversion happens once. A Float32 plan converts every
//     parameter to float32 at compile time, so inference never pays the
//     per-request conversion cost and moves half the bytes per element.
//
//   - BatchNorm folding. A BatchNorm2D directly following a Conv2D is
//     absorbed into the convolution step as a per-channel epilogue affine.
//     The epilogue evaluates the exact expression normalizeRunning uses —
//     g·(z−mean)·inv + b, with inv precomputed in float64 — so at Float64
//     the fused plan is bitwise identical to the unfused (NoFusion) plan
//     (folding weights as W′ = s·W would not be: IEEE multiplication does
//     not distribute over the later dot product).
//
//   - Conv/Linear + ReLU fusion. The activation is applied in the epilogue
//     of the producing step, so the intermediate pre-activation tensor is
//     never materialized and the extra memory pass disappears.
//
// Tolerance policy: compiled plans run their matmuls through the
// register-blocked kernel (tensor.MatMulT2BlockedDense), whose four-wide
// accumulation order differs from the legacy kernel by rounding. A Float64
// plan therefore matches the stock layer-at-a-time path to ~1e-12 relative
// (tests pin 1e-9 absolute on logits) rather than bitwise, and a Float32
// plan to ~1e-4; classification decisions are pinned identical in both
// cases. Within compiled plans the fold/fuse transformations themselves are
// exact: fused and NoFusion Float64 plans agree bitwise. The stock float64
// API keeps its original summation order so training, noise learning, and
// cached-weight reproducibility are untouched.
//
// Everything else — training, noise learning, the inversion attack — stays
// on the float64 tape path; a compiled plan is inference-only by
// construction (there is no backward).

// CompileOption configures Compile/CompileRange.
type CompileOption func(*compileConfig)

type compileConfig struct {
	noFuse bool
}

// NoFusion disables BN folding and conv/linear+ReLU fusion: every layer
// becomes its own step. The plan still runs at the target dtype. This exists
// to isolate the dtype win from the fusion win in benchmarks.
func NoFusion() CompileOption {
	return func(c *compileConfig) { c.noFuse = true }
}

// CompiledNet is an executable inference plan for a contiguous layer range
// of a Sequential at a fixed dtype. It snapshots the parameters at compile
// time and is immutable afterwards: any number of goroutines may call Infer
// concurrently.
type CompiledNet struct {
	src      *Sequential
	from, to int
	dtype    Dtype
	labels   []string
	run      func(x *tensor.Tensor) *tensor.Tensor
	run32    func(x *tensor.Tensor32) *tensor.Tensor
}

// Compile lowers the whole network into an inference plan at the given
// dtype.
func Compile(s *Sequential, dt Dtype, opts ...CompileOption) (*CompiledNet, error) {
	return CompileRange(s, 0, s.Len(), dt, opts...)
}

// CompileRange lowers layers [from, to) into an inference plan at the given
// dtype — the split-execution form: core.Split compiles the remote part
// [cut, len) for the cloud side.
func CompileRange(s *Sequential, from, to int, dt Dtype, opts ...CompileOption) (*CompiledNet, error) {
	if from < 0 || to > s.Len() || from > to {
		return nil, fmt.Errorf("nn: CompileRange [%d,%d) out of bounds for %d layers", from, to, s.Len())
	}
	var cfg compileConfig
	for _, o := range opts {
		o(&cfg)
	}
	c := &CompiledNet{src: s, from: from, to: to, dtype: dt}
	switch dt {
	case Float64:
		steps, labels, err := buildPlan[float64](s, from, to, cfg, dt.Short())
		if err != nil {
			return nil, err
		}
		c.labels = labels
		c.run = func(x *tensor.Tensor) *tensor.Tensor {
			return tensor.AsTensor64(runSteps(s, steps, tensor.AsDense64(x), 8))
		}
	case Float32:
		steps, labels, err := buildPlan[float32](s, from, to, cfg, dt.Short())
		if err != nil {
			return nil, err
		}
		c.labels = labels
		c.run = func(x *tensor.Tensor) *tensor.Tensor {
			return runSteps(s, steps, tensor.ToDense[float32](x), 4).ToTensor()
		}
		c.run32 = func(x *tensor.Tensor32) *tensor.Tensor {
			return runSteps(s, steps, x, 4).ToTensor()
		}
	default:
		return nil, fmt.Errorf("nn: cannot compile for dtype %v", dt)
	}
	return c, nil
}

// Dtype returns the plan's element type.
func (c *CompiledNet) Dtype() Dtype { return c.dtype }

// Labels returns the per-step profiler labels in execution order, e.g.
// "conv2+relu2[f32]" for a fused step. The slice must not be mutated.
func (c *CompiledNet) Labels() []string { return c.labels }

// From returns the first compiled layer index.
func (c *CompiledNet) From() int { return c.from }

// To returns the end (exclusive) of the compiled layer range.
func (c *CompiledNet) To() int { return c.to }

// Infer runs the plan on a float64 batch and returns a float64 result —
// dtype conversion, when any, happens at the boundaries. Safe for
// concurrent use.
func (c *CompiledNet) Infer(x *tensor.Tensor) *tensor.Tensor { return c.run(x) }

// Infer32 runs the plan on a float32 batch — the zero-conversion entry for
// payloads dequantized directly to float32 (quantize.Dequantize32). For a
// Float64 plan the input is widened first.
func (c *CompiledNet) Infer32(x *tensor.Tensor32) *tensor.Tensor {
	if c.run32 != nil {
		return c.run32(x)
	}
	return c.run(x.ToTensor())
}

// LabelMatches reports whether a profiler label produced by a compiled plan
// (or the stock layer path) refers to the named layer. Fused steps carry
// labels like "conv2+relu2[f32]": the '+'-joined constituent layer names
// with a dtype suffix.
func LabelMatches(label, layer string) bool {
	if i := strings.LastIndexByte(label, '['); i >= 0 && strings.HasSuffix(label, "]") {
		label = label[:i]
	}
	if label == layer {
		return true
	}
	for _, part := range strings.Split(label, "+") {
		if part == layer {
			return true
		}
	}
	return false
}

// step is one executable unit of a compiled plan. run returns a fresh (or
// reshaped-view) buffer; it never mutates its input, so the caller's input
// tensor is safe to reuse.
type step[F tensor.Float] interface {
	label() string
	run(x *tensor.Dense[F]) *tensor.Dense[F]
}

// runSteps executes a plan, reporting per-step wall time to the source
// network's profiler (the same attach point the tape path uses, so
// `shredder profile` sees compiled and stock passes through one interface).
func runSteps[F tensor.Float](s *Sequential, steps []step[F], x *tensor.Dense[F], elemSize int64) *tensor.Dense[F] {
	if p := s.activeProfiler(nil); p != nil {
		for _, st := range steps {
			t0 := time.Now()
			x = st.run(x)
			p.ObserveLayer(st.label(), false, time.Since(t0), int64(x.Len())*elemSize)
		}
		return x
	}
	for _, st := range steps {
		x = st.run(x)
	}
	return x
}

// buildPlan lowers layers [from, to) to steps at element type F. The fusion
// scan is greedy over the canonical producer chains:
// Conv2D (+BatchNorm2D) (+ReLU) and Linear (+ReLU). Dropout is identity at
// inference and compiles to nothing.
func buildPlan[F tensor.Float](s *Sequential, from, to int, cfg compileConfig, short string) ([]step[F], []string, error) {
	var steps []step[F]
	layers := s.Layers()
	i := from
	for i < to {
		switch l := layers[i].(type) {
		case *Conv2D:
			st := newConvStep[F](l)
			names := []string{l.Name()}
			j := i + 1
			if !cfg.noFuse {
				if j < to {
					if bn, ok := layers[j].(*BatchNorm2D); ok && bn.C == l.OutC {
						st.foldBatchNorm(bn)
						names = append(names, bn.Name())
						j++
					}
				}
				if j < to {
					if r, ok := layers[j].(*ReLU); ok {
						st.relu = true
						names = append(names, r.Name())
						j++
					}
				}
			}
			st.lbl = strings.Join(names, "+") + "[" + short + "]"
			steps = append(steps, st)
			i = j
		case *Linear:
			st := newLinearStep[F](l)
			names := []string{l.Name()}
			j := i + 1
			if !cfg.noFuse && j < to {
				if r, ok := layers[j].(*ReLU); ok {
					st.relu = true
					names = append(names, r.Name())
					j++
				}
			}
			st.lbl = strings.Join(names, "+") + "[" + short + "]"
			steps = append(steps, st)
			i = j
		case *ReLU:
			steps = append(steps, &reluStep[F]{lbl: l.Name() + "[" + short + "]"})
			i++
		case *MaxPool2D:
			steps = append(steps, &maxPoolStep[F]{lbl: l.Name() + "[" + short + "]", src: l})
			i++
		case *AvgPool2D:
			steps = append(steps, &avgPoolStep[F]{lbl: l.Name() + "[" + short + "]", src: l})
			i++
		case *LocalResponseNorm:
			steps = append(steps, &lrnStep[F]{lbl: l.Name() + "[" + short + "]", src: l})
			i++
		case *Flatten:
			steps = append(steps, &flattenStep[F]{lbl: l.Name() + "[" + short + "]"})
			i++
		case *BatchNorm2D:
			steps = append(steps, newBatchNormStep[F](l, short))
			i++
		case *Dropout:
			// Identity at inference: compiles to nothing.
			i++
		default:
			return nil, nil, fmt.Errorf("nn: cannot compile layer %q (%T) for inference", layers[i].Name(), layers[i])
		}
	}
	labels := make([]string, len(steps))
	for k, st := range steps {
		labels[k] = st.label()
	}
	return steps, labels, nil
}

// convStep is an im2col-lowered convolution with the fused epilogue:
// bias add, optional folded-BatchNorm affine, optional ReLU — applied while
// the product row is still hot, so the pre-activation tensor is never
// materialized.
type convStep[F tensor.Float] struct {
	lbl  string
	src  *Conv2D
	w    *tensor.Dense[F] // [OutC, InC*KH*KW], converted once at compile
	b    []F              // [OutC]
	relu bool

	// Folded BatchNorm epilogue, nil when absent: y = g·(z−mean)·inv + b in
	// exactly normalizeRunning's expression order, with inv precomputed in
	// float64 so the fused Float64 plan is bitwise identical to the
	// NoFusion plan's standalone BN step.
	bnG, bnB, bnMean, bnInv []F
}

func newConvStep[F tensor.Float](c *Conv2D) *convStep[F] {
	return &convStep[F]{
		src: c,
		w:   tensor.ToDense[F](c.W.Value),
		b:   tensor.ToDense[F](c.B.Value).Data(),
	}
}

func (st *convStep[F]) foldBatchNorm(bn *BatchNorm2D) {
	n := bn.C
	st.bnG = tensor.ToDense[F](bn.Gamma.Value).Data()
	st.bnB = tensor.ToDense[F](bn.Beta.Value).Data()
	st.bnMean = make([]F, n)
	st.bnInv = make([]F, n)
	for c := 0; c < n; c++ {
		st.bnMean[c] = F(bn.runningMean[c])
		st.bnInv[c] = F(1 / math.Sqrt(bn.runningVar[c]+bn.Eps))
	}
}

func (st *convStep[F]) label() string { return st.lbl }

func (st *convStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	c := st.src
	shape := x.Shape()
	if len(shape) != 4 {
		panic(fmt.Sprintf("nn: compiled %s expects [N,C,H,W] input, got %v", st.lbl, shape))
	}
	g := c.geom(shape[1:])
	n := shape[0]
	outH, outW := g.OutH(), g.OutW()
	out := tensor.NewDense[F](n, c.OutC, outH, outW)
	p := outH * outW
	ckk := c.InC * c.KH * c.KW
	tensor.ParallelFor(n, func(i int) {
		cols := tensor.GetScratchDense[F](p, ckk)
		prod := tensor.GetScratchDense[F](p, c.OutC)
		tensor.Im2ColDense(cols, x.Slice(i), g)
		tensor.MatMulT2BlockedDense(prod, cols, st.w) // [P, OutC]
		dst := out.Slice(i).Data()                    // [OutC, P] layout
		pd := prod.Data()
		for pos := 0; pos < p; pos++ {
			row := pd[pos*c.OutC:]
			for oc := 0; oc < c.OutC; oc++ {
				z := row[oc] + st.b[oc]
				if st.bnInv != nil {
					z = st.bnG[oc]*(z-st.bnMean[oc])*st.bnInv[oc] + st.bnB[oc]
				}
				if st.relu && !(z > 0) {
					z = 0
				}
				dst[oc*p+pos] = z
			}
		}
		tensor.PutScratchDense(prod)
		tensor.PutScratchDense(cols)
	})
	return out
}

// linearStep is y = x·Wᵀ + b with an optional fused ReLU epilogue.
type linearStep[F tensor.Float] struct {
	lbl  string
	src  *Linear
	w    *tensor.Dense[F] // [Out, In]
	b    []F
	relu bool
}

func newLinearStep[F tensor.Float](l *Linear) *linearStep[F] {
	return &linearStep[F]{
		src: l,
		w:   tensor.ToDense[F](l.W.Value),
		b:   tensor.ToDense[F](l.B.Value).Data(),
	}
}

func (st *linearStep[F]) label() string { return st.lbl }

func (st *linearStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	l := st.src
	n := x.Dim(0)
	x2 := x.Reshape(n, -1)
	if x2.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: compiled %s expects %d inputs, got %d", st.lbl, l.In, x2.Dim(1)))
	}
	out := tensor.NewDense[F](n, l.Out)
	tensor.MatMulT2BlockedDense(out, x2, st.w)
	od := out.Data()
	for i := 0; i < n; i++ {
		row := od[i*l.Out:]
		for j := 0; j < l.Out; j++ {
			v := row[j] + st.b[j]
			if st.relu && !(v > 0) {
				v = 0
			}
			row[j] = v
		}
	}
	return out
}

// reluStep is a standalone max(0, x) for positions where fusion did not
// apply (after pooling, or under NoFusion).
type reluStep[F tensor.Float] struct{ lbl string }

func (st *reluStep[F]) label() string { return st.lbl }

func (st *reluStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	out := tensor.NewDense[F](x.Shape()...)
	tensor.ReLUDense(out, x)
	return out
}

// maxPoolStep is the window-max sweep, without the argmax routing table the
// tape path builds for backward.
type maxPoolStep[F tensor.Float] struct {
	lbl string
	src *MaxPool2D
}

func (st *maxPoolStep[F]) label() string { return st.lbl }

func (st *maxPoolStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	m := st.src
	n, c := x.Dim(0), x.Dim(1)
	h, w := x.Dim(2), x.Dim(3)
	os := m.OutShape([]int{c, h, w})
	oh, ow := os[1], os[2]
	out := tensor.NewDense[F](n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n, func(i int) {
		for ch := 0; ch < c; ch++ {
			in := xd[(i*c+ch)*h*w:]
			outPlane := od[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*m.Stride, ox*m.Stride
					best := in[y0*w+x0]
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							if v := in[(y0+ky)*w+(x0+kx)]; v > best {
								best = v
							}
						}
					}
					outPlane[oy*ow+ox] = best
				}
			}
		}
	})
	return out
}

// avgPoolStep is the window-mean sweep.
type avgPoolStep[F tensor.Float] struct {
	lbl string
	src *AvgPool2D
}

func (st *avgPoolStep[F]) label() string { return st.lbl }

func (st *avgPoolStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	a := st.src
	n, c := x.Dim(0), x.Dim(1)
	h, w := x.Dim(2), x.Dim(3)
	os := a.OutShape([]int{c, h, w})
	oh, ow := os[1], os[2]
	out := tensor.NewDense[F](n, c, oh, ow)
	inv := 1 / F(a.K*a.K)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n, func(i int) {
		for ch := 0; ch < c; ch++ {
			in := xd[(i*c+ch)*h*w:]
			outPlane := od[(i*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*a.Stride, ox*a.Stride
					var s F
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							s += in[(y0+ky)*w+(x0+kx)]
						}
					}
					outPlane[oy*ow+ox] = s * inv
				}
			}
		}
	})
	return out
}

// lrnStep is the cross-channel local response normalization sweep. The
// x^(-β) power runs through math.Pow in float64 at both dtypes — exactly
// what the stock path does at Float64, and well inside the float32 epsilon
// budget at Float32.
type lrnStep[F tensor.Float] struct {
	lbl string
	src *LocalResponseNorm
}

func (st *lrnStep[F]) label() string { return st.lbl }

func (st *lrnStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	l := st.src
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hw := h * w
	out := tensor.NewDense[F](x.Shape()...)
	xd, od := x.Data(), out.Data()
	coef := F(l.Alpha) / F(l.N)
	tensor.ParallelFor(n, func(i int) {
		base := i * c * hw
		for ch := 0; ch < c; ch++ {
			lo, hi := l.window(ch, c)
			for p := 0; p < hw; p++ {
				var sum F
				for j := lo; j < hi; j++ {
					v := xd[base+j*hw+p]
					sum += v * v
				}
				s := F(l.K) + coef*sum
				idx := base + ch*hw + p
				od[idx] = xd[idx] * F(math.Pow(float64(s), -l.Beta))
			}
		}
	})
	return out
}

// flattenStep reshapes [N, ...] to [N, D] — a view, no copy.
type flattenStep[F tensor.Float] struct{ lbl string }

func (st *flattenStep[F]) label() string { return st.lbl }

func (st *flattenStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	return x.Reshape(x.Dim(0), -1)
}

// batchNormStep is a standalone inference-mode BatchNorm (running-stats
// affine) for positions where folding did not apply: BN not directly after
// a Conv2D, or under NoFusion. The per-channel constants are precomputed at
// compile time with inv derived in float64, matching normalizeRunning.
type batchNormStep[F tensor.Float] struct {
	lbl             string
	c               int
	g, b, mean, inv []F
}

func newBatchNormStep[F tensor.Float](bn *BatchNorm2D, short string) *batchNormStep[F] {
	st := &batchNormStep[F]{
		lbl:  bn.Name() + "[" + short + "]",
		c:    bn.C,
		g:    tensor.ToDense[F](bn.Gamma.Value).Data(),
		b:    tensor.ToDense[F](bn.Beta.Value).Data(),
		mean: make([]F, bn.C),
		inv:  make([]F, bn.C),
	}
	for c := 0; c < bn.C; c++ {
		st.mean[c] = F(bn.runningMean[c])
		st.inv[c] = F(1 / math.Sqrt(bn.runningVar[c]+bn.Eps))
	}
	return st
}

func (st *batchNormStep[F]) label() string { return st.lbl }

func (st *batchNormStep[F]) run(x *tensor.Dense[F]) *tensor.Dense[F] {
	if x.Rank() != 4 || x.Dim(1) != st.c {
		panic(fmt.Sprintf("nn: compiled %s expects [N,%d,H,W], got %v", st.lbl, st.c, x.Shape()))
	}
	n, hw := x.Dim(0), x.Dim(2)*x.Dim(3)
	out := tensor.NewDense[F](x.Shape()...)
	xd, od := x.Data(), out.Data()
	for c := 0; c < st.c; c++ {
		inv, mean := st.inv[c], st.mean[c]
		g, b := st.g[c], st.b[c]
		for i := 0; i < n; i++ {
			base := (i*st.c + c) * hw
			for p := 0; p < hw; p++ {
				od[base+p] = g*(xd[base+p]-mean)*inv + b
			}
		}
	}
	return out
}
