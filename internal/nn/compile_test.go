package nn

import (
	"math"
	"strings"
	"testing"

	"shredder/internal/tensor"
)

func TestParseDtype(t *testing.T) {
	cases := []struct {
		in   string
		want Dtype
		ok   bool
	}{
		{"float64", Float64, true},
		{"f64", Float64, true},
		{"FLOAT32", Float32, true},
		{" f32 ", Float32, true},
		{"double", Float64, true},
		{"bf16", Float64, false},
		{"", Float64, false},
	}
	for _, c := range cases {
		got, err := ParseDtype(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseDtype(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseDtype(%q) succeeded, want error", c.in)
		}
	}
	if Float32.Short() != "f32" || Float64.Short() != "f64" {
		t.Error("Dtype.Short misnamed")
	}
	if Float32.Size() != 4 || Float64.Size() != 8 {
		t.Error("Dtype.Size wrong")
	}
}

func TestLabelMatches(t *testing.T) {
	cases := []struct {
		label, layer string
		want         bool
	}{
		{"conv2", "conv2", true},
		{"conv2[f32]", "conv2", true},
		{"conv2+relu2[f32]", "conv2", true},
		{"conv2+relu2[f32]", "relu2", true},
		{"conv2+bn2+relu2[f64]", "bn2", true},
		{"conv2+relu2[f32]", "conv", false},
		{"conv20[f32]", "conv2", false},
		{"fc1", "fc2", false},
	}
	for _, c := range cases {
		if got := LabelMatches(c.label, c.layer); got != c.want {
			t.Errorf("LabelMatches(%q, %q) = %v, want %v", c.label, c.layer, got, c.want)
		}
	}
}

// convBNNet builds conv→bn→relu→pool→flatten→fc with the given conv
// geometry, and populates the BN running statistics with non-trivial values
// so folding has something real to fold.
func convBNNet(t *testing.T, inC, outC, k, stride, pad int, rng *tensor.RNG) *Sequential {
	t.Helper()
	conv := NewConv2D("conv0", inC, outC, k, k, stride, pad, rng)
	bn := NewBatchNorm2D("bn0", outC)
	for c := 0; c < outC; c++ {
		bn.runningMean[c] = rng.Normal(0, 0.3)
		bn.runningVar[c] = 0.5 + rng.Float64()
		bn.Gamma.Value.Data()[c] = 0.5 + rng.Float64()
		bn.Beta.Value.Data()[c] = rng.Normal(0, 0.1)
	}
	return NewSequential("convbn",
		conv, bn, NewReLU("relu0"), NewFlatten("flat"),
	)
}

// TestFoldedConvBNBitwiseFloat64 is the BN-folding property test: for a
// sweep of stride/pad/channel combinations, the folded+fused Float64 plan
// must equal the unfused Conv→BN→ReLU plan bitwise — the fold and fusion
// transformations are exact, they only reorganize where the same arithmetic
// happens. Against the stock layer-at-a-time path, which sums its matmuls
// in the legacy order, the plan must stay within the accumulation-reorder
// epsilon with identical argmax.
func TestFoldedConvBNBitwiseFloat64(t *testing.T) {
	combos := []struct{ inC, outC, k, stride, pad int }{
		{1, 4, 3, 1, 0},
		{1, 4, 3, 1, 1},
		{3, 8, 3, 2, 1},
		{3, 5, 5, 1, 2},
		{2, 7, 4, 2, 0},
		{4, 3, 1, 1, 0},
	}
	for _, cb := range combos {
		rng := tensor.NewRNG(int64(100*cb.inC + 10*cb.outC + cb.k + cb.stride + cb.pad))
		net := convBNNet(t, cb.inC, cb.outC, cb.k, cb.stride, cb.pad, rng)
		x := rng.FillNormal(tensor.New(3, cb.inC, 11, 11), 0, 1)

		cn, err := Compile(net, Float64)
		if err != nil {
			t.Fatalf("%+v: compile: %v", cb, err)
		}
		if len(cn.Labels()) != 2 || cn.Labels()[0] != "conv0+bn0+relu0[f64]" {
			t.Fatalf("%+v: unexpected plan %v", cb, cn.Labels())
		}
		unfused, err := Compile(net, Float64, NoFusion())
		if err != nil {
			t.Fatalf("%+v: compile unfused: %v", cb, err)
		}
		got := cn.Infer(x)
		want := unfused.Infer(x)
		if !got.SameShape(want) {
			t.Fatalf("%+v: shape %v want %v", cb, got.Shape(), want.Shape())
		}
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("%+v: folded f64 plan differs from unfused at %d: %v vs %v",
					cb, i, v, want.Data()[i])
			}
		}
		stock := net.Infer(x)
		for i, v := range got.Data() {
			if math.Abs(v-stock.Data()[i]) > 1e-9 {
				t.Fatalf("%+v: f64 plan deviates from stock path at %d: %v vs %v",
					cb, i, v, stock.Data()[i])
			}
		}
		for s := 0; s < got.Dim(0); s++ {
			if got.Slice(s).Argmax() != stock.Slice(s).Argmax() {
				t.Fatalf("%+v: sample %d decision differs from stock path", cb, s)
			}
		}
	}
}

// TestFoldedConvBNFloat32Epsilon checks the same fold at Float32 stays
// within the documented epsilon of the float64 reference across the combo
// sweep.
func TestFoldedConvBNFloat32Epsilon(t *testing.T) {
	combos := []struct{ inC, outC, k, stride, pad int }{
		{1, 4, 3, 1, 1},
		{3, 8, 3, 2, 1},
		{2, 7, 4, 2, 0},
	}
	for _, cb := range combos {
		rng := tensor.NewRNG(int64(7*cb.inC + 3*cb.outC + cb.k))
		net := convBNNet(t, cb.inC, cb.outC, cb.k, cb.stride, cb.pad, rng)
		x := rng.FillNormal(tensor.New(3, cb.inC, 11, 11), 0, 1)

		want := net.Infer(x)
		cn, err := Compile(net, Float32)
		if err != nil {
			t.Fatalf("%+v: compile: %v", cb, err)
		}
		got := cn.Infer(x)
		maxDiff := 0.0
		for i, v := range got.Data() {
			if d := math.Abs(v - want.Data()[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-4 {
			t.Fatalf("%+v: float32 fold deviates by %g", cb, maxDiff)
		}
	}
}

// TestNoFusionPlanMatchesFused: disabling fusion changes the step structure
// but not the Float64 result (still bitwise — the standalone BN step uses
// the same expression as the fold epilogue).
func TestNoFusionPlanMatchesFused(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := convBNNet(t, 3, 6, 3, 1, 1, rng)
	x := rng.FillNormal(tensor.New(2, 3, 9, 9), 0, 1)

	fused, err := Compile(net, Float64)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := Compile(net, Float64, NoFusion())
	if err != nil {
		t.Fatal(err)
	}
	if len(unfused.Labels()) <= len(fused.Labels()) {
		t.Fatalf("NoFusion did not expand the plan: %v vs %v", unfused.Labels(), fused.Labels())
	}
	for _, lbl := range unfused.Labels() {
		if strings.Contains(lbl, "+") {
			t.Fatalf("NoFusion plan contains fused step %q", lbl)
		}
	}
	a, b := fused.Infer(x), unfused.Infer(x)
	for i, v := range a.Data() {
		if v != b.Data()[i] {
			t.Fatalf("fused and unfused f64 plans differ at %d", i)
		}
	}
}

func TestCompileSkipsDropoutAndRejectsUnknown(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := NewSequential("d",
		NewLinear("fc0", 12, 8, rng),
		NewDropout("drop0", 0.5, rng),
		NewReLU("relu0"),
		NewLinear("fc1", 8, 4, rng),
	)
	cn, err := Compile(net, Float64)
	if err != nil {
		t.Fatal(err)
	}
	for _, lbl := range cn.Labels() {
		if strings.Contains(lbl, "drop0") {
			t.Fatalf("dropout appears in plan: %v", cn.Labels())
		}
	}
	x := rng.FillNormal(tensor.New(4, 12), 0, 1)
	want := net.Infer(x)
	got := cn.Infer(x)
	for i, v := range got.Data() {
		if math.Abs(v-want.Data()[i]) > 1e-12 {
			t.Fatalf("dropout-skipping plan differs at %d", i)
		}
	}

	bad := NewSequential("bad", &unknownLayer{})
	if _, err := Compile(bad, Float64); err == nil {
		t.Fatal("Compile accepted an unknown layer type")
	}
	if _, err := CompileRange(net, 2, 1, Float64); err == nil {
		t.Fatal("CompileRange accepted an inverted range")
	}
}

// unknownLayer is a Layer the compiler has no lowering for.
type unknownLayer struct{ tape Tape }

func (u *unknownLayer) Name() string           { return "mystery" }
func (u *unknownLayer) Params() []*Param       { return nil }
func (u *unknownLayer) OutShape(s []int) []int { return s }
func (u *unknownLayer) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	return x
}
func (u *unknownLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (u *unknownLayer) BackwardT(tape *Tape, g *tensor.Tensor) *tensor.Tensor {
	return g
}
func (u *unknownLayer) Backward(g *tensor.Tensor) *tensor.Tensor { return g }

func TestCompiledInfer32DirectEntry(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := NewSequential("n",
		NewLinear("fc0", 6, 5, rng),
		NewReLU("relu0"),
		NewLinear("fc1", 5, 3, rng),
	)
	cn, err := Compile(net, Float32)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.FillNormal(tensor.New(2, 6), 0, 1)
	viaF64 := cn.Infer(x)
	via32 := cn.Infer32(tensor.ToDense[float32](x))
	for i, v := range via32.Data() {
		if v != viaF64.Data()[i] {
			t.Fatalf("Infer32 and Infer disagree at %d: %v vs %v", i, v, viaF64.Data()[i])
		}
	}
	// Float64 plans widen the input instead of failing.
	cn64, err := Compile(net, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if out := cn64.Infer32(tensor.ToDense[float32](x)); out.Len() != 6 {
		t.Fatalf("f64 Infer32 returned %v", out.Shape())
	}
}
