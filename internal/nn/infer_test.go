package nn

// Tests for the reentrant inference path: for every layer, ForwardT with a
// discarded (nil) tape must compute exactly what Forward(x, false)
// computes, and running Sequential.Infer from many goroutines over one
// shared network must be race-free (the -race runs in CI enforce the
// latter).

import (
	"sync"
	"testing"

	"shredder/internal/tensor"
)

// inferLayers returns one instance of every layer type over a [2, 3, 8, 8]
// input, paired with the input each expects.
func inferCases(rng *tensor.RNG) []struct {
	name  string
	layer Layer
	x     *tensor.Tensor
} {
	img := rng.FillNormal(tensor.New(2, 3, 8, 8), 0, 1)
	flat := rng.FillNormal(tensor.New(2, 192), 0, 1)
	bn := NewBatchNorm2D("bn", 3)
	// Give batch norm non-trivial running stats via a training pass.
	bn.Forward(rng.FillNormal(tensor.New(4, 3, 8, 8), 0.5, 2), true)
	return []struct {
		name  string
		layer Layer
		x     *tensor.Tensor
	}{
		{"conv", NewConv2D("conv", 3, 4, 3, 3, 1, 1, rng), img},
		{"linear", NewLinear("lin", 192, 10, rng), flat},
		{"relu", NewReLU("relu"), img},
		{"flatten", NewFlatten("flat"), img},
		{"dropout", NewDropout("drop", 0.5, rng), img},
		{"maxpool", NewMaxPool2D("mp", 2, 2), img},
		{"avgpool", NewAvgPool2D("ap", 2, 2), img},
		{"batchnorm", bn, img},
		{"lrn", NewLocalResponseNorm("lrn", 3, 0, 0, 0), img},
	}
}

func TestInferMatchesInferenceForward(t *testing.T) {
	for _, tc := range inferCases(tensor.NewRNG(11)) {
		want := tc.layer.Forward(tc.x, false)
		got := tc.layer.ForwardT(nil, tc.x, false)
		if !tensor.AllClose(got, want, 0) {
			t.Errorf("%s: nil-tape ForwardT diverges from Forward(x, false)", tc.name)
		}
		if !tensor.ShapeEq(got.Shape(), want.Shape()) {
			t.Errorf("%s: nil-tape ForwardT shape %v != Forward shape %v", tc.name, got.Shape(), want.Shape())
		}
	}
}

func TestInferDoesNotDisturbTrainingState(t *testing.T) {
	rng := tensor.NewRNG(5)
	conv := NewConv2D("conv", 3, 4, 3, 3, 1, 1, rng)
	x := rng.FillNormal(tensor.New(2, 3, 8, 8), 0, 1)
	out := conv.Forward(x, true)
	g := rng.FillNormal(tensor.New(out.Shape()...), 0, 1)
	wantDx := conv.Backward(g).Clone()
	conv.W.Grad.Zero()
	conv.B.Grad.Zero()

	// An interleaved nil-tape inference (e.g. a serving goroutine) must not
	// corrupt the Forward→Backward pairing of a concurrent training loop.
	conv.Forward(x, true)
	conv.ForwardT(nil, rng.FillNormal(tensor.New(5, 3, 8, 8), 0, 1), false)
	gotDx := conv.Backward(g)
	if !tensor.AllClose(gotDx, wantDx, 0) {
		t.Fatal("Infer between Forward and Backward corrupted the backward pass")
	}
}

// TestSequentialInferConcurrent runs 8 goroutines × 4 inferences over one
// shared network. Under -race this fails on any layer that still caches
// forward state on the reentrant path; without -race it still verifies
// all outputs match the single-threaded baseline bit-for-bit.
func TestSequentialInferConcurrent(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := NewSequential("tiny",
		NewConv2D("conv0", 1, 4, 3, 3, 1, 1, rng),
		NewBatchNorm2D("bn0", 4),
		NewReLU("relu0"),
		NewMaxPool2D("pool0", 2, 2),
		NewLocalResponseNorm("lrn0", 3, 0, 0, 0),
		NewConv2D("conv1", 4, 6, 3, 3, 1, 1, rng),
		NewReLU("relu1"),
		NewAvgPool2D("pool1", 2, 2),
		NewFlatten("flat"),
		NewDropout("drop", 0.3, rng),
		NewLinear("fc", 54, 10, rng),
	)
	// Populate batch-norm running stats, then freeze for inference.
	net.Forward(rng.FillNormal(tensor.New(4, 1, 12, 12), 0, 1), true)

	x := rng.FillNormal(tensor.New(2, 1, 12, 12), 0, 1)
	want := net.Infer(x)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if got := net.Infer(x); !tensor.AllClose(got, want, 0) {
					errs <- "concurrent Infer diverged from baseline"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
