package nn

import (
	"fmt"
	"strings"
)

// Dtype selects the element type a compiled inference plan runs on. Float64
// is the reference precision everything else in the system uses (training,
// noise learning, the tape-based autograd); Float32 is the reduced-precision
// inference dtype: half the memory traffic per element, with activations
// within a documented epsilon of the float64 path and identical
// classification decisions (see DESIGN.md §5f).
type Dtype int

const (
	// Float64 runs the compiled plan at reference precision. The plan's
	// float64 instantiation delegates to the exact same generic kernels the
	// stock layer path uses, so its outputs are bitwise identical to
	// Sequential.Infer.
	Float64 Dtype = iota
	// Float32 runs the compiled plan at reduced precision: weights are
	// converted once at compile time and every intermediate buffer holds
	// float32.
	Float32
)

// String returns the canonical spelling ("float64", "float32").
func (d Dtype) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	}
	return fmt.Sprintf("Dtype(%d)", int(d))
}

// Short returns the compact tag used in profiler labels ("f64", "f32").
func (d Dtype) Short() string {
	if d == Float32 {
		return "f32"
	}
	return "f64"
}

// Size returns the element size in bytes.
func (d Dtype) Size() int {
	if d == Float32 {
		return 4
	}
	return 8
}

// ParseDtype parses a dtype name as accepted by the -dtype command-line
// knob: "float64"/"f64" and "float32"/"f32", case-insensitively.
func ParseDtype(s string) (Dtype, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "float64", "f64", "fp64", "double":
		return Float64, nil
	case "float32", "f32", "fp32", "single":
		return Float32, nil
	}
	return Float64, fmt.Errorf("nn: unknown dtype %q (want float64/f64 or float32/f32)", s)
}
