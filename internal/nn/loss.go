package nn

import (
	"fmt"
	"math"

	"shredder/internal/tensor"
)

// Softmax returns row-wise softmax probabilities for logits of shape
// [N, M], computed with the max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic("nn: Softmax expects [N, M] logits")
	}
	n, m := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, m)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := ld[i*m : (i+1)*m]
		orow := od[i*m : (i+1)*m]
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// CrossEntropy computes the mean softmax cross-entropy loss over a batch
// and the gradient with respect to the logits. labels[i] is the class index
// of sample i. The returned gradient is already divided by the batch size,
// so optimizer steps are batch-size invariant.
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, m := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropy got %d labels for batch of %d", len(labels), n))
	}
	probs := Softmax(logits)
	grad = probs.Clone()
	pd, gd := probs.Data(), grad.Data()
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= m {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, m))
		}
		p := pd[i*m+y]
		loss -= math.Log(math.Max(p, 1e-300))
		gd[i*m+y] -= 1
	}
	loss *= invN
	grad.Scale(invN)
	return loss, grad
}

// SoftCrossEntropy computes the mean cross-entropy against a full target
// distribution of shape [N, M] (soft labels), used by the self-supervised
// noise-training mode where targets are the unnoised model's own softmax
// outputs. Returns loss and gradient w.r.t. the logits.
func SoftCrossEntropy(logits, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if !logits.SameShape(target) {
		panic(fmt.Sprintf("nn: SoftCrossEntropy shape mismatch %v vs %v", logits.Shape(), target.Shape()))
	}
	n, m := logits.Dim(0), logits.Dim(1)
	probs := Softmax(logits)
	grad = tensor.New(n, m)
	pd, td, gd := probs.Data(), target.Data(), grad.Data()
	invN := 1 / float64(n)
	for i := 0; i < n*m; i++ {
		loss -= td[i] * math.Log(math.Max(pd[i], 1e-300))
		gd[i] = (pd[i] - td[i]) * invN
	}
	loss *= invN
	return loss, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		if logits.Slice(i).Argmax() == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
