package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"shredder/internal/tensor"
)

func smallNet(seed int64) *Sequential {
	rng := tensor.NewRNG(seed)
	return NewSequential("small",
		NewConv2D("conv0", 1, 2, 3, 3, 1, 1, rng),
		NewReLU("relu0"),
		NewFlatten("flat"),
		NewLinear("fc", 2*4*4, 3, rng),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := smallNet(1)
	dst := smallNet(2) // different init; must become identical after Load
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := Load(dst, &buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	x := tensor.NewRNG(3).FillNormal(tensor.New(2, 1, 4, 4), 0, 1)
	if !tensor.AllClose(src.Forward(x, false), dst.Forward(x, false), 1e-12) {
		t.Fatal("loaded network differs from saved network")
	}
}

func TestLoadWrongNameFails(t *testing.T) {
	src := smallNet(1)
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	other := NewSequential("other", NewReLU("r"))
	if err := Load(other, &buf); err == nil {
		t.Fatal("Load should reject a checkpoint for a different network")
	}
}

func TestLoadShapeMismatchFails(t *testing.T) {
	src := smallNet(1)
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	// Same name and layer names but different fc width.
	dst := NewSequential("small",
		NewConv2D("conv0", 1, 2, 3, 3, 1, 1, rng),
		NewReLU("relu0"),
		NewFlatten("flat"),
		NewLinear("fc", 2*4*4, 7, rng),
	)
	if err := Load(dst, &buf); err == nil {
		t.Fatal("Load should reject mismatched parameter shapes")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	src := smallNet(5)
	if err := SaveFile(src, path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	dst := smallNet(6)
	if err := LoadFile(dst, path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	x := tensor.NewRNG(7).FillNormal(tensor.New(1, 1, 4, 4), 0, 1)
	if !tensor.AllClose(src.Forward(x, false), dst.Forward(x, false), 1e-12) {
		t.Fatal("file round trip changed parameters")
	}
	if err := LoadFile(dst, filepath.Join(dir, "missing.gob")); err == nil {
		t.Fatal("LoadFile of missing path should fail")
	}
}
