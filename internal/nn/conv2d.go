package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// Conv2D is a 2-D convolution layer over [N, C, H, W] inputs, lowered to
// matrix multiplication via im2col. Weights have shape
// [OutC, InC*KH*KW] and biases [OutC].
type Conv2D struct {
	name        string
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	W, B        *Param
	tape        Tape // backs the legacy Forward/Backward API
}

// convState is the tape record of one Conv2D forward pass.
type convState struct {
	in         *tensor.Tensor
	geom       tensor.ConvGeom
	outH, outW int
}

// NewConv2D constructs a convolution layer with He-initialized weights.
func NewConv2D(name string, inC, outC, kh, kw, stride, pad int, rng *tensor.RNG) *Conv2D {
	fanIn := inC * kh * kw
	w := tensor.New(outC, fanIn)
	HeInit(w, fanIn, rng)
	b := tensor.New(outC)
	return &Conv2D{
		name: name, InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W: NewParam(name+".W", w), B: NewParam(name+".b", b),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	g := c.geom(in)
	return []int{c.OutC, g.OutH(), g.OutW()}
}

func (c *Conv2D) geom(in []int) tensor.ConvGeom {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: %s expects per-sample shape [%d,H,W], got %v", c.name, c.InC, in))
	}
	g := tensor.ConvGeom{InC: c.InC, InH: in[1], InW: in[2], KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// ForwardT implements Layer. The batch is processed sample-parallel, with
// the per-sample column and product matrices drawn from the tensor scratch
// pool so concurrent passes do not scale allocations with request rate.
func (c *Conv2D) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(c.name, x)
	g := c.geom(x.Shape()[1:])
	tape.push(c, convState{in: x, geom: g, outH: g.OutH(), outW: g.OutW()})
	return c.compute(x, g)
}

// Forward implements Layer (legacy wrapper over the struct-held tape).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	c.tape.Reset()
	return c.ForwardT(&c.tape, x, train)
}

// compute runs the im2col-lowered convolution over a batch. It reads only
// the layer's parameters, never mutable layer state.
func (c *Conv2D) compute(x *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	out := tensor.New(n, c.OutC, outH, outW)
	p := outH * outW
	ckk := c.InC * c.KH * c.KW
	tensor.ParallelFor(n, func(i int) {
		cols := tensor.GetScratch(p, ckk) // [P, CKK]
		prod := tensor.GetScratch(p, c.OutC)
		tensor.Im2ColInto(cols, x.Slice(i), g)
		tensor.MatMulT2Into(prod, cols, c.W.Value) // [P, OutC]
		dst := out.Slice(i).Data()                 // [OutC, P] layout
		bias := c.B.Value.Data()
		pd := prod.Data()
		for pos := 0; pos < p; pos++ {
			row := pd[pos*c.OutC:]
			for oc := 0; oc < c.OutC; oc++ {
				dst[oc*p+pos] = row[oc] + bias[oc]
			}
		}
		tensor.PutScratch(prod)
		tensor.PutScratch(cols)
	})
	return out
}

// BackwardT implements Layer. It recomputes im2col from the recorded input
// rather than taping column matrices, trading FLOPs for memory. Under
// FrozenParams the weight/bias gradients — and the im2col they need — are
// skipped entirely: only ∂loss/∂input is produced.
func (c *Conv2D) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	st := tape.pop(c).(convState)
	x := st.in
	n := x.Dim(0)
	g := st.geom
	p := st.outH * st.outW
	if grad.Dim(0) != n || grad.Len() != n*c.OutC*p {
		panic(fmt.Sprintf("nn: %s backward grad shape %v does not match forward output", c.name, grad.Shape()))
	}
	frozen := tape.frozen()
	dx := tensor.New(x.Shape()...)
	ckk := c.InC * c.KH * c.KW

	// Per-sample weight/bias gradients are accumulated into private buffers
	// and reduced at the end so the batch loop can run in parallel without
	// locking.
	var dWs, dBs []*tensor.Tensor
	if !frozen {
		dWs = make([]*tensor.Tensor, n)
		dBs = make([]*tensor.Tensor, n)
	}
	tensor.ParallelFor(n, func(i int) {
		// Reassemble grad slice [OutC, P] into G [P, OutC].
		gi := grad.Slice(i).Data()
		G := tensor.GetScratch(p, c.OutC)
		gd := G.Data()
		for oc := 0; oc < c.OutC; oc++ {
			row := gi[oc*p:]
			for pos := 0; pos < p; pos++ {
				gd[pos*c.OutC+oc] = row[pos]
			}
		}
		if !frozen {
			cols := tensor.GetScratch(p, ckk) // [P, CKK]
			tensor.Im2ColInto(cols, x.Slice(i), g)
			dWs[i] = tensor.MatMulT1(G, cols) // [OutC, CKK]
			db := tensor.New(c.OutC)
			dbd := db.Data()
			for pos := 0; pos < p; pos++ {
				row := gd[pos*c.OutC:]
				for oc := 0; oc < c.OutC; oc++ {
					dbd[oc] += row[oc]
				}
			}
			dBs[i] = db
			tensor.PutScratch(cols)
		}
		dcols := tensor.GetScratch(p, ckk)
		tensor.MatMulInto(dcols, G, c.W.Value) // [P, CKK]
		dx.Slice(i).CopyFrom(tensor.Col2Im(dcols, g))
		tensor.PutScratch(dcols)
		tensor.PutScratch(G)
	})
	if !frozen {
		for i := 0; i < n; i++ {
			c.W.Grad.AddInPlace(dWs[i])
			c.B.Grad.AddInPlace(dBs[i])
		}
	}
	return dx
}

// Backward implements Layer (legacy wrapper over the struct-held tape).
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.tape.Len() == 0 {
		panic("nn: Conv2D.Backward before Forward")
	}
	return c.BackwardT(&c.tape, grad)
}

// MACs returns the multiply-accumulate count of one forward pass over a
// single sample with the given per-sample input shape — the computation
// term of the paper's cutting-point cost model (Figure 6).
func (c *Conv2D) MACs(in []int) int64 {
	g := c.geom(in)
	return int64(g.OutH()) * int64(g.OutW()) * int64(c.OutC) * int64(c.InC*c.KH*c.KW)
}
