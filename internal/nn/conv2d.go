package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// Conv2D is a 2-D convolution layer over [N, C, H, W] inputs, lowered to
// matrix multiplication via im2col. Weights have shape
// [OutC, InC*KH*KW] and biases [OutC].
type Conv2D struct {
	name        string
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	W, B        *Param
	lastIn      *tensor.Tensor // cached input batch for backward
	lastGeom    tensor.ConvGeom
	lastOutH    int
	lastOutW    int
}

// NewConv2D constructs a convolution layer with He-initialized weights.
func NewConv2D(name string, inC, outC, kh, kw, stride, pad int, rng *tensor.RNG) *Conv2D {
	fanIn := inC * kh * kw
	w := tensor.New(outC, fanIn)
	HeInit(w, fanIn, rng)
	b := tensor.New(outC)
	return &Conv2D{
		name: name, InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W: NewParam(name+".W", w), B: NewParam(name+".b", b),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	g := c.geom(in)
	return []int{c.OutC, g.OutH(), g.OutW()}
}

func (c *Conv2D) geom(in []int) tensor.ConvGeom {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: %s expects per-sample shape [%d,H,W], got %v", c.name, c.InC, in))
	}
	g := tensor.ConvGeom{InC: c.InC, InH: in[1], InW: in[2], KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// Forward implements Layer. The batch is processed sample-parallel.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkBatched(c.name, x)
	g := c.geom(x.Shape()[1:])
	c.lastGeom, c.lastOutH, c.lastOutW = g, g.OutH(), g.OutW()
	c.lastIn = x
	return c.compute(x, g)
}

// Infer implements Layer: the same lowering as Forward with no state
// writes, drawing the per-sample column and product matrices from the
// tensor scratch pool so concurrent inference does not scale allocations
// with request rate.
func (c *Conv2D) Infer(x *tensor.Tensor) *tensor.Tensor {
	checkBatched(c.name, x)
	return c.compute(x, c.geom(x.Shape()[1:]))
}

// compute runs the im2col-lowered convolution over a batch. It reads only
// the layer's parameters, never its cached state.
func (c *Conv2D) compute(x *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	out := tensor.New(n, c.OutC, outH, outW)
	p := outH * outW
	ckk := c.InC * c.KH * c.KW
	tensor.ParallelFor(n, func(i int) {
		cols := tensor.GetScratch(p, ckk) // [P, CKK]
		prod := tensor.GetScratch(p, c.OutC)
		tensor.Im2ColInto(cols, x.Slice(i), g)
		tensor.MatMulT2Into(prod, cols, c.W.Value) // [P, OutC]
		dst := out.Slice(i).Data()                 // [OutC, P] layout
		bias := c.B.Value.Data()
		pd := prod.Data()
		for pos := 0; pos < p; pos++ {
			row := pd[pos*c.OutC:]
			for oc := 0; oc < c.OutC; oc++ {
				dst[oc*p+pos] = row[oc] + bias[oc]
			}
		}
		tensor.PutScratch(prod)
		tensor.PutScratch(cols)
	})
	return out
}

// Backward implements Layer. It recomputes im2col from the cached input
// rather than caching column matrices, trading FLOPs for memory.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	x := c.lastIn
	n := x.Dim(0)
	g := c.lastGeom
	p := c.lastOutH * c.lastOutW
	if grad.Dim(0) != n || grad.Len() != n*c.OutC*p {
		panic(fmt.Sprintf("nn: %s backward grad shape %v does not match forward output", c.name, grad.Shape()))
	}
	dx := tensor.New(x.Shape()...)

	// Per-sample weight/bias gradients are accumulated into private buffers
	// and reduced at the end so the batch loop can run in parallel without
	// locking.
	dWs := make([]*tensor.Tensor, n)
	dBs := make([]*tensor.Tensor, n)
	tensor.ParallelFor(n, func(i int) {
		cols := tensor.Im2Col(x.Slice(i), g) // [P, CKK]
		// Reassemble grad slice [OutC, P] into G [P, OutC].
		gi := grad.Slice(i).Data()
		G := tensor.New(p, c.OutC)
		gd := G.Data()
		for oc := 0; oc < c.OutC; oc++ {
			row := gi[oc*p:]
			for pos := 0; pos < p; pos++ {
				gd[pos*c.OutC+oc] = row[pos]
			}
		}
		dWs[i] = tensor.MatMulT1(G, cols)    // [OutC, CKK]
		dcols := tensor.MatMul(G, c.W.Value) // [P, CKK]
		dx.Slice(i).CopyFrom(tensor.Col2Im(dcols, g))
		db := tensor.New(c.OutC)
		dbd := db.Data()
		for pos := 0; pos < p; pos++ {
			row := gd[pos*c.OutC:]
			for oc := 0; oc < c.OutC; oc++ {
				dbd[oc] += row[oc]
			}
		}
		dBs[i] = db
	})
	for i := 0; i < n; i++ {
		c.W.Grad.AddInPlace(dWs[i])
		c.B.Grad.AddInPlace(dBs[i])
	}
	return dx
}

// MACs returns the multiply-accumulate count of one forward pass over a
// single sample with the given per-sample input shape — the computation
// term of the paper's cutting-point cost model (Figure 6).
func (c *Conv2D) MACs(in []int) int64 {
	g := c.geom(in)
	return int64(g.OutH()) * int64(g.OutW()) * int64(c.OutC) * int64(c.InC*c.KH*c.KW)
}
