package nn

import (
	"math"

	"shredder/internal/tensor"
)

// HeInit fills w with He-normal initialization N(0, 2/fanIn), the standard
// choice for ReLU networks.
func HeInit(w *tensor.Tensor, fanIn int, rng *tensor.RNG) {
	sigma := math.Sqrt(2 / float64(fanIn))
	rng.FillNormal(w, 0, sigma)
}

// XavierInit fills w with Xavier/Glorot-uniform initialization
// U(−√(6/(fanIn+fanOut)), +√(6/(fanIn+fanOut))).
func XavierInit(w *tensor.Tensor, fanIn, fanOut int, rng *tensor.RNG) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	rng.FillUniform(w, -limit, limit)
}
