package nn

import (
	"fmt"
	"sync/atomic"
	"time"

	"shredder/internal/tensor"
)

// Sequential is an ordered stack of layers forming a feed-forward network.
// It is the container the model zoo builds and that core.Split cuts into a
// local (edge) and remote (cloud) part.
type Sequential struct {
	name   string
	layers []Layer

	// prof holds the network-level profiler behind an atomic pointer so it
	// can be attached and detached while inference traffic is in flight.
	// nil means disabled; the per-range check is a single load + branch.
	prof atomic.Pointer[profilerBox]
}

// profilerBox wraps the Profiler interface value so the atomic pointer has
// a concrete type to point at.
type profilerBox struct{ p Profiler }

// NewSequential constructs a named sequential network from layers.
func NewSequential(name string, layers ...Layer) *Sequential {
	seen := map[string]bool{}
	for _, l := range layers {
		if seen[l.Name()] {
			panic(fmt.Sprintf("nn: duplicate layer name %q in %q", l.Name(), name))
		}
		seen[l.Name()] = true
	}
	return &Sequential{name: name, layers: layers}
}

// Name returns the network's name.
func (s *Sequential) Name() string { return s.name }

// Layers returns the layer stack. The slice must not be mutated.
func (s *Sequential) Layers() []Layer { return s.layers }

// Len returns the number of layers.
func (s *Sequential) Len() int { return len(s.layers) }

// Layer returns the i-th layer.
func (s *Sequential) Layer(i int) Layer { return s.layers[i] }

// Index returns the position of the named layer, or -1.
func (s *Sequential) Index(name string) int {
	for i, l := range s.layers {
		if l.Name() == name {
			return i
		}
	}
	return -1
}

// SetProfiler installs (or, with nil, removes) a network-level profiler.
// Every subsequent ForwardRangeT/BackwardRangeT pass — including the
// nil-tape inference path — reports per-layer wall time and scratch bytes
// to it. Attaching is safe while other goroutines are mid-pass: they see
// the old value until their next range call. A tape-level profiler
// (Tape.Profiler) overrides the network-level one for that tape's passes.
func (s *Sequential) SetProfiler(p Profiler) {
	if p == nil {
		s.prof.Store(nil)
		return
	}
	s.prof.Store(&profilerBox{p: p})
}

// activeProfiler resolves the profiler for one range call: the tape's, or
// the network's, or nil. Exactly one atomic load on the disabled path.
func (s *Sequential) activeProfiler(tape *Tape) Profiler {
	if p := tape.profiler(); p != nil {
		return p
	}
	if b := s.prof.Load(); b != nil {
		return b.p
	}
	return nil
}

// Params returns all trainable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of scalar parameters.
func (s *Sequential) ParamCount() int { return ParamCount(s.layers) }

// ZeroGrad clears every parameter gradient.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// ForwardT runs the full network on a batch, recording backward state on
// tape. With a nil tape this is the reentrant inference path: any number of
// goroutines may run it concurrently over one shared network.
func (s *Sequential) ForwardT(tape *Tape, x *tensor.Tensor, train bool) *tensor.Tensor {
	return s.ForwardRangeT(tape, x, 0, len(s.layers), train)
}

// ForwardRangeT runs layers [from, to) on a batch, recording backward state
// on tape. It is how split execution runs the local part L (layers
// [0,cut)) and remote part R (layers [cut, len)) — each in-flight pass
// carries its own tape, so one shared network serves many concurrent
// forward (and forward/backward) passes.
func (s *Sequential) ForwardRangeT(tape *Tape, x *tensor.Tensor, from, to int, train bool) *tensor.Tensor {
	if from < 0 || to > len(s.layers) || from > to {
		panic(fmt.Sprintf("nn: ForwardRangeT [%d,%d) out of bounds for %d layers", from, to, len(s.layers)))
	}
	if p := s.activeProfiler(tape); p != nil {
		for _, l := range s.layers[from:to] {
			t0 := time.Now()
			x = l.ForwardT(tape, x, train)
			p.ObserveLayer(l.Name(), false, time.Since(t0), int64(x.Len())*8)
		}
		return x
	}
	for _, l := range s.layers[from:to] {
		x = l.ForwardT(tape, x, train)
	}
	return x
}

// BackwardT propagates the output gradient through the whole network in
// reverse, consuming the tape, and returns the input gradient.
func (s *Sequential) BackwardT(tape *Tape, grad *tensor.Tensor) *tensor.Tensor {
	return s.BackwardRangeT(tape, grad, 0, len(s.layers))
}

// BackwardRangeT propagates the gradient through layers [from, to) in
// reverse, consuming the matching ForwardRangeT's tape entries, and returns
// ∂loss/∂(input of layer from). Shredder's noise training backpropagates
// over the remote part only: the returned gradient with respect to R's
// input *is* ∂loss/∂n, since a' = a + n.
func (s *Sequential) BackwardRangeT(tape *Tape, grad *tensor.Tensor, from, to int) *tensor.Tensor {
	if from < 0 || to > len(s.layers) || from > to {
		panic(fmt.Sprintf("nn: BackwardRangeT [%d,%d) out of bounds for %d layers", from, to, len(s.layers)))
	}
	if p := s.activeProfiler(tape); p != nil {
		for i := to - 1; i >= from; i-- {
			t0 := time.Now()
			grad = s.layers[i].BackwardT(tape, grad)
			p.ObserveLayer(s.layers[i].Name(), true, time.Since(t0), int64(grad.Len())*8)
		}
		return grad
	}
	for i := to - 1; i >= from; i-- {
		grad = s.layers[i].BackwardT(tape, grad)
	}
	return grad
}

// Forward runs the full network on a batch (legacy API over the per-layer
// struct-held tapes; one in-flight pass per network).
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardRange runs layers [from, to) on a batch (legacy API).
func (s *Sequential) ForwardRange(x *tensor.Tensor, from, to int, train bool) *tensor.Tensor {
	if from < 0 || to > len(s.layers) || from > to {
		panic(fmt.Sprintf("nn: ForwardRange [%d,%d) out of bounds for %d layers", from, to, len(s.layers)))
	}
	for _, l := range s.layers[from:to] {
		x = l.Forward(x, train)
	}
	return x
}

// Infer runs the full network in inference mode without recording any
// state: ForwardT with a discarded (nil) tape. Safe for any number of
// goroutines to call concurrently on a shared network.
func (s *Sequential) Infer(x *tensor.Tensor) *tensor.Tensor {
	return s.ForwardRangeT(nil, x, 0, len(s.layers), false)
}

// InferRange runs layers [from, to) in inference mode via the discarded
// tape path. It is how a concurrent split-inference server executes the
// remote part R for many connections in parallel over one shared network.
func (s *Sequential) InferRange(x *tensor.Tensor, from, to int) *tensor.Tensor {
	return s.ForwardRangeT(nil, x, from, to, false)
}

// Backward propagates the output gradient through the whole network and
// returns the input gradient (legacy API).
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// BackwardRange propagates the gradient through layers [from, to) in
// reverse and returns ∂loss/∂(input of layer from) (legacy API).
func (s *Sequential) BackwardRange(grad *tensor.Tensor, from, to int) *tensor.Tensor {
	if from < 0 || to > len(s.layers) || from > to {
		panic(fmt.Sprintf("nn: BackwardRange [%d,%d) out of bounds for %d layers", from, to, len(s.layers)))
	}
	for i := to - 1; i >= from; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// OutShape threads a per-sample input shape through every layer and
// returns the final per-sample output shape.
func (s *Sequential) OutShape(in []int) []int {
	return s.OutShapeAt(in, len(s.layers))
}

// OutShapeAt returns the per-sample shape after the first n layers.
func (s *Sequential) OutShapeAt(in []int, n int) []int {
	shape := append([]int(nil), in...)
	for _, l := range s.layers[:n] {
		shape = l.OutShape(shape)
	}
	return shape
}

// Predict returns the argmax class per sample for a batch of inputs.
func (s *Sequential) Predict(x *tensor.Tensor) []int {
	logits := s.Forward(x, false)
	n := logits.Dim(0)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = logits.Slice(i).Argmax()
	}
	return out
}
