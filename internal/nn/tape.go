package nn

import (
	"fmt"

	"shredder/internal/tensor"
)

// Tape is an explicit per-call execution context for the autograd
// substrate. A forward pass records every intermediate buffer its backward
// pass will need on the tape (a stack: one entry per ForwardT call), and
// BackwardT consumes the entries in reverse order. Because all state lives
// on the tape rather than on the layer structs, any number of
// forward/backward passes may be in flight over one shared network — one
// tape per in-flight pass.
//
// A nil *Tape is the discard mode: ForwardT computes the output without
// recording anything (this is the inference path — what the old per-layer
// Infer methods used to duplicate), and BackwardT through a nil tape
// panics.
type Tape struct {
	// FrozenParams makes BackwardT skip parameter-gradient computation
	// entirely: only ∂loss/∂input flows. Shredder never updates the network
	// weights, so its noise training and the inversion attack both run with
	// frozen parameters, saving the dW/db GEMMs and making backward passes
	// free of writes to shared layer state (BatchNorm2D also skips its
	// running-statistics update under FrozenParams).
	FrozenParams bool
	// RNG, when non-nil, supplies the tape's private randomness (dropout
	// masks). Concurrent training runs give each tape its own seeded RNG so
	// their random streams are independent and reproducible. When nil,
	// layers fall back to their construction-time RNG (the legacy
	// behaviour, which is not reentrant).
	RNG *tensor.RNG

	// Profiler, when non-nil, receives per-layer timing for every pass run
	// through this tape. It takes precedence over any network-level profiler
	// installed with Sequential.SetProfiler, so one training run can be
	// profiled in isolation while a shared network serves other traffic.
	Profiler Profiler

	entries []tapeEntry
}

// tapeEntry is one recorded forward step: the layer that pushed it and the
// state its backward pass needs.
type tapeEntry struct {
	layer Layer
	state any
}

// NewTape returns an empty recording tape.
func NewTape() *Tape { return &Tape{} }

// NewFrozenTape returns an empty tape in FrozenParams mode — the context
// for training through a frozen network (noise training, inversion
// attacks).
func NewFrozenTape() *Tape { return &Tape{FrozenParams: true} }

// Reset truncates the tape for reuse, keeping its configuration and
// storage. Call it between iterations when reusing one tape in a loop.
func (t *Tape) Reset() {
	if t == nil {
		return
	}
	for i := range t.entries {
		t.entries[i] = tapeEntry{} // drop references so buffers can be collected
	}
	t.entries = t.entries[:0]
}

// Len returns the number of recorded forward steps not yet consumed.
func (t *Tape) Len() int {
	if t == nil {
		return 0
	}
	return len(t.entries)
}

// push records one forward step. A nil tape discards the state.
func (t *Tape) push(l Layer, state any) {
	if t == nil {
		return
	}
	t.entries = append(t.entries, tapeEntry{layer: l, state: state})
}

// pop consumes the most recent forward step, which must belong to l:
// backward passes must unwind the tape in exact reverse forward order.
func (t *Tape) pop(l Layer) any {
	if t == nil {
		panic(fmt.Sprintf("nn: %s.BackwardT through a discarded (nil) tape", l.Name()))
	}
	if len(t.entries) == 0 {
		panic(fmt.Sprintf("nn: %s.BackwardT without a matching ForwardT on this tape", l.Name()))
	}
	e := t.entries[len(t.entries)-1]
	if e.layer != l {
		panic(fmt.Sprintf("nn: %s.BackwardT out of order: tape top belongs to %s", l.Name(), e.layer.Name()))
	}
	t.entries[len(t.entries)-1] = tapeEntry{}
	t.entries = t.entries[:len(t.entries)-1]
	return e.state
}

// frozen reports whether parameter gradients should be skipped.
func (t *Tape) frozen() bool { return t != nil && t.FrozenParams }

// profiler returns the tape's profiler, nil-tape safe.
func (t *Tape) profiler() Profiler {
	if t == nil {
		return nil
	}
	return t.Profiler
}

// rng returns the tape's RNG, or fallback when the tape carries none.
func (t *Tape) rng(fallback *tensor.RNG) *tensor.RNG {
	if t != nil && t.RNG != nil {
		return t.RNG
	}
	return fallback
}
