package tensor

import (
	"sync"
	"testing"
)

func TestGetScratchDenseShapeAndDtype(t *testing.T) {
	d32 := GetScratchDense[float32](3, 5)
	if !ShapeEq(d32.Shape(), []int{3, 5}) || d32.Len() != 15 {
		t.Fatalf("float32 scratch shape %v len %d", d32.Shape(), d32.Len())
	}
	for i := range d32.Data() {
		d32.Data()[i] = float32(i)
	}
	PutScratchDense(d32)

	d64 := GetScratchDense[float64](4, 4)
	if !ShapeEq(d64.Shape(), []int{4, 4}) {
		t.Fatalf("float64 scratch shape %v", d64.Shape())
	}
	PutScratchDense(d64)

	// A pooled float64 buffer must be reusable through the legacy API too:
	// both route to the same pool.
	tt := GetScratch(2, 2)
	if tt.Len() != 4 {
		t.Fatalf("legacy scratch len %d", tt.Len())
	}
	PutScratch(tt)
}

// TestScratchDenseConcurrentDtypes hammers both dtype pools from concurrent
// goroutines, each writing a goroutine-unique marker pattern and verifying
// it before returning the buffer. Run under -race this catches any
// cross-dtype aliasing or double-handout in the pool keying.
func TestScratchDenseConcurrentDtypes(t *testing.T) {
	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if id%2 == 0 {
					d := GetScratchDense[float32](7, 11)
					mark := float32(id*1000 + r)
					for i := range d.Data() {
						d.Data()[i] = mark
					}
					for i, v := range d.Data() {
						if v != mark {
							t.Errorf("float32 scratch corrupted at %d: got %v want %v", i, v, mark)
							return
						}
					}
					PutScratchDense(d)
				} else {
					d := GetScratchDense[float64](5, 13)
					mark := float64(id*1000 + r)
					for i := range d.Data() {
						d.Data()[i] = mark
					}
					for i, v := range d.Data() {
						if v != mark {
							t.Errorf("float64 scratch corrupted at %d: got %v want %v", i, v, mark)
							return
						}
					}
					PutScratchDense(d)
				}
			}
		}(g)
	}
	wg.Wait()
}
