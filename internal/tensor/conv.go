package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window:
// input channels/height/width, kernel size, stride and zero padding.
type ConvGeom struct {
	InC, InH, InW int
	KH, KW        int
	Stride        int
	Pad           int
}

// OutH returns the output height of the window sweep.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the window sweep.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate reports an error if the geometry does not produce a positive
// output plane.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	}
	if g.KH <= 0 || g.KW <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("tensor: conv geometry has invalid kernel/stride/pad %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry %+v yields empty output %dx%d", g, g.OutH(), g.OutW())
	}
	return nil
}

// Im2Col lowers a single image of shape [C,H,W] (flat, row-major) into a
// matrix of shape [OutH*OutW, C*KH*KW] where each row is the unrolled
// receptive field of one output position. Convolution then becomes
// cols · Wᵀ, which is how the nn package implements Conv2D.
func Im2Col(img *Tensor, g ConvGeom) *Tensor {
	cols := New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	Im2ColInto(cols, img, g)
	return cols
}

// Im2ColInto is Im2Col writing into a caller-provided column matrix of
// shape [OutH*OutW, C*KH*KW]. Every element of cols is overwritten, so a
// non-zeroed scratch buffer (GetScratch) is a valid destination.
func Im2ColInto(cols, img *Tensor, g ConvGeom) {
	if img.Len() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input has %d elems, geometry wants %d", img.Len(), g.InC*g.InH*g.InW))
	}
	outH, outW := g.OutH(), g.OutW()
	if cols.Len() != outH*outW*g.InC*g.KH*g.KW {
		panic(fmt.Sprintf("tensor: Im2ColInto destination has %d elems, geometry wants %d",
			cols.Len(), outH*outW*g.InC*g.KH*g.KW))
	}
	im2colKernel(cols.data, img.data, g)
}

// Col2Im scatters a column matrix (as produced by Im2Col) back into an
// image of shape [C,H,W], accumulating overlapping contributions. It is the
// adjoint of Im2Col and implements the input-gradient pass of convolution.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if cols.Len() != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Col2Im input has %d elems, geometry wants %d", cols.Len(), outH*outW*rowLen))
	}
	img := New(g.InC, g.InH, g.InW)
	col2imKernel(img.data, cols.data, g)
	return img
}
