package tensor

import (
	"math"
	"testing"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	if tt.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", tt.Rank())
	}
	if !ShapeEq(tt.Shape(), []int{2, 3, 4}) {
		t.Fatalf("Shape = %v", tt.Shape())
	}
	for _, v := range tt.Data() {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromChecksVolume(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	From([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4)
	tt.Set(7.5, 2, 1)
	if got := tt.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	// row-major: offset = 2*4 + 1 = 9
	if tt.Data()[9] != 7.5 {
		t.Fatalf("flat layout wrong: %v", tt.Data())
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tt.At(2, 0)
}

func TestReshapeSharesStorage(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeInfer(t *testing.T) {
	a := New(4, 6)
	b := a.Reshape(2, -1)
	if !ShapeEq(b.Shape(), []int{2, 12}) {
		t.Fatalf("inferred shape = %v, want [2 12]", b.Shape())
	}
}

func TestReshapeBadVolumePanics(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	a.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := From([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data()[0] = 100
	if a.Data()[0] != 1 {
		t.Fatal("Clone must be deep")
	}
}

func TestSliceAndRow(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := a.Slice(1)
	if !ShapeEq(s.Shape(), []int{3}) || s.At(0) != 4 {
		t.Fatalf("Slice(1) = %v", s)
	}
	r := a.Row(0)
	if r.At(2) != 3 {
		t.Fatalf("Row(0) = %v", r)
	}
	// shared storage
	s.Set(40, 0)
	if a.At(1, 0) != 40 {
		t.Fatal("Slice must share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := From([]float64{1, 2, 3}, 3)
	b := From([]float64{4, 5, 6}, 3)
	if got := Add(a, b); !Equal(got, From([]float64{5, 7, 9}, 3)) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, From([]float64{3, 3, 3}, 3)) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !Equal(got, From([]float64{4, 10, 18}, 3)) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := From([]float64{1, 2, 3}, 3)
	a.AddInPlace(From([]float64{1, 1, 1}, 3))
	a.Scale(2)
	a.Shift(-1)
	want := From([]float64{3, 5, 7}, 3)
	if !Equal(a, want) {
		t.Fatalf("chained in-place ops = %v, want %v", a, want)
	}
	a.AddScaled(10, From([]float64{1, 0, 1}, 3))
	if !Equal(a, From([]float64{13, 5, 17}, 3)) {
		t.Fatalf("AddScaled = %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Add(New(2), New(3))
}

func TestReductions(t *testing.T) {
	a := From([]float64{-1, 2, -3, 4}, 4)
	if a.Sum() != 2 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.AbsSum() != 10 {
		t.Fatalf("AbsSum = %v", a.AbsSum())
	}
	if a.SqSum() != 30 {
		t.Fatalf("SqSum = %v", a.SqSum())
	}
	if a.Mean() != 0.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 4 || a.Min() != -3 {
		t.Fatalf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if a.Argmax() != 3 {
		t.Fatalf("Argmax = %d", a.Argmax())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestVarianceStd(t *testing.T) {
	a := From([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	if math.Abs(a.Variance()-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", a.Variance())
	}
	if math.Abs(a.Std()-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", a.Std())
	}
}

func TestSignClampFinite(t *testing.T) {
	a := From([]float64{-2, 0, 3}, 3)
	a.Clone().Sign()
	s := a.Clone().Sign()
	if !Equal(s, From([]float64{-1, 0, 1}, 3)) {
		t.Fatalf("Sign = %v", s)
	}
	c := a.Clone().Clamp(-1, 1)
	if !Equal(c, From([]float64{-1, 0, 1}, 3)) {
		t.Fatalf("Clamp = %v", c)
	}
	if !a.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	a.Data()[0] = math.NaN()
	if a.AllFinite() {
		t.Fatal("NaN not detected")
	}
	a.Data()[0] = math.Inf(1)
	if a.AllFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestApplyAndMap(t *testing.T) {
	a := From([]float64{1, 4, 9}, 3)
	b := Map(a, math.Sqrt)
	if !AllClose(b, From([]float64{1, 2, 3}, 3), 1e-12) {
		t.Fatalf("Map sqrt = %v", b)
	}
	a.Apply(func(x float64) float64 { return -x })
	if !Equal(a, From([]float64{-1, -4, -9}, 3)) {
		t.Fatalf("Apply = %v", a)
	}
}

func TestAllCloseTolerance(t *testing.T) {
	a := From([]float64{1, 2}, 2)
	b := From([]float64{1.0005, 2}, 2)
	if !AllClose(a, b, 1e-3) {
		t.Fatal("AllClose should accept within tolerance")
	}
	if AllClose(a, b, 1e-6) {
		t.Fatal("AllClose should reject beyond tolerance")
	}
	if AllClose(a, New(3), 1) {
		t.Fatal("AllClose should reject different shapes")
	}
}
