package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of output elements below which MatMul
// runs single-threaded; spawning goroutines for tiny products costs more
// than it saves.
const parallelThreshold = 16 * 1024

// MatMul returns the matrix product a·b for rank-2 tensors of shapes
// [m,k] and [k,n]. The inner loops are ordered i-k-j so the hot loop
// streams both b and the output row, and rows of the result are computed
// in parallel across GOMAXPROCS workers for large products.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulInto computes a·b into dst, which must have shape [m,n]. It avoids
// allocating in inner training loops.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst %v = %v x %v", dst.shape, a.shape, b.shape))
	}
	matmulInto(dst.data, a.data, b.data, m, k, n)
}

func matmulInto(dst, a, b []float64, m, k, n int) {
	matmulKernel(dst, a, b, m, k, n)
}

// MatMulT1 returns aᵀ·b for a of shape [k,m] and b of shape [k,n]: the
// gradient-of-weights product in linear/conv backward passes.
func MatMulT1(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT1 requires rank-2 tensors")
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulT1 dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	matmulT1Kernel(out.data, a.data, b.data, k, m, n)
	return out
}

// MatMulT2 returns a·bᵀ for a of shape [m,k] and b of shape [n,k]: the
// gradient-of-input product in linear/conv backward passes.
func MatMulT2(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT2 requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulT2 dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulT2Kernel(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulT2Into computes a·bᵀ into dst (shape [m,n] for a [m,k], b [n,k]).
// Every element of dst is overwritten, so a non-zeroed scratch buffer is a
// valid destination. It is the allocation-free variant the reentrant
// inference path uses.
func MatMulT2Into(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT2Into shape mismatch dst %v = %v x %vᵀ", dst.shape, a.shape, b.shape))
	}
	matmulT2Kernel(dst.data, a.data, b.data, m, k, n)
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// parallelRows invokes fn(i) for i in [0,m) across GOMAXPROCS workers.
func parallelRows(m int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelFor runs fn over [0,n) in parallel chunks. Exported for use by
// layer implementations that parallelize across a batch.
func ParallelFor(n int, fn func(i int)) {
	if n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	parallelRows(n, fn)
}
