package tensor

import (
	"fmt"
	"math"
)

// checkSame panics unless a and b share a shape.
func checkSame(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// AddInPlace accumulates b into t.
func (t *Tensor) AddInPlace(b *Tensor) *Tensor {
	checkSame("AddInPlace", t, b)
	for i := range t.data {
		t.data[i] += b.data[i]
	}
	return t
}

// SubInPlace subtracts b from t in place.
func (t *Tensor) SubInPlace(b *Tensor) *Tensor {
	checkSame("SubInPlace", t, b)
	for i := range t.data {
		t.data[i] -= b.data[i]
	}
	return t
}

// MulInPlace multiplies t by b elementwise in place.
func (t *Tensor) MulInPlace(b *Tensor) *Tensor {
	checkSame("MulInPlace", t, b)
	for i := range t.data {
		t.data[i] *= b.data[i]
	}
	return t
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// Shift adds s to every element in place.
func (t *Tensor) Shift(s float64) *Tensor {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// AddScaled accumulates s*b into t in place (axpy).
func (t *Tensor) AddScaled(s float64, b *Tensor) *Tensor {
	checkSame("AddScaled", t, b)
	for i := range t.data {
		t.data[i] += s * b.data[i]
	}
	return t
}

// Apply replaces every element x with f(x) in place.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// Map returns a new tensor with f applied to every element.
func Map(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// AbsSum returns the L1 norm Σ|xᵢ| — the quantity Shredder's loss term
// maximizes to grow the noise magnitude.
func (t *Tensor) AbsSum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += math.Abs(v)
	}
	return s
}

// SqSum returns the sum of squares Σxᵢ².
func (t *Tensor) SqSum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return s
}

// Mean returns the arithmetic mean of the elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Variance returns the population variance of the elements.
func (t *Tensor) Variance() float64 {
	n := len(t.data)
	if n == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// Std returns the population standard deviation.
func (t *Tensor) Std() float64 { return math.Sqrt(t.Variance()) }

// Max returns the maximum element. Panics on empty tensors.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. Panics on empty tensors.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	if len(t.data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Dot returns the inner product of two same-shape tensors.
func Dot(a, b *Tensor) float64 {
	checkSame("Dot", a, b)
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// Sign replaces each element with its sign (-1, 0, +1) in place.
func (t *Tensor) Sign() *Tensor {
	for i, v := range t.data {
		switch {
		case v > 0:
			t.data[i] = 1
		case v < 0:
			t.data[i] = -1
		default:
			t.data[i] = 0
		}
	}
	return t
}

// Clamp limits each element to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float64) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// AllFinite reports whether every element is finite (no NaN/Inf) — used by
// trainers as a divergence guard.
func (t *Tensor) AllFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MaxAbs returns max |xᵢ| (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether a and b have the same shape and identical elements.
func Equal(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether a and b have the same shape and elements within
// absolute tolerance tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
