package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the sampling primitives the Shredder pipeline
// needs, most importantly the Laplace distribution used to initialize noise
// tensors (paper §2.4). All randomness in the repository flows through
// explicitly seeded RNGs so experiments are reproducible.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0,n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative 63-bit integer, used to derive child seeds.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Uniform returns a sample from U[lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a sample from N(mu, sigma²).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.src.NormFloat64()
}

// Laplace returns a sample from the Laplace distribution with location mu
// and scale b, via inverse-CDF sampling: X = mu − b·sgn(u)·ln(1−2|u|) for
// u ∈ (−½, ½).
func (r *RNG) Laplace(mu, b float64) float64 {
	u := r.src.Float64() - 0.5
	if u >= 0 {
		return mu - b*math.Log(1-2*u)
	}
	return mu + b*math.Log(1+2*u)
}

// FillUniform fills t with U[lo,hi) samples and returns it.
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = r.Uniform(lo, hi)
	}
	return t
}

// FillNormal fills t with N(mu, sigma²) samples and returns it.
func (r *RNG) FillNormal(t *Tensor, mu, sigma float64) *Tensor {
	for i := range t.data {
		t.data[i] = r.Normal(mu, sigma)
	}
	return t
}

// FillLaplace fills t with Laplace(mu, b) samples and returns it. This is
// how Shredder initializes a noise tensor before training.
func (r *RNG) FillLaplace(t *Tensor, mu, b float64) *Tensor {
	for i := range t.data {
		t.data[i] = r.Laplace(mu, b)
	}
	return t
}

// Shuffle permutes n items using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
