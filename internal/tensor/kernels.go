package tensor

// This file is the dtype-parameterized kernel layer: every hot numeric loop
// in the package — matrix multiplication in its three transposition
// variants, im2col/col2im convolution lowering, and the elementwise
// epilogues — is written once, generically over the element type F. The
// exported float64 Tensor API (MatMul*, Im2Col*, Col2Im) delegates to these
// kernels, and the nn compile pipeline instantiates them at float32 for the
// inference-only reduced-precision path.
//
// float32 and float64 have distinct gcshapes, so the compiler stencils a
// separate, fully specialized instantiation per dtype: the inner loops
// compile to the same scalar FP code a hand-written concrete version would,
// and the float32 instantiation moves half the bytes per element through
// the cache hierarchy.

// Float is the element-type constraint of the kernel layer.
type Float interface {
	~float32 | ~float64
}

// matmulKernel computes dst = a·b for row-major a [m,k], b [k,n],
// dst [m,n]. Every element of dst is overwritten. The loop order is i-k-j
// so the hot loop streams both b and the output row; rows are computed in
// parallel for large products.
func matmulKernel[F Float](dst, a, b []F, m, k, n int) {
	rowFn := func(i int) {
		out := dst[i*n : (i+1)*n]
		for j := range out {
			out[j] = 0
		}
		ar := a[i*k : (i+1)*k]
		for p, av := range ar {
			if av == 0 {
				continue
			}
			br := b[p*n : (p+1)*n]
			for j, bv := range br {
				out[j] += av * bv
			}
		}
	}
	if m*n < parallelThreshold || m < 2 {
		for i := 0; i < m; i++ {
			rowFn(i)
		}
		return
	}
	parallelRows(m, rowFn)
}

// matmulT1Kernel computes dst += aᵀ·b for a [k,m], b [k,n], dst [m,n].
// dst must be zeroed by the caller (the float64 wrapper allocates it
// zero-filled; kernels accumulate so gradient callers can reuse buffers).
func matmulT1Kernel[F Float](dst, a, b []F, k, m, n int) {
	rowFn := func(i int) {
		o := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			br := b[p*n : (p+1)*n]
			for j, bv := range br {
				o[j] += av * bv
			}
		}
	}
	if m*n < parallelThreshold || m < 2 {
		for i := 0; i < m; i++ {
			rowFn(i)
		}
		return
	}
	parallelRows(m, rowFn)
}

// matmulT2Kernel computes dst = a·bᵀ for a [m,k], b [n,k], dst [m,n].
// Every element of dst is overwritten, so non-zeroed scratch is a valid
// destination. This is the kernel behind both the linear layer and the
// im2col-lowered convolution (cols · Wᵀ).
func matmulT2Kernel[F Float](dst, a, b []F, m, k, n int) {
	rowFn := func(i int) {
		ar := a[i*k : (i+1)*k]
		o := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var s F
			for p, av := range ar {
				s += av * br[p]
			}
			o[j] = s
		}
	}
	if m*n < parallelThreshold || m < 2 {
		for i := 0; i < m; i++ {
			rowFn(i)
		}
		return
	}
	parallelRows(m, rowFn)
}

// matmulT2BlockedKernel computes dst = a·bᵀ like matmulT2Kernel, but
// register-blocked four columns wide: each pass over a row of a feeds four
// independent accumulators, quartering the loads of a and breaking the
// serial dependence of a single running sum. That reorders the floating-
// point accumulation relative to matmulT2Kernel, so results differ by
// rounding — which is why only the compiled inference path (gated by
// tolerance tests) uses it, while training and the stock float64 API keep
// the legacy kernel and its bitwise-reproducible summation order.
func matmulT2BlockedKernel[F Float](dst, a, b []F, m, k, n int) {
	rowFn := func(i int) {
		ar := a[i*k : (i+1)*k]
		o := dst[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 F
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			o[j], o[j+1], o[j+2], o[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var s F
			for p, av := range ar {
				s += av * br[p]
			}
			o[j] = s
		}
	}
	if m*n < parallelThreshold || m < 2 {
		for i := 0; i < m; i++ {
			rowFn(i)
		}
		return
	}
	parallelRows(m, rowFn)
}

// im2colKernel lowers one image of shape [C,H,W] (flat, row-major) into a
// column matrix [OutH*OutW, C*KH*KW]: each row is the unrolled receptive
// field of one output position, with zero padding materialized. Every
// element of dst is overwritten.
func im2colKernel[F Float](dst, src []F, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			row := dst[(oy*outW+ox)*rowLen:]
			p := 0
			for c := 0; c < g.InC; c++ {
				plane := src[c*g.InH*g.InW:]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						for kx := 0; kx < g.KW; kx++ {
							row[p] = 0
							p++
						}
						continue
					}
					base := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= g.InW {
							row[p] = 0
						} else {
							row[p] = plane[base+ix]
						}
						p++
					}
				}
			}
		}
	}
}

// col2imKernel scatters a column matrix (as produced by im2colKernel) back
// into an image [C,H,W], accumulating overlapping contributions into dst,
// which must be zeroed by the caller. It is the adjoint of im2colKernel.
func col2imKernel[F Float](dst, src []F, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			row := src[(oy*outW+ox)*rowLen:]
			p := 0
			for c := 0; c < g.InC; c++ {
				plane := dst[c*g.InH*g.InW:]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						p += g.KW
						continue
					}
					base := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix >= 0 && ix < g.InW {
							plane[base+ix] += row[p]
						}
						p++
					}
				}
			}
		}
	}
}

// reluKernel writes max(0, src) into dst elementwise. dst and src may be
// the same slice.
func reluKernel[F Float](dst, src []F) {
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// addBiasRowsKernel adds the bias vector b [n] to every row of the
// row-major matrix x [m,n] in place.
func addBiasRowsKernel[F Float](x, b []F, m, n int) {
	for i := 0; i < m; i++ {
		row := x[i*n:]
		for j := 0; j < n; j++ {
			row[j] += b[j]
		}
	}
}

// MatMulDense computes dst = a·b over dtype-tagged buffers; shapes are
// validated like MatMulInto.
func MatMulDense[F Float](dst, a, b *Dense[F]) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panicShape("MatMulDense", dst.shape, a.shape, b.shape)
	}
	matmulKernel(dst.data, a.data, b.data, m, k, n)
}

// MatMulT2Dense computes dst = a·bᵀ over dtype-tagged buffers — the
// allocation-free product the compiled inference path uses for both linear
// layers and im2col-lowered convolution.
func MatMulT2Dense[F Float](dst, a, b *Dense[F]) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || dst.shape[0] != m || dst.shape[1] != n {
		panicShape("MatMulT2Dense", dst.shape, a.shape, b.shape)
	}
	matmulT2Kernel(dst.data, a.data, b.data, m, k, n)
}

// MatMulT2BlockedDense computes dst = a·bᵀ with the register-blocked
// kernel. Same shapes as MatMulT2Dense; the accumulation order differs by
// rounding (see matmulT2BlockedKernel), so it is reserved for the compiled
// inference path.
func MatMulT2BlockedDense[F Float](dst, a, b *Dense[F]) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || dst.shape[0] != m || dst.shape[1] != n {
		panicShape("MatMulT2BlockedDense", dst.shape, a.shape, b.shape)
	}
	matmulT2BlockedKernel(dst.data, a.data, b.data, m, k, n)
}

// Im2ColDense lowers an image [C,H,W] into a column matrix
// [OutH*OutW, C*KH*KW] over dtype-tagged buffers. Every element of cols is
// overwritten, so non-zeroed scratch is a valid destination.
func Im2ColDense[F Float](cols, img *Dense[F], g ConvGeom) {
	if len(img.data) != g.InC*g.InH*g.InW {
		panicShape("Im2ColDense", img.shape)
	}
	if len(cols.data) != g.OutH()*g.OutW()*g.InC*g.KH*g.KW {
		panicShape("Im2ColDense", cols.shape)
	}
	im2colKernel(cols.data, img.data, g)
}

// ReLUDense writes max(0, src) into dst elementwise; dst and src may alias.
func ReLUDense[F Float](dst, src *Dense[F]) {
	if len(dst.data) != len(src.data) {
		panicShape("ReLUDense", dst.shape, src.shape)
	}
	reluKernel(dst.data, src.data)
}
