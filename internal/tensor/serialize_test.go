package tensor

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := NewRNG(21)
	orig := rng.FillNormal(New(3, 4, 5), 0, 1)
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !Equal(orig, got) {
		t.Fatal("round trip changed tensor")
	}
	if !ShapeEq(got.Shape(), []int{3, 4, 5}) {
		t.Fatalf("round trip shape = %v", got.Shape())
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("Decode of garbage should fail")
	}
}

func TestGobEmbedding(t *testing.T) {
	type msg struct {
		Name string
		Act  *Tensor
	}
	rng := NewRNG(22)
	in := msg{Name: "activation", Act: rng.FillLaplace(New(2, 6), 0, 0.5)}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out msg
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	if out.Name != "activation" || !Equal(in.Act, out.Act) {
		t.Fatal("gob embedding round trip failed")
	}
}
