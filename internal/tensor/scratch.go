package tensor

import "sync"

// scratchPool recycles the flat float64 storage of short-lived tensors used
// by inference hot paths (im2col column matrices, matmul products). Buffers
// are handed out by GetScratch and returned by PutScratch; pooling them keeps
// the per-request allocation volume of a concurrent inference server flat
// instead of scaling with request rate.
var scratchPool = sync.Pool{
	New: func() any { return []float64(nil) },
}

// GetScratch returns a tensor of the given shape backed by pooled storage.
// The contents are NOT zeroed: callers must fully overwrite every element
// (Im2ColInto and the MatMul*Into family do). Return the tensor with
// PutScratch when done; do not retain references to it afterwards.
func GetScratch(shape ...int) *Tensor {
	n := Volume(shape)
	buf := scratchPool.Get().([]float64)
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: buf[:n]}
}

// PutScratch returns a tensor obtained from GetScratch to the pool. The
// tensor must not be used after this call.
func PutScratch(t *Tensor) {
	if t == nil {
		return
	}
	//lint:ignore SA6002 the slice header is what we pool; the allocation is amortized
	scratchPool.Put(t.data[:0])
}
