package tensor

import "sync"

// The scratch pools recycle the flat storage of short-lived tensors used by
// inference hot paths (im2col column matrices, matmul products). Buffers
// are handed out by GetScratch/GetScratchDense and returned by the matching
// Put; pooling them keeps the per-request allocation volume of a concurrent
// inference server flat instead of scaling with request rate.
//
// The pools are keyed by dtype: float64 and float32 storage live in
// separate sync.Pools, so a buffer handed to the compiled float32 path can
// never alias — or evict — float64 scratch mid-inference, and vice versa.
// (The Go type system enforces the no-aliasing half: a []float32 cannot be
// type-asserted out of the float64 pool. Keeping the pools separate also
// prevents the subtler failure where one dtype's traffic drains the other's
// warm buffers.)
var (
	scratchPool64 = sync.Pool{New: func() any { return []float64(nil) }}
	scratchPool32 = sync.Pool{New: func() any { return []float32(nil) }}
)

// GetScratch returns a float64 tensor of the given shape backed by pooled
// storage. The contents are NOT zeroed: callers must fully overwrite every
// element (Im2ColInto and the MatMul*Into family do). Return the tensor
// with PutScratch when done; do not retain references to it afterwards.
func GetScratch(shape ...int) *Tensor {
	n := Volume(shape)
	buf := scratchPool64.Get().([]float64)
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: buf[:n]}
}

// PutScratch returns a tensor obtained from GetScratch to the float64
// pool. The tensor must not be used after this call.
func PutScratch(t *Tensor) {
	if t == nil {
		return
	}
	//lint:ignore SA6002 the slice header is what we pool; the allocation is amortized
	scratchPool64.Put(t.data[:0])
}

// GetScratchDense returns a dtype-tagged buffer of the given shape backed
// by the pool of its element type. Like GetScratch, the contents are NOT
// zeroed; callers must fully overwrite every element. Return it with
// PutScratchDense.
func GetScratchDense[F Float](shape ...int) *Dense[F] {
	n := Volume(shape)
	var zero F
	var buf []F
	// Defined types over ~float32/~float64 miss the pool type assertions and
	// simply allocate; the plain float32/float64 instantiations the compiled
	// path uses always hit their pool.
	switch any(zero).(type) {
	case float32:
		if b, ok := any(scratchPool32.Get()).([]F); ok {
			buf = b
		}
	case float64:
		if b, ok := any(scratchPool64.Get()).([]F); ok {
			buf = b
		}
	}
	if cap(buf) < n {
		buf = make([]F, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense[F]{shape: s, data: buf[:n]}
}

// PutScratchDense returns a buffer obtained from GetScratchDense to its
// dtype's pool. The buffer must not be used after this call.
func PutScratchDense[F Float](d *Dense[F]) {
	if d == nil {
		return
	}
	switch buf := any(d.data[:0]).(type) {
	case []float32:
		//lint:ignore SA6002 the slice header is what we pool; the allocation is amortized
		scratchPool32.Put(buf)
	case []float64:
		//lint:ignore SA6002 the slice header is what we pool; the allocation is amortized
		scratchPool64.Put(buf)
	}
}
