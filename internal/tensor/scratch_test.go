package tensor

import (
	"sync"
	"testing"
)

func TestGetScratchShapeAndReuse(t *testing.T) {
	a := GetScratch(4, 5)
	if !ShapeEq(a.Shape(), []int{4, 5}) || a.Len() != 20 {
		t.Fatalf("scratch shape %v len %d", a.Shape(), a.Len())
	}
	for i := range a.Data() {
		a.Data()[i] = float64(i)
	}
	PutScratch(a)
	// A smaller request may reuse the pooled buffer; contents are
	// unspecified, but shape and length must be exact.
	b := GetScratch(3, 3)
	if !ShapeEq(b.Shape(), []int{3, 3}) || b.Len() != 9 {
		t.Fatalf("scratch shape %v len %d", b.Shape(), b.Len())
	}
	PutScratch(b)
	PutScratch(nil) // must not panic
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	rng := NewRNG(3)
	img := rng.FillNormal(New(2, 5, 5), 0, 1)
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	want := Im2Col(img, g)
	dst := GetScratch(g.OutH()*g.OutW(), 2*3*3)
	dst.Fill(99) // dirty buffer: Im2ColInto must overwrite everything
	Im2ColInto(dst, img, g)
	if !AllClose(dst, want, 0) {
		t.Fatal("Im2ColInto diverges from Im2Col")
	}
	PutScratch(dst)
}

func TestMatMulT2IntoMatchesMatMulT2(t *testing.T) {
	rng := NewRNG(4)
	a := rng.FillNormal(New(7, 11), 0, 1)
	b := rng.FillNormal(New(5, 11), 0, 1)
	want := MatMulT2(a, b)
	dst := GetScratch(7, 5)
	dst.Fill(-3)
	MatMulT2Into(dst, a, b)
	if !AllClose(dst, want, 0) {
		t.Fatal("MatMulT2Into diverges from MatMulT2")
	}
	PutScratch(dst)
}

// TestScratchConcurrent hammers the pool from many goroutines; -race
// verifies two goroutines never share one live buffer.
func TestScratchConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := GetScratch(16, 16)
				d := s.Data()
				for j := range d {
					d[j] = float64(w)
				}
				for j := range d {
					if d[j] != float64(w) {
						t.Errorf("scratch buffer shared across goroutines")
						break
					}
				}
				PutScratch(s)
			}
		}(w)
	}
	wg.Wait()
}
