// Package tensor implements the dense numeric arrays that every other part
// of the Shredder reproduction is built on: contiguous row-major float64
// tensors with elementwise arithmetic, parallel matrix multiplication,
// im2col/col2im convolution lowering, reductions, random initialization
// (including the Laplace distribution Shredder uses for noise tensors), and
// gob serialization for model checkpoints.
//
// The package is deliberately minimal: shapes are explicit []int, data is a
// flat []float64 in row-major order, and there are no lazy views or
// broadcasting rules beyond what the nn package needs. Operations that can
// fail on shape mismatch panic, because a shape mismatch inside a training
// loop is always a programming error, never a runtime condition to recover
// from.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, contiguous, row-major n-dimensional array of float64.
// The zero value is an empty tensor; use New or From to construct one.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. New() with no
// arguments returns a scalar-shaped tensor of one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// From wraps an existing slice as a tensor with the given shape. The slice
// is used directly (not copied); its length must equal the shape's volume.
func From(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Scalar returns a 1-element tensor holding v.
func Scalar(v float64) *Tensor {
	return From([]float64{v}, 1)
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying flat storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape of equal
// volume. A single -1 dimension is inferred from the rest.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := make([]int, len(shape))
	copy(s, shape)
	infer := -1
	n := 1
	for i, d := range s {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		s[infer] = len(t.data) / n
		n *= s[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: s, data: t.data}
}

// Flatten returns a rank-1 view of t sharing its storage.
func (t *Tensor) Flatten() *Tensor {
	return &Tensor{shape: []int{len(t.data)}, data: t.data}
}

// index converts multi-indices to a flat offset.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", ix, i, t.shape[i]))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx...)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx...)] = v }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Zero sets every element to 0.
func (t *Tensor) Zero() *Tensor { return t.Fill(0) }

// CopyFrom copies o's data into t. Shapes must match in volume.
func (t *Tensor) CopyFrom(o *Tensor) *Tensor {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: CopyFrom volume mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
	return t
}

// Row returns row i of a rank-2 tensor as a shared-storage rank-1 tensor.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	w := t.shape[1]
	return &Tensor{shape: []int{w}, data: t.data[i*w : (i+1)*w]}
}

// Slice returns the i-th sub-tensor along the first axis, sharing storage.
// For a tensor of shape [N, ...rest] it returns shape [...rest].
func (t *Tensor) Slice(i int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Slice on rank-0 tensor")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: Slice index %d out of range (size %d)", i, t.shape[0]))
	}
	sub := 1
	for _, d := range t.shape[1:] {
		sub *= d
	}
	s := make([]int, len(t.shape)-1)
	copy(s, t.shape[1:])
	if len(s) == 0 {
		s = []int{1}
	}
	return &Tensor{shape: s, data: t.data[i*sub : (i+1)*sub]}
}

// String renders a short human-readable description (shape plus the first
// few elements), suitable for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if show < n {
		fmt.Fprintf(&b, " ... (%d elems)", n)
	}
	b.WriteString("]")
	return b.String()
}

// Volume returns the number of elements implied by a shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// ShapeEq reports whether two shapes are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
