package tensor

import (
	"testing"
)

func TestConvGeomOutputDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 5, KW: 5, Stride: 1, Pad: 2}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-pad geometry: %dx%d, want 32x32", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 28, InW: 28, KH: 5, KW: 5, Stride: 1, Pad: 0}
	if g2.OutH() != 24 || g2.OutW() != 24 {
		t.Fatalf("valid geometry: %dx%d, want 24x24", g2.OutH(), g2.OutW())
	}
	g3 := ConvGeom{InC: 1, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0}
	if g3.OutH() != 4 || g3.OutW() != 4 {
		t.Fatalf("strided geometry: %dx%d, want 4x4", g3.OutH(), g3.OutW())
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 0},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
	good := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected valid geometry: %v", err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity (as a column).
	img := From([]float64{1, 2, 3, 4}, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1}
	cols := Im2Col(img, g)
	if !ShapeEq(cols.Shape(), []int{4, 1}) {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	if !Equal(cols.Flatten(), img.Flatten()) {
		t.Fatalf("1x1 im2col should be identity, got %v", cols)
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 3x3 image, 2x2 kernel, stride 1 → 2x2 output, each row a window.
	img := From([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1}
	cols := Im2Col(img, g)
	want := From([]float64{
		1, 2, 4, 5,
		2, 3, 5, 6,
		4, 5, 7, 8,
		5, 6, 8, 9,
	}, 4, 4)
	if !Equal(cols, want) {
		t.Fatalf("im2col = %v, want %v", cols, want)
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	img := From([]float64{5}, 1, 1, 1)
	g := ConvGeom{InC: 1, InH: 1, InW: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	cols := Im2Col(img, g)
	if !ShapeEq(cols.Shape(), []int{1, 9}) {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	// Only the center of the window overlaps the image.
	want := From([]float64{0, 0, 0, 0, 5, 0, 0, 0, 0}, 1, 9)
	if !Equal(cols, want) {
		t.Fatalf("padded im2col = %v, want %v", cols, want)
	}
}

func TestIm2ColMultiChannel(t *testing.T) {
	img := From([]float64{
		1, 2, 3, 4, // channel 0
		10, 20, 30, 40, // channel 1
	}, 2, 2, 2)
	g := ConvGeom{InC: 2, InH: 2, InW: 2, KH: 2, KW: 2, Stride: 1}
	cols := Im2Col(img, g)
	want := From([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 8)
	if !Equal(cols, want) {
		t.Fatalf("multichannel im2col = %v, want %v", cols, want)
	}
}

// Col2Im must be the exact adjoint of Im2Col:
// <Im2Col(x), c> == <x, Col2Im(c)> for all x, c.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	rng := NewRNG(11)
	geoms := []ConvGeom{
		{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 0},
		{InC: 2, InH: 6, InW: 7, KH: 3, KW: 2, Stride: 2, Pad: 1},
		{InC: 3, InH: 8, InW: 8, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 2, Pad: 0},
	}
	for gi, g := range geoms {
		x := rng.FillNormal(New(g.InC, g.InH, g.InW), 0, 1)
		c := rng.FillNormal(New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW), 0, 1)
		lhs := Dot(Im2Col(x, g).Flatten(), c.Flatten())
		rhs := Dot(x.Flatten(), Col2Im(c, g).Flatten())
		if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("geometry %d: adjoint identity violated: %v vs %v", gi, lhs, rhs)
		}
	}
}

func TestCol2ImAccumulatesOverlaps(t *testing.T) {
	// All-ones columns with overlapping 2x2 stride-1 windows on 3x3: the
	// center pixel belongs to all 4 windows.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1}
	cols := New(4, 4).Fill(1)
	img := Col2Im(cols, g)
	want := From([]float64{
		1, 2, 1,
		2, 4, 2,
		1, 2, 1,
	}, 1, 3, 3)
	if !Equal(img, want) {
		t.Fatalf("Col2Im overlap accumulation = %v, want %v", img, want)
	}
}

func TestIm2ColWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Im2Col(New(1, 2, 2), ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1})
}
