package tensor

import (
	"fmt"
	"strings"
)

// Dense is a dense, contiguous, row-major n-dimensional array whose element
// type is a parameter: the dtype-tagged buffer the compiled inference path
// runs on. Dense[float64] is layout-compatible with Tensor; Dense[float32]
// (aliased Tensor32) halves the bytes per element for inference, where
// Shredder's learned noise already dwarfs a float32 rounding error.
//
// Dense deliberately carries only what the inference hot path needs —
// shape bookkeeping, views, and conversions. Training, autograd, and the
// full reduction/statistics surface stay on the float64 Tensor.
type Dense[F Float] struct {
	shape []int
	data  []F
}

// Tensor32 is the float32 dtype-tagged buffer — the element type of the
// compiled float32 inference path and of quantize.Dequantize32.
type Tensor32 = Dense[float32]

// NewDense returns a zero-filled dtype-tagged buffer with the given shape.
func NewDense[F Float](shape ...int) *Dense[F] {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense[F]{shape: s, data: make([]F, n)}
}

// DenseFrom wraps an existing slice as a dtype-tagged buffer with the given
// shape. The slice is used directly (not copied); its length must equal the
// shape's volume.
func DenseFrom[F Float](data []F, shape ...int) *Dense[F] {
	if n := Volume(shape); n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense[F]{shape: s, data: data}
}

// Shape returns the buffer's dimensions. The returned slice must not be
// modified.
func (d *Dense[F]) Shape() []int { return d.shape }

// Dim returns the size of dimension i.
func (d *Dense[F]) Dim(i int) int { return d.shape[i] }

// Rank returns the number of dimensions.
func (d *Dense[F]) Rank() int { return len(d.shape) }

// Len returns the total number of elements.
func (d *Dense[F]) Len() int { return len(d.data) }

// Data returns the underlying flat storage. Mutating it mutates the buffer.
func (d *Dense[F]) Data() []F { return d.data }

// Clone returns a deep copy.
func (d *Dense[F]) Clone() *Dense[F] {
	c := NewDense[F](d.shape...)
	copy(c.data, d.data)
	return c
}

// Reshape returns a view sharing the storage with a new shape of equal
// volume. A single -1 dimension is inferred from the rest.
func (d *Dense[F]) Reshape(shape ...int) *Dense[F] {
	s := make([]int, len(shape))
	copy(s, shape)
	infer := -1
	n := 1
	for i, dim := range s {
		if dim == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= dim
	}
	if infer >= 0 {
		if n == 0 || len(d.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", d.shape, shape))
		}
		s[infer] = len(d.data) / n
		n *= s[infer]
	}
	if n != len(d.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", d.shape, len(d.data), shape, n))
	}
	return &Dense[F]{shape: s, data: d.data}
}

// Slice returns the i-th sub-buffer along the first axis, sharing storage.
func (d *Dense[F]) Slice(i int) *Dense[F] {
	if len(d.shape) == 0 {
		panic("tensor: Slice on rank-0 buffer")
	}
	if i < 0 || i >= d.shape[0] {
		panic(fmt.Sprintf("tensor: Slice index %d out of range (size %d)", i, d.shape[0]))
	}
	sub := 1
	for _, dim := range d.shape[1:] {
		sub *= dim
	}
	s := make([]int, len(d.shape)-1)
	copy(s, d.shape[1:])
	if len(s) == 0 {
		s = []int{1}
	}
	return &Dense[F]{shape: s, data: d.data[i*sub : (i+1)*sub]}
}

// Argmax returns the flat index of the maximum element.
func (d *Dense[F]) Argmax() int {
	if len(d.data) == 0 {
		panic("tensor: Argmax of empty buffer")
	}
	best, bi := d.data[0], 0
	for i, v := range d.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// String renders a short human-readable description for debugging.
func (d *Dense[F]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense%v[", d.shape)
	show := len(d.data)
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", float64(d.data[i]))
	}
	if show < len(d.data) {
		fmt.Fprintf(&b, " ... (%d elems)", len(d.data))
	}
	b.WriteString("]")
	return b.String()
}

// ToDense converts a float64 tensor to a dtype-tagged buffer of the target
// element type. For F = float64 the storage is still copied, so mutating
// the result never aliases the source.
func ToDense[F Float](t *Tensor) *Dense[F] {
	out := NewDense[F](t.shape...)
	for i, v := range t.data {
		out.data[i] = F(v)
	}
	return out
}

// ToDenseInto converts a float64 tensor into an existing buffer of equal
// volume (e.g. pooled scratch), overwriting every element.
func ToDenseInto[F Float](dst *Dense[F], t *Tensor) {
	if len(dst.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: ToDenseInto volume mismatch %v vs %v", dst.shape, t.shape))
	}
	for i, v := range t.data {
		dst.data[i] = F(v)
	}
}

// ToTensor converts the buffer back to a float64 tensor — the boundary
// crossing from a compiled inference plan back to the float64 world (wire
// responses, metrics, training).
func (d *Dense[F]) ToTensor() *Tensor {
	out := New(d.shape...)
	for i, v := range d.data {
		out.data[i] = float64(v)
	}
	return out
}

// AsDense64 wraps a float64 tensor as a Dense[float64] sharing its storage
// (no copy): the zero-cost boundary for float64 compiled plans.
func AsDense64(t *Tensor) *Dense[float64] {
	return &Dense[float64]{shape: t.shape, data: t.data}
}

// AsTensor64 wraps a Dense[float64] as a Tensor sharing its storage.
func AsTensor64(d *Dense[float64]) *Tensor {
	return &Tensor{shape: d.shape, data: d.data}
}

// panicShape raises a uniform shape-mismatch panic for the Dense kernels.
func panicShape(op string, shapes ...[]int) {
	parts := make([]string, len(shapes))
	for i, s := range shapes {
		parts[i] = fmt.Sprint(s)
	}
	panic(fmt.Sprintf("tensor: %s shape mismatch %s", op, strings.Join(parts, " vs ")))
}
