package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// randTensorPair builds two same-shape tensors from a seed.
func randTensorPair(seed int64) (*Tensor, *Tensor) {
	r := NewRNG(seed)
	rank := 1 + r.Intn(3)
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = 1 + r.Intn(5)
	}
	a := r.FillNormal(New(shape...), 0, 2)
	b := r.FillNormal(New(shape...), 0, 2)
	return a, b
}

func TestPropertyAddSubInverse(t *testing.T) {
	f := func(seed int64) bool {
		a, b := randTensorPair(seed)
		return AllClose(Sub(Add(a, b), b), a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		a, b := randTensorPair(seed)
		return Equal(Add(a, b), Add(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScaleDistributesOverAdd(t *testing.T) {
	f := func(seed int64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
			return true // skip degenerate scales
		}
		a, b := randTensorPair(seed)
		lhs := Add(a, b).Scale(s)
		rhs := Add(a.Clone().Scale(s), b.Clone().Scale(s))
		return AllClose(lhs, rhs, 1e-6*math.Max(1, math.Abs(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReshapePreservesAggregates(t *testing.T) {
	f := func(seed int64) bool {
		a, _ := randTensorPair(seed)
		flat := a.Reshape(-1)
		return flat.Sum() == a.Sum() && flat.Max() == a.Max() && flat.Len() == a.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDotCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		a, b := randTensorPair(seed)
		lhs := Dot(a, b) * Dot(a, b)
		rhs := a.SqSum() * b.SqSum()
		return lhs <= rhs*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVarianceShiftInvariant(t *testing.T) {
	f := func(seed int64, c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 {
			return true
		}
		a, _ := randTensorPair(seed)
		v0 := a.Variance()
		v1 := a.Clone().Shift(c).Variance()
		return math.Abs(v0-v1) < 1e-6*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLaplaceMedianIsMu(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		mu := r.Uniform(-3, 3)
		s := r.FillLaplace(New(4001), mu, 1)
		// Median of a Laplace is µ: about half the samples fall below.
		below := 0
		for _, v := range s.Data() {
			if v < mu {
				below++
			}
		}
		frac := float64(below) / float64(s.Len())
		return frac > 0.45 && frac < 0.55
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIm2ColLinear(t *testing.T) {
	// Im2Col is a linear operator: Im2Col(x+y) == Im2Col(x) + Im2Col(y).
	f := func(seed int64) bool {
		r := NewRNG(seed)
		g := ConvGeom{InC: 1 + r.Intn(2), InH: 4 + r.Intn(4), InW: 4 + r.Intn(4),
			KH: 1 + r.Intn(3), KW: 1 + r.Intn(3), Stride: 1 + r.Intn(2), Pad: r.Intn(2)}
		if g.Validate() != nil {
			return true
		}
		x := r.FillNormal(New(g.InC, g.InH, g.InW), 0, 1)
		y := r.FillNormal(New(g.InC, g.InH, g.InW), 0, 1)
		lhs := Im2Col(Add(x, y), g)
		rhs := Add(Im2Col(x, g), Im2Col(y, g))
		return AllClose(lhs, rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
