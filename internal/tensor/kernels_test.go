package tensor

import (
	"math"
	"testing"
)

// toDense32 converts a float64 tensor to a float32 buffer for kernel
// parity tests.
func toDense32(t *Tensor) *Tensor32 { return ToDense[float32](t) }

// maxAbsDiff32 returns max |a_i - b_i| between a float32 buffer and a
// float64 reference.
func maxAbsDiff32(a *Tensor32, b *Tensor) float64 {
	m := 0.0
	bd := b.Data()
	for i, v := range a.Data() {
		if d := math.Abs(float64(v) - bd[i]); d > m {
			m = d
		}
	}
	return m
}

func TestKernelFloat64DelegationExact(t *testing.T) {
	// The float64 Tensor API routes through the generic kernels; the
	// Dense[float64] surface must agree bitwise with it.
	rng := NewRNG(11)
	a := rng.FillNormal(New(9, 13), 0, 1)
	b := rng.FillNormal(New(7, 13), 0, 1)
	want := MatMulT2(a, b)
	got := NewDense[float64](9, 7)
	MatMulT2Dense(got, AsDense64(a), AsDense64(b))
	if !Equal(AsTensor64(got), want) {
		t.Fatal("MatMulT2Dense[float64] diverges from MatMulT2")
	}
}

func TestMatMulT2KernelFloat32Parity(t *testing.T) {
	rng := NewRNG(12)
	a := rng.FillNormal(New(8, 40), 0, 1)
	b := rng.FillNormal(New(12, 40), 0, 1)
	want := MatMulT2(a, b)
	got := NewDense[float32](8, 12)
	MatMulT2Dense(got, toDense32(a), toDense32(b))
	// 40-term dot products of unit-normal values: float32 error well under
	// 1e-4 in absolute terms at these magnitudes.
	if d := maxAbsDiff32(got, want); d > 1e-4 {
		t.Fatalf("float32 matmul deviates by %g from float64", d)
	}
}

// TestMatMulT2BlockedParity checks the register-blocked kernel against the
// legacy one at both dtypes, with shapes that exercise the four-wide body,
// the tail columns, the single-row serial path, and the parallel path.
func TestMatMulT2BlockedParity(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 7, 3},    // all tail, serial
		{5, 40, 8},   // exact four-wide blocks
		{6, 33, 13},  // blocks plus tail
		{64, 50, 70}, // crosses parallelThreshold
	}
	for _, s := range shapes {
		rng := NewRNG(int64(s.m + s.k + s.n))
		a := rng.FillNormal(New(s.m, s.k), 0, 1)
		b := rng.FillNormal(New(s.n, s.k), 0, 1)
		want := MatMulT2(a, b)

		got64 := NewDense[float64](s.m, s.n)
		MatMulT2BlockedDense(got64, AsDense64(a), AsDense64(b))
		for i, v := range got64.Data() {
			// The blocked kernel reorders accumulation, so agreement is to
			// rounding, not bitwise.
			if math.Abs(v-want.Data()[i]) > 1e-12 {
				t.Fatalf("%+v: blocked f64 elem %d deviates: %v vs %v", s, i, v, want.Data()[i])
			}
		}

		got32 := NewDense[float32](s.m, s.n)
		MatMulT2BlockedDense(got32, toDense32(a), toDense32(b))
		if d := maxAbsDiff32(got32, want); d > 1e-4 {
			t.Fatalf("%+v: blocked f32 deviates by %g", s, d)
		}
	}
}

func TestMatMulKernelFloat32Parity(t *testing.T) {
	rng := NewRNG(13)
	a := rng.FillNormal(New(6, 17), 0, 1)
	b := rng.FillNormal(New(17, 9), 0, 1)
	want := MatMul(a, b)
	got := NewDense[float32](6, 9)
	MatMulDense(got, toDense32(a), toDense32(b))
	if d := maxAbsDiff32(got, want); d > 1e-4 {
		t.Fatalf("float32 matmul deviates by %g from float64", d)
	}
}

func TestMatMulKernelParallelPathFloat32(t *testing.T) {
	// Large enough to cross parallelThreshold: exercises parallelRows under
	// the generic instantiation.
	rng := NewRNG(14)
	m, k, n := 64, 33, 300
	a := rng.FillNormal(New(m, k), 0, 1)
	b := rng.FillNormal(New(k, n), 0, 1)
	want := MatMul(a, b)
	got := NewDense[float32](m, n)
	MatMulDense(got, toDense32(a), toDense32(b))
	if d := maxAbsDiff32(got, want); d > 1e-3 {
		t.Fatalf("parallel float32 matmul deviates by %g", d)
	}
}

func TestIm2ColKernelFloat32Parity(t *testing.T) {
	rng := NewRNG(15)
	img := rng.FillNormal(New(3, 6, 6), 0, 1)
	g := ConvGeom{InC: 3, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 1}
	want := Im2Col(img, g)
	cols := NewDense[float32](g.OutH()*g.OutW(), 3*3*3)
	Im2ColDense(cols, toDense32(img), g)
	// im2col only moves values (and writes zeros); the only error is the
	// one float64→float32 conversion of the input.
	wd := want.Data()
	for i, v := range cols.Data() {
		if float64(float32(wd[i])) != float64(v) {
			t.Fatalf("im2col float32 elem %d: got %v want %v", i, v, float32(wd[i]))
		}
	}
}

func TestReLUDense(t *testing.T) {
	in := DenseFrom([]float32{-1, 0, 2.5, -0.001, 7}, 5)
	out := NewDense[float32](5)
	ReLUDense(out, in)
	want := []float32{0, 0, 2.5, 0, 7}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("relu elem %d: got %v want %v", i, v, want[i])
		}
	}
	// In-place aliasing must work too.
	ReLUDense(in, in)
	for i, v := range in.Data() {
		if v != want[i] {
			t.Fatalf("in-place relu elem %d: got %v want %v", i, v, want[i])
		}
	}
}

func TestDenseReshapeSliceArgmax(t *testing.T) {
	d := NewDense[float32](2, 3, 4)
	if d.Len() != 24 || d.Rank() != 3 || d.Dim(2) != 4 {
		t.Fatalf("dense shape bookkeeping broken: %v", d.Shape())
	}
	r := d.Reshape(6, -1)
	if !ShapeEq(r.Shape(), []int{6, 4}) {
		t.Fatalf("reshape got %v", r.Shape())
	}
	// Slice shares storage.
	s := d.Slice(1)
	s.Data()[0] = 42
	if d.Data()[12] != 42 {
		t.Fatal("Slice does not share storage")
	}
	a := DenseFrom([]float32{1, 9, 3}, 3)
	if a.Argmax() != 1 {
		t.Fatalf("argmax got %d", a.Argmax())
	}
}

func TestDenseTensorRoundTrip(t *testing.T) {
	rng := NewRNG(16)
	src := rng.FillNormal(New(4, 5), 0, 3)
	d32 := ToDense[float32](src)
	back := d32.ToTensor()
	if !back.SameShape(src) {
		t.Fatalf("round-trip shape %v vs %v", back.Shape(), src.Shape())
	}
	for i, v := range back.Data() {
		if v != float64(float32(src.Data()[i])) {
			t.Fatalf("round-trip elem %d not the float32 rounding of the source", i)
		}
	}
	// AsDense64/AsTensor64 are zero-copy views.
	v64 := AsDense64(src)
	v64.Data()[0] = 123
	if src.Data()[0] != 123 {
		t.Fatal("AsDense64 does not share storage")
	}
}
