package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation used to validate the
// optimized kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulSmallKnown(t *testing.T) {
	a := From([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := From([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := From([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(got, want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {7, 4, 9}, {16, 16, 16}, {33, 17, 29}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := rng.FillNormal(New(m, k), 0, 1)
		b := rng.FillNormal(New(k, n), 0, 1)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !AllClose(got, want, 1e-9) {
			t.Fatalf("MatMul mismatch at %dx%dx%d", m, k, n)
		}
	}
}

func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	// Large enough to cross parallelThreshold.
	rng := NewRNG(2)
	m, k, n := 160, 40, 128
	a := rng.FillNormal(New(m, k), 0, 1)
	b := rng.FillNormal(New(k, n), 0, 1)
	if !AllClose(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul mismatch")
	}
}

func TestMatMulInto(t *testing.T) {
	rng := NewRNG(3)
	a := rng.FillNormal(New(4, 5), 0, 1)
	b := rng.FillNormal(New(5, 6), 0, 1)
	dst := rng.FillNormal(New(4, 6), 0, 1) // pre-filled garbage must be overwritten
	MatMulInto(dst, a, b)
	if !AllClose(dst, naiveMatMul(a, b), 1e-9) {
		t.Fatal("MatMulInto mismatch")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulT1MatchesTransposed(t *testing.T) {
	rng := NewRNG(4)
	a := rng.FillNormal(New(7, 3), 0, 1) // [k,m]
	b := rng.FillNormal(New(7, 5), 0, 1) // [k,n]
	got := MatMulT1(a, b)
	want := MatMul(Transpose(a), b)
	if !AllClose(got, want, 1e-9) {
		t.Fatal("MatMulT1 != Transpose(a)·b")
	}
}

func TestMatMulT2MatchesTransposed(t *testing.T) {
	rng := NewRNG(5)
	a := rng.FillNormal(New(4, 6), 0, 1) // [m,k]
	b := rng.FillNormal(New(9, 6), 0, 1) // [n,k]
	got := MatMulT2(a, b)
	want := MatMul(a, Transpose(b))
	if !AllClose(got, want, 1e-9) {
		t.Fatal("MatMulT2 != a·Transpose(b)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(6)
	a := rng.FillNormal(New(5, 8), 0, 1)
	if !Equal(Transpose(Transpose(a)), a) {
		t.Fatal("Transpose(Transpose(a)) != a")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func(seed int64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := r.FillNormal(New(m, k), 0, 1)
		b := r.FillNormal(New(k, n), 0, 1)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return AllClose(lhs, rhs, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Values: nil}
	if err := quick.Check(func() bool { return f(rng.Int63()) }, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) = A·B + A·C.
func TestMatMulDistributesOverAdd(t *testing.T) {
	rng := NewRNG(8)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := rng.FillNormal(New(m, k), 0, 1)
		b := rng.FillNormal(New(k, n), 0, 1)
		c := rng.FillNormal(New(k, n), 0, 1)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		if !AllClose(lhs, rhs, 1e-9) {
			t.Fatalf("distributivity failed at trial %d", trial)
		}
	}
}

func TestParallelForCoversAll(t *testing.T) {
	n := 1000
	hits := make([]int32, n)
	ParallelFor(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestRNGLaplaceMoments(t *testing.T) {
	rng := NewRNG(42)
	const n = 200000
	mu, b := 0.5, 2.0
	s := New(n)
	rng.FillLaplace(s, mu, b)
	if m := s.Mean(); math.Abs(m-mu) > 0.03 {
		t.Fatalf("Laplace mean = %v, want ~%v", m, mu)
	}
	// Var(Laplace) = 2b²
	if v := s.Variance(); math.Abs(v-2*b*b) > 0.25 {
		t.Fatalf("Laplace variance = %v, want ~%v", v, 2*b*b)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(43)
	const n = 100000
	s := rng.FillNormal(New(n), -1, 3)
	if m := s.Mean(); math.Abs(m+1) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~-1", m)
	}
	if v := s.Variance(); math.Abs(v-9) > 0.3 {
		t.Fatalf("Normal variance = %v, want ~9", v)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7).FillLaplace(New(64), 0, 1)
	b := NewRNG(7).FillLaplace(New(64), 0, 1)
	if !Equal(a, b) {
		t.Fatal("same seed must produce identical samples")
	}
	c := NewRNG(8).FillLaplace(New(64), 0, 1)
	if Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}
