package tensor

import (
	"encoding/gob"
	"fmt"
	"io"
)

// wireTensor is the gob wire representation of a Tensor. Kept separate from
// the Tensor struct so the in-memory layout can evolve without breaking
// saved checkpoints.
type wireTensor struct {
	Shape []int
	Data  []float64
}

// Encode writes t to w in gob format.
func (t *Tensor) Encode(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(wireTensor{Shape: t.shape, Data: t.data}); err != nil {
		return fmt.Errorf("tensor: encode: %w", err)
	}
	return nil
}

// Decode reads a tensor previously written with Encode.
func Decode(r io.Reader) (*Tensor, error) {
	dec := gob.NewDecoder(r)
	var wt wireTensor
	if err := dec.Decode(&wt); err != nil {
		return nil, fmt.Errorf("tensor: decode: %w", err)
	}
	if Volume(wt.Shape) != len(wt.Data) {
		return nil, fmt.Errorf("tensor: decode: shape %v does not match %d elements", wt.Shape, len(wt.Data))
	}
	return From(wt.Data, wt.Shape...), nil
}

// GobEncode implements gob.GobEncoder so tensors can be embedded in larger
// gob-encoded structures (e.g. the splitrt wire protocol).
func (t *Tensor) GobEncode() ([]byte, error) {
	var buf writerBuffer
	if err := t.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(p []byte) error {
	dt, err := Decode(&readerBuffer{b: p})
	if err != nil {
		return err
	}
	t.shape = dt.shape
	t.data = dt.data
	return nil
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type readerBuffer struct {
	b []byte
	i int
}

func (r *readerBuffer) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
