// Package optim implements the gradient-descent optimizers and schedules
// used both to pre-train the benchmark networks and to train Shredder noise
// tensors: SGD with momentum and weight decay, Adam (the optimizer the
// paper uses for noise learning, §3.2), and step/exponential decay
// schedules for learning rate and for Shredder's λ privacy knob.
package optim

import (
	"math"

	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and then
// clears the gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step()
	// SetLR changes the learning rate for subsequent steps.
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	params    []*nn.Param
	lr        float64
	Momentum  float64
	WeightDec float64
	velocity  []*tensor.Tensor
}

// NewSGD constructs an SGD optimizer over params.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, Momentum: momentum, WeightDec: weightDecay}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Value.Shape()...)
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		g := p.Grad
		if s.WeightDec != 0 {
			g.AddScaled(s.WeightDec, p.Value)
		}
		if s.velocity != nil {
			v := s.velocity[i]
			v.Scale(s.Momentum)
			v.AddScaled(1, g)
			p.Value.AddScaled(-s.lr, v)
		} else {
			p.Value.AddScaled(-s.lr, g)
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba 2015) with bias correction.
type Adam struct {
	params       []*nn.Param
	lr           float64
	Beta1, Beta2 float64
	Eps          float64
	t            int
	m, v         []*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with the canonical β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(params []*nn.Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Shape()...)
		a.v[i] = tensor.New(p.Value.Shape()...)
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		md, vd := a.m[i].Data(), a.v[i].Data()
		gd, pd := p.Grad.Data(), p.Value.Data()
		for j := range gd {
			g := gd[j]
			md[j] = a.Beta1*md[j] + (1-a.Beta1)*g
			vd[j] = a.Beta2*vd[j] + (1-a.Beta2)*g*g
			mhat := md[j] / c1
			vhat := vd[j] / c2
			pd[j] -= a.lr * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// StepDecay returns a schedule that multiplies base by factor every
// interval steps: lr(t) = base · factorᶠˡᵒᵒʳ⁽ᵗ/ᵢⁿᵗᵉʳᵛᵃˡ⁾.
func StepDecay(base, factor float64, interval int) func(step int) float64 {
	return func(step int) float64 {
		return base * math.Pow(factor, float64(step/interval))
	}
}

// ExpDecay returns a schedule lr(t) = base · e^(−rate·t).
func ExpDecay(base, rate float64) func(step int) float64 {
	return func(step int) float64 {
		return base * math.Exp(-rate*float64(step))
	}
}
