package optim

import (
	"math"
	"testing"

	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// quadParam builds a single parameter initialized at x0 whose loss is
// ½‖x‖²; its gradient is x itself.
func quadParam(x0 []float64) *nn.Param {
	return nn.NewParam("x", tensor.From(append([]float64(nil), x0...), len(x0)))
}

func quadGrad(p *nn.Param) {
	p.Grad.CopyFrom(p.Value)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadParam([]float64{5, -3, 2})
	opt := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	for i := 0; i < 200; i++ {
		quadGrad(p)
		opt.Step()
	}
	if p.Value.MaxAbs() > 1e-6 {
		t.Fatalf("SGD did not converge: %v", p.Value)
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	plain := quadParam([]float64{10})
	mom := quadParam([]float64{10})
	optP := NewSGD([]*nn.Param{plain}, 0.01, 0, 0)
	optM := NewSGD([]*nn.Param{mom}, 0.01, 0.9, 0)
	for i := 0; i < 100; i++ {
		quadGrad(plain)
		optP.Step()
		quadGrad(mom)
		optM.Step()
	}
	if mom.Value.MaxAbs() >= plain.Value.MaxAbs() {
		t.Fatalf("momentum (%v) should beat plain SGD (%v) on a quadratic",
			mom.Value.MaxAbs(), plain.Value.MaxAbs())
	}
}

func TestSGDWeightDecayShrinksParams(t *testing.T) {
	p := quadParam([]float64{1})
	opt := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5)
	// Zero task gradient; only decay acts.
	for i := 0; i < 10; i++ {
		p.ZeroGrad()
		opt.Step()
	}
	if v := p.Value.At(0); v >= 1 || v <= 0 {
		t.Fatalf("decayed value = %v, want in (0,1)", v)
	}
}

func TestSGDZeroesGradAfterStep(t *testing.T) {
	p := quadParam([]float64{1, 2})
	opt := NewSGD([]*nn.Param{p}, 0.1, 0.9, 0)
	quadGrad(p)
	opt.Step()
	if p.Grad.AbsSum() != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step is ≈ lr·sign(g).
	p := quadParam([]float64{1})
	opt := NewAdam([]*nn.Param{p}, 0.01)
	quadGrad(p)
	opt.Step()
	got := 1 - p.Value.At(0)
	if math.Abs(got-0.01) > 1e-6 {
		t.Fatalf("first Adam step = %v, want ~0.01", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := quadParam([]float64{4, -7})
	opt := NewAdam([]*nn.Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		quadGrad(p)
		opt.Step()
	}
	if p.Value.MaxAbs() > 1e-3 {
		t.Fatalf("Adam did not converge: %v", p.Value)
	}
}

func TestAdamHandlesSparseScaleDifferences(t *testing.T) {
	// Coordinates with wildly different gradient scales should converge at
	// comparable speed under Adam (per-coordinate normalization).
	p := nn.NewParam("x", tensor.From([]float64{1, 1}, 2))
	opt := NewAdam([]*nn.Param{p}, 0.05)
	for i := 0; i < 300; i++ {
		p.Grad.Set(1000*p.Value.At(0), 0)
		p.Grad.Set(0.001*p.Value.At(1), 1)
		opt.Step()
	}
	if math.Abs(p.Value.At(0)) > 0.05 {
		t.Fatalf("large-scale coordinate did not converge: %v", p.Value)
	}
	if math.Abs(p.Value.At(1)) > 0.5 {
		t.Fatalf("small-scale coordinate did not move enough: %v", p.Value)
	}
}

func TestSetLRTakesEffect(t *testing.T) {
	p := quadParam([]float64{1})
	opt := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	opt.SetLR(0)
	quadGrad(p)
	opt.Step()
	if p.Value.At(0) != 1 {
		t.Fatal("lr=0 should freeze the parameter")
	}
	if opt.LR() != 0 {
		t.Fatal("LR() should reflect SetLR")
	}
}

func TestStepDecaySchedule(t *testing.T) {
	sched := StepDecay(1.0, 0.5, 10)
	if sched(0) != 1.0 || sched(9) != 1.0 {
		t.Fatal("no decay before first interval")
	}
	if sched(10) != 0.5 {
		t.Fatalf("sched(10) = %v", sched(10))
	}
	if sched(25) != 0.25 {
		t.Fatalf("sched(25) = %v", sched(25))
	}
}

func TestExpDecaySchedule(t *testing.T) {
	sched := ExpDecay(2.0, 0.1)
	if sched(0) != 2.0 {
		t.Fatalf("sched(0) = %v", sched(0))
	}
	if got, want := sched(10), 2.0*math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sched(10) = %v, want %v", got, want)
	}
	if sched(100) >= sched(10) {
		t.Fatal("exp decay must be monotone decreasing")
	}
}

// Training a real (tiny) network must reduce the loss — an integration
// check tying optim to nn.
func TestAdamTrainsTinyNetwork(t *testing.T) {
	rng := tensor.NewRNG(50)
	net := nn.NewSequential("tiny",
		nn.NewLinear("fc1", 4, 16, rng),
		nn.NewReLU("r"),
		nn.NewLinear("fc2", 16, 3, rng),
	)
	opt := NewAdam(net.Params(), 0.01)
	// Separable synthetic data: class = argmax of first 3 inputs.
	n := 60
	x := rng.FillNormal(tensor.New(n, 4), 0, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.Slice(i)
		best, bi := row.At(0), 0
		for j := 1; j < 3; j++ {
			if row.At(j) > best {
				best, bi = row.At(j), j
			}
		}
		labels[i] = bi
	}
	first := -1.0
	var last float64
	for epoch := 0; epoch < 60; epoch++ {
		logits := net.Forward(x, true)
		loss, grad := nn.CrossEntropy(logits, labels)
		if first < 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step()
	}
	if last > first/2 {
		t.Fatalf("training did not reduce loss: first %v, last %v", first, last)
	}
}
