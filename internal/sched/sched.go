// Package sched provides a request-coalescing micro-batch scheduler for
// serving workloads whose unit cost amortizes over batches: many goroutines
// submit single items, the Batcher groups them, one call processes the
// whole group, and each submitter gets back exactly its own result.
//
// The flush policy is built for serving rather than throughput alone:
//
//   - When the batcher is idle (no batch in flight), a submission flushes
//     immediately — an unloaded server adds no queueing latency.
//   - While a batch is in flight, arrivals accumulate; the completed
//     flight triggers the next flush, so coalescing emerges naturally
//     from load instead of from a fixed delay.
//   - MaxBatch caps how much weight one flush may carry; reaching it
//     flushes at once, even with a flight outstanding.
//   - MaxDelay bounds how long a queued item may wait behind a slow
//     in-flight batch before it is flushed concurrently anyway.
//
// A submitter whose context is cancelled abandons its slot: it returns
// ctx.Err() immediately and the flusher drops the slot at dispatch time,
// without poisoning the rest of the batch.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"shredder/internal/obs"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("sched: batcher closed")

// Options tune a Batcher. The zero value selects the defaults.
type Options struct {
	// MaxBatch caps the total weight of one batch (default 16). A single
	// submission heavier than MaxBatch still runs, alone.
	MaxBatch int
	// MaxDelay bounds how long a queued submission may wait behind an
	// in-flight batch before it is dispatched concurrently anyway
	// (default 2ms). It is a latency budget, not a mandatory delay: an
	// idle batcher always flushes immediately.
	MaxDelay time.Duration
	// Metrics, when non-nil, registers the batcher's counters in this
	// shared registry under "sched." names so they appear in a combined
	// /debug/metrics snapshot. Nil gives the batcher a private registry —
	// Stats always works, at identical (atomic) hot-path cost.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	return o
}

// Stats is an atomic snapshot of a Batcher's lifetime counters.
type Stats struct {
	Submitted int64 // submissions accepted by Submit
	Cancelled int64 // submissions abandoned by their context
	Batches   int64 // run invocations dispatched
	Weight    int64 // total weight dispatched across all batches

	// Flush reasons, one count per dispatched batch.
	FlushFull  int64 // pending weight reached MaxBatch
	FlushIdle  int64 // no batch in flight: immediate dispatch
	FlushTimer int64 // MaxDelay expired behind an in-flight batch
	FlushClose int64 // final drain by Close

	MeanOccupancy  float64       // Weight / Batches
	MeanQueueDelay time.Duration // mean time from Submit to dispatch
}

// counters holds the Batcher's hot-path statistics as registered obs
// metrics (all atomic) so Stats — now a thin compatibility wrapper — and a
// shared /debug/metrics snapshot read the same numbers without touching the
// scheduling mutex.
type counters struct {
	submitted, cancelled *obs.Counter
	batches, weight      *obs.Counter
	full, idle, timer    *obs.Counter
	closeFlush           *obs.Counter
	dispatched           *obs.Counter // live slots handed to run
	queueDelayNs         *obs.Counter
	occupancy            *obs.Gauge // weight of the most recent batch
}

func newCounters(reg *obs.Registry) counters {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return counters{
		submitted:    reg.Counter("sched.submitted"),
		cancelled:    reg.Counter("sched.cancelled"),
		batches:      reg.Counter("sched.batches"),
		weight:       reg.Counter("sched.weight"),
		full:         reg.Counter("sched.flush.full"),
		idle:         reg.Counter("sched.flush.idle"),
		timer:        reg.Counter("sched.flush.timer"),
		closeFlush:   reg.Counter("sched.flush.close"),
		dispatched:   reg.Counter("sched.dispatched"),
		queueDelayNs: reg.Counter("sched.queue_delay_ns"),
		occupancy:    reg.Gauge("sched.occupancy"),
	}
}

type result[R any] struct {
	val R
	err error
}

// slot is one pending submission: the request, its weight, the channel its
// submitter is waiting on (buffered, so an abandoned slot never blocks the
// flusher), and an optional SubmitInfo to fill with dispatch timings.
type slot[Q, R any] struct {
	ctx    context.Context
	req    Q
	weight int
	enq    time.Time
	res    chan result[R]
	info   *SubmitInfo
}

// SubmitInfo reports how one submission travelled through the batcher: when
// it queued, when its batch was dispatched and ran, and what it rode in.
// Filled by SubmitTraced before the result is delivered, so the submitter
// may read it as soon as SubmitTraced returns nil. After a non-nil error
// (cancellation, close) the contents are unspecified and the batcher may
// still be writing them — do not read the struct in that case.
type SubmitInfo struct {
	Enqueued    time.Time // Submit entry: the request joined the pending queue
	Dispatched  time.Time // its batch left the queue (flight launched)
	Started     time.Time // the run function began for its batch
	Finished    time.Time // the run function returned
	BatchSize   int       // live submissions in the batch it rode in
	BatchWeight int       // total live weight of that batch
	Reason      string    // why the batch flushed: full / idle / timer / close
}

// QueueDelay is the time the submission waited before its batch launched.
func (i *SubmitInfo) QueueDelay() time.Duration { return i.Dispatched.Sub(i.Enqueued) }

// BatchDelay is the gap between flight launch and the run actually starting
// (slot filtering and goroutine handoff).
func (i *SubmitInfo) BatchDelay() time.Duration { return i.Started.Sub(i.Dispatched) }

// RunTime is how long the batched run took.
func (i *SubmitInfo) RunTime() time.Duration { return i.Finished.Sub(i.Started) }

// flush reasons, recorded per dispatched batch.
type flushReason int

const (
	flushFull flushReason = iota
	flushIdle
	flushTimer
	flushClose
)

// String names the reason for SubmitInfo and metrics.
func (r flushReason) String() string {
	switch r {
	case flushFull:
		return "full"
	case flushIdle:
		return "idle"
	case flushTimer:
		return "timer"
	case flushClose:
		return "close"
	default:
		return "unknown"
	}
}

// Batcher coalesces concurrent submissions into batches and runs them
// through a single user-supplied function. It is safe for any number of
// concurrent Submit callers.
type Batcher[Q, R any] struct {
	opts Options
	run  func([]Q) ([]R, error)

	mu       sync.Mutex
	pending  []*slot[Q, R]
	pendingW int
	inFlight int
	timerGen uint64 // invalidates stale MaxDelay timers
	timer    *time.Timer
	closed   bool

	flights sync.WaitGroup
	stats   counters
}

// New creates a Batcher around run, which receives the coalesced requests
// in arrival order and must return exactly one result per request (or an
// error, which every member of the batch receives). run executes on a
// dispatch goroutine and may be invoked concurrently with itself when
// MaxDelay or MaxBatch forces a flush while another batch is in flight, so
// it must be reentrant.
func New[Q, R any](run func([]Q) ([]R, error), opts Options) *Batcher[Q, R] {
	opts = opts.withDefaults()
	return &Batcher[Q, R]{opts: opts, run: run, stats: newCounters(opts.Metrics)}
}

// Submit queues one request of the given weight (clamped to ≥1; weight is
// the batch-capacity cost, e.g. sample count) and blocks until its result
// is ready, the context is cancelled, or the batcher closes. A cancelled
// submitter returns ctx.Err() immediately; its slot is dropped at dispatch
// time without affecting the rest of the batch.
func (b *Batcher[Q, R]) Submit(ctx context.Context, req Q, weight int) (R, error) {
	return b.SubmitTraced(ctx, req, weight, nil)
}

// SubmitTraced is Submit, additionally filling info (when non-nil) with the
// submission's dispatch timings and batch placement — the raw material for
// request spans. The info is only valid when the returned error is nil.
func (b *Batcher[Q, R]) SubmitTraced(ctx context.Context, req Q, weight int, info *SubmitInfo) (R, error) {
	var zero R
	if weight < 1 {
		weight = 1
	}
	if err := ctx.Err(); err != nil {
		b.stats.cancelled.Add(1)
		return zero, err
	}
	s := &slot[Q, R]{ctx: ctx, req: req, weight: weight, enq: time.Now(), res: make(chan result[R], 1), info: info}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return zero, ErrClosed
	}
	b.stats.submitted.Add(1)
	b.pending = append(b.pending, s)
	b.pendingW += weight
	switch {
	case b.pendingW >= b.opts.MaxBatch:
		b.dispatchLocked(flushFull)
	case b.inFlight == 0:
		b.dispatchLocked(flushIdle)
	default:
		b.armTimerLocked()
	}
	b.mu.Unlock()

	select {
	case r := <-s.res:
		return r.val, r.err
	case <-ctx.Done():
		b.stats.cancelled.Add(1)
		return zero, ctx.Err()
	}
}

// armTimerLocked starts the MaxDelay clock for the current pending epoch
// if it is not already running.
func (b *Batcher[Q, R]) armTimerLocked() {
	if b.timer != nil {
		return
	}
	gen := b.timerGen
	b.timer = time.AfterFunc(b.opts.MaxDelay, func() {
		b.mu.Lock()
		if b.closed || gen != b.timerGen || len(b.pending) == 0 {
			b.mu.Unlock()
			return
		}
		b.dispatchLocked(flushTimer)
		b.mu.Unlock()
	})
}

// dispatchLocked takes the whole pending queue and launches a flight for
// it. Called with b.mu held; the flight itself runs on its own goroutine.
// flights.Add happens under the mutex so Close cannot miss a flight that a
// concurrent Submit is about to launch.
func (b *Batcher[Q, R]) dispatchLocked(reason flushReason) {
	batch := b.pending
	b.pending = nil
	b.pendingW = 0
	b.timerGen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(batch) == 0 {
		return
	}
	now := time.Now()
	for _, s := range batch {
		if s.info != nil {
			s.info.Enqueued = s.enq
			s.info.Dispatched = now
		}
	}
	b.inFlight++
	b.flights.Add(1)
	go b.fly(batch, reason)
}

// fly filters abandoned slots, runs the batch, and demultiplexes results.
func (b *Batcher[Q, R]) fly(batch []*slot[Q, R], reason flushReason) {
	defer func() {
		b.mu.Lock()
		b.inFlight--
		// The flight that just finished is the natural trigger for the
		// next one: anything queued behind it goes out immediately.
		if b.inFlight == 0 && len(b.pending) > 0 && !b.closed {
			b.dispatchLocked(flushIdle)
		}
		b.mu.Unlock()
		b.flights.Done()
	}()

	now := time.Now()
	live := batch[:0]
	weight := 0
	for _, s := range batch {
		if s.ctx.Err() != nil {
			continue // abandoned: its submitter already returned ctx.Err()
		}
		b.stats.queueDelayNs.Add(now.Sub(s.enq).Nanoseconds())
		b.stats.dispatched.Add(1)
		weight += s.weight
		live = append(live, s)
	}
	if len(live) == 0 {
		return
	}
	b.stats.batches.Add(1)
	b.stats.weight.Add(int64(weight))
	b.stats.occupancy.Set(float64(weight))
	switch reason {
	case flushFull:
		b.stats.full.Add(1)
	case flushIdle:
		b.stats.idle.Add(1)
	case flushTimer:
		b.stats.timer.Add(1)
	case flushClose:
		b.stats.closeFlush.Add(1)
	}

	reqs := make([]Q, len(live))
	for i, s := range live {
		reqs[i] = s.req
	}
	started := time.Now()
	out, err := b.runProtected(reqs)
	finished := time.Now()
	if err == nil && len(out) != len(reqs) {
		err = fmt.Errorf("sched: run returned %d results for %d requests", len(out), len(reqs))
	}
	for i, s := range live {
		if s.info != nil {
			// Filled before the result send, whose channel receive is the
			// happens-before edge that lets the submitter read it.
			s.info.Started = started
			s.info.Finished = finished
			s.info.BatchSize = len(live)
			s.info.BatchWeight = weight
			s.info.Reason = reason.String()
		}
		if err != nil {
			s.res <- result[R]{err: err}
		} else {
			s.res <- result[R]{val: out[i]}
		}
	}
}

// runProtected converts a panic in the user's run function into an error
// so one bad batch cannot kill the process or strand its submitters.
func (b *Batcher[Q, R]) runProtected(reqs []Q) (out []R, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("sched: batch run panicked: %v", r)
		}
	}()
	return b.run(reqs)
}

// Close drains the batcher deterministically: it stops accepting new
// submissions (Submit returns ErrClosed), flushes whatever is pending as
// one final batch so in-flight callers get real results, and waits for
// every flight to finish. No goroutine outlives Close. It is idempotent
// and safe to call concurrently.
func (b *Batcher[Q, R]) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.dispatchLocked(flushClose)
	}
	b.mu.Unlock()
	b.flights.Wait()
}

// Stats returns a consistent-enough snapshot of the lifetime counters; it
// never blocks submissions. It is a compatibility wrapper over the
// registered obs metrics (Options.Metrics, or the batcher's private
// registry), which hold the authoritative numbers.
func (b *Batcher[Q, R]) Stats() Stats {
	s := Stats{
		Submitted:  b.stats.submitted.Value(),
		Cancelled:  b.stats.cancelled.Value(),
		Batches:    b.stats.batches.Value(),
		Weight:     b.stats.weight.Value(),
		FlushFull:  b.stats.full.Value(),
		FlushIdle:  b.stats.idle.Value(),
		FlushTimer: b.stats.timer.Value(),
		FlushClose: b.stats.closeFlush.Value(),
	}
	if s.Batches > 0 {
		s.MeanOccupancy = float64(s.Weight) / float64(s.Batches)
	}
	if dispatched := b.stats.dispatched.Value(); dispatched > 0 {
		s.MeanQueueDelay = time.Duration(b.stats.queueDelayNs.Value() / dispatched)
	}
	return s
}
