package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateAdmitsAndDrains covers the contract: admitted work finishes
// before Drain returns, and entries after Drain are refused.
func TestGateAdmitsAndDrains(t *testing.T) {
	var g Gate
	if !g.Enter() {
		t.Fatal("zero-value gate refused entry")
	}
	if g.Active() != 1 {
		t.Fatalf("active = %d, want 1", g.Active())
	}

	var finished atomic.Bool
	drained := make(chan struct{})
	go func() {
		g.Drain()
		if !finished.Load() {
			t.Error("Drain returned before admitted work finished")
		}
		close(drained)
	}()

	// Give Drain a chance to start waiting, then refuse new entries.
	for !g.Draining() {
		time.Sleep(time.Millisecond)
	}
	if g.Enter() {
		t.Fatal("gate admitted work while draining")
	}

	finished.Store(true)
	g.Leave()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after last Leave")
	}
	if g.Enter() {
		t.Fatal("gate admitted work after drain completed")
	}
}

// TestGateConcurrent hammers Enter/Leave from many goroutines while Drain
// races them; the race detector plus the invariant checks cover the
// synchronization.
func TestGateConcurrent(t *testing.T) {
	var g Gate
	var admitted, left atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g.Enter() {
					admitted.Add(1)
					left.Add(1)
					g.Leave()
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	g.Drain()
	if g.Active() != 0 {
		t.Fatalf("active after Drain: %d", g.Active())
	}
	wg.Wait()
	if admitted.Load() != left.Load() {
		t.Fatalf("enter/leave imbalance: %d vs %d", admitted.Load(), left.Load())
	}
}

// TestGateDrainIdempotent checks repeated and concurrent Drain calls all
// return (and that a drained gate stays drained).
func TestGateDrainIdempotent(t *testing.T) {
	var g Gate
	done := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		go func() {
			g.Drain()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("concurrent Drain hung")
		}
	}
	g.Drain() // and once more, synchronously
}
