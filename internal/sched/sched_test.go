package sched

// Unit suite for the micro-batching scheduler: flush policy (idle / full /
// timer / close), per-item demultiplexing under randomized concurrent load
// (run with -race), context cancellation before and during a flight,
// error and panic propagation, and a goroutine-leak check around Close.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shredder/internal/obs"
)

// echoRun returns one result per request, tagging each so tests can verify
// every submitter got exactly its own answer back.
func echoRun(reqs []int) ([]int, error) {
	out := make([]int, len(reqs))
	for i, r := range reqs {
		out[i] = r * 10
	}
	return out, nil
}

func TestIdleBatcherFlushesImmediately(t *testing.T) {
	// MaxDelay is huge: if the idle path did not bypass it, this test
	// would take a minute.
	b := New(echoRun, Options{MaxBatch: 64, MaxDelay: time.Minute})
	defer b.Close()
	start := time.Now()
	got, err := b.Submit(context.Background(), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 70 {
		t.Fatalf("got %d, want 70", got)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("idle submission waited %v instead of flushing immediately", elapsed)
	}
	s := b.Stats()
	if s.FlushIdle != 1 || s.Batches != 1 || s.Submitted != 1 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}

// blockingBatcher returns a batcher whose first batch blocks until release
// is closed, so tests can deterministically pile submissions up behind an
// in-flight batch.
func blockingBatcher(opts Options) (b *Batcher[int, int], release chan struct{}, started chan struct{}) {
	release = make(chan struct{})
	started = make(chan struct{}, 64)
	run := func(reqs []int) ([]int, error) {
		started <- struct{}{}
		<-release
		return echoRun(reqs)
	}
	return New(run, opts), release, started
}

func TestMaxBatchFlushesFullBatchBehindFlight(t *testing.T) {
	b, release, started := blockingBatcher(Options{MaxBatch: 4, MaxDelay: time.Minute})
	defer b.Close()

	results := make(chan int, 8)
	errs := make(chan error, 8)
	submit := func(v int) {
		go func() {
			got, err := b.Submit(context.Background(), v, 1)
			results <- got
			errs <- err
		}()
	}
	submit(1) // idle → immediate flight, blocks in run
	<-started
	// These four accumulate behind the flight; the fourth reaches
	// MaxBatch and must flush concurrently even though the first flight
	// still holds the release channel.
	for v := 2; v <= 5; v++ {
		submit(v)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("full batch never dispatched while a flight was outstanding")
	}
	close(release)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		seen[<-results] = true
	}
	for v := 1; v <= 5; v++ {
		if !seen[v*10] {
			t.Fatalf("missing result for %d: %v", v, seen)
		}
	}
	s := b.Stats()
	if s.FlushFull != 1 {
		t.Fatalf("expected exactly one full flush, stats: %+v", s)
	}
	if s.MeanOccupancy <= 1 {
		t.Fatalf("coalescing never happened: %+v", s)
	}
}

func TestMaxDelayBoundsQueueingBehindSlowFlight(t *testing.T) {
	b, release, started := blockingBatcher(Options{MaxBatch: 64, MaxDelay: 20 * time.Millisecond})
	defer b.Close()

	go b.Submit(context.Background(), 1, 1) // occupies the flight
	<-started
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), 2, 1)
		done <- err
	}()
	// The queued submission must go out on the MaxDelay timer, not wait
	// for the (still blocked) first flight.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("MaxDelay timer never flushed the queued submission")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if s := b.Stats(); s.FlushTimer != 1 {
		t.Fatalf("expected a timer flush, stats: %+v", s)
	}
}

func TestOversizedSubmissionRunsAlone(t *testing.T) {
	var sizes []int
	var mu sync.Mutex
	run := func(reqs []int) ([]int, error) {
		mu.Lock()
		sizes = append(sizes, len(reqs))
		mu.Unlock()
		return echoRun(reqs)
	}
	b := New(run, Options{MaxBatch: 4, MaxDelay: time.Minute})
	defer b.Close()
	if _, err := b.Submit(context.Background(), 1, 100); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("oversized submission did not run alone: %v", sizes)
	}
}

func TestCancelledContextRejectedBeforeQueueing(t *testing.T) {
	b := New(echoRun, Options{})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Submit(ctx, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s := b.Stats(); s.Submitted != 0 || s.Cancelled != 1 {
		t.Fatalf("pre-queue cancellation miscounted: %+v", s)
	}
}

func TestCancelMidQueueDoesNotPoisonBatch(t *testing.T) {
	var got atomic.Value // []int: the batch the cancelled slot would have ridden in
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	run := func(reqs []int) ([]int, error) {
		started <- struct{}{}
		if len(reqs) > 1 || reqs[0] != 1 {
			got.Store(append([]int(nil), reqs...))
		}
		<-release
		return echoRun(reqs)
	}
	b := New(run, Options{MaxBatch: 3, MaxDelay: time.Minute})
	defer b.Close()

	go b.Submit(context.Background(), 1, 1) // flight
	<-started

	// Queue a victim, cancel it, then fill the batch with live slots.
	ctx, cancel := context.WithCancel(context.Background())
	victim := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, 666, 1)
		victim <- err
	}()
	// Wait until the victim is actually queued (Submitted reaches 2).
	waitFor(t, func() bool { return b.Stats().Submitted == 2 })
	cancel()
	if err := <-victim; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submitter got %v", err)
	}

	live := make(chan error, 3)
	for v := 2; v <= 4; v++ {
		go func(v int) {
			_, err := b.Submit(context.Background(), v, 1)
			live <- err
		}(v)
	}
	<-started // the full batch dispatches
	close(release)
	for i := 0; i < 3; i++ {
		if err := <-live; err != nil {
			t.Fatal(err)
		}
	}
	batch, _ := got.Load().([]int)
	for _, v := range batch {
		if v == 666 {
			t.Fatalf("abandoned slot reached the run function: %v", batch)
		}
	}
}

func TestCancelMidFlightReturnsPromptly(t *testing.T) {
	b, release, started := blockingBatcher(Options{})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, 1, 1)
		done <- err
	}()
	<-started // submission is inside the blocked run
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled caller stayed blocked on an in-flight batch")
	}
	close(release) // the flight must still complete without anyone reading
	b.Close()
}

func TestRunErrorReachesEveryMember(t *testing.T) {
	boom := errors.New("boom")
	b := New(func(reqs []int) ([]int, error) { return nil, boom }, Options{MaxBatch: 2, MaxDelay: time.Minute})
	defer b.Close()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(v int) {
			_, err := b.Submit(context.Background(), v, 1)
			errs <- err
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("member %d got %v", i, err)
		}
	}
}

func TestRunPanicBecomesErrorAndBatcherSurvives(t *testing.T) {
	calls := 0
	b := New(func(reqs []int) ([]int, error) {
		calls++
		if calls == 1 {
			panic("kaboom")
		}
		return echoRun(reqs)
	}, Options{})
	defer b.Close()
	if _, err := b.Submit(context.Background(), 1, 1); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	if got, err := b.Submit(context.Background(), 2, 1); err != nil || got != 20 {
		t.Fatalf("batcher did not survive a panicking batch: %v %v", got, err)
	}
}

func TestRunWrongLengthIsAnError(t *testing.T) {
	b := New(func(reqs []int) ([]int, error) { return make([]int, len(reqs)+1), nil }, Options{})
	defer b.Close()
	if _, err := b.Submit(context.Background(), 1, 1); err == nil || !strings.Contains(err.Error(), "results") {
		t.Fatalf("length mismatch not surfaced: %v", err)
	}
}

func TestCloseFlushesPendingAndRejectsNew(t *testing.T) {
	b, release, started := blockingBatcher(Options{MaxBatch: 64, MaxDelay: time.Minute})

	go b.Submit(context.Background(), 1, 1)
	<-started
	queued := make(chan error, 1)
	queuedVal := make(chan int, 1)
	go func() {
		v, err := b.Submit(context.Background(), 2, 1)
		queuedVal <- v
		queued <- err
	}()
	waitFor(t, func() bool { return b.Stats().Submitted == 2 })

	closed := make(chan struct{})
	go func() { b.Close(); close(closed) }()
	// Close dispatches the pending slot as the final drain batch before
	// waiting on flights; only then open the gate, so the drain (not the
	// first flight's completion) is what serves the queued slot.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never dispatched the drain batch")
	}
	close(release)
	<-closed

	// The queued slot was flushed as the final batch, not failed.
	if err := <-queued; err != nil {
		t.Fatalf("pending slot failed at Close: %v", err)
	}
	if v := <-queuedVal; v != 20 {
		t.Fatalf("pending slot got wrong result %d", v)
	}
	if s := b.Stats(); s.FlushClose != 1 {
		t.Fatalf("close drain not recorded: %+v", s)
	}
	if _, err := b.Submit(context.Background(), 3, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestCloseLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		b := New(echoRun, Options{MaxBatch: 4, MaxDelay: time.Millisecond})
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				b.Submit(context.Background(), v, 1)
			}(i)
		}
		wg.Wait()
		b.Close()
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// TestConcurrentStress hammers one batcher from many goroutines with
// random weights and per-caller cancellation, verifying every live caller
// receives exactly its own result. Run under -race this also proves the
// scheduling state is data-race free.
func TestConcurrentStress(t *testing.T) {
	b := New(echoRun, Options{MaxBatch: 8, MaxDelay: 500 * time.Microsecond})
	defer b.Close()
	const workers = 16
	const perWorker = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				v := w*1000 + i
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(10) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				got, err := b.Submit(ctx, v, 1+rng.Intn(3))
				cancel()
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
						continue
					}
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if got != v*10 {
					errs <- fmt.Errorf("worker %d got %d, want %d — cross-caller demux broken", w, got, v*10)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := b.Stats()
	if s.Batches == 0 || s.Weight < s.Batches {
		t.Fatalf("implausible stats after stress: %+v", s)
	}
	t.Logf("stress stats: %+v", s)
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestSubmitTracedFillsInfoAndMetrics pins the tracing/metrics contract: a
// successful SubmitTraced leaves a coherent timeline in SubmitInfo
// (enqueued ≤ dispatched ≤ started ≤ finished, batch membership recorded)
// and the shared registry sees the scheduler's registered counters.
func TestSubmitTracedFillsInfoAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	slow := func(reqs []int) ([]int, error) {
		time.Sleep(2 * time.Millisecond)
		return echoRun(reqs)
	}
	b := New(slow, Options{MaxBatch: 4, MaxDelay: time.Millisecond, Metrics: reg})
	defer b.Close()

	var info SubmitInfo
	got, err := b.SubmitTraced(context.Background(), 7, 2, &info)
	if err != nil || got != 70 {
		t.Fatalf("SubmitTraced: %d, %v", got, err)
	}
	if info.Enqueued.IsZero() || info.Dispatched.Before(info.Enqueued) ||
		info.Started.Before(info.Dispatched) || info.Finished.Before(info.Started) {
		t.Fatalf("incoherent timeline: %+v", info)
	}
	if info.BatchSize != 1 || info.BatchWeight != 2 || info.Reason == "" {
		t.Fatalf("batch membership wrong: %+v", info)
	}
	if info.QueueDelay() < 0 || info.RunTime() < 2*time.Millisecond {
		t.Fatalf("derived timings wrong: queue=%v run=%v", info.QueueDelay(), info.RunTime())
	}

	snap := reg.Snapshot()
	if snap.Counters["sched.submitted"] != 1 || snap.Counters["sched.batches"] != 1 {
		t.Fatalf("registry missed the submission: %+v", snap.Counters)
	}
	if snap.Counters["sched.weight"] != 2 {
		t.Fatalf("sched.weight = %d, want 2", snap.Counters["sched.weight"])
	}

	// A nil info pointer (the Submit path) must not record anything extra.
	if got, err := b.Submit(context.Background(), 3, 1); err != nil || got != 30 {
		t.Fatalf("Submit after SubmitTraced: %d, %v", got, err)
	}
}
