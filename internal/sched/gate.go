package sched

import "sync"

// Gate is the admission/drain half of the Batcher's Close contract, made
// reusable: callers Enter before starting a unit of work and Leave when it
// finishes; Drain stops admitting new work and blocks until every admitted
// unit has left. It is the generic shape of "in-flight calls finish, new
// calls are refused" that CloudServer.Close and Batcher.Close both
// implement ad hoc — fleet components (splitrt.Pool's per-backend drain and
// pool-wide shutdown) build on this instead of re-deriving it.
//
// The zero value is a ready-to-use open gate. All methods are safe for
// concurrent use. Unlike sync.WaitGroup, Enter after Drain is a clean
// refusal rather than a race.
type Gate struct {
	mu      sync.Mutex
	done    *sync.Cond // lazily created, signalled when active hits 0
	active  int
	closing bool
}

// Enter admits one unit of work. It returns false when the gate is draining
// or drained, in which case the caller must not start the work (and must
// not call Leave).
func (g *Gate) Enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closing {
		return false
	}
	g.active++
	return true
}

// Leave marks one admitted unit of work finished. Every successful Enter
// must be paired with exactly one Leave.
func (g *Gate) Leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.active <= 0 {
		panic("sched: Gate.Leave without matching Enter")
	}
	g.active--
	if g.active == 0 && g.done != nil {
		g.done.Broadcast()
	}
}

// Drain closes the gate to new entries and waits for the active count to
// reach zero. It is idempotent and safe to call from several goroutines;
// every call blocks until the drain completes.
func (g *Gate) Drain() {
	g.mu.Lock()
	g.closing = true
	if g.done == nil {
		g.done = sync.NewCond(&g.mu)
	}
	for g.active > 0 {
		g.done.Wait()
	}
	g.mu.Unlock()
}

// Draining reports whether Drain has begun (new Enter calls are refused).
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closing
}

// Active returns the number of currently admitted units of work.
func (g *Gate) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active
}
