// Package quantize implements linear activation quantization for the
// edge→cloud wire. The paper's communication cost model assumes dense
// float activations; quantizing the (noisy) activation to 8 or fewer bits
// shrinks the transmitted volume by 4-8× on top of Shredder's privacy, at
// a measurable accuracy cost that the benchmark harness ablates.
//
// Quantization is also privacy-relevant: it is a deterministic
// data-processing step, so by the data-processing inequality it can only
// reduce the mutual information between the input and what the cloud sees.
package quantize

import (
	"errors"
	"fmt"
	"math"

	"shredder/internal/tensor"
)

// ErrBadBits reports a bit width outside [1, 16]. Callers branching on the
// failure mode (CLI flag validation vs. wire handshake rejection) test with
// errors.Is.
var ErrBadBits = errors.New("quantize: bits out of [1,16]")

// ErrBadRange reports a clipping range that spans nothing: Hi <= Lo
// (including the degenerate Lo == Hi), or a NaN endpoint.
var ErrBadRange = errors.New("quantize: invalid clipping range")

// Scheme is a symmetric linear quantizer with a fixed bit width.
type Scheme struct {
	// Bits per value, in [1, 16]. One bit is the extreme sign-like
	// quantizer (two levels: Lo and Hi).
	Bits int
	// Lo and Hi are the clipping range the levels span.
	Lo, Hi float64
}

// NewScheme builds a quantizer covering [lo, hi] with 2^bits levels.
func NewScheme(bits int, lo, hi float64) (Scheme, error) {
	if bits < 1 || bits > 16 {
		return Scheme{}, fmt.Errorf("%w: %d", ErrBadBits, bits)
	}
	if !(hi > lo) {
		return Scheme{}, fmt.Errorf("%w: [%v, %v]", ErrBadRange, lo, hi)
	}
	return Scheme{Bits: bits, Lo: lo, Hi: hi}, nil
}

// Fit chooses a clipping range covering the central mass of the samples:
// [µ−kσ, µ+kσ] with k = 4, clamped to the observed min/max.
func Fit(sample *tensor.Tensor, bits int) (Scheme, error) {
	mean, std := sample.Mean(), sample.Std()
	lo := math.Max(sample.Min(), mean-4*std)
	hi := math.Min(sample.Max(), mean+4*std)
	if hi <= lo {
		hi = lo + 1e-9
	}
	return NewScheme(bits, lo, hi)
}

// Levels returns the number of representable values.
func (s Scheme) Levels() int { return 1 << s.Bits }

// step returns the quantization step size.
func (s Scheme) step() float64 { return (s.Hi - s.Lo) / float64(s.Levels()-1) }

// Quantize maps values to level indices, clipping to the range.
func (s Scheme) Quantize(x *tensor.Tensor) []uint16 {
	out := make([]uint16, x.Len())
	step := s.step()
	maxLevel := float64(s.Levels() - 1)
	for i, v := range x.Data() {
		q := math.Round((v - s.Lo) / step)
		if q < 0 {
			q = 0
		}
		if q > maxLevel {
			q = maxLevel
		}
		out[i] = uint16(q)
	}
	return out
}

// Dequantize reconstructs values from level indices into the given shape.
func (s Scheme) Dequantize(levels []uint16, shape ...int) *tensor.Tensor {
	out := tensor.New(shape...)
	step := s.step()
	d := out.Data()
	for i, q := range levels {
		d[i] = s.Lo + float64(q)*step
	}
	return out
}

// Dequantize32 reconstructs values from level indices directly into a
// float32 buffer — the zero-copy entry to a compiled Float32 inference
// plan. The level→value arithmetic runs in float64 (matching Dequantize)
// with a single final rounding to float32, so the result is exactly the
// float32 rounding of the float64 reconstruction.
func (s Scheme) Dequantize32(levels []uint16, shape ...int) *tensor.Tensor32 {
	out := tensor.NewDense[float32](shape...)
	step := s.step()
	d := out.Data()
	for i, q := range levels {
		d[i] = float32(s.Lo + float64(q)*step)
	}
	return out
}

// RoundTrip quantizes and dequantizes in one step — the wire simulation.
func (s Scheme) RoundTrip(x *tensor.Tensor) *tensor.Tensor {
	return s.Dequantize(s.Quantize(x), x.Shape()...)
}

// MaxError returns the worst-case reconstruction error for in-range
// values: half the step size.
func (s Scheme) MaxError() float64 { return s.step() / 2 }

// WireBytes returns the transmitted size of n values under this scheme
// (levels packed at Bits bits each, rounded up to whole bytes).
func (s Scheme) WireBytes(n int) int64 {
	return int64((n*s.Bits + 7) / 8)
}

// Pack tightens level indices to bits bits each in little-endian bit order,
// producing the WireBytes-sized representation the splitrt protocol ships.
// Levels must fit in bits bits (Quantize guarantees this for its output).
func Pack(levels []uint16, bits int) []byte {
	if bits < 1 || bits > 16 {
		panic(fmt.Errorf("%w: pack bits %d", ErrBadBits, bits))
	}
	out := make([]byte, (len(levels)*bits+7)/8)
	max := uint32(1)<<bits - 1
	bitPos := 0
	for _, lv := range levels {
		v := uint32(lv)
		if v > max {
			panic(fmt.Errorf("quantize: level %d does not fit in %d bits", lv, bits))
		}
		byteIdx, off := bitPos/8, bitPos%8
		// A value spans at most 3 bytes (16 bits starting mid-byte).
		wide := v << off
		out[byteIdx] |= byte(wide)
		if off+bits > 8 {
			out[byteIdx+1] |= byte(wide >> 8)
		}
		if off+bits > 16 {
			out[byteIdx+2] |= byte(wide >> 16)
		}
		bitPos += bits
	}
	return out
}

// Unpack reverses Pack, reading n levels of bits bits each. It returns an
// error (not a panic) on short input, because packed payloads arrive from
// the network and malformed ones must not crash a server.
func Unpack(packed []byte, bits, n int) ([]uint16, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("%w: unpack bits %d", ErrBadBits, bits)
	}
	if n < 0 {
		return nil, fmt.Errorf("quantize: unpack count %d negative", n)
	}
	need := (n*bits + 7) / 8
	if len(packed) != need {
		return nil, fmt.Errorf("quantize: packed payload is %d bytes, %d levels at %d bits need %d",
			len(packed), n, bits, need)
	}
	out := make([]uint16, n)
	mask := uint32(1)<<bits - 1
	bitPos := 0
	for i := range out {
		byteIdx, off := bitPos/8, bitPos%8
		wide := uint32(packed[byteIdx])
		if byteIdx+1 < len(packed) {
			wide |= uint32(packed[byteIdx+1]) << 8
		}
		if byteIdx+2 < len(packed) {
			wide |= uint32(packed[byteIdx+2]) << 16
		}
		out[i] = uint16((wide >> off) & mask)
		bitPos += bits
	}
	return out, nil
}

// QuantizePacked quantizes x and packs the levels in one step: the exact
// bytes the wire carries.
func (s Scheme) QuantizePacked(x *tensor.Tensor) []byte {
	return Pack(s.Quantize(x), s.Bits)
}

// DequantizePacked unpacks a wire payload and reconstructs the tensor.
func (s Scheme) DequantizePacked(packed []byte, shape ...int) (*tensor.Tensor, error) {
	levels, err := Unpack(packed, s.Bits, tensor.Volume(shape))
	if err != nil {
		return nil, err
	}
	return s.Dequantize(levels, shape...), nil
}

// DequantizePacked32 unpacks a wire payload and reconstructs a float32
// buffer: the dequantize-straight-into-target-dtype path a Float32-compiled
// cloud server feeds from, skipping the float64 intermediate entirely.
func (s Scheme) DequantizePacked32(packed []byte, shape ...int) (*tensor.Tensor32, error) {
	levels, err := Unpack(packed, s.Bits, tensor.Volume(shape))
	if err != nil {
		return nil, err
	}
	return s.Dequantize32(levels, shape...), nil
}

// MSE returns the mean squared reconstruction error of a round trip.
func (s Scheme) MSE(x *tensor.Tensor) float64 {
	rt := s.RoundTrip(x)
	d := tensor.Sub(rt, x)
	return d.SqSum() / float64(d.Len())
}
