// Package quantize implements linear activation quantization for the
// edge→cloud wire. The paper's communication cost model assumes dense
// float activations; quantizing the (noisy) activation to 8 or fewer bits
// shrinks the transmitted volume by 4-8× on top of Shredder's privacy, at
// a measurable accuracy cost that the benchmark harness ablates.
//
// Quantization is also privacy-relevant: it is a deterministic
// data-processing step, so by the data-processing inequality it can only
// reduce the mutual information between the input and what the cloud sees.
package quantize

import (
	"fmt"
	"math"

	"shredder/internal/tensor"
)

// Scheme is a symmetric linear quantizer with a fixed bit width.
type Scheme struct {
	// Bits per value, in [2, 16].
	Bits int
	// Lo and Hi are the clipping range the levels span.
	Lo, Hi float64
}

// NewScheme builds a quantizer covering [lo, hi] with 2^bits levels.
func NewScheme(bits int, lo, hi float64) (Scheme, error) {
	if bits < 2 || bits > 16 {
		return Scheme{}, fmt.Errorf("quantize: bits %d out of [2,16]", bits)
	}
	if !(hi > lo) {
		return Scheme{}, fmt.Errorf("quantize: invalid range [%v, %v]", lo, hi)
	}
	return Scheme{Bits: bits, Lo: lo, Hi: hi}, nil
}

// Fit chooses a clipping range covering the central mass of the samples:
// [µ−kσ, µ+kσ] with k = 4, clamped to the observed min/max.
func Fit(sample *tensor.Tensor, bits int) (Scheme, error) {
	mean, std := sample.Mean(), sample.Std()
	lo := math.Max(sample.Min(), mean-4*std)
	hi := math.Min(sample.Max(), mean+4*std)
	if hi <= lo {
		hi = lo + 1e-9
	}
	return NewScheme(bits, lo, hi)
}

// Levels returns the number of representable values.
func (s Scheme) Levels() int { return 1 << s.Bits }

// step returns the quantization step size.
func (s Scheme) step() float64 { return (s.Hi - s.Lo) / float64(s.Levels()-1) }

// Quantize maps values to level indices, clipping to the range.
func (s Scheme) Quantize(x *tensor.Tensor) []uint16 {
	out := make([]uint16, x.Len())
	step := s.step()
	maxLevel := float64(s.Levels() - 1)
	for i, v := range x.Data() {
		q := math.Round((v - s.Lo) / step)
		if q < 0 {
			q = 0
		}
		if q > maxLevel {
			q = maxLevel
		}
		out[i] = uint16(q)
	}
	return out
}

// Dequantize reconstructs values from level indices into the given shape.
func (s Scheme) Dequantize(levels []uint16, shape ...int) *tensor.Tensor {
	out := tensor.New(shape...)
	step := s.step()
	d := out.Data()
	for i, q := range levels {
		d[i] = s.Lo + float64(q)*step
	}
	return out
}

// RoundTrip quantizes and dequantizes in one step — the wire simulation.
func (s Scheme) RoundTrip(x *tensor.Tensor) *tensor.Tensor {
	return s.Dequantize(s.Quantize(x), x.Shape()...)
}

// MaxError returns the worst-case reconstruction error for in-range
// values: half the step size.
func (s Scheme) MaxError() float64 { return s.step() / 2 }

// WireBytes returns the transmitted size of n values under this scheme
// (levels packed at Bits bits each, rounded up to whole bytes).
func (s Scheme) WireBytes(n int) int64 {
	return int64((n*s.Bits + 7) / 8)
}

// MSE returns the mean squared reconstruction error of a round trip.
func (s Scheme) MSE(x *tensor.Tensor) float64 {
	rt := s.RoundTrip(x)
	d := tensor.Sub(rt, x)
	return d.SqSum() / float64(d.Len())
}
