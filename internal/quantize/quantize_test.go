package quantize

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"shredder/internal/tensor"
)

func TestNewSchemeValidation(t *testing.T) {
	cases := []struct {
		name    string
		bits    int
		lo, hi  float64
		wantErr error
	}{
		{"zero bits", 0, 0, 1, ErrBadBits},
		{"negative bits", -3, 0, 1, ErrBadBits},
		{"17 bits", 17, 0, 1, ErrBadBits},
		{"empty range", 8, 2, 2, ErrBadRange},
		{"inverted range", 8, 1, -1, ErrBadRange},
		{"nan lo", 8, math.NaN(), 1, ErrBadRange},
		{"nan hi", 8, 0, math.NaN(), ErrBadRange},
		{"one bit ok", 1, 0, 1, nil},
		{"sixteen bits ok", 16, -1, 1, nil},
	}
	for _, c := range cases {
		_, err := NewScheme(c.bits, c.lo, c.hi)
		if c.wantErr == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.wantErr) {
			t.Errorf("%s: error %v, want %v", c.name, err, c.wantErr)
		}
	}
	s, err := NewScheme(8, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 256 {
		t.Fatalf("levels = %d", s.Levels())
	}
}

// TestRoundTripExtremes table-tests the quantize→dequantize round trip at
// the boundary bit widths and at extreme clipping ranges.
func TestRoundTripExtremes(t *testing.T) {
	cases := []struct {
		name   string
		bits   int
		lo, hi float64
	}{
		{"one bit unit", 1, 0, 1},
		{"one bit symmetric", 1, -3, 3},
		{"two bit tiny range", 2, -1e-12, 1e-12},
		{"eight bit huge range", 8, -1e18, 1e18},
		{"sixteen bit asymmetric", 16, -1e-6, 1e12},
		{"sixteen bit unit", 16, -1, 1},
	}
	rng := tensor.NewRNG(77)
	for _, c := range cases {
		s, err := NewScheme(c.bits, c.lo, c.hi)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		span := c.hi - c.lo
		x := rng.FillUniform(tensor.New(64), c.lo-0.1*span, c.hi+0.1*span)
		rt := s.RoundTrip(x)
		for i, v := range rt.Data() {
			if v < c.lo || v > c.hi {
				t.Fatalf("%s: reconstructed value %v outside [%v, %v]", c.name, v, c.lo, c.hi)
			}
			in := x.Data()[i]
			if in >= c.lo && in <= c.hi {
				if err := math.Abs(v - in); err > s.MaxError()*(1+1e-9) {
					t.Fatalf("%s: in-range error %v exceeds MaxError %v", c.name, err, s.MaxError())
				}
			}
		}
		if c.bits == 1 {
			// One bit means exactly two representable values.
			for i, v := range rt.Data() {
				if v != c.lo && v != c.hi {
					t.Fatalf("%s: elem %d = %v, want %v or %v", c.name, i, v, c.lo, c.hi)
				}
			}
		}
		// The packed wire representation must survive the same trip.
		packed := s.QuantizePacked(x)
		back, err := s.DequantizePacked(packed, 64)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !tensor.Equal(back, rt) {
			t.Fatalf("%s: packed round trip diverges from dense round trip", c.name)
		}
	}
}

// TestDequantize32MatchesFloat64 checks the float32 dequantization paths
// are the float32 rounding of the float64 reconstruction, elementwise.
func TestDequantize32MatchesFloat64(t *testing.T) {
	rng := tensor.NewRNG(78)
	for _, bits := range []int{1, 4, 8, 16} {
		s, err := NewScheme(bits, -2.5, 3.25)
		if err != nil {
			t.Fatal(err)
		}
		x := rng.FillNormal(tensor.New(5, 7), 0, 2)
		levels := s.Quantize(x)
		want := s.Dequantize(levels, 5, 7)
		got := s.Dequantize32(levels, 5, 7)
		if !tensor.ShapeEq(got.Shape(), want.Shape()) {
			t.Fatalf("bits=%d: shape %v want %v", bits, got.Shape(), want.Shape())
		}
		for i, v := range got.Data() {
			if v != float32(want.Data()[i]) {
				t.Fatalf("bits=%d: elem %d = %v, want float32(%v)", bits, i, v, want.Data()[i])
			}
		}
		gotP, err := s.DequantizePacked32(s.QuantizePacked(x), 5, 7)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		for i, v := range gotP.Data() {
			if v != got.Data()[i] {
				t.Fatalf("bits=%d: packed f32 path diverges at %d", bits, i)
			}
		}
	}
	s8, _ := NewScheme(8, 0, 1)
	if _, err := s8.DequantizePacked32([]byte{1}, 4, 4); err == nil {
		t.Fatal("short packed payload must be rejected by DequantizePacked32")
	}
}

func TestRoundTripWithinMaxError(t *testing.T) {
	s, _ := NewScheme(8, -2, 2)
	rng := tensor.NewRNG(1)
	x := rng.FillUniform(tensor.New(1000), -2, 2)
	rt := s.RoundTrip(x)
	maxErr := s.MaxError()
	for i, v := range x.Data() {
		if math.Abs(rt.Data()[i]-v) > maxErr+1e-12 {
			t.Fatalf("value %v reconstructed as %v (max err %v)", v, rt.Data()[i], maxErr)
		}
	}
}

func TestClippingOutOfRange(t *testing.T) {
	s, _ := NewScheme(4, 0, 1)
	x := tensor.From([]float64{-5, 0.5, 9}, 3)
	rt := s.RoundTrip(x)
	if rt.At(0) != 0 || rt.At(2) != 1 {
		t.Fatalf("clipping failed: %v", rt)
	}
}

func TestEndpointsExactlyRepresentable(t *testing.T) {
	s, _ := NewScheme(3, -1, 1)
	x := tensor.From([]float64{-1, 1}, 2)
	rt := s.RoundTrip(x)
	if rt.At(0) != -1 || rt.At(1) != 1 {
		t.Fatalf("endpoints = %v", rt)
	}
}

func TestMoreBitsLessError(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := rng.FillNormal(tensor.New(5000), 0, 1)
	prev := math.Inf(1)
	for _, bits := range []int{2, 4, 8, 12} {
		s, _ := NewScheme(bits, -4, 4)
		mse := s.MSE(x)
		if mse >= prev {
			t.Fatalf("%d bits MSE %v not below previous %v", bits, mse, prev)
		}
		prev = mse
	}
}

func TestFitCoversSamples(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := rng.FillNormal(tensor.New(10000), 5, 2)
	s, err := Fit(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lo > x.Min()+1e-9 && s.Lo > 5-4*2-0.5 {
		t.Fatalf("fit lo %v does not cover sample mass", s.Lo)
	}
	// Reconstruction error should be small relative to the data scale.
	if mse := s.MSE(x); mse > 0.01 {
		t.Fatalf("8-bit fit MSE %v too large", mse)
	}
}

func TestFitConstantInput(t *testing.T) {
	x := tensor.New(100).Fill(3)
	s, err := Fit(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	rt := s.RoundTrip(x)
	if math.Abs(rt.At(0)-3) > 1e-6 {
		t.Fatalf("constant reconstruction = %v", rt.At(0))
	}
}

func TestWireBytes(t *testing.T) {
	s, _ := NewScheme(8, 0, 1)
	if got := s.WireBytes(100); got != 100 {
		t.Fatalf("8-bit WireBytes(100) = %d", got)
	}
	s4, _ := NewScheme(4, 0, 1)
	if got := s4.WireBytes(100); got != 50 {
		t.Fatalf("4-bit WireBytes(100) = %d", got)
	}
	s3, _ := NewScheme(3, 0, 1)
	if got := s3.WireBytes(3); got != 2 { // 9 bits → 2 bytes
		t.Fatalf("3-bit WireBytes(3) = %d", got)
	}
}

func TestPropertyQuantizeIdempotent(t *testing.T) {
	// Quantizing an already-quantized tensor is the identity.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		s, _ := NewScheme(2+rng.Intn(10), -3, 3)
		x := rng.FillNormal(tensor.New(64), 0, 1)
		once := s.RoundTrip(x)
		twice := s.RoundTrip(once)
		return tensor.AllClose(once, twice, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDequantizeInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		s, _ := NewScheme(2+rng.Intn(6), -1, 2)
		x := rng.FillNormal(tensor.New(32), 0, 5) // mostly out of range
		rt := s.RoundTrip(x)
		return rt.Min() >= s.Lo-1e-12 && rt.Max() <= s.Hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Bit packing — the wire format splitrt ships.
// ---------------------------------------------------------------------------

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(21)
	for bits := 1; bits <= 16; bits++ {
		for _, n := range []int{0, 1, 3, 8, 17, 64} {
			levels := make([]uint16, n)
			for i := range levels {
				levels[i] = uint16(rng.Intn(1 << bits))
			}
			packed := Pack(levels, bits)
			if want := (n*bits + 7) / 8; len(packed) != want {
				t.Fatalf("bits=%d n=%d: packed %d bytes, want %d", bits, n, len(packed), want)
			}
			got, err := Unpack(packed, bits, n)
			if err != nil {
				t.Fatalf("bits=%d n=%d: %v", bits, n, err)
			}
			for i := range levels {
				if got[i] != levels[i] {
					t.Fatalf("bits=%d n=%d: level %d round-tripped %d -> %d", bits, n, i, levels[i], got[i])
				}
			}
		}
	}
}

func TestPackedSizeMatchesWireBytes(t *testing.T) {
	rng := tensor.NewRNG(22)
	for _, bits := range []int{2, 5, 8, 11, 16} {
		s, err := NewScheme(bits, -1, 1)
		if err != nil {
			t.Fatal(err)
		}
		x := rng.FillNormal(tensor.New(257), 0, 1)
		packed := s.QuantizePacked(x)
		if int64(len(packed)) != s.WireBytes(x.Len()) {
			t.Fatalf("bits=%d: packed %d bytes, WireBytes says %d", bits, len(packed), s.WireBytes(x.Len()))
		}
		rt, err := s.DequantizePacked(packed, 257)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(rt, s.RoundTrip(x), 0) {
			t.Fatalf("bits=%d: packed round trip diverges from dense round trip", bits)
		}
	}
}

func TestUnpackRejectsMalformedPayloads(t *testing.T) {
	if _, err := Unpack([]byte{1, 2, 3}, 8, 16); err == nil {
		t.Fatal("short payload must be rejected")
	}
	if _, err := Unpack([]byte{1, 2, 3, 4}, 8, 2); err == nil {
		t.Fatal("oversized payload must be rejected")
	}
	if _, err := Unpack(nil, 0, 4); err == nil {
		t.Fatal("bits out of range must be rejected")
	}
	if _, err := Unpack(nil, 1, 4); err == nil {
		t.Fatal("short one-bit payload must be rejected")
	}
	if _, err := Unpack(nil, 8, -1); err == nil {
		t.Fatal("negative count must be rejected")
	}
	if _, err := Unpack(nil, 8, 0); err != nil {
		t.Fatalf("empty payload with zero count is valid: %v", err)
	}
}
