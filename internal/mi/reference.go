package mi

import (
	"fmt"
	"math"
)

// GaussianMI returns the closed-form mutual information, in bits, of a
// bivariate Gaussian with correlation rho: I = −½·log₂(1−ρ²). It is the
// analytic reference the estimator tests validate against.
func GaussianMI(rho float64) float64 {
	if rho <= -1 || rho >= 1 {
		panic(fmt.Sprintf("mi: correlation %v out of (-1,1)", rho))
	}
	return -0.5 * math.Log2(1-rho*rho)
}

// GaussianEntropy returns the differential entropy, in bits, of a
// d-dimensional isotropic Gaussian with per-coordinate variance sigma²:
// H = d/2·log₂(2πe·σ²).
func GaussianEntropy(d int, sigma float64) float64 {
	return float64(d) / 2 * math.Log2(2*math.Pi*math.E*sigma*sigma)
}

// UniformEntropy returns the differential entropy, in bits, of a
// d-dimensional uniform distribution on [0, w]^d: H = d·log₂(w).
func UniformEntropy(d int, w float64) float64 {
	return float64(d) * math.Log2(w)
}

// HistogramMI estimates I(X;Y) in bits for paired scalar samples by
// discretizing each variable into bins equal-width bins. It is a coarse,
// assumption-free cross-check for the kNN estimators on 1-D data.
func HistogramMI(x, y []float64, bins int) float64 {
	if len(x) != len(y) {
		panic("mi: HistogramMI needs paired samples")
	}
	if bins < 2 {
		panic("mi: HistogramMI needs at least 2 bins")
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	bx := discretize(x, bins)
	by := discretize(y, bins)
	joint := make([]float64, bins*bins)
	px := make([]float64, bins)
	py := make([]float64, bins)
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		joint[bx[i]*bins+by[i]] += inv
		px[bx[i]] += inv
		py[by[i]] += inv
	}
	mi := 0.0
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			p := joint[i*bins+j]
			if p > 0 {
				mi += p * math.Log2(p/(px[i]*py[j]))
			}
		}
	}
	return mi
}

func discretize(x []float64, bins int) []int {
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]int, len(x))
	if hi == lo {
		return out
	}
	scale := float64(bins) / (hi - lo)
	for i, v := range x {
		b := int((v - lo) * scale)
		if b >= bins {
			b = bins - 1
		}
		out[i] = b
	}
	return out
}
