package mi

import (
	"fmt"
	"math"
	"sort"

	"shredder/internal/tensor"
)

// Samples is a set of N points in D dimensions, row-major.
type Samples struct {
	N, D int
	X    []float64 // len N*D
}

// NewSamples wraps a flat buffer as a sample matrix.
func NewSamples(x []float64, n, d int) Samples {
	if len(x) != n*d {
		panic(fmt.Sprintf("mi: sample buffer has %d values, want %d×%d", len(x), n, d))
	}
	return Samples{N: n, D: d, X: x}
}

// FromTensor converts a batched tensor [N, ...] into samples by flattening
// each item.
func FromTensor(t *tensor.Tensor) Samples {
	n := t.Dim(0)
	d := t.Len() / n
	return NewSamples(t.Data(), n, d)
}

// Row returns sample i as a slice view.
func (s Samples) Row(i int) []float64 { return s.X[i*s.D : (i+1)*s.D] }

// Concat returns the joint sample set [a | b] of dimension a.D + b.D.
// Both sets must have the same N; row i of the result is a_i ++ b_i.
func Concat(a, b Samples) Samples {
	if a.N != b.N {
		panic(fmt.Sprintf("mi: Concat sample count mismatch %d vs %d", a.N, b.N))
	}
	d := a.D + b.D
	x := make([]float64, a.N*d)
	for i := 0; i < a.N; i++ {
		copy(x[i*d:], a.Row(i))
		copy(x[i*d+a.D:], b.Row(i))
	}
	return NewSamples(x, a.N, d)
}

// euclidean2 returns the squared Euclidean distance between rows.
func euclidean2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// chebyshev returns the max-norm distance between rows (used by KSG).
func chebyshev(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// kthNNDistances returns, for every point, its distance to the k-th nearest
// other point under the Euclidean norm. Brute force O(N²D), parallel over
// query points — exact, which matters more than speed at the sample counts
// the experiments use.
func kthNNDistances(s Samples, k int) []float64 {
	if k <= 0 || k >= s.N {
		panic(fmt.Sprintf("mi: k=%d out of range for %d samples", k, s.N))
	}
	out := make([]float64, s.N)
	tensor.ParallelFor(s.N, func(i int) {
		ri := s.Row(i)
		// Maintain the k smallest squared distances in a simple insertion
		// buffer — k is tiny (≤ 10).
		best := make([]float64, k)
		for j := range best {
			best[j] = math.Inf(1)
		}
		for j := 0; j < s.N; j++ {
			if j == i {
				continue
			}
			d2 := euclidean2(ri, s.Row(j))
			if d2 < best[k-1] {
				p := sort.SearchFloat64s(best, d2)
				copy(best[p+1:], best[p:k-1])
				best[p] = d2
			}
		}
		out[i] = math.Sqrt(best[k-1])
	})
	return out
}

// chebyshevKthNN returns per-point k-th NN distances under the max norm.
func chebyshevKthNN(s Samples, k int) []float64 {
	if k <= 0 || k >= s.N {
		panic(fmt.Sprintf("mi: k=%d out of range for %d samples", k, s.N))
	}
	out := make([]float64, s.N)
	tensor.ParallelFor(s.N, func(i int) {
		ri := s.Row(i)
		best := make([]float64, k)
		for j := range best {
			best[j] = math.Inf(1)
		}
		for j := 0; j < s.N; j++ {
			if j == i {
				continue
			}
			d := chebyshev(ri, s.Row(j))
			if d < best[k-1] {
				p := sort.SearchFloat64s(best, d)
				copy(best[p+1:], best[p:k-1])
				best[p] = d
			}
		}
		out[i] = best[k-1]
	})
	return out
}

// countWithin returns, for each point, how many other points lie strictly
// within radius r_i under the max norm over the given coordinate range
// [lo, hi) of the sample dimensions. Used by the KSG estimator's marginal
// counts.
func countWithin(s Samples, lo, hi int, r []float64) []int {
	out := make([]int, s.N)
	tensor.ParallelFor(s.N, func(i int) {
		ri := s.Row(i)[lo:hi]
		c := 0
		for j := 0; j < s.N; j++ {
			if j == i {
				continue
			}
			rj := s.Row(j)[lo:hi]
			m := 0.0
			for t := range ri {
				d := math.Abs(ri[t] - rj[t])
				if d > m {
					m = d
				}
			}
			if m < r[i] {
				c++
			}
		}
		out[i] = c
	})
	return out
}
