package mi

import (
	"math"
	"testing"

	"shredder/internal/tensor"
)

func TestDigammaKnownValues(t *testing.T) {
	const gamma = 0.5772156649015329
	cases := []struct{ x, want float64 }{
		{1, -gamma},
		{2, 1 - gamma},
		{3, 1.5 - gamma},
		{0.5, -gamma - 2*math.Ln2},
		{10, 2.2517525890667214},
	}
	for _, c := range cases {
		if got := Digamma(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsNaN(Digamma(-1)) {
		t.Error("Digamma of negative should be NaN")
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x must hold everywhere.
	for _, x := range []float64{0.3, 1.7, 4.2, 25} {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("recurrence violated at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func gaussianSamples(n, d int, sigma float64, seed int64) Samples {
	rng := tensor.NewRNG(seed)
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.Normal(0, sigma)
	}
	return NewSamples(x, n, d)
}

func TestKLEntropyGaussian1D(t *testing.T) {
	s := gaussianSamples(2000, 1, 2, 1)
	got := KLEntropy(s, Options{K: 3})
	want := GaussianEntropy(1, 2)
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("H(N(0,4)) = %v bits, want ~%v", got, want)
	}
}

func TestKLEntropyUniform2D(t *testing.T) {
	rng := tensor.NewRNG(2)
	n := 2000
	x := make([]float64, n*2)
	for i := range x {
		x[i] = rng.Uniform(0, 4)
	}
	got := KLEntropy(NewSamples(x, n, 2), Options{K: 3})
	want := UniformEntropy(2, 4)
	if math.Abs(got-want) > 0.2 {
		t.Fatalf("H(U[0,4]²) = %v bits, want ~%v", got, want)
	}
}

func TestKLEntropyScalesWithSigma(t *testing.T) {
	// H(N(0,σ²)) grows by log₂(4) = 2 bits when σ quadruples.
	h1 := KLEntropy(gaussianSamples(1500, 1, 1, 3), Options{})
	h4 := KLEntropy(gaussianSamples(1500, 1, 4, 4), Options{})
	if diff := h4 - h1; math.Abs(diff-2) > 0.3 {
		t.Fatalf("entropy gap = %v bits, want ~2", diff)
	}
}

// correlatedPairs draws (x, y) with y = ρx + √(1−ρ²)·z.
func correlatedPairs(n int, rho float64, seed int64) (Samples, Samples) {
	rng := tensor.NewRNG(seed)
	x := make([]float64, n)
	y := make([]float64, n)
	c := math.Sqrt(1 - rho*rho)
	for i := 0; i < n; i++ {
		x[i] = rng.Normal(0, 1)
		y[i] = rho*x[i] + c*rng.Normal(0, 1)
	}
	return NewSamples(x, n, 1), NewSamples(y, n, 1)
}

func TestMutualInformationGaussianReference(t *testing.T) {
	for _, rho := range []float64{0.5, 0.9} {
		x, y := correlatedPairs(1500, rho, 5)
		got := MutualInformation(x, y, Options{K: 3})
		want := GaussianMI(rho)
		if math.Abs(got-want) > 0.25 {
			t.Fatalf("I at rho=%v: got %v, want ~%v", rho, got, want)
		}
	}
}

func TestMutualInformationIndependentNearZero(t *testing.T) {
	x := gaussianSamples(1200, 2, 1, 6)
	y := gaussianSamples(1200, 2, 1, 7)
	got := MutualInformation(x, y, Options{K: 3})
	if math.Abs(got) > 0.3 {
		t.Fatalf("I(independent) = %v, want ~0", got)
	}
}

func TestKSGGaussianReference(t *testing.T) {
	for _, rho := range []float64{0.0, 0.6, 0.9} {
		x, y := correlatedPairs(1500, rho, 8)
		got := KSG(x, y, Options{K: 3})
		want := 0.0
		if rho != 0 {
			want = GaussianMI(rho)
		}
		if math.Abs(got-want) > 0.2 {
			t.Fatalf("KSG at rho=%v: got %v, want ~%v", rho, got, want)
		}
	}
}

func TestMIDecreasesWithAddedNoise(t *testing.T) {
	// The core behaviour Shredder relies on: I(x, x+noise) falls as the
	// noise variance grows.
	rng := tensor.NewRNG(9)
	n, d := 800, 4
	x := gaussianSamples(n, d, 1, 10)
	miAt := func(sigma float64) float64 {
		y := make([]float64, n*d)
		copy(y, x.X)
		for i := range y {
			y[i] += rng.Normal(0, sigma)
		}
		return MutualInformation(x, NewSamples(y, n, d), Options{K: 3})
	}
	clean := miAt(0.01)
	noisy := miAt(1)
	noisier := miAt(5)
	if !(clean > noisy && noisy > noisier) {
		t.Fatalf("MI not monotone in noise: %v, %v, %v", clean, noisy, noisier)
	}
}

func TestCalibratedMIGaussianReference(t *testing.T) {
	x, y := correlatedPairs(1500, 0.9, 20)
	got := MutualInformationCalibrated(x, y, Options{K: 3, Seed: 1})
	want := GaussianMI(0.9)
	if math.Abs(got-want) > 0.3 {
		t.Fatalf("calibrated MI at rho=0.9: got %v, want ~%v", got, want)
	}
}

func TestCalibratedMIIndependentNearZero(t *testing.T) {
	x := gaussianSamples(1000, 3, 1, 21)
	y := gaussianSamples(1000, 3, 1, 22)
	if got := MutualInformationCalibrated(x, y, Options{K: 3, Seed: 2}); math.Abs(got) > 0.3 {
		t.Fatalf("calibrated MI on independent = %v, want ~0", got)
	}
}

func TestCalibratedMIPositiveForDeterministicHighDim(t *testing.T) {
	// The motivating case: a high-dimensional deterministic map at modest N
	// drives the raw 3-entropy estimate negative, while the calibrated
	// estimate stays clearly positive.
	rng := tensor.NewRNG(23)
	n, d := 300, 40
	x := gaussianSamples(n, d, 1, 24)
	y := make([]float64, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := x.Row(i)[j]
			y[i*d+j] = v*v + 0.5*v // deterministic nonlinear map
		}
	}
	ys := NewSamples(y, n, d)
	cal := MutualInformationCalibrated(x, ys, Options{K: 3, Seed: 3})
	if cal < 2 {
		t.Fatalf("calibrated MI for deterministic high-dim map = %v, want strongly positive", cal)
	}
	_ = rng
}

func TestCalibratedMIShiftInvariant(t *testing.T) {
	// Adding a constant offset to Y must not change MI — the property that
	// makes a single fixed noise tensor worthless for privacy.
	x, y := correlatedPairs(800, 0.8, 25)
	shifted := make([]float64, len(y.X))
	for i, v := range y.X {
		shifted[i] = v + 100
	}
	o := Options{K: 3, Seed: 4}
	a := MutualInformationCalibrated(x, y, o)
	b := MutualInformationCalibrated(x, NewSamples(shifted, y.N, y.D), o)
	if math.Abs(a-b) > 0.15 {
		t.Fatalf("calibrated MI not shift invariant: %v vs %v", a, b)
	}
}

func TestCalibratedMIDecreasesWithNoise(t *testing.T) {
	rng := tensor.NewRNG(26)
	n, d := 500, 6
	x := gaussianSamples(n, d, 1, 27)
	noisyAt := func(sigma float64) float64 {
		y := make([]float64, n*d)
		copy(y, x.X)
		for i := range y {
			y[i] += rng.Normal(0, sigma)
		}
		return MutualInformationCalibrated(x, NewSamples(y, n, d), Options{K: 3, Seed: 5})
	}
	lo, mid, hi := noisyAt(0.05), noisyAt(0.5), noisyAt(3)
	if !(lo > mid && mid > hi) {
		t.Fatalf("calibrated MI not monotone in noise: %v, %v, %v", lo, mid, hi)
	}
}

func TestHistogramMIAgreesOnCorrelated(t *testing.T) {
	x, y := correlatedPairs(5000, 0.9, 11)
	got := HistogramMI(x.X, y.X, 16)
	want := GaussianMI(0.9)
	// Histogram estimator is coarse; just demand the right ballpark.
	if math.Abs(got-want) > 0.35 {
		t.Fatalf("histogram MI = %v, want ~%v", got, want)
	}
	xi, yi := correlatedPairs(5000, 0.0, 12)
	if ind := HistogramMI(xi.X, yi.X, 16); ind > 0.15 {
		t.Fatalf("histogram MI on independent = %v, want ~0", ind)
	}
}

func TestRandomProjectPreservesScaleRoughly(t *testing.T) {
	s := gaussianSamples(200, 100, 1, 13)
	p := RandomProject(s, 20, 14)
	if p.N != 200 || p.D != 20 {
		t.Fatalf("projected dims %dx%d", p.N, p.D)
	}
	// Mean squared norm per retained dim should be roughly preserved:
	// E‖Px‖² = ‖x‖²·(dim/D)... with our 1/√dim scaling E‖Px‖² ≈ ‖x‖²·D/dim/D = ‖x‖²/dim·... just check same order.
	var n0, n1 float64
	for i := 0; i < s.N; i++ {
		for _, v := range s.Row(i) {
			n0 += v * v
		}
		for _, v := range p.Row(i) {
			n1 += v * v
		}
	}
	ratio := n1 / n0
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("projection norm ratio = %v, want O(1)", ratio)
	}
}

func TestOptionsSubsamplingCapsWork(t *testing.T) {
	x := gaussianSamples(500, 8, 1, 15)
	y := gaussianSamples(500, 8, 1, 16)
	// Must not panic and must produce a finite value with tight caps.
	got := MutualInformation(x, y, Options{K: 3, MaxSamples: 100, MaxDim: 4, Seed: 1})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("capped MI = %v", got)
	}
}

func TestMIDeterministicGivenSeed(t *testing.T) {
	x := gaussianSamples(300, 6, 1, 17)
	y := gaussianSamples(300, 6, 1, 18)
	o := Options{K: 3, MaxSamples: 150, MaxDim: 3, Seed: 42}
	a := MutualInformation(x, y, o)
	b := MutualInformation(x, y, o)
	if a != b {
		t.Fatalf("same options, different results: %v vs %v", a, b)
	}
}

func TestDuplicatePointsDoNotExplode(t *testing.T) {
	// All-identical samples: jitter must keep the estimator finite.
	x := NewSamples(make([]float64, 100*3), 100, 3)
	h := KLEntropy(x, Options{K: 3, Jitter: 1e-6})
	if math.IsNaN(h) || math.IsInf(h, 0) {
		t.Fatalf("entropy of duplicates = %v", h)
	}
}

func TestConcatLayout(t *testing.T) {
	a := NewSamples([]float64{1, 2, 3, 4}, 2, 2)
	b := NewSamples([]float64{10, 20}, 2, 1)
	j := Concat(a, b)
	if j.D != 3 || j.N != 2 {
		t.Fatalf("joint dims %dx%d", j.N, j.D)
	}
	want := []float64{1, 2, 10, 3, 4, 20}
	for i, v := range want {
		if j.X[i] != v {
			t.Fatalf("joint layout = %v, want %v", j.X, want)
		}
	}
}

func TestFromTensor(t *testing.T) {
	tt := tensor.From([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2, 2, 2)
	s := FromTensor(tt)
	if s.N != 2 || s.D != 4 {
		t.Fatalf("FromTensor dims %dx%d", s.N, s.D)
	}
	if s.Row(1)[0] != 5 {
		t.Fatalf("FromTensor row layout wrong: %v", s.Row(1))
	}
}

func TestKthNNKnownConfiguration(t *testing.T) {
	// Points on a line at 0, 1, 3, 7: 1st NN distances are 1,1,2,4.
	s := NewSamples([]float64{0, 1, 3, 7}, 4, 1)
	got := kthNNDistances(s, 1)
	want := []float64{1, 1, 2, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("kthNN = %v, want %v", got, want)
		}
	}
	// 2nd NN distances: 3,2,3,6.
	got2 := kthNNDistances(s, 2)
	want2 := []float64{3, 2, 3, 6}
	for i := range want2 {
		if math.Abs(got2[i]-want2[i]) > 1e-12 {
			t.Fatalf("2nd NN = %v, want %v", got2, want2)
		}
	}
}

func TestKOutOfRangePanics(t *testing.T) {
	s := gaussianSamples(5, 1, 1, 19)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k >= N")
		}
	}()
	kthNNDistances(s, 5)
}
