package mi

import (
	"fmt"
	"math"

	"shredder/internal/tensor"
)

const log2e = 1.4426950408889634 // 1/ln 2, nats → bits

// Options configures the kNN estimators.
type Options struct {
	// K is the neighbour order (default 3). Small K lowers bias, raises
	// variance.
	K int
	// MaxSamples caps the number of points used (0 = all). Estimation is
	// O(N²D); the experiments use a few hundred points.
	MaxSamples int
	// MaxDim randomly projects samples above this dimension down to it
	// (0 = no projection). Projection approximately preserves the distance
	// geometry the kNN estimators rely on (Johnson–Lindenstrauss).
	MaxDim int
	// Seed drives subsampling and projection.
	Seed int64
	// Jitter adds iid N(0, Jitter²) to every coordinate before estimation
	// to break ties between duplicate points (default 1e-10).
	Jitter float64
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 3
	}
	if o.Jitter == 0 {
		o.Jitter = 1e-10
	}
	return o
}

// prepare applies subsampling, projection and jitter per Options.
func prepare(s Samples, o Options, seedOffset int64) Samples {
	rng := tensor.NewRNG(o.Seed + seedOffset)
	if o.MaxSamples > 0 && s.N > o.MaxSamples {
		idx := rng.Perm(s.N)[:o.MaxSamples]
		x := make([]float64, o.MaxSamples*s.D)
		for i, j := range idx {
			copy(x[i*s.D:], s.Row(j))
		}
		s = NewSamples(x, o.MaxSamples, s.D)
	}
	if o.MaxDim > 0 && s.D > o.MaxDim {
		s = RandomProject(s, o.MaxDim, rng.Int63())
	}
	if o.Jitter > 0 {
		x := make([]float64, len(s.X))
		copy(x, s.X)
		for i := range x {
			x[i] += rng.Normal(0, o.Jitter)
		}
		s = NewSamples(x, s.N, s.D)
	}
	return s
}

// RandomProject maps samples to dim dimensions with a seeded Gaussian
// projection matrix scaled by 1/√dim.
func RandomProject(s Samples, dim int, seed int64) Samples {
	rng := tensor.NewRNG(seed)
	proj := rng.FillNormal(tensor.New(s.D, dim), 0, 1/math.Sqrt(float64(dim)))
	x := tensor.MatMul(tensor.From(s.X, s.N, s.D), proj)
	return NewSamples(x.Data(), s.N, dim)
}

// logUnitBallVolume returns ln V_d of the d-dimensional unit Euclidean
// ball: V_d = π^{d/2} / Γ(d/2 + 1).
func logUnitBallVolume(d int) float64 {
	lg, _ := math.Lgamma(float64(d)/2 + 1)
	return float64(d)/2*math.Log(math.Pi) - lg
}

// KLEntropy estimates the differential entropy H(X) in bits with the
// Kozachenko–Leonenko k-NN estimator:
//
//	H ≈ ψ(N) − ψ(k) + ln V_d + (d/N)·Σᵢ ln εᵢ        (nats)
//
// where εᵢ is the distance from sample i to its k-th nearest neighbour.
func KLEntropy(s Samples, o Options) float64 {
	o = o.withDefaults()
	s = prepare(s, o, 1)
	if s.N <= o.K {
		panic(fmt.Sprintf("mi: need more than K=%d samples, have %d", o.K, s.N))
	}
	eps := kthNNDistances(s, o.K)
	sumLog := 0.0
	for _, e := range eps {
		if e <= 0 {
			e = 1e-300
		}
		sumLog += math.Log(e)
	}
	n := float64(s.N)
	d := float64(s.D)
	nats := Digamma(n) - Digamma(float64(o.K)) + logUnitBallVolume(s.D) + d/n*sumLog
	return nats * log2e
}

// MutualInformation estimates I(X;Y) in bits as H(X) + H(Y) − H(X,Y) with
// Kozachenko–Leonenko entropies — the Shannon-MI-from-entropies construction
// the paper uses via the ITE toolbox ("Shannon Mutual Information with KL
// Divergence"). X and Y must be paired samples with equal N.
//
// Differential MI of high-dimensional continuous vectors can be large
// (hundreds to thousands of bits), matching the magnitudes in the paper's
// Table 1. Values can also be negative for weakly dependent data at small N
// (estimator bias); callers that need a privacy ratio should clamp at zero.
func MutualInformation(x, y Samples, o Options) float64 {
	o = o.withDefaults()
	// Prepare once so the joint uses the same subsample/projection/jitter
	// as the marginals: prepare the pair jointly by concatenating first and
	// splitting the options' budget across both blocks.
	if x.N != y.N {
		panic(fmt.Sprintf("mi: paired sample count mismatch %d vs %d", x.N, y.N))
	}
	// Subsample pairs jointly.
	rng := tensor.NewRNG(o.Seed + 7)
	if o.MaxSamples > 0 && x.N > o.MaxSamples {
		idx := rng.Perm(x.N)[:o.MaxSamples]
		x = subsetRows(x, idx)
		y = subsetRows(y, idx)
	}
	if o.MaxDim > 0 {
		if x.D > o.MaxDim {
			x = RandomProject(x, o.MaxDim, o.Seed+11)
		}
		if y.D > o.MaxDim {
			y = RandomProject(y, o.MaxDim, o.Seed+13)
		}
	}
	if o.Jitter > 0 {
		x = jitter(x, o.Jitter, o.Seed+17)
		y = jitter(y, o.Jitter, o.Seed+19)
	}
	joint := Concat(x, y)
	hx := klEntropyRaw(x, o.K)
	hy := klEntropyRaw(y, o.K)
	hxy := klEntropyRaw(joint, o.K)
	return hx + hy - hxy
}

// klEntropyRaw is KLEntropy without preprocessing.
func klEntropyRaw(s Samples, k int) float64 {
	if s.N <= k {
		panic(fmt.Sprintf("mi: need more than K=%d samples, have %d", k, s.N))
	}
	eps := kthNNDistances(s, k)
	sumLog := 0.0
	for _, e := range eps {
		if e <= 0 {
			e = 1e-300
		}
		sumLog += math.Log(e)
	}
	n := float64(s.N)
	d := float64(s.D)
	nats := Digamma(n) - Digamma(float64(k)) + logUnitBallVolume(s.D) + d/n*sumLog
	return nats * log2e
}

func subsetRows(s Samples, idx []int) Samples {
	x := make([]float64, len(idx)*s.D)
	for i, j := range idx {
		copy(x[i*s.D:], s.Row(j))
	}
	return NewSamples(x, len(idx), s.D)
}

func jitter(s Samples, sigma float64, seed int64) Samples {
	rng := tensor.NewRNG(seed)
	x := make([]float64, len(s.X))
	copy(x, s.X)
	for i := range x {
		x[i] += rng.Normal(0, sigma)
	}
	return NewSamples(x, s.N, s.D)
}

// MutualInformationCalibrated estimates I(X;Y) in bits with a permutation
// baseline: Î_cal = Î(X;Y) − Î(X;Y_perm), where Y_perm is Y with rows
// shuffled to destroy the pairing. Since the marginal entropies cancel,
// this reduces to
//
//	Î_cal = Ĥ(X, Y_perm) − Ĥ(X, Y)
//
// with Kozachenko–Leonenko joint entropies. The baseline removes the large
// dimensionality-dependent bias of the raw 3-entropy construction (which
// can report negative values for strongly dependent high-dimensional data
// at realistic sample counts), yielding a non-negative-in-expectation
// dependence measure that is zero for independent pairs. This is the
// estimator the experiment harness reports as "MI" for Table 1/Figures 3,
// 5, 6; see EXPERIMENTS.md for the calibration discussion.
func MutualInformationCalibrated(x, y Samples, o Options) float64 {
	o = o.withDefaults()
	if x.N != y.N {
		panic(fmt.Sprintf("mi: paired sample count mismatch %d vs %d", x.N, y.N))
	}
	rng := tensor.NewRNG(o.Seed + 43)
	if o.MaxSamples > 0 && x.N > o.MaxSamples {
		idx := rng.Perm(x.N)[:o.MaxSamples]
		x = subsetRows(x, idx)
		y = subsetRows(y, idx)
	}
	if o.MaxDim > 0 {
		if x.D > o.MaxDim {
			x = RandomProject(x, o.MaxDim, o.Seed+47)
		}
		if y.D > o.MaxDim {
			y = RandomProject(y, o.MaxDim, o.Seed+53)
		}
	}
	if o.Jitter > 0 {
		x = jitter(x, o.Jitter, o.Seed+59)
		y = jitter(y, o.Jitter, o.Seed+61)
	}
	perm := rng.Perm(y.N)
	yPerm := subsetRows(y, perm)
	hJoint := klEntropyRaw(Concat(x, y), o.K)
	hBase := klEntropyRaw(Concat(x, yPerm), o.K)
	return hBase - hJoint
}

// KSG estimates I(X;Y) in bits with the Kraskov–Stögbauer–Grassberger
// estimator (algorithm 1):
//
//	I ≈ ψ(k) + ψ(N) − ⟨ψ(n_x+1) + ψ(n_y+1)⟩      (nats)
//
// where n_x, n_y count neighbours within the joint k-NN max-norm radius in
// each marginal. KSG is better behaved than the 3-entropy construction for
// low-dimensional data; the experiments use it for cross-validation of MI
// trends.
func KSG(x, y Samples, o Options) float64 {
	o = o.withDefaults()
	if x.N != y.N {
		panic(fmt.Sprintf("mi: paired sample count mismatch %d vs %d", x.N, y.N))
	}
	rng := tensor.NewRNG(o.Seed + 23)
	if o.MaxSamples > 0 && x.N > o.MaxSamples {
		idx := rng.Perm(x.N)[:o.MaxSamples]
		x = subsetRows(x, idx)
		y = subsetRows(y, idx)
	}
	if o.MaxDim > 0 {
		if x.D > o.MaxDim {
			x = RandomProject(x, o.MaxDim, o.Seed+29)
		}
		if y.D > o.MaxDim {
			y = RandomProject(y, o.MaxDim, o.Seed+31)
		}
	}
	if o.Jitter > 0 {
		x = jitter(x, o.Jitter, o.Seed+37)
		y = jitter(y, o.Jitter, o.Seed+41)
	}
	joint := Concat(x, y)
	r := chebyshevKthNN(joint, o.K)
	nx := countWithin(joint, 0, x.D, r)
	ny := countWithin(joint, x.D, x.D+y.D, r)
	n := x.N
	avg := 0.0
	for i := 0; i < n; i++ {
		avg += Digamma(float64(nx[i]+1)) + Digamma(float64(ny[i]+1))
	}
	avg /= float64(n)
	nats := Digamma(float64(o.K)) + Digamma(float64(n)) - avg
	return nats * log2e
}
