// Package mi implements the mutual-information machinery behind Shredder's
// "ex vivo" privacy metric (1/MI): Kozachenko–Leonenko k-nearest-neighbour
// differential entropy, Shannon mutual information assembled from entropies
// (the estimator family the paper uses via the ITE toolbox), the KSG
// estimator, a closed-form Gaussian reference, and a histogram estimator.
// All results are reported in bits.
//
// The estimators operate on sample matrices of shape [N, D]. For the very
// high-dimensional tensors that arise at AlexNet scale, Flatten and
// RandomProject reduce activations to a tractable dimension while
// approximately preserving the geometry the kNN estimators depend on.
package mi

import "math"

// Digamma returns the digamma function ψ(x) for x > 0, via the recurrence
// ψ(x) = ψ(x+1) − 1/x and the asymptotic series for large x. Accuracy is
// better than 1e-10 for x ≥ 1e-3, which covers every use in this package
// (arguments are sample counts).
func Digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − Σ B₂ₙ/(2n·x²ⁿ).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132)))))
	return result
}
