package attack

import (
	"shredder/internal/core"
	"shredder/internal/tensor"
)

// GalleryResult summarizes an identification attack: the adversary holds a
// gallery of candidate inputs (e.g. a set of known faces or documents) and,
// observing a transmitted activation, picks the candidate whose activation
// is nearest. Top1 is the fraction of observations identified exactly.
type GalleryResult struct {
	Trials int
	Hits   int
	Top1   float64
}

// GalleryIdentify runs the identification attack over the first trials
// samples of inputs, using the whole batch as the adversary's gallery.
// When col is non-nil the observations carry per-sample Shredder noise; the
// gallery activations are always clean (the adversary computes them itself
// with white-box access to L).
func GalleryIdentify(split *core.Split, inputs *tensor.Tensor, col *core.Collection, trials int, seed int64) GalleryResult {
	n := inputs.Dim(0)
	if trials > n {
		trials = n
	}
	rng := tensor.NewRNG(seed)

	// Precompute the gallery: clean activation per candidate.
	gallery := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		x := inputs.Slice(i).Reshape(append([]int{1}, split.InShape...)...)
		gallery[i] = split.Local(x).Slice(0).Clone()
	}

	res := GalleryResult{Trials: trials}
	for i := 0; i < trials; i++ {
		obs := gallery[i].Clone()
		if col != nil {
			obs.AddInPlace(col.Sample(rng))
		}
		best, bestDist := -1, 0.0
		for j := 0; j < n; j++ {
			d := tensor.Sub(obs, gallery[j]).SqSum()
			if best < 0 || d < bestDist {
				best, bestDist = j, d
			}
		}
		if best == i {
			res.Hits++
		}
	}
	if trials > 0 {
		res.Top1 = float64(res.Hits) / float64(trials)
	}
	return res
}
