package attack

import (
	"math"
	"testing"

	"shredder/internal/core"
	"shredder/internal/model"
	"shredder/internal/noisedist"
	"shredder/internal/tensor"
)

func attackRig(t *testing.T) (*core.Split, *model.Pretrained) {
	t.Helper()
	pre, err := model.Train(model.LeNet(), model.TrainConfig{TrainN: 300, TestN: 60, Epochs: 2, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Attack the shallowest cut: conv0 activations retain the most input
	// information, so inversion is meaningful there.
	layer, err := pre.Spec.CutLayer("conv0")
	if err != nil {
		t.Fatal(err)
	}
	split, err := core.NewSplit(pre.Net, layer, pre.Spec.Dataset.SampleShape())
	if err != nil {
		t.Fatal(err)
	}
	return split, pre
}

func TestInvertRecoversFromCleanActivation(t *testing.T) {
	split, pre := attackRig(t)
	x := pre.Test.Images.Slice(0).Reshape(1, 1, 28, 28)
	a := split.Local(x)
	res := Invert(split, a, x, Config{Steps: 250, Seed: 1})
	if res.ActivationMSE > 0.05 {
		t.Fatalf("attack failed to match clean activation: MSE %v", res.ActivationMSE)
	}
	// The reconstruction must be far better than a random guess.
	guess := tensor.NewRNG(2).FillNormal(tensor.New(1, 1, 28, 28), 0, 0.5)
	d := tensor.Sub(guess.Flatten(), x.Flatten())
	randMSE := d.SqSum() / float64(d.Len())
	if res.InputMSE >= randMSE*0.8 {
		t.Fatalf("clean-activation reconstruction (MSE %v) no better than random (%v)", res.InputMSE, randMSE)
	}
}

func TestNoiseDegradesInversion(t *testing.T) {
	split, pre := attackRig(t)
	// Heavy untrained Laplace noise: enough to wreck the observation.
	rng := tensor.NewRNG(3)
	col := &core.Collection{}
	for i := 0; i < 4; i++ {
		col.Add(core.NewNoiseTensor(split.ActivationShape(), 0, 3, rng), 1)
	}
	clean, shredded := Evaluate(split, pre.Test.Images, col, 2, Config{Steps: 200, Seed: 4})
	if shredded <= clean {
		t.Fatalf("noise should hurt reconstruction: clean MSE %v, shredded MSE %v", clean, shredded)
	}
}

// TestFittedSourcesResistInversion runs the inversion adversary against
// every deployment mode of the same trained-noise stand-in: stored replay,
// fitted per-query sampling, and multiplicative fitted-mul. Fresh sampling
// must degrade reconstruction at least comparably to replaying the stored
// members — the fitted modes exist to shrink memory, not to leak more.
func TestFittedSourcesResistInversion(t *testing.T) {
	split, pre := attackRig(t)
	rng := tensor.NewRNG(5)
	col := &core.Collection{}
	for i := 0; i < 4; i++ {
		col.AddMember(
			core.NewNoiseTensor(split.ActivationShape(), 0, 3, rng),
			core.NewWeightTensor(split.ActivationShape(), 1, 0.3, rng), 0)
	}
	fitted, err := core.FitCollection(col, noisedist.Laplace)
	if err != nil {
		t.Fatal(err)
	}
	if fitted.Mode() != core.ModeFittedMul {
		t.Fatalf("weighted fit deployed as %q", fitted.Mode())
	}
	// The additive baseline replays the same noise members without weights.
	additive := &core.Collection{Shape: split.ActivationShape(), Members: col.Members, InVivo: col.InVivo}
	fittedAdd, err := core.FitCollection(additive, noisedist.Laplace)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Steps: 150, Seed: 6}
	clean, stored := Evaluate(split, pre.Test.Images, additive, 1, cfg)
	_, fresh := Evaluate(split, pre.Test.Images, fittedAdd, 1, cfg)
	_, mul := Evaluate(split, pre.Test.Images, fitted, 1, cfg)
	t.Logf("inversion MSE: clean %.4f, stored %.4f, fitted %.4f, fitted-mul %.4f",
		clean, stored, fresh, mul)
	for name, got := range map[string]float64{"fitted": fresh, "fitted-mul": mul} {
		if got <= clean {
			t.Errorf("%s source did not degrade inversion: shredded MSE %.4f <= clean %.4f", name, got, clean)
		}
		// "At least as well as stored replay", with slack for sampling
		// variance between a 4-member replay and a fresh draw.
		if got < 0.7*stored {
			t.Errorf("%s source resists far worse than stored replay: %.4f vs %.4f", name, got, stored)
		}
	}
}

func TestInvertDeterministic(t *testing.T) {
	split, pre := attackRig(t)
	x := pre.Test.Images.Slice(1).Reshape(1, 1, 28, 28)
	a := split.Local(x)
	r1 := Invert(split, a, x, Config{Steps: 50, Seed: 9})
	r2 := Invert(split, a, x, Config{Steps: 50, Seed: 9})
	if !tensor.Equal(r1.Reconstruction, r2.Reconstruction) {
		t.Fatal("same seed must reproduce the same reconstruction")
	}
}

func TestInvertWithoutTrueInput(t *testing.T) {
	split, pre := attackRig(t)
	x := pre.Test.Images.Slice(2).Reshape(1, 1, 28, 28)
	a := split.Local(x)
	res := Invert(split, a, nil, Config{Steps: 20, Seed: 5})
	if res.InputMSE != 0 {
		t.Fatal("InputMSE should be 0 when the true input is withheld")
	}
	if !res.Reconstruction.AllFinite() {
		t.Fatal("reconstruction diverged")
	}
}

func TestPSNR(t *testing.T) {
	if got := PSNR(0.01, 1); math.Abs(got-20) > 1e-9 {
		t.Fatalf("PSNR(0.01, 1) = %v, want 20", got)
	}
	if !math.IsInf(PSNR(0, 1), 1) {
		t.Fatal("zero MSE should be infinite PSNR")
	}
}

func TestGalleryIdentifyCleanIsPerfect(t *testing.T) {
	split, pre := attackRig(t)
	res := GalleryIdentify(split, pre.Test.Images.Slice(0).Reshape(1, 1, 28, 28), nil, 1, 1)
	if res.Top1 != 1 {
		t.Fatalf("singleton gallery should be trivially identified: %+v", res)
	}
	full := GalleryIdentify(split, pre.Test.Images, nil, 20, 1)
	if full.Top1 != 1 {
		t.Fatalf("clean observations must be perfectly identifiable: %+v", full)
	}
}

func TestGalleryIdentifyNoiseReducesTop1(t *testing.T) {
	split, pre := attackRig(t)
	rng := tensor.NewRNG(7)
	col := &core.Collection{}
	for i := 0; i < 6; i++ {
		col.Add(core.NewNoiseTensor(split.ActivationShape(), 0, 5, rng), 1)
	}
	clean := GalleryIdentify(split, pre.Test.Images, nil, 30, 8)
	noisy := GalleryIdentify(split, pre.Test.Images, col, 30, 8)
	if noisy.Top1 >= clean.Top1 {
		t.Fatalf("noise should reduce identification: clean %.2f, noisy %.2f", clean.Top1, noisy.Top1)
	}
	if noisy.Trials != 30 {
		t.Fatalf("trials = %d", noisy.Trials)
	}
}
