// Package attack implements a model-inversion adversary against split
// inference: given the activation a (or noisy activation a′) transmitted to
// the cloud and white-box access to the edge network L, the attacker
// gradient-descends an input estimate x̂ to minimize ‖L(x̂) − a′‖².
//
// This operationalizes the paper's mutual-information privacy metric: when
// I(x; a′) is high the attack recovers the input well, and as Shredder
// shreds that information the reconstruction degrades. The benchmark
// harness reports reconstruction error with and without Shredder noise as
// an extension experiment (not in the paper's evaluation, but implied by
// its threat model).
package attack

import (
	"math"

	"shredder/internal/core"
	"shredder/internal/nn"
	"shredder/internal/optim"
	"shredder/internal/tensor"
)

// Config controls the inversion attack.
type Config struct {
	// Steps of gradient descent (default 300).
	Steps int
	// LR is the Adam learning rate over the input estimate (default 0.05).
	LR float64
	// Seed drives the initial guess.
	Seed int64
	// Init is the standard deviation of the random initial guess
	// (default 0.5, roughly the scale of normalized inputs).
	Init float64
}

func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 300
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Init == 0 {
		c.Init = 0.5
	}
	return c
}

// Result is the outcome of one inversion attempt.
type Result struct {
	// Reconstruction is the attacker's input estimate [1, C, H, W].
	Reconstruction *tensor.Tensor
	// ActivationMSE is the final ‖L(x̂) − target‖²/n — how well the
	// attacker matched the observation.
	ActivationMSE float64
	// InputMSE is ‖x̂ − x‖²/n against the true input (for evaluation; the
	// attacker does not see it).
	InputMSE float64
}

// Invert runs the inversion attack against one transmitted activation.
// target must be a single-sample activation batch [1, ...]; trueInput (may
// be nil) is used only to report InputMSE.
func Invert(split *core.Split, target *tensor.Tensor, trueInput *tensor.Tensor, cfg Config) Result {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	shape := append([]int{1}, split.InShape...)
	xhat := nn.NewParam("xhat", rng.FillNormal(tensor.New(shape...), 0, cfg.Init))
	opt := optim.NewAdam([]*nn.Param{xhat}, cfg.LR)

	// The attack differentiates through frozen L: a private frozen tape
	// makes the loop reentrant (concurrent inversions share one Split) and
	// skips the useless ∂loss/∂θ work.
	tape := nn.NewFrozenTape()
	tape.RNG = tensor.NewRNG(cfg.Seed + 1)

	n := float64(target.Len())
	var lastMSE float64
	for step := 0; step < cfg.Steps; step++ {
		tape.Reset()
		a := split.Net.ForwardRangeT(tape, xhat.Value, 0, split.CutIndex+1, true)
		diff := tensor.Sub(a, target)
		lastMSE = diff.SqSum() / n
		grad := diff.Scale(2 / n) // d(MSE)/da
		dx := split.Net.BackwardRangeT(tape, grad, 0, split.CutIndex+1)
		xhat.ZeroGrad()
		xhat.Grad.AddInPlace(dx)
		opt.Step()
	}
	res := Result{Reconstruction: xhat.Value, ActivationMSE: lastMSE}
	if trueInput != nil {
		d := tensor.Sub(xhat.Value.Flatten(), trueInput.Flatten())
		res.InputMSE = d.SqSum() / float64(d.Len())
	}
	return res
}

// Evaluate runs the attack over the first n samples of a batch of inputs,
// once against clean activations and once against activations perturbed by
// a draw from the noise source, and returns the mean input-space MSE of
// each. A large shredded/clean ratio means the noise destroyed the
// information the attacker needs. Any deployment mode works: stored
// collections replay trained members, fitted sources sample fresh noise
// per attacked query, and fitted-mul draws joint (weight, noise) pairs —
// so the attacker faces exactly what the serving path would send.
func Evaluate(split *core.Split, inputs *tensor.Tensor, src core.NoiseSource, n int, cfg Config) (cleanMSE, shreddedMSE float64) {
	if n > inputs.Dim(0) {
		n = inputs.Dim(0)
	}
	rng := tensor.NewRNG(cfg.Seed + 1)
	for i := 0; i < n; i++ {
		x := inputs.Slice(i).Reshape(append([]int{1}, split.InShape...)...)
		a := split.Local(x)
		run := cfg
		run.Seed = cfg.Seed + int64(i)
		clean := Invert(split, a, x, run)
		cleanMSE += clean.InputMSE

		noisy := a.Clone()
		src.Draw(rng).ApplyInPlace(noisy.Slice(0))
		shredded := Invert(split, noisy, x, run)
		shreddedMSE += shredded.InputMSE
	}
	return cleanMSE / float64(n), shreddedMSE / float64(n)
}

// PSNR converts an MSE against inputs with the given dynamic range into
// peak signal-to-noise ratio in dB (higher = better reconstruction).
func PSNR(mse, dynamicRange float64) float64 {
	if mse <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(dynamicRange*dynamicRange/mse)
}
