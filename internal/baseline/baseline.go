// Package baseline implements the "accuracy-agnostic noise addition"
// comparator from the paper's Figure 1: classic Laplace-mechanism noise,
// drawn fresh per query with a scale calibrated to the activation's
// sensitivity, with no learning involved. Shredder's claim is that at
// equal noise power (equal in vivo privacy / SNR), learned noise preserves
// far more accuracy than this baseline — the benchmark harness and an
// experiment quantify exactly that gap.
package baseline

import (
	"math"

	"shredder/internal/core"
	"shredder/internal/data"
	"shredder/internal/tensor"
)

// LaplaceMechanism adds iid Laplace(0, b) noise, freshly sampled per
// query, to the transmitted activation — the standard output-perturbation
// mechanism of the differential-privacy literature applied at the cutting
// point.
type LaplaceMechanism struct {
	// Scale is the Laplace b parameter.
	Scale float64
	rng   *tensor.RNG
}

// NewLaplaceMechanism builds a mechanism with the given scale and seed.
func NewLaplaceMechanism(scale float64, seed int64) *LaplaceMechanism {
	return &LaplaceMechanism{Scale: scale, rng: tensor.NewRNG(seed)}
}

// Perturb adds fresh noise to every sample of a batched activation.
func (m *LaplaceMechanism) Perturb(a *tensor.Tensor) *tensor.Tensor {
	out := a.Clone()
	d := out.Data()
	for i := range d {
		d[i] += m.rng.Laplace(0, m.Scale)
	}
	return out
}

// ScaleForInVivo returns the Laplace scale b that produces a desired
// in vivo privacy (1/SNR) against activations with mean square power ea2:
// Var(Laplace(0,b)) = 2b², and 1/SNR = Var/ea2 ⇒ b = √(target·ea2/2).
func ScaleForInVivo(target, ea2 float64) float64 {
	if target <= 0 || ea2 <= 0 {
		return 0
	}
	return math.Sqrt(target * ea2 / 2)
}

// Result compares the baseline against Shredder at matched noise power.
type Result struct {
	// InVivo is the matched in vivo privacy level (1/SNR).
	InVivo float64
	// BaselineAcc is accuracy with no noise at all.
	BaselineAcc float64
	// LaplaceAcc is accuracy under the accuracy-agnostic mechanism.
	LaplaceAcc float64
	// ShredderAcc is accuracy under the learned collection.
	ShredderAcc float64
}

// Compare evaluates the Laplace mechanism against a trained Shredder
// collection on a test set, with the mechanism's scale calibrated so both
// operate at the collection's in vivo privacy level.
func Compare(split *core.Split, ds *data.Dataset, col *core.Collection, seed int64) Result {
	rng := tensor.NewRNG(seed)
	// Measure activation power and the collection's noise variance to
	// find the matched Laplace scale.
	var ea2 float64
	batches := ds.Batches(64)
	for _, b := range batches {
		a := split.Local(b.Images)
		ea2 += a.SqSum() / float64(a.Len())
	}
	ea2 /= float64(len(batches))
	var noiseVar float64
	for _, m := range col.Members {
		noiseVar += m.Variance()
	}
	noiseVar /= float64(col.Len())
	inVivo := noiseVar / ea2
	mech := NewLaplaceMechanism(ScaleForInVivo(inVivo, ea2), seed+1)

	var res Result
	res.InVivo = inVivo
	correctBase, correctLap, correctShred, n := 0, 0, 0, 0
	for _, b := range batches {
		a := split.Local(b.Images)
		base := split.Remote(a, false)
		lap := split.Remote(mech.Perturb(a), false)
		noisy := a.Clone()
		for i := 0; i < noisy.Dim(0); i++ {
			noisy.Slice(i).AddInPlace(col.Sample(rng))
		}
		shred := split.Remote(noisy, false)
		for i, y := range b.Labels {
			if base.Slice(i).Argmax() == y {
				correctBase++
			}
			if lap.Slice(i).Argmax() == y {
				correctLap++
			}
			if shred.Slice(i).Argmax() == y {
				correctShred++
			}
			n++
		}
	}
	if n > 0 {
		res.BaselineAcc = float64(correctBase) / float64(n)
		res.LaplaceAcc = float64(correctLap) / float64(n)
		res.ShredderAcc = float64(correctShred) / float64(n)
	}
	return res
}

// AdvantagePct returns Shredder's accuracy advantage over the
// accuracy-agnostic mechanism in percentage points.
func (r Result) AdvantagePct() float64 {
	return (r.ShredderAcc - r.LaplaceAcc) * 100
}
