package baseline

import (
	"math"
	"testing"

	"shredder/internal/core"
	"shredder/internal/model"
	"shredder/internal/tensor"
)

func TestLaplaceMechanismFreshPerQuery(t *testing.T) {
	m := NewLaplaceMechanism(1, 1)
	a := tensor.New(2, 8)
	p1 := m.Perturb(a)
	p2 := m.Perturb(a)
	if tensor.Equal(p1, p2) {
		t.Fatal("mechanism must draw fresh noise per query")
	}
	if tensor.Equal(p1.Slice(0), p1.Slice(1)) {
		t.Fatal("mechanism must draw fresh noise per sample")
	}
}

func TestLaplaceMechanismVariance(t *testing.T) {
	m := NewLaplaceMechanism(2, 2)
	a := tensor.New(1, 100000)
	p := m.Perturb(a)
	// Var(Laplace(0,2)) = 8.
	if v := p.Variance(); math.Abs(v-8) > 0.5 {
		t.Fatalf("perturbation variance %v, want ~8", v)
	}
}

func TestScaleForInVivo(t *testing.T) {
	// target = 1/SNR = Var/ea2 = 2b²/ea2 ⇒ with target=0.5, ea2=4: b=1.
	if got := ScaleForInVivo(0.5, 4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ScaleForInVivo = %v, want 1", got)
	}
	if ScaleForInVivo(0, 1) != 0 || ScaleForInVivo(1, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestCompareShredderBeatsAgnosticNoise(t *testing.T) {
	// The headline comparison of the paper's Figure 1: at matched noise
	// power, learned noise preserves more accuracy than fresh Laplace
	// noise.
	pre, err := model.Train(model.LeNet(), model.TrainConfig{TrainN: 500, TestN: 150, Epochs: 3, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	layer, _ := pre.Spec.CutLayer("conv2")
	split, err := core.NewSplit(pre.Net, layer, pre.Spec.Dataset.SampleShape())
	if err != nil {
		t.Fatal(err)
	}
	col := core.Collect(split, pre.Train, core.NoiseConfig{
		Scale: 2.5, Lambda: 0.005, PrivacyTarget: 5, Epochs: 5, Seed: 71,
	}, 3, 1)
	res := Compare(split, pre.Test, col, 72)
	if res.InVivo <= 0 {
		t.Fatalf("matched in vivo level %v", res.InVivo)
	}
	if res.BaselineAcc < 0.5 {
		t.Fatalf("baseline acc %v too low", res.BaselineAcc)
	}
	if res.ShredderAcc <= res.LaplaceAcc {
		t.Fatalf("learned noise (%.3f) should beat agnostic noise (%.3f) at 1/SNR=%.2f",
			res.ShredderAcc, res.LaplaceAcc, res.InVivo)
	}
	if res.AdvantagePct() <= 0 {
		t.Fatalf("advantage %v should be positive", res.AdvantagePct())
	}
}
