package core

import (
	"fmt"
	"math"
	"time"

	"shredder/internal/data"
	"shredder/internal/nn"
	"shredder/internal/obs"
	"shredder/internal/optim"
	"shredder/internal/tensor"
)

// NoiseConfig are the hyperparameters of one noise-training run.
type NoiseConfig struct {
	// Mu and Scale parameterize the Laplace initialization (paper §2.4).
	Mu, Scale float64
	// Lambda is the privacy knob of Eq. 3 (stored positive; the loss
	// subtracts it). Zero reproduces the paper's "privacy-agnostic"
	// baseline training of Figure 4.
	Lambda float64
	// PrivacyTarget is the in vivo privacy (1/SNR) at which λ starts
	// decaying to stabilize privacy and let accuracy recover (paper §3.2).
	// Zero disables decay.
	PrivacyTarget float64
	// LambdaDecay is the multiplicative decay applied to λ at every
	// evaluation point while above target (default 0.5).
	LambdaDecay float64
	// LR is the Adam learning rate over the noise tensor (default 0.01).
	LR float64
	// Epochs is the training length in (possibly fractional) passes over
	// the dataset — the paper trains AlexNet noise for 0.1 epoch.
	Epochs float64
	// BatchSize of noise-training minibatches (default 32).
	BatchSize int
	// Seed drives initialization and shuffling.
	Seed int64
	// SelfSupervised trains against the unnoised model's own soft
	// predictions instead of ground-truth labels (extension; ablated in
	// the benchmarks).
	SelfSupervised bool
	// Multiplicative trains the a' = a⊙w + n variant: a per-element weight
	// tensor is optimized jointly with the noise (the λ privacy term still
	// rewards only the noise magnitude).
	Multiplicative bool
	// WeightMu and WeightStd parameterize the Normal weight initialization
	// of the multiplicative variant. Defaults (1, 0.25) start near the
	// identity so short budgets begin from an unperturbed network; set
	// (0, 1) for the reference implementation's N(0, 1) start. Only read
	// when Multiplicative is set.
	WeightMu, WeightStd float64
	// EvalEvery is the iteration interval for events/λ-decay (default 10).
	EvalEvery int
	// Log, when non-nil, receives an event at every evaluation point.
	Log func(TrainEvent)
	// Run labels this run's observability events (e.g. "member-03"); it is
	// carried on every obs.TrainingEvent the Hook receives.
	Run string
	// Hook, when non-nil, receives an obs.TrainingEvent at every evaluation
	// point — the bridge into the observability layer (progress lines, CSV,
	// metrics registries) shared with the serving stack. Log and Hook are
	// independent: either, both, or neither may be set.
	Hook obs.Hook
}

func (c NoiseConfig) withDefaults() NoiseConfig {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.LambdaDecay == 0 {
		c.LambdaDecay = 0.5
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 10
	}
	if c.Multiplicative {
		if c.WeightMu == 0 && c.WeightStd == 0 {
			c.WeightMu = 1
		}
		if c.WeightStd == 0 {
			c.WeightStd = 0.25
		}
	}
	return c
}

// TrainEvent is a snapshot of the training state at one evaluation point —
// the series plotted in the paper's Figure 4.
type TrainEvent struct {
	Iteration int
	Epoch     float64
	Loss      float64 // total Shredder loss (CE − λΣ|n|)
	CE        float64 // cross-entropy component
	NoiseL1   float64 // Σ|n|, the noise magnitude the λ term rewards
	InVivo    float64 // 1/SNR at this point
	BatchAcc  float64 // accuracy on the current batch, with noise
	Lambda    float64 // current λ (after decay)
}

// TrainResult is the outcome of one noise-training run.
type TrainResult struct {
	Noise *NoiseTensor
	// Weight is the trained multiplicative weight tensor, nil unless the
	// run had NoiseConfig.Multiplicative set.
	Weight      *NoiseTensor
	Iterations  int
	Epochs      float64 // actual epochs executed
	FinalInVivo float64
	Events      []TrainEvent
}

// dropoutSeedOffset decorrelates the dropout stream from the noise
// initialization stream derived from the same cfg.Seed.
const dropoutSeedOffset = 77_003

// TrainNoise learns one noise tensor for the split on the given dataset.
// Network weights are left untouched: only the noise tensor is optimized
// (with Adam, as in the paper §3.2). The whole run executes on a private
// frozen tape — R's parameter gradients are never even computed — so any
// number of TrainNoise calls may run concurrently over one shared Split.
// All randomness (initialization, shuffling, dropout) derives from
// cfg.Seed, making each run reproducible independent of scheduling.
func TrainNoise(split *Split, ds *data.Dataset, cfg NoiseConfig) *TrainResult {
	cfg = cfg.withDefaults()
	start := time.Now()
	// Clear any parameter gradients a pre-training phase left behind, so
	// the "noise training leaves weights and gradients untouched"
	// invariant holds from here on (serialized on the Split).
	split.zeroParamGrads()
	rng := tensor.NewRNG(cfg.Seed)
	noise := NewNoiseTensor(split.ActivationShape(), cfg.Mu, cfg.Scale, rng)
	params := []*nn.Param{noise.Param}
	var weight *NoiseTensor
	if cfg.Multiplicative {
		// The weight draws from the same seeded stream, after the noise
		// init; the additive path consumes an identical stream to before.
		weight = NewWeightTensor(split.ActivationShape(), cfg.WeightMu, cfg.WeightStd, rng)
		params = append(params, weight.Param)
	}
	opt := optim.NewAdam(params, cfg.LR)

	// The run's private execution context: frozen (no ∂loss/∂θ), with its
	// own dropout stream.
	tape := nn.NewFrozenTape()
	tape.RNG = tensor.NewRNG(cfg.Seed + dropoutSeedOffset)

	batches := ds.Batches(cfg.BatchSize)
	if len(batches) == 0 {
		panic("core: TrainNoise on empty dataset")
	}
	totalIters := int(math.Ceil(cfg.Epochs * float64(len(batches))))
	if totalIters < 1 {
		totalIters = 1
	}

	lambda := cfg.Lambda
	res := &TrainResult{Noise: noise, Weight: weight}
	iter := 0
	var lastInVivo float64
	// Running estimate of E[a²] over all batches seen: the signal power in
	// the SNR is a dataset property, so averaging it keeps the in vivo
	// trace from fluctuating with individual batches.
	var ea2Sum float64
	var ea2N int
	// Running perturbation power E[(a'−a)²] (multiplicative runs only).
	var pertSum float64
	for iter < totalIters {
		shuffled := ds.Shuffle(cfg.Seed + int64(10_000+iter))
		for _, b := range shuffled.Batches(cfg.BatchSize) {
			if iter >= totalIters {
				break
			}
			a := split.Local(b.Images)
			var aPrime *tensor.Tensor
			if weight != nil {
				aPrime = MulAddBroadcast(a, weight.Values(), noise.Values())
			} else {
				aPrime = noise.Apply(a)
			}
			tape.Reset()
			logits := split.RemoteT(tape, aPrime, true)

			var total, ce float64
			var grad *tensor.Tensor
			if cfg.SelfSupervised {
				// The soft target comes from the clean activations on the
				// reentrant inference path, leaving the tape recording of
				// the noisy pass — the pass being differentiated — intact.
				target := nn.Softmax(split.RemoteInfer(a))
				total, ce, grad = ShredderLossSoft(logits, target, noise, lambda)
			} else {
				total, ce, grad = ShredderLoss(logits, b.Labels, noise, lambda)
			}

			dAprime := split.RemoteBackwardT(tape, grad)
			noise.Param.ZeroGrad()
			noise.AccumulateGrad(dAprime)
			AddPrivacyGrad(noise, lambda)
			if weight != nil {
				weight.Param.ZeroGrad()
				weight.AccumulateWeightGrad(dAprime, a)
			}
			opt.Step()

			ea2Sum += a.SqSum() / float64(a.Len())
			ea2N++
			meanEA2 := ea2Sum / float64(ea2N)
			if weight != nil {
				// Multiplicative 1/SNR uses the realized perturbation power
				// E[(a'−a)²] = E[(a⊙(w−1) + n)²] in place of the noise
				// variance: the weight scales the signal, so the noise
				// tensor's variance alone no longer measures the distortion.
				pertSum += meanSqDiff(aPrime, a)
				if meanEA2 > 0 {
					lastInVivo = (pertSum / float64(ea2N)) / meanEA2
				} else {
					lastInVivo = 0
				}
			} else if varN := noise.Values().Variance(); varN > 0 && meanEA2 > 0 {
				lastInVivo = varN / meanEA2 // 1/SNR with averaged signal power
			} else {
				lastInVivo = 0
			}
			if iter%cfg.EvalEvery == 0 {
				ev := TrainEvent{
					Iteration: iter,
					Epoch:     float64(iter) / float64(len(batches)),
					Loss:      total,
					CE:        ce,
					NoiseL1:   noise.Values().AbsSum(),
					InVivo:    lastInVivo,
					BatchAcc:  nn.Accuracy(logits, b.Labels),
					Lambda:    lambda,
				}
				res.Events = append(res.Events, ev)
				if cfg.Log != nil {
					cfg.Log(ev)
				}
				cfg.Hook.Emit(obs.TrainingEvent{
					Run: cfg.Run, Iteration: ev.Iteration, Epoch: ev.Epoch,
					Loss: ev.Loss, CE: ev.CE, NoiseL1: ev.NoiseL1,
					InVivo: ev.InVivo, BatchAcc: ev.BatchAcc, Lambda: ev.Lambda,
					Elapsed: time.Since(start),
				})
				// λ decay knob: once the desired in vivo privacy is
				// reached, shrink λ so privacy stabilizes and accuracy can
				// recover (paper §3.2).
				if cfg.PrivacyTarget > 0 && lastInVivo >= cfg.PrivacyTarget {
					lambda *= cfg.LambdaDecay
				}
			}
			iter++
		}
	}
	res.Iterations = iter
	res.Epochs = float64(iter) / float64(len(batches))
	res.FinalInVivo = lastInVivo
	if !noise.Values().AllFinite() {
		panic(fmt.Sprintf("core: noise diverged (non-finite values) after %d iterations", iter))
	}
	if weight != nil && !weight.Values().AllFinite() {
		panic(fmt.Sprintf("core: weight diverged (non-finite values) after %d iterations", iter))
	}
	return res
}

// meanSqDiff returns E[(x−y)²] over two equally sized tensors.
func meanSqDiff(x, y *tensor.Tensor) float64 {
	xd, yd := x.Data(), y.Data()
	s := 0.0
	for i := range xd {
		d := xd[i] - yd[i]
		s += d * d
	}
	return s / float64(len(xd))
}
