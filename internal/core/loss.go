package core

import (
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// ShredderLoss evaluates the paper's Eq. 3 loss
//
//	loss = CE(R(a+n), y) − λ·Σᵢ|nᵢ|
//
// for a batch, returning the total loss, the cross-entropy component, and
// the gradient with respect to the logits. The gradient of the privacy
// term with respect to the noise, −λ·sign(n), is applied separately by
// AddPrivacyGrad because it does not flow through the network.
func ShredderLoss(logits *tensor.Tensor, labels []int, noise *NoiseTensor, lambda float64) (total, ce float64, grad *tensor.Tensor) {
	ce, grad = nn.CrossEntropy(logits, labels)
	total = ce - lambda*noise.Values().AbsSum()
	return total, ce, grad
}

// ShredderLossSoft is ShredderLoss with soft targets (the self-supervised
// mode: targets are the unnoised model's own softmax outputs, so noise can
// be learned without ground-truth labels).
func ShredderLossSoft(logits, target *tensor.Tensor, noise *NoiseTensor, lambda float64) (total, ce float64, grad *tensor.Tensor) {
	ce, grad = nn.SoftCrossEntropy(logits, target)
	total = ce - lambda*noise.Values().AbsSum()
	return total, ce, grad
}

// AddPrivacyGrad accumulates the gradient of the −λ·Σ|nᵢ| term into the
// noise gradient: ∂(−λΣ|nᵢ|)/∂nᵢ = −λ·sign(nᵢ). This is the
// anti-regularization update of the paper — the exact opposite of weight
// decay, growing the noise magnitude and with it the in vivo privacy.
func AddPrivacyGrad(noise *NoiseTensor, lambda float64) {
	gd, vd := noise.Param.Grad.Data(), noise.Param.Value.Data()
	for i, v := range vd {
		switch {
		case v > 0:
			gd[i] -= lambda
		case v < 0:
			gd[i] += lambda
		}
	}
}
