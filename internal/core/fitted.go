package core

import (
	"fmt"

	"shredder/internal/noisedist"
	"shredder/internal/tensor"
)

// FittedCollection is the paper's "collection of noise distributions"
// taken literally: instead of storing K trained tensors and replaying
// them, it stores distributions distilled from those tensors (per-member
// quantile sketches, order permutations, and (loc, scale) summaries —
// see noisedist.FitMixture) and samples *fresh* noise per query. Memory
// is strictly below the stored collection's (no float64 tensors
// resident), and the effective collection cardinality is unbounded: no
// two queries ever see the same noise.
//
// When Weight is non-nil the source is the multiplicative Shredder
// variant a' = a⊙w + n: a per-element weight tensor was trained alongside
// the noise and is fitted and sampled the same way.
type FittedCollection struct {
	// Shape is the per-sample activation shape every sample matches.
	Shape []int
	// Noise is the fitted additive-noise distribution.
	Noise *noisedist.Fitted
	// Weight is the fitted multiplicative-weight distribution, nil for
	// the additive mode.
	Weight *noisedist.Fitted
	// InVivo carries the source members' recorded in vivo privacy, for
	// reporting parity with the stored collection.
	InVivo []float64
}

// FitCollection fits distributions to a trained collection: per member,
// a quantile sketch, its spatial ordering, and a (loc, scale) summary,
// for the noise tensors and — when the collection was trained
// multiplicatively — the weight tensors. kind selects the parametric
// family of the summaries (noisedist.Laplace is the default fit).
func FitCollection(col *Collection, kind noisedist.Kind) (*FittedCollection, error) {
	if col == nil || col.Len() == 0 {
		return nil, fmt.Errorf("%w: cannot fit distributions", ErrCollectionEmpty)
	}
	nf, err := noisedist.FitMixture(col.Members, kind)
	if err != nil {
		return nil, fmt.Errorf("core: fit noise distribution: %w", err)
	}
	fc := &FittedCollection{
		Shape:  append([]int(nil), col.Shape...),
		Noise:  nf,
		InVivo: append([]float64(nil), col.InVivo...),
	}
	if len(col.Weights) > 0 {
		if len(col.Weights) != len(col.Members) {
			return nil, fmt.Errorf("core: collection has %d weights for %d members", len(col.Weights), len(col.Members))
		}
		wf, err := noisedist.FitMixture(col.Weights, kind)
		if err != nil {
			return nil, fmt.Errorf("core: fit weight distribution: %w", err)
		}
		fc.Weight = wf
	}
	return fc, nil
}

// NoiseShape returns the per-sample activation shape.
func (c *FittedCollection) NoiseShape() []int { return c.Shape }

// Mode reports ModeFitted or ModeFittedMul.
func (c *FittedCollection) Mode() string {
	if c.Weight != nil {
		return ModeFittedMul
	}
	return ModeFitted
}

// Components returns the mixture size (the number of trained members the
// fit saw).
func (c *FittedCollection) Components() int { return c.Noise.Components() }

// Draw samples one fresh noise realization (and, in the multiplicative
// mode, one fresh weight). Member is -1: the noise never existed before
// this query and is attributable to the distribution, not a stored member.
// The multiplicative pair is drawn from one member's distributions —
// training co-adapts (w, n), and sampling them from different members
// was measured to cost ~28 accuracy points at the full LeNet cut.
func (c *FittedCollection) Draw(rng *tensor.RNG) Draw {
	if c.Weight == nil {
		return Draw{Member: -1, Noise: c.Noise.Sample(rng)}
	}
	m := 0
	if k := c.Noise.Components(); k > 1 {
		m = rng.Intn(k)
	}
	d := Draw{
		Member: -1,
		Noise:  tensor.New(c.Noise.Shape...),
		Weight: tensor.New(c.Weight.Shape...),
	}
	c.Noise.SampleMemberInto(m, d.Noise, rng)
	c.Weight.SampleMemberInto(m, d.Weight, rng)
	return d
}

// DrawInto is Draw sampling into s's reusable buffers instead of fresh
// tensors — the serving hot path's allocation-free variant. The
// returned Draw aliases the scratch and is valid until the next
// DrawInto on the same scratch.
func (c *FittedCollection) DrawInto(s *DrawScratch, rng *tensor.RNG) Draw {
	if s == nil {
		return c.Draw(rng)
	}
	if s.noise == nil || !tensor.ShapeEq(s.noise.Shape(), c.Noise.Shape) {
		s.noise = tensor.New(c.Noise.Shape...)
	}
	if c.Weight == nil {
		c.Noise.SampleInto(s.noise, rng)
		return Draw{Member: -1, Noise: s.noise}
	}
	if s.weight == nil || !tensor.ShapeEq(s.weight.Shape(), c.Weight.Shape) {
		s.weight = tensor.New(c.Weight.Shape...)
	}
	m := 0
	if k := c.Noise.Components(); k > 1 {
		m = rng.Intn(k)
	}
	c.Noise.SampleMemberInto(m, s.noise, rng)
	c.Weight.SampleMemberInto(m, s.weight, rng)
	return Draw{Member: -1, Noise: s.noise, Weight: s.weight}
}

// MeanInVivo returns the average recorded in vivo privacy of the source
// members, 0 when none was recorded (same contract as Collection).
func (c *FittedCollection) MeanInVivo() float64 {
	if len(c.InVivo) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.InVivo {
		s += v
	}
	return s / float64(len(c.InVivo))
}

// MemoryBytes is the resident size of the fitted parameters — the number
// the stored-vs-fitted accounting compares against 8 bytes × members ×
// elements for a stored collection.
func (c *FittedCollection) MemoryBytes() int {
	n := c.Noise.MemoryBytes()
	if c.Weight != nil {
		n += c.Weight.MemoryBytes()
	}
	return n
}

// validate checks structural invariants after decoding.
func (c *FittedCollection) validate() error {
	if c.Noise == nil {
		return fmt.Errorf("fitted collection has no noise distribution")
	}
	if err := c.Noise.Validate(); err != nil {
		return err
	}
	if !tensor.ShapeEq(c.Noise.Shape, c.Shape) {
		return fmt.Errorf("noise distribution shape %v != collection shape %v", c.Noise.Shape, c.Shape)
	}
	if c.Weight != nil {
		if err := c.Weight.Validate(); err != nil {
			return err
		}
		if !tensor.ShapeEq(c.Weight.Shape, c.Shape) {
			return fmt.Errorf("weight distribution shape %v != collection shape %v", c.Weight.Shape, c.Shape)
		}
		if c.Weight.Components() != c.Noise.Components() {
			return fmt.Errorf("weight mixture has %d components, noise has %d",
				c.Weight.Components(), c.Noise.Components())
		}
	}
	return nil
}
