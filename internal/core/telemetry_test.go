package core

// Tests for the live privacy telemetry: per-member attribution, the sampled
// in-vivo 1/SNR computation against the clean activation, alerting below
// the privacy target, and the disabled (nil-monitor) contract.

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"shredder/internal/obs"
	"shredder/internal/tensor"
)

// telemetryCollection builds a two-member collection with known statistics:
// member 0 has noise variance 1 (L1 = 4), member 1 variance 100 (L1 = 40).
func telemetryCollection() *Collection {
	weak := tensor.New(1, 2, 2)
	copy(weak.Data(), []float64{1, -1, 1, -1})
	strong := tensor.New(1, 2, 2)
	copy(strong.Data(), []float64{10, -10, 10, -10})
	return &Collection{
		Shape:   []int{1, 2, 2},
		Members: []*tensor.Tensor{weak, strong},
		InVivo:  []float64{1, 100},
	}
}

// TestPrivacyMonitorObserve drives known activations through both members
// and checks the realized 1/SNR, the per-member attribution, and that only
// the weak member trips the alert counter.
func TestPrivacyMonitorObserve(t *testing.T) {
	reg := obs.NewRegistry()
	col := telemetryCollection()
	m := NewPrivacyMonitor(reg, col, 2, 1) // target 1/SNR >= 2, sample every query
	if m == nil {
		t.Fatal("monitor not built")
	}
	act := tensor.New(1, 2, 2).Fill(1) // E[a²] = 1

	// Member 0: 1/SNR = Var(n)/E[a²] = 1 < target 2 — alert.
	m.Observe(0, act)
	// Member 1: 1/SNR = 100 — comfortably above the target.
	m.Observe(1, act)

	if m.Queries() != 2 || m.Alerts() != 1 {
		t.Fatalf("queries=%d alerts=%d, want 2/1", m.Queries(), m.Alerts())
	}
	snap := reg.Snapshot()
	if snap.Counters["privacy.sampled"] != 2 {
		t.Fatalf("sampled counter: %+v", snap.Counters)
	}
	if got := snap.Gauges["privacy.member.00.invivo"]; got != 1 {
		t.Fatalf("member 0 in-vivo gauge %v, want 1", got)
	}
	if got := snap.Gauges["privacy.member.01.invivo"]; got != 100 {
		t.Fatalf("member 1 in-vivo gauge %v, want 100", got)
	}
	if got := snap.Gauges["privacy.invivo.last"]; got != 100 {
		t.Fatalf("last in-vivo gauge %v, want the most recent sample 100", got)
	}
	if got := snap.Gauges["privacy.snr.last"]; got != 0.01 {
		t.Fatalf("last SNR gauge %v, want 1/100", got)
	}
	if got := snap.Gauges["privacy.member.00.noise_l1"]; got != 4 {
		t.Fatalf("member 0 noise L1 gauge %v, want 4", got)
	}
	if snap.Counters["privacy.member.00.samples"] != 1 || snap.Counters["privacy.member.01.samples"] != 1 {
		t.Fatalf("member sample counters: %+v", snap.Counters)
	}
	if h := snap.Histograms["privacy.invivo"]; h.Count != 2 {
		t.Fatalf("in-vivo histogram: %+v", h)
	}
}

// TestPrivacyMonitorSamplingAndEdges covers the sampling stride, the
// all-zero-activation skip, and out-of-range member indices.
func TestPrivacyMonitorSamplingAndEdges(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewPrivacyMonitor(reg, telemetryCollection(), 0, 2) // no target, sample every 2nd
	act := tensor.New(1, 2, 2).Fill(1)
	for i := 0; i < 4; i++ {
		m.Observe(0, act)
	}
	snap := reg.Snapshot()
	if snap.Counters["privacy.queries"] != 4 || snap.Counters["privacy.sampled"] != 2 {
		t.Fatalf("stride 2 sampled %d of %d queries, want 2 of 4",
			snap.Counters["privacy.sampled"], snap.Counters["privacy.queries"])
	}
	if m.Alerts() != 0 {
		t.Fatal("alerts fired with alerting disabled")
	}

	// An all-zero activation has undefined SNR: counted, never sampled.
	m2 := NewPrivacyMonitor(obs.NewRegistry(), telemetryCollection(), 2, 1)
	m2.Observe(0, tensor.New(1, 2, 2))
	if m2.Queries() != 1 || m2.Alerts() != 0 {
		t.Fatalf("zero activation: queries=%d alerts=%d", m2.Queries(), m2.Alerts())
	}

	// Out-of-range member indices must not panic or sample.
	m2.Observe(-1, act)
	m2.Observe(99, act)
	if m2.Queries() != 3 {
		t.Fatalf("out-of-range members not counted as queries: %d", m2.Queries())
	}
}

// TestPrivacyMonitorDisabled pins the nil contract: nil inputs yield a nil
// monitor, and every method on it is a safe no-op.
func TestPrivacyMonitorDisabled(t *testing.T) {
	col := telemetryCollection()
	if NewPrivacyMonitor(nil, col, 2, 1) != nil {
		t.Fatal("nil registry must yield a nil monitor")
	}
	if NewPrivacyMonitor(obs.NewRegistry(), nil, 2, 1) != nil {
		t.Fatal("nil collection must yield a nil monitor")
	}
	if NewPrivacyMonitor(obs.NewRegistry(), &Collection{}, 2, 1) != nil {
		t.Fatal("empty collection must yield a nil monitor")
	}
	var m *PrivacyMonitor
	m.Observe(0, tensor.New(1, 2, 2).Fill(1))
	if m.Queries() != 0 || m.Alerts() != 0 || m.Target() != 0 {
		t.Fatal("nil monitor must read as zero")
	}
	var buf bytes.Buffer
	m.WriteSummary(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil monitor wrote a summary: %q", buf.String())
	}
}

// TestPrivacyMonitorSummaryAndConcurrency checks the rendered summary and
// hammers Observe from many goroutines (run under -race) with exact counts.
func TestPrivacyMonitorSummaryAndConcurrency(t *testing.T) {
	m := NewPrivacyMonitor(obs.NewRegistry(), telemetryCollection(), 2, 1)
	act := tensor.New(1, 2, 2).Fill(1)
	const workers, per = 4, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Observe((w+i)%2, act)
			}
		}(w)
	}
	wg.Wait()
	if m.Queries() != workers*per {
		t.Fatalf("lost queries: %d != %d", m.Queries(), workers*per)
	}
	// Member 0 always realizes 1/SNR = 1 < 2; member 1 realizes 100. Exactly
	// the member-0 observations alert.
	if m.Alerts() != workers*per/2 {
		t.Fatalf("alerts %d, want %d", m.Alerts(), workers*per/2)
	}
	var buf bytes.Buffer
	m.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"privacy telemetry: 1000 queries", "target 1/SNR >= 2", "member", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
