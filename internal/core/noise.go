package core

import (
	"fmt"

	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// NoiseTensor is Shredder's additive noise cast as trainable parameters:
// one value per element of the cutting-point activation (paper §2.1). It is
// initialized from a Laplace(µ, b) distribution whose parameters are
// hyperparameters of the method (paper §2.4).
type NoiseTensor struct {
	// Param holds the trainable values and their gradient.
	Param *nn.Param
	// Mu and Scale record the Laplace initialization hyperparameters.
	Mu, Scale float64
}

// NewNoiseTensor creates a Laplace(mu, scale)-initialized noise tensor for
// a per-sample activation shape.
func NewNoiseTensor(shape []int, mu, scale float64, rng *tensor.RNG) *NoiseTensor {
	v := tensor.New(shape...)
	rng.FillLaplace(v, mu, scale)
	return &NoiseTensor{Param: nn.NewParam("noise", v), Mu: mu, Scale: scale}
}

// Values returns the noise values (per-sample activation shape).
func (n *NoiseTensor) Values() *tensor.Tensor { return n.Param.Value }

// Apply returns a + n for a batched activation a of shape [N, ...shape],
// broadcasting the noise over the batch. The input is not modified.
func (n *NoiseTensor) Apply(a *tensor.Tensor) *tensor.Tensor {
	return AddBroadcast(a, n.Param.Value)
}

// AddBroadcast returns a + noise for a batched activation a of shape
// [N, ...shape] and a per-sample noise tensor, broadcasting the noise over
// the batch. The input is not modified.
func AddBroadcast(a, noise *tensor.Tensor) *tensor.Tensor {
	per := noise.Len()
	if a.Rank() < 2 || a.Len()%per != 0 || a.Len()/a.Dim(0) != per {
		panic(fmt.Sprintf("core: noise of %d values cannot broadcast over activation shape %v", per, a.Shape()))
	}
	out := a.Clone()
	od, nd := out.Data(), noise.Data()
	batch := a.Dim(0)
	for i := 0; i < batch; i++ {
		row := od[i*per : (i+1)*per]
		for j := range row {
			row[j] += nd[j]
		}
	}
	return out
}

// AccumulateGrad folds a batched activation gradient ∂loss/∂a′ of shape
// [N, ...shape] into the noise gradient: since the same noise is added to
// every sample, ∂loss/∂n = Σᵢ ∂loss/∂a′ᵢ.
func (n *NoiseTensor) AccumulateGrad(dAprime *tensor.Tensor) {
	per := n.Param.Value.Len()
	if dAprime.Len()%per != 0 {
		panic(fmt.Sprintf("core: gradient shape %v incompatible with noise of %d values", dAprime.Shape(), per))
	}
	gd, dd := n.Param.Grad.Data(), dAprime.Data()
	batch := dAprime.Len() / per
	for i := 0; i < batch; i++ {
		row := dd[i*per : (i+1)*per]
		for j := range row {
			gd[j] += row[j]
		}
	}
}

// Clone returns an independent deep copy (gradient not copied).
func (n *NoiseTensor) Clone() *NoiseTensor {
	return &NoiseTensor{Param: nn.NewParam("noise", n.Param.Value.Clone()), Mu: n.Mu, Scale: n.Scale}
}
