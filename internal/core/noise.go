package core

import (
	"fmt"

	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// NoiseTensor is Shredder's additive noise cast as trainable parameters:
// one value per element of the cutting-point activation (paper §2.1). It is
// initialized from a Laplace(µ, b) distribution whose parameters are
// hyperparameters of the method (paper §2.4).
type NoiseTensor struct {
	// Param holds the trainable values and their gradient.
	Param *nn.Param
	// Mu and Scale record the Laplace initialization hyperparameters.
	Mu, Scale float64
}

// NewNoiseTensor creates a Laplace(mu, scale)-initialized noise tensor for
// a per-sample activation shape.
func NewNoiseTensor(shape []int, mu, scale float64, rng *tensor.RNG) *NoiseTensor {
	v := tensor.New(shape...)
	rng.FillLaplace(v, mu, scale)
	return &NoiseTensor{Param: nn.NewParam("noise", v), Mu: mu, Scale: scale}
}

// Values returns the noise values (per-sample activation shape).
func (n *NoiseTensor) Values() *tensor.Tensor { return n.Param.Value }

// Apply returns a + n for a batched activation a of shape [N, ...shape],
// broadcasting the noise over the batch. The input is not modified.
func (n *NoiseTensor) Apply(a *tensor.Tensor) *tensor.Tensor {
	return AddBroadcast(a, n.Param.Value)
}

// AddBroadcast returns a + noise for a batched activation a of shape
// [N, ...shape] and a per-sample noise tensor, broadcasting the noise over
// the batch. The input is not modified.
func AddBroadcast(a, noise *tensor.Tensor) *tensor.Tensor {
	per := noise.Len()
	if a.Rank() < 2 || a.Len()%per != 0 || a.Len()/a.Dim(0) != per {
		panic(fmt.Sprintf("core: noise of %d values cannot broadcast over activation shape %v", per, a.Shape()))
	}
	out := a.Clone()
	od, nd := out.Data(), noise.Data()
	batch := a.Dim(0)
	for i := 0; i < batch; i++ {
		row := od[i*per : (i+1)*per]
		for j := range row {
			row[j] += nd[j]
		}
	}
	return out
}

// NewWeightTensor creates a Normal(mu, std)-initialized multiplicative
// weight tensor for a per-sample activation shape. Weights start near the
// identity (mu ≈ 1) so short training budgets begin from an unperturbed
// network; the snippet-faithful N(0, 1) start is WeightMu=0, WeightStd=1.
func NewWeightTensor(shape []int, mu, std float64, rng *tensor.RNG) *NoiseTensor {
	v := tensor.New(shape...)
	rng.FillNormal(v, mu, std)
	return &NoiseTensor{Param: nn.NewParam("weight", v), Mu: mu, Scale: std}
}

// MulAddBroadcast returns a⊙w + noise for a batched activation a of shape
// [N, ...shape], broadcasting the per-sample weight and noise tensors over
// the batch — the multiplicative Shredder variant's forward transform. The
// input is not modified.
func MulAddBroadcast(a, w, noise *tensor.Tensor) *tensor.Tensor {
	per := noise.Len()
	if w.Len() != per {
		panic(fmt.Sprintf("core: weight of %d values paired with noise of %d", w.Len(), per))
	}
	if a.Rank() < 2 || a.Len()%per != 0 || a.Len()/a.Dim(0) != per {
		panic(fmt.Sprintf("core: noise of %d values cannot broadcast over activation shape %v", per, a.Shape()))
	}
	out := a.Clone()
	od, wd, nd := out.Data(), w.Data(), noise.Data()
	batch := a.Dim(0)
	for i := 0; i < batch; i++ {
		row := od[i*per : (i+1)*per]
		for j := range row {
			row[j] = row[j]*wd[j] + nd[j]
		}
	}
	return out
}

// AccumulateWeightGrad folds a batched activation gradient ∂loss/∂a′ into
// the weight gradient: with a′ᵢ = aᵢ⊙w + n shared across the batch,
// ∂loss/∂w = Σᵢ ∂loss/∂a′ᵢ ⊙ aᵢ.
func (n *NoiseTensor) AccumulateWeightGrad(dAprime, a *tensor.Tensor) {
	per := n.Param.Value.Len()
	if dAprime.Len() != a.Len() || dAprime.Len()%per != 0 {
		panic(fmt.Sprintf("core: gradient shape %v incompatible with weight of %d values", dAprime.Shape(), per))
	}
	gd, dd, ad := n.Param.Grad.Data(), dAprime.Data(), a.Data()
	batch := dAprime.Len() / per
	for i := 0; i < batch; i++ {
		off := i * per
		for j := 0; j < per; j++ {
			gd[j] += dd[off+j] * ad[off+j]
		}
	}
}

// AccumulateGrad folds a batched activation gradient ∂loss/∂a′ of shape
// [N, ...shape] into the noise gradient: since the same noise is added to
// every sample, ∂loss/∂n = Σᵢ ∂loss/∂a′ᵢ.
func (n *NoiseTensor) AccumulateGrad(dAprime *tensor.Tensor) {
	per := n.Param.Value.Len()
	if dAprime.Len()%per != 0 {
		panic(fmt.Sprintf("core: gradient shape %v incompatible with noise of %d values", dAprime.Shape(), per))
	}
	gd, dd := n.Param.Grad.Data(), dAprime.Data()
	batch := dAprime.Len() / per
	for i := 0; i < batch; i++ {
		row := dd[i*per : (i+1)*per]
		for j := range row {
			gd[j] += row[j]
		}
	}
}

// Clone returns an independent deep copy (gradient not copied).
func (n *NoiseTensor) Clone() *NoiseTensor {
	return &NoiseTensor{Param: nn.NewParam("noise", n.Param.Value.Clone()), Mu: n.Mu, Scale: n.Scale}
}
