package core

import (
	"fmt"

	"shredder/internal/tensor"
)

// Noise-mode names shared by the facade, CLI flags, and the wire format.
const (
	ModeStored    = "stored"     // replay K trained tensors (paper §2.5 as seeded)
	ModeFitted    = "fitted"     // sample fresh additive noise from fitted distributions
	ModeFittedMul = "fitted-mul" // sample fresh (w, n): a' = a⊙w + n
)

// NoiseSource yields per-query noise for the cutting-point activation. It
// is the seam between noise *training* (which produces a Collection of
// trained tensors) and noise *serving*: the stored Collection satisfies it
// by replaying members, and FittedCollection satisfies it by sampling
// fresh noise from distributions fitted to those members. Everything that
// applies noise at inference time — the facade's Classify, the edge
// client, the fleet pool, the evaluator — speaks this interface and is
// agnostic to which mode is deployed.
//
// Implementations are safe for concurrent use as long as callers serialize
// the RNG they pass in, exactly as Collection sampling always required.
type NoiseSource interface {
	// NoiseShape is the per-sample activation shape the noise matches.
	NoiseShape() []int
	// Mode names the deployment mode (ModeStored, ModeFitted, ModeFittedMul).
	Mode() string
	// Draw produces one per-query noise realization from rng.
	Draw(rng *tensor.RNG) Draw
	// MeanInVivo reports the average recorded in vivo privacy (1/SNR) of
	// the underlying trained members; 0 when nothing was recorded.
	MeanInVivo() float64
}

// Draw is one per-query noise realization: the transformation
// a' = a⊙Weight + Noise (Weight nil means the identity, i.e. the paper's
// additive a' = a + n). Member attributes the draw to a stored collection
// member for telemetry; fresh per-query samples carry Member = -1.
type Draw struct {
	// Member is the stored-collection member index, or -1 when the noise
	// was sampled fresh from a fitted distribution.
	Member int
	// Weight is the multiplicative per-element weight w, nil for additive
	// sources.
	Weight *tensor.Tensor
	// Noise is the additive component n.
	Noise *tensor.Tensor
}

// ApplyInPlace perturbs one per-sample activation: a ← a⊙w + n. The draw's
// tensors are never modified; for stored draws they are shared collection
// members, so the activation is the only tensor written.
func (d Draw) ApplyInPlace(a *tensor.Tensor) *tensor.Tensor {
	if d.Noise != nil && a.Len() != d.Noise.Len() {
		panic(fmt.Sprintf("core: draw of %d values applied to activation of %d", d.Noise.Len(), a.Len()))
	}
	if d.Weight != nil {
		a.MulInPlace(d.Weight)
	}
	if d.Noise != nil {
		a.AddInPlace(d.Noise)
	}
	return a
}

// Multiplicative reports whether the draw carries a weight tensor.
func (d Draw) Multiplicative() bool { return d.Weight != nil }

// DrawScratch holds reusable per-draw buffers for sources that sample
// fresh noise per query. A serving loop keeps one scratch per RNG (both
// are guarded by the same mutex) and passes it to DrawReusing; the
// returned Draw's tensors alias the scratch, so they are valid only
// until the next draw — apply the noise before drawing again. The zero
// value is ready to use; buffers are allocated lazily on first draw and
// re-used for every query after, keeping fitted serving allocation-free
// on the hot path.
type DrawScratch struct {
	noise  *tensor.Tensor
	weight *tensor.Tensor
}

// scratchDrawer is the optional NoiseSource refinement for sources that
// can sample into caller-owned buffers.
type scratchDrawer interface {
	DrawInto(s *DrawScratch, rng *tensor.RNG) Draw
}

// DrawReusing draws one realization from src, reusing s's buffers when
// the source supports it. Stored collections return shared member
// tensors (already allocation-free) and fall through to plain Draw; a
// nil scratch also falls through.
func DrawReusing(src NoiseSource, s *DrawScratch, rng *tensor.RNG) Draw {
	if sd, ok := src.(scratchDrawer); ok && s != nil {
		return sd.DrawInto(s, rng)
	}
	return src.Draw(rng)
}
