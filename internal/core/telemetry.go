package core

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"shredder/internal/obs"
	"shredder/internal/tensor"
)

// floatBits/floatFromBits pack a float64 into the atomic word used for the
// per-member last-observation field.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// DefPrivacyBuckets are the histogram bounds for in-vivo 1/SNR: the paper's
// operating points run from ~1 (weak noise) to ~10+ (strong noise), so the
// buckets cover two decades around that range.
var DefPrivacyBuckets = []float64{
	0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 4, 8, 16, 32, 64,
}

// Privacy metric names, exported so SLO objectives, dashboards, and the
// serving layer reference the monitor's series without magic strings.
const (
	// MetricInVivo is the histogram of sampled in-vivo 1/SNR values — the
	// metric a privacy SLO watches ("the windowed mean 1/SNR must stay at
	// or above the deployment's target").
	MetricInVivo = "privacy.invivo"
	// MetricInVivoLast is the gauge holding the most recent sampled 1/SNR.
	MetricInVivoLast = "privacy.invivo.last"
	// MetricPrivacyAlerts counts sampled 1/SNR values below the target.
	MetricPrivacyAlerts = "privacy.alerts"
)

// PrivacyMonitor measures the privacy a deployment is actually delivering,
// query by query: every noise application is counted per collection member
// (sampling balance), and every sampleEvery-th query computes the realized
// in-vivo 1/SNR = Var(noise)/E[a²] against the *clean* activation — the
// same quantity TrainNoise maximizes, now observed in production. The
// member's noise variance and L1 are precomputed at construction (members
// are immutable after training), so a sampled observation costs one pass
// over the activation and a few atomic stores.
//
// Registered metrics:
//
//	privacy.queries              counter, every observed noise application
//	privacy.sampled              counter, observations that computed 1/SNR
//	privacy.alerts               counter, sampled 1/SNR below the target
//	privacy.invivo               histogram of sampled 1/SNR
//	privacy.invivo.last          gauge, most recent 1/SNR
//	privacy.snr.last             gauge, most recent activation SNR
//	privacy.member.NN.samples    counter per member, sampling balance
//	privacy.member.NN.invivo     gauge per member, last sampled 1/SNR
//	privacy.member.NN.noise_l1   gauge per member, ‖noise‖₁ (static)
//
// All methods are safe for concurrent use and no-ops on a nil receiver, so
// callers write m.Observe(...) unconditionally.
type PrivacyMonitor struct {
	target float64
	every  uint64
	tick   atomic.Uint64

	queries *obs.Counter
	sampled *obs.Counter
	alerts  *obs.Counter
	invivo  *obs.Histogram
	lastInv *obs.Gauge
	lastSNR *obs.Gauge

	members []memberTelemetry

	// fitted is set when the monitor observes a FittedCollection: per-query
	// draws are fresh samples, so the per-member balance gauges are replaced
	// by static distribution-parameter gauges and the realized 1/SNR is
	// computed from each sampled draw's own noise (still in vivo).
	fitted *FittedCollection
	fitInv atomic.Uint64 // float64 bits of the last sampled fitted 1/SNR
}

// memberTelemetry is the per-collection-member slice of the monitor.
type memberTelemetry struct {
	noiseVar float64
	noiseL1  float64
	samples  *obs.Counter
	invivo   *obs.Gauge
	lastInv  atomic.Uint64 // float64 bits of the last sampled 1/SNR
}

// NewPrivacyMonitor builds a monitor over a trained collection. target is
// the 1/SNR floor below which alert counters fire (≤ 0 disables alerting,
// e.g. for baselines without a PrivacyTarget); sampleEvery computes the
// activation statistics on every N-th query (values < 1 are clamped to 1 —
// sample every query). Returns nil (a valid, disabled monitor) when reg or
// col is nil or the collection is empty.
func NewPrivacyMonitor(reg *obs.Registry, col *Collection, target float64, sampleEvery int) *PrivacyMonitor {
	if reg == nil || col == nil || col.Len() == 0 {
		return nil
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	m := &PrivacyMonitor{
		target:  target,
		every:   uint64(sampleEvery),
		queries: reg.Counter("privacy.queries"),
		sampled: reg.Counter("privacy.sampled"),
		alerts:  reg.Counter(MetricPrivacyAlerts),
		invivo:  reg.Histogram(MetricInVivo, DefPrivacyBuckets...),
		lastInv: reg.Gauge(MetricInVivoLast),
		lastSNR: reg.Gauge("privacy.snr.last"),
	}
	m.members = make([]memberTelemetry, col.Len())
	for i, v := range col.Members {
		name := fmt.Sprintf("privacy.member.%02d", i)
		mt := &m.members[i]
		mt.noiseVar = v.Variance()
		mt.noiseL1 = v.AbsSum()
		mt.samples = reg.Counter(name + ".samples")
		mt.invivo = reg.Gauge(name + ".invivo")
		reg.Gauge(name + ".noise_l1").Set(mt.noiseL1)
	}
	return m
}

// NewPrivacyMonitorSource builds a monitor over any noise source. Stored
// collections get the classic per-member monitor; fitted sources get the
// same query/sample/alert pipeline plus static distribution-parameter
// gauges in place of member-balance gauges:
//
//	privacy.dist.components      gauge, mixture size (trained members fitted)
//	privacy.dist.loc             gauge, mixture-mean location
//	privacy.dist.scale           gauge, mixture-mean scale
//	privacy.dist.noise_var       gauge, analytic element variance of a draw
//	privacy.dist.weight.*        same three for the fitted weights (fitted-mul)
//
// Returns nil (a valid, disabled monitor) when reg or src is nil or the
// source is of an unknown type.
func NewPrivacyMonitorSource(reg *obs.Registry, src NoiseSource, target float64, sampleEvery int) *PrivacyMonitor {
	switch s := src.(type) {
	case *Collection:
		return NewPrivacyMonitor(reg, s, target, sampleEvery)
	case *FittedCollection:
		if reg == nil || s == nil || s.Noise == nil {
			return nil
		}
		if sampleEvery < 1 {
			sampleEvery = 1
		}
		m := &PrivacyMonitor{
			target:  target,
			every:   uint64(sampleEvery),
			queries: reg.Counter("privacy.queries"),
			sampled: reg.Counter("privacy.sampled"),
			alerts:  reg.Counter(MetricPrivacyAlerts),
			invivo:  reg.Histogram(MetricInVivo, DefPrivacyBuckets...),
			lastInv: reg.Gauge(MetricInVivoLast),
			lastSNR: reg.Gauge("privacy.snr.last"),
			fitted:  s,
		}
		reg.Gauge("privacy.dist.components").Set(float64(s.Components()))
		reg.Gauge("privacy.dist.loc").Set(s.Noise.MeanLoc())
		reg.Gauge("privacy.dist.scale").Set(s.Noise.MeanScale())
		reg.Gauge("privacy.dist.noise_var").Set(s.Noise.Variance())
		if s.Weight != nil {
			reg.Gauge("privacy.dist.weight.loc").Set(s.Weight.MeanLoc())
			reg.Gauge("privacy.dist.weight.scale").Set(s.Weight.MeanScale())
			reg.Gauge("privacy.dist.weight.var").Set(s.Weight.Variance())
		}
		return m
	}
	return nil
}

// ObserveDraw records one noise application from any source. Stored
// additive draws route through Observe unchanged (identical counters and
// per-member gauges). Fresh or multiplicative draws compute the realized
// in-vivo 1/SNR from the draw itself on every sampleEvery-th query:
// Var(drawn noise)/E[a²] for additive draws, and the realized perturbation
// power E[(a⊙w + n − a)²]/E[a²] for multiplicative ones. act must be the
// *clean* activation — call before ApplyInPlace.
func (m *PrivacyMonitor) ObserveDraw(d Draw, act *tensor.Tensor) {
	m.ObserveDrawSampled(d, act)
}

// ObserveDrawSampled is ObserveDraw, additionally reporting the realized
// in-vivo 1/SNR when this query was one the monitor sampled — the value
// per-request audit records carry. sampled is false when the query was
// only counted (not the monitor's sampling turn, zero activation, or a
// nil monitor); invivo is then 0 and must not be recorded as evidence.
func (m *PrivacyMonitor) ObserveDrawSampled(d Draw, act *tensor.Tensor) (invivo float64, sampled bool) {
	if m == nil {
		return 0, false
	}
	if !d.Multiplicative() && d.Member >= 0 {
		return m.ObserveSampled(d.Member, act)
	}
	m.queries.Inc()
	var mt *memberTelemetry
	if d.Member >= 0 && d.Member < len(m.members) {
		mt = &m.members[d.Member]
		mt.samples.Inc()
	}
	if m.tick.Add(1)%m.every != 0 {
		return 0, false
	}
	n := act.Len()
	if n == 0 || d.Noise == nil {
		return 0, false
	}
	ea2 := act.SqSum() / float64(n)
	if !(ea2 > 0) {
		return 0, false // all-zero activation: SNR undefined, skip the sample
	}
	var inv float64
	if d.Multiplicative() {
		inv = perturbPower(act, d.Weight, d.Noise) / ea2
	} else {
		inv = d.Noise.Variance() / ea2
	}
	m.sampled.Inc()
	m.invivo.Observe(inv)
	m.lastInv.Set(inv)
	m.fitInv.Store(floatBits(inv))
	if inv > 0 {
		m.lastSNR.Set(1 / inv)
	}
	if mt != nil {
		mt.invivo.Set(inv)
		mt.lastInv.Store(floatBits(inv))
	}
	if m.target > 0 && inv < m.target {
		m.alerts.Inc()
	}
	return inv, true
}

// perturbPower returns E[(a⊙w + n − a)²] for one per-sample activation —
// the realized perturbation power of a multiplicative draw.
func perturbPower(a, w, n *tensor.Tensor) float64 {
	ad := a.Data()
	var wd, nd []float64
	if w != nil {
		wd = w.Data()
	}
	if n != nil {
		nd = n.Data()
	}
	s := 0.0
	for i := range ad {
		p := 0.0
		if wd != nil {
			p = ad[i] * (wd[i] - 1)
		}
		if nd != nil {
			p += nd[i]
		}
		s += p * p
	}
	return s / float64(len(ad))
}

// Observe records one noise application: member is the index returned by
// Collection.SampleIndexed and act the *clean* (pre-noise) activation the
// noise is about to be added to. Call it before AddInPlace — the realized
// SNR is defined against the signal, not the noisy sum. Only every N-th
// call computes activation statistics; the rest cost two counter bumps.
func (m *PrivacyMonitor) Observe(member int, act *tensor.Tensor) {
	m.ObserveSampled(member, act)
}

// ObserveSampled is Observe, reporting the realized 1/SNR when this
// query was one the monitor sampled (same contract as
// ObserveDrawSampled).
func (m *PrivacyMonitor) ObserveSampled(member int, act *tensor.Tensor) (invivo float64, sampled bool) {
	if m == nil {
		return 0, false
	}
	m.queries.Inc()
	if member < 0 || member >= len(m.members) {
		return 0, false
	}
	mt := &m.members[member]
	mt.samples.Inc()
	if m.tick.Add(1)%m.every != 0 {
		return 0, false
	}
	n := act.Len()
	if n == 0 {
		return 0, false
	}
	ea2 := act.SqSum() / float64(n)
	if !(ea2 > 0) {
		return 0, false // all-zero activation: SNR undefined, skip the sample
	}
	inv := mt.noiseVar / ea2
	m.sampled.Inc()
	m.invivo.Observe(inv)
	m.lastInv.Set(inv)
	mt.invivo.Set(inv)
	mt.lastInv.Store(floatBits(inv))
	if mt.noiseVar > 0 {
		m.lastSNR.Set(ea2 / mt.noiseVar)
	}
	if m.target > 0 && inv < m.target {
		m.alerts.Inc()
	}
	return inv, true
}

// Target returns the alert threshold (0 when alerting is disabled).
func (m *PrivacyMonitor) Target() float64 {
	if m == nil {
		return 0
	}
	return m.target
}

// Queries returns how many noise applications were observed.
func (m *PrivacyMonitor) Queries() int64 {
	if m == nil {
		return 0
	}
	return m.queries.Value()
}

// Alerts returns how many sampled observations fell below the target.
func (m *PrivacyMonitor) Alerts() int64 {
	if m == nil {
		return 0
	}
	return m.alerts.Value()
}

// WriteSummary renders the query/alert totals plus either a per-member
// table (samples, share, noise L1, last sampled 1/SNR) for stored
// collections or the fitted distribution parameters for fitted sources —
// the `shredder infer -privacy-sample` report. Nil-safe: a nil monitor
// writes nothing.
func (m *PrivacyMonitor) WriteSummary(w io.Writer) {
	if m == nil {
		return
	}
	total := m.queries.Value()
	fmt.Fprintf(w, "privacy telemetry: %d queries, %d sampled, %d alerts (target 1/SNR >= %g)\n",
		total, m.sampled.Value(), m.alerts.Value(), m.target)
	if f := m.fitted; f != nil {
		fmt.Fprintf(w, "mode %s: %d-component %s mixture, loc %.4f, scale %.4f, draw var %.4f\n",
			f.Mode(), f.Components(), f.Noise.Kind, f.Noise.MeanLoc(), f.Noise.MeanScale(), f.Noise.Variance())
		if f.Weight != nil {
			fmt.Fprintf(w, "weights: loc %.4f, scale %.4f, draw var %.4f\n",
				f.Weight.MeanLoc(), f.Weight.MeanScale(), f.Weight.Variance())
		}
		last := "-"
		if bits := m.fitInv.Load(); bits != 0 {
			last = fmt.Sprintf("%.3f", floatFromBits(bits))
		}
		fmt.Fprintf(w, "last sampled 1/SNR %s (fresh per-query draws; no member balance)\n", last)
		return
	}
	fmt.Fprintf(w, "%-8s %10s %7s %12s %12s\n", "member", "samples", "share", "noise_l1", "last 1/SNR")
	for i := range m.members {
		mt := &m.members[i]
		n := mt.samples.Value()
		share := 0.0
		if total > 0 {
			share = 100 * float64(n) / float64(total)
		}
		last := "-"
		if bits := mt.lastInv.Load(); bits != 0 {
			last = fmt.Sprintf("%.3f", floatFromBits(bits))
		}
		fmt.Fprintf(w, "%-8d %10d %6.1f%% %12.3f %12s\n", i, n, share, mt.noiseL1, last)
	}
}
