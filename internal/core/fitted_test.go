package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"shredder/internal/noisedist"
	"shredder/internal/obs"
	"shredder/internal/tensor"
)

// Stored-mode behaviour must be bit-for-bit unchanged by the NoiseSource
// seam: Draw consumes the same random stream SampleIndexed always did and
// returns the same member.
func TestCollectionDrawMatchesSampleIndexed(t *testing.T) {
	col := syntheticCollection(5, false)
	a, b := tensor.NewRNG(9), tensor.NewRNG(9)
	for i := 0; i < 50; i++ {
		d := col.Draw(a)
		j, n := col.SampleIndexed(b)
		if d.Member != j || d.Noise != n {
			t.Fatalf("draw %d: member %d tensor %p, SampleIndexed %d %p", i, d.Member, d.Noise, j, n)
		}
		if d.Weight != nil || d.Multiplicative() {
			t.Fatal("additive draw must not carry a weight")
		}
	}
	if col.Mode() != ModeStored {
		t.Fatalf("Mode = %q", col.Mode())
	}
	if !tensor.ShapeEq(col.NoiseShape(), col.Shape) {
		t.Fatal("NoiseShape != Shape")
	}
}

// MeanInVivo contract: empty collections report 0, never NaN.
func TestMeanInVivoEmptyContract(t *testing.T) {
	if v := (&Collection{}).MeanInVivo(); v != 0 || math.IsNaN(v) {
		t.Fatalf("empty Collection MeanInVivo = %v, want 0", v)
	}
	if v := (&FittedCollection{}).MeanInVivo(); v != 0 || math.IsNaN(v) {
		t.Fatalf("empty FittedCollection MeanInVivo = %v, want 0", v)
	}
}

func TestAddMemberMixingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mixing additive and multiplicative members")
		}
	}()
	rng := tensor.NewRNG(1)
	c := &Collection{}
	c.AddMember(NewNoiseTensor([]int{2}, 0, 1, rng), nil, 0)
	c.AddMember(NewNoiseTensor([]int{2}, 0, 1, rng), NewWeightTensor([]int{2}, 1, 0.1, rng), 0)
}

func TestDrawApplyInPlace(t *testing.T) {
	a := tensor.From([]float64{1, 2, 3}, 3)
	n := tensor.From([]float64{10, 20, 30}, 3)
	w := tensor.From([]float64{2, 3, 4}, 3)
	Draw{Noise: n}.ApplyInPlace(a)
	if !tensor.Equal(a, tensor.From([]float64{11, 22, 33}, 3)) {
		t.Fatalf("additive apply = %v", a)
	}
	a = tensor.From([]float64{1, 2, 3}, 3)
	Draw{Noise: n, Weight: w}.ApplyInPlace(a)
	if !tensor.Equal(a, tensor.From([]float64{12, 26, 42}, 3)) {
		t.Fatalf("multiplicative apply = %v", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Draw{Noise: n}.ApplyInPlace(tensor.New(2))
}

func TestFitCollectionFittedDraws(t *testing.T) {
	col := syntheticCollection(4, false)
	fc, err := FitCollection(col, noisedist.Laplace)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Mode() != ModeFitted || fc.Components() != 4 {
		t.Fatalf("mode %q components %d", fc.Mode(), fc.Components())
	}
	// Fixed seed → byte-identical draws, distinct seeds → fresh noise.
	d1 := fc.Draw(tensor.NewRNG(3))
	d2 := fc.Draw(tensor.NewRNG(3))
	d3 := fc.Draw(tensor.NewRNG(4))
	if !tensor.Equal(d1.Noise, d2.Noise) {
		t.Fatal("same seed drew different noise")
	}
	if tensor.Equal(d1.Noise, d3.Noise) {
		t.Fatal("different seeds drew identical noise")
	}
	if d1.Member != -1 {
		t.Fatalf("fitted draw Member = %d, want -1", d1.Member)
	}
	for _, m := range col.Members {
		if tensor.Equal(d1.Noise, m) {
			t.Fatal("fitted draw replayed a stored member")
		}
	}
	// Fitted parameters must stay below the stored float64 tensors.
	stored := 8 * tensor.Volume(col.Shape) * col.Len()
	if fc.MemoryBytes() >= stored {
		t.Fatalf("fitted %d B >= stored %d B", fc.MemoryBytes(), stored)
	}
}

func TestFitCollectionErrors(t *testing.T) {
	if _, err := FitCollection(nil, noisedist.Laplace); !errors.Is(err, ErrCollectionEmpty) {
		t.Fatalf("nil: err = %v", err)
	}
	if _, err := FitCollection(&Collection{}, noisedist.Laplace); !errors.Is(err, ErrCollectionEmpty) {
		t.Fatalf("empty: err = %v", err)
	}
}

func TestFitCollectionMultiplicative(t *testing.T) {
	col := syntheticCollection(3, true)
	fc, err := FitCollection(col, noisedist.Gaussian)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Mode() != ModeFittedMul || fc.Weight == nil {
		t.Fatalf("mode %q weight %v", fc.Mode(), fc.Weight)
	}
	d := fc.Draw(tensor.NewRNG(6))
	if !d.Multiplicative() || d.Weight == nil {
		t.Fatal("fitted-mul draw must carry a weight")
	}
	// Weights were initialized near N(1, 0.2): the fitted weight
	// distribution must reflect that, not the noise scale.
	if loc := fc.Weight.MeanLoc(); math.Abs(loc-1) > 0.2 {
		t.Fatalf("fitted weight loc %v, want ~1", loc)
	}
}

func TestMulAddBroadcast(t *testing.T) {
	a := tensor.From([]float64{1, 2, 3, 4}, 2, 2)
	w := tensor.From([]float64{2, 3}, 2)
	n := tensor.From([]float64{10, 20}, 2)
	out := MulAddBroadcast(a, w, n)
	want := tensor.From([]float64{12, 26, 16, 32}, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("MulAddBroadcast = %v", out)
	}
	if !tensor.Equal(a, tensor.From([]float64{1, 2, 3, 4}, 2, 2)) {
		t.Fatal("MulAddBroadcast must not modify input")
	}
}

func TestAccumulateWeightGradSumsOverBatch(t *testing.T) {
	w := NewWeightTensor([]int{2}, 1, 0.1, tensor.NewRNG(3))
	w.Param.ZeroGrad()
	d := tensor.From([]float64{1, 2, 10, 20}, 2, 2)
	a := tensor.From([]float64{3, 4, 5, 6}, 2, 2)
	w.AccumulateWeightGrad(d, a)
	// ∂loss/∂w_j = Σ_i d_ij · a_ij: [1·3 + 10·5, 2·4 + 20·6]
	want := tensor.From([]float64{53, 128}, 2)
	if !tensor.Equal(w.Param.Grad, want) {
		t.Fatalf("weight grad = %v, want %v", w.Param.Grad, want)
	}
}

// The multiplicative objective must train end to end: weights move off
// their initialization, the result stays finite, and the collection pairs
// a weight with every member.
func TestTrainNoiseMultiplicative(t *testing.T) {
	split, pre := testSplit(t, 31)
	cfg := NoiseConfig{Scale: 0.5, Lambda: 0.05, Epochs: 0.3, Seed: 7, Multiplicative: true}
	res := TrainNoise(split, pre.Train, cfg)
	if res.Weight == nil {
		t.Fatal("multiplicative run returned no weight tensor")
	}
	if !res.Weight.Values().AllFinite() || !res.Noise.Values().AllFinite() {
		t.Fatal("non-finite parameters")
	}
	add := TrainNoise(split, pre.Train, NoiseConfig{Scale: 0.5, Lambda: 0.05, Epochs: 0.3, Seed: 7})
	if add.Weight != nil {
		t.Fatal("additive run must not return a weight tensor")
	}

	col := Collect(split, pre.Train, cfg, 2, 1)
	if !col.Multiplicative() || len(col.Weights) != col.Len() {
		t.Fatalf("collection: mul=%v weights=%d members=%d", col.Multiplicative(), len(col.Weights), col.Len())
	}
	// The stored-mul source must evaluate end to end with sane outputs.
	ev := Evaluate(split, pre.Test, col, EvalConfig{Seed: 5})
	if math.IsNaN(ev.NoisyAcc) || math.IsNaN(ev.InVivo) || ev.InVivo < 0 {
		t.Fatalf("evaluate: acc %v inVivo %v", ev.NoisyAcc, ev.InVivo)
	}
	// And so must its fit.
	fc, err := FitCollection(col, noisedist.Laplace)
	if err != nil {
		t.Fatal(err)
	}
	evf := Evaluate(split, pre.Test, fc, EvalConfig{Seed: 5})
	if math.IsNaN(evf.NoisyAcc) || math.IsNaN(evf.InVivo) || evf.InVivo < 0 {
		t.Fatalf("fitted evaluate: acc %v inVivo %v", evf.NoisyAcc, evf.InVivo)
	}
}

// Telemetry over a fitted source: distribution gauges registered, queries
// counted, realized 1/SNR sampled from fresh draws, summary renders the
// fitted block.
func TestPrivacyMonitorFittedSource(t *testing.T) {
	col := syntheticCollection(3, false)
	fc, err := FitCollection(col, noisedist.Laplace)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := NewPrivacyMonitorSource(reg, fc, 0.5, 1)
	if m == nil {
		t.Fatal("monitor nil for fitted source")
	}
	act := tensor.New(3, 4)
	tensor.NewRNG(2).FillNormal(act, 1, 0.1)
	rng := tensor.NewRNG(8)
	for i := 0; i < 10; i++ {
		d := fc.Draw(rng)
		m.ObserveDraw(d, act)
	}
	if m.Queries() != 10 {
		t.Fatalf("queries = %d", m.Queries())
	}
	snap := reg.Snapshot()
	for _, name := range []string{"privacy.dist.components", "privacy.dist.loc", "privacy.dist.scale", "privacy.dist.noise_var"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %s not registered (have %v)", name, snap.Gauges)
		}
	}
	if got := snap.Gauges["privacy.dist.components"]; got != 3 {
		t.Fatalf("components gauge = %v", got)
	}
	var sb strings.Builder
	m.WriteSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "mode fitted") || !strings.Contains(out, "laplace") {
		t.Fatalf("summary missing fitted block:\n%s", out)
	}

	// Stored sources still go through the legacy member path.
	ms := NewPrivacyMonitorSource(obs.NewRegistry(), col, 0.5, 1)
	d := col.Draw(tensor.NewRNG(1))
	ms.ObserveDraw(d, act)
	if ms.Queries() != 1 {
		t.Fatalf("stored queries = %d", ms.Queries())
	}
	// Unknown source types yield a disabled (nil) monitor.
	if NewPrivacyMonitorSource(reg, fakeSource{}, 0, 1) != nil {
		t.Fatal("unknown source should yield nil monitor")
	}
}

// Evaluate over a fitted source must be deterministic for a fixed seed.
func TestEvaluateFittedDeterministic(t *testing.T) {
	split, pre := testSplit(t, 33)
	col := Collect(split, pre.Train, NoiseConfig{Scale: 0.5, Lambda: 0.05, Epochs: 0.2, Seed: 3}, 2, 1)
	fc, err := FitCollection(col, noisedist.Laplace)
	if err != nil {
		t.Fatal(err)
	}
	a := Evaluate(split, pre.Test, fc, EvalConfig{Seed: 11})
	b := Evaluate(split, pre.Test, fc, EvalConfig{Seed: 11})
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}
