package core

import (
	"testing"

	"shredder/internal/noisedist"
	"shredder/internal/tensor"
)

// TestFittedDrawIntoZeroAlloc pins the serving-hot-path claim: once a
// DrawScratch is warm, fitted draws (additive and multiplicative) allocate
// nothing per query. The plain Draw path allocates a fresh tensor per
// query by design — that contrast is what DrawReusing exists to remove.
func TestFittedDrawIntoZeroAlloc(t *testing.T) {
	for _, mul := range []bool{false, true} {
		name := "additive"
		if mul {
			name = "multiplicative"
		}
		t.Run(name, func(t *testing.T) {
			col := syntheticCollection(4, mul)
			fc, err := FitCollection(col, noisedist.Laplace)
			if err != nil {
				t.Fatal(err)
			}
			rng := tensor.NewRNG(7)
			var scratch DrawScratch
			DrawReusing(fc, &scratch, rng) // first call allocates the scratch buffers
			allocs := testing.AllocsPerRun(200, func() {
				d := DrawReusing(fc, &scratch, rng)
				if d.Noise == nil {
					t.Fatal("draw lost its noise tensor")
				}
			})
			if allocs != 0 {
				t.Errorf("warm DrawReusing allocates %.1f objects per draw, want 0", allocs)
			}
			plain := testing.AllocsPerRun(50, func() { fc.Draw(rng) })
			if plain == 0 {
				t.Error("plain Draw reported zero allocations — the scratch path would be pointless; is Draw sharing state?")
			}
		})
	}
}

// TestDrawReusingStoredPassthrough: stored collections replay resident
// members, so DrawReusing must not copy them into scratch — the draw
// aliases the stored member tensor itself and the scratch stays untouched.
func TestDrawReusingStoredPassthrough(t *testing.T) {
	col := syntheticCollection(3, false)
	rng := tensor.NewRNG(11)
	var scratch DrawScratch
	d := DrawReusing(col, &scratch, rng)
	if d.Member < 0 || d.Member >= 3 {
		t.Fatalf("stored draw member %d out of range", d.Member)
	}
	if d.Noise != col.Members[d.Member] {
		t.Fatal("stored draw does not alias the resident member tensor")
	}
	if scratch.noise != nil || scratch.weight != nil {
		t.Fatal("stored draw populated the fitted scratch")
	}
}
