package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"sync"

	"shredder/internal/data"
	"shredder/internal/tensor"
)

// Collection is a set of independently trained noise tensors — the paper's
// "distribution of noise tensors, all of which yield similar accuracy and
// noise levels" (§2.5). At inference one member is sampled per query; no
// training happens in that phase.
type Collection struct {
	// Shape is the per-sample activation shape every member matches.
	Shape []int
	// Members are the trained noise tensors.
	Members []*tensor.Tensor
	// InVivo records each member's final in vivo privacy, for reporting.
	InVivo []float64
}

// Add appends a trained noise tensor to the collection.
func (c *Collection) Add(n *NoiseTensor, inVivo float64) {
	v := n.Values()
	if c.Shape == nil {
		c.Shape = append([]int(nil), v.Shape()...)
	}
	if !tensor.ShapeEq(c.Shape, v.Shape()) {
		panic(fmt.Sprintf("core: collection shape %v, member shape %v", c.Shape, v.Shape()))
	}
	c.Members = append(c.Members, v.Clone())
	c.InVivo = append(c.InVivo, inVivo)
}

// Len returns the number of members.
func (c *Collection) Len() int { return len(c.Members) }

// Sample draws one noise tensor uniformly at random — the inference-time
// sampling step of paper §2.5.
func (c *Collection) Sample(rng *tensor.RNG) *tensor.Tensor {
	_, n := c.SampleIndexed(rng)
	return n
}

// SampleIndexed is Sample exposing which member was drawn, so telemetry can
// attribute per-query measurements to collection members.
func (c *Collection) SampleIndexed(rng *tensor.RNG) (int, *tensor.Tensor) {
	if len(c.Members) == 0 {
		panic("core: sampling from an empty collection")
	}
	i := rng.Intn(len(c.Members))
	return i, c.Members[i]
}

// MeanInVivo returns the average recorded in vivo privacy of the members.
func (c *Collection) MeanInVivo() float64 {
	if len(c.InVivo) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.InVivo {
		s += v
	}
	return s / float64(len(c.InVivo))
}

// Collect trains count noise tensors with distinct seeds and returns them
// as a collection. Each run repeats the full training process from a fresh
// Laplace initialization, exactly as §2.5 prescribes.
//
// workers bounds the number of members trained concurrently: 1 trains
// sequentially, n > 1 fans the members over n goroutines sharing the one
// Split (training is reentrant — each run owns a frozen tape), and any
// value <= 0 selects GOMAXPROCS. Every member's randomness derives from
// its own seed (cfg.Seed + i·1_000_003) and results are assembled by
// member index, so parallel and sequential runs produce byte-identical
// collections.
func Collect(split *Split, ds *data.Dataset, cfg NoiseConfig, count, workers int) *Collection {
	if count <= 0 {
		panic("core: Collect needs a positive count")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}

	type member struct {
		noise  *NoiseTensor
		inVivo float64
	}
	results := make([]member, count)
	train := func(i int) {
		run := cfg
		run.Seed = cfg.Seed + int64(i)*1_000_003
		// Label each member's observability events so interleaved parallel
		// runs stay attributable ("member-03", or "prefix/member-03").
		run.Run = fmt.Sprintf("member-%02d", i)
		if cfg.Run != "" {
			run.Run = cfg.Run + "/" + run.Run
		}
		res := TrainNoise(split, ds, run)
		results[i] = member{noise: res.Noise, inVivo: res.FinalInVivo}
	}

	if workers == 1 {
		for i := 0; i < count; i++ {
			train(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					train(i)
				}
			}()
		}
		for i := 0; i < count; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	c := &Collection{}
	for _, m := range results {
		c.Add(m.noise, m.inVivo)
	}
	return c
}

// collectionWire is the gob wire format.
type collectionWire struct {
	Shape   []int
	Members []*tensor.Tensor
	InVivo  []float64
}

// Encode writes the collection in gob format.
func (c *Collection) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(collectionWire{c.Shape, c.Members, c.InVivo}); err != nil {
		return fmt.Errorf("core: encode collection: %w", err)
	}
	return nil
}

// DecodeCollection reads a collection written by Encode.
func DecodeCollection(r io.Reader) (*Collection, error) {
	var wire collectionWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decode collection: %w", err)
	}
	c := &Collection{Shape: wire.Shape, Members: wire.Members, InVivo: wire.InVivo}
	for i, m := range c.Members {
		if !tensor.ShapeEq(m.Shape(), c.Shape) {
			return nil, fmt.Errorf("core: decode collection: member %d shape %v != %v", i, m.Shape(), c.Shape)
		}
	}
	return c, nil
}
