package core

import (
	"fmt"
	"runtime"
	"sync"

	"shredder/internal/data"
	"shredder/internal/tensor"
)

// Collection is a set of independently trained noise tensors — the paper's
// "distribution of noise tensors, all of which yield similar accuracy and
// noise levels" (§2.5). At inference one member is sampled per query; no
// training happens in that phase.
//
// A collection trained with NoiseConfig.Multiplicative additionally holds
// one trained weight tensor per member (Weights parallel to Members) for
// the a' = a⊙w + n variant; Draw then pairs each member's weight with its
// noise. FitCollection turns either kind into a FittedCollection that
// samples fresh noise per query from fitted distributions.
type Collection struct {
	// Shape is the per-sample activation shape every member matches.
	Shape []int
	// Members are the trained noise tensors.
	Members []*tensor.Tensor
	// Weights are the trained multiplicative weight tensors, parallel to
	// Members; nil for the standard additive collection.
	Weights []*tensor.Tensor
	// InVivo records each member's final in vivo privacy, for reporting.
	InVivo []float64
}

// Add appends a trained additive noise tensor to the collection.
func (c *Collection) Add(n *NoiseTensor, inVivo float64) {
	c.AddMember(n, nil, inVivo)
}

// AddMember appends a trained member: its noise tensor and, for the
// multiplicative variant, its weight tensor (nil for additive members).
// Mixing additive and multiplicative members in one collection panics.
func (c *Collection) AddMember(n, w *NoiseTensor, inVivo float64) {
	v := n.Values()
	if c.Shape == nil {
		c.Shape = append([]int(nil), v.Shape()...)
	}
	if !tensor.ShapeEq(c.Shape, v.Shape()) {
		panic(fmt.Sprintf("core: collection shape %v, member shape %v", c.Shape, v.Shape()))
	}
	if len(c.Members) > 0 && (w != nil) != (len(c.Weights) > 0) {
		panic("core: cannot mix additive and multiplicative members in one collection")
	}
	c.Members = append(c.Members, v.Clone())
	if w != nil {
		wv := w.Values()
		if !tensor.ShapeEq(c.Shape, wv.Shape()) {
			panic(fmt.Sprintf("core: collection shape %v, weight shape %v", c.Shape, wv.Shape()))
		}
		c.Weights = append(c.Weights, wv.Clone())
	}
	c.InVivo = append(c.InVivo, inVivo)
}

// Len returns the number of members.
func (c *Collection) Len() int { return len(c.Members) }

// Multiplicative reports whether the collection carries trained weight
// tensors (the a' = a⊙w + n variant).
func (c *Collection) Multiplicative() bool { return len(c.Weights) > 0 }

// NoiseShape returns the per-sample activation shape (NoiseSource).
func (c *Collection) NoiseShape() []int { return c.Shape }

// Mode reports ModeStored: the collection replays trained tensors.
func (c *Collection) Mode() string { return ModeStored }

// Draw samples one member uniformly and returns its tensors (NoiseSource).
// For stored collections the draw shares the member tensors — callers must
// not modify them. The random stream consumed is identical to
// SampleIndexed's, so stored-mode behaviour is bit-for-bit unchanged by
// the NoiseSource seam.
func (c *Collection) Draw(rng *tensor.RNG) Draw {
	i, n := c.SampleIndexed(rng)
	d := Draw{Member: i, Noise: n}
	if len(c.Weights) > 0 {
		d.Weight = c.Weights[i]
	}
	return d
}

// Sample draws one noise tensor uniformly at random — the inference-time
// sampling step of paper §2.5.
func (c *Collection) Sample(rng *tensor.RNG) *tensor.Tensor {
	_, n := c.SampleIndexed(rng)
	return n
}

// SampleIndexed is Sample exposing which member was drawn, so telemetry can
// attribute per-query measurements to collection members.
func (c *Collection) SampleIndexed(rng *tensor.RNG) (int, *tensor.Tensor) {
	if len(c.Members) == 0 {
		panic("core: sampling from an empty collection")
	}
	i := rng.Intn(len(c.Members))
	return i, c.Members[i]
}

// MeanInVivo returns the average recorded in vivo privacy of the members.
// Contract: an empty collection (or one whose members recorded no in vivo
// values) returns 0, never NaN — callers render the result directly in
// reports and summaries and must not need a guard.
func (c *Collection) MeanInVivo() float64 {
	if len(c.InVivo) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.InVivo {
		s += v
	}
	return s / float64(len(c.InVivo))
}

// Collect trains count noise tensors with distinct seeds and returns them
// as a collection. Each run repeats the full training process from a fresh
// Laplace initialization, exactly as §2.5 prescribes. With
// cfg.Multiplicative set, each member is a (weight, noise) pair trained
// jointly for a' = a⊙w + n.
//
// workers bounds the number of members trained concurrently: 1 trains
// sequentially, n > 1 fans the members over n goroutines sharing the one
// Split (training is reentrant — each run owns a frozen tape), and any
// value <= 0 selects GOMAXPROCS. Every member's randomness derives from
// its own seed (cfg.Seed + i·1_000_003) and results are assembled by
// member index, so parallel and sequential runs produce byte-identical
// collections.
func Collect(split *Split, ds *data.Dataset, cfg NoiseConfig, count, workers int) *Collection {
	if count <= 0 {
		panic("core: Collect needs a positive count")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}

	type member struct {
		noise  *NoiseTensor
		weight *NoiseTensor
		inVivo float64
	}
	results := make([]member, count)
	train := func(i int) {
		run := cfg
		run.Seed = cfg.Seed + int64(i)*1_000_003
		// Label each member's observability events so interleaved parallel
		// runs stay attributable ("member-03", or "prefix/member-03").
		run.Run = fmt.Sprintf("member-%02d", i)
		if cfg.Run != "" {
			run.Run = cfg.Run + "/" + run.Run
		}
		res := TrainNoise(split, ds, run)
		results[i] = member{noise: res.Noise, weight: res.Weight, inVivo: res.FinalInVivo}
	}

	if workers == 1 {
		for i := 0; i < count; i++ {
			train(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					train(i)
				}
			}()
		}
		for i := 0; i < count; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	c := &Collection{}
	for _, m := range results {
		c.AddMember(m.noise, m.weight, m.inVivo)
	}
	return c
}
