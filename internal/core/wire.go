package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"shredder/internal/noisedist"
	"shredder/internal/tensor"
)

// Noise-file wire format.
//
// v1 (legacy): a bare gob stream of collectionWire{Shape, Members, InVivo}.
// Every file written before the fitted modes existed is v1, and plain
// additive stored collections are still written as v1 byte-for-byte, so
// old readers keep working on the common case.
//
// v2: the magic line below followed by a gob stream of noiseWireV2. v2
// carries everything v1 cannot: the mode tag, trained multiplicative
// weights, and fitted distribution parameters (noisedist.Fitted), so a
// fitted source round-trips without refitting. Decoding sniffs the magic
// to pick the version; v1 files (which start with a gob type definition,
// never with this ASCII line) are unambiguous.
const noiseMagicV2 = "shredder-noise/2\n"

// Typed decode errors. Wrap/inspect with errors.Is.
var (
	// ErrCollectionCorrupt reports a noise file that could not be decoded:
	// truncated, empty, or not a noise file at all.
	ErrCollectionCorrupt = errors.New("core: corrupt noise collection file")
	// ErrCollectionEmpty reports a structurally valid noise file with zero
	// members — loading it would build a collection whose Sample panics,
	// so the decoder rejects it up front.
	ErrCollectionEmpty = errors.New("core: noise collection has no members")
	// ErrNotStoredCollection reports a v2 fitted payload decoded through
	// DecodeCollection, which only yields stored collections; use
	// DecodeNoiseSource for mode-agnostic loading.
	ErrNotStoredCollection = errors.New("core: noise file holds a fitted source, not a stored collection")
)

// collectionWire is the legacy (v1) gob wire format.
type collectionWire struct {
	Shape   []int
	Members []*tensor.Tensor
	InVivo  []float64
}

// noiseWireV2 is the v2 gob payload, written after the magic line.
type noiseWireV2 struct {
	// Mode is ModeStored, ModeFitted, or ModeFittedMul.
	Mode  string
	Shape []int
	// Members/Weights/InVivo carry a stored collection (Weights only for
	// the multiplicative variant).
	Members []*tensor.Tensor
	Weights []*tensor.Tensor
	InVivo  []float64
	// Noise/Weight carry a fitted source's distribution parameters.
	Noise  *noisedist.Fitted
	Weight *noisedist.Fitted
}

// Encode writes the collection. Plain additive collections use the legacy
// v1 format byte-for-byte (old readers still work); multiplicative
// collections need v2 for their weight tensors.
func (c *Collection) Encode(w io.Writer) error {
	if c.Len() == 0 {
		return fmt.Errorf("%w: refusing to encode", ErrCollectionEmpty)
	}
	if !c.Multiplicative() {
		if err := gob.NewEncoder(w).Encode(collectionWire{c.Shape, c.Members, c.InVivo}); err != nil {
			return fmt.Errorf("core: encode collection: %w", err)
		}
		return nil
	}
	return encodeV2(w, noiseWireV2{
		Mode: ModeStored, Shape: c.Shape,
		Members: c.Members, Weights: c.Weights, InVivo: c.InVivo,
	})
}

// Encode writes the fitted source in the v2 format: distribution
// parameters only, no tensors beyond the order permutation.
func (c *FittedCollection) Encode(w io.Writer) error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("core: encode fitted collection: %w", err)
	}
	return encodeV2(w, noiseWireV2{
		Mode: c.Mode(), Shape: c.Shape,
		InVivo: c.InVivo, Noise: c.Noise, Weight: c.Weight,
	})
}

func encodeV2(w io.Writer, wire noiseWireV2) error {
	if _, err := io.WriteString(w, noiseMagicV2); err != nil {
		return fmt.Errorf("core: encode noise file: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("core: encode noise file: %w", err)
	}
	return nil
}

// EncodeNoiseSource writes any noise source this package can decode again:
// stored collections in their native (v1-compatible) format, fitted
// sources in v2.
func EncodeNoiseSource(w io.Writer, src NoiseSource) error {
	switch s := src.(type) {
	case *Collection:
		return s.Encode(w)
	case *FittedCollection:
		return s.Encode(w)
	}
	return fmt.Errorf("core: cannot encode noise source of type %T", src)
}

// DecodeCollection reads a stored collection written by Collection.Encode.
// It accepts v1 and v2 stored payloads and fails with typed errors:
// ErrCollectionCorrupt for truncated/garbage input, ErrCollectionEmpty for
// zero-member files (which previously decoded into a collection whose
// Sample panicked), and ErrNotStoredCollection for fitted v2 payloads.
func DecodeCollection(r io.Reader) (*Collection, error) {
	src, err := DecodeNoiseSource(r)
	if err != nil {
		return nil, err
	}
	col, ok := src.(*Collection)
	if !ok {
		return nil, fmt.Errorf("%w (mode %q)", ErrNotStoredCollection, src.Mode())
	}
	return col, nil
}

// DecodeNoiseSource reads any noise file — legacy v1, v2 stored, or v2
// fitted — and returns the matching source. The error is typed: inspect
// with errors.Is(err, ErrCollectionCorrupt / ErrCollectionEmpty).
func DecodeNoiseSource(r io.Reader) (NoiseSource, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(noiseMagicV2))
	switch {
	case err == nil && bytes.Equal(magic, []byte(noiseMagicV2)):
		br.Discard(len(noiseMagicV2))
		return decodeV2(br)
	case err != nil && err != io.EOF && err != bufio.ErrBufferFull:
		return nil, fmt.Errorf("%w: %v", ErrCollectionCorrupt, err)
	}
	// Not the v2 magic (possibly a file shorter than it): legacy v1 gob.
	var wire collectionWire
	if err := gob.NewDecoder(br).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCollectionCorrupt, err)
	}
	c := &Collection{Shape: wire.Shape, Members: wire.Members, InVivo: wire.InVivo}
	if err := validateStored(c); err != nil {
		return nil, err
	}
	return c, nil
}

func decodeV2(r io.Reader) (NoiseSource, error) {
	var wire noiseWireV2
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCollectionCorrupt, err)
	}
	switch wire.Mode {
	case ModeStored:
		c := &Collection{Shape: wire.Shape, Members: wire.Members, Weights: wire.Weights, InVivo: wire.InVivo}
		if err := validateStored(c); err != nil {
			return nil, err
		}
		if len(c.Weights) > 0 && len(c.Weights) != len(c.Members) {
			return nil, fmt.Errorf("%w: %d weights for %d members", ErrCollectionCorrupt, len(c.Weights), len(c.Members))
		}
		for i, w := range c.Weights {
			if w == nil || !tensor.ShapeEq(w.Shape(), c.Shape) {
				return nil, fmt.Errorf("%w: weight %d shape mismatch", ErrCollectionCorrupt, i)
			}
		}
		return c, nil
	case ModeFitted, ModeFittedMul:
		fc := &FittedCollection{Shape: wire.Shape, Noise: wire.Noise, Weight: wire.Weight, InVivo: wire.InVivo}
		if wire.Mode == ModeFittedMul && fc.Weight == nil {
			return nil, fmt.Errorf("%w: fitted-mul payload without a weight distribution", ErrCollectionCorrupt)
		}
		if err := fc.validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCollectionCorrupt, err)
		}
		return fc, nil
	}
	return nil, fmt.Errorf("%w: unknown mode %q", ErrCollectionCorrupt, wire.Mode)
}

// validateStored guards the invariants Sample/Draw rely on.
func validateStored(c *Collection) error {
	if len(c.Members) == 0 {
		return ErrCollectionEmpty
	}
	if tensor.Volume(c.Shape) <= 0 {
		return fmt.Errorf("%w: invalid shape %v", ErrCollectionCorrupt, c.Shape)
	}
	for i, m := range c.Members {
		if m == nil || !tensor.ShapeEq(m.Shape(), c.Shape) {
			return fmt.Errorf("%w: member %d shape mismatch with %v", ErrCollectionCorrupt, i, c.Shape)
		}
	}
	return nil
}
