// Package core implements the Shredder algorithm itself: splitting a
// pre-trained network into a local (edge) part L and remote (cloud) part R,
// casting an additive noise tensor as trainable parameters, the loss
// CE − λ·Σ|nᵢ| that trades accuracy against in vivo privacy (paper Eq. 3),
// the noise trainer with the λ decay knob (paper §3.2), and the noise
// collection that is sampled at inference time (paper §2.5).
//
// The network weights are never modified: the trainer backpropagates
// through R only to obtain ∂loss/∂(R's input), which equals ∂loss/∂n since
// a' = a + n, and updates only the noise tensor. Training runs on frozen
// tapes (nn.Tape with FrozenParams), which makes TrainNoise reentrant: any
// number of noise tensors can train concurrently over one shared Split.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// Split is a pre-trained network cut into a local part L (layers
// [0, CutIndex]) and a remote part R (layers (CutIndex, end)).
type Split struct {
	// Net is the intact pre-trained network; Split never mutates weights.
	Net *nn.Sequential
	// CutIndex is the index of the last local layer.
	CutIndex int
	// InShape is the per-sample input shape.
	InShape []int

	// gradMu serializes the one legitimate mutation of shared network
	// state the training path performs: clearing parameter gradients left
	// behind by pre-training or legacy (non-frozen) backward passes.
	gradMu sync.Mutex

	// remotePlan holds the compiled inference plan for the remote part,
	// installed by CompileRemote. Behind an atomic pointer so it can be
	// (re)installed while inference traffic is in flight; nil means the
	// layer-at-a-time path. Only inference uses it — training always walks
	// the float64 tape path.
	remotePlan atomic.Pointer[nn.CompiledNet]
}

// NewSplit cuts net after the layer with the given name. in is the
// per-sample input shape (e.g. [1,28,28]).
func NewSplit(net *nn.Sequential, cutLayer string, in []int) (*Split, error) {
	idx := net.Index(cutLayer)
	if idx < 0 {
		return nil, fmt.Errorf("core: network %q has no layer %q", net.Name(), cutLayer)
	}
	if idx == net.Len()-1 {
		return nil, fmt.Errorf("core: cutting after the last layer %q leaves no remote part", cutLayer)
	}
	return &Split{Net: net, CutIndex: idx, InShape: append([]int(nil), in...)}, nil
}

// ActivationShape returns the per-sample shape of the activation at the
// cutting point — the shape of the noise tensor.
func (s *Split) ActivationShape() []int {
	return s.Net.OutShapeAt(s.InShape, s.CutIndex+1)
}

// Local computes a = L(x) for a batch. The local part never needs
// gradients in Shredder, so it runs on the reentrant inference path and is
// safe to call from many goroutines sharing one Split.
func (s *Split) Local(x *tensor.Tensor) *tensor.Tensor {
	return s.Net.InferRange(x, 0, s.CutIndex+1)
}

// Remote computes y = R(a') for a batch of (possibly noisy) activations.
// train selects training-mode behaviour (needed before RemoteBackward).
// This legacy path caches state on the layers, so it is NOT reentrant;
// concurrent code must use RemoteT or RemoteInfer.
func (s *Split) Remote(a *tensor.Tensor, train bool) *tensor.Tensor {
	return s.Net.ForwardRange(a, s.CutIndex+1, s.Net.Len(), train)
}

// RemoteT computes y = R(a') recording backward state on tape. With a
// frozen tape per training run, any number of goroutines may train over
// one shared Split concurrently.
func (s *Split) RemoteT(tape *nn.Tape, a *tensor.Tensor, train bool) *tensor.Tensor {
	return s.Net.ForwardRangeT(tape, a, s.CutIndex+1, s.Net.Len(), train)
}

// RemoteInfer computes y = R(a') on the reentrant inference path: no layer
// state is touched, so any number of goroutines may serve remote inference
// over one shared Split concurrently. This is the path CloudServer uses.
func (s *Split) RemoteInfer(a *tensor.Tensor) *tensor.Tensor {
	return s.Net.InferRange(a, s.CutIndex+1, s.Net.Len())
}

// CompileRemote lowers the remote part R into a fused inference plan at the
// given dtype and installs it for RemoteInferCompiled. Weights are
// snapshotted at compile time, consistent with Split's weights-are-frozen
// contract. Safe to call while serving: in-flight passes finish on the old
// plan.
func (s *Split) CompileRemote(dt nn.Dtype, opts ...nn.CompileOption) error {
	cn, err := nn.CompileRange(s.Net, s.CutIndex+1, s.Net.Len(), dt, opts...)
	if err != nil {
		return err
	}
	s.remotePlan.Store(cn)
	return nil
}

// Compiled returns the installed remote inference plan, or nil when the
// split serves through the layer-at-a-time path.
func (s *Split) Compiled() *nn.CompiledNet { return s.remotePlan.Load() }

// RemoteInferCompiled computes y = R(a') through the compiled plan when one
// is installed, falling back to RemoteInfer otherwise. Like RemoteInfer it
// is reentrant: any number of goroutines may call it concurrently.
func (s *Split) RemoteInferCompiled(a *tensor.Tensor) *tensor.Tensor {
	if cn := s.remotePlan.Load(); cn != nil {
		return cn.Infer(a)
	}
	return s.RemoteInfer(a)
}

// RemoteBackward backpropagates an output gradient through R and returns
// ∂loss/∂a′ — which is exactly ∂loss/∂n, the quantity the paper derives in
// §2.1 (legacy path; parameter gradients accumulate and must be zeroed by
// the caller).
func (s *Split) RemoteBackward(grad *tensor.Tensor) *tensor.Tensor {
	return s.Net.BackwardRange(grad, s.CutIndex+1, s.Net.Len())
}

// RemoteBackwardT backpropagates an output gradient through R, consuming
// the matching RemoteT's tape, and returns ∂loss/∂a′ = ∂loss/∂n. On a
// frozen tape no parameter gradients are written, so concurrent backward
// passes over one shared Split are race-free.
func (s *Split) RemoteBackwardT(tape *nn.Tape, grad *tensor.Tensor) *tensor.Tensor {
	return s.Net.BackwardRangeT(tape, grad, s.CutIndex+1, s.Net.Len())
}

// Forward runs the entire intact network (no noise) — the baseline path.
// It uses the reentrant inference path and is safe for concurrent use.
func (s *Split) Forward(x *tensor.Tensor) *tensor.Tensor {
	return s.Net.Infer(x)
}

// zeroParamGrads clears any parameter gradients left on the network (e.g.
// by pre-training), serialized so concurrent trainers do not race on the
// shared gradient buffers. Frozen-tape training never writes parameter
// gradients, so clearing on entry keeps the invariant "weights and their
// gradients are untouched by noise training".
func (s *Split) zeroParamGrads() {
	s.gradMu.Lock()
	defer s.gradMu.Unlock()
	s.Net.ZeroGrad()
}
