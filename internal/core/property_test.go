package core

import (
	"testing"
	"testing/quick"

	"shredder/internal/nn"
	"shredder/internal/tensor"
)

func TestPropertyAddBroadcastInverse(t *testing.T) {
	// Subtracting the same noise from every row recovers the activation.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n, d := 1+rng.Intn(5), 1+rng.Intn(8)
		a := rng.FillNormal(tensor.New(n, d), 0, 2)
		noise := rng.FillLaplace(tensor.New(d), 0, 1)
		neg := noise.Clone().Scale(-1)
		back := AddBroadcast(AddBroadcast(a, noise), neg)
		return tensor.AllClose(back, a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAccumulateGradLinearity(t *testing.T) {
	// Accumulating g1 then g2 equals accumulating g1+g2.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		d := 1 + rng.Intn(6)
		batch := 1 + rng.Intn(4)
		g1 := rng.FillNormal(tensor.New(batch, d), 0, 1)
		g2 := rng.FillNormal(tensor.New(batch, d), 0, 1)
		na := &NoiseTensor{Param: nn.NewParam("n", tensor.New(d))}
		na.AccumulateGrad(g1)
		na.AccumulateGrad(g2)
		nb := &NoiseTensor{Param: nn.NewParam("n", tensor.New(d))}
		nb.AccumulateGrad(tensor.Add(g1, g2))
		return tensor.AllClose(na.Param.Grad, nb.Param.Grad, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPrivacyGradOpposesShrinking(t *testing.T) {
	// The privacy term's gradient always points away from zero: applying a
	// small step against the gradient increases |n| elementwise (where
	// n ≠ 0).
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		d := 1 + rng.Intn(10)
		vals := rng.FillLaplace(tensor.New(d), 0, 1)
		nt := &NoiseTensor{Param: nn.NewParam("n", vals.Clone())}
		AddPrivacyGrad(nt, 0.1)
		for i, v := range vals.Data() {
			if v == 0 {
				continue
			}
			stepped := v - 0.01*nt.Param.Grad.Data()[i] // gradient-descent step
			if abs(stepped) <= abs(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestPropertyShredderLossLambdaMonotone(t *testing.T) {
	// For fixed logits and noise, the total loss decreases as λ grows (the
	// −λΣ|n| term), while the CE component is unchanged.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		logits := rng.FillNormal(tensor.New(2, 4), 0, 1)
		labels := []int{rng.Intn(4), rng.Intn(4)}
		noise := &NoiseTensor{Param: nn.NewParam("n", rng.FillLaplace(tensor.New(5), 0, 1))}
		t0, ce0, _ := ShredderLoss(logits, labels, noise, 0.01)
		t1, ce1, _ := ShredderLoss(logits, labels, noise, 0.1)
		return ce0 == ce1 && t1 < t0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
