package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shredder/internal/noisedist"
	"shredder/internal/tensor"
)

// fixtureCollection mirrors testdata/legacy_v1.gob exactly: the committed
// file was written by the v1 encoder over these values.
func fixtureCollection() *Collection {
	return &Collection{
		Shape: []int{2, 2},
		Members: []*tensor.Tensor{
			tensor.From([]float64{0.5, -1.25, 2, 3.75}, 2, 2),
			tensor.From([]float64{-0.5, 1.5, -2.25, 0.125}, 2, 2),
		},
		InVivo: []float64{1.5, 2.5},
	}
}

// The committed legacy file must keep decoding: old noise files stay
// loadable forever.
func TestDecodeLegacyV1Fixture(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "legacy_v1.gob"))
	if err != nil {
		t.Fatal(err)
	}
	col, err := DecodeCollection(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := fixtureCollection()
	if !tensor.ShapeEq(col.Shape, want.Shape) || col.Len() != 2 {
		t.Fatalf("decoded shape %v, %d members", col.Shape, col.Len())
	}
	for i := range want.Members {
		if !tensor.Equal(col.Members[i], want.Members[i]) {
			t.Fatalf("member %d mismatch", i)
		}
	}
	if col.MeanInVivo() != 2.0 {
		t.Fatalf("MeanInVivo = %v, want 2", col.MeanInVivo())
	}
	// The mode-agnostic decoder must yield the same stored collection.
	src, err := DecodeNoiseSource(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Collection); !ok || src.Mode() != ModeStored {
		t.Fatalf("DecodeNoiseSource = %T mode %q", src, src.Mode())
	}
}

// Plain additive collections must keep emitting the exact legacy bytes —
// new writers stay readable by old decoders.
func TestEncodeV1ByteCompatible(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "legacy_v1.gob"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fixtureCollection().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("additive encode is not byte-identical to the legacy format (%d vs %d bytes)", buf.Len(), len(raw))
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"garbage":   []byte("this is not a noise file at all, nor even gob"),
		"short":     {0x01, 0x02},
		"badmagic2": append([]byte(noiseMagicV2), []byte("trailing garbage not gob")...),
	}
	if raw, err := os.ReadFile(filepath.Join("testdata", "legacy_v1.gob")); err == nil {
		cases["truncated"] = raw[:len(raw)/2]
	} else {
		t.Fatal(err)
	}
	for name, data := range cases {
		if _, err := DecodeCollection(bytes.NewReader(data)); !errors.Is(err, ErrCollectionCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCollectionCorrupt", name, err)
		}
	}
}

// A structurally valid file with zero members used to decode into a
// collection whose Sample panics; it must now fail up front, typed.
func TestDecodeEmptyCollection(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(collectionWire{Shape: []int{2, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCollection(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCollectionEmpty) {
		t.Fatalf("err = %v, want ErrCollectionEmpty", err)
	}
}

func TestDecodeMemberShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	wire := collectionWire{Shape: []int{2, 2}, Members: []*tensor.Tensor{tensor.New(3)}}
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCollection(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCollectionCorrupt) {
		t.Fatalf("err = %v, want ErrCollectionCorrupt", err)
	}
}

func TestEncodeEmptyCollectionRefused(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Collection{}).Encode(&buf); !errors.Is(err, ErrCollectionEmpty) {
		t.Fatalf("err = %v, want ErrCollectionEmpty", err)
	}
}

// syntheticCollection builds a deterministic additive collection without
// any training.
func syntheticCollection(members int, mul bool) *Collection {
	rng := tensor.NewRNG(42)
	c := &Collection{}
	for i := 0; i < members; i++ {
		n := NewNoiseTensor([]int{3, 4}, 0, float64(i+1), rng)
		var w *NoiseTensor
		if mul {
			w = NewWeightTensor([]int{3, 4}, 1, 0.2, rng)
		}
		c.AddMember(n, w, float64(i))
	}
	return c
}

// Fitted payloads must round-trip byte-identically: encode → decode →
// encode reproduces the same file, and the decoded source draws the same
// noise for the same seed.
func TestFittedRoundTripByteIdentical(t *testing.T) {
	for _, mul := range []bool{false, true} {
		col := syntheticCollection(3, mul)
		fc, err := FitCollection(col, noisedist.Laplace)
		if err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := fc.Encode(&first); err != nil {
			t.Fatal(err)
		}
		src, err := DecodeNoiseSource(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := src.(*FittedCollection)
		if !ok || got.Mode() != fc.Mode() {
			t.Fatalf("decoded %T mode %q, want %q", src, src.Mode(), fc.Mode())
		}
		var second bytes.Buffer
		if err := got.Encode(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("mul=%v: fitted round-trip not byte-identical (%d vs %d bytes)", mul, first.Len(), second.Len())
		}
		a := fc.Draw(tensor.NewRNG(7))
		b := got.Draw(tensor.NewRNG(7))
		if !tensor.Equal(a.Noise, b.Noise) {
			t.Fatalf("mul=%v: decoded source draws different noise for the same seed", mul)
		}
		if mul && !tensor.Equal(a.Weight, b.Weight) {
			t.Fatal("decoded source draws different weights for the same seed")
		}
	}
}

// Multiplicative stored collections need the v2 format and must round-trip
// with their weights.
func TestStoredMultiplicativeRoundTrip(t *testing.T) {
	col := syntheticCollection(2, true)
	var buf bytes.Buffer
	if err := col.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(noiseMagicV2)) {
		t.Fatal("multiplicative collection must use the v2 format")
	}
	got, err := DecodeCollection(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Multiplicative() || got.Len() != 2 {
		t.Fatalf("decoded: mul=%v len=%d", got.Multiplicative(), got.Len())
	}
	for i := range col.Members {
		if !tensor.Equal(got.Members[i], col.Members[i]) || !tensor.Equal(got.Weights[i], col.Weights[i]) {
			t.Fatalf("member %d tensors mismatch", i)
		}
	}
	d1, d2 := col.Draw(tensor.NewRNG(5)), got.Draw(tensor.NewRNG(5))
	if d1.Member != d2.Member || !tensor.Equal(d1.Noise, d2.Noise) || !tensor.Equal(d1.Weight, d2.Weight) {
		t.Fatal("decoded collection draws differently")
	}
}

// DecodeCollection must not silently hand back a fitted source.
func TestDecodeCollectionRejectsFittedPayload(t *testing.T) {
	fc, err := FitCollection(syntheticCollection(2, false), noisedist.Gaussian)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCollection(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrNotStoredCollection) {
		t.Fatalf("err = %v, want ErrNotStoredCollection", err)
	}
}

func TestDecodeV2BadPayloads(t *testing.T) {
	encode := func(wire noiseWireV2) []byte {
		var buf bytes.Buffer
		if err := encodeV2(&buf, wire); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fc, err := FitCollection(syntheticCollection(2, false), noisedist.Laplace)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"unknown mode":           encode(noiseWireV2{Mode: "psychedelic", Shape: []int{2}}),
		"fitted-mul sans weight": encode(noiseWireV2{Mode: ModeFittedMul, Shape: []int{3, 4}, Noise: fc.Noise}),
		"fitted sans noise":      encode(noiseWireV2{Mode: ModeFitted, Shape: []int{3, 4}}),
		"fitted shape mismatch":  encode(noiseWireV2{Mode: ModeFitted, Shape: []int{5}, Noise: fc.Noise}),
		"stored empty":           encode(noiseWireV2{Mode: ModeStored, Shape: []int{2}}),
	}
	for name, data := range cases {
		_, err := DecodeNoiseSource(bytes.NewReader(data))
		if name == "stored empty" {
			if !errors.Is(err, ErrCollectionEmpty) {
				t.Fatalf("%s: err = %v, want ErrCollectionEmpty", name, err)
			}
			continue
		}
		if !errors.Is(err, ErrCollectionCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCollectionCorrupt", name, err)
		}
	}
}

type fakeSource struct{ NoiseSource }

func TestEncodeNoiseSourceDispatch(t *testing.T) {
	col := syntheticCollection(1, false)
	var buf bytes.Buffer
	if err := EncodeNoiseSource(&buf, col); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCollection(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	err := EncodeNoiseSource(&buf, fakeSource{})
	if err == nil || !strings.Contains(err.Error(), "cannot encode") {
		t.Fatalf("err = %v, want cannot-encode", err)
	}
}
