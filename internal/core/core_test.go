package core

import (
	"bytes"
	"math"
	"testing"

	"shredder/internal/model"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// testSplit returns a tiny pre-trained LeNet split at its last conv, with
// its train/test data. Cached across tests via sync-free package state is
// avoided; runs are fast enough to repeat.
func testSplit(t *testing.T, seed int64) (*Split, *model.Pretrained) {
	t.Helper()
	pre, err := model.Train(model.LeNet(), model.TrainConfig{TrainN: 400, TestN: 120, Epochs: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	layer, err := pre.Spec.CutLayer(pre.Spec.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewSplit(pre.Net, layer, pre.Spec.Dataset.SampleShape())
	if err != nil {
		t.Fatal(err)
	}
	return split, pre
}

func TestNewSplitErrors(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := nn.NewSequential("n",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4, 2, rng),
	)
	if _, err := NewSplit(net, "missing", []int{1, 2, 2}); err == nil {
		t.Fatal("expected error for missing layer")
	}
	if _, err := NewSplit(net, "fc", []int{1, 2, 2}); err == nil {
		t.Fatal("expected error for cut after last layer")
	}
	if _, err := NewSplit(net, "flat", []int{1, 2, 2}); err != nil {
		t.Fatalf("valid cut rejected: %v", err)
	}
}

func TestSplitCompositionEqualsFullForward(t *testing.T) {
	split, pre := testSplit(t, 21)
	b := pre.Test.Batches(8)[0]
	full := split.Forward(b.Images)
	a := split.Local(b.Images)
	composed := split.Remote(a, false)
	if !tensor.AllClose(full, composed, 1e-12) {
		t.Fatal("L∘R != f")
	}
	// Activation shape must match the declared one.
	if !tensor.ShapeEq(a.Shape()[1:], split.ActivationShape()) {
		t.Fatalf("activation shape %v, declared %v", a.Shape()[1:], split.ActivationShape())
	}
}

func TestNoiseTensorInitializationMoments(t *testing.T) {
	rng := tensor.NewRNG(2)
	n := NewNoiseTensor([]int{100, 100}, 0.5, 2, rng)
	v := n.Values()
	if math.Abs(v.Mean()-0.5) > 0.1 {
		t.Fatalf("noise mean %v, want ~0.5", v.Mean())
	}
	if math.Abs(v.Variance()-8) > 0.8 { // Var(Laplace(·,2)) = 2·4 = 8
		t.Fatalf("noise variance %v, want ~8", v.Variance())
	}
}

func TestAddBroadcast(t *testing.T) {
	a := tensor.From([]float64{1, 2, 3, 4}, 2, 2)
	noise := tensor.From([]float64{10, 20}, 2)
	out := AddBroadcast(a, noise)
	want := tensor.From([]float64{11, 22, 13, 24}, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("AddBroadcast = %v", out)
	}
	if !tensor.Equal(a, tensor.From([]float64{1, 2, 3, 4}, 2, 2)) {
		t.Fatal("AddBroadcast must not modify input")
	}
}

func TestAddBroadcastShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddBroadcast(tensor.New(2, 3), tensor.New(2))
}

func TestAccumulateGradSumsOverBatch(t *testing.T) {
	n := NewNoiseTensor([]int{2}, 0, 1, tensor.NewRNG(3))
	n.Param.ZeroGrad()
	g := tensor.From([]float64{1, 2, 10, 20, 100, 200}, 3, 2)
	n.AccumulateGrad(g)
	want := tensor.From([]float64{111, 222}, 2)
	if !tensor.Equal(n.Param.Grad, want) {
		t.Fatalf("accumulated grad = %v, want %v", n.Param.Grad, want)
	}
}

func TestAddPrivacyGradSigns(t *testing.T) {
	n := &NoiseTensor{Param: nn.NewParam("noise", tensor.From([]float64{2, -3, 0}, 3))}
	AddPrivacyGrad(n, 0.1)
	want := tensor.From([]float64{-0.1, 0.1, 0}, 3)
	if !tensor.AllClose(n.Param.Grad, want, 1e-12) {
		t.Fatalf("privacy grad = %v, want %v", n.Param.Grad, want)
	}
}

// The gradient the trainer computes (through R, summed over batch, plus the
// privacy term) must match finite differences of the full Shredder loss
// with respect to the noise — this is the paper's §2.1 chain-rule claim,
// verified end to end.
func TestNoiseGradientMatchesFiniteDifference(t *testing.T) {
	split, pre := testSplit(t, 22)
	b := pre.Test.Batches(6)[0]
	rng := tensor.NewRNG(4)
	noise := NewNoiseTensor(split.ActivationShape(), 0, 0.5, rng)
	lambda := 0.01

	lossOf := func() float64 {
		a := split.Local(b.Images)
		logits := split.Remote(noise.Apply(a), false)
		total, _, _ := ShredderLoss(logits, b.Labels, noise, lambda)
		return total
	}

	a := split.Local(b.Images)
	logits := split.Remote(noise.Apply(a), true)
	_, _, grad := ShredderLoss(logits, b.Labels, noise, lambda)
	dAprime := split.RemoteBackward(grad)
	noise.Param.ZeroGrad()
	noise.AccumulateGrad(dAprime)
	AddPrivacyGrad(noise, lambda)
	split.Net.ZeroGrad()

	eps := 1e-5
	nd := noise.Param.Value.Data()
	for _, i := range []int{0, 17, 40, 77, 119} {
		orig := nd[i]
		nd[i] = orig + eps
		lp := lossOf()
		nd[i] = orig - eps
		lm := lossOf()
		nd[i] = orig
		num := (lp - lm) / (2 * eps)
		ana := noise.Param.Grad.Data()[i]
		if math.Abs(num-ana) > 1e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("noise grad[%d]: analytic %v vs numeric %v", i, ana, num)
		}
	}
}

func TestTrainNoiseFreezesWeights(t *testing.T) {
	split, pre := testSplit(t, 23)
	before := make([]*tensor.Tensor, 0)
	for _, p := range split.Net.Params() {
		before = append(before, p.Value.Clone())
	}
	TrainNoise(split, pre.Train, NoiseConfig{Scale: 1, Lambda: 0.01, Epochs: 0.2, Seed: 1})
	for i, p := range split.Net.Params() {
		if !tensor.Equal(before[i], p.Value) {
			t.Fatalf("parameter %s changed during noise training", p.Name)
		}
		if p.Grad.AbsSum() != 0 {
			t.Fatalf("parameter %s has stale gradients after noise training", p.Name)
		}
	}
}

func TestTrainNoiseRecoversAccuracy(t *testing.T) {
	// Core claim: starting from accuracy-destroying noise, training the
	// noise recovers most of the accuracy while keeping noise large.
	split, pre := testSplit(t, 24)
	rng := tensor.NewRNG(5)
	init := NewNoiseTensor(split.ActivationShape(), 0, 2.0, rng)

	accWith := func(noise *tensor.Tensor) float64 {
		correct := 0
		for _, b := range pre.Test.Batches(32) {
			a := split.Local(b.Images)
			logits := split.Remote(AddBroadcast(a, noise), false)
			for i, y := range b.Labels {
				if logits.Slice(i).Argmax() == y {
					correct++
				}
			}
		}
		return float64(correct) / float64(pre.Test.N())
	}

	accInit := accWith(init.Values())
	res := TrainNoise(split, pre.Train, NoiseConfig{
		Scale: 2.0, Lambda: 0.01, PrivacyTarget: 4, Epochs: 4, Seed: 6,
	})
	accTrained := accWith(res.Noise.Values())
	if accTrained <= accInit+0.05 {
		t.Fatalf("noise training did not recover accuracy: init %.3f, trained %.3f (baseline %.3f)",
			accInit, accTrained, pre.TestAcc)
	}
	if res.FinalInVivo <= 0 {
		t.Fatal("final in vivo privacy must be positive")
	}
	if res.Iterations <= 0 || res.Epochs <= 0 {
		t.Fatalf("bad bookkeeping: %+v", res)
	}
}

func TestTrainNoiseLambdaGrowsNoiseVsZeroLambda(t *testing.T) {
	// With λ > 0 and no decay, the trained noise must end up with larger
	// magnitude than privacy-agnostic (λ=0) training from the same init.
	split, pre := testSplit(t, 25)
	shredder := TrainNoise(split, pre.Train, NoiseConfig{Scale: 1, Lambda: 0.02, Epochs: 1, Seed: 7})
	agnostic := TrainNoise(split, pre.Train, NoiseConfig{Scale: 1, Lambda: 0, Epochs: 1, Seed: 7})
	if shredder.Noise.Values().AbsSum() <= agnostic.Noise.Values().AbsSum() {
		t.Fatalf("λ>0 should yield larger noise: shredder %v, agnostic %v",
			shredder.Noise.Values().AbsSum(), agnostic.Noise.Values().AbsSum())
	}
	if shredder.FinalInVivo <= agnostic.FinalInVivo {
		t.Fatalf("λ>0 should yield more in vivo privacy: %v vs %v",
			shredder.FinalInVivo, agnostic.FinalInVivo)
	}
}

func TestTrainNoiseEventsAndFractionalEpochs(t *testing.T) {
	split, pre := testSplit(t, 26)
	var events []TrainEvent
	res := TrainNoise(split, pre.Train, NoiseConfig{
		Scale: 1, Lambda: 0.01, Epochs: 0.25, Seed: 8, EvalEvery: 1,
		Log: func(e TrainEvent) { events = append(events, e) },
	})
	if len(events) != res.Iterations {
		t.Fatalf("%d events for %d iterations at EvalEvery=1", len(events), res.Iterations)
	}
	if res.Epochs > 0.5 {
		t.Fatalf("fractional epoch config ran %.2f epochs", res.Epochs)
	}
	for _, e := range events {
		if e.InVivo < 0 || math.IsNaN(e.Loss) {
			t.Fatalf("bad event %+v", e)
		}
	}
	if len(res.Events) != len(events) {
		t.Fatal("result events must mirror logged events")
	}
}

func TestTrainNoiseLambdaDecayTriggers(t *testing.T) {
	split, pre := testSplit(t, 27)
	// Gigantic initial noise: in vivo starts above target, so λ must decay
	// from the first evaluation.
	res := TrainNoise(split, pre.Train, NoiseConfig{
		Scale: 5, Lambda: 0.05, PrivacyTarget: 0.1, LambdaDecay: 0.5,
		Epochs: 0.5, Seed: 9, EvalEvery: 1,
	})
	first := res.Events[0].Lambda
	last := res.Events[len(res.Events)-1].Lambda
	if last >= first {
		t.Fatalf("λ did not decay: first %v, last %v", first, last)
	}
}

func TestTrainNoiseSelfSupervised(t *testing.T) {
	split, pre := testSplit(t, 28)
	res := TrainNoise(split, pre.Train, NoiseConfig{
		Scale: 1.5, Lambda: 0.01, Epochs: 1, Seed: 10, SelfSupervised: true,
	})
	if !res.Noise.Values().AllFinite() {
		t.Fatal("self-supervised noise diverged")
	}
	if res.FinalInVivo <= 0 {
		t.Fatal("self-supervised training should retain positive privacy")
	}
}

func TestCollectionSampleAndStats(t *testing.T) {
	rng := tensor.NewRNG(11)
	c := &Collection{}
	for i := 0; i < 3; i++ {
		n := NewNoiseTensor([]int{4}, 0, 1, rng)
		c.Add(n, float64(i+1))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.MeanInVivo(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MeanInVivo = %v", got)
	}
	seen := map[*tensor.Tensor]bool{}
	for i := 0; i < 100; i++ {
		seen[c.Sample(rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("sampling hit %d of 3 members", len(seen))
	}
}

func TestCollectionShapeMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(12)
	c := &Collection{}
	c.Add(NewNoiseTensor([]int{4}, 0, 1, rng), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add(NewNoiseTensor([]int{5}, 0, 1, rng), 1)
}

func TestCollectionEncodeDecode(t *testing.T) {
	rng := tensor.NewRNG(13)
	c := &Collection{}
	c.Add(NewNoiseTensor([]int{3, 2}, 0, 1, rng), 0.5)
	c.Add(NewNoiseTensor([]int{3, 2}, 0, 1, rng), 0.7)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !tensor.Equal(got.Members[1], c.Members[1]) {
		t.Fatal("collection round trip failed")
	}
	if got.InVivo[0] != 0.5 {
		t.Fatal("in vivo stats lost in round trip")
	}
}

func TestCollectDistinctMembers(t *testing.T) {
	split, pre := testSplit(t, 29)
	col := Collect(split, pre.Train, NoiseConfig{Scale: 1, Lambda: 0.01, Epochs: 0.1, Seed: 100}, 3, 1)
	if col.Len() != 3 {
		t.Fatalf("collected %d members", col.Len())
	}
	if tensor.Equal(col.Members[0], col.Members[1]) {
		t.Fatal("collection members should differ (different seeds)")
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	split, pre := testSplit(t, 30)
	col := Collect(split, pre.Train, NoiseConfig{
		Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 2, Seed: 200,
	}, 4, 1)
	res := Evaluate(split, pre.Test, col, EvalConfig{Seed: 1})
	if res.BaselineAcc <= 0.3 {
		t.Fatalf("baseline accuracy %v too low for a trained net", res.BaselineAcc)
	}
	if res.NoisyAcc <= 0.2 {
		t.Fatalf("noisy accuracy %v collapsed", res.NoisyAcc)
	}
	if res.ShreddedMI >= res.OrigMI {
		t.Fatalf("shredded MI (%v) should be below original (%v)", res.ShreddedMI, res.OrigMI)
	}
	if res.MILossPct <= 0 {
		t.Fatalf("MI loss %v%% should be positive", res.MILossPct)
	}
	if res.InVivo <= 0 {
		t.Fatal("in vivo privacy should be positive")
	}
}

func TestActivationsShapeAndNoise(t *testing.T) {
	split, pre := testSplit(t, 31)
	rng := tensor.NewRNG(14)
	clean := Activations(split, pre.Test, nil, 16, rng)
	wantShape := append([]int{pre.Test.N()}, split.ActivationShape()...)
	if !tensor.ShapeEq(clean.Shape(), wantShape) {
		t.Fatalf("activations shape %v, want %v", clean.Shape(), wantShape)
	}
	col := &Collection{}
	col.Add(NewNoiseTensor(split.ActivationShape(), 0, 3, rng), 1)
	noisy := Activations(split, pre.Test, col, 16, rng)
	if tensor.AllClose(clean, noisy, 1e-9) {
		t.Fatal("noisy activations should differ from clean")
	}
}
