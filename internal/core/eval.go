package core

import (
	"shredder/internal/data"
	"shredder/internal/mi"
	"shredder/internal/privacy"
	"shredder/internal/tensor"
)

// EvalResult summarizes an evaluation of a split + noise collection on a
// test set — one row of the paper's Table 1.
type EvalResult struct {
	// BaselineAcc is accuracy of the intact network without noise.
	BaselineAcc float64
	// NoisyAcc is accuracy with a noise tensor sampled per batch.
	NoisyAcc float64
	// AccLossPct is the accuracy loss in percentage points.
	AccLossPct float64
	// OrigMI and ShreddedMI are I(x; a) and I(x; a′) in bits.
	OrigMI, ShreddedMI float64
	// MILossBits and MILossPct quantify the information loss.
	MILossBits, MILossPct float64
	// InVivo is the mean in vivo privacy over the evaluation batches.
	InVivo float64
}

// EvalConfig controls Evaluate.
type EvalConfig struct {
	// BatchSize for the accuracy passes (default 32).
	BatchSize int
	// MI configures the mutual-information estimator.
	MI mi.Options
	// Seed drives the per-batch noise sampling.
	Seed int64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.MI.MaxSamples == 0 {
		c.MI.MaxSamples = 256
	}
	return c
}

// Activations runs the local part over the whole dataset and returns the
// batched activations [N, ...]. When a noise source is given, an
// independently drawn perturbation is applied to every sample — the
// paper's inference-time sampling (§2.5). Note that a single fixed noise
// tensor is a constant shift and leaves mutual information unchanged; the
// privacy comes from per-query draws. For a stored Collection the draws
// consume the same random stream Sample always did, so measurements are
// bit-for-bit unchanged by the NoiseSource seam.
func Activations(split *Split, ds *data.Dataset, src NoiseSource, batchSize int, rng *tensor.RNG) *tensor.Tensor {
	shape := append([]int{ds.N()}, split.ActivationShape()...)
	out := tensor.New(shape...)
	row := 0
	for _, b := range ds.Batches(batchSize) {
		a := split.Local(b.Images)
		n := a.Dim(0)
		for i := 0; i < n; i++ {
			dst := out.Slice(row)
			dst.CopyFrom(a.Slice(i))
			if src != nil {
				src.Draw(rng).ApplyInPlace(dst)
			}
			row++
		}
	}
	return out
}

// Evaluate measures baseline/noisy accuracy, in vivo privacy, and the
// original vs shredded mutual information of a split with a noise source
// on a test set. Additive sources report the classic 1/SNR =
// Var(noise)/E[a²]; multiplicative draws report the realized perturbation
// power E[(a′−a)²]/E[a²], since the weight scales the signal and the noise
// variance alone no longer measures the distortion.
func Evaluate(split *Split, ds *data.Dataset, src NoiseSource, cfg EvalConfig) EvalResult {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	var res EvalResult

	correctBase, correctNoisy, n := 0, 0, 0
	var inVivoSum float64
	batches := 0
	for _, b := range ds.Batches(cfg.BatchSize) {
		a := split.Local(b.Images)
		base := split.RemoteInfer(a)
		// Per-sample noise draws, as at real inference time (§2.5).
		aPrime := a.Clone()
		var lastDraw Draw
		for i := 0; i < aPrime.Dim(0); i++ {
			lastDraw = src.Draw(rng)
			lastDraw.ApplyInPlace(aPrime.Slice(i))
		}
		noisy := split.RemoteInfer(aPrime)
		for i, y := range b.Labels {
			if base.Slice(i).Argmax() == y {
				correctBase++
			}
			if noisy.Slice(i).Argmax() == y {
				correctNoisy++
			}
		}
		if lastDraw.Multiplicative() {
			if ea2 := a.SqSum() / float64(a.Len()); ea2 > 0 {
				inVivoSum += meanSqDiff(aPrime, a) / ea2
			}
		} else {
			inVivoSum += privacy.InVivo(a, lastDraw.Noise)
		}
		batches++
		n += len(b.Labels)
	}
	if n > 0 {
		res.BaselineAcc = float64(correctBase) / float64(n)
		res.NoisyAcc = float64(correctNoisy) / float64(n)
	}
	if batches > 0 {
		res.InVivo = inVivoSum / float64(batches)
	}
	res.AccLossPct = privacy.AccuracyLoss(res.BaselineAcc, res.NoisyAcc)

	clean := Activations(split, ds, nil, cfg.BatchSize, rng)
	shredded := Activations(split, ds, src, cfg.BatchSize, rng)
	res.OrigMI = privacy.MeasureMI(ds.Images, clean, cfg.MI)
	miOpts := cfg.MI
	miOpts.Seed++ // decorrelate subsampling between the two estimates
	res.ShreddedMI = privacy.MeasureMI(ds.Images, shredded, miOpts)
	bits, frac := privacy.InformationLoss(res.OrigMI, res.ShreddedMI)
	res.MILossBits = bits
	res.MILossPct = frac * 100
	return res
}
