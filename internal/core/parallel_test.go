package core

// Tests for the reentrant training path: parallel Collect must be
// byte-identical to sequential Collect, and many TrainNoise runs must be
// able to share one Split concurrently (the -race CI gate enforces the
// absence of data races; these tests also pin determinism).

import (
	"sync"
	"testing"

	"shredder/internal/data"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// dropoutSplit builds an untrained network whose remote part contains a
// dropout layer, so concurrent training runs exercise the per-tape RNG
// streams, plus a small synthetic dataset. TrainNoise never updates
// weights, so pre-training is unnecessary for determinism tests.
func dropoutSplit(t *testing.T) (*Split, *data.Dataset) {
	t.Helper()
	net := nn.NewSequential("droptest",
		nn.NewConv2D("conv0", 1, 4, 3, 3, 1, 1, tensor.NewRNG(11)),
		nn.NewReLU("relu0"),
		nn.NewMaxPool2D("pool0", 2, 2),
		nn.NewDropout("drop0", 0.3, tensor.NewRNG(12)),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4*5*5, 4, tensor.NewRNG(13)),
	)
	split, err := NewSplit(net, "relu0", []int{1, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(14)
	n := 64
	images := rng.FillNormal(tensor.New(n, 1, 10, 10), 0, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	ds := &data.Dataset{Name: "synth", Classes: 4, Images: images, Labels: labels}
	return split, ds
}

func collectCfg() NoiseConfig {
	return NoiseConfig{Scale: 1.5, Lambda: 0.01, PrivacyTarget: 3, Epochs: 2, Seed: 400}
}

// TestCollectParallelMatchesSequential is the determinism contract of the
// parallel collection trainer: workers=4 must produce member-by-member
// bitwise-identical tensors and InVivo values to workers=1.
func TestCollectParallelMatchesSequential(t *testing.T) {
	split, ds := dropoutSplit(t)
	const count = 6

	seq := Collect(split, ds, collectCfg(), count, 1)
	par := Collect(split, ds, collectCfg(), count, 4)

	if seq.Len() != count || par.Len() != count {
		t.Fatalf("collected %d sequential / %d parallel members, want %d", seq.Len(), par.Len(), count)
	}
	for i := 0; i < count; i++ {
		if !tensor.Equal(seq.Members[i], par.Members[i]) {
			t.Errorf("member %d: parallel tensor differs from sequential", i)
		}
		if seq.InVivo[i] != par.InVivo[i] {
			t.Errorf("member %d: parallel InVivo %v != sequential %v", i, par.InVivo[i], seq.InVivo[i])
		}
	}
}

// TestCollectWorkerCountsAgree sweeps worker counts (including the
// workers<=0 auto mode) and requires identical collections from each.
func TestCollectWorkerCountsAgree(t *testing.T) {
	split, ds := dropoutSplit(t)
	const count = 4
	want := Collect(split, ds, collectCfg(), count, 1)
	for _, workers := range []int{0, 2, 3, count + 5} {
		got := Collect(split, ds, collectCfg(), count, workers)
		for i := 0; i < count; i++ {
			if !tensor.Equal(want.Members[i], got.Members[i]) {
				t.Fatalf("workers=%d: member %d differs from sequential", workers, i)
			}
		}
	}
}

// TestConcurrentTrainNoiseSharedSplit trains 4 noise tensors concurrently
// over one shared Split — the reentrancy the tape refactor exists to
// provide. Under -race this fails if any layer still caches state on the
// struct; the result check pins that each run is also deterministic.
func TestConcurrentTrainNoiseSharedSplit(t *testing.T) {
	split, ds := dropoutSplit(t)
	const runs = 4

	cfgFor := func(i int) NoiseConfig {
		cfg := collectCfg()
		cfg.Seed = 900 + int64(i)*101
		return cfg
	}

	// Sequential reference results.
	want := make([]*tensor.Tensor, runs)
	for i := 0; i < runs; i++ {
		want[i] = TrainNoise(split, ds, cfgFor(i)).Noise.Values().Clone()
	}

	got := make([]*tensor.Tensor, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = TrainNoise(split, ds, cfgFor(i)).Noise.Values().Clone()
		}(i)
	}
	wg.Wait()

	for i := 0; i < runs; i++ {
		if !tensor.Equal(got[i], want[i]) {
			t.Errorf("run %d: concurrent result differs from sequential", i)
		}
	}
	// The shared network must come out untouched: zero parameter gradients.
	for _, p := range split.Net.Params() {
		for _, v := range p.Grad.Data() {
			if v != 0 {
				t.Fatalf("concurrent training left parameter gradient on %s", p.Name)
			}
		}
	}
}

// TestTrainNoiseConcurrentWithInference mixes training and serving on one
// Split: noise training must not disturb concurrent RemoteInfer calls.
func TestTrainNoiseConcurrentWithInference(t *testing.T) {
	split, ds := dropoutSplit(t)
	a := split.Local(ds.Batches(8)[0].Images)
	want := split.RemoteInfer(a)

	done := make(chan struct{})
	go func() {
		defer close(done)
		TrainNoise(split, ds, collectCfg())
	}()
	for i := 0; i < 20; i++ {
		if got := split.RemoteInfer(a); !tensor.Equal(got, want) {
			t.Error("inference result changed while training was in flight")
			break
		}
	}
	<-done
}
