package noisedist

import (
	"math"
	"sort"
	"testing"

	"shredder/internal/tensor"
)

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"": Laplace, "laplace": Laplace,
		"gaussian": Gaussian, "normal": Gaussian, "norm": Gaussian, "gauss": Gaussian,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("cauchy"); err == nil {
		t.Fatal("ParseKind should reject unknown kinds")
	}
	if Laplace.String() != "laplace" || Gaussian.String() != "gaussian" {
		t.Fatal("Kind.String not parse-stable")
	}
}

// The MLE fits must recover the parameters of large synthetic samples.
func TestFitValuesRecoversParameters(t *testing.T) {
	rng := tensor.NewRNG(1)
	n := 20000
	lap := make([]float64, n)
	gau := make([]float64, n)
	for i := range lap {
		lap[i] = rng.Laplace(1.5, 2.0)
		gau[i] = rng.Normal(-0.5, 3.0)
	}
	cl := FitValues(lap, Laplace)
	if math.Abs(cl.Loc-1.5) > 0.1 || math.Abs(cl.Scale-2.0) > 0.1 {
		t.Fatalf("Laplace fit (%.3f, %.3f), want (1.5, 2.0)", cl.Loc, cl.Scale)
	}
	cg := FitValues(gau, Gaussian)
	if math.Abs(cg.Loc+0.5) > 0.1 || math.Abs(cg.Scale-3.0) > 0.1 {
		t.Fatalf("Gaussian fit (%.3f, %.3f), want (-0.5, 3.0)", cg.Loc, cg.Scale)
	}
	if got := FitValues(nil, Laplace); got != (Component{}) {
		t.Fatalf("empty fit = %+v", got)
	}
}

func TestFitValuesExact(t *testing.T) {
	vals := []float64{-2, 0, 1, 3}
	cl := FitValues(vals, Laplace)
	if cl.Loc != 0.5 { // even length: mean of middle two
		t.Fatalf("Laplace loc = %v, want 0.5", cl.Loc)
	}
	wantScale := (2.5 + 0.5 + 0.5 + 2.5) / 4
	if math.Abs(cl.Scale-wantScale) > 1e-12 {
		t.Fatalf("Laplace scale = %v, want %v", cl.Scale, wantScale)
	}
	cg := FitValues(vals, Gaussian)
	if cg.Loc != 0.5 {
		t.Fatalf("Gaussian loc = %v, want 0.5", cg.Loc)
	}
}

// Sampled noise must be rank-identical to the trained tensor: the sampled
// value at the position of the k-th smallest trained value is itself the
// k-th smallest sampled value.
func TestSamplePreservesSpatialOrdering(t *testing.T) {
	rng := tensor.NewRNG(7)
	trained := tensor.New(4, 5)
	rng.FillLaplace(trained, 0, 3)
	f := Fit(trained, Laplace)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	s := f.Sample(tensor.NewRNG(11))
	if !tensor.ShapeEq(s.Shape(), trained.Shape()) {
		t.Fatalf("sample shape %v", s.Shape())
	}
	tr, sa := trained.Data(), s.Data()
	for i := range tr {
		for j := range tr {
			if (tr[i] < tr[j]) != (sa[i] < sa[j]) && tr[i] != tr[j] {
				t.Fatalf("ordering broken at (%d,%d): trained (%v,%v), sampled (%v,%v)",
					i, j, tr[i], tr[j], sa[i], sa[j])
			}
		}
	}
	// The sample must be fresh noise, not a replay.
	if tensor.Equal(s, trained) {
		t.Fatal("sample replayed the trained tensor")
	}
}

// A fixed seed must reproduce the sampled noise byte-for-byte.
func TestSampleDeterministic(t *testing.T) {
	trained := tensor.New(3, 4, 4)
	tensor.NewRNG(3).FillLaplace(trained, 0.5, 2)
	f := Fit(trained, Gaussian)
	a := f.Sample(tensor.NewRNG(99))
	b := f.Sample(tensor.NewRNG(99))
	if !tensor.Equal(a, b) {
		t.Fatal("same seed produced different samples")
	}
	c := f.Sample(tensor.NewRNG(100))
	if tensor.Equal(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestFitMixture(t *testing.T) {
	rng := tensor.NewRNG(5)
	var members []*tensor.Tensor
	for i := 0; i < 3; i++ {
		m := tensor.New(6)
		rng.FillLaplace(m, 0, float64(i+1))
		members = append(members, m)
	}
	f, err := FitMixture(members, Laplace)
	if err != nil {
		t.Fatal(err)
	}
	if f.Components() != 3 {
		t.Fatalf("components = %d", f.Components())
	}
	// Every member contributes its own argsort and its own sketch: a
	// shared permutation measurably costs accuracy and privacy.
	if len(f.Orders) != 3 || len(f.Sketches) != 3 {
		t.Fatalf("per-member orders/sketches: %d/%d", len(f.Orders), len(f.Sketches))
	}
	for i, m := range members {
		want := argsort(m.Data())
		for j := range want {
			if want[j] != f.Orders[i][j] {
				t.Fatalf("order %d not the member's own argsort", i)
			}
		}
		// Sketch endpoints are the member's min and max.
		data := append([]float64(nil), m.Data()...)
		sort.Float64s(data)
		sk := f.Sketches[i]
		if float64(sk[0]) != float64(float32(data[0])) ||
			float64(sk[len(sk)-1]) != float64(float32(data[len(data)-1])) {
			t.Fatalf("sketch %d endpoints (%v, %v), member range (%v, %v)",
				i, sk[0], sk[len(sk)-1], data[0], data[len(data)-1])
		}
		for j := 1; j < len(sk); j++ {
			if sk[j] < sk[j-1] {
				t.Fatalf("sketch %d not non-decreasing", i)
			}
		}
	}
	if _, err := FitMixture(nil, Laplace); err == nil {
		t.Fatal("empty mixture should fail")
	}
	if _, err := FitMixture([]*tensor.Tensor{members[0], tensor.New(7)}, Laplace); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestVarianceAnalytic(t *testing.T) {
	f := &Fitted{Kind: Laplace, Comps: []Component{{Loc: 0, Scale: 2}}}
	if got := f.Variance(); math.Abs(got-8) > 1e-12 { // 2b²
		t.Fatalf("Laplace variance = %v, want 8", got)
	}
	g := &Fitted{Kind: Gaussian, Comps: []Component{{Loc: 1, Scale: 3}, {Loc: -1, Scale: 3}}}
	// law of total variance: E[σ²] + Var[µ] = 9 + 1
	if got := g.Variance(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("mixture variance = %v, want 10", got)
	}
	// Monte-Carlo check of the end-to-end sampled variance: reassignment
	// permutes values, so the element distribution (and variance) of the
	// sampled tensor matches the fitted family.
	trained := tensor.New(2048)
	tensor.NewRNG(8).FillLaplace(trained, 0, 2)
	fit := Fit(trained, Laplace)
	s := fit.Sample(tensor.NewRNG(9))
	if rel := math.Abs(s.Variance()-fit.Variance()) / fit.Variance(); rel > 0.15 {
		t.Fatalf("sampled variance %v vs analytic %v (rel %v)", s.Variance(), fit.Variance(), rel)
	}
}

func TestValidate(t *testing.T) {
	trained := tensor.New(2, 3)
	tensor.NewRNG(4).FillNormal(trained, 0, 1)
	f := Fit(trained, Gaussian)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *f
	bad.Orders = [][]int32{append([]int32(nil), f.Orders[0]...)}
	bad.Orders[0][0] = bad.Orders[0][1] // duplicate → not a permutation
	if bad.Validate() == nil {
		t.Fatal("duplicate order entries should fail validation")
	}
	bad2 := *f
	bad2.Comps = nil
	if bad2.Validate() == nil {
		t.Fatal("empty mixture should fail validation")
	}
	bad3 := *f
	bad3.Comps = []Component{{Loc: math.NaN(), Scale: 1}}
	bad3.Sketches = f.Sketches[:1]
	bad3.Orders = f.Orders[:1]
	if bad3.Validate() == nil {
		t.Fatal("NaN loc should fail validation")
	}
	bad4 := *f
	bad4.Sketches = [][]float32{append([]float32(nil), f.Sketches[0]...)}
	bad4.Sketches[0][0] = bad4.Sketches[0][len(bad4.Sketches[0])-1] + 1 // decreasing
	if bad4.Validate() == nil {
		t.Fatal("decreasing sketch should fail validation")
	}
	bad5 := *f
	bad5.Sketches = nil
	if bad5.Validate() == nil {
		t.Fatal("missing sketches should fail validation")
	}
	if (*Fitted)(nil).Validate() == nil {
		t.Fatal("nil fitted should fail validation")
	}
}

func TestMemoryBytes(t *testing.T) {
	trained := tensor.New(10)
	tensor.NewRNG(2).FillNormal(trained, 0, 1)
	f := Fit(trained, Laplace)
	// order 4·10 + sketch 4·sketchKnots(10) + params 16
	if got := f.MemoryBytes(); got != 4*10+4*sketchKnots(10)+16 {
		t.Fatalf("MemoryBytes = %d", got)
	}
	// The knot budget keeps every fitted member strictly below the 8
	// bytes/element a stored member costs, for any tensor over 8 elems.
	for _, n := range []int{9, 10, 16, 120, 1000, 100000} {
		if fitted := 4*n + 4*sketchKnots(n) + 16; fitted >= 8*n {
			t.Fatalf("n=%d: fitted member %dB >= stored %dB", n, fitted, 8*n)
		}
	}
}

func TestSampleIntoWrongSizePanics(t *testing.T) {
	trained := tensor.New(4)
	tensor.NewRNG(2).FillNormal(trained, 0, 1)
	f := Fit(trained, Laplace)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.SampleInto(tensor.New(5), tensor.NewRNG(1))
}
